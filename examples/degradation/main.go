// degradation: turn the UQ ensemble into reliability numbers — failure
// probability against the 523 K threshold, crossing times of the 6σ band and
// Arrhenius damage over the mission profile, for the DATE16 chip.
//
// Run with: go run ./examples/degradation
package main

import (
	"fmt"
	"log"
	"math"

	"etherm/internal/chipmodel"
	"etherm/internal/core"
	"etherm/internal/degrade"
	"etherm/internal/study"
)

func main() {
	const samples = 12
	spec := chipmodel.DATE16Calibrated()
	fig7, lay, ens, err := study.RunPaperStudy(spec, core.FastOptions(), samples, 99, 0)
	if err != nil {
		log.Fatal(err)
	}
	_ = lay
	last := len(fig7.Times) - 1

	fmt.Printf("ensemble: M = %d, E_max(50 s) = %.2f K, sigma = %.2f K\n\n",
		ens.Succeeded(), fig7.EMax[last], fig7.SigmaMC)

	// 1. Exceedance probability of the hottest wire at the end time.
	for _, tcrit := range []float64{510.0, degrade.DefaultCriticalTemp, 535} {
		pNorm := degrade.ExceedanceProbability(fig7.HotSeries()[last], fig7.SigmaMC, tcrit)
		// Empirical from the stored samples of the hottest wire's final temp.
		col := last*len(lay.Wires) + fig7.HotWire
		pEmp := degrade.EmpiricalExceedance(ens.OutputSeries(col), tcrit)
		fmt.Printf("P(T_hot(50 s) >= %3.0f K): normal approx %.3g, empirical %.3g\n", tcrit, pNorm, pEmp)
	}

	// 2. Crossing-time diagnostics of the 6-sigma band.
	if !math.IsNaN(fig7.Cross6Sig) {
		fmt.Printf("\n6-sigma band crosses %0.f K at t = %.1f s — matches the paper's design-validity warning\n",
			fig7.TCritical, fig7.Cross6Sig)
	} else {
		fmt.Printf("\n6-sigma band never crosses %.0f K within the horizon\n", fig7.TCritical)
	}

	// 3. Arrhenius damage of the mold over a mission at the mean trajectory,
	//    extrapolated from the 50 s transient plus steady-state hold.
	ar := degrade.MoldEpoxy()
	dmg50, err := ar.Damage(fig7.Times, fig7.HotSeries())
	if err != nil {
		log.Fatal(err)
	}
	tSteady := fig7.HotSeries()[last]
	fmt.Printf("\nArrhenius mold damage over the 50 s transient: %.3g (failure at 1)\n", dmg50)
	fmt.Printf("steady hold at %.1f K: time to failure %.3g h\n", tSteady, ar.TimeToFailure(tSteady)/3600)
	fmt.Printf("a +%.1f K (one sigma) hotter unit fails %.2fx sooner\n",
		fig7.SigmaMC, ar.AccelerationFactor(tSteady, tSteady+fig7.SigmaMC))
}
