// collocation: "the application of other methods is straightforward" —
// compare Monte Carlo, Latin hypercube, Sobol' QMC, Smolyak stochastic
// collocation and polynomial chaos on a fast surrogate of the wire-heating
// problem (the analytic lumped package model), showing the accuracy/cost
// trade-off that motivates going beyond plain MC.
//
// Run with: go run ./examples/collocation
package main

import (
	"fmt"
	"log"
	"math"

	"etherm/internal/analytic"
	"etherm/internal/material"
	"etherm/internal/uq"
)

// lumpedModel: uncertain elongations of 6 wire pairs → steady hottest
// temperature of a lumped package (fast enough for dense reference runs).
type lumpedModel struct{ dim int }

func (m *lumpedModel) Dim() int        { return m.dim }
func (m *lumpedModel) NumOutputs() int { return 1 }

func (m *lumpedModel) Eval(params, out []float64) error {
	// Each pair carries V_pair over two wires of sampled elongation.
	const (
		vPair = 114e-3
		dirD  = 1.29e-3
		diam  = 25.4e-6
	)
	cu := material.Copper()
	area := math.Pi * diam * diam / 4
	power := func(T float64) float64 {
		p := 0.0
		for j := 0; j < m.dim; j += 2 {
			l1 := dirD / (1 - clamp01(params[j]))
			l2 := dirD / (1 - clamp01(params[j+1]))
			r := (l1 + l2) / (cu.ElecCond(T) * area)
			p += vPair * vPair / r
		}
		return p
	}
	pkg := analytic.LumpedPackage{C: 0.030, R: 500, TInf: 300, Power: power}
	out[0] = pkg.SteadyState()
	return nil
}

func clamp01(d float64) float64 {
	if d < 0 {
		return 0
	}
	if d > 0.9 {
		return 0.9
	}
	return d
}

func main() {
	const dim = 12
	model := &lumpedModel{dim: dim}
	factory := uq.SingleFactory(model)
	dists := make([]uq.Dist, dim)
	for j := range dists {
		dists[j] = uq.Normal{Mu: 0.17, Sigma: 0.048}
	}

	// Dense reference: big Sobol' QMC run.
	sob, err := uq.NewSobol(dim)
	if err != nil {
		log.Fatal(err)
	}
	ref, err := uq.RunEnsemble(factory, dists, sob, uq.EnsembleOptions{Samples: 1 << 15})
	if err != nil {
		log.Fatal(err)
	}
	refMean, refStd := ref.Mean(0), ref.StdDev(0)
	fmt.Printf("reference (Sobol' M=%d): E[T] = %.4f K, sigma = %.4f K\n\n", ref.Succeeded(), refMean, refStd)

	fmt.Printf("%-24s %8s %12s %12s\n", "method", "evals", "|dE| (K)", "|dsigma| (K)")
	report := func(name string, evals int, mean, std float64) {
		fmt.Printf("%-24s %8d %12.2e %12.2e\n", name, evals, math.Abs(mean-refMean), math.Abs(std-refStd))
	}

	for _, m := range []int{64, 256, 1024} {
		mc, err := uq.RunEnsemble(factory, dists, uq.PseudoRandom{D: dim, Seed: 7}, uq.EnsembleOptions{Samples: m})
		if err != nil {
			log.Fatal(err)
		}
		report(fmt.Sprintf("monte-carlo M=%d", m), m, mc.Mean(0), mc.StdDev(0))
	}
	for _, m := range []int{64, 256} {
		lhs, err := uq.NewLatinHypercube(dim, m, 7)
		if err != nil {
			log.Fatal(err)
		}
		e, err := uq.RunEnsemble(factory, dists, lhs, uq.EnsembleOptions{Samples: m})
		if err != nil {
			log.Fatal(err)
		}
		report(fmt.Sprintf("latin-hypercube M=%d", m), m, e.Mean(0), e.StdDev(0))
	}
	for _, m := range []int{64, 256} {
		e, err := uq.RunEnsemble(factory, dists, sob, uq.EnsembleOptions{Samples: m})
		if err != nil {
			log.Fatal(err)
		}
		report(fmt.Sprintf("sobol-qmc M=%d", m), m, e.Mean(0), e.StdDev(0))
	}
	for _, lvl := range []int{1, 2} {
		sc, err := uq.SmolyakCollocation(factory, dists, lvl)
		if err != nil {
			log.Fatal(err)
		}
		report(fmt.Sprintf("smolyak level %d", lvl), sc.Evaluations, sc.Mean[0], sc.StdDev(0))
	}

	// Polynomial chaos: fit on a Sobol' design, read statistics and Sobol'
	// sensitivity indices from the coefficients.
	train, err := uq.RunEnsemble(factory, dists, sob, uq.EnsembleOptions{Samples: 512})
	if err != nil {
		log.Fatal(err)
	}
	pce, err := uq.FitPCE(dists, train.Params, train.Outputs, 2)
	if err != nil {
		log.Fatal(err)
	}
	report("pce order 2 (512 train)", 512, pce.Mean(0), pce.StdDev(0))

	fmt.Println("\nPCE total Sobol' indices per wire (all wires contribute equally by symmetry):")
	for j := 0; j < dim; j++ {
		fmt.Printf("  wire %2d: %.4f\n", j+1, pce.TotalSobol(0, j))
	}
}
