// Quickstart: build a small molded block with one bonding-wire pair, run the
// coupled electrothermal transient and print the wire temperatures.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"etherm/internal/bondwire"
	"etherm/internal/core"
	"etherm/internal/fit"
	"etherm/internal/grid"
	"etherm/internal/material"
)

func main() {
	// 1. A 2×2×0.5 mm epoxy block with two copper studs at the ends.
	g, err := grid.NewTensor(
		[]float64{0, 0.2e-3, 0.4e-3, 1.6e-3, 1.8e-3, 2.0e-3},
		[]float64{0, 0.5e-3, 1.0e-3, 1.5e-3, 2.0e-3},
		[]float64{0, 0.25e-3, 0.5e-3},
	)
	if err != nil {
		log.Fatal(err)
	}
	lib, err := material.NewLibrary(material.EpoxyResin(), material.Copper())
	if err != nil {
		log.Fatal(err)
	}
	cellMat := make([]int, g.NumCells())
	for c := range cellMat {
		x, _, _ := g.CellCenter(c)
		if x < 0.4e-3 || x > 1.6e-3 {
			cellMat[c] = 1 // copper studs
		}
	}

	// 2. One bonding wire bridging the studs (the epoxy in between is
	//    effectively insulating), driven at 40 mV.
	nodeA := g.NearestNode(0.4e-3, 1.0e-3, 0.5e-3)
	nodeB := g.NearestNode(1.6e-3, 1.0e-3, 0.5e-3)
	geom, err := bondwire.FromElongation(1.25e-3, 0.17, 25.4e-6)
	if err != nil {
		log.Fatal(err)
	}
	prob := &core.Problem{
		Grid: g, CellMat: cellMat, Lib: lib,
		Wires: []bondwire.Wire{{
			Name: "demo", NodeA: nodeA, NodeB: nodeB, Geom: geom, Mat: material.Copper(),
		}},
		ElecDirichlet: []fit.Dirichlet{
			{Nodes: faceNodes(g, true), Values: []float64{+20e-3}},
			{Nodes: faceNodes(g, false), Values: []float64{-20e-3}},
		},
		ThermalBC: fit.RobinBC{H: 25, Emissivity: 0.2475, TInf: 300},
	}

	// 3. Run 50 s of the coupled transient (implicit Euler, as in the paper).
	sim, err := core.NewSimulator(prob, core.Options{EndTime: 50, NumSteps: 50})
	if err != nil {
		log.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		log.Fatal(err)
	}

	wire := sim.Wires()[0]
	fmt.Printf("wire: L = %.3g mm, R(300 K) = %.3g mOhm, G_th = %.3g mW/K\n",
		wire.Geom.Length()*1e3, wire.Resistance(300)*1e3, wire.ThermalConductance(300)*1e3)
	fmt.Println("  t (s)   T_wire (K)   P_wire (mW)")
	for _, i := range []int{0, 5, 10, 20, 30, 40, 50} {
		fmt.Printf("  %5.0f   %10.2f   %11.3f\n",
			res.Times[i], res.WireTemp[i][0], res.WirePower[i][0]*1e3)
	}
	last := len(res.Times) - 1
	fmt.Printf("steady: input %.3g mW vs boundary loss %.3g mW (balance closed to %.2g)\n",
		(res.FieldPower[last]+res.WirePowerTotal[last])*1e3, res.BoundaryLoss[last]*1e3,
		res.Stats.MaxEnergyImbalance)
}

// faceNodes picks the copper-stud end faces as PEC contacts.
func faceNodes(g *grid.Grid, left bool) []int {
	var out []int
	for n := 0; n < g.NumNodes(); n++ {
		i, _, _ := g.NodeCoordsOf(n)
		if (left && i == 0) || (!left && i == g.Nx-1) {
			out = append(out, n)
		}
	}
	return out
}
