// wire_design: the designer's trade-off study from the paper's introduction
// — sweep the wire diameter and material and report resistance, peak
// temperature at the operating current and the allowable current against
// the 523 K threshold, using the analytic fin baseline.
//
// Run with: go run ./examples/wire_design
package main

import (
	"fmt"
	"log"

	"etherm/internal/analytic"
	"etherm/internal/degrade"
	"etherm/internal/material"
)

func main() {
	materials := []material.Model{material.Copper(), material.Gold(), material.Aluminum()}
	diameters := []float64{15e-6, 20e-6, 25.4e-6, 33e-6, 50e-6}
	const (
		length  = 1.55e-3 // the paper's average wire length
		current = 0.4     // A, near the chip's per-wire operating point
	)

	fmt.Printf("wire design sweep: L = %.3g mm, I = %.2g A, T_crit = %.0f K\n\n",
		length*1e3, current, degrade.DefaultCriticalTemp)
	fmt.Printf("%-9s %-8s %12s %12s %12s\n", "material", "d (um)", "R300 (mOhm)", "T_peak (K)", "I_max (A)")
	for _, m := range materials {
		for _, d := range diameters {
			w := analytic.FinWire{
				Length: length, Diameter: d, Mat: m,
				Current: current, TEndA: 300, TEndB: 300, TInf: 300,
			}
			r := length / (m.ElecCond(300) * w.Area())
			tp, _ := w.MaxTemperature(300)
			imax, err := w.AllowableCurrent(degrade.DefaultCriticalTemp)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-9s %-8.1f %12.2f %12.1f %12.3f\n", m.Name(), d*1e6, r*1e3, tp, imax)
		}
		fmt.Println()
	}

	// Time-to-failure of the mold at a few hold temperatures (Arrhenius).
	ar := degrade.MoldEpoxy()
	fmt.Println("mold degradation (Arrhenius, Ea = 0.8 eV, TTF(523 K) = 1000 h):")
	for _, T := range []float64{450.0, 480, 500, 523, 540} {
		fmt.Printf("  T = %3.0f K: time to failure %.3g h (acceleration ×%.2f vs 523 K)\n",
			T, ar.TimeToFailure(T)/3600, ar.AccelerationFactor(degrade.DefaultCriticalTemp, T))
	}
}
