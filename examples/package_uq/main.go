// package_uq: the paper's headline experiment in miniature — a Monte Carlo
// study (small M so it finishes in about a minute) over the uncertain wire
// elongations of the DATE16 chip, reporting E_max(t) with the 6σ band
// against the 523 K mold-degradation threshold.
//
// Run with: go run ./examples/package_uq
package main

import (
	"fmt"
	"log"

	"etherm/internal/chipmodel"
	"etherm/internal/core"
	"etherm/internal/study"
)

func main() {
	const samples = 16 // the paper uses 1000; see cmd/mcstudy for the full run
	spec := chipmodel.DATE16Calibrated()
	fig7, lay, ens, err := study.RunPaperStudy(spec, core.FastOptions(), samples, 2016, 0)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("chip: %d pads, %d wires, mean L = %.3g mm, V_pair = %.0f mV\n",
		len(lay.Pads), len(lay.Wires), lay.MeanLength()*1e3, lay.PairVoltage()*1e3)
	fmt.Printf("Monte Carlo: M = %d (%s sampling)\n\n", ens.Succeeded(), ens.SamplerName)

	fmt.Println("  t (s)   E[T_hot] (K)   6*sigma (K)")
	for i := 0; i < len(fig7.Times); i += 10 {
		fmt.Printf("  %5.0f   %12.2f   %11.2f\n",
			fig7.Times[i], fig7.HotSeries()[i], 6*fig7.SigmaHot[i])
	}
	last := len(fig7.Times) - 1
	fmt.Printf("\nE_max(50 s) = %.2f K, sigma_MC = %.2f K, error_MC = %.3f K (eq. 6)\n",
		fig7.EMax[last], fig7.SigmaMC, fig7.ErrorMC)
	fmt.Printf("hottest wire: %d (%s side — shortest wires)\n", fig7.HotWire, lay.Wires[fig7.HotWire].Side)
	if fig7.Cross6Sig == fig7.Cross6Sig { // not NaN
		fmt.Printf("6-sigma band crosses T_crit = %.0f K at t = %.1f s — the variability matters for design validity\n",
			fig7.TCritical, fig7.Cross6Sig)
	} else {
		fmt.Printf("6-sigma band stays below T_crit = %.0f K over the horizon\n", fig7.TCritical)
	}
}
