package api

import (
	"fmt"
	"time"
)

// Surrogate serving: the first read-heavy, latency-sensitive extension of
// the v1 surface. POST /v1/surrogates builds a per-geometry sparse-grid/
// PCE surrogate of a scenario's study (an async job, content-addressed by
// the scenario + design fingerprint); GET lists/inspects; POST
// /v1/surrogates/{id}/query answers statistics of the end-time maximum
// wire temperature in microseconds, no solve. Queries the surrogate
// cannot serve — unknown id, still building, failed build, outside the
// trained domain — come back as typed problem+json whose FallbackJob is a
// ready-to-submit FEM batch answering the same question.

// Surrogate build states.
const (
	// SurrogateBuilding marks a surrogate whose design is being evaluated.
	SurrogateBuilding = "building"
	// SurrogateReady marks a surrogate serving queries.
	SurrogateReady = "ready"
	// SurrogateFailed marks a surrogate whose build failed.
	SurrogateFailed = "failed"
)

// SurrogateSpec is the body of POST /v1/surrogates: the scenario whose
// study the surrogate captures, and the sparse-grid design to train on.
type SurrogateSpec struct {
	// Scenario declares the chip, transient solve and elongation law. Its
	// UQ method/budget fields are ignored — the collocation design below
	// defines the study; the law fields (rho, mean_delta, std_delta,
	// critical_k) are honored.
	Scenario Scenario `json:"scenario"`
	// Level is the Smolyak sparse-grid level (≥ 2; level−1 trains the
	// error indicator). Zero means 2.
	Level int `json:"level,omitempty"`
	// Order is the PCE total order; zero means the level, clamped so the
	// basis stays no larger than the design.
	Order int `json:"order,omitempty"`
	// Rebuild forces a rebuild even when a ready surrogate with the same
	// fingerprint exists.
	Rebuild bool `json:"rebuild,omitempty"`
}

// Validate checks the build request shape (the scenario's own validation
// happens server-side against the engine's rules).
func (s *SurrogateSpec) Validate() error {
	if s.Scenario.Name == "" {
		return fmt.Errorf("surrogate spec needs a named scenario")
	}
	if s.Level != 0 && (s.Level < 2 || s.Level > 6) {
		return fmt.Errorf("surrogate level %d outside [2, 6]", s.Level)
	}
	if s.Order < 0 || (s.Order > 0 && s.Level > 0 && s.Order > s.Level) {
		return fmt.Errorf("surrogate order %d outside [0, level]", s.Order)
	}
	return nil
}

// EffectiveLevel returns the sparse-grid level with the default applied.
func (s *SurrogateSpec) EffectiveLevel() int {
	if s.Level == 0 {
		return 2
	}
	return s.Level
}

// Surrogate is the metadata of one surrogate build: returned by POST (the
// accepted build), GET (inspection) and listed by the collection endpoint.
type Surrogate struct {
	// ID is the content-addressed identity ("sg-" + fingerprint of the
	// scenario's physical model, study law and design).
	ID string `json:"id"`
	// Status is building, ready or failed.
	Status string `json:"status"`
	// Scenario is the name of the scenario the surrogate was built from.
	Scenario string `json:"scenario,omitempty"`
	// GeometryKey identifies the chip geometry (the assembly-cache key).
	GeometryKey string `json:"geometry_key,omitempty"`
	// Level and Order describe the trained design.
	Level int `json:"level"`
	Order int `json:"order,omitempty"`
	// Dim is the germ-space dimensionality of the study.
	Dim int `json:"dim,omitempty"`
	// NumWires is the number of bond wires the surrogate tracks.
	NumWires int `json:"num_wires,omitempty"`
	// Evaluations is the number of FEM solves invested in the build.
	Evaluations int `json:"evaluations,omitempty"`
	// ErrIndicatorK is the leave-one-level-out error indicator of the
	// served (hottest end-time) output, in kelvin.
	ErrIndicatorK float64 `json:"err_indicator_k,omitempty"`
	// GermBound is the per-axis extent of the trained germ region.
	GermBound float64 `json:"germ_bound,omitempty"`
	// DeltaLo/DeltaHi is the elongation interval what-if queries answer on.
	DeltaLo float64 `json:"delta_lo,omitempty"`
	DeltaHi float64 `json:"delta_hi,omitempty"`
	// TCritK is the default critical temperature for P(fail) queries.
	TCritK float64 `json:"t_crit_k,omitempty"`
	// MeanK/StdK are the headline moments of the end-time maximum
	// temperature's hottest wire.
	MeanK float64 `json:"mean_k,omitempty"`
	StdK  float64 `json:"std_k,omitempty"`
	// SubmittedAt/BuiltAt/BuildS describe the build's lifecycle.
	SubmittedAt time.Time  `json:"submitted_at"`
	BuiltAt     *time.Time `json:"built_at,omitempty"`
	BuildS      float64    `json:"build_s,omitempty"`
	// Error carries the failure message of a failed build.
	Error string `json:"error,omitempty"`
}

// SurrogateList is the body of GET /v1/surrogates.
type SurrogateList struct {
	Surrogates []*Surrogate `json:"surrogates"`
}

// SurrogateQuery is the body of POST /v1/surrogates/{id}/query. The query
// is read-only and idempotent: the SDK retries it blindly like a GET.
type SurrogateQuery struct {
	// Quantiles lists the quantiles of the end-time maximum temperature to
	// evaluate, each in (0, 1).
	Quantiles []float64 `json:"quantiles,omitempty"`
	// TCritK overrides the surrogate's critical temperature for P(fail).
	TCritK float64 `json:"t_crit_k,omitempty"`
	// Delta asks a what-if: the temperature if every wire elongated by
	// exactly this δ.
	Delta *float64 `json:"delta,omitempty"`
	// Sweep asks for a linear what-if sweep over the common elongation.
	Sweep *SurrogateSweep `json:"sweep,omitempty"`
}

// SurrogateSweep is an inclusive linear sweep over the common elongation.
type SurrogateSweep struct {
	From  float64 `json:"from"`
	To    float64 `json:"to"`
	Steps int     `json:"steps"`
}

// SurrogateQuantile is one served quantile.
type SurrogateQuantile struct {
	Q  float64 `json:"q"`
	TK float64 `json:"t_k"`
}

// SurrogateSweepPoint is the surrogate temperature at one what-if
// elongation.
type SurrogateSweepPoint struct {
	Delta float64 `json:"delta"`
	TK    float64 `json:"t_k"`
}

// SurrogateAnswer is the response of a surrogate query. Every answer
// carries ErrIndicatorK — the confidence estimate of the served output —
// and Evaluations, the FEM budget that bought it.
type SurrogateAnswer struct {
	// ID echoes the surrogate.
	ID string `json:"id"`
	// MeanK/StdK are the moments of the hottest wire's end temperature.
	MeanK float64 `json:"mean_k"`
	StdK  float64 `json:"std_k"`
	// HotWire is the index of the hottest wire.
	HotWire int `json:"hot_wire"`
	// TCritK is the critical temperature the failure probability used.
	TCritK float64 `json:"t_crit_k"`
	// FailProb is P(max_j T_j(t_end) ≥ TCritK).
	FailProb float64 `json:"fail_prob"`
	// Quantiles answers the requested quantiles, in request order.
	Quantiles []SurrogateQuantile `json:"quantiles,omitempty"`
	// Delta answers the single what-if, when requested.
	Delta *SurrogateSweepPoint `json:"delta,omitempty"`
	// Sweep answers the what-if sweep, when requested.
	Sweep []SurrogateSweepPoint `json:"sweep,omitempty"`
	// ErrIndicatorK is the leave-one-level-out error indicator (kelvin)
	// of the served output; always present.
	ErrIndicatorK float64 `json:"err_indicator_k"`
	// Evaluations is the number of FEM solves behind the surrogate.
	Evaluations int `json:"evaluations"`
}
