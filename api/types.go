package api

import (
	"encoding/json"
	"fmt"
	"time"
)

// ---------------------------------------------------------------------------
// Requests: batches and scenarios.
// ---------------------------------------------------------------------------

// Batch is the body of POST /v1/jobs: a named list of scenarios evaluated
// through one shared assembly cache. It is the wire form of a scenario
// file; unknown fields are rejected server-side so typos fail loudly.
type Batch struct {
	// Name labels the batch in manifests and job listings.
	Name string `json:"name,omitempty"`
	// Workers bounds scenario-level parallelism (0 = automatic).
	Workers int `json:"workers,omitempty"`
	// SampleWorkers bounds per-scenario ensemble parallelism (0 = automatic).
	SampleWorkers int `json:"sample_workers,omitempty"`
	// Scenarios is evaluated in order; results keep this order regardless
	// of scheduling.
	Scenarios []Scenario `json:"scenarios"`
}

// Validate checks the batch structurally (the server re-validates deeply,
// including per-scenario physics declarations).
func (b *Batch) Validate() error {
	if len(b.Scenarios) == 0 {
		return fmt.Errorf("api: batch has no scenarios")
	}
	if b.Workers < 0 || b.SampleWorkers < 0 {
		return fmt.Errorf("api: negative worker counts")
	}
	seen := make(map[string]bool, len(b.Scenarios))
	for i, s := range b.Scenarios {
		if s.Name == "" {
			return fmt.Errorf("api: scenario entry %d has no name", i)
		}
		if seen[s.Name] {
			return fmt.Errorf("api: duplicate scenario name %q", s.Name)
		}
		seen[s.Name] = true
	}
	return nil
}

// Scenario is one declarative batch entry: a chip configuration, a
// transient-solve configuration and an uncertainty treatment.
type Scenario struct {
	// Name identifies the scenario in results; unique within a batch.
	Name string `json:"name"`
	// Description is free text carried into the results manifest.
	Description string `json:"description,omitempty"`
	// Chip declares geometry, drive, wires and ambient.
	Chip ChipSpec `json:"chip,omitempty"`
	// Sim declares the transient solve; zero end time / steps take the
	// paper's 50 s / 50 steps.
	Sim SimSpec `json:"sim,omitempty"`
	// UQ declares the uncertainty study; the zero value is deterministic.
	UQ UQSpec `json:"uq,omitempty"`
}

// ChipSpec declares the package model of one scenario as a preset plus
// overrides. Zero-valued fields keep the preset value.
type ChipSpec struct {
	// Preset selects the base geometry: "date16" (faithful V_bw = 40 mV
	// drive) or "date16-calibrated" (power-matched drive, the default).
	Preset string `json:"preset,omitempty"`
	// DriveVoltageV overrides the PEC contact drive ±V (a wire pair sees 2V).
	DriveVoltageV float64 `json:"drive_voltage_v,omitempty"`
	// DriveScale multiplies the preset (or overridden) drive voltage.
	DriveScale float64 `json:"drive_scale,omitempty"`
	// HMaxM overrides the maximum mesh spacing (metres).
	HMaxM float64 `json:"hmax_m,omitempty"`
	// Wire overrides; scenarios differing only in them share one cached
	// mesh assembly.
	WireSegments   int     `json:"wire_segments,omitempty"`
	WireDiameterM  float64 `json:"wire_diameter_m,omitempty"`
	WireMaterial   string  `json:"wire_material,omitempty"`   // copper|gold|aluminum
	MeanElongation float64 `json:"mean_elongation,omitempty"` // nominal δ; zero keeps the preset
	// ActivePairs restricts the drive to the listed wire pairs (0..5);
	// empty means all six pairs.
	ActivePairs []int `json:"active_pairs,omitempty"`
	// Ambient overrides. HTC and Emissivity are pointers because zero is
	// physically meaningful there, unlike an ambient of 0 K.
	HTC        *float64 `json:"htc_w_m2k,omitempty"`
	Emissivity *float64 `json:"emissivity,omitempty"`
	AmbientK   float64  `json:"ambient_k,omitempty"`
}

// SimSpec declares the transient solve of a scenario.
type SimSpec struct {
	EndTimeS   float64 `json:"end_time_s"`
	NumSteps   int     `json:"num_steps"`
	Coupling   string  `json:"coupling,omitempty"`   // strong|weak
	Nonlinear  string  `json:"nonlinear,omitempty"`  // picard|newton
	Integrator string  `json:"integrator,omitempty"` // implicit-euler|trapezoidal|bdf2
	Joule      string  `json:"joule,omitempty"`      // edge-split|cell-average
	LinTol     float64 `json:"lin_tol,omitempty"`
	// Performance knobs (solver preconditioning, precision and parallelism).
	Precond        string  `json:"precond,omitempty"`   // ict|ic0|jacobi|none
	Precision      string  `json:"precision,omitempty"` // float64|mixed
	Deflation      bool    `json:"deflation,omitempty"`
	DeflationBlock int     `json:"deflation_block,omitempty"`
	PrecondOmega   float64 `json:"precond_omega,omitempty"`
	PrecondRefresh float64 `json:"precond_refresh,omitempty"`
	SolverWorkers  int     `json:"solver_workers,omitempty"`
}

// UQ method names accepted by UQSpec.Method.
const (
	MethodNone       = "none"
	MethodMonteCarlo = "monte-carlo"
	MethodLHS        = "lhs"
	MethodHalton     = "halton"
	MethodSobol      = "sobol"
	MethodSobolOwen  = "sobol-owen"
	MethodRQMC       = "rqmc-sobol"
	MethodSmolyak    = "smolyak"
)

// Campaign modes accepted by UQSpec.Mode.
const (
	// ModeFailureProbability estimates P(T_max ≥ critical_k) with a
	// rare-event estimator instead of moment statistics.
	ModeFailureProbability = "failure_probability"
)

// Rare-event estimators for ModeFailureProbability.
const (
	// EstimatorSubset is Au–Beck subset simulation (the default).
	EstimatorSubset = "subset"
	// EstimatorImportance is mean-shift importance sampling.
	EstimatorImportance = "importance"
)

// UQSpec declares the uncertainty study of one scenario.
type UQSpec struct {
	// Method is one of the Method… constants; empty means MethodNone.
	Method string `json:"method,omitempty"`
	// Samples is the evaluation budget M for sampling methods.
	Samples int `json:"samples,omitempty"`
	// Level is the Smolyak sparse-grid level (MethodSmolyak only).
	Level int `json:"level,omitempty"`
	// Seed feeds the deterministic per-index sample streams.
	Seed uint64 `json:"seed,omitempty"`
	// Rho is the wire-to-wire elongation correlation ρ ∈ [0, 1]; nil means
	// the calibrated default.
	Rho *float64 `json:"rho,omitempty"`
	// MeanDelta and StdDelta override the paper's fitted elongation law
	// (δ ~ N(0.17, 0.048²)); zero keeps the paper's value.
	MeanDelta float64 `json:"mean_delta,omitempty"`
	StdDelta  float64 `json:"std_delta,omitempty"`
	// CriticalK overrides the failure threshold (default 523 K).
	CriticalK float64 `json:"critical_k,omitempty"`
	// Stream selects the constant-memory streaming campaign (implied by
	// the knobs below); results are bit-identical to the stored path.
	Stream bool `json:"stream,omitempty"`
	// MaxSamples is the streaming sample budget (0 = Samples).
	MaxSamples int `json:"max_samples,omitempty"`
	// TargetSE / TargetCI are the adaptive stopping rules (kelvin /
	// failure-probability 95% half-width); zero disables a rule.
	TargetSE float64 `json:"target_se,omitempty"`
	TargetCI float64 `json:"target_ci,omitempty"`
	// Checkpoint persists resumable campaign state server-side.
	Checkpoint      string `json:"checkpoint,omitempty"`
	CheckpointEvery int    `json:"checkpoint_every,omitempty"`
	// Shards partitions the sample range into self-contained shards
	// runnable on a worker fleet; ShardBlock is the merge granularity.
	Shards     int `json:"shards,omitempty"`
	ShardBlock int `json:"shard_block,omitempty"`
	// Mode switches the campaign question; ModeFailureProbability selects
	// the rare-event engine and excludes Method and the streaming knobs.
	Mode string `json:"mode,omitempty"`
	// Estimator picks the rare-event driver: EstimatorSubset (default) or
	// EstimatorImportance.
	Estimator string `json:"estimator,omitempty"`
	// P0 is the subset-simulation conditional probability per level.
	P0 float64 `json:"p0,omitempty"`
	// LevelSamples is the per-level sample count N (also the
	// importance-sampling budget).
	LevelSamples int `json:"level_samples,omitempty"`
	// MaxLevels bounds the subset-simulation level count.
	MaxLevels int `json:"max_levels,omitempty"`
	// MCMCStep is the modified-Metropolis proposal standard deviation.
	MCMCStep float64 `json:"mcmc_step,omitempty"`
	// ISShift is the importance-sampling germ-space mean shift.
	ISShift float64 `json:"is_shift,omitempty"`
}

// ---------------------------------------------------------------------------
// Jobs.
// ---------------------------------------------------------------------------

// JobStatus is the lifecycle state of a job (batch or fleet).
type JobStatus string

// Job lifecycle states.
const (
	// JobQueued means the job waits for a free runner slot.
	JobQueued JobStatus = "queued"
	// JobRunning means the job is being evaluated.
	JobRunning JobStatus = "running"
	// JobDone means the job finished (individual scenarios may still have
	// failed; see the result's failed_count).
	JobDone JobStatus = "done"
	// JobFailed means the job errored before producing results.
	JobFailed JobStatus = "failed"
	// JobCanceled means the client aborted the job before it finished.
	JobCanceled JobStatus = "canceled"
)

// Finished reports whether the status is terminal.
func (s JobStatus) Finished() bool {
	return s == JobDone || s == JobFailed || s == JobCanceled
}

// JobProgress counts finished scenarios while a batch job runs.
type JobProgress struct {
	ScenariosDone   int `json:"scenarios_done"`
	ScenariosFailed int `json:"scenarios_failed"`
	ScenariosTotal  int `json:"scenarios_total"`
}

// Job is the public view of one submitted batch job.
type Job struct {
	ID          string      `json:"id"`
	Status      JobStatus   `json:"status"`
	BatchName   string      `json:"batch_name,omitempty"`
	SubmittedAt time.Time   `json:"submitted_at"`
	StartedAt   *time.Time  `json:"started_at,omitempty"`
	FinishedAt  *time.Time  `json:"finished_at,omitempty"`
	Progress    JobProgress `json:"progress"`
	// Error is set when Status is JobFailed (or JobCanceled, recording why).
	Error string `json:"error,omitempty"`
	// Result is set when Status is JobDone (and may carry partial results
	// on a mid-batch cancel).
	Result *BatchResult `json:"result,omitempty"`
}

// JobList is the body of GET /v1/jobs: one page of jobs, newest first,
// without embedded result payloads.
type JobList struct {
	Jobs []*Job `json:"jobs"`
	// NextCursor, when non-empty, is the cursor of the next (older) page;
	// pass it back as ?cursor= to continue the walk.
	NextCursor string `json:"next_cursor,omitempty"`
}

// Health is the body of GET /healthz.
type Health struct {
	Status       string `json:"status"`
	Jobs         int    `json:"jobs"`
	FleetJobs    int    `json:"fleet_jobs"`
	CacheEntries int    `json:"cache_entries"`
	CacheHits    int64  `json:"cache_hits"`
	CacheMisses  int64  `json:"cache_misses"`
	// QueuedJobs counts jobs waiting for a runner slot (the backpressure
	// queue); MaxQueued is its capacity (0 = unbounded).
	QueuedJobs int `json:"queued_jobs"`
	MaxQueued  int `json:"max_queued,omitempty"`
	// Watchers counts open SSE event streams.
	Watchers int `json:"watchers"`
	// Persistent reports whether the server runs on a durable job store
	// (-data); false means state dies with the process.
	Persistent bool `json:"persistent"`
	// Surrogates counts ready surrogate models serving queries.
	Surrogates int `json:"surrogates,omitempty"`
}

// ---------------------------------------------------------------------------
// Results.
// ---------------------------------------------------------------------------

// BatchResult is the structured manifest of a finished batch: scenario
// results in input order plus cache and failure accounting.
type BatchResult struct {
	Name      string            `json:"name,omitempty"`
	Scenarios []*ScenarioResult `json:"scenarios"`
	// Workers/SampleWorkers record the effective pool split.
	Workers       int `json:"workers"`
	SampleWorkers int `json:"sample_workers"`
	// Assembly-cache accounting over the run.
	CacheHits    int64   `json:"cache_hits"`
	CacheMisses  int64   `json:"cache_misses"`
	CacheEntries int     `json:"cache_entries"`
	FailedCount  int     `json:"failed_count"`
	ElapsedS     float64 `json:"elapsed_s"`
}

// ScenarioResult is the structured outcome of one scenario: identification,
// cache accounting and a Fig.-7-style summary of the hottest wire against
// the critical temperature.
type ScenarioResult struct {
	Index       int    `json:"index"`
	Name        string `json:"name"`
	Description string `json:"description,omitempty"`
	OK          bool   `json:"ok"`
	Error       string `json:"error,omitempty"`

	// CacheHit reports whether the mesh assembly was served from the cache.
	CacheHit bool    `json:"cache_hit"`
	ElapsedS float64 `json:"elapsed_s"`

	GridNodes int    `json:"grid_nodes,omitempty"`
	NumWires  int    `json:"num_wires,omitempty"`
	Method    string `json:"method"`
	// Samples counts successful model evaluations for sampling methods,
	// Failures the isolated per-sample failures, Evaluations the
	// quadrature nodes of a collocation run.
	Samples     int `json:"samples,omitempty"`
	Failures    int `json:"failures,omitempty"`
	Evaluations int `json:"evaluations,omitempty"`

	// Streaming-campaign accounting.
	Streamed         bool   `json:"streamed,omitempty"`
	StopReason       string `json:"stop_reason,omitempty"`
	RequestedSamples int    `json:"requested_samples,omitempty"`
	Shards           int    `json:"shards,omitempty"`

	// Hottest-wire summary (expectation for UQ methods, the single
	// trajectory for deterministic runs).
	HotWire     int     `json:"hot_wire"`
	HotWireName string  `json:"hot_wire_name,omitempty"`
	HotWireSide string  `json:"hot_wire_side,omitempty"`
	TEndMaxK    float64 `json:"t_end_max_k,omitempty"`
	SigmaK      float64 `json:"sigma_k,omitempty"`
	ErrorMCK    float64 `json:"error_mc_k,omitempty"`

	// Failure diagnostics against the critical temperature; crossing times
	// are absent when the trajectory never reaches T_crit.
	TCritK      float64  `json:"t_crit_k,omitempty"`
	CrossMeanS  *float64 `json:"cross_mean_s,omitempty"`
	Cross6SigS  *float64 `json:"cross_6sigma_s,omitempty"`
	ExceedProb  float64  `json:"exceed_prob"`
	FailProbEmp *float64 `json:"fail_prob_emp,omitempty"`
	TObsMaxK    float64  `json:"t_obs_max_k,omitempty"`
	DamageHot   float64  `json:"damage_hot,omitempty"`
	PTotalEndW  float64  `json:"p_total_end_w,omitempty"`

	// Rare-event campaign summary (uq.mode == "failure_probability"): the
	// estimator used, the failure-probability estimate with its coefficient
	// of variation, whether the subset run converged, and the per-level
	// telemetry.
	RareEstimator string      `json:"rare_estimator,omitempty"`
	PFail         *float64    `json:"p_fail,omitempty"`
	PFailCoV      float64     `json:"p_fail_cov,omitempty"`
	RareConverged bool        `json:"rare_converged,omitempty"`
	RareLevels    []RareLevel `json:"rare_levels,omitempty"`

	// Hottest-wire series for plotting: mean and standard deviation per
	// recorded time point.
	TimesS    []float64 `json:"times_s,omitempty"`
	HotMeanK  []float64 `json:"hot_mean_k,omitempty"`
	HotSigmaK []float64 `json:"hot_sigma_k,omitempty"`
}

// RareLevel summarizes one subset-simulation level: the temperature
// threshold the level conditioned on, the MCMC acceptance rate of the
// chains that produced it, the conditional exceedance probability and the
// model evaluations spent.
type RareLevel struct {
	Level      int     `json:"level"`
	ThresholdK float64 `json:"threshold_k"`
	Accept     float64 `json:"accept"`
	CondProb   float64 `json:"cond_prob"`
	Evals      int     `json:"evals"`
}

// ---------------------------------------------------------------------------
// Fleet: sharded campaigns leased to worker processes.
// ---------------------------------------------------------------------------

// Shard lease states within a fleet job.
const (
	// ShardPending means the shard waits for a worker.
	ShardPending = "pending"
	// ShardLeased means a worker holds the shard under a live lease.
	ShardLeased = "leased"
	// ShardDone means the shard's result has been accepted.
	ShardDone = "done"
)

// ShardStatus is the public state of one shard of a fleet job.
type ShardStatus struct {
	Shard    int    `json:"shard"`
	Start    int    `json:"start"`
	End      int    `json:"end"`
	Status   string `json:"status"`
	Worker   string `json:"worker,omitempty"`
	Attempts int    `json:"attempts"`
}

// ShardPlan is the deterministic partition of a campaign's sample index
// range [0, MaxSamples) into NumShards contiguous, block-aligned shards.
type ShardPlan struct {
	MaxSamples int `json:"max_samples"`
	BlockSize  int `json:"block_size"`
	NumShards  int `json:"num_shards"`
}

// FleetJob is the public state of a fleet job: the scenario, its shard
// plan and per-shard progress, plus the finalized result when done.
type FleetJob struct {
	ID         string        `json:"id"`
	Status     JobStatus     `json:"status"`
	Error      string        `json:"error,omitempty"`
	Scenario   Scenario      `json:"scenario"`
	Plan       *ShardPlan    `json:"plan"`
	Shards     []ShardStatus `json:"shards"`
	ShardsDone int           `json:"shards_done"`
	// Result is the finalized scenario result (set when Status is done).
	Result *ScenarioResult `json:"result,omitempty"`
}

// FleetLease is what a worker receives from a successful lease call:
// everything needed to run one shard, plus the lease it must keep alive.
type FleetLease struct {
	JobID   string `json:"job_id"`
	LeaseID string `json:"lease_id"`
	Shard   int    `json:"shard"`
	// LeaseTTL is how long the lease stays valid without a heartbeat.
	LeaseTTL time.Duration `json:"lease_ttl_ns"`
	Plan     *ShardPlan    `json:"plan"`
	Scenario Scenario      `json:"scenario"`
}

// ShardResult is the self-contained outcome of one shard: per-block
// accumulator state plus accounting. Blocks carry the engine's serialized
// accumulators verbatim (as raw JSON), so a result round-trips through the
// API without re-encoding and the coordinator's merged campaign stays
// bit-identical to a single-process run.
type ShardResult struct {
	Shard     int    `json:"shard"`
	Start     int    `json:"start"`
	End       int    `json:"end"`
	BlockSize int    `json:"block_size"`
	Sampler   string `json:"sampler"`
	SamplerFP uint64 `json:"sampler_fp,omitempty"`
	Tag       string `json:"tag,omitempty"`

	NumOutputs int `json:"num_outputs"`
	// Evaluated counts samples consumed from [Start, End) including
	// failures; a complete shard has Evaluated == End-Start.
	Evaluated int `json:"evaluated"`
	Failures  int `json:"failures"`
	// Blocks holds one serialized accumulator set per merge block of the
	// shard, in index order.
	Blocks []json.RawMessage `json:"blocks"`
}

// Wire bodies of the worker-facing fleet endpoints.
type (
	// LeaseRequest asks for a shard assignment (POST /v1/fleet/lease).
	LeaseRequest struct {
		Worker string `json:"worker"`
	}
	// HeartbeatRequest extends a lease (POST /v1/fleet/heartbeat).
	HeartbeatRequest struct {
		LeaseID string `json:"lease_id"`
	}
	// ShardResultRequest posts a completed shard under a lease
	// (POST /v1/fleet/result).
	ShardResultRequest struct {
		LeaseID string       `json:"lease_id"`
		Result  *ShardResult `json:"result"`
	}
	// ShardFailRequest reports a failed shard attempt under a lease
	// (POST /v1/fleet/fail).
	ShardFailRequest struct {
		LeaseID string `json:"lease_id"`
		Error   string `json:"error"`
	}
)
