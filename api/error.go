package api

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"mime"
	"net/http"
	"strconv"
	"strings"
)

// ProblemContentType is the media type of the error envelope (RFC 9457).
const ProblemContentType = "application/problem+json"

// Machine-readable error codes. Every error body carries one in its "code"
// member (an RFC-9457 extension) and mirrors it in the "type" URI, so
// clients can switch on the condition without parsing prose.
const (
	// CodeInvalidBody marks a syntactically broken request body.
	CodeInvalidBody = "invalid-body"
	// CodeValidation marks a well-formed but semantically invalid request.
	CodeValidation = "validation"
	// CodeNotFound marks an unknown resource (or route).
	CodeNotFound = "not-found"
	// CodeMethodNotAllowed marks a known path hit with the wrong method.
	CodeMethodNotAllowed = "method-not-allowed"
	// CodeTooLarge marks a request body beyond the server's size limit.
	CodeTooLarge = "body-too-large"
	// CodeConflict marks an operation invalid in the resource's current
	// state (e.g. canceling a finished job).
	CodeConflict = "conflict"
	// CodeLeaseLost marks a fleet call under a lease the coordinator no
	// longer recognizes (expired, superseded or canceled); the worker must
	// abandon the shard.
	CodeLeaseLost = "lease-lost"
	// CodeOverloaded marks a submission rejected by backpressure: the
	// server's queue of waiting jobs is full. The response carries a
	// Retry-After header (mirrored in RetryAfterS) and the request was NOT
	// processed, so retrying it is always safe.
	CodeOverloaded = "overloaded"
	// CodeDraining marks a submission rejected because the server is
	// shutting down gracefully: it no longer accepts work but keeps
	// serving reads and running jobs until its drain timeout. The response
	// carries a Retry-After hint and the request was NOT processed, so
	// retrying (ideally against another replica) is always safe.
	CodeDraining = "draining"
	// CodeDegraded marks a submission shed because the server's job store
	// is failing writes: accepting work it cannot persist would break the
	// durability contract. The request was NOT processed; retry after the
	// Retry-After hint — the server recovers as soon as a store write
	// succeeds again.
	CodeDegraded = "degraded"
	// CodeSurrogateNotReady marks a surrogate query against a model that is
	// still building or whose build failed (HTTP 409). The response's
	// FallbackJob carries a ready-to-submit batch answering the same
	// question on the FEM path, and RetryAfterS hints when to re-query a
	// still-building surrogate.
	CodeSurrogateNotReady = "surrogate-not-ready"
	// CodeOutOfDomain marks a surrogate query outside the trained
	// sparse-grid region (HTTP 422): the surrogate refuses to extrapolate.
	// The response's FallbackJob carries the FEM batch that answers the
	// query exactly.
	CodeOutOfDomain = "out-of-domain"
	// CodeUnsupportedVersion marks a request demanding an API version the
	// server does not speak.
	CodeUnsupportedVersion = "unsupported-version"
	// CodeInternal marks a server-side failure.
	CodeInternal = "internal"
)

// ErrorTypeBase prefixes the "type" URI of error bodies; the full type of
// a condition is ErrorTypeBase + Code.
const ErrorTypeBase = "urn:etherm:error:"

// Error is the uniform error body of every non-2xx response: an RFC-9457
// problem detail plus the machine-readable Code extension. It implements
// the error interface, so SDK methods return it directly.
type Error struct {
	// Type is a URI reference identifying the error condition
	// (ErrorTypeBase + Code; "about:blank" when no code applies).
	Type string `json:"type,omitempty"`
	// Title is the short, human-readable summary of the condition
	// (typically the HTTP status text).
	Title string `json:"title"`
	// Status is the HTTP status code of the response.
	Status int `json:"status"`
	// Detail explains this occurrence of the error.
	Detail string `json:"detail,omitempty"`
	// Instance identifies the request that failed (the request path).
	Instance string `json:"instance,omitempty"`
	// Code is the machine-readable condition slug (see the Code…
	// constants).
	Code string `json:"code,omitempty"`
	// RetryAfterS, when non-zero, is the server's Retry-After hint in
	// seconds (set on 429 overload responses; the SDK uses it as the
	// retry backoff).
	RetryAfterS int `json:"retry_after_s,omitempty"`
	// FallbackJob, when non-nil, is a ready-to-submit batch document that
	// answers the failed request on the FEM job path. Set on surrogate
	// redirects (CodeSurrogateNotReady, CodeOutOfDomain): POST it to
	// /v1/jobs to compute the same quantity with full solves.
	FallbackJob *Batch `json:"fallback_job,omitempty"`
}

// NewError builds a problem for an HTTP status, condition code and detail.
func NewError(status int, code, detail string) *Error {
	e := &Error{
		Title:  http.StatusText(status),
		Status: status,
		Detail: detail,
		Code:   code,
	}
	if code != "" {
		e.Type = ErrorTypeBase + code
	}
	return e
}

// Errorf is NewError with a formatted detail.
func Errorf(status int, code, format string, args ...any) *Error {
	return NewError(status, code, fmt.Sprintf(format, args...))
}

// Error implements the error interface.
func (e *Error) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "api: %d %s", e.Status, e.Title)
	if e.Code != "" {
		fmt.Fprintf(&b, " (%s)", e.Code)
	}
	if e.Detail != "" {
		b.WriteString(": ")
		b.WriteString(e.Detail)
	}
	return b.String()
}

// WriteError renders the problem on a response with the problem+json
// content type. A nil request is allowed (Instance stays empty). A
// non-zero RetryAfterS also sets the Retry-After header.
func WriteError(w http.ResponseWriter, r *http.Request, e *Error) {
	if r != nil && e.Instance == "" {
		cp := *e
		cp.Instance = r.URL.Path
		e = &cp
	}
	if e.RetryAfterS > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(e.RetryAfterS))
	}
	w.Header().Set("Content-Type", ProblemContentType)
	w.WriteHeader(e.Status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(e)
}

// WriteJSON renders a success body with the API's JSON conventions
// (indented, application/json). Error bodies go through WriteError
// instead, so every non-2xx response is a problem+json envelope.
func WriteJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// ErrorFromResponse decodes the error of a non-2xx response. Problem+json
// bodies decode into their original *Error; anything else (a proxy's HTML
// page, a plain-text body) is wrapped into a synthetic *Error carrying the
// status, so callers can uniformly errors.As into *Error. A Retry-After
// header (whole seconds) is folded into RetryAfterS when the body did not
// carry it.
func ErrorFromResponse(resp *http.Response) error {
	retryAfter := 0
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		if n, err := strconv.Atoi(ra); err == nil && n > 0 {
			retryAfter = n
		}
	}
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	mt, _, _ := mime.ParseMediaType(resp.Header.Get("Content-Type"))
	if mt == ProblemContentType || mt == "application/json" {
		var e Error
		if err := json.Unmarshal(body, &e); err == nil && e.Status != 0 {
			if e.RetryAfterS == 0 {
				e.RetryAfterS = retryAfter
			}
			return &e
		}
	}
	detail := strings.TrimSpace(string(body))
	if len(detail) > 200 {
		detail = detail[:200]
	}
	return &Error{
		Title:       http.StatusText(resp.StatusCode),
		Status:      resp.StatusCode,
		Detail:      detail,
		RetryAfterS: retryAfter,
	}
}

// AsError unwraps err into the *Error it carries, if any.
func AsError(err error) (*Error, bool) {
	var e *Error
	if errors.As(err, &e) {
		return e, true
	}
	return nil, false
}

// IsLeaseLost reports whether err is the coordinator's lease-lost
// condition (HTTP 410 / CodeLeaseLost): the worker's lease expired, was
// superseded or its job was canceled, and the shard must be abandoned.
func IsLeaseLost(err error) bool {
	e, ok := AsError(err)
	return ok && (e.Code == CodeLeaseLost || e.Status == http.StatusGone)
}

// IsNotFound reports whether err is a 404 problem.
func IsNotFound(err error) bool {
	e, ok := AsError(err)
	return ok && e.Status == http.StatusNotFound
}

// IsConflict reports whether err is a 409 problem.
func IsConflict(err error) bool {
	e, ok := AsError(err)
	return ok && e.Status == http.StatusConflict
}

// IsOverloaded reports whether err is the server's backpressure rejection
// (HTTP 429 / CodeOverloaded). The request was not processed; retry after
// the RetryAfterS hint.
func IsOverloaded(err error) bool {
	e, ok := AsError(err)
	return ok && (e.Code == CodeOverloaded || e.Status == http.StatusTooManyRequests)
}

// IsDraining reports whether err is the graceful-shutdown rejection
// (HTTP 503 / CodeDraining): the server is draining and no longer accepts
// submissions. The request was not processed.
func IsDraining(err error) bool {
	e, ok := AsError(err)
	return ok && e.Code == CodeDraining
}

// IsDegraded reports whether err is the degraded-store rejection
// (HTTP 503 / CodeDegraded): the server is shedding submissions because
// job-store writes are failing. The request was not processed.
func IsDegraded(err error) bool {
	e, ok := AsError(err)
	return ok && e.Code == CodeDegraded
}

// IsSurrogateNotReady reports whether err is the surrogate-not-ready
// redirect (HTTP 409 / CodeSurrogateNotReady): the surrogate exists but
// cannot serve yet (building) or ever (failed). The error's FallbackJob
// answers the same question on the FEM path.
func IsSurrogateNotReady(err error) bool {
	e, ok := AsError(err)
	return ok && e.Code == CodeSurrogateNotReady
}

// IsOutOfDomain reports whether err is the out-of-domain redirect
// (HTTP 422 / CodeOutOfDomain): the query left the surrogate's trained
// region and the error's FallbackJob carries the exact FEM computation.
func IsOutOfDomain(err error) bool {
	e, ok := AsError(err)
	return ok && e.Code == CodeOutOfDomain
}

// IsShedding reports whether err is any server-side load-shedding
// rejection — backpressure (429 overloaded), graceful drain or degraded
// store (503) — all of which guarantee the request was NOT processed.
// Because of that guarantee, even non-idempotent calls (submissions) are
// always safe to retry on a shedding rejection, and the SDK does so
// automatically.
func IsShedding(err error) bool {
	return IsOverloaded(err) || IsDraining(err) || IsDegraded(err)
}
