package api

// EventType labels one server-sent event of the job progress stream
// (GET /v1/jobs/{id}/events). Each SSE frame carries the type twice: as
// the SSE "event:" field and as the "type" member of the JSON "data:"
// payload (a JobEvent), so both EventSource-style and plain-JSON consumers
// can dispatch on it.
type EventType string

// Job progress event types.
const (
	// EventStatus reports the job's lifecycle state. The stream opens with
	// one (the snapshot at subscribe time) and closes after the one whose
	// Status is terminal.
	EventStatus EventType = "status"
	// EventScenario fires when one scenario of a batch job completes
	// (Phase "done" or "failed"); Progress carries the updated counters.
	EventScenario EventType = "scenario"
	// EventSample reports streaming-campaign sample progress of one
	// scenario (Done of Total evaluations). Consecutive sample events of
	// the same scenario may be coalesced under load — consumers see the
	// latest count, not necessarily every increment.
	EventSample EventType = "sample"
	// EventLevel reports per-level progress of a failure_probability
	// scenario: Done of Total subset-simulation levels, with the completed
	// level's telemetry in Level.
	EventLevel EventType = "level"
	// EventShards reports shard progress of a fleet job (ShardsDone of
	// ShardsTotal accepted by the coordinator).
	EventShards EventType = "shards"
	// EventShutdown announces a graceful server drain: the stream ends
	// after this event even though the job is NOT terminal. Consumers
	// should reconnect (to a replica, or to the same server if it is
	// merely restarting) or fall back to polling; the SDK's Wait helpers
	// do the latter automatically. Terminal() is false for this event —
	// it ends the stream, not the job.
	EventShutdown EventType = "shutdown"
)

// JobEvent is the JSON payload of one progress event. Fields beyond Type
// and JobID are populated per event type as documented on the constants.
type JobEvent struct {
	Type  EventType `json:"type"`
	JobID string    `json:"job_id"`
	// Status is set on EventStatus (and, for fleet jobs, EventShards).
	Status JobStatus `json:"status,omitempty"`
	// Scenario names the scenario of EventScenario/EventSample/EventLevel.
	Scenario string `json:"scenario,omitempty"`
	// Phase is "done" or "failed" on EventScenario.
	Phase string `json:"phase,omitempty"`
	// Done/Total carry sample progress on EventSample and level progress on
	// EventLevel.
	Done  int `json:"done,omitempty"`
	Total int `json:"total,omitempty"`
	// Level carries the completed subset-simulation level on EventLevel.
	Level *RareLevel `json:"level,omitempty"`
	// Progress carries the batch job's scenario counters on EventStatus
	// and EventScenario.
	Progress *JobProgress `json:"progress,omitempty"`
	// ShardsDone/ShardsTotal carry fleet shard progress on EventShards.
	ShardsDone  int `json:"shards_done,omitempty"`
	ShardsTotal int `json:"shards_total,omitempty"`
	// Error carries the job error on a terminal failed/canceled status.
	Error string `json:"error,omitempty"`
}

// Terminal reports whether the event announces a terminal job state (the
// server closes the stream after sending it).
func (e JobEvent) Terminal() bool {
	return e.Type == EventStatus && e.Status.Finished()
}
