// Package api is the public, versioned wire contract of the etherm
// services: every request and response body exchanged with cmd/etserver
// (batch jobs, scenario presets, health) and its fleet coordinator (shard
// leases, heartbeats, shard results) is declared here, together with the
// RFC-9457 problem+json error envelope and the server-sent-event schema of
// the job progress stream.
//
// The package depends only on the standard library and exposes no
// internal/ type in any exported signature, so external programs can
// import it (and the matching Go SDK in package client) directly. The
// JSON shape of every type is frozen per API version and conformance
// tests in internal/apiconv pin it field-for-field against the engine's
// internal types — adding a field is a compatible change, renaming or
// removing one requires a new version.
package api

import "fmt"

// APIVersion is the frozen wire-contract version implemented by this
// package. Servers stamp it on every response via VersionHeader; clients
// may send it to demand a specific version and receive a problem+json
// error (CodeUnsupportedVersion) when the server speaks a different one.
const APIVersion = "v1"

// VersionHeader is the HTTP header carrying the negotiated API version.
const VersionHeader = "ET-API-Version"

// Route is one method + pattern of the HTTP surface, in net/http.ServeMux
// pattern syntax ("{id}" path parameters).
type Route struct {
	Method  string
	Pattern string
}

// String renders the route as a ServeMux registration pattern.
func (r Route) String() string { return r.Method + " " + r.Pattern }

// FleetPrefix is the mount point of the fleet coordinator endpoints.
const FleetPrefix = "/v1/fleet"

// Routes returns the complete v1 HTTP surface. It is the single source of
// truth for the routes a conforming server must register: the server's
// mux is built from it, cmd/openapicheck diffs openapi.yaml against it,
// and the SDK derives its request paths from the same patterns.
func Routes() []Route {
	return []Route{
		{"GET", "/healthz"},
		{"GET", "/metrics"},
		{"POST", "/v1/jobs"},
		{"GET", "/v1/jobs"},
		{"GET", "/v1/jobs/{id}"},
		{"DELETE", "/v1/jobs/{id}"},
		{"GET", "/v1/jobs/{id}/events"},
		{"GET", "/v1/scenarios/presets"},
		{"POST", FleetPrefix + "/jobs"},
		{"GET", FleetPrefix + "/jobs"},
		{"GET", FleetPrefix + "/jobs/{id}"},
		{"DELETE", FleetPrefix + "/jobs/{id}"},
		{"POST", FleetPrefix + "/lease"},
		{"POST", FleetPrefix + "/heartbeat"},
		{"POST", FleetPrefix + "/result"},
		{"POST", FleetPrefix + "/fail"},
		{"POST", "/v1/surrogates"},
		{"GET", "/v1/surrogates"},
		{"GET", "/v1/surrogates/{id}"},
		{"POST", "/v1/surrogates/{id}/query"},
	}
}

// SurrogatesPath is the surrogate collection endpoint.
const SurrogatesPath = "/v1/surrogates"

// SurrogatePath returns the resource path of one surrogate.
func SurrogatePath(id string) string { return SurrogatesPath + "/" + id }

// SurrogateQueryPath returns the query endpoint of one surrogate.
func SurrogateQueryPath(id string) string { return SurrogatePath(id) + "/query" }

// JobPath returns the resource path of one batch or fleet job.
func JobPath(id string) string { return "/v1/jobs/" + id }

// JobEventsPath returns the SSE stream path of one job.
func JobEventsPath(id string) string { return JobPath(id) + "/events" }

// FleetJobPath returns the resource path of one fleet job.
func FleetJobPath(id string) string { return FleetPrefix + "/jobs/" + id }

// CheckVersion validates a client-requested API version; empty means "any"
// and is accepted.
func CheckVersion(requested string) error {
	if requested == "" || requested == APIVersion {
		return nil
	}
	return fmt.Errorf("api: unsupported API version %q (server speaks %s)", requested, APIVersion)
}
