GO ?= go

# bench-json/bench-smoke pipe `go test` into benchjson; pipefail makes a
# failing benchmark fail the pipeline instead of hiding behind the parser's
# exit status.
SHELL := /bin/bash
.SHELLFLAGS := -o pipefail -ec

# Benchmarks tracked by bench-json; BENCH_OUT is the trajectory file each PR
# appends its machine-local baseline to (PR 2 recorded BENCH_PR2.json, PR 4
# BENCH_PR4.json, PR 8 BENCH_PR8.json, PR 9 BENCH_PR9.json, PR 10
# BENCH_PR10.json — the baseline the bench-gate compares against).
# BenchmarkCampaignStreaming carries the retained-heap metric of the
# streaming campaign path (the hard memory gate lives in internal/uq tests);
# BenchmarkMatvec tracks the CSR kernel variants (scalar reference,
# cache-blocked, f32, parallel) that carry the CG inner loop;
# BenchmarkSurrogateQuery tracks the surrogate read path (the p50 < 1ms
# query-latency acceptance of the /v1/surrogates API); BenchmarkRareSolves
# reports the solves metric — limit-state evaluations each estimator (MC,
# RQMC, subset simulation) needs to reach CoV ≤ 0.3 on the same planted
# rare event — the headline economics of the rare-event engine.
BENCH_PATTERN ?= BenchmarkTable2NominalRun|BenchmarkFig7MonteCarlo|BenchmarkSolverReuse|BenchmarkCampaignStreaming|BenchmarkMatvec|BenchmarkSurrogateQuery|BenchmarkRareSolves
# Packages holding tracked benchmarks (the root package carries the paper
# artifacts; internal/rare carries the estimator-economy benchmark).
BENCH_PKGS ?= . ./internal/rare
BENCH_OUT ?= BENCH_PR10.json
BENCH_TIME ?= 3x
BENCH_BASELINE ?= BENCH_PR10.json
BENCH_TOLERANCE ?= 0.25
# Wall-time tolerance for the gate (0 = BENCH_TOLERANCE). CI passes a
# looser value because single-iteration ns/op on shared runners is noisy
# and the committed baseline is machine-local; allocs/op and retained_B
# are deterministic and stay at BENCH_TOLERANCE.
BENCH_TIME_TOLERANCE ?= 0
STATICCHECK_VERSION ?= 2025.1.1

.PHONY: all build verify test vet fmt-check race staticcheck openapi-check bench bench-json bench-smoke bench-gate profile fuzz-smoke load-smoke chaos-smoke govulncheck demo clean

all: build

# verify is the fast tier-1 gate mirrored by CI's verify job; race,
# staticcheck and bench-gate are the heavier CI jobs, runnable locally too.
verify: build vet fmt-check openapi-check test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# race mirrors CI's race job: the full suite under the race detector (the
# coordinator/worker fleet paths and the SSE hub soak are the hot spots it
# watches), with shuffled test order so inter-test state dependencies
# cannot hide.
race:
	$(GO) test -race -shuffle=on -timeout 30m ./...

# staticcheck mirrors CI's pinned staticcheck job. Installs on demand when
# the binary is missing (requires network once).
staticcheck:
	@command -v staticcheck >/dev/null || $(GO) install honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION)
	staticcheck ./...

# openapi-check validates openapi.yaml and diffs its path/method surface
# against the authoritative route table api.Routes() — the spec, the server
# mux and the SDK share that table, so drift fails the build.
openapi-check:
	$(GO) run ./cmd/openapicheck -spec openapi.yaml

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

test:
	$(GO) test ./...

# bench regenerates the paper's tables and figures (expensive).
bench:
	$(GO) test -bench . -benchtime 1x -timeout 60m

# bench-json runs the tracked tier-1-adjacent benchmarks and writes a JSON
# trajectory file (ns/op, allocs/op, headline metrics) for regression
# tracking across PRs.
bench-json:
	$(GO) test $(BENCH_PKGS) -run '^$$' -bench '$(BENCH_PATTERN)' -benchmem \
		-benchtime $(BENCH_TIME) -timeout 60m \
		| $(GO) run ./cmd/benchjson -out $(BENCH_OUT)

# bench-smoke is the CI variant: single iteration, JSON written to
# BENCH_SMOKE_OUT (uploaded as a CI artifact) — it proves the benchmarks and
# the JSON pipeline stay alive and preserves the per-commit trajectory.
BENCH_SMOKE_OUT ?= out/bench_smoke.json
bench-smoke:
	@mkdir -p $(dir $(BENCH_SMOKE_OUT))
	$(GO) test $(BENCH_PKGS) -run '^$$' -bench '$(BENCH_PATTERN)' -benchmem \
		-benchtime 1x -timeout 30m \
		| $(GO) run ./cmd/benchjson -out $(BENCH_SMOKE_OUT)

# bench-gate fails when tracked ns/op, allocs/op, retained_B or solves
# regress beyond BENCH_TOLERANCE against the committed BENCH_BASELINE
# (solves — limit-state evaluations to the target CoV — is seeded and
# deterministic, so a tighter estimator economy can be held like a heap
# bound). Reuses the bench-smoke output when present, else runs
# bench-smoke first.
BENCH_GATE_METRICS ?= retained_B,solves
bench-gate: $(if $(wildcard $(BENCH_SMOKE_OUT)),,bench-smoke)
	$(GO) run ./cmd/benchjson -compare $(BENCH_BASELINE) \
		-in $(BENCH_SMOKE_OUT) -tolerance $(BENCH_TOLERANCE) \
		-time-tolerance $(BENCH_TIME_TOLERANCE) \
		-gate-metrics $(BENCH_GATE_METRICS)

# profile captures a CPU profile of the nominal-run benchmark (the hot
# path: FIT reassembly + preconditioned CG) and prints the top consumers.
# Inspect interactively with `go tool pprof out/table2.test out/cpu.out`;
# for a live server use `etserver -pprof 127.0.0.1:6060` instead.
PROFILE_BENCH ?= BenchmarkTable2NominalRun
profile:
	@mkdir -p out
	$(GO) test -run '^$$' -bench '$(PROFILE_BENCH)' -benchtime 5x \
		-cpuprofile out/cpu.out -o out/table2.test -timeout 30m
	$(GO) tool pprof -top -nodecount 15 out/table2.test out/cpu.out

# fuzz-smoke gives each fuzzer a short budget on top of its committed
# corpus — CI runs this on every push; long exploratory runs stay local
# (`go test -fuzz ... -fuzztime 10m`). FuzzWALReplay/FuzzSnapshotDecode
# cover the jobstore crash-recovery decoders; FuzzScrambledSobol checks
# the Owen-scrambled Sobol' invariants (range, determinism, coordinate
# balance) over arbitrary dimension/seed/index triples.
FUZZ_TIME ?= 15s
fuzz-smoke:
	$(GO) test ./internal/jobstore -run '^$$' -fuzz '^FuzzWALReplay$$' -fuzztime $(FUZZ_TIME)
	$(GO) test ./internal/jobstore -run '^$$' -fuzz '^FuzzSnapshotDecode$$' -fuzztime $(FUZZ_TIME)
	$(GO) test ./internal/rare -run '^$$' -fuzz '^FuzzScrambledSobol$$' -fuzztime $(FUZZ_TIME)

# load-smoke drives cmd/etload against an in-process server: a sustained
# throughput pass plus the surrogate read-traffic phase (500 queries from 16
# concurrent clients against a cheap surrogate, zero errors tolerated, the
# out-of-domain fallback contract probed), then a fan-out pass that must hold
# ≥1000 concurrent SSE watchers with zero dropped terminal events. Nonzero
# exit on any drop, failed job, query error or watcher shortfall gates CI;
# the JSON latency reports are uploaded as artifacts by the bench-gate job.
LOAD_SMOKE_OUT ?= out/etload.json
LOAD_SMOKE_FANOUT_OUT ?= out/etload_fanout.json
load-smoke:
	@mkdir -p $(dir $(LOAD_SMOKE_OUT))
	$(GO) run ./cmd/etload -self -jobs 200 -watchers 100 \
		-min-peak-watchers 100 \
		-surrogate-queries 500 -surrogate-queriers 16 -out $(LOAD_SMOKE_OUT)
	$(GO) run ./cmd/etload -self -jobs 20 -watchers 1000 -anchors 8 \
		-min-peak-watchers 1000 -out $(LOAD_SMOKE_FANOUT_OUT)

# chaos-smoke is the robustness gate: the etload run repeated under
# deterministic fault injection with a pinned seed (any failure replays
# from the spec recorded in the report) — the process must survive, no
# watcher may lose its terminal event, and the sharded fleet merge must
# stay bit-identical to a clean run through the injected re-lease storm.
# Then a real etserver process is drained with SIGTERM and must exit 0.
CHAOS_SEED ?= 20160607
CHAOS_SMOKE_OUT ?= out/etload_chaos.json
CHAOS_ADDR ?= 127.0.0.1:18766
chaos-smoke:
	@mkdir -p out
	$(GO) run ./cmd/etload -self -chaos -chaos-seed $(CHAOS_SEED) \
		-jobs 30 -watchers 40 -anchors 3 -concurrency 8 \
		-timeout 5m -out $(CHAOS_SMOKE_OUT)
	$(GO) build -o out/etserver ./cmd/etserver
	@out/etserver -addr $(CHAOS_ADDR) -drain-timeout 20s & pid=$$!; \
	up=0; for i in $$(seq 1 50); do \
		if curl -fsS http://$(CHAOS_ADDR)/healthz >/dev/null 2>&1; then up=1; break; fi; \
		sleep 0.2; \
	done; \
	if [ "$$up" != 1 ]; then echo "etserver never became healthy"; kill $$pid; exit 1; fi; \
	kill -TERM $$pid; \
	if wait $$pid; then echo "SIGTERM drain: clean exit"; else \
		echo "SIGTERM drain: etserver exited nonzero"; exit 1; fi

# govulncheck scans the module against the Go vulnerability database.
# Installs on demand when the binary is missing (requires network once).
govulncheck:
	@command -v govulncheck >/dev/null || $(GO) install golang.org/x/vuln/cmd/govulncheck@latest
	govulncheck ./...

# demo runs the bundled batch scenario suite.
demo:
	$(GO) run ./cmd/etbatch -bundled -out out/etbatch_manifest.json

clean:
	rm -rf out
