GO ?= go

.PHONY: all build verify test vet fmt-check bench demo clean

all: build

build:
	$(GO) build ./...

# verify is the tier-1 gate mirrored by CI.
verify: build vet fmt-check test

vet:
	$(GO) vet ./...

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

test:
	$(GO) test ./...

# bench regenerates the paper's tables and figures (expensive).
bench:
	$(GO) test -bench . -benchtime 1x -timeout 60m

# demo runs the bundled batch scenario suite.
demo:
	$(GO) run ./cmd/etbatch -bundled -out out/etbatch_manifest.json

clean:
	rm -rf out
