GO ?= go

# bench-json/bench-smoke pipe `go test` into benchjson; pipefail makes a
# failing benchmark fail the pipeline instead of hiding behind the parser's
# exit status.
SHELL := /bin/bash
.SHELLFLAGS := -o pipefail -ec

# Benchmarks tracked by bench-json; BENCH_OUT is the trajectory file each PR
# appends its machine-local baseline to (PR 2 recorded BENCH_PR2.json).
# BenchmarkCampaignStreaming carries the retained-heap metric of the
# streaming campaign path (the hard memory gate lives in internal/uq tests).
BENCH_PATTERN ?= BenchmarkTable2NominalRun|BenchmarkFig7MonteCarlo|BenchmarkSolverReuse|BenchmarkCampaignStreaming
BENCH_OUT ?= BENCH_PR2.json
BENCH_TIME ?= 3x

.PHONY: all build verify test vet fmt-check bench bench-json bench-smoke demo clean

all: build

build:
	$(GO) build ./...

# verify is the tier-1 gate mirrored by CI.
verify: build vet fmt-check test

vet:
	$(GO) vet ./...

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

test:
	$(GO) test ./...

# bench regenerates the paper's tables and figures (expensive).
bench:
	$(GO) test -bench . -benchtime 1x -timeout 60m

# bench-json runs the tracked tier-1-adjacent benchmarks and writes a JSON
# trajectory file (ns/op, allocs/op, headline metrics) for regression
# tracking across PRs.
bench-json:
	$(GO) test -run '^$$' -bench '$(BENCH_PATTERN)' -benchmem \
		-benchtime $(BENCH_TIME) -timeout 60m \
		| $(GO) run ./cmd/benchjson -out $(BENCH_OUT)

# bench-smoke is the CI variant: single iteration, JSON written to
# BENCH_SMOKE_OUT (uploaded as a CI artifact) — it proves the benchmarks and
# the JSON pipeline stay alive and preserves the per-commit trajectory.
BENCH_SMOKE_OUT ?= out/bench_smoke.json
bench-smoke:
	@mkdir -p $(dir $(BENCH_SMOKE_OUT))
	$(GO) test -run '^$$' -bench '$(BENCH_PATTERN)' -benchmem \
		-benchtime 1x -timeout 30m \
		| $(GO) run ./cmd/benchjson -out $(BENCH_SMOKE_OUT)

# demo runs the bundled batch scenario suite.
demo:
	$(GO) run ./cmd/etbatch -bundled -out out/etbatch_manifest.json

clean:
	rm -rf out
