package client

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"

	"etherm/api"
)

// WatchJob subscribes to the server-sent progress stream of a job
// (GET /v1/jobs/{id}/events) and delivers its events — scenario
// completions, streaming-campaign sample counts and, for fleet jobs, shard
// progress — until the job reaches a terminal state. It works for both
// batch ("job-…") and fleet ("fleet-…") job IDs.
//
// The events channel closes when the stream ends; the error channel then
// yields exactly one value: nil after a clean close (a terminal event was
// observed) or the error that broke the stream (including ctx.Err() when
// the caller canceled the watch). A canceled job terminates the stream
// normally with a final "status" event of status "canceled".
func (c *Client) WatchJob(ctx context.Context, id string) (<-chan api.JobEvent, <-chan error) {
	events := make(chan api.JobEvent, 16)
	errc := make(chan error, 1)
	go func() {
		defer close(events)
		errc <- c.watch(ctx, id, events)
	}()
	return events, errc
}

// watch runs one SSE subscription, pushing decoded events to out.
func (c *Client) watch(ctx context.Context, id string, out chan<- api.JobEvent) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+api.JobEventsPath(id), nil)
	if err != nil {
		return err
	}
	req.Header.Set("Accept", "text/event-stream")
	req.Header.Set(api.VersionHeader, api.APIVersion)
	resp, err := c.httpc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return api.ErrorFromResponse(resp)
	}
	if mt := resp.Header.Get("Content-Type"); !strings.HasPrefix(mt, "text/event-stream") {
		return fmt.Errorf("client: job events endpoint returned %q, not an event stream", mt)
	}

	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 4096), 1<<20)
	var data strings.Builder
	terminal := false
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			// Frame boundary: dispatch accumulated data.
			if data.Len() > 0 {
				var ev api.JobEvent
				if err := json.Unmarshal([]byte(data.String()), &ev); err != nil {
					return fmt.Errorf("client: bad job event: %w", err)
				}
				data.Reset()
				select {
				case out <- ev:
				case <-ctx.Done():
					return ctx.Err()
				}
				if ev.Terminal() {
					terminal = true
				}
			}
		case strings.HasPrefix(line, "data:"):
			// Multi-line data fields concatenate with newlines (SSE spec).
			if data.Len() > 0 {
				data.WriteByte('\n')
			}
			data.WriteString(strings.TrimPrefix(strings.TrimPrefix(line, "data:"), " "))
		default:
			// "event:", "id:", "retry:" and ": keepalive" comments carry no
			// payload we need — the JSON data duplicates the event type.
		}
	}
	if err := sc.Err(); err != nil {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		return err
	}
	if !terminal {
		return fmt.Errorf("client: job event stream ended before a terminal state")
	}
	return nil
}
