package client

import (
	"context"
	"net/http"
	"time"

	"etherm/api"
)

// Surrogate serving. BuildSurrogate starts (or joins) an asynchronous
// build; queries are read-only and idempotent, so QuerySurrogate retries
// blindly like a GET even though it rides a POST. A query the surrogate
// cannot serve comes back as an *api.Error for which
// api.IsSurrogateNotReady or api.IsOutOfDomain is true; its FallbackJob
// field is a ready-to-submit batch for SubmitBatch.

// BuildSurrogate submits a surrogate build (POST /v1/surrogates). The
// returned metadata is building (202) or — when a ready surrogate with
// the same fingerprint already exists and Rebuild is false — ready (200).
// Follow a building surrogate with GetSurrogate or WaitSurrogate.
func (c *Client) BuildSurrogate(ctx context.Context, spec *api.SurrogateSpec) (*api.Surrogate, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	var sg api.Surrogate
	if err := c.do(ctx, http.MethodPost, api.SurrogatesPath, spec, &sg, false); err != nil {
		return nil, err
	}
	return &sg, nil
}

// GetSurrogate fetches one surrogate's metadata (GET /v1/surrogates/{id}).
func (c *Client) GetSurrogate(ctx context.Context, id string) (*api.Surrogate, error) {
	var sg api.Surrogate
	if err := c.do(ctx, http.MethodGet, api.SurrogatePath(id), nil, &sg, true); err != nil {
		return nil, err
	}
	return &sg, nil
}

// ListSurrogates returns every surrogate the server knows
// (GET /v1/surrogates).
func (c *Client) ListSurrogates(ctx context.Context) (*api.SurrogateList, error) {
	var list api.SurrogateList
	if err := c.do(ctx, http.MethodGet, api.SurrogatesPath, nil, &list, true); err != nil {
		return nil, err
	}
	return &list, nil
}

// QuerySurrogate evaluates statistics against a ready surrogate
// (POST /v1/surrogates/{id}/query). The call is idempotent — it is
// retried like a GET. A nil query asks for the default answer (moments
// and the failure probability at the surrogate's critical temperature).
func (c *Client) QuerySurrogate(ctx context.Context, id string, q *api.SurrogateQuery) (*api.SurrogateAnswer, error) {
	if q == nil {
		q = &api.SurrogateQuery{}
	}
	var ans api.SurrogateAnswer
	if err := c.do(ctx, http.MethodPost, api.SurrogateQueryPath(id), q, &ans, true); err != nil {
		return nil, err
	}
	return &ans, nil
}

// WaitSurrogate polls until a surrogate leaves the building state and
// returns its final metadata; a failed build is returned as metadata, not
// an error (inspect Status and Error). The context bounds the wait.
func (c *Client) WaitSurrogate(ctx context.Context, id string) (*api.Surrogate, error) {
	for {
		sg, err := c.GetSurrogate(ctx, id)
		if err != nil {
			return nil, err
		}
		if sg.Status != api.SurrogateBuilding {
			return sg, nil
		}
		if err := sleepCtx(ctx, 250*time.Millisecond); err != nil {
			return nil, err
		}
	}
}
