// The SDK tests run against fake httptest handlers, so they cover the
// client's wire behavior — paths, bodies, headers, retries, pagination,
// SSE framing — without running simulations. They live in package
// client_test and import only the public api and client packages, which
// doubles as the importability proof: no internal type appears in any
// signature the tests touch.
package client_test

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync/atomic"
	"testing"
	"time"

	"etherm/api"
	"etherm/client"
)

// fakeServer builds an httptest server from a handler map keyed by
// "METHOD /path" patterns, answering problem+json 404s otherwise.
func fakeServer(t *testing.T, handlers map[string]http.HandlerFunc) (*httptest.Server, *client.Client) {
	t.Helper()
	mux := http.NewServeMux()
	for pattern, h := range handlers {
		mux.HandleFunc(pattern, h)
	}
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if _, pattern := mux.Handler(r); pattern == "" {
			api.WriteError(w, r, api.Errorf(http.StatusNotFound, api.CodeNotFound, "no route %s", r.URL.Path))
			return
		}
		mux.ServeHTTP(w, r)
	}))
	t.Cleanup(ts.Close)
	return ts, client.New(ts.URL, client.WithRetry(3, time.Millisecond))
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	api.WriteJSON(w, status, v)
}

// TestClientMethodRoundTrips drives every plain request/response method of
// the SDK against canned handlers, asserting the method, path, version
// header and body shape of each call.
func TestClientMethodRoundTrips(t *testing.T) {
	ctx := context.Background()
	now := time.Now().UTC().Truncate(time.Second)
	job := &api.Job{ID: "job-000001", Status: api.JobQueued, SubmittedAt: now,
		Progress: api.JobProgress{ScenariosTotal: 1}}
	fleetJob := &api.FleetJob{ID: "fleet-000001", Status: api.JobRunning,
		Scenario: api.Scenario{Name: "s"},
		Plan:     &api.ShardPlan{MaxSamples: 8, BlockSize: 2, NumShards: 2},
		Shards: []api.ShardStatus{
			{Shard: 0, Start: 0, End: 4, Status: api.ShardPending},
			{Shard: 1, Start: 4, End: 8, Status: api.ShardPending},
		}}
	lease := &api.FleetLease{JobID: "fleet-000001", LeaseID: "lease-000001", Shard: 1,
		LeaseTTL: 5 * time.Second, Plan: fleetJob.Plan, Scenario: fleetJob.Scenario}

	var gotResult api.ShardResultRequest
	var gotFail api.ShardFailRequest
	checkVersion := func(t *testing.T, r *http.Request) {
		if v := r.Header.Get(api.VersionHeader); v != api.APIVersion {
			t.Errorf("%s %s: version header %q", r.Method, r.URL.Path, v)
		}
	}
	_, cl := fakeServer(t, map[string]http.HandlerFunc{
		"POST /v1/jobs": func(w http.ResponseWriter, r *http.Request) {
			checkVersion(t, r)
			var b api.Batch
			if err := json.NewDecoder(r.Body).Decode(&b); err != nil || len(b.Scenarios) != 1 {
				t.Errorf("submit body wrong: %+v (%v)", b, err)
			}
			writeJSON(w, http.StatusAccepted, job)
		},
		"GET /v1/jobs/{id}": func(w http.ResponseWriter, r *http.Request) {
			checkVersion(t, r)
			if r.PathValue("id") != job.ID {
				api.WriteError(w, r, api.NewError(http.StatusNotFound, api.CodeNotFound, "no such job"))
				return
			}
			writeJSON(w, http.StatusOK, job)
		},
		"DELETE /v1/jobs/{id}": func(w http.ResponseWriter, r *http.Request) {
			cp := *job
			cp.Status = api.JobCanceled
			writeJSON(w, http.StatusAccepted, &cp)
		},
		"GET /v1/scenarios/presets": func(w http.ResponseWriter, r *http.Request) {
			writeJSON(w, http.StatusOK, &api.Batch{Scenarios: []api.Scenario{{Name: "p"}}})
		},
		"GET /healthz": func(w http.ResponseWriter, r *http.Request) {
			writeJSON(w, http.StatusOK, &api.Health{Status: "ok", Jobs: 2})
		},
		"POST /v1/fleet/jobs": func(w http.ResponseWriter, r *http.Request) {
			var s api.Scenario
			if err := json.NewDecoder(r.Body).Decode(&s); err != nil || s.Name != "s" {
				t.Errorf("fleet submit body wrong: %+v (%v)", s, err)
			}
			writeJSON(w, http.StatusAccepted, fleetJob)
		},
		"GET /v1/fleet/jobs": func(w http.ResponseWriter, r *http.Request) {
			writeJSON(w, http.StatusOK, []*api.FleetJob{fleetJob})
		},
		"GET /v1/fleet/jobs/{id}": func(w http.ResponseWriter, r *http.Request) {
			writeJSON(w, http.StatusOK, fleetJob)
		},
		"DELETE /v1/fleet/jobs/{id}": func(w http.ResponseWriter, r *http.Request) {
			cp := *fleetJob
			cp.Status = api.JobCanceled
			writeJSON(w, http.StatusAccepted, &cp)
		},
		"POST /v1/fleet/lease": func(w http.ResponseWriter, r *http.Request) {
			var req api.LeaseRequest
			if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.Worker != "w1" {
				t.Errorf("lease body wrong: %+v (%v)", req, err)
			}
			writeJSON(w, http.StatusOK, lease)
		},
		"POST /v1/fleet/heartbeat": func(w http.ResponseWriter, r *http.Request) {
			w.WriteHeader(http.StatusNoContent)
		},
		"POST /v1/fleet/result": func(w http.ResponseWriter, r *http.Request) {
			if err := json.NewDecoder(r.Body).Decode(&gotResult); err != nil {
				t.Error(err)
			}
			w.WriteHeader(http.StatusNoContent)
		},
		"POST /v1/fleet/fail": func(w http.ResponseWriter, r *http.Request) {
			if err := json.NewDecoder(r.Body).Decode(&gotFail); err != nil {
				t.Error(err)
			}
			w.WriteHeader(http.StatusNoContent)
		},
	})

	batch := &api.Batch{Scenarios: []api.Scenario{{Name: "s"}}}
	if got, err := cl.SubmitBatch(ctx, batch); err != nil || got.ID != job.ID {
		t.Errorf("SubmitBatch: %+v, %v", got, err)
	}
	if got, err := cl.GetJob(ctx, job.ID); err != nil || got.Status != api.JobQueued {
		t.Errorf("GetJob: %+v, %v", got, err)
	}
	if _, err := cl.GetJob(ctx, "job-000099"); !api.IsNotFound(err) {
		t.Errorf("GetJob unknown: %v", err)
	}
	if got, err := cl.CancelJob(ctx, job.ID); err != nil || got.Status != api.JobCanceled {
		t.Errorf("CancelJob: %+v, %v", got, err)
	}
	if got, err := cl.Presets(ctx); err != nil || len(got.Scenarios) != 1 {
		t.Errorf("Presets: %+v, %v", got, err)
	}
	if got, err := cl.Health(ctx); err != nil || got.Status != "ok" {
		t.Errorf("Health: %+v, %v", got, err)
	}
	if got, err := cl.SubmitFleetJob(ctx, &fleetJob.Scenario); err != nil || got.ID != fleetJob.ID {
		t.Errorf("SubmitFleetJob: %+v, %v", got, err)
	}
	if got, err := cl.GetFleetJob(ctx, fleetJob.ID); err != nil || len(got.Shards) != 2 {
		t.Errorf("GetFleetJob: %+v, %v", got, err)
	}
	if got, err := cl.ListFleetJobs(ctx); err != nil || len(got) != 1 {
		t.Errorf("ListFleetJobs: %+v, %v", got, err)
	}
	if got, err := cl.CancelFleetJob(ctx, fleetJob.ID); err != nil || got.Status != api.JobCanceled {
		t.Errorf("CancelFleetJob: %+v, %v", got, err)
	}
	gotLease, ok, err := cl.Lease(ctx, "w1")
	if err != nil || !ok || gotLease.LeaseID != lease.LeaseID || gotLease.LeaseTTL != lease.LeaseTTL {
		t.Errorf("Lease: %+v, ok=%v, %v", gotLease, ok, err)
	}
	if err := cl.Heartbeat(ctx, lease.LeaseID); err != nil {
		t.Errorf("Heartbeat: %v", err)
	}
	res := &api.ShardResult{Shard: 1, Start: 4, End: 8, BlockSize: 2, Sampler: "mc",
		NumOutputs: 2, Evaluated: 4,
		Blocks: []json.RawMessage{json.RawMessage(`{"n":2}`), json.RawMessage(`{"n":2}`)}}
	if err := cl.PostShardResult(ctx, lease.LeaseID, res); err != nil {
		t.Errorf("PostShardResult: %v", err)
	}
	if gotResult.LeaseID != lease.LeaseID || gotResult.Result == nil ||
		string(gotResult.Result.Blocks[0]) != `{"n":2}` {
		t.Errorf("result body mangled: %+v", gotResult)
	}
	if err := cl.FailShard(ctx, lease.LeaseID, "boom"); err != nil {
		t.Errorf("FailShard: %v", err)
	}
	if gotFail.LeaseID != lease.LeaseID || gotFail.Error != "boom" {
		t.Errorf("fail body mangled: %+v", gotFail)
	}
}

// TestLeaseNoWork covers the 204 no-work path.
func TestLeaseNoWork(t *testing.T) {
	_, cl := fakeServer(t, map[string]http.HandlerFunc{
		"POST /v1/fleet/lease": func(w http.ResponseWriter, r *http.Request) {
			w.WriteHeader(http.StatusNoContent)
		},
	})
	lease, ok, err := cl.Lease(context.Background(), "w")
	if err != nil || ok || lease != nil {
		t.Errorf("Lease on idle coordinator: %+v, ok=%v, %v", lease, ok, err)
	}
}

// TestRetryBackoffOn503 verifies the idempotent-call retry loop: two 503s,
// then success; and that non-idempotent calls never retry.
func TestRetryBackoffOn503(t *testing.T) {
	var gets, posts atomic.Int64
	_, cl := fakeServer(t, map[string]http.HandlerFunc{
		"GET /v1/jobs/{id}": func(w http.ResponseWriter, r *http.Request) {
			if gets.Add(1) <= 2 {
				api.WriteError(w, r, api.NewError(http.StatusServiceUnavailable, api.CodeInternal, "warming up"))
				return
			}
			writeJSON(w, http.StatusOK, &api.Job{ID: r.PathValue("id"), Status: api.JobDone})
		},
		"POST /v1/jobs": func(w http.ResponseWriter, r *http.Request) {
			posts.Add(1)
			api.WriteError(w, r, api.NewError(http.StatusServiceUnavailable, api.CodeInternal, "no"))
		},
	})
	job, err := cl.GetJob(context.Background(), "job-000001")
	if err != nil || job.Status != api.JobDone {
		t.Fatalf("GetJob after 503s: %+v, %v", job, err)
	}
	if n := gets.Load(); n != 3 {
		t.Errorf("GET attempted %d times, want 3 (2 × 503 + success)", n)
	}

	if _, err := cl.SubmitBatch(context.Background(),
		&api.Batch{Scenarios: []api.Scenario{{Name: "x"}}}); err == nil {
		t.Fatal("submit against a 503 server succeeded")
	}
	if n := posts.Load(); n != 1 {
		t.Errorf("non-idempotent POST attempted %d times, want exactly 1", n)
	}

	// A persistent 503 surfaces as *api.Error after the attempts run out.
	gets.Store(-100)
	_, err = cl.GetJob(context.Background(), "job-000001")
	e, ok := api.AsError(err)
	if !ok || e.Status != http.StatusServiceUnavailable {
		t.Errorf("exhausted retries error: %v", err)
	}
}

// TestListJobsCursorWalk pages through a fake 25-job history, checking the
// limit/cursor query parameters and the NextCursor chain.
func TestListJobsCursorWalk(t *testing.T) {
	const total, pageSize = 25, 10
	ids := make([]string, total)
	for i := range ids {
		ids[i] = fmt.Sprintf("job-%06d", total-i) // newest (highest seq) first
	}
	_, cl := fakeServer(t, map[string]http.HandlerFunc{
		"GET /v1/jobs": func(w http.ResponseWriter, r *http.Request) {
			limit, _ := strconv.Atoi(r.URL.Query().Get("limit"))
			if limit != pageSize {
				t.Errorf("limit %d requested, want %d", limit, pageSize)
			}
			start := 0
			if cursor := r.URL.Query().Get("cursor"); cursor != "" {
				for i, id := range ids {
					if id == cursor {
						start = i + 1
					}
				}
			}
			end := min(start+limit, total)
			page := api.JobList{}
			for _, id := range ids[start:end] {
				page.Jobs = append(page.Jobs, &api.Job{ID: id, Status: api.JobDone})
			}
			if end < total {
				page.NextCursor = ids[end-1]
			}
			writeJSON(w, http.StatusOK, page)
		},
	})

	var walked []string
	cursor := ""
	for {
		page, err := cl.ListJobs(context.Background(), client.ListJobsOptions{Limit: pageSize, Cursor: cursor})
		if err != nil {
			t.Fatal(err)
		}
		for _, j := range page.Jobs {
			walked = append(walked, j.ID)
		}
		if page.NextCursor == "" {
			break
		}
		cursor = page.NextCursor
	}
	if len(walked) != total {
		t.Fatalf("walked %d jobs, want %d", len(walked), total)
	}
	for i, id := range walked {
		if id != ids[i] {
			t.Fatalf("walk position %d: %s, want %s", i, id, ids[i])
		}
	}
}

// sseHandler streams the given events as SSE frames.
func sseHandler(events []api.JobEvent) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/event-stream")
		w.WriteHeader(http.StatusOK)
		f := w.(http.Flusher)
		fmt.Fprint(w, ": keepalive\n\n") // comment frames must be ignored
		f.Flush()
		for _, ev := range events {
			data, _ := json.Marshal(ev)
			fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Type, data)
			f.Flush()
		}
	}
}

// TestWatchJobCanceledJob follows the SSE stream of a job that gets
// canceled: progress events arrive, then the terminal canceled status, and
// the stream ends cleanly.
func TestWatchJobCanceledJob(t *testing.T) {
	stream := []api.JobEvent{
		{Type: api.EventStatus, JobID: "job-000001", Status: api.JobRunning, Progress: &api.JobProgress{ScenariosTotal: 3}},
		{Type: api.EventSample, JobID: "job-000001", Scenario: "mc", Done: 5, Total: 100},
		{Type: api.EventScenario, JobID: "job-000001", Scenario: "det", Phase: "done",
			Progress: &api.JobProgress{ScenariosDone: 1, ScenariosTotal: 3}},
		{Type: api.EventStatus, JobID: "job-000001", Status: api.JobCanceled, Error: "canceled by client",
			Progress: &api.JobProgress{ScenariosDone: 1, ScenariosTotal: 3}},
	}
	_, cl := fakeServer(t, map[string]http.HandlerFunc{
		"GET /v1/jobs/{id}/events": sseHandler(stream),
	})

	events, errc := cl.WatchJob(context.Background(), "job-000001")
	var got []api.JobEvent
	for ev := range events {
		got = append(got, ev)
	}
	if err := <-errc; err != nil {
		t.Fatalf("watch: %v", err)
	}
	if len(got) != len(stream) {
		t.Fatalf("received %d events, want %d: %+v", len(got), len(stream), got)
	}
	last := got[len(got)-1]
	if !last.Terminal() || last.Status != api.JobCanceled || last.Error != "canceled by client" {
		t.Errorf("terminal event wrong: %+v", last)
	}
	if got[1].Done != 5 || got[1].Total != 100 {
		t.Errorf("sample event mangled: %+v", got[1])
	}
}

// TestWatchJobContextCancel cancels the watcher mid-stream: the events
// channel closes and the error channel reports the context error.
func TestWatchJobContextCancel(t *testing.T) {
	started := make(chan struct{})
	_, cl := fakeServer(t, map[string]http.HandlerFunc{
		"GET /v1/jobs/{id}/events": func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "text/event-stream")
			w.WriteHeader(http.StatusOK)
			f := w.(http.Flusher)
			data, _ := json.Marshal(api.JobEvent{Type: api.EventStatus, JobID: "job-000001", Status: api.JobRunning})
			fmt.Fprintf(w, "event: status\ndata: %s\n\n", data)
			f.Flush()
			close(started)
			<-r.Context().Done() // hold the stream open until the client drops it
		},
	})

	ctx, cancel := context.WithCancel(context.Background())
	events, errc := cl.WatchJob(ctx, "job-000001")
	<-started
	var got []api.JobEvent
	go func() {
		for ev := range events {
			got = append(got, ev)
		}
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	if err := <-errc; err == nil {
		t.Error("canceled watch reported no error")
	}
}

// TestWatchJobTruncatedStream covers a stream that dies before a terminal
// event: WatchJob must surface an error instead of a silent clean close.
func TestWatchJobTruncatedStream(t *testing.T) {
	_, cl := fakeServer(t, map[string]http.HandlerFunc{
		"GET /v1/jobs/{id}/events": sseHandler([]api.JobEvent{
			{Type: api.EventStatus, JobID: "job-000001", Status: api.JobRunning},
		}),
	})
	events, errc := cl.WatchJob(context.Background(), "job-000001")
	for range events {
	}
	if err := <-errc; err == nil {
		t.Error("truncated stream reported no error")
	}
}

// TestWatchJobErrorResponse covers a watch on an unknown job.
func TestWatchJobErrorResponse(t *testing.T) {
	_, cl := fakeServer(t, map[string]http.HandlerFunc{})
	events, errc := cl.WatchJob(context.Background(), "job-000001")
	for range events {
	}
	if err := <-errc; !api.IsNotFound(err) {
		t.Errorf("watch of unknown job: %v", err)
	}
}

// TestErrorDecoding pins the problem+json decode path of the SDK.
func TestErrorDecoding(t *testing.T) {
	_, cl := fakeServer(t, map[string]http.HandlerFunc{
		"GET /v1/jobs/{id}": func(w http.ResponseWriter, r *http.Request) {
			api.WriteError(w, r, api.NewError(http.StatusGone, api.CodeLeaseLost, "expired"))
		},
	})
	_, err := cl.GetJob(context.Background(), "job-000001")
	e, ok := api.AsError(err)
	if !ok {
		t.Fatalf("error is not *api.Error: %v", err)
	}
	if e.Status != http.StatusGone || e.Code != api.CodeLeaseLost || e.Detail != "expired" {
		t.Errorf("decoded problem wrong: %+v", e)
	}
	if !api.IsLeaseLost(err) {
		t.Error("IsLeaseLost failed on a lease-lost problem")
	}
}

// TestWaitJobRoutesFleetStreams pins the WaitJob/WaitFleetJob split: a
// stream carrying fleet shard progress must not be decoded into an
// api.Job (the shapes differ); WaitFleetJob returns the typed fleet view.
func TestWaitJobRoutesFleetStreams(t *testing.T) {
	fleetJob := &api.FleetJob{ID: "fleet-000001", Status: api.JobDone,
		Scenario: api.Scenario{Name: "s"},
		Plan:     &api.ShardPlan{MaxSamples: 8, BlockSize: 2, NumShards: 2},
		Shards: []api.ShardStatus{
			{Shard: 0, Start: 0, End: 4, Status: api.ShardDone},
			{Shard: 1, Start: 4, End: 8, Status: api.ShardDone},
		}, ShardsDone: 2}
	stream := []api.JobEvent{
		{Type: api.EventStatus, JobID: fleetJob.ID, Status: api.JobRunning, ShardsTotal: 2},
		{Type: api.EventShards, JobID: fleetJob.ID, Status: api.JobRunning, ShardsDone: 1, ShardsTotal: 2},
		{Type: api.EventStatus, JobID: fleetJob.ID, Status: api.JobDone, ShardsDone: 2, ShardsTotal: 2},
	}
	_, cl := fakeServer(t, map[string]http.HandlerFunc{
		"GET /v1/jobs/{id}/events": sseHandler(stream),
		"GET /v1/fleet/jobs/{id}": func(w http.ResponseWriter, r *http.Request) {
			writeJSON(w, http.StatusOK, fleetJob)
		},
	})

	if _, err := cl.WaitJob(context.Background(), fleetJob.ID); err == nil {
		t.Error("WaitJob accepted a fleet job stream")
	}
	got, err := cl.WaitFleetJob(context.Background(), fleetJob.ID)
	if err != nil {
		t.Fatalf("WaitFleetJob: %v", err)
	}
	if got.ID != fleetJob.ID || got.ShardsDone != 2 || len(got.Shards) != 2 {
		t.Errorf("WaitFleetJob view wrong: %+v", got)
	}
}
