package client

import (
	"testing"
	"time"
)

func TestBackoffCeilingDoublesAndSaturates(t *testing.T) {
	const initial = 250 * time.Millisecond
	const max = 10 * time.Second
	want := []time.Duration{
		250 * time.Millisecond, 500 * time.Millisecond, time.Second,
		2 * time.Second, 4 * time.Second, 8 * time.Second,
		10 * time.Second, 10 * time.Second,
	}
	for attempt, w := range want {
		if got := backoffCeiling(initial, max, attempt); got != w {
			t.Errorf("ceiling(attempt %d) = %v, want %v", attempt, got, w)
		}
	}
	// Deep attempt counts must saturate at the cap, not wrap negative
	// through duration overflow.
	for _, attempt := range []int{40, 63, 64, 1000} {
		if got := backoffCeiling(initial, max, attempt); got != max {
			t.Errorf("ceiling(attempt %d) = %v, want cap %v", attempt, got, max)
		}
	}
}

func TestFullJitterBoundsAndDesync(t *testing.T) {
	const initial = 250 * time.Millisecond
	const max = 10 * time.Second
	// Every draw must land in (0, ceiling].
	for attempt := 0; attempt < 8; attempt++ {
		ceil := backoffCeiling(initial, max, attempt)
		for i := 0; i < 200; i++ {
			d := fullJitter(initial, max, attempt)
			if d <= 0 || d > ceil {
				t.Fatalf("attempt %d: delay %v outside (0, %v]", attempt, d, ceil)
			}
		}
	}
	// Desynchronization: a cohort of clients retrying the same attempt
	// must NOT sleep in lockstep. With full jitter over a 2s window, 32
	// identical draws are impossible in practice (P ≈ (1ns/2s)³¹).
	const attempt = 3
	first := fullJitter(initial, max, attempt)
	same := true
	for i := 0; i < 31; i++ {
		if fullJitter(initial, max, attempt) != first {
			same = false
			break
		}
	}
	if same {
		t.Fatalf("32 cohort clients drew the identical delay %v — backoff is lockstep, not jittered", first)
	}
}
