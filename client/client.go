// Package client is the Go SDK for the etherm HTTP API: a typed,
// context-aware client for every endpoint of cmd/etserver and its fleet
// coordinator, speaking the versioned wire contract of package api.
//
// A Client is safe for concurrent use. Idempotent calls (GETs and fleet
// heartbeats) are retried with capped full-jitter exponential backoff on
// transport errors and 5xx/429 responses; submissions additionally retry
// the server's shedding rejections — 429 backpressure and the 503s of a
// draining or degraded server — all of which guarantee the request was
// not processed, honoring their Retry-After hint as the backoff. All
// other errors surface
// as *api.Error so callers can switch on status and condition code.
// WatchJob consumes the server's SSE progress stream, replacing poll
// loops.
//
// The package depends only on the standard library and package api, so it
// is importable from outside this module:
//
//	cl := client.New("http://etserver:8080")
//	job, err := cl.SubmitBatch(ctx, batch)
//	job, err = cl.WaitJob(ctx, job.ID)
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"etherm/api"
)

// Default retry policy of New (override with WithRetry).
const (
	// DefaultMaxAttempts bounds tries of one idempotent call (1 initial +
	// retries).
	DefaultMaxAttempts = 3
	// DefaultRetryBackoff is the first retry ceiling; it doubles per retry.
	DefaultRetryBackoff = 250 * time.Millisecond
	// DefaultMaxRetryBackoff caps the exponential ceiling: no single retry
	// sleeps longer than this, however many attempts came before.
	DefaultMaxRetryBackoff = 10 * time.Second
)

// Client talks to one etserver. Construct with New; the zero value is not
// usable.
type Client struct {
	base        string
	httpc       *http.Client
	maxAttempts int
	backoff     time.Duration
}

// Option configures a Client.
type Option func(*Client)

// WithHTTPClient replaces the underlying *http.Client (timeouts, proxies,
// instrumented transports). The default is http.DefaultClient.
func WithHTTPClient(h *http.Client) Option {
	return func(c *Client) { c.httpc = h }
}

// WithRetry sets the retry policy of idempotent calls: at most maxAttempts
// tries in total with exponential backoff starting at initial delay.
// maxAttempts 1 disables retries.
func WithRetry(maxAttempts int, initial time.Duration) Option {
	return func(c *Client) {
		if maxAttempts >= 1 {
			c.maxAttempts = maxAttempts
		}
		if initial > 0 {
			c.backoff = initial
		}
	}
}

// New returns a client for the etserver at baseURL (scheme://host[:port],
// with or without a trailing slash).
func New(baseURL string, opts ...Option) *Client {
	c := &Client{
		base:        strings.TrimSuffix(baseURL, "/"),
		httpc:       http.DefaultClient,
		maxAttempts: DefaultMaxAttempts,
		backoff:     DefaultRetryBackoff,
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// BaseURL returns the server root the client talks to.
func (c *Client) BaseURL() string { return c.base }

// backoffCeiling returns the exponential ceiling of one retry attempt:
// initial doubled attempt times, saturating at max (shift overflow
// included — after ~40 doublings the duration wraps negative).
func backoffCeiling(initial, max time.Duration, attempt int) time.Duration {
	d := initial
	for i := 0; i < attempt && d < max; i++ {
		d <<= 1
	}
	if d <= 0 || d > max {
		return max
	}
	return d
}

// fullJitter draws the actual retry delay: uniform in (0, ceiling]. Full
// jitter (rather than a ±few-percent wiggle) is what breaks retry
// synchronization — clients rejected in the same instant spread across
// the whole window instead of colliding again at its edge.
func fullJitter(initial, max time.Duration, attempt int) time.Duration {
	c := backoffCeiling(initial, max, attempt)
	return time.Duration(1 + rand.Int64N(int64(c)))
}

// retryable reports whether a response status is worth retrying on an
// idempotent call.
func retryable(status int) bool {
	switch status {
	case http.StatusTooManyRequests, http.StatusBadGateway,
		http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		return true
	}
	return false
}

// do performs one API call: marshal in (when non-nil), send, decode a 2xx
// body into out (when non-nil), or return the response's *api.Error.
// Idempotent calls are retried per the client's policy; the context bounds
// the whole call including backoff sleeps.
func (c *Client) do(ctx context.Context, method, path string, in, out any, idempotent bool) error {
	_, err := c.doStatus(ctx, method, path, in, out, idempotent)
	return err
}

// doStatus is do exposing the success status code, for the few endpoints
// where 2xx variants carry meaning (204 = no work on the lease call).
func (c *Client) doStatus(ctx context.Context, method, path string, in, out any, idempotent bool) (int, error) {
	var body []byte
	if in != nil {
		var err error
		if body, err = json.Marshal(in); err != nil {
			return 0, fmt.Errorf("client: encode %s %s: %w", method, path, err)
		}
	}
	for attempt := 0; ; attempt++ {
		status, done, err := c.once(ctx, method, path, body, out)
		if done {
			return status, err
		}
		// Non-idempotent calls must not be replayed after an ambiguous
		// failure (the server may have processed them) — except the
		// shedding rejections (429 backpressure, 503 draining/degraded),
		// which guarantee the request was NOT processed and are therefore
		// always safe to retry.
		if !idempotent && !api.IsShedding(err) {
			return status, err
		}
		if attempt+1 >= c.maxAttempts || ctx.Err() != nil {
			return status, err
		}
		// Full-jitter exponential backoff, overridden by the server's
		// Retry-After hint when the rejection carried one. The jitter
		// desynchronizes a cohort of clients rejected together (a drain, a
		// restart, a backpressure spike): lockstep 250·2ⁿ ms delays would
		// re-arrive as the same thundering herd every round.
		delay := fullJitter(c.backoff, DefaultMaxRetryBackoff, attempt)
		if e, ok := api.AsError(err); ok && e.RetryAfterS > 0 {
			delay = time.Duration(e.RetryAfterS) * time.Second
		}
		select {
		case <-time.After(delay):
		case <-ctx.Done():
			return status, ctx.Err()
		}
	}
}

// once performs a single HTTP attempt. done=false means the error is
// retryable on an idempotent call.
func (c *Client) once(ctx context.Context, method, path string, body []byte, out any) (status int, done bool, err error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return 0, true, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	req.Header.Set("Accept", "application/json, "+api.ProblemContentType)
	req.Header.Set(api.VersionHeader, api.APIVersion)
	resp, err := c.httpc.Do(req)
	if err != nil {
		return 0, false, err // transport error: retryable
	}
	defer resp.Body.Close()
	status = resp.StatusCode
	if status < 200 || status >= 300 {
		apiErr := api.ErrorFromResponse(resp)
		return status, !retryable(status), apiErr
	}
	if out == nil || status == http.StatusNoContent {
		_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20)) // drain for connection reuse
		return status, true, nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return status, true, fmt.Errorf("client: decode %s %s: %w", method, path, err)
	}
	return status, true, nil
}

// ---------------------------------------------------------------------------
// Batch jobs.
// ---------------------------------------------------------------------------

// SubmitBatch submits a scenario batch as an asynchronous job
// (POST /v1/jobs). The returned job is queued or already running; follow
// it with GetJob, WaitJob or WatchJob.
func (c *Client) SubmitBatch(ctx context.Context, b *api.Batch) (*api.Job, error) {
	if err := b.Validate(); err != nil {
		return nil, err
	}
	var job api.Job
	if err := c.do(ctx, http.MethodPost, "/v1/jobs", b, &job, false); err != nil {
		return nil, err
	}
	return &job, nil
}

// GetJob fetches one batch job (GET /v1/jobs/{id}). For fleet job IDs use
// GetFleetJob — the unified endpoint serves those with a different shape.
func (c *Client) GetJob(ctx context.Context, id string) (*api.Job, error) {
	var job api.Job
	if err := c.do(ctx, http.MethodGet, api.JobPath(id), nil, &job, true); err != nil {
		return nil, err
	}
	return &job, nil
}

// CancelJob aborts a queued or running job (DELETE /v1/jobs/{id}); the job
// transitions to "canceled". Canceling a finished job returns a 409
// *api.Error.
func (c *Client) CancelJob(ctx context.Context, id string) (*api.Job, error) {
	var job api.Job
	if err := c.do(ctx, http.MethodDelete, api.JobPath(id), nil, &job, false); err != nil {
		return nil, err
	}
	return &job, nil
}

// ListJobsOptions pages through GET /v1/jobs.
type ListJobsOptions struct {
	// Limit bounds the page size (0 = server default).
	Limit int
	// Cursor continues a walk: pass the NextCursor of the previous page.
	Cursor string
}

// ListJobs returns one page of jobs, newest first, without result
// payloads. Walk pages by passing each response's NextCursor back until it
// is empty.
func (c *Client) ListJobs(ctx context.Context, opt ListJobsOptions) (*api.JobList, error) {
	q := url.Values{}
	if opt.Limit > 0 {
		q.Set("limit", strconv.Itoa(opt.Limit))
	}
	if opt.Cursor != "" {
		q.Set("cursor", opt.Cursor)
	}
	path := "/v1/jobs"
	if len(q) > 0 {
		path += "?" + q.Encode()
	}
	var list api.JobList
	if err := c.do(ctx, http.MethodGet, path, nil, &list, true); err != nil {
		return nil, err
	}
	return &list, nil
}

// Presets fetches the bundled paper-grounded scenario suite
// (GET /v1/scenarios/presets), editable and resubmittable via SubmitBatch.
func (c *Client) Presets(ctx context.Context) (*api.Batch, error) {
	var b api.Batch
	if err := c.do(ctx, http.MethodGet, "/v1/scenarios/presets", nil, &b, true); err != nil {
		return nil, err
	}
	return &b, nil
}

// Health reads the server's liveness and cache statistics (GET /healthz).
func (c *Client) Health(ctx context.Context) (*api.Health, error) {
	var h api.Health
	if err := c.do(ctx, http.MethodGet, "/healthz", nil, &h, true); err != nil {
		return nil, err
	}
	return &h, nil
}

// WaitJob blocks until a BATCH job reaches a terminal state and returns
// its final view (including results). It consumes the SSE progress
// stream; when the stream is unavailable or breaks it falls back to
// polling GetJob. A fleet job ID is rejected with an error — its terminal
// view has a different shape; use WaitFleetJob. The context bounds the
// wait.
func (c *Client) WaitJob(ctx context.Context, id string) (*api.Job, error) {
	terminal, fleetStream, err := c.watchUntilTerminal(ctx, id)
	if err != nil {
		return nil, err
	}
	if fleetStream {
		return nil, fmt.Errorf("client: job %s is a fleet job; use WaitFleetJob", id)
	}
	if terminal {
		return c.GetJob(ctx, id)
	}
	// SSE unavailable (old server, proxy stripping streams): poll.
	for {
		job, err := c.GetJob(ctx, id)
		if err != nil {
			return nil, err
		}
		if job.Status.Finished() {
			return job, nil
		}
		if err := sleepCtx(ctx, 250*time.Millisecond); err != nil {
			return nil, err
		}
	}
}

// WaitFleetJob blocks until a fleet job reaches a terminal state and
// returns its final view (shard states and the finalized result). Like
// WaitJob it rides the SSE stream with a poll fallback.
func (c *Client) WaitFleetJob(ctx context.Context, id string) (*api.FleetJob, error) {
	terminal, _, err := c.watchUntilTerminal(ctx, id)
	if err != nil {
		return nil, err
	}
	if terminal {
		return c.GetFleetJob(ctx, id)
	}
	for {
		v, err := c.GetFleetJob(ctx, id)
		if err != nil {
			return nil, err
		}
		if v.Status.Finished() {
			return v, nil
		}
		if err := sleepCtx(ctx, 250*time.Millisecond); err != nil {
			return nil, err
		}
	}
}

// watchUntilTerminal drains one SSE watch. terminal reports whether the
// stream closed after a terminal status (false means the stream was
// unavailable and the caller should poll); fleetStream reports whether
// the events carried fleet shard progress.
func (c *Client) watchUntilTerminal(ctx context.Context, id string) (terminal, fleetStream bool, err error) {
	events, errc := c.WatchJob(ctx, id)
	for ev := range events {
		if ev.ShardsTotal > 0 {
			fleetStream = true
		}
	}
	if err := <-errc; err == nil {
		terminal = true
	} else if ctx.Err() != nil {
		return false, fleetStream, ctx.Err()
	} else if e, ok := api.AsError(err); ok && e.Status == http.StatusNotFound {
		return false, fleetStream, err // no such job: polling would 404 forever
	}
	return terminal, fleetStream, nil
}

// sleepCtx sleeps or returns the context error, whichever comes first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-time.After(d):
		return nil
	}
}

// ---------------------------------------------------------------------------
// Fleet: sharded campaigns and the worker protocol.
// ---------------------------------------------------------------------------

// SubmitFleetJob submits one sharded scenario to the fleet coordinator
// (POST /v1/fleet/jobs); its shards are leased to connected workers.
func (c *Client) SubmitFleetJob(ctx context.Context, s *api.Scenario) (*api.FleetJob, error) {
	var v api.FleetJob
	if err := c.do(ctx, http.MethodPost, api.FleetPrefix+"/jobs", s, &v, false); err != nil {
		return nil, err
	}
	return &v, nil
}

// GetFleetJob fetches one fleet job with per-shard progress
// (GET /v1/fleet/jobs/{id}).
func (c *Client) GetFleetJob(ctx context.Context, id string) (*api.FleetJob, error) {
	var v api.FleetJob
	if err := c.do(ctx, http.MethodGet, api.FleetJobPath(id), nil, &v, true); err != nil {
		return nil, err
	}
	return &v, nil
}

// ListFleetJobs returns all fleet jobs in submission order
// (GET /v1/fleet/jobs).
func (c *Client) ListFleetJobs(ctx context.Context) ([]*api.FleetJob, error) {
	var v []*api.FleetJob
	if err := c.do(ctx, http.MethodGet, api.FleetPrefix+"/jobs", nil, &v, true); err != nil {
		return nil, err
	}
	return v, nil
}

// CancelFleetJob aborts a running fleet job (DELETE /v1/fleet/jobs/{id});
// outstanding leases are invalidated and workers abandon their shards.
func (c *Client) CancelFleetJob(ctx context.Context, id string) (*api.FleetJob, error) {
	var v api.FleetJob
	if err := c.do(ctx, http.MethodDelete, api.FleetJobPath(id), nil, &v, false); err != nil {
		return nil, err
	}
	return &v, nil
}

// Lease asks the coordinator for a shard assignment
// (POST /v1/fleet/lease). ok=false means no work is currently available.
func (c *Client) Lease(ctx context.Context, workerID string) (lease *api.FleetLease, ok bool, err error) {
	var a api.FleetLease
	status, err := c.doStatus(ctx, http.MethodPost, api.FleetPrefix+"/lease",
		api.LeaseRequest{Worker: workerID}, &a, false)
	if err != nil {
		return nil, false, err
	}
	if status == http.StatusNoContent {
		return nil, false, nil
	}
	return &a, true, nil
}

// Heartbeat extends a shard lease (POST /v1/fleet/heartbeat). A lease the
// coordinator no longer recognizes returns an *api.Error for which
// api.IsLeaseLost is true; the worker must abandon the shard. Heartbeats
// are idempotent and retried on transport errors.
func (c *Client) Heartbeat(ctx context.Context, leaseID string) error {
	return c.do(ctx, http.MethodPost, api.FleetPrefix+"/heartbeat",
		api.HeartbeatRequest{LeaseID: leaseID}, nil, true)
}

// PostShardResult posts a completed shard under a live lease
// (POST /v1/fleet/result). A stale lease returns api.IsLeaseLost; a result
// that does not describe the leased shard returns a 422 *api.Error.
func (c *Client) PostShardResult(ctx context.Context, leaseID string, res *api.ShardResult) error {
	return c.do(ctx, http.MethodPost, api.FleetPrefix+"/result",
		api.ShardResultRequest{LeaseID: leaseID, Result: res}, nil, false)
}

// FailShard reports a failed shard attempt under a lease
// (POST /v1/fleet/fail); the shard is re-leased until the coordinator's
// attempt budget is exhausted.
func (c *Client) FailShard(ctx context.Context, leaseID, msg string) error {
	return c.do(ctx, http.MethodPost, api.FleetPrefix+"/fail",
		api.ShardFailRequest{LeaseID: leaseID, Error: msg}, nil, false)
}
