// Command openapicheck gates the committed OpenAPI description against
// the authoritative route table of package api: it validates openapi.yaml
// structurally (3.x version, info fields matching api.APIVersion, every
// operation carrying responses) and diffs the spec's path/method surface
// against api.Routes(). CI runs it via `make openapi-check`, so the spec,
// the server mux (built from the same table) and the SDK cannot drift
// apart silently.
//
// Usage:
//
//	openapicheck [-spec openapi.yaml]
package main

import (
	"flag"
	"fmt"
	"os"

	"etherm/api"
	"etherm/internal/openapi"
)

func main() {
	spec := flag.String("spec", "openapi.yaml", "OpenAPI document to check")
	flag.Parse()

	if err := run(*spec); err != nil {
		fmt.Fprintln(os.Stderr, "openapicheck:", err)
		os.Exit(1)
	}
	fmt.Printf("openapicheck: %s matches the %d-route %s surface\n",
		*spec, len(api.Routes()), api.APIVersion)
}

func run(path string) error {
	doc, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	d, err := openapi.Parse(doc)
	if err != nil {
		return err
	}
	if err := d.Validate(); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	if diff := d.Diff(api.Routes()); len(diff) != 0 {
		for _, line := range diff {
			fmt.Fprintln(os.Stderr, "  "+line)
		}
		return fmt.Errorf("%s drifted from api.Routes() (%d discrepancies)", path, len(diff))
	}
	return nil
}
