// Command openapicheck gates the committed OpenAPI description against
// the authoritative wire contract of package api: it validates
// openapi.yaml structurally (3.x version, info fields matching
// api.APIVersion, every operation carrying responses), diffs the spec's
// path/method surface against api.Routes(), and diffs each documented
// components.schemas entry's properties against the JSON fields of the
// api struct that backs it (including the rare-event UQSpec knobs and
// the RareLevel telemetry shape). CI runs it via `make openapi-check`,
// so the spec, the server mux (built from the same table) and the SDK
// cannot drift apart silently.
//
// Usage:
//
//	openapicheck [-spec openapi.yaml]
package main

import (
	"flag"
	"fmt"
	"os"

	"etherm/api"
	"etherm/internal/openapi"
)

func main() {
	spec := flag.String("spec", "openapi.yaml", "OpenAPI document to check")
	flag.Parse()

	if err := run(*spec); err != nil {
		fmt.Fprintln(os.Stderr, "openapicheck:", err)
		os.Exit(1)
	}
	fmt.Printf("openapicheck: %s matches the %d-route %s surface and %d wire schemas\n",
		*spec, len(api.Routes()), api.APIVersion, len(schemaModels))
}

// schemaModels pairs each documented components.schemas entry with the
// api struct that defines its wire shape.
var schemaModels = []struct {
	name  string
	model any
}{
	{"Problem", api.Error{}},
	{"Batch", api.Batch{}},
	{"Scenario", api.Scenario{}},
	{"UQSpec", api.UQSpec{}},
	{"RareLevel", api.RareLevel{}},
	{"SurrogateSpec", api.SurrogateSpec{}},
	{"SurrogateQuery", api.SurrogateQuery{}},
}

func run(path string) error {
	doc, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	d, err := openapi.Parse(doc)
	if err != nil {
		return err
	}
	if err := d.Validate(); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	diff := d.Diff(api.Routes())
	for _, m := range schemaModels {
		diff = append(diff, d.DiffSchema(m.name, m.model)...)
	}
	if len(diff) != 0 {
		for _, line := range diff {
			fmt.Fprintln(os.Stderr, "  "+line)
		}
		return fmt.Errorf("%s drifted from the api wire contract (%d discrepancies)", path, len(diff))
	}
	return nil
}
