package main

import (
	"bufio"
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: etherm
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkTable2NominalRun-8   	       3	487944669 ns/op	        501.5 T_max_K	19850237 B/op	  211427 allocs/op
BenchmarkSolverReuse-8        	       3	  6104440 ns/op	         54.00 cg_iters	       0 B/op	       0 allocs/op
BenchmarkCampaignStreaming    	       1	1000000 ns/op	   123456 retained_B	    2048 B/op	      12 allocs/op
PASS
ok  	etherm	12.3s
`

func parseString(t *testing.T, s string) *Manifest {
	t.Helper()
	m, err := parse(bufio.NewScanner(strings.NewReader(s)))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestParseBenchOutput(t *testing.T) {
	m := parseString(t, sampleBench)
	if m.GoOS != "linux" || m.GoArch != "amd64" || m.Pkg != "etherm" {
		t.Errorf("header fields lost: %+v", m)
	}
	if len(m.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(m.Benchmarks))
	}
	r := m.Benchmarks[0]
	if r.Name != "BenchmarkTable2NominalRun" {
		t.Errorf("GOMAXPROCS suffix not stripped: %q", r.Name)
	}
	if r.Runs != 3 || r.NsPerOp != 487944669 {
		t.Errorf("runs/ns lost: %+v", r)
	}
	if r.BytesPerOp == nil || *r.BytesPerOp != 19850237 || r.AllocsPerOp == nil || *r.AllocsPerOp != 211427 {
		t.Errorf("memory fields lost: %+v", r)
	}
	if r.Metrics["T_max_K"] != 501.5 {
		t.Errorf("custom metric lost: %v", r.Metrics)
	}
	if m.Benchmarks[2].Name != "BenchmarkCampaignStreaming" || m.Benchmarks[2].Metrics["retained_B"] != 123456 {
		t.Errorf("unsuffixed benchmark mis-parsed: %+v", m.Benchmarks[2])
	}
	zero := m.Benchmarks[1]
	if zero.AllocsPerOp == nil || *zero.AllocsPerOp != 0 {
		t.Errorf("zero allocs must be recorded, not dropped: %+v", zero)
	}
}

func TestParseRejectsFailuresAndGarbage(t *testing.T) {
	if _, err := parse(bufio.NewScanner(strings.NewReader("--- FAIL: TestX\nBenchmarkY 1 5 ns/op\n"))); err == nil {
		t.Error("FAIL output accepted as a baseline")
	}
	if _, err := parse(bufio.NewScanner(strings.NewReader("PASS\nok\n"))); err == nil {
		t.Error("benchless output accepted")
	}
	if _, err := parse(bufio.NewScanner(strings.NewReader("BenchmarkX abc 5 ns/op\n"))); err == nil {
		t.Error("malformed run count accepted")
	}
}

// gateFixtures returns a baseline and an identical current manifest the
// compare tests then perturb.
func gateFixtures(t *testing.T) (*Manifest, *Manifest) {
	t.Helper()
	return parseString(t, sampleBench), parseString(t, sampleBench)
}

func TestCompareGate(t *testing.T) {
	gates := []string{"retained_B"}
	t.Run("identical passes", func(t *testing.T) {
		base, cur := gateFixtures(t)
		if regs := compare(base, cur, tolerances{metric: 0.25, time: 0.25}, gates); len(regs) != 0 {
			t.Errorf("identical manifests flagged: %v", regs)
		}
	})
	t.Run("improvement passes", func(t *testing.T) {
		base, cur := gateFixtures(t)
		cur.Benchmarks[0].NsPerOp /= 3
		cur.Benchmarks[2].Metrics["retained_B"] = 10
		if regs := compare(base, cur, tolerances{metric: 0.25, time: 0.25}, gates); len(regs) != 0 {
			t.Errorf("improvement flagged: %v", regs)
		}
	})
	t.Run("ns regression within tolerance passes", func(t *testing.T) {
		base, cur := gateFixtures(t)
		cur.Benchmarks[0].NsPerOp *= 1.2
		if regs := compare(base, cur, tolerances{metric: 0.25, time: 0.25}, gates); len(regs) != 0 {
			t.Errorf("within-tolerance drift flagged: %v", regs)
		}
	})
	t.Run("ns regression beyond tolerance fails", func(t *testing.T) {
		base, cur := gateFixtures(t)
		cur.Benchmarks[0].NsPerOp *= 1.3
		regs := compare(base, cur, tolerances{metric: 0.25, time: 0.25}, gates)
		if len(regs) != 1 || !strings.Contains(regs[0], "ns/op") {
			t.Errorf("regression not flagged: %v", regs)
		}
	})
	t.Run("retained_B regression fails", func(t *testing.T) {
		base, cur := gateFixtures(t)
		cur.Benchmarks[2].Metrics["retained_B"] *= 2
		regs := compare(base, cur, tolerances{metric: 0.25, time: 0.25}, gates)
		if len(regs) != 1 || !strings.Contains(regs[0], "retained_B") {
			t.Errorf("retained_B regression not flagged: %v", regs)
		}
	})
	t.Run("physics metrics are not gated", func(t *testing.T) {
		base, cur := gateFixtures(t)
		cur.Benchmarks[0].Metrics["T_max_K"] *= 2 // headline value, guarded by tests not the bench gate
		if regs := compare(base, cur, tolerances{metric: 0.25, time: 0.25}, gates); len(regs) != 0 {
			t.Errorf("ungated metric flagged: %v", regs)
		}
	})
	t.Run("zero-alloc benchmark must stay zero-alloc", func(t *testing.T) {
		base, cur := gateFixtures(t)
		one := 1.0
		cur.Benchmarks[1].AllocsPerOp = &one
		regs := compare(base, cur, tolerances{metric: 0.25, time: 0.25}, gates)
		if len(regs) != 1 || !strings.Contains(regs[0], "zero-alloc") {
			t.Errorf("zero-alloc regression not flagged: %v", regs)
		}
	})
	t.Run("allocs regression beyond tolerance fails", func(t *testing.T) {
		base, cur := gateFixtures(t)
		bumped := *cur.Benchmarks[0].AllocsPerOp * 2
		cur.Benchmarks[0].AllocsPerOp = &bumped
		regs := compare(base, cur, tolerances{metric: 0.25, time: 0.25}, gates)
		if len(regs) != 1 || !strings.Contains(regs[0], "allocs/op") {
			t.Errorf("allocs regression not flagged: %v", regs)
		}
	})
	t.Run("missing benchmark fails", func(t *testing.T) {
		base, cur := gateFixtures(t)
		cur.Benchmarks = cur.Benchmarks[:1]
		regs := compare(base, cur, tolerances{metric: 0.25, time: 0.25}, gates)
		if len(regs) != 2 {
			t.Errorf("missing benchmarks not flagged: %v", regs)
		}
	})
	t.Run("missing gated metric fails", func(t *testing.T) {
		base, cur := gateFixtures(t)
		delete(cur.Benchmarks[2].Metrics, "retained_B")
		regs := compare(base, cur, tolerances{metric: 0.25, time: 0.25}, gates)
		if len(regs) != 1 || !strings.Contains(regs[0], "missing") {
			t.Errorf("missing gated metric not flagged: %v", regs)
		}
	})
	t.Run("looser time tolerance keeps tight metric gates", func(t *testing.T) {
		base, cur := gateFixtures(t)
		cur.Benchmarks[0].NsPerOp *= 1.8               // noisy wall time: tolerated at time=1.0
		cur.Benchmarks[2].Metrics["retained_B"] *= 1.5 // deterministic: still gated at 0.25
		regs := compare(base, cur, tolerances{metric: 0.25, time: 1.0}, gates)
		if len(regs) != 1 || !strings.Contains(regs[0], "retained_B") {
			t.Errorf("split tolerances misapplied: %v", regs)
		}
	})
	t.Run("extra current benchmarks are ignored", func(t *testing.T) {
		base, cur := gateFixtures(t)
		cur.Benchmarks = append(cur.Benchmarks, Result{Name: "BenchmarkNew", Runs: 1, NsPerOp: 1})
		if regs := compare(base, cur, tolerances{metric: 0.25, time: 0.25}, gates); len(regs) != 0 {
			t.Errorf("new benchmark flagged: %v", regs)
		}
	})
}
