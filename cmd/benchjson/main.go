// Command benchjson converts `go test -bench` output on stdin into a JSON
// benchmark manifest, so benchmark trajectories can be committed and diffed
// across PRs (see `make bench-json`; BENCH_PR4.json is the current
// baseline), and gates benchmark regressions against such a baseline.
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem | go run ./cmd/benchjson -out bench.json
//
//	# regression gate: compare a fresh run (stdin or -in manifest) against
//	# a committed baseline; exits 1 when a gated metric regresses beyond
//	# the tolerance.
//	go run ./cmd/benchjson -compare BENCH_PR4.json -in out/bench_smoke.json -tolerance 0.25
//	go test -run '^$' -bench . -benchmem | go run ./cmd/benchjson -compare BENCH_PR4.json
//
// Standard fields (ns/op, B/op, allocs/op) are parsed into dedicated keys;
// any extra `value unit` metric pairs reported via b.ReportMetric land in
// the metrics map verbatim. The compare mode gates ns/op, allocs/op and the
// retained-heap metric (-gate-metrics) of every benchmark present in the
// baseline; benchmarks missing from the current run fail the gate.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	Name        string             `json:"name"`
	Runs        int                `json:"runs"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  *float64           `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64           `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Manifest is the emitted document.
type Manifest struct {
	GoOS       string   `json:"goos,omitempty"`
	GoArch     string   `json:"goarch,omitempty"`
	Pkg        string   `json:"pkg,omitempty"`
	CPU        string   `json:"cpu,omitempty"`
	Benchmarks []Result `json:"benchmarks"`
}

func main() {
	var (
		out         = flag.String("out", "", "output file (default stdout; compare mode defaults to no output file)")
		comparePath = flag.String("compare", "", "baseline manifest to gate the current run against")
		inPath      = flag.String("in", "", "current-run manifest (JSON); empty parses bench output from stdin")
		tolerance   = flag.Float64("tolerance", 0.25, "allowed relative regression per gated metric (0.25 = +25%)")
		timeTol     = flag.Float64("time-tolerance", 0, "separate ns/op tolerance for cross-machine/noisy runs (0 = same as -tolerance)")
		gateMetrics = flag.String("gate-metrics", "retained_B", "comma-separated b.ReportMetric units gated alongside ns/op and allocs/op")
	)
	flag.Parse()

	var m *Manifest
	var err error
	if *inPath != "" {
		m, err = loadManifest(*inPath)
	} else {
		m, err = parse(bufio.NewScanner(os.Stdin))
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}

	if *out != "" || *comparePath == "" {
		if err := emit(m, *out); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
	}

	if *comparePath != "" {
		base, err := loadManifest(*comparePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		tt := *timeTol
		if tt <= 0 {
			tt = *tolerance
		}
		regressions := compare(base, m, tolerances{metric: *tolerance, time: tt}, strings.Split(*gateMetrics, ","))
		if len(regressions) > 0 {
			fmt.Fprintf(os.Stderr, "benchjson: %d regression(s) beyond %.0f%% vs %s:\n", len(regressions), *tolerance*100, *comparePath)
			for _, r := range regressions {
				fmt.Fprintln(os.Stderr, "  "+r)
			}
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "benchjson: no regressions beyond %.0f%% vs %s (%d benchmarks gated)\n",
			*tolerance*100, *comparePath, len(base.Benchmarks))
	}
}

// emit writes the manifest to a file or stdout.
func emit(m *Manifest, out string) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if out == "" {
		os.Stdout.Write(data)
		return nil
	}
	if err := os.WriteFile(out, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(m.Benchmarks), out)
	return nil
}

// loadManifest reads a previously emitted manifest.
func loadManifest(path string) (*Manifest, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(m.Benchmarks) == 0 {
		return nil, fmt.Errorf("%s: no benchmarks in manifest", path)
	}
	return &m, nil
}

// tolerances splits the gate: time is the ns/op tolerance (wall time is
// noisy across machines and single-iteration runs), metric gates
// allocs/op and the extra metrics (deterministic, so they can be tight).
type tolerances struct {
	metric float64
	time   float64
}

// compare gates cur against base: for every baseline benchmark, ns/op,
// allocs/op and the listed extra metrics may not exceed base*(1+tol) at
// their class's tolerance. A gated metric with a zero baseline tolerates
// nothing (the zero-alloc benchmarks must stay zero-alloc). Returns
// human-readable regression descriptions; empty means the gate passes.
// Improvements never fail.
func compare(base, cur *Manifest, tol tolerances, extraMetrics []string) []string {
	byName := make(map[string]*Result, len(cur.Benchmarks))
	for i := range cur.Benchmarks {
		byName[cur.Benchmarks[i].Name] = &cur.Benchmarks[i]
	}
	gated := make(map[string]bool, len(extraMetrics))
	for _, m := range extraMetrics {
		if m = strings.TrimSpace(m); m != "" {
			gated[m] = true
		}
	}
	var out []string
	exceedAt := func(t float64, name, metric string, baseV, curV float64) {
		if curV > baseV*(1+t) {
			out = append(out, fmt.Sprintf("%s %s: %.4g → %.4g (+%.1f%%, tolerance %.0f%%)",
				name, metric, baseV, curV, 100*(curV/baseV-1), t*100))
		}
	}
	exceed := func(name, metric string, baseV, curV float64) {
		exceedAt(tol.metric, name, metric, baseV, curV)
	}
	for _, b := range base.Benchmarks {
		c, ok := byName[b.Name]
		if !ok {
			out = append(out, fmt.Sprintf("%s: present in baseline but missing from the current run", b.Name))
			continue
		}
		exceedAt(tol.time, b.Name, "ns/op", b.NsPerOp, c.NsPerOp)
		if b.AllocsPerOp != nil && c.AllocsPerOp != nil {
			if *b.AllocsPerOp == 0 {
				if *c.AllocsPerOp > 0 {
					out = append(out, fmt.Sprintf("%s allocs/op: 0 → %g (zero-alloc benchmark regressed)", b.Name, *c.AllocsPerOp))
				}
			} else {
				exceed(b.Name, "allocs/op", *b.AllocsPerOp, *c.AllocsPerOp)
			}
		}
		for unit, v := range b.Metrics {
			if !gated[unit] {
				continue
			}
			cv, ok := c.Metrics[unit]
			if !ok {
				out = append(out, fmt.Sprintf("%s %s: gated metric missing from the current run", b.Name, unit))
				continue
			}
			if v <= 0 {
				continue // non-positive baselines (e.g. freed memory) are not gateable ratios
			}
			exceed(b.Name, unit, v, cv)
		}
	}
	return out
}

func parse(sc *bufio.Scanner) (*Manifest, error) {
	m := &Manifest{}
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "FAIL") || strings.HasPrefix(line, "--- FAIL"):
			// A failed run must not produce a plausible-looking baseline
			// from the benchmarks that completed before the failure.
			return nil, fmt.Errorf("input contains a test failure: %q", line)
		case strings.HasPrefix(line, "goos:"):
			m.GoOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			m.GoArch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			m.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "cpu:"):
			m.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			r, err := parseLine(line)
			if err != nil {
				return nil, err
			}
			m.Benchmarks = append(m.Benchmarks, *r)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(m.Benchmarks) == 0 {
		return nil, fmt.Errorf("no benchmark lines found on stdin")
	}
	return m, nil
}

// parseLine parses one `BenchmarkName-8  N  v1 unit1  v2 unit2 ...` line.
func parseLine(line string) (*Result, error) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return nil, fmt.Errorf("malformed benchmark line %q", line)
	}
	name := fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		// Strip the GOMAXPROCS suffix.
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	runs, err := strconv.Atoi(fields[1])
	if err != nil {
		return nil, fmt.Errorf("run count in %q: %w", line, err)
	}
	r := &Result{Name: name, Runs: runs}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return nil, fmt.Errorf("value %q in %q: %w", fields[i], line, err)
		}
		unit := fields[i+1]
		switch unit {
		case "ns/op":
			r.NsPerOp = v
		case "B/op":
			r.BytesPerOp = ptr(v)
		case "allocs/op":
			r.AllocsPerOp = ptr(v)
		default:
			if r.Metrics == nil {
				r.Metrics = make(map[string]float64)
			}
			r.Metrics[unit] = v
		}
	}
	return r, nil
}

func ptr(v float64) *float64 { return &v }
