// Command benchjson converts `go test -bench` output on stdin into a JSON
// benchmark manifest, so benchmark trajectories can be committed and diffed
// across PRs (see `make bench-json`, which writes BENCH_PR2.json as the
// baseline recorded by the solver-core PR).
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem | go run ./cmd/benchjson -out bench.json
//
// Standard fields (ns/op, B/op, allocs/op) are parsed into dedicated keys;
// any extra `value unit` metric pairs reported via b.ReportMetric land in
// the metrics map verbatim.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	Name        string             `json:"name"`
	Runs        int                `json:"runs"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  *float64           `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64           `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Manifest is the emitted document.
type Manifest struct {
	GoOS       string   `json:"goos,omitempty"`
	GoArch     string   `json:"goarch,omitempty"`
	Pkg        string   `json:"pkg,omitempty"`
	CPU        string   `json:"cpu,omitempty"`
	Benchmarks []Result `json:"benchmarks"`
}

func main() {
	out := flag.String("out", "", "output file (default stdout)")
	flag.Parse()

	m, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(m.Benchmarks), *out)
}

func parse(sc *bufio.Scanner) (*Manifest, error) {
	m := &Manifest{}
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "FAIL") || strings.HasPrefix(line, "--- FAIL"):
			// A failed run must not produce a plausible-looking baseline
			// from the benchmarks that completed before the failure.
			return nil, fmt.Errorf("input contains a test failure: %q", line)
		case strings.HasPrefix(line, "goos:"):
			m.GoOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			m.GoArch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			m.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "cpu:"):
			m.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			r, err := parseLine(line)
			if err != nil {
				return nil, err
			}
			m.Benchmarks = append(m.Benchmarks, *r)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(m.Benchmarks) == 0 {
		return nil, fmt.Errorf("no benchmark lines found on stdin")
	}
	return m, nil
}

// parseLine parses one `BenchmarkName-8  N  v1 unit1  v2 unit2 ...` line.
func parseLine(line string) (*Result, error) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return nil, fmt.Errorf("malformed benchmark line %q", line)
	}
	name := fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		// Strip the GOMAXPROCS suffix.
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	runs, err := strconv.Atoi(fields[1])
	if err != nil {
		return nil, fmt.Errorf("run count in %q: %w", line, err)
	}
	r := &Result{Name: name, Runs: runs}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return nil, fmt.Errorf("value %q in %q: %w", fields[i], line, err)
		}
		unit := fields[i+1]
		switch unit {
		case "ns/op":
			r.NsPerOp = v
		case "B/op":
			r.BytesPerOp = ptr(v)
		case "allocs/op":
			r.AllocsPerOp = ptr(v)
		default:
			if r.Metrics == nil {
				r.Metrics = make(map[string]float64)
			}
			r.Metrics[unit] = v
		}
	}
	return r, nil
}

func ptr(v float64) *float64 { return &v }
