// Command etsim runs one deterministic coupled electrothermal simulation of
// the DATE16 chip (nominal wire lengths) and writes the wire-temperature
// history as CSV plus the final field as VTK.
//
// Usage: etsim [-config run.json] [-preset date16-calibrated] [-out out/etsim]
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"etherm/internal/config"
	"etherm/internal/core"
	"etherm/internal/vtkio"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "etsim:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		cfgPath = flag.String("config", "", "JSON configuration (empty = defaults)")
		preset  = flag.String("preset", "", "override chip preset")
		outBase = flag.String("out", "out/etsim", "output base path (writes <base>_wires.csv, <base>_field.vtk)")
	)
	flag.Parse()
	cfg, err := config.Load(*cfgPath)
	if err != nil {
		return err
	}
	if *preset != "" {
		cfg.Chip.Preset = *preset
	}
	if err := cfg.Validate(); err != nil {
		return err
	}
	spec, err := cfg.Spec()
	if err != nil {
		return err
	}
	lay, err := spec.Build()
	if err != nil {
		return err
	}
	sim, err := core.NewSimulator(lay.Problem, cfg.Options(false))
	if err != nil {
		return err
	}
	g := lay.Problem.Grid
	fmt.Printf("etsim: %d nodes, %d wires, V_pair = %.0f mV, %s coupling\n",
		g.NumNodes(), len(lay.Problem.Wires), lay.PairVoltage()*1e3, sim.Options().Coupling)

	t0 := time.Now()
	res, err := sim.Run()
	if err != nil {
		return err
	}
	fmt.Printf("solved in %v (%d electric CG iters, %d thermal CG iters, energy defect %.2g)\n",
		time.Since(t0).Round(time.Millisecond), res.Stats.ElecCGIters, res.Stats.ThermCGIters,
		res.Stats.MaxEnergyImbalance)

	if err := os.MkdirAll(filepath.Dir(*outBase), 0o755); err != nil {
		return err
	}
	fw, err := os.Create(*outBase + "_wires.csv")
	if err != nil {
		return err
	}
	w := csv.NewWriter(fw)
	header := []string{"time_s", "T_max_K", "P_total_W", "P_boundary_W"}
	for j := range lay.Problem.Wires {
		header = append(header, fmt.Sprintf("T_w%02d_K", j))
	}
	w.Write(header)
	for t := range res.Times {
		row := []string{
			fmt.Sprintf("%g", res.Times[t]),
			fmt.Sprintf("%.4f", res.MaxWireTempAt(t)),
			fmt.Sprintf("%.6g", res.FieldPower[t]+res.WirePowerTotal[t]),
			fmt.Sprintf("%.6g", res.BoundaryLoss[t]),
		}
		for j := range lay.Problem.Wires {
			row = append(row, fmt.Sprintf("%.4f", res.WireTemp[t][j]))
		}
		w.Write(row)
	}
	w.Flush()
	fw.Close()
	if err := w.Error(); err != nil {
		return err
	}

	if err := vtkio.WriteRectilinearFile(*outBase+"_field.vtk", g, "etherm final field",
		vtkio.Field{Name: "temperature", Values: res.FinalField},
		vtkio.Field{Name: "potential", Values: res.FinalPhi}); err != nil {
		return err
	}
	last := len(res.Times) - 1
	fmt.Printf("T_max(end) = %.2f K, hottest wire %d; outputs: %s_wires.csv, %s_field.vtk\n",
		res.MaxWireTempAt(last), res.HottestWire(), *outBase, *outBase)
	return nil
}
