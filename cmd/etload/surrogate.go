package main

import (
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"etherm/api"
	"etherm/client"
	"etherm/internal/scenario"
)

// The surrogate read-traffic phase: build one cheap surrogate through the
// public API, then hammer its query endpoint from -surrogate-queriers
// concurrent clients. Queries are the latency-sensitive read path of the
// server — the phase reports p50/p99 and fails on ANY query error. One
// deliberate out-of-domain query must come back as the typed problem
// carrying a FEM fallback batch that actually parses server-side; a
// fallback the engine would reject is a broken contract, not a detail.

// surrogateBatchScenario is the cheapest buildable study: one wire pair on
// a coarse mesh, three transient steps, and ρ = 1 so the germ is
// one-dimensional — the level-2 design costs five FEM solves.
func surrogateSpec() *api.SurrogateSpec {
	rho := 1.0
	return &api.SurrogateSpec{
		Scenario: api.Scenario{
			Name: "etload-surrogate",
			Chip: api.ChipSpec{HMaxM: 0.8e-3, ActivePairs: []int{0}},
			Sim:  api.SimSpec{EndTimeS: 10, NumSteps: 3, Coupling: "weak", Nonlinear: "newton"},
			UQ:   api.UQSpec{Rho: &rho},
		},
		Level: 2,
	}
}

// runSurrogateReads executes the phase; it is skipped (nil stats) when
// queries <= 0.
func runSurrogateReads(ctx context.Context, cl *client.Client, queries, queriers int, rep *report) error {
	if queries <= 0 {
		return nil
	}
	if queriers < 1 {
		queriers = 1
	}
	st := &surrogateStats{Target: queries}
	rep.Surrogate = st

	sg, err := cl.BuildSurrogate(ctx, surrogateSpec())
	if err != nil {
		return fmt.Errorf("build surrogate: %w", err)
	}
	sg, err = cl.WaitSurrogate(ctx, sg.ID)
	if err != nil {
		return fmt.Errorf("wait surrogate: %w", err)
	}
	if sg.Status != api.SurrogateReady {
		return fmt.Errorf("surrogate %s ended %s: %s", sg.ID, sg.Status, sg.Error)
	}
	st.ID = sg.ID
	st.Evaluations = sg.Evaluations

	// The contract probe: a what-if δ beyond the trained domain must be
	// refused with the typed out-of-domain problem whose fallback batch
	// the engine itself would accept.
	bad := sg.DeltaHi + 0.05
	_, err = cl.QuerySurrogate(ctx, sg.ID, &api.SurrogateQuery{Delta: &bad})
	if api.IsOutOfDomain(err) {
		if e, _ := api.AsError(err); e.FallbackJob != nil {
			raw, merr := json.Marshal(e.FallbackJob)
			if merr == nil {
				if _, perr := scenario.ParseBatch(raw); perr == nil {
					st.OutOfDomainOK = true
				}
			}
		}
	}

	lat := newSampler(queries)
	var errs atomic.Int64
	var done atomic.Int64
	work := make(chan int)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < queriers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			q := &api.SurrogateQuery{Quantiles: []float64{0.05, 0.5, 0.95}}
			for range work {
				t0 := time.Now()
				ans, err := cl.QuerySurrogate(ctx, sg.ID, q)
				if err != nil || ans.ErrIndicatorK <= 0 {
					// Every answer must carry a positive error indicator —
					// a missing one is as much a failure as a 5xx.
					errs.Add(1)
					continue
				}
				lat.add(time.Since(t0))
				done.Add(1)
			}
		}()
	}
feed:
	for i := 0; i < queries; i++ {
		select {
		case work <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(work)
	wg.Wait()

	st.Queries = done.Load()
	st.Errors = errs.Load()
	st.ElapsedS = time.Since(start).Seconds()
	if st.ElapsedS > 0 {
		st.QueriesPerS = float64(st.Queries) / st.ElapsedS
	}
	st.QueryMS = lat.quantilesMS()
	return ctx.Err()
}

type surrogateStats struct {
	ID            string    `json:"id"`
	Target        int       `json:"target"`
	Evaluations   int       `json:"evaluations"`
	Queries       int64     `json:"queries"`
	Errors        int64     `json:"errors"`
	ElapsedS      float64   `json:"elapsed_s"`
	QueriesPerS   float64   `json:"queries_per_s"`
	QueryMS       quantiles `json:"query_ms"`
	OutOfDomainOK bool      `json:"out_of_domain_ok"`
}
