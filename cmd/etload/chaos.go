package main

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"etherm/api"
	"etherm/client"
	"etherm/internal/apiconv"
	"etherm/internal/faultinject"
	"etherm/internal/fleet"
	"etherm/internal/scenario"
)

// Chaos mode: the same load run with deterministic fault injection
// layered under it — store writes failing and tearing, HTTP calls
// delayed, dropped and answered with synthetic 5xx, SSE streams cut
// mid-event, and the solver forced into NaN, divergence and panic — all
// drawn from one seeded stream, so a failure replays from the seed in
// the report. The run asserts the robustness contract instead of the
// latency one: the process survives, no watcher loses its terminal
// event, and a sharded campaign merged through a re-lease storm is
// bit-identical to a clean single-process run.

// chaosConfig is the built-in fault mix of -chaos: every injector armed
// at rates that fire constantly under load without starving progress.
func chaosConfig(seed uint64) faultinject.Config {
	return faultinject.Config{
		Seed:           seed,
		StoreFailP:     0.05,
		StoreTornP:     0.02,
		StoreDelay:     2 * time.Millisecond,
		StoreDelayP:    0.10,
		HTTPLatency:    5 * time.Millisecond,
		HTTPLatencyP:   0.15,
		HTTPDropP:      0.10,
		HTTP5xxP:       0.05,
		SSETruncP:      0.20,
		SolverNaNP:     0.02,
		SolverDivergeP: 0.02,
		SolverPanicP:   0.01,
	}
}

// chaosRun threads the injector and chaos accounting through the phases.
type chaosRun struct {
	inj          *faultinject.Injector
	watchResumes atomic.Int64
}

type chaosStats struct {
	Seed         uint64           `json:"seed"`
	Spec         string           `json:"spec"`
	Faults       map[string]int64 `json:"faults"`
	FaultsTotal  int64            `json:"faults_total"`
	WatchResumes int64            `json:"watch_resumes"`
	Fleet        *chaosFleetStats `json:"fleet,omitempty"`
}

type chaosFleetStats struct {
	JobID         string  `json:"job_id"`
	Shards        int     `json:"shards"`
	LeaseExpiries float64 `json:"lease_expiries"`
	BitIdentical  bool    `json:"bit_identical"`
	ElapsedS      float64 `json:"elapsed_s"`
}

// chaosFleetScenario is the sharded Monte Carlo campaign of the chaos
// fleet phase: small enough to converge in seconds, sharded enough that
// re-leases interleave.
func chaosFleetScenario() *api.Scenario {
	return &api.Scenario{
		Name: "etload-chaos-mc",
		Chip: api.ChipSpec{HMaxM: 0.8e-3},
		Sim:  api.SimSpec{EndTimeS: 10, NumSteps: 3, Coupling: "weak", Nonlinear: "newton"},
		UQ: api.UQSpec{
			Method: api.MethodMonteCarlo, Samples: 8, Seed: 7,
			Shards: 4, ShardBlock: 2,
		},
	}
}

// canonicalScenarioResult strips the context-dependent fields (timing,
// batch index, cache provenance) and renders the rest as JSON, so two
// runs can be compared bit-for-bit.
func canonicalScenarioResult(r *scenario.ScenarioResult) (string, error) {
	cp := *r
	cp.ElapsedS = 0
	cp.Index = 0
	cp.CacheHit = false
	data, err := json.Marshal(&cp)
	if err != nil {
		return "", err
	}
	return string(data), nil
}

// runChaosFleet is the exactly-once acceptance check under chaos: a
// sharded campaign is run by a small worker fleet whose result and
// heartbeat posts are randomly dropped — computed shards are lost after
// the fact, leases expire, shards are re-leased and recomputed — and the
// merged result must still be bit-identical to a clean, single-process
// reference run. Solver faults must be disabled around this phase: the
// reference and the fleet must compute the same (correct) bits.
func runChaosFleet(ctx context.Context, cl *client.Client, base string, ch *chaosRun, rep *report) error {
	start := time.Now()
	spec := chaosFleetScenario()

	// The clean local reference through the engine's sharded path.
	scen, err := apiconv.ScenarioToInternal(spec)
	if err != nil {
		return err
	}
	eng := scenario.NewEngine()
	ref, err := eng.Run(ctx, &scenario.Batch{Scenarios: []scenario.Scenario{scen}})
	if err != nil {
		return fmt.Errorf("reference run: %w", err)
	}
	if ref.FailedCount != 0 {
		return fmt.Errorf("reference run failed: %+v", ref.Failed()[0])
	}
	want, err := canonicalScenarioResult(ref.Scenarios[0])
	if err != nil {
		return err
	}

	expiries0 := scrapeMetric(ctx, base, "etserver_lease_expiries_total")

	// Submission goes through the retrying client — the chaos transport
	// never disrupts submissions (they carry no not-processed guarantee).
	view, err := cl.SubmitFleetJob(ctx, spec)
	if err != nil {
		return fmt.Errorf("submit fleet job: %w", err)
	}

	// Workers talk through the chaos transport WITHOUT retries: a dropped
	// result post is a lost shard the lease machinery must recover, not a
	// transparent retry. That is what turns the drop rate into a re-lease
	// storm.
	wctx, stop := context.WithCancel(ctx)
	defer stop()
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wcl := client.New(base,
			client.WithHTTPClient(&http.Client{Transport: ch.inj.Transport(nil)}),
			client.WithRetry(1, time.Millisecond))
		w := &fleet.Worker{Client: wcl, ID: fmt.Sprintf("chaos-worker-%d", i),
			SampleWorkers: 2, Poll: 50 * time.Millisecond}
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = w.Run(wctx) // exits on context cancel; errors are the point
		}()
	}

	// Poll to terminal with tolerance for injected read failures.
	var final *api.FleetJob
	for {
		v, err := cl.GetFleetJob(ctx, view.ID)
		if err == nil && v.Status.Finished() {
			final = v
			break
		}
		if ctx.Err() != nil {
			return fmt.Errorf("chaos fleet job did not finish: %w", ctx.Err())
		}
		time.Sleep(100 * time.Millisecond)
	}
	stop()
	wg.Wait()

	if final.Status != api.JobDone || final.Result == nil {
		return fmt.Errorf("chaos fleet job finished as %s (%s)", final.Status, final.Error)
	}
	internal, err := apiconv.ScenarioResultToInternal(final.Result)
	if err != nil {
		return err
	}
	got, err := canonicalScenarioResult(internal)
	if err != nil {
		return err
	}

	rep.Chaos.Fleet = &chaosFleetStats{
		JobID:         view.ID,
		Shards:        len(final.Shards),
		LeaseExpiries: scrapeMetric(ctx, base, "etserver_lease_expiries_total") - expiries0,
		BitIdentical:  got == want,
		ElapsedS:      time.Since(start).Seconds(),
	}
	if got != want {
		return fmt.Errorf("merged result under chaos differs from the clean reference:\n%s\nvs\n%s", got, want)
	}
	return nil
}

// scrapeMetric reads one un-labeled counter/gauge from the server's
// Prometheus text exposition; 0 when unreachable or absent (the scrape is
// diagnostic, never load-bearing).
func scrapeMetric(ctx context.Context, base, name string) float64 {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/metrics", nil)
	if err != nil {
		return 0
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return 0
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if rest, ok := strings.CutPrefix(line, name+" "); ok {
			v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
			if err == nil {
				return v
			}
		}
	}
	return 0
}
