// Command etload is the load and soak harness of the etherm control
// plane, built on the public client SDK. It drives two pressures at once
// and fails loudly when the server drops anything:
//
//   - Watcher fan-out: anchor jobs are submitted, a large pool of
//     concurrent SSE watchers (-watchers) attaches across them, and the
//     anchors are then canceled. EVERY watcher must receive a terminal
//     event; a single dropped terminal fails the run.
//   - Sustained throughput: -jobs tiny jobs are submitted from
//     -concurrency workers, each followed to its terminal state over SSE.
//     Submit and end-to-end latencies are recorded as raw samples and
//     reported as p50/p90/p99; backpressure rejections (429) are counted
//     via the transport and must all have been retried into acceptance.
//
// The target is either a running server (-server URL) or an in-process
// one (-self), which embeds internal/server on a loopback listener — the
// CI smoke path, exercising the same HTTP surface without process
// management. With -duration the throughput phase loops until the
// deadline (soak mode).
//
// With -chaos the same run executes under deterministic fault injection
// (package faultinject): store writes fail and tear, HTTP calls are
// delayed, dropped and answered with synthetic 5xx, SSE streams are cut
// mid-event, and the solver is forced into NaN, divergence and panic —
// all drawn from one seeded stream (-chaos-seed, recorded in the report,
// so any failure replays exactly). Chaos adds a fleet phase: a sharded
// campaign is merged through a deliberate re-lease storm (worker result
// posts dropped without retry, leases expiring and re-leasing) and the
// merged result must be bit-identical to a clean single-process run. The
// run fails unless faults actually fired, every watcher still saw its
// terminal event (reconnecting through cut streams), and the merge is
// bit-identical.
//
// Usage:
//
//	etload -self -jobs 200 -watchers 100 -out load.json
//	etload -self -chaos -chaos-seed 20160607 -out chaos.json
//	etload -server http://etserver:8080 -jobs 1000 -watchers 1000 \
//	       -duration 10m -min-peak-watchers 1000
//
// The JSON report (written to -out, "-" = stdout) carries the latency
// histograms and drop counters; the process exits nonzero on any dropped
// terminal event, failed job, watch error, or a watcher peak below
// -min-peak-watchers.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"etherm/api"
	"etherm/client"
	"etherm/internal/faultinject"
	"etherm/internal/jobstore"
	"etherm/internal/server"
)

func main() {
	var (
		serverURL = flag.String("server", "", "target server URL (mutually exclusive with -self)")
		self      = flag.Bool("self", false, "start an in-process server on a loopback port and load it")
		jobs      = flag.Int("jobs", 200, "jobs to submit in the throughput phase")
		watchers  = flag.Int("watchers", 100, "concurrent SSE watchers in the fan-out phase")
		anchors   = flag.Int("anchors", 4, "anchor jobs the watcher pool distributes across")
		conc      = flag.Int("concurrency", 16, "concurrent submitters in the throughput phase")
		duration  = flag.Duration("duration", 0, "soak: repeat the throughput phase until this deadline (0 = one pass)")
		timeout   = flag.Duration("timeout", 10*time.Minute, "overall run timeout")
		minPeak   = flag.Int("min-peak-watchers", 0, "fail unless this many watchers were concurrently connected")
		out       = flag.String("out", "-", "JSON report path (- = stdout)")

		surrQueries  = flag.Int("surrogate-queries", 0, "surrogate read phase: total queries against one cheap surrogate (0 = skip)")
		surrQueriers = flag.Int("surrogate-queriers", 8, "surrogate read phase: concurrent queriers")

		selfMaxJobs   = flag.Int("self-max-jobs", 2, "-self: concurrent batch runners")
		selfMaxQueued = flag.Int("self-max-queued", 64, "-self: backpressure queue bound (0 = unbounded)")
		selfData      = flag.String("self-data", "", "-self: persist to this data directory (empty = in-memory)")

		chaos     = flag.Bool("chaos", false, "inject deterministic faults (store, transport, SSE, solver) and assert the robustness contract")
		chaosSeed = flag.Uint64("chaos-seed", faultinject.DefaultSeed, "chaos: seed of the fault stream (recorded in the report; replays the run)")
		chaosSpec = flag.String("chaos-spec", "", "chaos: override the built-in fault mix with a faultinject spec (\"store-fail=0.05,http-drop=0.1,…\")")
	)
	flag.Parse()

	if (*serverURL == "") == !*self {
		log.Fatal("etload: pass exactly one of -server URL or -self")
	}

	var ch *chaosRun
	if *chaos {
		cfg := chaosConfig(*chaosSeed)
		if *chaosSpec != "" {
			parsed, err := faultinject.ParseSpec(*chaosSpec)
			if err != nil {
				log.Fatalf("etload: %v", err)
			}
			if parsed.Seed == 0 {
				parsed.Seed = *chaosSeed
			}
			cfg = parsed
		}
		ch = &chaosRun{inj: faultinject.New(cfg)}
		log.Printf("etload: CHAOS mode, %s", ch.inj.Spec())
	}

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	base := *serverURL
	if *self {
		cfg := server.Config{
			MaxConcurrent: *selfMaxJobs,
			MaxHistory:    2 * (*jobs + *anchors),
			MaxQueued:     *selfMaxQueued,
			DataDir:       *selfData,
		}
		if ch != nil {
			// Interpose the fault-injecting store and shorten the lease TTL
			// so chaos-induced re-leases cycle in seconds, not minutes.
			var store jobstore.Store = jobstore.NewMem()
			if *selfData != "" {
				fs, err := jobstore.Open(*selfData, jobstore.Options{})
				if err != nil {
					log.Fatalf("etload: open store: %v", err)
				}
				store = fs
			}
			cfg.DataDir = ""
			cfg.Store = ch.inj.WrapStore(store)
			cfg.LeaseTTL = 2 * time.Second
		}
		srv, err := server.New(cfg)
		if err != nil {
			log.Fatalf("etload: start server: %v", err)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatalf("etload: listen: %v", err)
		}
		hs := &http.Server{Handler: srv.Handler()}
		go func() { _ = hs.Serve(ln) }()
		defer func() {
			_ = hs.Close()
			_ = srv.Close()
		}()
		base = "http://" + ln.Addr().String()
		log.Printf("etload: in-process server on %s (runners=%d, max-queued=%d)",
			base, *selfMaxJobs, *selfMaxQueued)
	}

	wire := http.DefaultTransport
	if ch != nil {
		wire = ch.inj.Transport(wire)
	}
	// The 429 counter sits OUTERMOST so it counts real server rejections,
	// not synthetic chaos 5xx (which the injector never renders as 429).
	counter := &countingTransport{base: wire}
	cl := client.New(base,
		client.WithHTTPClient(&http.Client{Transport: counter}),
		client.WithRetry(5, 100*time.Millisecond))

	rep := report{Config: runConfig{
		Server: base, Jobs: *jobs, Watchers: *watchers, Anchors: *anchors,
		Concurrency: *conc, DurationS: duration.Seconds(),
	}}

	if ch != nil {
		// Solver faults stay on through the load phases: scenarios fail as
		// typed solver errors (or recovered panics), never a dead process.
		ch.inj.EnableSolverFaults()
	}
	if err := runWatcherFanout(ctx, cl, *watchers, *anchors, &rep, ch); err != nil {
		log.Fatalf("etload: watcher phase: %v", err)
	}
	if err := runThroughput(ctx, cl, *jobs, *conc, *duration, &rep); err != nil {
		log.Fatalf("etload: throughput phase: %v", err)
	}
	if ch == nil {
		// The surrogate read phase measures clean-path latency; under chaos
		// injected transport faults would dominate the numbers.
		if err := runSurrogateReads(ctx, cl, *surrQueries, *surrQueriers, &rep); err != nil {
			log.Fatalf("etload: surrogate phase: %v", err)
		}
	}
	if ch != nil {
		// The fleet phase compares merged bits against a clean reference —
		// both sides must solve faithfully.
		faultinject.DisableSolverFaults()
		rep.Chaos = &chaosStats{Seed: ch.inj.Seed(), Spec: ch.inj.Spec()}
		if err := runChaosFleet(ctx, cl, base, ch, &rep); err != nil {
			log.Printf("etload: chaos fleet phase: %v", err)
		}
		rep.Chaos.Faults = ch.inj.Counts()
		rep.Chaos.FaultsTotal = ch.inj.Total()
		rep.Chaos.WatchResumes = ch.watchResumes.Load()
	}
	rep.Rejected429 = counter.n429.Load()

	rep.OK = rep.WatcherStats.DroppedTerminal == 0 &&
		rep.WatcherStats.WatchErrors == 0 &&
		rep.Throughput.FailedJobs == 0 &&
		rep.WatcherStats.PeakConcurrent >= int64(*minPeak)
	if rep.Chaos != nil {
		// The chaos contract: faults actually fired, and the campaign
		// merged through the re-lease storm bit-identical to a clean run.
		rep.OK = rep.OK && rep.Chaos.FaultsTotal > 0 &&
			rep.Chaos.Fleet != nil && rep.Chaos.Fleet.BitIdentical
	}
	if rep.Surrogate != nil {
		// The read-path contract: every query answered (zero errors, full
		// count) and the out-of-domain probe produced a parseable fallback.
		rep.OK = rep.OK && rep.Surrogate.Errors == 0 &&
			rep.Surrogate.Queries == int64(rep.Surrogate.Target) &&
			rep.Surrogate.OutOfDomainOK
	}

	if err := writeReport(*out, &rep); err != nil {
		log.Fatalf("etload: %v", err)
	}
	if !rep.OK {
		log.Fatalf("etload: FAILED (dropped=%d watchErrs=%d failedJobs=%d peak=%d/%d chaos=%+v)",
			rep.WatcherStats.DroppedTerminal, rep.WatcherStats.WatchErrors,
			rep.Throughput.FailedJobs, rep.WatcherStats.PeakConcurrent, *minPeak, rep.Chaos)
	}
	if rep.Chaos != nil {
		log.Printf("etload: chaos OK — %d faults injected (seed %d), %d watch resumes, fleet merge bit-identical over %.0f lease expiries",
			rep.Chaos.FaultsTotal, rep.Chaos.Seed, rep.Chaos.WatchResumes, rep.Chaos.Fleet.LeaseExpiries)
	}
	if rep.Surrogate != nil {
		log.Printf("etload: surrogate OK — %d queries (%.0f/s) against %s, p50 %.2fms p99 %.2fms, out-of-domain fallback verified",
			rep.Surrogate.Queries, rep.Surrogate.QueriesPerS, rep.Surrogate.ID,
			rep.Surrogate.QueryMS.P50, rep.Surrogate.QueryMS.P99)
	}
	log.Printf("etload: OK — %d jobs (%.1f/s), peak %d watchers, %d backpressure rejections retried",
		rep.Throughput.Jobs, rep.Throughput.JobsPerS, rep.WatcherStats.PeakConcurrent, rep.Rejected429)
}

// countingTransport counts backpressure rejections at the wire, beneath
// the SDK's retry loop.
type countingTransport struct {
	base http.RoundTripper
	n429 atomic.Int64
}

func (t *countingTransport) RoundTrip(r *http.Request) (*http.Response, error) {
	resp, err := t.base.RoundTrip(r)
	if err == nil && resp.StatusCode == http.StatusTooManyRequests {
		t.n429.Add(1)
	}
	return resp, err
}

// tinyBatch is the cheapest real workload: one coarse-mesh scenario with a
// three-step transient. Every submission after the first hits the shared
// assembly cache, so a load run measures the control plane, not the solver.
func tinyBatch(name string) *api.Batch {
	return &api.Batch{
		Name: name,
		Scenarios: []api.Scenario{{
			Name: "pair",
			Chip: api.ChipSpec{HMaxM: 0.8e-3, ActivePairs: []int{0}},
			Sim:  api.SimSpec{EndTimeS: 10, NumSteps: 3, Coupling: "weak", Nonlinear: "newton"},
		}},
	}
}

// runWatcherFanout submits anchor jobs, attaches the full watcher pool
// across them, waits for every stream to be connected, then cancels the
// anchors. Every watcher must observe a terminal event. Under chaos
// (ch != nil) injected stream failures — truncated SSE bodies, dropped
// GETs — are answered by reconnecting, exactly as a resilient consumer
// would; only a CLEAN stream close without a terminal event counts as a
// dropped terminal.
func runWatcherFanout(ctx context.Context, cl *client.Client, watchers, anchors int, rep *report, ch *chaosRun) error {
	if watchers <= 0 {
		return nil
	}
	if anchors < 1 {
		anchors = 1
	}
	ids := make([]string, 0, anchors)
	for i := 0; i < anchors; i++ {
		job, err := cl.SubmitBatch(ctx, tinyBatch(fmt.Sprintf("etload-anchor-%d", i)))
		if err != nil {
			return fmt.Errorf("submit anchor: %w", err)
		}
		ids = append(ids, job.ID)
	}

	var (
		current, peak   atomic.Int64
		gotTerminal     atomic.Int64
		dropped         atomic.Int64
		watchErrs       atomic.Int64
		firstEvent      = newSampler(watchers)
		connected       sync.WaitGroup
		finished        sync.WaitGroup
		releaseAnchors  = make(chan struct{})
		releaseWatchers sync.Once
	)
	connected.Add(watchers)
	finished.Add(watchers)
	for w := 0; w < watchers; w++ {
		go func(w int) {
			defer finished.Done()
			start := time.Now()
			id := ids[w%len(ids)]
			first, counted := true, false
			for {
				events, errc := cl.WatchJob(ctx, id)
				if !counted {
					n := current.Add(1)
					for {
						old := peak.Load()
						if n <= old || peak.CompareAndSwap(old, n) {
							break
						}
					}
					connected.Done()
					defer current.Add(-1)
					counted = true
				}

				terminal := false
				for ev := range events {
					if first {
						firstEvent.add(time.Since(start))
						first = false
					}
					if ev.Terminal() {
						terminal = true
					}
				}
				err := <-errc
				if terminal {
					gotTerminal.Add(1)
					return
				}
				if err != nil {
					// An injected failure (cut stream, dropped GET) is the
					// chaos the consumer is expected to ride out: reconnect.
					// Without chaos, any stream error is a harness failure.
					if ch != nil && ctx.Err() == nil {
						ch.watchResumes.Add(1)
						continue
					}
					watchErrs.Add(1)
					return
				}
				dropped.Add(1)
				return
			}
		}(w)
	}

	// All streams up (each watcher has issued its request and is counted):
	// release the anchors so every stream must end with a terminal event.
	go func() {
		connected.Wait()
		releaseWatchers.Do(func() { close(releaseAnchors) })
	}()
	select {
	case <-releaseAnchors:
	case <-ctx.Done():
		return ctx.Err()
	}
	for _, id := range ids {
		// A fast anchor may already be terminal; that cancel conflict is
		// fine — its watchers saw the terminal status either way.
		if _, err := cl.CancelJob(ctx, id); err != nil && !api.IsConflict(err) {
			return fmt.Errorf("cancel anchor %s: %w", id, err)
		}
	}
	finished.Wait()

	rep.WatcherStats = watcherStats{
		Target:           watchers,
		PeakConcurrent:   peak.Load(),
		TerminalReceived: gotTerminal.Load(),
		DroppedTerminal:  dropped.Load(),
		WatchErrors:      watchErrs.Load(),
		FirstEventMS:     firstEvent.quantilesMS(),
	}
	return nil
}

// runThroughput pushes jobs through the server from conc submitters and
// follows each to its terminal state, collecting latency samples. With a
// soak duration it repeats passes until the deadline.
func runThroughput(ctx context.Context, cl *client.Client, jobs, conc int, soak time.Duration, rep *report) error {
	if jobs <= 0 {
		return nil
	}
	if conc < 1 {
		conc = 1
	}
	var (
		submitLat = newSampler(jobs)
		e2eLat    = newSampler(jobs)
		failed    atomic.Int64
		total     atomic.Int64
		work      = make(chan int)
		wg        sync.WaitGroup
	)
	start := time.Now()
	deadline := start.Add(soak)
	for w := 0; w < conc; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				t0 := time.Now()
				job, err := cl.SubmitBatch(ctx, tinyBatch(fmt.Sprintf("etload-%06d", i)))
				if err != nil {
					failed.Add(1)
					continue
				}
				submitLat.add(time.Since(t0))
				final, err := cl.WaitJob(ctx, job.ID)
				if err != nil || final.Status != api.JobDone {
					failed.Add(1)
					continue
				}
				e2eLat.add(time.Since(t0))
				total.Add(1)
			}
		}()
	}
	i := 0
feed:
	for pass := 0; ; pass++ {
		for n := 0; n < jobs; n++ {
			select {
			case work <- i:
				i++
			case <-ctx.Done():
				break feed
			}
		}
		if soak <= 0 || time.Now().After(deadline) {
			break
		}
	}
	close(work)
	wg.Wait()
	elapsed := time.Since(start)

	rep.Throughput = throughputStats{
		Jobs:       total.Load(),
		FailedJobs: failed.Load(),
		ElapsedS:   elapsed.Seconds(),
		JobsPerS:   float64(total.Load()) / elapsed.Seconds(),
		SubmitMS:   submitLat.quantilesMS(),
		E2EMS:      e2eLat.quantilesMS(),
	}
	return ctx.Err()
}

// sampler collects raw latency samples for exact quantiles.
type sampler struct {
	mu sync.Mutex
	v  []time.Duration
}

func newSampler(capHint int) *sampler { return &sampler{v: make([]time.Duration, 0, capHint)} }

func (s *sampler) add(d time.Duration) {
	s.mu.Lock()
	s.v = append(s.v, d)
	s.mu.Unlock()
}

// quantilesMS reports p50/p90/p99/max in milliseconds.
func (s *sampler) quantilesMS() quantiles {
	s.mu.Lock()
	v := append([]time.Duration(nil), s.v...)
	s.mu.Unlock()
	if len(v) == 0 {
		return quantiles{}
	}
	sort.Slice(v, func(i, j int) bool { return v[i] < v[j] })
	at := func(q float64) float64 {
		i := int(q * float64(len(v)-1))
		return float64(v[i]) / float64(time.Millisecond)
	}
	return quantiles{
		N: len(v), P50: at(0.50), P90: at(0.90), P99: at(0.99),
		Max: float64(v[len(v)-1]) / float64(time.Millisecond),
	}
}

type quantiles struct {
	N   int     `json:"n"`
	P50 float64 `json:"p50"`
	P90 float64 `json:"p90"`
	P99 float64 `json:"p99"`
	Max float64 `json:"max"`
}

type runConfig struct {
	Server      string  `json:"server"`
	Jobs        int     `json:"jobs"`
	Watchers    int     `json:"watchers"`
	Anchors     int     `json:"anchors"`
	Concurrency int     `json:"concurrency"`
	DurationS   float64 `json:"duration_s,omitempty"`
}

type watcherStats struct {
	Target           int       `json:"target"`
	PeakConcurrent   int64     `json:"peak_concurrent"`
	TerminalReceived int64     `json:"terminal_received"`
	DroppedTerminal  int64     `json:"dropped_terminal"`
	WatchErrors      int64     `json:"watch_errors"`
	FirstEventMS     quantiles `json:"first_event_ms"`
}

type throughputStats struct {
	Jobs       int64     `json:"jobs"`
	FailedJobs int64     `json:"failed_jobs"`
	ElapsedS   float64   `json:"elapsed_s"`
	JobsPerS   float64   `json:"jobs_per_s"`
	SubmitMS   quantiles `json:"submit_ms"`
	E2EMS      quantiles `json:"e2e_ms"`
}

type report struct {
	Config       runConfig       `json:"config"`
	WatcherStats watcherStats    `json:"watchers"`
	Throughput   throughputStats `json:"throughput"`
	Rejected429  int64           `json:"rejected_429"`
	Surrogate    *surrogateStats `json:"surrogate,omitempty"`
	Chaos        *chaosStats     `json:"chaos,omitempty"`
	OK           bool            `json:"ok"`
}

func writeReport(path string, rep *report) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if path == "-" || path == "" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}
