// Command mcstudy runs the paper's uncertainty study: Monte Carlo (or LHS /
// Halton / Sobol' / Smolyak collocation) over the uncertain bonding-wire
// elongations of the DATE16 chip, reporting the hottest-wire expectation
// series with its 6σ band (Fig. 7), σ_MC, error_MC (eq. 6) and failure
// diagnostics.
//
// Usage:
//
//	mcstudy [-config run.json] [-samples 1000] [-method monte-carlo]
//	        [-seed 2016] [-workers N] [-out out/fig7_series.csv] [-preset date16-calibrated]
//
// Streaming campaigns (constant-memory, adaptive, resumable):
//
//	mcstudy -stream -samples 100000 -target-se 0.05        # stop at σ_MC/√M ≤ 0.05 K
//	mcstudy -stream -samples 100000 -checkpoint mc.ckpt    # checkpoint periodically
//	mcstudy -stream -samples 100000 -checkpoint mc.ckpt -resume   # continue a run
package main

import (
	"context"
	"encoding/csv"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"etherm/internal/asciiplot"
	"etherm/internal/config"
	"etherm/internal/core"
	"etherm/internal/degrade"
	"etherm/internal/study"
	"etherm/internal/uq"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "mcstudy:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		cfgPath = flag.String("config", "", "JSON configuration file (empty = paper defaults)")
		samples = flag.Int("samples", 0, "override sample count M")
		method  = flag.String("method", "", "override sampler: monte-carlo|lhs|halton|sobol")
		preset  = flag.String("preset", "", "override chip preset: date16|date16-calibrated")
		seed    = flag.Uint64("seed", 0, "override RNG seed")
		workers = flag.Int("workers", 0, "parallel workers (0 = GOMAXPROCS)")
		driveV  = flag.Float64("drivev", 0, "override PEC drive voltage ±V (pair sees 2V)")
		rho     = flag.Float64("rho", study.DefaultRho, "wire-to-wire elongation correlation in [0,1]")
		outPath = flag.String("out", "out/fig7_series.csv", "CSV output path")
		plot    = flag.Bool("plot", true, "print an ASCII Fig. 7")

		stream     = flag.Bool("stream", false, "streaming campaign: O(outputs) memory instead of O(M·outputs)")
		maxSamples = flag.Int("max-samples", 0, "streaming sample budget (0 = -samples)")
		targetSE   = flag.Float64("target-se", 0, "stop when every output's MC standard error ≤ this (K)")
		targetCI   = flag.Float64("target-ci", 0, "stop when the 95% failure-probability half-width ≤ this")
		checkpoint = flag.String("checkpoint", "", "periodically persist resumable campaign state to this file")
		ckptEvery  = flag.Int("checkpoint-every", 0, "samples between checkpoints (0 = default)")
		resume     = flag.Bool("resume", false, "resume from -checkpoint if the file exists")
		shards     = flag.Int("shards", 0, "partition the campaign into K self-contained shards (results identical for any K)")
		shardBlock = flag.Int("shard-block", 0, "shard merge granularity in samples (0 = default)")
	)
	flag.Parse()

	cfg, err := config.Load(*cfgPath)
	if err != nil {
		return err
	}
	if *samples > 0 {
		cfg.UQ.Samples = *samples
	}
	if *stream {
		cfg.UQ.Stream = true
	}
	if *maxSamples > 0 {
		cfg.UQ.MaxSamples = *maxSamples
	}
	if *targetSE > 0 {
		cfg.UQ.TargetSE = *targetSE
	}
	if *targetCI > 0 {
		cfg.UQ.TargetCI = *targetCI
	}
	if *checkpoint != "" {
		cfg.UQ.Checkpoint = *checkpoint
	}
	if *ckptEvery > 0 {
		cfg.UQ.CheckpointEvery = *ckptEvery
	}
	if *shards > 0 {
		cfg.UQ.Shards = *shards
	}
	if *shardBlock > 0 {
		cfg.UQ.ShardBlock = *shardBlock
	}
	if *method != "" {
		cfg.UQ.Method = *method
	}
	if *preset != "" {
		cfg.Chip.Preset = *preset
	}
	if *seed != 0 {
		cfg.UQ.Seed = *seed
	}
	if *workers > 0 {
		cfg.UQ.Workers = *workers
	}
	if *driveV > 0 {
		cfg.Chip.DriveVoltageV = *driveV
	}
	if err := cfg.Validate(); err != nil {
		return err
	}

	spec, err := cfg.Spec()
	if err != nil {
		return err
	}
	opt := cfg.Options(true)

	fmt.Printf("mcstudy: preset=%s method=%s M=%d seed=%d workers=%d (%d CPU)\n",
		cfg.Chip.Preset, cfg.UQ.Method, cfg.UQ.Samples, cfg.UQ.Seed, cfg.UQ.Workers, runtime.NumCPU())

	lay, err := spec.Build()
	if err != nil {
		return err
	}
	base, err := core.NewSimulator(lay.Problem, opt)
	if err != nil {
		return err
	}
	model := study.NewWireTempModel(base)
	model.Mu = cfg.UQ.MeanDelta
	model.Sigma = cfg.UQ.StdDelta
	model.Rho = *rho
	dim := model.Dim()
	dists := model.InputDists()

	var sampler uq.Sampler
	switch cfg.UQ.Method {
	case "", "monte-carlo":
		sampler = uq.PseudoRandom{D: dim, Seed: cfg.UQ.Seed}
	case "lhs":
		lhs, err := uq.NewLatinHypercube(dim, cfg.UQ.Budget(), cfg.UQ.Seed)
		if err != nil {
			return err
		}
		sampler = lhs
	case "halton":
		h, err := uq.NewHalton(dim, cfg.UQ.Seed)
		if err != nil {
			return err
		}
		sampler = h
	case "sobol":
		s, err := uq.NewSobol(dim)
		if err != nil {
			return err
		}
		sampler = s
	default:
		return fmt.Errorf("method %q not supported by mcstudy (use the collocation example for smolyak)", cfg.UQ.Method)
	}

	tCrit := cfg.UQ.CriticalK
	if tCrit == 0 {
		tCrit = degrade.DefaultCriticalTemp
	}
	p := study.Params{Mu: cfg.UQ.MeanDelta, Sigma: cfg.UQ.StdDelta, Rho: *rho}

	t0 := time.Now()
	var fig7 *study.Fig7
	var succeeded, failed int
	if cfg.UQ.Streaming() {
		f7, camp, err := study.RunStreamingStudyWith(context.Background(), base, p, sampler, study.StreamOptions{
			Samples:         cfg.UQ.Budget(),
			Workers:         cfg.UQ.Workers,
			TargetSE:        cfg.UQ.TargetSE,
			TargetCI:        cfg.UQ.TargetCI,
			Checkpoint:      cfg.UQ.Checkpoint,
			CheckpointEvery: cfg.UQ.CheckpointEvery,
			Resume:          *resume,
			Tag: fmt.Sprintf("mcstudy:%s|%s|seed=%d|rho=%g|mu=%g|sigma=%g|drive=%g|tcrit=%g",
				cfg.Chip.Preset, cfg.UQ.Method, cfg.UQ.Seed, *rho, p.Mu, p.Sigma, cfg.Chip.DriveVoltageV, tCrit),
			TCrit:      tCrit,
			Shards:     cfg.UQ.Shards,
			ShardBlock: cfg.UQ.ShardBlock,
		})
		if err != nil {
			return err
		}
		fig7 = f7
		succeeded, failed = camp.Succeeded(), camp.Failures
		fmt.Printf("streaming campaign: %d/%d samples, stop=%s, P_fail(any wire ≥ T_crit) = %.2e, T_obs,max = %.2f K\n",
			camp.Evaluated, camp.Requested, camp.StopReason, camp.Stats.FailProb(), camp.Stats.Ext.GlobalMax())
		if cfg.UQ.Sharded() {
			fmt.Printf("sharded: %d shards (merge is bit-identical for any shard count)\n", cfg.UQ.Shards)
		}
		if cfg.UQ.Checkpoint != "" {
			fmt.Printf("checkpoint: %s (resume with -resume)\n", cfg.UQ.Checkpoint)
		}
	} else {
		factory := study.ParamFactory(base, p)
		ens, err := uq.RunEnsemble(factory, dists, sampler,
			uq.EnsembleOptions{Samples: cfg.UQ.Samples, Workers: cfg.UQ.Workers})
		if err != nil {
			return err
		}
		eff := base.Options()
		times := make([]float64, eff.NumSteps+1)
		for i := range times {
			times[i] = eff.EndTime * float64(i) / float64(eff.NumSteps)
		}
		fig7, err = study.BuildFig7(times, ens, model.NumWires(), tCrit)
		if err != nil {
			return err
		}
		succeeded, failed = ens.Succeeded(), ens.Failures
	}
	elapsed := time.Since(t0)

	if err := writeCSV(*outPath, fig7); err != nil {
		return err
	}

	fmt.Printf("samples ok=%d failed=%d in %v (%.2f s/sample/worker-adjusted)\n",
		succeeded, failed, elapsed.Round(time.Second),
		elapsed.Seconds()/float64(succeeded))
	fmt.Printf("hottest wire: %d (%s side)\n", fig7.HotWire, lay.Wires[fig7.HotWire].Side)
	times := fig7.Times
	last := len(times) - 1
	fmt.Printf("E_max(%.0f s) = %.2f K   sigma_MC = %.3f K   error_MC = %.3f K (eq. 6)\n",
		times[last], fig7.EMax[last], fig7.SigmaMC, fig7.ErrorMC)
	fmt.Printf("T_crit = %.0f K: mean crossing %s, 6-sigma band crossing %s, P(exceed at end) = %.2e\n",
		tCrit, fmtCross(fig7.CrossMean), fmtCross(fig7.Cross6Sig), fig7.ExceedProb)
	fmt.Printf("stationary by end of horizon: %v\n", fig7.Stationary(2.0))

	if *plot {
		hot := fig7.HotSeries()
		errs := make([]float64, len(hot))
		for i := range errs {
			errs[i] = 6 * fig7.SigmaHot[i]
		}
		p := asciiplot.LinePlot{
			Title:  fmt.Sprintf("Fig. 7: expected hottest-wire temperature ±6 sigma (M=%d, %s)", succeeded, sampler.Name()),
			XLabel: "time (s)", YLabel: "temperature (K)",
			Series: []asciiplot.Series{{Name: "E[T_hot](t) ±6 sigma", X: times, Y: hot, Err: errs, Marker: '*'}},
			HLines: map[string]float64{"T_critical": tCrit},
		}
		fmt.Println(p.Render())
	}
	fmt.Printf("series written to %s\n", *outPath)
	return nil
}

func fmtCross(t float64) string {
	if math.IsNaN(t) {
		return "never"
	}
	return fmt.Sprintf("t = %.1f s", t)
}

func writeCSV(path string, f *study.Fig7) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	fh, err := os.Create(path)
	if err != nil {
		return err
	}
	defer fh.Close()
	w := csv.NewWriter(fh)
	header := []string{"time_s", "E_max_K", "E_hot_K", "sigma_hot_K", "lower6_K", "upper6_K", "T_crit_K"}
	nw := len(f.EWire[0])
	for j := 0; j < nw; j++ {
		header = append(header, fmt.Sprintf("E_wire%02d_K", j), fmt.Sprintf("sigma_wire%02d_K", j))
	}
	if err := w.Write(header); err != nil {
		return err
	}
	hot := f.HotSeries()
	for t := range f.Times {
		row := []string{
			fmt.Sprintf("%g", f.Times[t]),
			fmt.Sprintf("%.4f", f.EMax[t]),
			fmt.Sprintf("%.4f", hot[t]),
			fmt.Sprintf("%.4f", f.SigmaHot[t]),
			fmt.Sprintf("%.4f", hot[t]-6*f.SigmaHot[t]),
			fmt.Sprintf("%.4f", hot[t]+6*f.SigmaHot[t]),
			fmt.Sprintf("%g", f.TCritical),
		}
		for j := 0; j < nw; j++ {
			row = append(row, fmt.Sprintf("%.4f", f.EWire[t][j]), fmt.Sprintf("%.4f", f.SWire[t][j]))
		}
		if err := w.Write(row); err != nil {
			return err
		}
	}
	w.Flush()
	return w.Error()
}
