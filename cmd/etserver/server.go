package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"etherm/internal/fleet"
	"etherm/internal/scenario"
)

// JobStatus is the lifecycle state of a submitted batch job.
type JobStatus string

// Job lifecycle states.
const (
	// JobQueued means the job waits for a free runner slot.
	JobQueued JobStatus = "queued"
	// JobRunning means the batch is being evaluated.
	JobRunning JobStatus = "running"
	// JobDone means the batch finished (individual scenarios may still have
	// failed; see the result's failed_count).
	JobDone JobStatus = "done"
	// JobFailed means the batch as a whole errored before producing results.
	JobFailed JobStatus = "failed"
	// JobCanceled means the client aborted the job via DELETE before it
	// finished; streaming scenarios stop mid-ensemble.
	JobCanceled JobStatus = "canceled"
)

// finished reports whether a status is terminal.
func finished(s JobStatus) bool {
	return s == JobDone || s == JobFailed || s == JobCanceled
}

// JobProgress counts finished scenarios while a job runs.
type JobProgress struct {
	ScenariosDone   int `json:"scenarios_done"`
	ScenariosFailed int `json:"scenarios_failed"`
	ScenariosTotal  int `json:"scenarios_total"`
}

// Job is the public view of one submitted batch.
type Job struct {
	ID          string      `json:"id"`
	Status      JobStatus   `json:"status"`
	BatchName   string      `json:"batch_name,omitempty"`
	SubmittedAt time.Time   `json:"submitted_at"`
	StartedAt   *time.Time  `json:"started_at,omitempty"`
	FinishedAt  *time.Time  `json:"finished_at,omitempty"`
	Progress    JobProgress `json:"progress"`
	// Error is set when Status is JobFailed.
	Error string `json:"error,omitempty"`
	// Result is set when Status is JobDone.
	Result *scenario.BatchResult `json:"result,omitempty"`
}

// Server is the HTTP job service: an in-memory job store, a bounded number
// of concurrent batch runners, and one shared assembly cache that stays
// warm across jobs. Every job runs under its own cancellable context so
// clients can abort queued or running work with DELETE /v1/jobs/{id}.
// Finished jobs beyond the retention cap are evicted oldest-first (queued
// and running jobs are never evicted), so a long-running server does not
// accumulate result payloads without bound.
type Server struct {
	cache      *scenario.AssemblyCache
	coord      *fleet.Coordinator
	sem        chan struct{}
	maxBody    int64
	maxHistory int

	// FleetBatches, when set before serving, routes the sharded scenarios
	// of batch jobs through the fleet coordinator instead of running them
	// locally — the job then progresses only while etworkers are connected.
	FleetBatches bool

	mu      sync.Mutex
	jobs    map[string]*Job
	cancels map[string]context.CancelFunc // pending/running jobs only
	order   []string                      // job IDs in submission order
	seq     int

	mux *http.ServeMux
}

// DefaultMaxHistory is the default finished-job retention cap.
const DefaultMaxHistory = 128

// NewServer returns a server allowing maxConcurrent batch jobs to run in
// parallel (minimum 1), retaining at most DefaultMaxHistory finished jobs.
func NewServer(maxConcurrent int) *Server {
	return NewServerWithHistory(maxConcurrent, DefaultMaxHistory)
}

// NewServerWithHistory is NewServer with an explicit finished-job retention
// cap (minimum 1).
func NewServerWithHistory(maxConcurrent, maxHistory int) *Server {
	return NewServerWithOptions(maxConcurrent, maxHistory, fleet.DefaultLeaseTTL)
}

// NewServerWithOptions is the full constructor: concurrency cap, retention
// cap and the fleet shard-lease TTL (how long an etworker may go silent
// before its shard is re-leased).
func NewServerWithOptions(maxConcurrent, maxHistory int, leaseTTL time.Duration) *Server {
	if maxConcurrent < 1 {
		maxConcurrent = 1
	}
	if maxHistory < 1 {
		maxHistory = 1
	}
	cache := scenario.NewCache()
	s := &Server{
		cache:      cache,
		coord:      fleet.NewCoordinator(cache, leaseTTL),
		sem:        make(chan struct{}, maxConcurrent),
		maxBody:    4 << 20,
		maxHistory: maxHistory,
		jobs:       make(map[string]*Job),
		cancels:    make(map[string]context.CancelFunc),
		mux:        http.NewServeMux(),
	}
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs", s.handleList)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleGet)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	s.mux.HandleFunc("GET /v1/scenarios/presets", s.handlePresets)
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	// The fleet coordinator: etworkers lease shards of sharded scenarios
	// from these endpoints; clients submit sharded campaign jobs to
	// POST /v1/fleet/jobs and read shard progress from GET /v1/jobs/{id}
	// (which falls through to fleet jobs) or GET /v1/fleet/jobs/{id}.
	s.coord.Register(s.mux, "/v1/fleet")
	return s
}

// Coordinator exposes the fleet coordinator (batch jobs whose sharded
// scenarios should run on the fleet plug it into their engine).
func (s *Server) Coordinator() *fleet.Coordinator { return s.coord }

// Handler returns the HTTP handler (also used by httptest).
func (s *Server) Handler() http.Handler { return s.mux }

// writeJSON renders v with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// apiError is the uniform error body.
type apiError struct {
	Error string `json:"error"`
}

// handleSubmit accepts a scenario.Batch as JSON, enqueues it and returns
// 202 with the job description.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, s.maxBody+1))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{err.Error()})
		return
	}
	if int64(len(body)) > s.maxBody {
		writeJSON(w, http.StatusRequestEntityTooLarge, apiError{"scenario file exceeds the size limit"})
		return
	}
	batch, err := scenario.ParseBatch(body)
	if err != nil {
		writeJSON(w, http.StatusUnprocessableEntity, apiError{err.Error()})
		return
	}

	s.mu.Lock()
	s.seq++
	job := &Job{
		ID:          fmt.Sprintf("job-%06d", s.seq),
		Status:      JobQueued,
		BatchName:   batch.Name,
		SubmittedAt: time.Now().UTC(),
		Progress:    JobProgress{ScenariosTotal: len(batch.Scenarios)},
	}
	ctx, cancel := context.WithCancel(context.Background())
	s.jobs[job.ID] = job
	s.cancels[job.ID] = cancel
	s.order = append(s.order, job.ID)
	s.evictLocked()
	s.mu.Unlock()

	go s.runJob(ctx, job.ID, batch)

	w.Header().Set("Location", "/v1/jobs/"+job.ID)
	writeJSON(w, http.StatusAccepted, s.snapshot(job.ID))
}

// runJob executes one batch under the runner-slot semaphore, streaming
// scenario completions into the job's progress counters. The job's context
// cancels the whole pipeline: a queued job is abandoned before acquiring a
// runner slot, a running one aborts mid-batch (streaming scenarios stop
// mid-ensemble).
func (s *Server) runJob(ctx context.Context, id string, batch *scenario.Batch) {
	defer s.release(id)

	select {
	case s.sem <- struct{}{}:
	case <-ctx.Done():
		s.finish(id, func(j *Job) {
			j.Status = JobCanceled
			j.Error = "canceled before start"
		})
		return
	}
	defer func() { <-s.sem }()

	now := time.Now().UTC()
	s.update(id, func(j *Job) {
		j.Status = JobRunning
		j.StartedAt = &now
	})

	eng := scenario.NewEngineWithCache(s.cache)
	if s.FleetBatches {
		eng.Sharder = s.coord
	}
	eng.OnEvent = func(ev scenario.Event) {
		switch ev.Phase {
		case scenario.PhaseDone, scenario.PhaseFailed:
			s.update(id, func(j *Job) {
				j.Progress.ScenariosDone++
				if ev.Phase == scenario.PhaseFailed {
					j.Progress.ScenariosFailed++
				}
			})
		}
	}
	res, err := eng.Run(ctx, batch)
	s.finish(id, func(j *Job) {
		switch {
		case ctx.Err() != nil:
			j.Status = JobCanceled
			j.Error = "canceled by client"
			j.Result = res // partial results when the final scenario absorbed the cancel
		case err != nil:
			j.Status = JobFailed
			j.Error = err.Error()
		default:
			j.Status = JobDone
			j.Result = res
		}
	})
}

// finish stamps the completion time and applies the terminal transition.
func (s *Server) finish(id string, f func(*Job)) {
	done := time.Now().UTC()
	s.update(id, func(j *Job) {
		j.FinishedAt = &done
		f(j)
	})
}

// release drops the job's cancel handle once the runner goroutine exits.
func (s *Server) release(id string) {
	s.mu.Lock()
	cancel := s.cancels[id]
	delete(s.cancels, id)
	s.mu.Unlock()
	if cancel != nil {
		cancel()
	}
}

// handleCancel aborts a queued or running job. Fleet job IDs fall through
// to the coordinator, mirroring handleGet.
func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	j, ok := s.jobs[id]
	var cancel context.CancelFunc
	var done bool
	if ok {
		done = finished(j.Status)
		cancel = s.cancels[id]
	}
	s.mu.Unlock()
	if !ok {
		if _, isFleet := s.coord.Job(id); isFleet {
			if err := s.coord.Cancel(id); err != nil {
				writeJSON(w, http.StatusConflict, apiError{err.Error()})
				return
			}
			fv, _ := s.coord.Job(id)
			writeJSON(w, http.StatusAccepted, fv)
			return
		}
		writeJSON(w, http.StatusNotFound, apiError{"no such job"})
		return
	}
	if done {
		writeJSON(w, http.StatusConflict, apiError{"job already finished"})
		return
	}
	if cancel != nil {
		cancel()
	}
	writeJSON(w, http.StatusAccepted, s.snapshot(id))
}

// evictLocked drops the oldest finished jobs until at most maxHistory
// remain. Queued and running jobs are kept regardless, so the store can
// transiently exceed the cap while work is in flight. Caller holds s.mu.
func (s *Server) evictLocked() {
	if len(s.order) <= s.maxHistory {
		return
	}
	kept := s.order[:0]
	excess := len(s.order) - s.maxHistory
	for _, id := range s.order {
		j := s.jobs[id]
		if excess > 0 && finished(j.Status) {
			delete(s.jobs, id)
			excess--
			continue
		}
		kept = append(kept, id)
	}
	s.order = kept
}

// update mutates a job under the store lock.
func (s *Server) update(id string, f func(*Job)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if j, ok := s.jobs[id]; ok {
		f(j)
	}
}

// snapshot returns a deep-enough copy of a job for rendering without racing
// the runner goroutine. The result pointer is shared but immutable once set.
func (s *Server) snapshot(id string) *Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil
	}
	cp := *j
	return &cp
}

// handleGet returns one job by ID. Fleet job IDs ("fleet-…") fall through
// to the coordinator, so shard progress of a distributed campaign is
// readable from the same endpoint as batch jobs.
func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	j := s.snapshot(id)
	if j == nil {
		if fv, ok := s.coord.Job(id); ok {
			writeJSON(w, http.StatusOK, fv)
			return
		}
		writeJSON(w, http.StatusNotFound, apiError{"no such job"})
		return
	}
	writeJSON(w, http.StatusOK, j)
}

// jobList is the body of GET /v1/jobs.
type jobList struct {
	Jobs []*Job `json:"jobs"`
}

// handleList returns all jobs in submission order, without embedded results
// (fetch an individual job for its manifest).
func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	out := jobList{Jobs: make([]*Job, 0, len(s.order))}
	for _, id := range s.order {
		cp := *s.jobs[id]
		cp.Result = nil
		out.Jobs = append(out.Jobs, &cp)
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, out)
}

// handlePresets serves the bundled scenario suite so clients can fetch,
// edit and resubmit it.
func (s *Server) handlePresets(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, scenario.Presets())
}

// health is the body of GET /healthz.
type health struct {
	Status       string `json:"status"`
	Jobs         int    `json:"jobs"`
	FleetJobs    int    `json:"fleet_jobs"`
	CacheEntries int    `json:"cache_entries"`
	CacheHits    int64  `json:"cache_hits"`
	CacheMisses  int64  `json:"cache_misses"`
}

// handleHealth reports liveness plus cache statistics.
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	n := len(s.jobs)
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, health{
		Status: "ok", Jobs: n,
		FleetJobs:    len(s.coord.Jobs()),
		CacheEntries: s.cache.Len(),
		CacheHits:    s.cache.Hits(),
		CacheMisses:  s.cache.Misses(),
	})
}
