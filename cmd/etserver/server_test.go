package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"etherm/internal/config"
	"etherm/internal/fleet"
	"etherm/internal/scenario"
)

// postBatch submits a batch and returns the decoded job.
func postBatch(t *testing.T, ts *httptest.Server, b *scenario.Batch) Job {
	t.Helper()
	body, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d, want 202", resp.StatusCode)
	}
	if loc := resp.Header.Get("Location"); !strings.HasPrefix(loc, "/v1/jobs/job-") {
		t.Errorf("Location header %q", loc)
	}
	var job Job
	if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
		t.Fatal(err)
	}
	return job
}

// getJob fetches one job by ID.
func getJob(t *testing.T, ts *httptest.Server, id string) (Job, int) {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var job Job
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
			t.Fatal(err)
		}
	}
	return job, resp.StatusCode
}

// waitDone polls until the job reaches a terminal state.
func waitDone(t *testing.T, ts *httptest.Server, id string, timeout time.Duration) Job {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		job, code := getJob(t, ts, id)
		if code != http.StatusOK {
			t.Fatalf("job %s: status code %d", id, code)
		}
		if finished(job.Status) {
			return job
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish within %v", id, timeout)
	return Job{}
}

// tinyBatch is a fast two-scenario batch (shared coarse mesh, short
// horizon) for API round-trip tests.
func tinyBatch() *scenario.Batch {
	sim := config.SimConfig{EndTimeS: 10, NumSteps: 3, Coupling: "weak", Nonlinear: "newton"}
	return &scenario.Batch{
		Name: "api-test",
		Scenarios: []scenario.Scenario{
			{Name: "pair", Chip: scenario.ChipSpec{HMaxM: 0.8e-3, ActivePairs: []int{0}}, Sim: sim},
			{Name: "full", Chip: scenario.ChipSpec{HMaxM: 0.8e-3}, Sim: sim},
		},
	}
}

func TestJobRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("runs coupled-field simulations")
	}
	ts := httptest.NewServer(NewServer(1).Handler())
	defer ts.Close()

	job := postBatch(t, ts, tinyBatch())
	if job.ID == "" || (job.Status != JobQueued && job.Status != JobRunning) {
		t.Fatalf("unexpected submit response: %+v", job)
	}
	if job.Progress.ScenariosTotal != 2 {
		t.Errorf("progress total %d, want 2", job.Progress.ScenariosTotal)
	}

	done := waitDone(t, ts, job.ID, 3*time.Minute)
	if done.Status != JobDone {
		t.Fatalf("job finished as %s (%s)", done.Status, done.Error)
	}
	if done.Result == nil || len(done.Result.Scenarios) != 2 {
		t.Fatalf("missing results: %+v", done.Result)
	}
	if done.Result.FailedCount != 0 {
		t.Fatalf("scenarios failed: %+v", done.Result.Failed())
	}
	if done.Progress.ScenariosDone != 2 {
		t.Errorf("progress done %d, want 2", done.Progress.ScenariosDone)
	}
	for _, s := range done.Result.Scenarios {
		if s.TEndMaxK < 300 || s.TEndMaxK > 700 {
			t.Errorf("scenario %s end temperature %g K implausible", s.Name, s.TEndMaxK)
		}
	}
	if done.StartedAt == nil || done.FinishedAt == nil {
		t.Error("timestamps not recorded")
	}

	// The two scenarios share one geometry: the second must hit the cache.
	if !done.Result.Scenarios[1].CacheHit && !done.Result.Scenarios[0].CacheHit {
		t.Error("no scenario hit the assembly cache")
	}

	// A second identical job on the warm server caches everything.
	job2 := postBatch(t, ts, tinyBatch())
	done2 := waitDone(t, ts, job2.ID, 3*time.Minute)
	if done2.Status != JobDone {
		t.Fatalf("second job finished as %s (%s)", done2.Status, done2.Error)
	}
	for _, s := range done2.Result.Scenarios {
		if !s.CacheHit {
			t.Errorf("scenario %s missed the warm cross-job cache", s.Name)
		}
	}

	// Listing returns both jobs in order, without result payloads.
	resp, err := http.Get(ts.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var list struct {
		Jobs []Job `json:"jobs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if len(list.Jobs) != 2 || list.Jobs[0].ID != job.ID || list.Jobs[1].ID != job2.ID {
		t.Errorf("job list wrong: %+v", list.Jobs)
	}
	for _, j := range list.Jobs {
		if j.Result != nil {
			t.Error("job list embeds result payloads")
		}
	}
}

func TestSubmitValidation(t *testing.T) {
	ts := httptest.NewServer(NewServer(1).Handler())
	defer ts.Close()

	for name, body := range map[string]string{
		"not json":      "}{",
		"empty batch":   `{"scenarios": []}`,
		"unknown field": `{"scenarios": [{"name": "x", "chipp": 1}]}`,
		"duplicate":     `{"scenarios": [{"name": "x"}, {"name": "x"}]}`,
	} {
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusUnprocessableEntity {
			t.Errorf("%s: status %d, want 422", name, resp.StatusCode)
		}
	}
}

func TestFinishedJobEviction(t *testing.T) {
	if testing.Short() {
		t.Skip("runs coupled-field simulations")
	}
	ts := httptest.NewServer(NewServerWithHistory(1, 2).Handler())
	defer ts.Close()

	small := &scenario.Batch{Scenarios: []scenario.Scenario{{
		Name: "pair",
		Chip: scenario.ChipSpec{HMaxM: 0.8e-3, ActivePairs: []int{0}},
		Sim:  config.SimConfig{EndTimeS: 10, NumSteps: 3, Coupling: "weak", Nonlinear: "newton"},
	}}}
	var ids []string
	for i := 0; i < 4; i++ {
		job := postBatch(t, ts, small)
		waitDone(t, ts, job.ID, time.Minute)
		ids = append(ids, job.ID)
	}
	// Retention cap 2: the two oldest finished jobs are gone, newest remain.
	if _, code := getJob(t, ts, ids[0]); code != http.StatusNotFound {
		t.Errorf("oldest job survived eviction (status %d)", code)
	}
	if _, code := getJob(t, ts, ids[3]); code != http.StatusOK {
		t.Errorf("newest job evicted (status %d)", code)
	}
	resp, err := http.Get(ts.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var list struct {
		Jobs []Job `json:"jobs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if len(list.Jobs) > 2 {
		t.Errorf("job list holds %d entries, retention cap is 2", len(list.Jobs))
	}
}

// cancelJob issues DELETE /v1/jobs/{id} and returns the status code.
func cancelJob(t *testing.T, ts *httptest.Server, id string) int {
	t.Helper()
	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+id, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp.StatusCode
}

func TestJobCancellation(t *testing.T) {
	if testing.Short() {
		t.Skip("runs coupled-field simulations")
	}
	ts := httptest.NewServer(NewServer(1).Handler())
	defer ts.Close()

	// A long streaming Monte Carlo job: hundreds of samples, so the cancel
	// lands mid-ensemble.
	big := &scenario.Batch{
		Name: "cancel-me",
		Scenarios: []scenario.Scenario{{
			Name: "mc-long",
			Chip: scenario.ChipSpec{HMaxM: 0.8e-3, ActivePairs: []int{0}},
			Sim:  config.SimConfig{EndTimeS: 10, NumSteps: 3, Coupling: "weak", Nonlinear: "newton"},
			UQ:   scenario.UQSpec{Method: "monte-carlo", Samples: 2000, Seed: 1, Stream: true},
		}},
	}
	job := postBatch(t, ts, big)

	// Wait until it is actually running before canceling, so the test
	// exercises the mid-run path (the queued path is covered by timing
	// races either way).
	deadline := time.Now().Add(time.Minute)
	for time.Now().Before(deadline) {
		j, _ := getJob(t, ts, job.ID)
		if j.Status == JobRunning {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if code := cancelJob(t, ts, job.ID); code != http.StatusAccepted {
		t.Fatalf("cancel status %d, want 202", code)
	}
	done := waitDone(t, ts, job.ID, time.Minute)
	if done.Status != JobCanceled {
		t.Fatalf("job finished as %s (%s), want canceled", done.Status, done.Error)
	}
	if done.FinishedAt == nil {
		t.Error("canceled job missing finish timestamp")
	}

	// Canceling a finished job conflicts; canceling an unknown one 404s.
	if code := cancelJob(t, ts, job.ID); code != http.StatusConflict {
		t.Errorf("second cancel status %d, want 409", code)
	}
	if code := cancelJob(t, ts, "job-999999"); code != http.StatusNotFound {
		t.Errorf("unknown cancel status %d, want 404", code)
	}

	// The server stays healthy and accepts new work after a cancel.
	job2 := postBatch(t, ts, tinyBatch())
	if done2 := waitDone(t, ts, job2.ID, 3*time.Minute); done2.Status != JobDone {
		t.Fatalf("post-cancel job finished as %s (%s)", done2.Status, done2.Error)
	}
}

func TestUnknownJob(t *testing.T) {
	ts := httptest.NewServer(NewServer(1).Handler())
	defer ts.Close()
	if _, code := getJob(t, ts, "job-999999"); code != http.StatusNotFound {
		t.Errorf("unknown job returned %d, want 404", code)
	}
}

func TestPresetsEndpoint(t *testing.T) {
	ts := httptest.NewServer(NewServer(1).Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/v1/scenarios/presets")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("presets status %d", resp.StatusCode)
	}
	var b scenario.Batch
	if err := json.NewDecoder(resp.Body).Decode(&b); err != nil {
		t.Fatal(err)
	}
	if len(b.Scenarios) < 8 {
		t.Errorf("served presets cover %d scenarios, want ≥ 8", len(b.Scenarios))
	}
	// The served suite must itself be a valid submission.
	if err := b.Validate(); err != nil {
		t.Errorf("served presets invalid: %v", err)
	}
}

func TestHealthz(t *testing.T) {
	ts := httptest.NewServer(NewServer(1).Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
	var h health
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" {
		t.Errorf("health status %q", h.Status)
	}
}

// TestFleetJobOverServerAPI drives a sharded campaign end to end through
// the server: a client submits the scenario to POST /v1/fleet/jobs, an
// etworker pull loop serves the shards over the same mux, and shard
// progress plus the final result are readable from GET /v1/jobs/{id} (the
// unified job endpoint falls through to fleet jobs).
func TestFleetJobOverServerAPI(t *testing.T) {
	if testing.Short() {
		t.Skip("runs coupled-field ensembles")
	}
	ts := httptest.NewServer(NewServerWithOptions(1, 8, 5*time.Second).Handler())
	defer ts.Close()

	s := scenario.Scenario{
		Name: "mc-fleet",
		Chip: scenario.ChipSpec{HMaxM: 0.8e-3},
		Sim:  config.SimConfig{EndTimeS: 10, NumSteps: 3, Coupling: "weak", Nonlinear: "newton"},
		UQ: scenario.UQSpec{
			Method: scenario.MethodMonteCarlo, Samples: 4, Seed: 9,
			Shards: 2, ShardBlock: 2,
		},
	}
	body, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/fleet/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var view fleet.JobView
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("fleet submit status %d", resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if view.Status != fleet.JobRunning || len(view.Shards) != 2 {
		t.Fatalf("unexpected fleet job view: %+v", view)
	}

	// Shard progress is visible on the unified job endpoint before any
	// worker joins.
	progress := getFleetJob(t, ts, view.ID)
	if progress.ShardsDone != 0 || len(progress.Shards) != 2 {
		t.Fatalf("initial shard progress: %+v", progress)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	w := &fleet.Worker{BaseURL: ts.URL + "/v1/fleet", ID: "api-test", SampleWorkers: 2, Poll: 20 * time.Millisecond}
	go func() { _ = w.Run(ctx) }()

	deadline := time.Now().Add(3 * time.Minute)
	var final fleet.JobView
	for {
		final = getFleetJob(t, ts, view.ID)
		if final.Status != fleet.JobRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("fleet job stuck: %+v", final)
		}
		time.Sleep(50 * time.Millisecond)
	}
	if final.Status != fleet.JobDone || final.Result == nil {
		t.Fatalf("fleet job finished as %s (%s)", final.Status, final.Error)
	}
	if final.ShardsDone != 2 || !final.Result.OK || final.Result.Shards != 2 {
		t.Errorf("fleet result accounting: done=%d result=%+v", final.ShardsDone, final.Result)
	}
	if final.Result.Samples+final.Result.Failures != 4 {
		t.Errorf("fleet campaign consumed %d samples, want 4", final.Result.Samples+final.Result.Failures)
	}
}

// getFleetJob reads a fleet job view from the unified GET /v1/jobs/{id}.
func getFleetJob(t *testing.T, ts *httptest.Server, id string) fleet.JobView {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fleet job %s: status %d", id, resp.StatusCode)
	}
	var v fleet.JobView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}
