// Command etserver serves the batch scenario engine over HTTP: clients
// submit declarative scenario batches as asynchronous jobs, stream their
// progress over server-sent events, and fetch the structured results
// manifest. One assembly cache is shared across all jobs, so repeated
// studies on the same package geometry skip mesh construction and FIT
// assembly entirely.
//
// The wire contract is the versioned API of package api (negotiated via
// the ET-API-Version header): request/response bodies are api types,
// every error — including routing errors (404/405) — is an RFC-9457
// problem+json envelope, and package client is the matching Go SDK.
//
// API (v1):
//
//	POST   /v1/jobs               submit an api.Batch (JSON) → 202 + api.Job
//	GET    /v1/jobs               list jobs, newest first, paginated
//	                              (?limit=, ?cursor=; no result payloads)
//	GET    /v1/jobs/{id}          job status, progress and, when done, results
//	                              (fleet job IDs show per-shard progress)
//	GET    /v1/jobs/{id}/events   SSE progress stream (api.JobEvent frames):
//	                              scenario completions, sample counts, shard
//	                              progress; closes after the terminal status
//	DELETE /v1/jobs/{id}          cancel a queued or running job → "canceled"
//	GET    /v1/scenarios/presets  the bundled paper-grounded scenario suite
//	GET    /healthz               liveness, queue depth, watcher and cache stats
//	GET    /metrics               Prometheus text exposition (jobs by state,
//	                              queue depth, SSE watchers, lease expiries,
//	                              WAL fsync latency, …)
//
// Fleet coordinator (sharded campaigns served by etworker processes):
//
//	POST /v1/fleet/jobs           submit one sharded scenario → 202 + shard plan
//	GET  /v1/fleet/jobs[/{id}]    fleet jobs with per-shard lease state
//	POST /v1/fleet/lease          etworker: request a shard assignment
//	POST /v1/fleet/heartbeat      etworker: keep a lease alive
//	POST /v1/fleet/result         etworker: post a completed shard
//	POST /v1/fleet/fail           etworker: report a failed shard attempt
//
// Usage:
//
//	etserver [-addr :8080] [-max-jobs 2] [-history 128]
//	         [-lease-ttl 30s] [-fleet-batches]
//	         [-data DIR] [-max-queued 0]
//
// With -data DIR the server persists every job, lease and fleet shard
// transition to an fsync'd write-ahead log under DIR and recovers the
// full control-plane state on restart — including after kill -9:
// finished jobs keep their results, interrupted jobs are requeued, and
// fleet campaigns resume from their completed shards. -max-queued bounds
// the submission queue; beyond it, POST /v1/jobs returns 429 with a
// Retry-After hint (the SDK retries automatically).
//
// Quickstart against a running server:
//
//	curl -s localhost:8080/v1/scenarios/presets > batch.json
//	curl -s -X POST --data-binary @batch.json localhost:8080/v1/jobs
//	curl -s localhost:8080/v1/jobs/job-000001
//	curl -sN localhost:8080/v1/jobs/job-000001/events   # live progress (SSE)
//	curl -s -X DELETE localhost:8080/v1/jobs/job-000001 # cancel mid-run
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"time"

	"etherm/internal/fleet"
	"etherm/internal/server"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		maxJobs      = flag.Int("max-jobs", 2, "batch jobs evaluated concurrently")
		history      = flag.Int("history", server.DefaultMaxHistory, "finished jobs retained before oldest-first eviction")
		leaseTTL     = flag.Duration("lease-ttl", fleet.DefaultLeaseTTL, "shard lease TTL before a silent etworker is presumed dead")
		fleetBatches = flag.Bool("fleet-batches", false, "run sharded scenarios of batch jobs on the etworker fleet instead of locally")
		dataDir      = flag.String("data", "", "persist jobs, leases and shard results under this directory (empty = in-memory)")
		maxQueued    = flag.Int("max-queued", 0, "reject submissions (429) beyond this many queued jobs (0 = unbounded)")
	)
	flag.Parse()

	srv, err := server.New(server.Config{
		MaxConcurrent: *maxJobs,
		MaxHistory:    *history,
		LeaseTTL:      *leaseTTL,
		MaxQueued:     *maxQueued,
		DataDir:       *dataDir,
		FleetBatches:  *fleetBatches,
		Logf:          log.Printf,
	})
	if err != nil {
		log.Fatalf("etserver: %v", err)
	}
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	durability := "in-memory"
	if *dataDir != "" {
		durability = "persistent data in " + *dataDir
	}
	fmt.Printf("etserver: listening on %s (max %d concurrent jobs, %s)\n", *addr, *maxJobs, durability)
	log.Fatal(httpSrv.ListenAndServe())
}
