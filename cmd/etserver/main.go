// Command etserver serves the batch scenario engine over HTTP: clients
// submit declarative scenario batches as asynchronous jobs, stream their
// progress over server-sent events, and fetch the structured results
// manifest. One assembly cache is shared across all jobs, so repeated
// studies on the same package geometry skip mesh construction and FIT
// assembly entirely.
//
// The wire contract is the versioned API of package api (negotiated via
// the ET-API-Version header): request/response bodies are api types,
// every error — including routing errors (404/405) — is an RFC-9457
// problem+json envelope, and package client is the matching Go SDK.
//
// API (v1):
//
//	POST   /v1/jobs               submit an api.Batch (JSON) → 202 + api.Job
//	GET    /v1/jobs               list jobs, newest first, paginated
//	                              (?limit=, ?cursor=; no result payloads)
//	GET    /v1/jobs/{id}          job status, progress and, when done, results
//	                              (fleet job IDs show per-shard progress)
//	GET    /v1/jobs/{id}/events   SSE progress stream (api.JobEvent frames):
//	                              scenario completions, sample counts, shard
//	                              progress; closes after the terminal status
//	DELETE /v1/jobs/{id}          cancel a queued or running job → "canceled"
//	GET    /v1/scenarios/presets  the bundled paper-grounded scenario suite
//	GET    /healthz               liveness + assembly-cache statistics
//
// Fleet coordinator (sharded campaigns served by etworker processes):
//
//	POST /v1/fleet/jobs           submit one sharded scenario → 202 + shard plan
//	GET  /v1/fleet/jobs[/{id}]    fleet jobs with per-shard lease state
//	POST /v1/fleet/lease          etworker: request a shard assignment
//	POST /v1/fleet/heartbeat      etworker: keep a lease alive
//	POST /v1/fleet/result         etworker: post a completed shard
//	POST /v1/fleet/fail           etworker: report a failed shard attempt
//
// Usage:
//
//	etserver [-addr :8080] [-max-jobs 2] [-history 128]
//	         [-lease-ttl 30s] [-fleet-batches]
//
// Quickstart against a running server:
//
//	curl -s localhost:8080/v1/scenarios/presets > batch.json
//	curl -s -X POST --data-binary @batch.json localhost:8080/v1/jobs
//	curl -s localhost:8080/v1/jobs/job-000001
//	curl -sN localhost:8080/v1/jobs/job-000001/events   # live progress (SSE)
//	curl -s -X DELETE localhost:8080/v1/jobs/job-000001 # cancel mid-run
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"time"

	"etherm/internal/fleet"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		maxJobs      = flag.Int("max-jobs", 2, "batch jobs evaluated concurrently")
		history      = flag.Int("history", DefaultMaxHistory, "finished jobs retained before oldest-first eviction")
		leaseTTL     = flag.Duration("lease-ttl", fleet.DefaultLeaseTTL, "shard lease TTL before a silent etworker is presumed dead")
		fleetBatches = flag.Bool("fleet-batches", false, "run sharded scenarios of batch jobs on the etworker fleet instead of locally")
	)
	flag.Parse()

	srv := NewServerWithOptions(*maxJobs, *history, *leaseTTL)
	srv.FleetBatches = *fleetBatches
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	fmt.Printf("etserver: listening on %s (max %d concurrent jobs)\n", *addr, *maxJobs)
	log.Fatal(httpSrv.ListenAndServe())
}
