// Command etserver serves the batch scenario engine over HTTP: clients
// submit declarative scenario batches as asynchronous jobs, stream their
// progress over server-sent events, and fetch the structured results
// manifest. One assembly cache is shared across all jobs, so repeated
// studies on the same package geometry skip mesh construction and FIT
// assembly entirely.
//
// The wire contract is the versioned API of package api (negotiated via
// the ET-API-Version header): request/response bodies are api types,
// every error — including routing errors (404/405) — is an RFC-9457
// problem+json envelope, and package client is the matching Go SDK.
//
// API (v1):
//
//	POST   /v1/jobs               submit an api.Batch (JSON) → 202 + api.Job
//	GET    /v1/jobs               list jobs, newest first, paginated
//	                              (?limit=, ?cursor=; no result payloads)
//	GET    /v1/jobs/{id}          job status, progress and, when done, results
//	                              (fleet job IDs show per-shard progress)
//	GET    /v1/jobs/{id}/events   SSE progress stream (api.JobEvent frames):
//	                              scenario completions, sample counts, shard
//	                              progress; closes after the terminal status
//	DELETE /v1/jobs/{id}          cancel a queued or running job → "canceled"
//	GET    /v1/scenarios/presets  the bundled paper-grounded scenario suite
//	GET    /healthz               liveness, queue depth, watcher and cache stats
//	GET    /metrics               Prometheus text exposition (jobs by state,
//	                              queue depth, SSE watchers, lease expiries,
//	                              WAL fsync latency, …)
//
// Fleet coordinator (sharded campaigns served by etworker processes):
//
//	POST /v1/fleet/jobs           submit one sharded scenario → 202 + shard plan
//	GET  /v1/fleet/jobs[/{id}]    fleet jobs with per-shard lease state
//	POST /v1/fleet/lease          etworker: request a shard assignment
//	POST /v1/fleet/heartbeat      etworker: keep a lease alive
//	POST /v1/fleet/result         etworker: post a completed shard
//	POST /v1/fleet/fail           etworker: report a failed shard attempt
//
// Usage:
//
//	etserver [-addr :8080] [-max-jobs 2] [-history 128]
//	         [-lease-ttl 30s] [-fleet-batches]
//	         [-data DIR] [-max-queued 0] [-drain-timeout 30s]
//	         [-pprof 127.0.0.1:6060]
//
// -pprof serves net/http/pprof on a dedicated listener and mux, kept
// separate from the API address so profiling endpoints are never exposed
// to API clients; point it at loopback and profile a live server with
// `go tool pprof http://127.0.0.1:6060/debug/pprof/profile`.
//
// With -data DIR the server persists every job, lease and fleet shard
// transition to an fsync'd write-ahead log under DIR and recovers the
// full control-plane state on restart — including after kill -9:
// finished jobs keep their results, interrupted jobs are requeued, and
// fleet campaigns resume from their completed shards. -max-queued bounds
// the submission queue; beyond it, POST /v1/jobs returns 429 with a
// Retry-After hint (the SDK retries automatically).
//
// SIGTERM or SIGINT triggers a graceful drain instead of an abrupt exit:
// new submissions are rejected with 503 + Retry-After (the SDK retries
// them, ideally against another replica), queued and running jobs get up
// to -drain-timeout to finish (after which they are canceled with their
// terminal records persisted), every SSE watcher receives an explicit
// "shutdown" event before its stream closes, the store flushes, and the
// process exits 0. A second signal during the drain forces immediate
// exit. Chaos fault injection (package faultinject) is enabled by the
// ETHERM_CHAOS environment variable, e.g.
// ETHERM_CHAOS="seed=42,store-fail=0.05" — off by default.
//
// Quickstart against a running server:
//
//	curl -s localhost:8080/v1/scenarios/presets > batch.json
//	curl -s -X POST --data-binary @batch.json localhost:8080/v1/jobs
//	curl -s localhost:8080/v1/jobs/job-000001
//	curl -sN localhost:8080/v1/jobs/job-000001/events   # live progress (SSE)
//	curl -s -X DELETE localhost:8080/v1/jobs/job-000001 # cancel mid-run
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"etherm/internal/faultinject"
	"etherm/internal/fleet"
	"etherm/internal/jobstore"
	"etherm/internal/server"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		maxJobs      = flag.Int("max-jobs", 2, "batch jobs evaluated concurrently")
		history      = flag.Int("history", server.DefaultMaxHistory, "finished jobs retained before oldest-first eviction")
		leaseTTL     = flag.Duration("lease-ttl", fleet.DefaultLeaseTTL, "shard lease TTL before a silent etworker is presumed dead")
		fleetBatches = flag.Bool("fleet-batches", false, "run sharded scenarios of batch jobs on the etworker fleet instead of locally")
		dataDir      = flag.String("data", "", "persist jobs, leases and shard results under this directory (empty = in-memory)")
		maxQueued    = flag.Int("max-queued", 0, "reject submissions (429) beyond this many queued jobs (0 = unbounded)")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "on SIGTERM/SIGINT: how long running jobs may finish before being canceled")
		pprofAddr    = flag.String("pprof", "", "serve net/http/pprof on this address (empty = disabled); keep it loopback-only")
	)
	flag.Parse()

	// The profiler gets its own listener and mux: registering pprof on the
	// API mux would leak goroutine dumps and CPU profiles to any API client,
	// and the blank net/http/pprof import only targets http.DefaultServeMux,
	// which the API server deliberately does not use.
	if *pprofAddr != "" {
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			psrv := &http.Server{Addr: *pprofAddr, Handler: mux, ReadHeaderTimeout: 10 * time.Second}
			log.Printf("etserver: pprof listening on %s", *pprofAddr)
			if err := psrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Printf("etserver: pprof listener: %v", err)
			}
		}()
	}

	// Chaos fault injection, off unless ETHERM_CHAOS is set (replayable
	// from the seed it names; see internal/faultinject).
	inj, err := faultinject.FromEnv(os.Getenv)
	if err != nil {
		log.Fatalf("etserver: %v", err)
	}

	cfg := server.Config{
		MaxConcurrent: *maxJobs,
		MaxHistory:    *history,
		LeaseTTL:      *leaseTTL,
		MaxQueued:     *maxQueued,
		DataDir:       *dataDir,
		FleetBatches:  *fleetBatches,
		Logf:          log.Printf,
	}
	if inj != nil {
		// Interpose the fault-injecting store wrapper between the server
		// and whichever store the flags select.
		var base jobstore.Store = jobstore.NewMem()
		if *dataDir != "" {
			fs, err := jobstore.Open(*dataDir, jobstore.Options{Logf: log.Printf})
			if err != nil {
				log.Fatalf("etserver: %v", err)
			}
			base = fs
		}
		cfg.DataDir = ""
		cfg.Store = inj.WrapStore(base)
		log.Printf("etserver: CHAOS fault injection active (%s)", inj.Spec())
	}

	srv, err := server.New(cfg)
	if err != nil {
		log.Fatalf("etserver: %v", err)
	}
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	durability := "in-memory"
	if *dataDir != "" {
		durability = "persistent data in " + *dataDir
	}
	fmt.Printf("etserver: listening on %s (max %d concurrent jobs, %s)\n", *addr, *maxJobs, durability)

	// Serve until a shutdown signal, then drain instead of dying mid-job:
	// stop accepting submissions, let runners finish (bounded by
	// -drain-timeout), end every SSE stream with an explicit shutdown
	// event, close the listener, flush the store, exit clean.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()

	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("etserver: %v", err)
		}
	case <-ctx.Done():
		stop() // a second signal now kills the process the default way
		log.Printf("etserver: shutdown signal; draining (timeout %s)", *drainTimeout)
		dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		if err := srv.Drain(dctx); err != nil {
			log.Printf("etserver: %v", err)
		}
		if err := httpSrv.Shutdown(dctx); err != nil {
			log.Printf("etserver: listener shutdown: %v", err)
		}
		cancel()
	}
	if err := srv.Close(); err != nil {
		log.Fatalf("etserver: store close: %v", err)
	}
	log.Printf("etserver: drained, exiting clean")
}
