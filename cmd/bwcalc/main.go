// Command bwcalc is the stand-alone bonding-wire calculator: for a wire
// material, diameter and length it reports resistance, thermal conductance,
// the analytic steady temperature profile under a given current, and the
// allowable current for a critical temperature — the kind of tool the
// paper's introduction references before making the case for coupled field
// simulation.
//
// Usage: bwcalc [-material copper] [-diameter 25.4e-6] [-length 1.55e-3]
//
//	[-current 0.4] [-tcrit 523] [-tend 300] [-heff 0]
package main

import (
	"flag"
	"fmt"
	"os"

	"etherm/internal/analytic"
	"etherm/internal/material"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "bwcalc:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		matName  = flag.String("material", "copper", "wire material: copper|gold|aluminum")
		diameter = flag.Float64("diameter", 25.4e-6, "wire diameter in m")
		length   = flag.Float64("length", 1.55e-3, "wire length in m")
		current  = flag.Float64("current", 0.4, "operating current in A")
		tcrit    = flag.Float64("tcrit", 523, "critical temperature in K")
		tend     = flag.Float64("tend", 300, "end (bond-point) temperature in K")
		heff     = flag.Float64("heff", 0, "lateral film coefficient W/m2/K (0 = adiabatic lateral surface)")
	)
	flag.Parse()

	var mat material.Model
	switch *matName {
	case "copper":
		mat = material.Copper()
	case "gold":
		mat = material.Gold()
	case "aluminum":
		mat = material.Aluminum()
	default:
		return fmt.Errorf("unknown material %q", *matName)
	}

	w := analytic.FinWire{
		Length: *length, Diameter: *diameter, Mat: mat,
		Current: *current, TEndA: *tend, TEndB: *tend,
		HEff: *heff, TInf: *tend,
	}
	if err := w.Validate(); err != nil {
		return err
	}

	r300 := *length / (mat.ElecCond(300) * w.Area())
	gth := mat.ThermCond(300) * w.Area() / *length
	fmt.Printf("bonding wire calculator — %s, d = %.1f um, L = %.3g mm\n",
		mat.Name(), *diameter*1e6, *length*1e3)
	fmt.Printf("  R(300 K)        = %.4g mOhm\n", r300*1e3)
	fmt.Printf("  G_th(300 K)     = %.4g mW/K\n", gth*1e3)
	fmt.Printf("  heat capacity   = %.4g uJ/K\n", mat.VolHeatCap()*w.Area()**length*1e6)

	tmax, xmax := w.MaxTemperature(*tend)
	fmt.Printf("  at I = %.3g A: peak temperature %.2f K at x = %.3g mm (midpoint %.2f K)\n",
		*current, tmax, xmax*1e3, w.MidpointTemperature(*tend))

	imax, err := w.AllowableCurrent(*tcrit)
	if err != nil {
		return err
	}
	fmt.Printf("  allowable current for T_crit = %.0f K: %.3f A\n", *tcrit, imax)

	fmt.Println("\nprofile T(x):")
	for i := 0; i <= 10; i++ {
		x := *length * float64(i) / 10
		fmt.Printf("  x = %6.3f mm  T = %8.2f K\n", x*1e3, w.Temperature(x, *tend))
	}

	fmt.Println("\ndiameter sweep (allowable current at T_crit):")
	for _, dUm := range []float64{15, 20, 25.4, 33, 50} {
		wi := w
		wi.Diameter = dUm * 1e-6
		ic, err := wi.AllowableCurrent(*tcrit)
		if err != nil {
			fmt.Printf("  d = %5.1f um: %v\n", dUm, err)
			continue
		}
		fmt.Printf("  d = %5.1f um: I_max = %.3f A\n", dUm, ic)
	}
	return nil
}
