package main

import (
	"context"
	"fmt"

	"etherm/internal/scenario"
	"etherm/internal/surrogate"
)

// runSurrogateDemo is the -surrogate mode: build a sparse-grid/PCE
// surrogate of the batch's first scenario in-process, then answer the
// questions the query API serves — moments, quantiles, failure
// probability, a what-if sweep — without a single further FEM solve, and
// show the out-of-domain guard kicking in.
func runSurrogateDemo(batch *scenario.Batch, level, order int) (int, error) {
	if len(batch.Scenarios) == 0 {
		return 1, fmt.Errorf("-surrogate needs at least one scenario")
	}
	sc := batch.Scenarios[0]
	cache := scenario.NewCache()
	fmt.Printf("etbatch: building level-%d surrogate for %q (every FEM solve happens now)…\n", level, sc.Name)

	model, err := scenario.BuildSurrogate(context.Background(), cache, sc, level, order)
	if err != nil {
		return 1, err
	}
	kHot := (model.NTimes-1)*model.NWires + model.HotWire
	fmt.Printf("surrogate %s: dim=%d order=%d, %d FEM evaluations, hot wire %d\n",
		model.ID, model.Dim, model.Order, model.Evaluations, model.HotWire)
	fmt.Printf("  mean %.2f K  std %.3f K  LOLO error indicator %.3g K\n",
		model.MeanK[kHot], model.StdK[kHot], model.LOLO[kHot])

	// The default answer plus quantiles — served from the PCE, microseconds.
	ans, err := model.Answer(surrogate.Query{Quantiles: []float64{0.05, 0.5, 0.95}})
	if err != nil {
		return 1, err
	}
	fmt.Printf("  P(T_max ≥ %.0f K) = %.3g  (err indicator ±%.3g K)\n", ans.TCritK, ans.FailProb, ans.ErrIndicatorK)
	for _, qv := range ans.Quantiles {
		fmt.Printf("  q%02.0f = %.2f K\n", qv.Q*100, qv.TK)
	}

	// A what-if sweep over the common elongation inside the trained domain.
	lo, hi := model.DeltaDomain()
	sweep, err := model.Answer(surrogate.Query{Sweep: &surrogate.Sweep{From: lo, To: hi, Steps: 5}})
	if err != nil {
		return 1, err
	}
	fmt.Printf("  what-if sweep δ ∈ [%.3f, %.3f]:\n", lo, hi)
	for _, p := range sweep.Sweep {
		fmt.Printf("    δ=%.3f → %.2f K\n", p.Delta, p.TK)
	}

	// And the guard: a δ beyond the trained germ region is refused with a
	// typed domain error (the HTTP path turns this into problem+json with
	// a FEM fallback job).
	bad := hi + 0.2
	if bad > 0.9 {
		bad = 0.9
	}
	if _, err := model.Answer(surrogate.Query{Delta: &bad}); surrogate.IsDomainError(err) {
		fmt.Printf("  δ=%.3f is outside the trained domain: %v\n", bad, err)
	}
	return 0, nil
}
