// Command etbatch runs a batch of electrothermal scenarios end to end: it
// loads a declarative JSON scenario file (or the bundled paper-grounded
// presets), evaluates every scenario concurrently through the shared
// assembly cache of internal/scenario, prints a per-scenario summary table
// with cache accounting, and writes a structured results manifest.
//
// Usage:
//
//	etbatch -bundled                     # run the bundled demo suite
//	etbatch -f scenarios.json            # run a scenario file
//	etbatch -write-presets presets.json  # export the bundled suite, then edit
//	etbatch -bundled -out manifest.json -workers 4 -sample-workers 2 -v
//	etbatch -f scenarios.json -shards 4           # sharded campaigns, locally
//	etbatch -f scenarios.json -shards 4 -fleet 2  # …across 2 etworker processes
//	etbatch -bundled -rare -v                     # P(T_max ≥ T_crit) by subset simulation
//
// The scenario file format is internal/scenario.Batch as JSON; unknown
// fields are rejected so typos fail loudly. Exit status is 0 when every
// scenario succeeded, 1 on a batch-level error and 2 when individual
// scenarios failed (the rest of the batch still ran and was reported).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"time"

	"etherm/api"
	"etherm/client"
	"etherm/internal/fleet"
	"etherm/internal/scenario"
)

func main() {
	code, err := run()
	if err != nil {
		fmt.Fprintln(os.Stderr, "etbatch:", err)
	}
	os.Exit(code)
}

func run() (int, error) {
	var (
		file          = flag.String("f", "", "JSON scenario file (see -write-presets for the format)")
		bundled       = flag.Bool("bundled", false, "run the bundled demonstration presets")
		writePresets  = flag.String("write-presets", "", "write the bundled presets to this path and exit")
		workers       = flag.Int("workers", 0, "scenario-level parallelism (0 = automatic)")
		sampleWorkers = flag.Int("sample-workers", 0, "per-scenario ensemble parallelism (0 = automatic)")
		outPath       = flag.String("out", "out/etbatch_manifest.json", "results manifest path (empty = no manifest)")
		verbose       = flag.Bool("v", false, "log per-scenario progress events")
		stream        = flag.Bool("stream", false, "force the constant-memory streaming campaign for every sampling scenario")
		shards        = flag.Int("shards", 0, "partition every budget-only sampling scenario into K self-contained shards")
		fleetWorkers  = flag.Int("fleet", 0, "local multi-process mode: run sharded scenarios through N etworker processes against an in-process coordinator")
		etworkerBin   = flag.String("etworker-bin", "", "etworker binary for -fleet (default: next to etbatch, then $PATH; falls back to in-process workers)")
		surrDemo      = flag.Bool("surrogate", false, "build a sparse-grid/PCE surrogate of the first scenario and answer queries from it (no batch run)")
		surrLevel     = flag.Int("surrogate-level", 2, "Smolyak level of the -surrogate demo")
		surrOrder     = flag.Int("surrogate-order", 0, "PCE order of the -surrogate demo (0 = level, clamped)")
		rare          = flag.Bool("rare", false, "convert every sampling scenario into a failure_probability campaign (subset simulation; see -rare-samples)")
		rareSamples   = flag.Int("rare-samples", 0, "subset-simulation per-level sample count for -rare (0 = estimator default)")
	)
	flag.Parse()

	if *writePresets != "" {
		data, err := scenario.Presets().MarshalIndent()
		if err != nil {
			return 1, err
		}
		if err := writeFile(*writePresets, data); err != nil {
			return 1, err
		}
		fmt.Printf("bundled presets written to %s\n", *writePresets)
		return 0, nil
	}

	var batch *scenario.Batch
	switch {
	case *file != "" && *bundled:
		return 1, fmt.Errorf("use either -f or -bundled, not both")
	case *file != "":
		b, err := scenario.LoadBatch(*file)
		if err != nil {
			return 1, err
		}
		batch = b
	case *bundled:
		batch = scenario.Presets()
	default:
		return 1, fmt.Errorf("nothing to run: pass -f <scenarios.json> or -bundled")
	}
	if *surrDemo {
		return runSurrogateDemo(batch, *surrLevel, *surrOrder)
	}
	if *workers > 0 {
		batch.Workers = *workers
	}
	if *sampleWorkers > 0 {
		batch.SampleWorkers = *sampleWorkers
	}
	for i := range batch.Scenarios {
		uqSpec := &batch.Scenarios[i].UQ
		switch uqSpec.EffectiveMethod() {
		case scenario.MethodNone, scenario.MethodSmolyak:
			continue
		}
		if *rare {
			// Re-target the sampling scenario at P(T_max ≥ T_crit): the rare
			// mode owns its germ-space sampling, so the method and every
			// streaming/sharding knob are cleared rather than combined.
			*uqSpec = scenario.UQSpec{
				Mode:         scenario.ModeFailureProbability,
				LevelSamples: *rareSamples,
				Seed:         uqSpec.Seed,
				Rho:          uqSpec.Rho,
				MeanDelta:    uqSpec.MeanDelta,
				StdDelta:     uqSpec.StdDelta,
				CriticalK:    uqSpec.CriticalK,
			}
			continue
		}
		if *stream {
			uqSpec.Stream = true
		}
		// Sharding is budget-only; scenarios with adaptive targets keep
		// their single-fold campaign.
		if *shards >= 1 && uqSpec.TargetSE == 0 && uqSpec.TargetCI == 0 {
			uqSpec.Shards = *shards
		}
	}

	eng := scenario.NewEngine()
	if *verbose {
		eng.OnEvent = logEvent
	}
	if *fleetWorkers > 0 {
		stopFleet, err := startLocalFleet(eng, *fleetWorkers, *etworkerBin, *sampleWorkers, *verbose)
		if err != nil {
			return 1, err
		}
		defer stopFleet()
	}

	fmt.Printf("etbatch: %s — %d scenarios on %d CPUs\n", batch.Name, len(batch.Scenarios), runtime.NumCPU())
	res, err := eng.Run(context.Background(), batch)
	if err != nil {
		return 1, err
	}
	printSummary(res)

	if *outPath != "" {
		data, err := manifestJSON(res)
		if err != nil {
			return 1, err
		}
		if err := writeFile(*outPath, data); err != nil {
			return 1, err
		}
		fmt.Printf("manifest written to %s\n", *outPath)
	}
	if res.FailedCount > 0 {
		return 2, fmt.Errorf("%d of %d scenarios failed", res.FailedCount, len(res.Scenarios))
	}
	return 0, nil
}

// logEvent prints one progress event; sample events are throttled to every
// eighth so Monte Carlo scenarios do not flood the terminal.
func logEvent(ev scenario.Event) {
	switch ev.Phase {
	case scenario.PhaseSample:
		if ev.Total >= 16 && ev.Done%8 != 0 && ev.Done != ev.Total {
			return
		}
		fmt.Printf("  [%s] sample %d/%d\n", ev.Scenario, ev.Done, ev.Total)
	case scenario.PhaseLevel:
		if lv := ev.Level; lv != nil {
			fmt.Printf("  [%s] level %d/%d: threshold %.2f K, accept %.2f, cond P %.3f (%d evals)\n",
				ev.Scenario, ev.Done, ev.Total, lv.ThresholdK, lv.Accept, lv.CondProb, lv.Evals)
		}
	case scenario.PhaseFailed:
		fmt.Printf("  [%s] FAILED: %v\n", ev.Scenario, ev.Err)
	default:
		fmt.Printf("  [%s] %s\n", ev.Scenario, ev.Phase)
	}
}

// printSummary renders the per-scenario table and the cache accounting the
// acceptance criteria ask for.
func printSummary(res *scenario.BatchResult) {
	fmt.Printf("\n%-24s %-12s %8s %9s %8s %10s %-12s %6s %8s\n",
		"scenario", "method", "T_end[K]", "sigma[K]", "cross[s]", "P(exceed)", "stop", "cache", "time[s]")
	for _, s := range res.Scenarios {
		if !s.OK {
			fmt.Printf("%-24s %-12s FAILED: %s\n", s.Name, s.Method, s.Error)
			continue
		}
		cross := "never"
		if s.CrossMeanS != nil {
			cross = fmt.Sprintf("%.1f", *s.CrossMeanS)
		}
		cache := "miss"
		if s.CacheHit {
			cache = "hit"
		}
		stop := "-"
		if s.Streamed {
			stop = fmt.Sprintf("%s@%d", s.StopReason, s.Samples+s.Failures)
		}
		if s.RareEstimator != "" {
			stop = fmt.Sprintf("%s@%d", s.RareEstimator, s.Samples)
		}
		fmt.Printf("%-24s %-12s %8.2f %9.3f %8s %10.2e %-12s %6s %8.2f\n",
			s.Name, s.Method, s.TEndMaxK, s.SigmaK, cross, s.ExceedProb, stop, cache, s.ElapsedS)
	}
	fmt.Printf("\nassembly cache: %d hit(s), %d miss(es) across %d scenario(s) — %d distinct mesh(es) built\n",
		res.CacheHits, res.CacheMisses, len(res.Scenarios), res.CacheEntries)
	fmt.Printf("batch finished in %s (%d workers × %d sample workers), %d failed\n",
		time.Duration(res.ElapsedS*float64(time.Second)).Round(10*time.Millisecond),
		res.Workers, res.SampleWorkers, res.FailedCount)
}

// manifestJSON renders the manifest; kept separate from printSummary so the
// on-disk artifact stays machine-readable while the table stays human.
func manifestJSON(res *scenario.BatchResult) ([]byte, error) {
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// startLocalFleet is etbatch's local multi-process mode: it starts an
// in-process fleet coordinator on a loopback listener, spawns n etworker
// processes against it (falling back to in-process worker loops over the
// same HTTP protocol when no etworker binary is available), and plugs the
// coordinator into the engine so sharded scenarios run on the fleet. The
// returned function tears everything down.
func startLocalFleet(eng *scenario.Engine, n int, bin string, sampleWorkers int, verbose bool) (func(), error) {
	coord := fleet.NewCoordinator(eng.Cache(), 15*time.Second)
	mux := http.NewServeMux()
	coord.Register(mux, api.FleetPrefix)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("fleet listener: %w", err)
	}
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 10 * time.Second}
	go func() { _ = srv.Serve(ln) }()
	base := "http://" + ln.Addr().String()
	eng.Sharder = coord

	ctx, cancel := context.WithCancel(context.Background())

	if bin == "" {
		bin = findEtworker()
	}
	if bin != "" {
		fmt.Printf("fleet: %d etworker processes (%s) against %s\n", n, bin, base)
		var procs []*exec.Cmd
		var reaped []chan struct{}
		// stop kills the children explicitly and reaps them before
		// returning: relying on CommandContext's cancel watchdog alone
		// races etbatch's own exit (on a single CPU the kill goroutine may
		// never be scheduled), leaking orphaned etworkers.
		stop := func() {
			cancel()
			_ = srv.Close()
			for _, c := range procs {
				if c.Process != nil {
					_ = c.Process.Kill()
				}
			}
			for _, done := range reaped {
				select {
				case <-done:
				case <-time.After(5 * time.Second):
				}
			}
		}
		for i := 0; i < n; i++ {
			args := []string{"-server", base, "-id", fmt.Sprintf("local-%d", i)}
			if sampleWorkers > 0 {
				args = append(args, "-sample-workers", fmt.Sprint(sampleWorkers))
			}
			if !verbose {
				args = append(args, "-q")
			}
			cmd := exec.CommandContext(ctx, bin, args...)
			if verbose {
				cmd.Stdout, cmd.Stderr = os.Stdout, os.Stderr
			}
			if err := cmd.Start(); err != nil {
				stop()
				return nil, fmt.Errorf("spawn etworker: %w", err)
			}
			done := make(chan struct{})
			go func() { defer close(done); _ = cmd.Wait() }()
			procs = append(procs, cmd)
			reaped = append(reaped, done)
		}
		return stop, nil
	}
	stop := func() {
		cancel()
		_ = srv.Close()
	}

	fmt.Printf("fleet: etworker binary not found; running %d in-process workers over %s\n", n, base)
	for i := 0; i < n; i++ {
		w := &fleet.Worker{
			Client:        client.New(base),
			ID:            fmt.Sprintf("inproc-%d", i),
			SampleWorkers: sampleWorkers,
			Poll:          100 * time.Millisecond,
		}
		if verbose {
			w.Logf = func(format string, args ...any) { fmt.Printf(format+"\n", args...) }
		}
		go func() { _ = w.Run(ctx) }()
	}
	return stop, nil
}

// findEtworker locates the etworker binary next to the running etbatch
// executable or on PATH; empty when neither exists.
func findEtworker() string {
	if exe, err := os.Executable(); err == nil {
		sibling := filepath.Join(filepath.Dir(exe), "etworker")
		if st, err := os.Stat(sibling); err == nil && !st.IsDir() {
			return sibling
		}
	}
	if p, err := exec.LookPath("etworker"); err == nil {
		return p
	}
	return ""
}

func writeFile(path string, data []byte) error {
	if dir := filepath.Dir(path); dir != "." && dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	return os.WriteFile(path, data, 0o644)
}
