// Command etbatch runs a batch of electrothermal scenarios end to end: it
// loads a declarative JSON scenario file (or the bundled paper-grounded
// presets), evaluates every scenario concurrently through the shared
// assembly cache of internal/scenario, prints a per-scenario summary table
// with cache accounting, and writes a structured results manifest.
//
// Usage:
//
//	etbatch -bundled                     # run the bundled demo suite
//	etbatch -f scenarios.json            # run a scenario file
//	etbatch -write-presets presets.json  # export the bundled suite, then edit
//	etbatch -bundled -out manifest.json -workers 4 -sample-workers 2 -v
//
// The scenario file format is internal/scenario.Batch as JSON; unknown
// fields are rejected so typos fail loudly. Exit status is 0 when every
// scenario succeeded, 1 on a batch-level error and 2 when individual
// scenarios failed (the rest of the batch still ran and was reported).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"etherm/internal/scenario"
)

func main() {
	code, err := run()
	if err != nil {
		fmt.Fprintln(os.Stderr, "etbatch:", err)
	}
	os.Exit(code)
}

func run() (int, error) {
	var (
		file          = flag.String("f", "", "JSON scenario file (see -write-presets for the format)")
		bundled       = flag.Bool("bundled", false, "run the bundled demonstration presets")
		writePresets  = flag.String("write-presets", "", "write the bundled presets to this path and exit")
		workers       = flag.Int("workers", 0, "scenario-level parallelism (0 = automatic)")
		sampleWorkers = flag.Int("sample-workers", 0, "per-scenario ensemble parallelism (0 = automatic)")
		outPath       = flag.String("out", "out/etbatch_manifest.json", "results manifest path (empty = no manifest)")
		verbose       = flag.Bool("v", false, "log per-scenario progress events")
		stream        = flag.Bool("stream", false, "force the constant-memory streaming campaign for every sampling scenario")
	)
	flag.Parse()

	if *writePresets != "" {
		data, err := scenario.Presets().MarshalIndent()
		if err != nil {
			return 1, err
		}
		if err := writeFile(*writePresets, data); err != nil {
			return 1, err
		}
		fmt.Printf("bundled presets written to %s\n", *writePresets)
		return 0, nil
	}

	var batch *scenario.Batch
	switch {
	case *file != "" && *bundled:
		return 1, fmt.Errorf("use either -f or -bundled, not both")
	case *file != "":
		b, err := scenario.LoadBatch(*file)
		if err != nil {
			return 1, err
		}
		batch = b
	case *bundled:
		batch = scenario.Presets()
	default:
		return 1, fmt.Errorf("nothing to run: pass -f <scenarios.json> or -bundled")
	}
	if *workers > 0 {
		batch.Workers = *workers
	}
	if *sampleWorkers > 0 {
		batch.SampleWorkers = *sampleWorkers
	}
	if *stream {
		for i := range batch.Scenarios {
			switch batch.Scenarios[i].UQ.EffectiveMethod() {
			case scenario.MethodNone, scenario.MethodSmolyak:
			default:
				batch.Scenarios[i].UQ.Stream = true
			}
		}
	}

	eng := scenario.NewEngine()
	if *verbose {
		eng.OnEvent = logEvent
	}

	fmt.Printf("etbatch: %s — %d scenarios on %d CPUs\n", batch.Name, len(batch.Scenarios), runtime.NumCPU())
	res, err := eng.Run(context.Background(), batch)
	if err != nil {
		return 1, err
	}
	printSummary(res)

	if *outPath != "" {
		data, err := manifestJSON(res)
		if err != nil {
			return 1, err
		}
		if err := writeFile(*outPath, data); err != nil {
			return 1, err
		}
		fmt.Printf("manifest written to %s\n", *outPath)
	}
	if res.FailedCount > 0 {
		return 2, fmt.Errorf("%d of %d scenarios failed", res.FailedCount, len(res.Scenarios))
	}
	return 0, nil
}

// logEvent prints one progress event; sample events are throttled to every
// eighth so Monte Carlo scenarios do not flood the terminal.
func logEvent(ev scenario.Event) {
	switch ev.Phase {
	case scenario.PhaseSample:
		if ev.Total >= 16 && ev.Done%8 != 0 && ev.Done != ev.Total {
			return
		}
		fmt.Printf("  [%s] sample %d/%d\n", ev.Scenario, ev.Done, ev.Total)
	case scenario.PhaseFailed:
		fmt.Printf("  [%s] FAILED: %v\n", ev.Scenario, ev.Err)
	default:
		fmt.Printf("  [%s] %s\n", ev.Scenario, ev.Phase)
	}
}

// printSummary renders the per-scenario table and the cache accounting the
// acceptance criteria ask for.
func printSummary(res *scenario.BatchResult) {
	fmt.Printf("\n%-24s %-12s %8s %9s %8s %10s %-12s %6s %8s\n",
		"scenario", "method", "T_end[K]", "sigma[K]", "cross[s]", "P(exceed)", "stop", "cache", "time[s]")
	for _, s := range res.Scenarios {
		if !s.OK {
			fmt.Printf("%-24s %-12s FAILED: %s\n", s.Name, s.Method, s.Error)
			continue
		}
		cross := "never"
		if s.CrossMeanS != nil {
			cross = fmt.Sprintf("%.1f", *s.CrossMeanS)
		}
		cache := "miss"
		if s.CacheHit {
			cache = "hit"
		}
		stop := "-"
		if s.Streamed {
			stop = fmt.Sprintf("%s@%d", s.StopReason, s.Samples+s.Failures)
		}
		fmt.Printf("%-24s %-12s %8.2f %9.3f %8s %10.2e %-12s %6s %8.2f\n",
			s.Name, s.Method, s.TEndMaxK, s.SigmaK, cross, s.ExceedProb, stop, cache, s.ElapsedS)
	}
	fmt.Printf("\nassembly cache: %d hit(s), %d miss(es) across %d scenario(s) — %d distinct mesh(es) built\n",
		res.CacheHits, res.CacheMisses, len(res.Scenarios), res.CacheEntries)
	fmt.Printf("batch finished in %s (%d workers × %d sample workers), %d failed\n",
		time.Duration(res.ElapsedS*float64(time.Second)).Round(10*time.Millisecond),
		res.Workers, res.SampleWorkers, res.FailedCount)
}

// manifestJSON renders the manifest; kept separate from printSummary so the
// on-disk artifact stays machine-readable while the table stays human.
func manifestJSON(res *scenario.BatchResult) ([]byte, error) {
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

func writeFile(path string, data []byte) error {
	if dir := filepath.Dir(path); dir != "." && dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	return os.WriteFile(path, data, 0o644)
}
