// Command etworker is the fleet worker of the sharded campaign layer: it
// pulls shard assignments from an etserver coordinator over HTTP (lease +
// heartbeat), runs them through the scenario engine's shard entry point,
// and posts back the serialized per-block accumulator state. Any number of
// etworkers may join or die at any time — expired leases are re-leased and
// stale results rejected, so the merged campaign is bit-identical to a
// single-process run.
//
// Usage:
//
//	etworker -server http://etserver:8080            # join the fleet, run forever
//	etworker -server http://etserver:8080 -once      # drain one shard, then exit
//	etworker -server ... -sample-workers 4 -id gpu-3 # bound parallelism, name the worker
//
// The -server URL is the etserver root; the worker talks to its /v1/fleet
// API through the public Go SDK (package client) — etworker itself carries
// no HTTP plumbing. Checkpoints declared by a scenario land on the WORKER's filesystem
// (one "<path>.shard-N" file per shard), so a restarted worker resumes its
// shard instead of recomputing it.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"etherm/client"
	"etherm/internal/fleet"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "etworker:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		server        = flag.String("server", "", "etserver base URL (required), e.g. http://host:8080")
		id            = flag.String("id", "", "worker name in leases (default hostname-pid)")
		sampleWorkers = flag.Int("sample-workers", 0, "parallel model evaluations per shard (0 = GOMAXPROCS)")
		poll          = flag.Duration("poll", fleet.DefaultPoll, "idle re-poll interval")
		once          = flag.Bool("once", false, "lease and run at most one shard, then exit")
		quiet         = flag.Bool("q", false, "suppress progress logging")
	)
	flag.Parse()

	if *server == "" {
		return fmt.Errorf("pass -server <etserver URL>")
	}
	name := *id
	if name == "" {
		host, err := os.Hostname()
		if err != nil {
			host = "etworker"
		}
		name = fmt.Sprintf("%s-%d", host, os.Getpid())
	}

	w := &fleet.Worker{
		Client:        client.New(*server),
		ID:            name,
		SampleWorkers: *sampleWorkers,
		Poll:          *poll,
	}
	if !*quiet {
		w.Logf = func(format string, args ...any) {
			fmt.Printf("[%s] %s\n", time.Now().UTC().Format(time.TimeOnly), fmt.Sprintf(format, args...))
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *once {
		worked, err := w.RunOnce(ctx)
		if err != nil {
			return err
		}
		if !worked {
			fmt.Println("no work available")
		}
		return nil
	}
	if err := w.Run(ctx); err != nil && ctx.Err() == nil {
		return err
	}
	return nil
}
