// Command figures regenerates every table and figure of the paper into an
// output directory:
//
//	table1.txt            material properties @ 300 K (Table I)
//	table2.txt            simulation parameters (Table II)
//	fig1_house.txt        the discrete electrothermal house (Fig. 1)
//	fig3_measurements.csv synthetic X-ray measurement campaign (Fig. 3/4)
//	fig5_pdf.csv/.txt     elongation histogram + normal fit (Fig. 5)
//	fig6_mesh.txt/.vtk    chip model and hexahedral mesh (Fig. 6)
//	fig7_series.csv/.txt  E_max(t) ± 6σ vs T_crit from Monte Carlo (Fig. 7)
//	fig8_field.vtk/.csv/.txt  temperature field at t = 50 s (Fig. 8)
//	summary.txt           paper-vs-measured summary for EXPERIMENTS.md
//
// Usage: figures [-out out] [-samples 1000] [-workers 0] [-preset date16-calibrated] [-hmax 0]
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
	"time"

	"etherm/internal/asciiplot"
	"etherm/internal/chipmodel"
	"etherm/internal/core"
	"etherm/internal/fit"
	"etherm/internal/material"
	"etherm/internal/measure"
	"etherm/internal/stats"
	"etherm/internal/study"
	"etherm/internal/vtkio"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		outDir  = flag.String("out", "out", "output directory")
		samples = flag.Int("samples", 200, "Monte Carlo samples for Fig. 7 (paper: 1000)")
		workers = flag.Int("workers", 0, "parallel workers")
		preset  = flag.String("preset", "date16-calibrated", "chip preset: date16|date16-calibrated")
		seed    = flag.Uint64("seed", 2016, "RNG seed")
	)
	flag.Parse()
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		return err
	}

	var spec chipmodel.Spec
	switch *preset {
	case "date16":
		spec = chipmodel.DATE16()
	case "date16-calibrated":
		spec = chipmodel.DATE16Calibrated()
	default:
		return fmt.Errorf("unknown preset %q", *preset)
	}

	var summary strings.Builder
	fmt.Fprintf(&summary, "etherm figure harness — preset %s, M = %d, seed %d\n", *preset, *samples, *seed)
	fmt.Fprintf(&summary, "generated %s\n\n", time.Now().Format(time.RFC3339))

	if err := table1(*outDir); err != nil {
		return err
	}
	if err := table2(*outDir, spec); err != nil {
		return err
	}
	if err := fig1(*outDir); err != nil {
		return err
	}
	if _, err := fig35(*outDir, *seed, &summary); err != nil {
		return err
	}
	lay, err := fig6(*outDir, spec, &summary)
	if err != nil {
		return err
	}
	if err := fig7(*outDir, spec, *samples, *seed, *workers, &summary); err != nil {
		return err
	}
	if err := fig8(*outDir, lay, &summary); err != nil {
		return err
	}

	if err := os.WriteFile(filepath.Join(*outDir, "summary.txt"), []byte(summary.String()), 0o644); err != nil {
		return err
	}
	fmt.Println(summary.String())
	fmt.Printf("all artifacts written to %s/\n", *outDir)
	return nil
}

func table1(outDir string) error {
	var b strings.Builder
	b.WriteString("Table I: material properties @ T = 300 K\n\n")
	fmt.Fprintf(&b, "%-12s %-12s %14s %14s\n", "Region", "Material", "lambda [W/K/m]", "sigma [S/m]")
	rows := []struct {
		region string
		m      material.Model
	}{
		{"Compound", material.EpoxyResin()},
		{"Contact pad", material.Copper()},
		{"Chip", material.Copper()},
		{"Bonding wire", material.Copper()},
	}
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %-12s %14.4g %14.4g\n",
			r.region, r.m.Name(), r.m.ThermCond(300), r.m.ElecCond(300))
	}
	b.WriteString("\npaper: epoxy 0.87 / 1e-6; copper 398 / 5.80e7 — reproduced exactly (inputs).\n")
	return os.WriteFile(filepath.Join(outDir, "table1.txt"), []byte(b.String()), 0o644)
}

func table2(outDir string, spec chipmodel.Spec) error {
	lay, err := spec.Build()
	if err != nil {
		return err
	}
	var b strings.Builder
	b.WriteString("Table II: simulation parameters\n\n")
	fmt.Fprintf(&b, "%-34s %-14s %s\n", "Parameter", "Paper", "This repo")
	row := func(name, paper, ours string) { fmt.Fprintf(&b, "%-34s %-14s %s\n", name, paper, ours) }
	row("Bonding wire voltage Vbw", "40 mV", fmt.Sprintf("%.0f mV (%s)", lay.PairVoltage()*1e3, presetNote(spec)))
	row("End time", "50 s", "50 s")
	row("No. of time steps", "51", "51 (50 steps + initial state)")
	row("No. of MC samples", "1000", "configurable; headline run 1000")
	row("Wires' diameter", "25.4 um", fmt.Sprintf("%.1f um", spec.WireDiameter*1e6))
	row("Average wires' length L", "1.55 mm", fmt.Sprintf("%.3g mm", lay.MeanLength()*1e3))
	row("Ambient temperature", "300 K", fmt.Sprintf("%g K", spec.TAmbient))
	row("Heat transfer coefficient", "25 W/m2/K", fmt.Sprintf("%g W/m2/K", spec.HTC))
	row("Emissivity", "0.2475", fmt.Sprintf("%g", spec.Emissivity))
	return os.WriteFile(filepath.Join(outDir, "table2.txt"), []byte(b.String()), 0o644)
}

func presetNote(spec chipmodel.Spec) string {
	if spec.DriveV == chipmodel.DATE16().DriveV {
		return "faithful"
	}
	return "power-calibrated, see DESIGN.md"
}

func fig1(outDir string) error {
	spec := chipmodel.DATE16()
	spec.HMax = 0.7e-3 // a coarse grid is enough to illustrate the operators
	lay, err := spec.Build()
	if err != nil {
		return err
	}
	asm, err := fit.NewAssembler(lay.Problem.Grid, lay.Problem.CellMat, lay.Problem.Lib)
	if err != nil {
		return err
	}
	house := asm.BuildHouse(nil)
	if err := house.Verify(); err != nil {
		return fmt.Errorf("house verification failed: %w", err)
	}
	txt := house.Render(lay.Problem.Grid) + "\nstructural identities verified: S~ = -G^T, G*1 = 0, M diag > 0\n"
	return os.WriteFile(filepath.Join(outDir, "fig1_house.txt"), []byte(txt), 0o644)
}

func fig35(outDir string, seed uint64, summary *strings.Builder) (*measure.FitResult, error) {
	res, err := measure.DefaultCampaign(seed).FitElongationPDF(8)
	if err != nil {
		return nil, err
	}
	// Fig. 3/4: the per-wire measurement table.
	f, err := os.Create(filepath.Join(outDir, "fig3_measurements.csv"))
	if err != nil {
		return nil, err
	}
	w := csv.NewWriter(f)
	w.Write([]string{"wire", "d_mm", "true_ds_mm", "true_dh_mm", "dh_visible", "meas_dh_mm", "meas_L_mm", "delta"})
	for i, s := range res.Samples {
		w.Write([]string{
			fmt.Sprintf("%d", i+1),
			fmt.Sprintf("%.4f", s.True.Direct*1e3),
			fmt.Sprintf("%.4f", s.True.DeltaS*1e3),
			fmt.Sprintf("%.4f", s.True.DeltaH*1e3),
			fmt.Sprintf("%v", s.DHSeen),
			fmt.Sprintf("%.4f", s.Measured.DeltaH*1e3),
			fmt.Sprintf("%.4f", s.Measured.Length()*1e3),
			fmt.Sprintf("%.4f", res.Deltas[i]),
		})
	}
	w.Flush()
	f.Close()
	if err := w.Error(); err != nil {
		return nil, err
	}

	// Fig. 5: histogram + fitted normal PDF.
	f5, err := os.Create(filepath.Join(outDir, "fig5_pdf.csv"))
	if err != nil {
		return nil, err
	}
	w5 := csv.NewWriter(f5)
	w5.Write([]string{"delta", "hist_density", "fit_pdf", "paper_pdf"})
	paper := stats.NormalFit{Mu: 0.17, Sigma: 0.048}
	for b := 0; b < len(res.Histogram.Counts); b++ {
		x := res.Histogram.BinCenter(b)
		w5.Write([]string{
			fmt.Sprintf("%.4f", x),
			fmt.Sprintf("%.4f", res.Histogram.Density(b)),
			fmt.Sprintf("%.4f", res.Fit.PDF(x)),
			fmt.Sprintf("%.4f", paper.PDF(x)),
		})
	}
	w5.Flush()
	f5.Close()

	txt := fmt.Sprintf("Fig. 5: relative elongation PDF from %d synthetic measurements\n"+
		"fitted: N(mu=%.3f, sigma=%.3f)   paper: N(0.170, 0.048)   KS distance %.3f\n",
		len(res.Deltas), res.Fit.Mu, res.Fit.Sigma, res.KSDistance)
	if err := os.WriteFile(filepath.Join(outDir, "fig5_fit.txt"), []byte(txt), 0o644); err != nil {
		return nil, err
	}
	fmt.Fprintf(summary, "Fig. 5  elongation fit: mu=%.3f sigma=%.3f (paper 0.170 / 0.048, 12 samples)\n",
		res.Fit.Mu, res.Fit.Sigma)
	return res, nil
}

func fig6(outDir string, spec chipmodel.Spec, summary *strings.Builder) (*chipmodel.Layout, error) {
	lay, err := spec.Build()
	if err != nil {
		return nil, err
	}
	g := lay.Problem.Grid
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 6: chip model and hexahedral mesh\n\n")
	fmt.Fprintf(&b, "mold      %.3g x %.3g x %.3g mm\n", spec.MoldLx*1e3, spec.MoldLy*1e3, spec.MoldH*1e3)
	fmt.Fprintf(&b, "chip      %.3g x %.3g x %.3g mm (offset y %.3g mm)\n", spec.ChipLx*1e3, spec.ChipLy*1e3, spec.ChipH*1e3, spec.ChipOffsetY*1e3)
	fmt.Fprintf(&b, "pads      %d total (%d long), w=%.3g mm, len=%.3g/%.3g mm\n",
		len(lay.Pads), 4, spec.PadW*1e3, spec.PadLen*1e3, spec.PadLenLong*1e3)
	fmt.Fprintf(&b, "wires     %d in %d pairs, diameter %.1f um, mean direct d=%.3g mm, mean L=%.3g mm\n",
		len(lay.Wires), 6, spec.WireDiameter*1e6, lay.MeanDirect()*1e3, lay.MeanLength()*1e3)
	fmt.Fprintf(&b, "mesh      %d x %d x %d nodes = %d, %d cells, %d edges\n",
		g.Nx, g.Ny, g.Nz, g.NumNodes(), g.NumCells(), g.NumEdges())
	for i, w := range lay.Wires {
		fmt.Fprintf(&b, "  wire %2d  %-5s pad %2d pair %d pol %+g  d = %.4g mm\n",
			i, w.Side, w.PadID, w.Pair, w.Polarity, w.Direct*1e3)
	}
	if err := os.WriteFile(filepath.Join(outDir, "fig6_mesh.txt"), []byte(b.String()), 0o644); err != nil {
		return nil, err
	}
	mats := make([]float64, g.NumCells())
	for c := range mats {
		mats[c] = float64(lay.Problem.CellMat[c])
	}
	if err := vtkio.WriteRectilinearFile(filepath.Join(outDir, "fig6_materials.vtk"), g,
		"chip model materials", vtkio.Field{Name: "material", Values: mats, OnCell: true}); err != nil {
		return nil, err
	}
	fmt.Fprintf(summary, "Fig. 6  mesh: %d nodes, %d cells; 28 pads, 12 wires, mean L %.3g mm (paper 1.55 mm)\n",
		g.NumNodes(), g.NumCells(), lay.MeanLength()*1e3)
	return lay, nil
}

func fig7(outDir string, spec chipmodel.Spec, samples int, seed uint64, workers int, summary *strings.Builder) error {
	opt := core.FastOptions()
	f7, lay, ens, err := study.RunPaperStudy(spec, opt, samples, seed, workers)
	if err != nil {
		return err
	}
	last := len(f7.Times) - 1
	hot := f7.HotSeries()
	errs := make([]float64, len(hot))
	for i := range errs {
		errs[i] = 6 * f7.SigmaHot[i]
	}
	p := asciiplot.LinePlot{
		Title:  fmt.Sprintf("Fig. 7: E[T_hot](t) ±6 sigma, M=%d (%s)", ens.Succeeded(), ens.SamplerName),
		XLabel: "time (s)", YLabel: "temperature (K)",
		Series: []asciiplot.Series{{Name: "hottest wire ±6 sigma", X: f7.Times, Y: hot, Err: errs, Marker: '*'}},
		HLines: map[string]float64{"T_critical 523 K": f7.TCritical},
	}
	stat := fmt.Sprintf("Fig. 7 statistics (M=%d)\n"+
		"E_max(50 s) = %.2f K (paper: ~500 K)\n"+
		"sigma_MC    = %.3f K (paper: 4.65 K)\n"+
		"error_MC    = %.3f K (paper: 0.147 K, eq. 6)\n"+
		"6-sigma band crosses T_crit at %s (paper: t ~ 26 s)\n"+
		"hottest wire: %d on %s side (shortest wires, cf. Fig. 8 discussion)\n"+
		"stationary by 50 s: %v (paper: stationary after ~50 s)\n",
		ens.Succeeded(), f7.EMax[last], f7.SigmaMC, f7.ErrorMC,
		crossStr(f7.Cross6Sig), f7.HotWire, lay.Wires[f7.HotWire].Side, f7.Stationary(2.0))
	if err := os.WriteFile(filepath.Join(outDir, "fig7_ascii.txt"), []byte(p.Render()+"\n"+stat), 0o644); err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(outDir, "fig7_stats.txt"), []byte(stat), 0o644); err != nil {
		return err
	}
	if err := writeFig7CSV(filepath.Join(outDir, "fig7_series.csv"), f7); err != nil {
		return err
	}
	fmt.Fprintf(summary, "Fig. 7  E_max(50s)=%.2f K, sigma_MC=%.3f K, error_MC=%.3f K, 6-sigma crossing %s (M=%d)\n",
		f7.EMax[last], f7.SigmaMC, f7.ErrorMC, crossStr(f7.Cross6Sig), ens.Succeeded())
	return nil
}

func crossStr(t float64) string {
	if math.IsNaN(t) {
		return "never"
	}
	return fmt.Sprintf("t=%.1f s", t)
}

func writeFig7CSV(path string, f *study.Fig7) error {
	fh, err := os.Create(path)
	if err != nil {
		return err
	}
	defer fh.Close()
	w := csv.NewWriter(fh)
	nw := len(f.EWire[0])
	header := []string{"time_s", "E_max_K", "E_hot_K", "sigma_hot_K", "lower6_K", "upper6_K"}
	for j := 0; j < nw; j++ {
		header = append(header, fmt.Sprintf("E_w%02d", j), fmt.Sprintf("s_w%02d", j))
	}
	w.Write(header)
	hot := f.HotSeries()
	for t := range f.Times {
		row := []string{
			fmt.Sprintf("%g", f.Times[t]),
			fmt.Sprintf("%.4f", f.EMax[t]),
			fmt.Sprintf("%.4f", hot[t]),
			fmt.Sprintf("%.4f", f.SigmaHot[t]),
			fmt.Sprintf("%.4f", hot[t]-6*f.SigmaHot[t]),
			fmt.Sprintf("%.4f", hot[t]+6*f.SigmaHot[t]),
		}
		for j := 0; j < nw; j++ {
			row = append(row, fmt.Sprintf("%.4f", f.EWire[t][j]), fmt.Sprintf("%.4f", f.SWire[t][j]))
		}
		w.Write(row)
	}
	w.Flush()
	return w.Error()
}

func fig8(outDir string, lay *chipmodel.Layout, summary *strings.Builder) error {
	sim, err := core.NewSimulator(lay.Problem, core.Options{})
	if err != nil {
		return err
	}
	res, err := sim.Run()
	if err != nil {
		return err
	}
	g := lay.Problem.Grid
	if err := vtkio.WriteRectilinearFile(filepath.Join(outDir, "fig8_field.vtk"), g,
		"temperature field at t = 50 s",
		vtkio.Field{Name: "temperature", Values: res.FinalField},
		vtkio.Field{Name: "potential", Values: res.FinalPhi}); err != nil {
		return err
	}
	// Slice at the bond-plane (chip top).
	k := nearestLineIndex(g.Zs, lay.Chip.Z1)
	fs, err := os.Create(filepath.Join(outDir, "fig8_slice.csv"))
	if err != nil {
		return err
	}
	if err := vtkio.WriteSliceCSV(fs, g, res.FinalField, k); err != nil {
		fs.Close()
		return err
	}
	fs.Close()

	slice := make([]float64, g.Nx*g.Ny)
	for j := 0; j < g.Ny; j++ {
		for i := 0; i < g.Nx; i++ {
			slice[j*g.Nx+i] = res.FinalField[g.NodeIndex(i, j, k)]
		}
	}
	heat := asciiplot.Heatmap(slice, g.Nx, g.Ny, "Fig. 8: temperature at t = 50 s, bond-plane slice")
	last := len(res.Times) - 1
	note := fmt.Sprintf("\nhottest wire: %d (north side — the side with the shortest wires/closest contacts)\n"+
		"max wire temperature %.2f K, total power %.3g W, boundary loss %.3g W (stationary balance %.1f%%)\n",
		res.HottestWire(), res.MaxWireTempAt(last),
		res.FieldPower[last]+res.WirePowerTotal[last], res.BoundaryLoss[last],
		100*res.BoundaryLoss[last]/(res.FieldPower[last]+res.WirePowerTotal[last]))
	if err := os.WriteFile(filepath.Join(outDir, "fig8_ascii.txt"), []byte(heat+note), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(summary, "Fig. 8  nominal field at 50 s: T_max,wire=%.2f K, hottest wire %d (north), energy balance closed to %.2g\n",
		res.MaxWireTempAt(last), res.HottestWire(), res.Stats.MaxEnergyImbalance)
	return nil
}

func nearestLineIndex(line []float64, v float64) int {
	best, bd := 0, math.Inf(1)
	for i, x := range line {
		if d := math.Abs(x - v); d < bd {
			best, bd = i, d
		}
	}
	return best
}
