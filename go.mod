module etherm

go 1.24
