package circuit

import (
	"math"
	"testing"

	"etherm/internal/material"
)

func TestVoltageDividerDC(t *testing.T) {
	// v(1) -- g1 -- v(2) -- g2 -- ground, source 10 V at node 1.
	nw := NewNetwork(2)
	if err := nw.AddConductance(1, 2, Constant(1)); err != nil {
		t.Fatal(err)
	}
	if err := nw.AddConductance(2, 0, Constant(3)); err != nil {
		t.Fatal(err)
	}
	if err := nw.AddVoltageSource(1, 0, 10); err != nil {
		t.Fatal(err)
	}
	sol, err := nw.SolveDC()
	if err != nil {
		t.Fatal(err)
	}
	// Divider: v2 = 10·(R2/(R1+R2)) with R1=1, R2=1/3.
	if math.Abs(sol.V[2]-2.5) > 1e-9 {
		t.Errorf("v2 = %g, want 2.5", sol.V[2])
	}
	// Source current: I = 10/(1+1/3)Ω = 7.5 A (leaving the source).
	if math.Abs(math.Abs(sol.I[0])-7.5) > 1e-9 {
		t.Errorf("source current %g, want ±7.5", sol.I[0])
	}
}

func TestCurrentSourceDC(t *testing.T) {
	nw := NewNetwork(1)
	nw.AddConductance(1, 0, Constant(2))
	nw.AddCurrentSource(0, 1, 4) // 4 A into node 1
	sol, err := nw.SolveDC()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sol.V[1]-2) > 1e-9 {
		t.Errorf("v1 = %g, want 2", sol.V[1])
	}
}

func TestNonlinearConductanceFixedPoint(t *testing.T) {
	// Temperature-like feedback: g(v) = 1/(1+0.1·v̄); solve i = g(v)·v = 1.
	nw := NewNetwork(1)
	nw.AddConductance(1, 0, func(ctrl float64) float64 { return 1 / (1 + 0.1*math.Abs(ctrl)) })
	nw.AddCurrentSource(0, 1, 1)
	sol, err := nw.SolveDC()
	if err != nil {
		t.Fatal(err)
	}
	v := sol.V[1]
	// v solves v/(1+0.05v) = 1 (ctrl is the terminal average v/2).
	res := v/(1+0.05*v) - 1
	if math.Abs(res) > 1e-9 {
		t.Errorf("fixed point residual %g (v=%g)", res, v)
	}
}

func TestWireStampAgainstFieldModelNumbers(t *testing.T) {
	// Two wires in series over 40 mV (the paper's pair drive): the circuit
	// current must match V/(R1+R2).
	cu := material.Copper()
	area := math.Pi * 25.4e-6 * 25.4e-6 / 4
	gWire := func(l float64) CondFunc {
		return func(ctrl float64) float64 { return cu.ElecCond(300) * area / l }
	}
	nw := NewNetwork(3) // 1: +pad, 2: chip, 3: −pad... node 3 grounded via vsrc
	nw.AddConductance(1, 2, gWire(1.55e-3))
	nw.AddConductance(2, 3, gWire(1.55e-3))
	nw.AddVoltageSource(1, 0, 20e-3)
	nw.AddVoltageSource(3, 0, -20e-3)
	sol, err := nw.SolveDC()
	if err != nil {
		t.Fatal(err)
	}
	r := 1.55e-3 / (cu.ElecCond(300) * area)
	wantI := 40e-3 / (2 * r)
	if math.Abs(math.Abs(sol.I[0])-wantI) > 1e-6*wantI {
		t.Errorf("pair current %g, want %g", sol.I[0], wantI)
	}
	// Chip floats at the midpoint by symmetry.
	if math.Abs(sol.V[2]) > 1e-12 {
		t.Errorf("chip potential %g, want 0", sol.V[2])
	}
	// Power per wire: I²R ≈ 7.6 mW at 300 K (the paper's operating point).
	p := nw.PowerIn(0, sol)
	if math.Abs(p-wantI*wantI*r) > 1e-9 {
		t.Errorf("wire power %g", p)
	}
}

func TestTransientRCMatchesExponential(t *testing.T) {
	// Thermal RC: C dT/dt = −g(T−0); from 100 decaying to 0.
	nw := NewNetwork(1)
	nw.AddConductance(1, 0, Constant(0.5))
	if err := nw.AddCapacitance(1, 2); err != nil {
		t.Fatal(err)
	}
	dt := 0.01
	traj, err := nw.SolveTransient([]float64{0, 100}, dt, 1000)
	if err != nil {
		t.Fatal(err)
	}
	tau := 2.0 / 0.5
	got := traj[1000][1]
	want := 100 * math.Exp(-10.0/tau)
	if math.Abs(got-want) > 0.2 {
		t.Errorf("T(10) = %g, want %g", got, want)
	}
}

func TestElectrothermalControlledConductance(t *testing.T) {
	// Electrical conductance controlled by a thermal node: raising the
	// control temperature must reduce the current.
	cu := material.Copper()
	build := func(temp float64) float64 {
		nw := NewNetwork(2) // node 1 electrical, node 2 thermal control
		nw.AddControlledConductance(1, 0, 2, 2, func(ctrl float64) float64 {
			return cu.ElecCond(ctrl) * 1e-9
		})
		nw.AddVoltageSource(1, 0, 1)
		nw.AddConductance(2, 0, Constant(1)) // pin thermal node via source
		nw.AddCurrentSource(0, 2, temp)      // v2 = temp
		sol, err := nw.SolveDC()
		if err != nil {
			t.Fatal(err)
		}
		return math.Abs(sol.I[0])
	}
	if build(400) >= build(300) {
		t.Error("current should drop when the controlling temperature rises")
	}
}

func TestErrorsAndValidation(t *testing.T) {
	nw := NewNetwork(1)
	if err := nw.AddConductance(0, 5, Constant(1)); err == nil {
		t.Error("out-of-range node accepted")
	}
	if err := nw.AddCapacitance(1, -1); err == nil {
		t.Error("negative capacitance accepted")
	}
	// A floating network is singular.
	nw2 := NewNetwork(2)
	nw2.AddConductance(1, 2, Constant(1))
	if _, err := nw2.SolveDC(); err == nil {
		t.Error("floating network should be singular")
	}
}
