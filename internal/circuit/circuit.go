// Package circuit implements a small lumped electrothermal network solver
// (modified nodal analysis) used to cross-validate the bonding-wire stamps
// of the field model and to power the stand-alone bonding-wire calculator.
// Elements: (nonlinear) conductances, current sources, voltage sources via
// MNA branch unknowns, grounded thermal capacitances for transients.
package circuit

import (
	"fmt"
	"math"

	"etherm/internal/sparse"
)

// CondFunc is a temperature- or state-dependent conductance evaluator.
type CondFunc func(ctrl float64) float64

// Constant returns a CondFunc with a fixed value.
func Constant(g float64) CondFunc { return func(float64) float64 { return g } }

// Network is an electrothermal nodal network. Node 0 is ground (fixed zero
// potential / ambient reference); unknowns are nodes 1..N plus one branch
// current per voltage source.
type Network struct {
	n          int // highest node index
	conds      []condElem
	isrcs      []srcElem
	vsrcs      []vsrcElem
	capacities []capElem
}

type condElem struct {
	a, b int
	g    CondFunc
	// ctrlNodes: the conductance is evaluated at the average of these node
	// values (e.g. a thermal control for electrothermal coupling); empty
	// means evaluate at the element's own terminal average.
	ctrlA, ctrlB int
	hasCtrl      bool
}

type srcElem struct {
	a, b int
	val  float64
}

type vsrcElem struct {
	a, b int
	val  float64
}

type capElem struct {
	node int
	c    float64
}

// NewNetwork returns a network with nodes 0..n (0 = ground).
func NewNetwork(n int) *Network { return &Network{n: n} }

// NumNodes returns the highest node index.
func (nw *Network) NumNodes() int { return nw.n }

func (nw *Network) checkNode(i int) error {
	if i < 0 || i > nw.n {
		return fmt.Errorf("circuit: node %d out of range 0..%d", i, nw.n)
	}
	return nil
}

// AddConductance connects nodes a and b with conductance g(ctrl), where ctrl
// is the average of the element's terminal values.
func (nw *Network) AddConductance(a, b int, g CondFunc) error {
	if err := nw.checkNode(a); err != nil {
		return err
	}
	if err := nw.checkNode(b); err != nil {
		return err
	}
	nw.conds = append(nw.conds, condElem{a: a, b: b, g: g})
	return nil
}

// AddControlledConductance connects a–b with conductance evaluated at the
// average of (ctrlA, ctrlB) — e.g. an electrical wire conductance controlled
// by the thermal sub-network's wire temperature.
func (nw *Network) AddControlledConductance(a, b, ctrlA, ctrlB int, g CondFunc) error {
	for _, i := range []int{a, b, ctrlA, ctrlB} {
		if err := nw.checkNode(i); err != nil {
			return err
		}
	}
	nw.conds = append(nw.conds, condElem{a: a, b: b, g: g, ctrlA: ctrlA, ctrlB: ctrlB, hasCtrl: true})
	return nil
}

// AddCurrentSource injects val into node b and out of node a (a→b).
func (nw *Network) AddCurrentSource(a, b int, val float64) error {
	if err := nw.checkNode(a); err != nil {
		return err
	}
	if err := nw.checkNode(b); err != nil {
		return err
	}
	nw.isrcs = append(nw.isrcs, srcElem{a: a, b: b, val: val})
	return nil
}

// AddVoltageSource fixes v(a) − v(b) = val through an MNA branch current.
func (nw *Network) AddVoltageSource(a, b int, val float64) error {
	if err := nw.checkNode(a); err != nil {
		return err
	}
	if err := nw.checkNode(b); err != nil {
		return err
	}
	nw.vsrcs = append(nw.vsrcs, vsrcElem{a: a, b: b, val: val})
	return nil
}

// AddCapacitance attaches a grounded capacitance (thermal mass) to a node.
func (nw *Network) AddCapacitance(node int, c float64) error {
	if err := nw.checkNode(node); err != nil {
		return err
	}
	if c <= 0 {
		return fmt.Errorf("circuit: non-positive capacitance %g", c)
	}
	nw.capacities = append(nw.capacities, capElem{node: node, c: c})
	return nil
}

// Solution holds node values (index 0 = ground entry, always the reference)
// and voltage-source branch currents.
type Solution struct {
	V []float64 // length n+1
	I []float64 // per voltage source
}

// assemble builds the MNA system at the linearization state x (node values),
// with optional mass/dt terms and history for transient steps.
func (nw *Network) assemble(x []float64, massOverDt map[int]float64, hist []float64) (*sparse.Dense, []float64) {
	nv := nw.n + len(nw.vsrcs)
	a := sparse.NewDense(nv, nv)
	rhs := make([]float64, nv)
	stamp := func(i, j int, v float64) {
		if i > 0 && j > 0 {
			a.Add(i-1, j-1, v)
		}
	}
	for _, c := range nw.conds {
		ctrl := 0.5 * (x[c.a] + x[c.b])
		if c.hasCtrl {
			ctrl = 0.5 * (x[c.ctrlA] + x[c.ctrlB])
		}
		g := c.g(ctrl)
		stamp(c.a, c.a, g)
		stamp(c.b, c.b, g)
		stamp(c.a, c.b, -g)
		stamp(c.b, c.a, -g)
	}
	for _, s := range nw.isrcs {
		if s.a > 0 {
			rhs[s.a-1] -= s.val
		}
		if s.b > 0 {
			rhs[s.b-1] += s.val
		}
	}
	for k, vs := range nw.vsrcs {
		row := nw.n + k
		if vs.a > 0 {
			a.Add(vs.a-1, row, 1)
			a.Add(row, vs.a-1, 1)
		}
		if vs.b > 0 {
			a.Add(vs.b-1, row, -1)
			a.Add(row, vs.b-1, -1)
		}
		rhs[row] = vs.val
	}
	for node, m := range massOverDt {
		a.Add(node-1, node-1, m)
		rhs[node-1] += m * hist[node]
	}
	return a, rhs
}

// SolveDC solves the stationary network with fixed-point iteration on the
// nonlinear conductances (tolerance on the node values).
func (nw *Network) SolveDC() (*Solution, error) {
	x := make([]float64, nw.n+1)
	for it := 0; it < 200; it++ {
		a, rhs := nw.assemble(x, nil, nil)
		sol, err := sparse.SolveDense(a, rhs)
		if err != nil {
			return nil, fmt.Errorf("circuit: singular network: %w", err)
		}
		maxd := 0.0
		for i := 1; i <= nw.n; i++ {
			d := math.Abs(sol[i-1] - x[i])
			if d > maxd {
				maxd = d
			}
			x[i] = sol[i-1]
		}
		if maxd < 1e-12*(1+sparse.NormInf(x)) {
			out := &Solution{V: x, I: make([]float64, len(nw.vsrcs))}
			for k := range nw.vsrcs {
				out.I[k] = sol[nw.n+k]
			}
			return out, nil
		}
	}
	return nil, fmt.Errorf("circuit: DC fixed point did not converge")
}

// SolveTransient advances the network with implicit Euler from the initial
// node values init over nSteps of size dt, returning the node trajectories
// ([step][node], including the initial state).
func (nw *Network) SolveTransient(init []float64, dt float64, nSteps int) ([][]float64, error) {
	if len(init) != nw.n+1 {
		return nil, fmt.Errorf("circuit: init has %d entries, want %d", len(init), nw.n+1)
	}
	mass := map[int]float64{}
	for _, c := range nw.capacities {
		mass[c.node] += c.c / dt
	}
	x := append([]float64(nil), init...)
	out := make([][]float64, 0, nSteps+1)
	out = append(out, append([]float64(nil), x...))
	for s := 0; s < nSteps; s++ {
		hist := append([]float64(nil), x...)
		for it := 0; it < 100; it++ {
			a, rhs := nw.assemble(x, mass, hist)
			sol, err := sparse.SolveDense(a, rhs)
			if err != nil {
				return nil, fmt.Errorf("circuit: step %d singular: %w", s, err)
			}
			maxd := 0.0
			for i := 1; i <= nw.n; i++ {
				d := math.Abs(sol[i-1] - x[i])
				if d > maxd {
					maxd = d
				}
				x[i] = sol[i-1]
			}
			if maxd < 1e-12*(1+sparse.NormInf(x)) {
				break
			}
		}
		out = append(out, append([]float64(nil), x...))
	}
	return out, nil
}

// PowerIn returns the power dissipated in conductance element k at the
// solution (g·Δv²), for energy cross-checks against the field model.
func (nw *Network) PowerIn(k int, sol *Solution) float64 {
	c := nw.conds[k]
	ctrl := 0.5 * (sol.V[c.a] + sol.V[c.b])
	if c.hasCtrl {
		ctrl = 0.5 * (sol.V[c.ctrlA] + sol.V[c.ctrlB])
	}
	dv := sol.V[c.a] - sol.V[c.b]
	return c.g(ctrl) * dv * dv
}
