package uq

import (
	"context"
	"encoding/binary"
	"fmt"
	"math"
)

// Design is the explicit node set of a sparse-grid collocation rule: the
// distinct evaluation points of the Smolyak combination technique with
// their aggregated (possibly negative) quadrature weights. Where
// SmolyakCollocation fuses enumeration and evaluation into one pass,
// Design separates them so the same model evaluations can feed both the
// quadrature moments and a regression fit (PCE surrogate construction),
// and so points shared between tensor terms — or between the designs of
// two adjacent levels — are evaluated once.
type Design struct {
	Points  [][]float64 // distinct nodes in parameter space, first-seen order
	Weights []float64   // combined combination-technique weight per node
}

// pointKey is the exact-bits identity of a node: two nodes merge only when
// every coordinate is the same float64.
func pointKey(p []float64) string {
	b := make([]byte, 8*len(p))
	for i, v := range p {
		binary.LittleEndian.PutUint64(b[i*8:], math.Float64bits(v))
	}
	return string(b)
}

// SmolyakDesign enumerates the Smolyak sparse grid of the given level over
// the given distributions: the same combination technique as
// SmolyakCollocation (q = d + level, terms q−d+1 ≤ |i| ≤ q with coefficient
// (−1)^{q−|i|} C(d−1, q−|i|)), but returning the distinct nodes with
// summed weights instead of integrating a model. Enumeration order is
// deterministic, so the design — and everything fitted on it — is
// reproducible bit for bit.
func SmolyakDesign(dists []Dist, level int) (*Design, error) {
	d := len(dists)
	if d == 0 {
		return nil, fmt.Errorf("uq: no dimensions")
	}
	if level < 0 {
		return nil, fmt.Errorf("uq: negative Smolyak level %d", level)
	}
	q := d + level

	type ruleKey struct{ j, n int }
	rules := map[ruleKey]struct {
		params  []float64
		weights []float64
	}{}
	getRule := func(j, n int) ([]float64, []float64, error) {
		k := ruleKey{j, n}
		if r, ok := rules[k]; ok {
			return r.params, r.weights, nil
		}
		r, params, err := RuleFor(dists[j], n)
		if err != nil {
			return nil, nil, err
		}
		rules[k] = struct {
			params  []float64
			weights []float64
		}{params, r.Weights}
		return params, r.Weights, nil
	}

	des := &Design{}
	seen := map[string]int{}

	multi := make([]int, d)
	var walk func(j, remMin, remMax int) error
	addTensor := func(coeff float64) error {
		idx := make([]int, d)
		for {
			w := coeff
			params := make([]float64, d)
			for j := 0; j < d; j++ {
				p, ws, err := getRule(j, multi[j])
				if err != nil {
					return err
				}
				params[j] = p[idx[j]]
				w *= ws[idx[j]]
			}
			if at, ok := seen[pointKey(params)]; ok {
				des.Weights[at] += w
			} else {
				seen[pointKey(params)] = len(des.Points)
				des.Points = append(des.Points, params)
				des.Weights = append(des.Weights, w)
			}
			j := 0
			for ; j < d; j++ {
				idx[j]++
				if idx[j] < multi[j] {
					break
				}
				idx[j] = 0
			}
			if j == d {
				return nil
			}
		}
	}
	walk = func(j, remMin, remMax int) error {
		if j == d-1 {
			lo := remMin
			if lo < 1 {
				lo = 1
			}
			for v := lo; v <= remMax; v++ {
				multi[j] = v
				total := 0
				for _, x := range multi {
					total += x
				}
				diff := q - total
				coeff := float64(sign(diff)) * binom(d-1, diff)
				if coeff != 0 {
					if err := addTensor(coeff); err != nil {
						return err
					}
				}
			}
			return nil
		}
		for v := 1; v <= remMax-(d-1-j); v++ {
			multi[j] = v
			if err := walk(j+1, remMin-v, remMax-v); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(0, q-d+1, q); err != nil {
		return nil, err
	}
	return des, nil
}

// Eval runs the model at every design point (serially, panic-isolated) and
// returns the per-point output vectors. ctx cancellation is checked between
// evaluations, so a long FEM-backed build can be abandoned cleanly.
func (des *Design) Eval(ctx context.Context, factory ModelFactory) ([][]float64, error) {
	m, err := factory()
	if err != nil {
		return nil, err
	}
	nOut := m.NumOutputs()
	outputs := make([][]float64, len(des.Points))
	for i, p := range des.Points {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		out := make([]float64, nOut)
		if err := safeEval(m, p, out); err != nil {
			return nil, fmt.Errorf("uq: design evaluation %d failed: %w", i, err)
		}
		outputs[i] = out
	}
	return outputs, nil
}

// Moments integrates the given per-point outputs against the design
// weights, yielding the same sparse-grid mean/variance SmolyakCollocation
// computes in its fused pass.
func (des *Design) Moments(outputs [][]float64) (*CollocationResult, error) {
	if len(outputs) != len(des.Points) {
		return nil, fmt.Errorf("uq: %d output rows for a %d-point design", len(outputs), len(des.Points))
	}
	if len(des.Points) == 0 {
		return nil, fmt.Errorf("uq: empty design")
	}
	nOut := len(outputs[0])
	mean := make([]float64, nOut)
	second := make([]float64, nOut)
	for i, out := range outputs {
		w := des.Weights[i]
		for k, v := range out {
			mean[k] += w * v
			second[k] += w * v * v
		}
	}
	res := &CollocationResult{Mean: mean, Variance: make([]float64, nOut), Evaluations: len(des.Points)}
	for k := range second {
		res.Variance[k] = second[k] - mean[k]*mean[k]
	}
	return res, nil
}

// Bound returns the largest coordinate magnitude over all design points:
// the per-axis extent of the trained region in germ space when the
// distributions are standard normal.
func (des *Design) Bound() float64 {
	b := 0.0
	for _, p := range des.Points {
		for _, v := range p {
			if a := math.Abs(v); a > b {
				b = a
			}
		}
	}
	return b
}
