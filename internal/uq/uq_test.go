package uq

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNormalQuantileCDFRoundTrip(t *testing.T) {
	n := Normal{Mu: 0.17, Sigma: 0.048}
	for _, u := range []float64{0.001, 0.1, 0.25, 0.5, 0.75, 0.9, 0.999} {
		x := n.Quantile(u)
		if got := n.CDF(x); math.Abs(got-u) > 1e-12 {
			t.Errorf("CDF(Quantile(%g)) = %g", u, got)
		}
	}
	if math.Abs(n.Quantile(0.5)-0.17) > 1e-15 {
		t.Error("median ≠ µ")
	}
}

func TestNormalPDFIntegratesToOne(t *testing.T) {
	n := Normal{Mu: 1, Sigma: 2}
	sum := 0.0
	const h = 1e-3
	for x := -20.0; x < 22; x += h {
		sum += n.PDF(x) * h
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Errorf("∫pdf = %g", sum)
	}
}

func TestTruncatedNormal(t *testing.T) {
	tr := TruncatedNormal{Mu: 0.17, Sigma: 0.048, Lo: 0, Hi: 0.9}
	if x := tr.Quantile(0.0001); x < 0 {
		t.Errorf("truncated draw %g below support", x)
	}
	if x := tr.Quantile(0.9999); x > 0.9 {
		t.Errorf("truncated draw %g above support", x)
	}
	// Mild truncation barely changes the moments.
	if math.Abs(tr.Mean()-0.17) > 1e-4 {
		t.Errorf("truncated mean %g", tr.Mean())
	}
	if math.Abs(tr.StdDev()-0.048) > 1e-3 {
		t.Errorf("truncated std %g", tr.StdDev())
	}
	// CDF/Quantile round trip.
	for _, u := range []float64{0.01, 0.3, 0.7, 0.99} {
		if got := tr.CDF(tr.Quantile(u)); math.Abs(got-u) > 1e-10 {
			t.Errorf("round trip at %g: %g", u, got)
		}
	}
}

func TestUniformAndLogNormal(t *testing.T) {
	u := Uniform{Lo: 2, Hi: 6}
	if u.Mean() != 4 || math.Abs(u.StdDev()-4/math.Sqrt(12)) > 1e-15 {
		t.Error("uniform moments wrong")
	}
	if u.Quantile(0.25) != 3 {
		t.Error("uniform quantile wrong")
	}
	l := LogNormal{MuLog: 0, SigmaLog: 0.5}
	if math.Abs(l.Mean()-math.Exp(0.125)) > 1e-12 {
		t.Error("lognormal mean wrong")
	}
	if got := l.CDF(l.Quantile(0.37)); math.Abs(got-0.37) > 1e-12 {
		t.Error("lognormal round trip failed")
	}
}

func TestGaussHermiteExactness(t *testing.T) {
	// n-point Gauss–Hermite integrates monomials up to degree 2n−1 exactly
	// against N(0,1); E[Z^k] = (k−1)!! for even k, 0 for odd.
	doubleFact := func(k int) float64 {
		f := 1.0
		for i := k; i > 1; i -= 2 {
			f *= float64(i)
		}
		return f
	}
	for n := 1; n <= 12; n++ {
		r, err := GaussHermite(n)
		if err != nil {
			t.Fatal(err)
		}
		wsum := 0.0
		for _, w := range r.Weights {
			wsum += w
		}
		if math.Abs(wsum-1) > 1e-12 {
			t.Fatalf("n=%d: weights sum to %g", n, wsum)
		}
		for k := 0; k <= 2*n-1; k++ {
			got := 0.0
			for i := range r.Nodes {
				got += r.Weights[i] * math.Pow(r.Nodes[i], float64(k))
			}
			want := 0.0
			if k%2 == 0 {
				want = doubleFact(k - 1)
			}
			// Odd moments vanish by cancellation of terms of size ≈ (k+1)!!,
			// so the tolerance must scale with that magnitude.
			tol := 1e-10 * (1 + doubleFact(k+1))
			if math.Abs(got-want) > tol {
				t.Fatalf("n=%d: E[Z^%d] = %g, want %g", n, k, got, want)
			}
		}
	}
}

func TestGaussLegendreExactness(t *testing.T) {
	for n := 1; n <= 12; n++ {
		r, err := GaussLegendre(n)
		if err != nil {
			t.Fatal(err)
		}
		for k := 0; k <= 2*n-1; k++ {
			got := 0.0
			for i := range r.Nodes {
				got += r.Weights[i] * math.Pow(r.Nodes[i], float64(k))
			}
			want := 1 / float64(k+1) // ∫₀¹ u^k du
			if math.Abs(got-want) > 1e-12 {
				t.Fatalf("n=%d: ∫u^%d = %g, want %g", n, k, got, want)
			}
		}
	}
}

func TestSobolValidityConstraints(t *testing.T) {
	for d, p := range sobolPoly {
		for k, mk := range p.m {
			if mk%2 == 0 {
				t.Errorf("dim %d: m_%d = %d is even", d+2, k+1, mk)
			}
			if mk >= 1<<uint(k+1) {
				t.Errorf("dim %d: m_%d = %d ≥ 2^%d", d+2, k+1, mk, k+1)
			}
		}
		if int(p.s) != len(p.m) {
			t.Errorf("dim %d: degree %d but %d initial values", d+2, p.s, len(p.m))
		}
	}
}

func TestSobolStratification(t *testing.T) {
	// The first 2^k points of every Sobol' dimension must hit each dyadic
	// cell [i/2^k, (i+1)/2^k) exactly once — the defining (t,m,s)-net
	// property for valid direction numbers.
	d := MaxSobolDim()
	s, err := NewSobol(d)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []uint{4, 6} {
		n := 1 << k
		counts := make([][]int, d)
		for j := range counts {
			counts[j] = make([]int, n)
		}
		dst := make([]float64, d)
		// Each dimension is a base-2 (0,1)-sequence, so the dyadic index
		// block [n, 2n) is stratified; Sample(i) maps to sequence index i+1
		// (the degenerate origin is skipped), hence arguments [n−1, 2n−1).
		for i := n - 1; i < 2*n-1; i++ {
			s.Sample(i, dst)
			for j, v := range dst {
				if v < 0 || v >= 1 {
					t.Fatalf("point outside [0,1): %g", v)
				}
				counts[j][int(v*float64(n))]++
			}
		}
		for j := range counts {
			for c, cnt := range counts[j] {
				if cnt != 1 {
					t.Fatalf("dim %d: dyadic cell %d/%d hit %d times", j, c, n, cnt)
				}
			}
		}
	}
}

func TestHaltonStratificationDim0(t *testing.T) {
	h, err := NewHalton(3, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Base-2 radical inverse: first 8 points fill eighths exactly once.
	counts := make([]int, 8)
	dst := make([]float64, 3)
	for i := 0; i < 8; i++ {
		h.Sample(i, dst)
		counts[int(dst[0]*8)]++
	}
	for c, cnt := range counts {
		if cnt != 1 {
			t.Errorf("octant %d hit %d times", c, cnt)
		}
	}
}

func TestLatinHypercubeStratification(t *testing.T) {
	const m = 64
	l, err := NewLatinHypercube(5, m, 7)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([][]int, 5)
	for j := range counts {
		counts[j] = make([]int, m)
	}
	dst := make([]float64, 5)
	for i := 0; i < m; i++ {
		l.Sample(i, dst)
		for j, v := range dst {
			counts[j][int(v*float64(m))]++
		}
	}
	for j := range counts {
		for b, c := range counts[j] {
			if c != 1 {
				t.Fatalf("dim %d bin %d hit %d times — not a Latin hypercube", j, b, c)
			}
		}
	}
}

func TestPseudoRandomDeterministicPerIndex(t *testing.T) {
	s := PseudoRandom{D: 4, Seed: 99}
	a := make([]float64, 4)
	b := make([]float64, 4)
	s.Sample(17, a)
	s.Sample(17, b)
	for j := range a {
		if a[j] != b[j] {
			t.Fatal("same index produced different points")
		}
	}
	s.Sample(18, b)
	same := true
	for j := range a {
		if a[j] != b[j] {
			same = false
		}
	}
	if same {
		t.Fatal("different indices produced identical points")
	}
}

// polyModel is an analytic test model: f(x) = Σ c_j x_j + q·x_0·x_1.
type polyModel struct {
	c []float64
	q float64
}

func (m *polyModel) Dim() int        { return len(m.c) }
func (m *polyModel) NumOutputs() int { return 1 }
func (m *polyModel) Eval(p, out []float64) error {
	v := 0.0
	for j, cj := range m.c {
		v += cj * p[j]
	}
	v += m.q * p[0] * p[1]
	out[0] = v
	return nil
}

func TestEnsembleLinearModelStatistics(t *testing.T) {
	// f = 2x₀ + 3x₁ with independent normals: exact mean and variance known.
	dists := []Dist{Normal{1, 0.5}, Normal{-2, 0.25}}
	model := &polyModel{c: []float64{2, 3}}
	ens, err := RunEnsemble(SingleFactory(model), dists, PseudoRandom{D: 2, Seed: 4}, EnsembleOptions{Samples: 20000})
	if err != nil {
		t.Fatal(err)
	}
	wantMean := 2.0*1 + 3.0*(-2)
	wantStd := math.Sqrt(4*0.25 + 9*0.0625)
	if math.Abs(ens.Mean(0)-wantMean) > 0.03 {
		t.Errorf("mean %g, want %g", ens.Mean(0), wantMean)
	}
	if math.Abs(ens.StdDev(0)-wantStd) > 0.03 {
		t.Errorf("std %g, want %g", ens.StdDev(0), wantStd)
	}
	if math.Abs(ens.MCError(0)-ens.StdDev(0)/math.Sqrt(20000)) > 1e-12 {
		t.Error("MC error estimator inconsistent with eq. (6)")
	}
}

func TestEnsembleWorkerCountInvariance(t *testing.T) {
	dists := []Dist{Normal{0, 1}, Normal{0, 1}, Normal{0, 1}}
	model := &polyModel{c: []float64{1, 2, 3}, q: 0.5}
	run := func(workers int) []float64 {
		ens, err := RunEnsemble(SingleFactory(model), dists, PseudoRandom{D: 3, Seed: 11},
			EnsembleOptions{Samples: 500, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		return []float64{ens.Mean(0), ens.StdDev(0)}
	}
	// Note: SingleFactory shares the (stateless) model; outputs are stored
	// per index so the statistics are exactly order independent.
	a := run(1)
	b := run(4)
	if a[0] != b[0] || a[1] != b[1] {
		t.Errorf("worker count changed results: %v vs %v", a, b)
	}
}

func TestQMCBeatsMCOnSmoothModel(t *testing.T) {
	// Integration error of Sobol' QMC should be well below MC at equal M.
	dists := []Dist{Uniform{0, 1}, Uniform{0, 1}, Uniform{0, 1}}
	model := &polyModel{c: []float64{1, 1, 1}}
	exact := 1.5
	const m = 4096
	sob, err := NewSobol(3)
	if err != nil {
		t.Fatal(err)
	}
	run := func(s Sampler) float64 {
		ens, err := RunEnsemble(SingleFactory(model), dists, s, EnsembleOptions{Samples: m})
		if err != nil {
			t.Fatal(err)
		}
		return math.Abs(ens.Mean(0) - exact)
	}
	errMC := run(PseudoRandom{D: 3, Seed: 5})
	errQMC := run(sob)
	if errQMC > errMC {
		t.Errorf("Sobol' error %g should beat MC error %g at M=%d", errQMC, errMC, m)
	}
	if errQMC > 1e-3 {
		t.Errorf("Sobol' error %g suspiciously large", errQMC)
	}
}

func TestTensorCollocationExactForPolynomial(t *testing.T) {
	// f = 2x₀ + 3x₁ + 0.5x₀x₁ with normals: 3-point tensor Gauss is exact.
	dists := []Dist{Normal{1, 0.5}, Normal{-2, 0.25}}
	model := &polyModel{c: []float64{2, 3}, q: 0.5}
	res, err := TensorCollocation(SingleFactory(model), dists, 3)
	if err != nil {
		t.Fatal(err)
	}
	// E[f] = 2µ₀ + 3µ₁ + 0.5µ₀µ₁.
	wantMean := 2.0*1 + 3.0*(-2) + 0.5*1*(-2)
	if math.Abs(res.Mean[0]-wantMean) > 1e-10 {
		t.Errorf("mean %g, want %g", res.Mean[0], wantMean)
	}
	// Var[f] = a²σ₀² + b²σ₁² + q²(σ₀²σ₁² + µ₀²σ₁² + µ₁²σ₀²) + cross terms:
	// f = (2 + 0.5x₁)x₀ + 3x₁ ⇒ exact variance via law of total variance.
	// Computed symbolically: Var = E[(2+0.5x₁)²]σ₀² + Var[(2+0.5x₁)µ₀ + 3x₁].
	ex1 := (2.0 + 0.5*(-2))
	varInner := ex1*ex1 + 0.5*0.5*0.0625 // E[(2+0.5x₁)²] = (2+0.5µ₁)² + 0.25σ₁²
	varOuter := (0.5*1 + 3) * (0.5*1 + 3) * 0.0625
	wantVar := varInner*0.25 + varOuter
	if math.Abs(res.Variance[0]-wantVar) > 1e-10 {
		t.Errorf("variance %g, want %g", res.Variance[0], wantVar)
	}
}

func TestSmolyakMatchesTensorOnSmoothModel(t *testing.T) {
	dists := []Dist{Normal{0.17, 0.048}, Normal{0.17, 0.048}, Normal{0.17, 0.048}}
	model := &polyModel{c: []float64{1, 2, 3}, q: 1.5}
	tens, err := TensorCollocation(SingleFactory(model), dists, 4)
	if err != nil {
		t.Fatal(err)
	}
	smol, err := SmolyakCollocation(SingleFactory(model), dists, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(smol.Mean[0]-tens.Mean[0]) > 1e-8 {
		t.Errorf("Smolyak mean %g vs tensor %g", smol.Mean[0], tens.Mean[0])
	}
	if math.Abs(smol.Variance[0]-tens.Variance[0]) > 1e-6*(1+tens.Variance[0]) {
		t.Errorf("Smolyak var %g vs tensor %g", smol.Variance[0], tens.Variance[0])
	}
	if smol.Evaluations >= tens.Evaluations {
		t.Errorf("Smolyak used %d evals, tensor only %d", smol.Evaluations, tens.Evaluations)
	}
}

func TestPCERecoverLinearModel(t *testing.T) {
	dists := []Dist{Normal{1, 0.5}, Normal{-2, 0.25}}
	model := &polyModel{c: []float64{2, 3}}
	ens, err := RunEnsemble(SingleFactory(model), dists, PseudoRandom{D: 2, Seed: 21}, EnsembleOptions{Samples: 200})
	if err != nil {
		t.Fatal(err)
	}
	pce, err := FitPCE(dists, ens.Params, ens.Outputs, 2)
	if err != nil {
		t.Fatal(err)
	}
	wantMean := -4.0
	wantVar := 4*0.25 + 9*0.0625
	if math.Abs(pce.Mean(0)-wantMean) > 1e-6 {
		t.Errorf("PCE mean %g, want %g", pce.Mean(0), wantMean)
	}
	if math.Abs(pce.Variance(0)-wantVar) > 1e-6 {
		t.Errorf("PCE var %g, want %g", pce.Variance(0), wantVar)
	}
	// Sobol indices of the additive model: S_j = c_j²σ_j²/Var.
	s0 := 4 * 0.25 / wantVar
	s1 := 9 * 0.0625 / wantVar
	if math.Abs(pce.MainSobol(0, 0)-s0) > 1e-6 || math.Abs(pce.MainSobol(0, 1)-s1) > 1e-6 {
		t.Errorf("PCE Sobol (%g, %g), want (%g, %g)", pce.MainSobol(0, 0), pce.MainSobol(0, 1), s0, s1)
	}
	// Additive model: total == main.
	if math.Abs(pce.TotalSobol(0, 0)-s0) > 1e-6 {
		t.Errorf("total Sobol %g, want %g", pce.TotalSobol(0, 0), s0)
	}
	// Surrogate reproduces the model.
	x := []float64{1.3, -1.7}
	if got := pce.Eval(dists, x, 0); math.Abs(got-(2*1.3+3*-1.7)) > 1e-6 {
		t.Errorf("surrogate eval %g", got)
	}
}

func TestSaltelliAdditiveModel(t *testing.T) {
	dists := []Dist{Normal{0, 1}, Normal{0, 2}, Normal{0, 0.5}}
	model := &polyModel{c: []float64{1, 1, 1}}
	idx, err := Saltelli(SingleFactory(model), dists, 4000, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	varTot := 1.0 + 4 + 0.25
	want := []float64{1 / varTot, 4 / varTot, 0.25 / varTot}
	for j := range want {
		if math.Abs(idx.Main[j]-want[j]) > 0.05 {
			t.Errorf("S_%d = %g, want %g", j, idx.Main[j], want[j])
		}
		if math.Abs(idx.Total[j]-want[j]) > 0.05 {
			t.Errorf("T_%d = %g, want %g", j, idx.Total[j], want[j])
		}
	}
	if idx.Evals != 4000*(3+2) {
		t.Errorf("evaluation count %d, want %d", idx.Evals, 4000*5)
	}
}

func TestTransformPointClampsEndpoints(t *testing.T) {
	dst := make([]float64, 1)
	TransformPoint([]Dist{Normal{0, 1}}, []float64{0}, dst)
	if math.IsNaN(dst[0]) || math.IsInf(dst[0], 0) {
		t.Error("endpoint not clamped")
	}
}

func TestHermiteOrthonormality(t *testing.T) {
	// Check ⟨He_m, He_n⟩ = δ_mn under N(0,1) via high-order quadrature.
	r, err := GaussHermite(30)
	if err != nil {
		t.Fatal(err)
	}
	f := func(m, n uint8) bool {
		mm, nn := int(m%6), int(n%6)
		got := 0.0
		for i := range r.Nodes {
			got += r.Weights[i] * hermiteProb(mm, r.Nodes[i]) * hermiteProb(nn, r.Nodes[i])
		}
		want := 0.0
		if mm == nn {
			want = 1
		}
		return math.Abs(got-want) < 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
