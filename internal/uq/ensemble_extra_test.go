package uq

import (
	"errors"
	"math"
	"testing"
)

// failingModel fails on selected sample values to exercise the failure
// accounting of the ensemble driver.
type failingModel struct{ failAbove float64 }

func (m *failingModel) Dim() int        { return 1 }
func (m *failingModel) NumOutputs() int { return 1 }
func (m *failingModel) Eval(p, out []float64) error {
	if p[0] > m.failAbove {
		return errors.New("synthetic divergence")
	}
	out[0] = p[0]
	return nil
}

func TestEnsemblePartialFailures(t *testing.T) {
	dists := []Dist{Uniform{0, 1}}
	ens, err := RunEnsemble(SingleFactory(&failingModel{failAbove: 0.5}), dists,
		PseudoRandom{D: 1, Seed: 3}, EnsembleOptions{Samples: 200})
	if err != nil {
		t.Fatal(err)
	}
	if ens.Failures == 0 || ens.Failures == 200 {
		t.Fatalf("failures = %d, expected a partial count", ens.Failures)
	}
	if ens.Succeeded()+ens.Failures != 200 {
		t.Error("accounting broken")
	}
	// Statistics exclude failed samples: all retained outputs ≤ 0.5.
	for _, v := range ens.OutputSeries(0) {
		if v > 0.5 {
			t.Fatalf("failed sample leaked into statistics: %g", v)
		}
	}
	if q := ens.Quantile(0, 1.0); q > 0.5 {
		t.Error("quantile includes failed samples")
	}
}

func TestEnsembleAllFailures(t *testing.T) {
	dists := []Dist{Uniform{0.9, 1}}
	_, err := RunEnsemble(SingleFactory(&failingModel{failAbove: 0.1}), dists,
		PseudoRandom{D: 1, Seed: 3}, EnsembleOptions{Samples: 10})
	if err == nil {
		t.Error("fully failed ensemble should error")
	}
}

func TestEnsembleDimensionChecks(t *testing.T) {
	dists := []Dist{Uniform{0, 1}, Uniform{0, 1}}
	_, err := RunEnsemble(SingleFactory(&failingModel{}), dists,
		PseudoRandom{D: 2, Seed: 3}, EnsembleOptions{Samples: 4})
	if err == nil {
		t.Error("model/dists dimension mismatch accepted")
	}
	_, err = RunEnsemble(SingleFactory(&failingModel{failAbove: 2}), dists[:1],
		PseudoRandom{D: 2, Seed: 3}, EnsembleOptions{Samples: 4})
	if err == nil {
		t.Error("sampler/dists dimension mismatch accepted")
	}
	_, err = RunEnsemble(SingleFactory(&failingModel{failAbove: 2}), dists[:1],
		PseudoRandom{D: 1, Seed: 3}, EnsembleOptions{Samples: 0})
	if err == nil {
		t.Error("zero samples accepted")
	}
}

func TestMeanStdAllMatchScalarAccessors(t *testing.T) {
	dists := []Dist{Normal{2, 0.5}}
	model := &failingModel{failAbove: math.Inf(1)}
	ens, err := RunEnsemble(SingleFactory(model), dists,
		PseudoRandom{D: 1, Seed: 9}, EnsembleOptions{Samples: 300})
	if err != nil {
		t.Fatal(err)
	}
	means := ens.MeanAll()
	stds := ens.StdAll()
	if math.Abs(means[0]-ens.Mean(0)) > 1e-12 {
		t.Error("MeanAll disagrees with Mean")
	}
	if math.Abs(stds[0]-ens.StdDev(0)) > 1e-12 {
		t.Error("StdAll disagrees with StdDev")
	}
}

func TestHaltonShiftDeterministicAndDifferent(t *testing.T) {
	a, err := NewHalton(4, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewHalton(4, 42)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewHalton(4, 43)
	if err != nil {
		t.Fatal(err)
	}
	pa := make([]float64, 4)
	pb := make([]float64, 4)
	pc := make([]float64, 4)
	a.Sample(10, pa)
	b.Sample(10, pb)
	c.Sample(10, pc)
	for j := range pa {
		if pa[j] != pb[j] {
			t.Fatal("same seed produced different shifts")
		}
	}
	same := true
	for j := range pa {
		if pa[j] != pc[j] {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical shifts")
	}
}

func TestSobolRejectsTooManyDims(t *testing.T) {
	if _, err := NewSobol(MaxSobolDim() + 1); err == nil {
		t.Error("over-dimension Sobol accepted")
	}
	if _, err := NewHalton(len(primes)+1, 0); err == nil {
		t.Error("over-dimension Halton accepted")
	}
	if _, err := NewLatinHypercube(0, 5, 1); err == nil {
		t.Error("zero-dimension LHS accepted")
	}
}

func TestPCEInsufficientSamplesRejected(t *testing.T) {
	dists := []Dist{Normal{0, 1}, Normal{0, 1}}
	params := [][]float64{{0, 0}, {1, 1}}
	outputs := [][]float64{{1}, {2}}
	if _, err := FitPCE(dists, params, outputs, 3); err == nil {
		t.Error("under-determined PCE accepted")
	}
}
