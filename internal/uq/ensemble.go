package uq

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"etherm/internal/stats"
)

// Model is a deterministic forward model mapping input parameters to output
// quantities of interest (for the paper: 12 wire elongations → wire
// temperatures at every time step).
type Model interface {
	// Dim returns the number of uncertain inputs.
	Dim() int
	// NumOutputs returns the number of outputs per evaluation.
	NumOutputs() int
	// Eval evaluates the model at params (length Dim) into out (length
	// NumOutputs). Eval must be safe for repeated calls on the same Model
	// instance; parallelism happens across instances.
	Eval(params, out []float64) error
}

// ModelFactory produces an independent model instance per parallel worker
// (e.g. a cloned simulator sharing the immutable mesh assembly).
type ModelFactory func() (Model, error)

// SingleFactory wraps one model for serial execution.
func SingleFactory(m Model) ModelFactory {
	return func() (Model, error) { return m, nil }
}

// EnsembleOptions controls an ensemble run.
type EnsembleOptions struct {
	Samples int // number of model evaluations M
	Workers int // parallel workers; 0 = GOMAXPROCS (serial evaluation order is deterministic anyway)

	// OnSample, when non-nil, is invoked after every model evaluation with
	// the sample index and its error (nil on success). It is called from
	// worker goroutines concurrently and must be safe for parallel use; it
	// exists for progress reporting and must not block for long.
	OnSample func(i int, err error)
}

// Ensemble holds the results of a sampling study. All sample outputs are
// stored so statistics are bit-identical regardless of worker count.
// Derived statistics (moments, sorted output series for quantiles) are
// cached lazily on first use; the stored samples are treated as immutable
// once the run finishes.
type Ensemble struct {
	SamplerName string
	M           int
	NumOutputs  int
	Params      [][]float64 // input parameters per sample
	Outputs     [][]float64 // outputs per sample
	Failures    int

	mu     sync.Mutex
	means  []float64
	stds   []float64
	sorted map[int][]float64
}

// RunEnsemble evaluates M sampler points through models from the factory,
// storing every sample (the exact-quantile path of the streaming campaign
// driver). Sample i is deterministic: sampler point i transformed through
// dists. Failed evaluations are recorded and excluded from statistics; an
// error is returned only when every evaluation fails or setup fails.
func RunEnsemble(factory ModelFactory, dists []Dist, s Sampler, opt EnsembleOptions) (*Ensemble, error) {
	if opt.Samples <= 0 {
		return nil, fmt.Errorf("uq: ensemble needs a positive sample count")
	}
	res, err := RunCampaign(context.Background(), factory, dists, s, CampaignOptions{
		MaxSamples:   opt.Samples,
		Workers:      opt.Workers,
		StoreSamples: true,
		OnSample:     opt.OnSample,
	})
	if err != nil {
		return nil, err
	}
	return res.Ensemble, nil
}

// Succeeded returns the number of successful evaluations.
func (e *Ensemble) Succeeded() int { return e.M - e.Failures }

// OutputSeries returns the values of output j across successful samples.
func (e *Ensemble) OutputSeries(j int) []float64 {
	out := make([]float64, 0, e.Succeeded())
	for _, o := range e.Outputs {
		if o != nil {
			out = append(out, o[j])
		}
	}
	return out
}

// moments returns the cached per-output means and standard deviations,
// computing both on first use with the same streaming fold as the
// campaign's accumulator path.
func (e *Ensemble) moments() (means, stds []float64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.means == nil {
		vm := stats.NewVectorMoments(e.NumOutputs)
		for _, o := range e.Outputs {
			if o != nil {
				vm.Add(o)
			}
		}
		e.means = vm.Mean
		e.stds = vm.StdAll()
	}
	return e.means, e.stds
}

// sortedSeries returns the cached ascending output series of output j,
// sorting it once on first use so repeated Quantile calls are O(1) sorts.
func (e *Ensemble) sortedSeries(j int) []float64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.sorted == nil {
		e.sorted = make(map[int][]float64)
	}
	s, ok := e.sorted[j]
	if !ok {
		s = make([]float64, 0, e.Succeeded())
		for _, o := range e.Outputs {
			if o != nil {
				s = append(s, o[j])
			}
		}
		sort.Float64s(s)
		e.sorted[j] = s
	}
	return s
}

// Mean returns the sample mean of output j.
func (e *Ensemble) Mean(j int) float64 {
	means, _ := e.moments()
	return means[j]
}

// StdDev returns the unbiased sample standard deviation of output j.
func (e *Ensemble) StdDev(j int) float64 {
	_, stds := e.moments()
	return stds[j]
}

// MCError returns the paper's eq. (6) estimate σ_MC/√M for output j.
func (e *Ensemble) MCError(j int) float64 {
	return stats.MCError(e.StdDev(j), e.Succeeded())
}

// Quantile returns the p-quantile of output j from the cached sorted
// series.
func (e *Ensemble) Quantile(j int, p float64) float64 {
	return stats.QuantileSorted(e.sortedSeries(j), p)
}

// MeanAll returns the means of all outputs.
func (e *Ensemble) MeanAll() []float64 {
	means, _ := e.moments()
	return append([]float64(nil), means...)
}

// StdAll returns the standard deviations of all outputs.
func (e *Ensemble) StdAll() []float64 {
	_, stds := e.moments()
	return append([]float64(nil), stds...)
}
