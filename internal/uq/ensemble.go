package uq

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"etherm/internal/stats"
)

// Model is a deterministic forward model mapping input parameters to output
// quantities of interest (for the paper: 12 wire elongations → wire
// temperatures at every time step).
type Model interface {
	// Dim returns the number of uncertain inputs.
	Dim() int
	// NumOutputs returns the number of outputs per evaluation.
	NumOutputs() int
	// Eval evaluates the model at params (length Dim) into out (length
	// NumOutputs). Eval must be safe for repeated calls on the same Model
	// instance; parallelism happens across instances.
	Eval(params, out []float64) error
}

// ModelFactory produces an independent model instance per parallel worker
// (e.g. a cloned simulator sharing the immutable mesh assembly).
type ModelFactory func() (Model, error)

// SingleFactory wraps one model for serial execution.
func SingleFactory(m Model) ModelFactory {
	return func() (Model, error) { return m, nil }
}

// EnsembleOptions controls an ensemble run.
type EnsembleOptions struct {
	Samples int // number of model evaluations M
	Workers int // parallel workers; 0 = GOMAXPROCS (serial evaluation order is deterministic anyway)

	// OnSample, when non-nil, is invoked after every model evaluation with
	// the sample index and its error (nil on success). It is called from
	// worker goroutines concurrently and must be safe for parallel use; it
	// exists for progress reporting and must not block for long.
	OnSample func(i int, err error)
}

// Ensemble holds the results of a sampling study. All sample outputs are
// stored so statistics are bit-identical regardless of worker count.
type Ensemble struct {
	SamplerName string
	M           int
	NumOutputs  int
	Params      [][]float64 // input parameters per sample
	Outputs     [][]float64 // outputs per sample
	Failures    int
}

// RunEnsemble evaluates M sampler points through models from the factory.
// Sample i is deterministic: sampler point i transformed through dists.
// Failed evaluations are recorded and excluded from statistics; an error is
// returned only when every evaluation fails or setup fails.
func RunEnsemble(factory ModelFactory, dists []Dist, s Sampler, opt EnsembleOptions) (*Ensemble, error) {
	if opt.Samples <= 0 {
		return nil, fmt.Errorf("uq: ensemble needs a positive sample count")
	}
	if s.Dim() != len(dists) {
		return nil, fmt.Errorf("uq: sampler dimension %d does not match %d distributions", s.Dim(), len(dists))
	}
	probe, err := factory()
	if err != nil {
		return nil, fmt.Errorf("uq: model factory: %w", err)
	}
	if probe.Dim() != len(dists) {
		return nil, fmt.Errorf("uq: model dimension %d does not match %d distributions", probe.Dim(), len(dists))
	}
	nOut := probe.NumOutputs()

	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > opt.Samples {
		workers = opt.Samples
	}

	ens := &Ensemble{
		SamplerName: s.Name(),
		M:           opt.Samples,
		NumOutputs:  nOut,
		Params:      make([][]float64, opt.Samples),
		Outputs:     make([][]float64, opt.Samples),
	}

	// Worker models are created serially up front: factories typically clone
	// a shared base simulator, and a lazy in-goroutine clone would race with
	// worker 0 already mutating that base through its first evaluation.
	models := make([]Model, workers)
	models[0] = probe
	for w := 1; w < workers; w++ {
		m, err := factory()
		if err != nil {
			return nil, fmt.Errorf("uq: worker setup: %w", err)
		}
		models[w] = m
	}

	type job struct{ i int }
	jobs := make(chan job)
	var failures sync.Map
	var wg sync.WaitGroup

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			m := models[w]
			u := make([]float64, s.Dim())
			for jb := range jobs {
				i := jb.i
				params := make([]float64, s.Dim())
				out := make([]float64, nOut)
				s.Sample(i, u)
				TransformPoint(dists, u, params)
				err := m.Eval(params, out)
				if opt.OnSample != nil {
					opt.OnSample(i, err)
				}
				if err != nil {
					failures.Store(i, err)
					continue
				}
				ens.Params[i] = params
				ens.Outputs[i] = out
			}
		}(w)
	}
	for i := 0; i < opt.Samples; i++ {
		jobs <- job{i}
	}
	close(jobs)
	wg.Wait()
	failures.Range(func(_, _ any) bool { ens.Failures++; return true })
	if ens.Failures == opt.Samples {
		var first error
		failures.Range(func(_, v any) bool { first = v.(error); return false })
		return nil, fmt.Errorf("uq: every ensemble evaluation failed; first error: %w", first)
	}
	return ens, nil
}

// Succeeded returns the number of successful evaluations.
func (e *Ensemble) Succeeded() int { return e.M - e.Failures }

// OutputSeries returns the values of output j across successful samples.
func (e *Ensemble) OutputSeries(j int) []float64 {
	out := make([]float64, 0, e.Succeeded())
	for _, o := range e.Outputs {
		if o != nil {
			out = append(out, o[j])
		}
	}
	return out
}

// Mean returns the sample mean of output j.
func (e *Ensemble) Mean(j int) float64 { return stats.Mean(e.OutputSeries(j)) }

// StdDev returns the unbiased sample standard deviation of output j.
func (e *Ensemble) StdDev(j int) float64 { return stats.StdDev(e.OutputSeries(j)) }

// MCError returns the paper's eq. (6) estimate σ_MC/√M for output j.
func (e *Ensemble) MCError(j int) float64 {
	return stats.MCError(e.StdDev(j), e.Succeeded())
}

// Quantile returns the p-quantile of output j.
func (e *Ensemble) Quantile(j int, p float64) float64 {
	return stats.Quantile(e.OutputSeries(j), p)
}

// MeanAll returns the means of all outputs.
func (e *Ensemble) MeanAll() []float64 {
	out := make([]float64, e.NumOutputs)
	acc := make([]stats.Welford, e.NumOutputs)
	for _, o := range e.Outputs {
		if o == nil {
			continue
		}
		for j, v := range o {
			acc[j].Add(v)
		}
	}
	for j := range out {
		out[j] = acc[j].Mean
	}
	return out
}

// StdAll returns the standard deviations of all outputs.
func (e *Ensemble) StdAll() []float64 {
	out := make([]float64, e.NumOutputs)
	acc := make([]stats.Welford, e.NumOutputs)
	for _, o := range e.Outputs {
		if o == nil {
			continue
		}
		for j, v := range o {
			acc[j].Add(v)
		}
	}
	for j := range out {
		v := acc[j].Variance()
		if math.IsNaN(v) {
			v = 0
		}
		out[j] = math.Sqrt(v)
	}
	return out
}
