package uq

import (
	"fmt"
	"math"

	"etherm/internal/sparse"
)

// PCE is a polynomial-chaos expansion in normalized probabilists' Hermite
// polynomials over independent standard-normal germs, fitted non-intrusively
// by least-squares regression. Mean, variance and Sobol' indices follow
// analytically from the coefficients.
type PCE struct {
	Dim, Order int
	Indices    [][]int     // multi-indices α, Indices[0] = 0
	Coeff      [][]float64 // [output][basis]
	NumOutputs int
}

// totalOrderIndices enumerates all multi-indices with |α|₁ ≤ p.
func totalOrderIndices(d, p int) [][]int {
	var out [][]int
	idx := make([]int, d)
	var rec func(j, rem int)
	rec = func(j, rem int) {
		if j == d {
			out = append(out, append([]int(nil), idx...))
			return
		}
		for v := 0; v <= rem; v++ {
			idx[j] = v
			rec(j+1, rem-v)
		}
		idx[j] = 0
	}
	rec(0, p)
	return out
}

// hermiteProb evaluates the normalized probabilists' Hermite polynomial
// He_n(x)/√(n!) (orthonormal under N(0,1)).
func hermiteProb(n int, x float64) float64 {
	p0, p1 := 1.0, x
	if n == 0 {
		return 1
	}
	for k := 2; k <= n; k++ {
		p0, p1 = p1, x*p1-float64(k-1)*p0
	}
	return p1 / math.Sqrt(factorial(n))
}

// FitPCE fits a total-order-p expansion from training data: germs are the
// standard-normal transforms of the inputs under the given (normal)
// distributions. The number of samples should exceed ~2× the basis size.
func FitPCE(dists []Dist, params, outputs [][]float64, order int) (*PCE, error) {
	d := len(dists)
	if d == 0 || order < 0 {
		return nil, fmt.Errorf("uq: invalid PCE setup (d=%d, order=%d)", d, order)
	}
	if len(params) != len(outputs) || len(params) == 0 {
		return nil, fmt.Errorf("uq: PCE needs matching, non-empty training data")
	}
	idx := totalOrderIndices(d, order)
	nb := len(idx)
	m := len(params)
	if m < nb {
		return nil, fmt.Errorf("uq: PCE with %d basis functions needs ≥ %d samples, got %d", nb, nb, m)
	}
	nOut := len(outputs[0])

	// Design matrix Ψ (m×nb): ψ_α(ξ_i) with ξ the standard-normal germ.
	psi := make([][]float64, m)
	for i := range psi {
		psi[i] = make([]float64, nb)
		xi := make([]float64, d)
		for j := 0; j < d; j++ {
			// Germ: ξ = Φ⁻¹(F(x)).
			u := dists[j].CDF(params[i][j])
			if u < 1e-15 {
				u = 1e-15
			}
			if u > 1-1e-15 {
				u = 1 - 1e-15
			}
			xi[j] = Normal{0, 1}.Quantile(u)
		}
		for b, alpha := range idx {
			v := 1.0
			for j, a := range alpha {
				if a > 0 {
					v *= hermiteProb(a, xi[j])
				}
			}
			psi[i][b] = v
		}
	}

	// Normal equations ΨᵀΨ c = Ψᵀ y, solved densely per output.
	ata := sparse.NewDense(nb, nb)
	for i := 0; i < m; i++ {
		for a := 0; a < nb; a++ {
			for b := a; b < nb; b++ {
				ata.Add(a, b, psi[i][a]*psi[i][b])
			}
		}
	}
	for a := 0; a < nb; a++ {
		for b := 0; b < a; b++ {
			ata.Set(a, b, ata.At(b, a))
		}
		ata.Add(a, a, 1e-10*float64(m)) // tiny ridge for conditioning
	}
	lu, err := ata.Factor()
	if err != nil {
		return nil, fmt.Errorf("uq: PCE normal equations singular: %w", err)
	}

	p := &PCE{Dim: d, Order: order, Indices: idx, NumOutputs: nOut, Coeff: make([][]float64, nOut)}
	rhs := make([]float64, nb)
	for k := 0; k < nOut; k++ {
		for b := range rhs {
			rhs[b] = 0
		}
		for i := 0; i < m; i++ {
			y := outputs[i][k]
			for b := 0; b < nb; b++ {
				rhs[b] += psi[i][b] * y
			}
		}
		p.Coeff[k] = lu.Solve(rhs)
	}
	return p, nil
}

// Mean returns the PCE mean of output k (the constant coefficient).
func (p *PCE) Mean(k int) float64 { return p.Coeff[k][0] }

// Variance returns the PCE variance of output k: Σ_{α≠0} c_α² for the
// orthonormal basis.
func (p *PCE) Variance(k int) float64 {
	v := 0.0
	for b := 1; b < len(p.Indices); b++ {
		c := p.Coeff[k][b]
		v += c * c
	}
	return v
}

// StdDev returns √Variance for output k.
func (p *PCE) StdDev(k int) float64 { return math.Sqrt(p.Variance(k)) }

// MainSobol returns the first-order Sobol' index of input j for output k:
// the variance share of basis terms involving only dimension j.
func (p *PCE) MainSobol(k, j int) float64 {
	tot := p.Variance(k)
	if tot == 0 {
		return 0
	}
	s := 0.0
	for b := 1; b < len(p.Indices); b++ {
		alpha := p.Indices[b]
		only := alpha[j] > 0
		for jj, a := range alpha {
			if jj != j && a > 0 {
				only = false
				break
			}
		}
		if only {
			c := p.Coeff[k][b]
			s += c * c
		}
	}
	return s / tot
}

// TotalSobol returns the total-effect Sobol' index of input j for output k:
// the variance share of all basis terms involving dimension j.
func (p *PCE) TotalSobol(k, j int) float64 {
	tot := p.Variance(k)
	if tot == 0 {
		return 0
	}
	s := 0.0
	for b := 1; b < len(p.Indices); b++ {
		if p.Indices[b][j] > 0 {
			c := p.Coeff[k][b]
			s += c * c
		}
	}
	return s / tot
}

// NumBasis returns the number of basis functions in the expansion.
func (p *PCE) NumBasis() int { return len(p.Indices) }

// BasisGerm fills psi (length NumBasis) with the orthonormal basis
// evaluated at the standard-normal germ vector xi (length Dim). Splitting
// basis evaluation from the coefficient dot product lets one germ serve
// every output — the surrogate query path evaluates all wires from a
// single basis vector.
func (p *PCE) BasisGerm(xi, psi []float64) {
	// Per-dimension Hermite table up to the expansion order.
	stride := p.Order + 1
	h := make([]float64, p.Dim*stride)
	for j := 0; j < p.Dim; j++ {
		for a := 0; a <= p.Order; a++ {
			h[j*stride+a] = hermiteProb(a, xi[j])
		}
	}
	for b, alpha := range p.Indices {
		v := 1.0
		for j, a := range alpha {
			if a > 0 {
				v *= h[j*stride+a]
			}
		}
		psi[b] = v
	}
}

// DotBasis returns the expansion value of output k for a basis vector
// produced by BasisGerm.
func (p *PCE) DotBasis(psi []float64, k int) float64 {
	v := 0.0
	for b, c := range p.Coeff[k] {
		v += c * psi[b]
	}
	return v
}

// EvalGerm evaluates output k directly at a standard-normal germ vector.
func (p *PCE) EvalGerm(xi []float64, k int) float64 {
	psi := make([]float64, len(p.Indices))
	p.BasisGerm(xi, psi)
	return p.DotBasis(psi, k)
}

// Eval evaluates the fitted surrogate at physical parameters x for output k.
func (p *PCE) Eval(dists []Dist, x []float64, k int) float64 {
	xi := make([]float64, p.Dim)
	for j := 0; j < p.Dim; j++ {
		u := dists[j].CDF(x[j])
		if u < 1e-15 {
			u = 1e-15
		}
		if u > 1-1e-15 {
			u = 1 - 1e-15
		}
		xi[j] = Normal{0, 1}.Quantile(u)
	}
	v := 0.0
	for b, alpha := range p.Indices {
		t := 1.0
		for j, a := range alpha {
			if a > 0 {
				t *= hermiteProb(a, xi[j])
			}
		}
		v += p.Coeff[k][b] * t
	}
	return v
}
