package uq

import (
	"fmt"

	"etherm/internal/stats"
)

// SobolIndices holds Saltelli-estimated sensitivity indices for one output.
type SobolIndices struct {
	Main  []float64 // first-order S_j
	Total []float64 // total-effect T_j
	Evals int
}

// Saltelli estimates first-order and total Sobol' sensitivity indices of the
// model outputs with the Saltelli (2010) pick–freeze scheme: two base sample
// matrices A and B plus the d hybrid matrices AB_j, costing M·(d+2)
// evaluations. The global sensitivity of the wire temperatures with respect
// to the individual wire elongations — the question raised in the paper's
// introduction — is exactly this analysis.
func Saltelli(factory ModelFactory, dists []Dist, m int, seed uint64, output int) (*SobolIndices, error) {
	d := len(dists)
	if d == 0 || m < 2 {
		return nil, fmt.Errorf("uq: Saltelli needs d ≥ 1 and M ≥ 2 (got d=%d, M=%d)", d, m)
	}
	model, err := factory()
	if err != nil {
		return nil, err
	}
	if output < 0 || output >= model.NumOutputs() {
		return nil, fmt.Errorf("uq: output index %d out of range", output)
	}

	// Base designs from two independent halves of a scrambled-shift Halton
	// stream (any two independent U(0,1)^d designs work).
	sa := PseudoRandom{D: d, Seed: seed}
	sb := PseudoRandom{D: d, Seed: seed ^ 0xabcdef1234567890}

	eval := func(params []float64) (float64, error) {
		out := make([]float64, model.NumOutputs())
		if err := model.Eval(params, out); err != nil {
			return 0, err
		}
		return out[output], nil
	}

	a := make([][]float64, m)
	b := make([][]float64, m)
	fa := make([]float64, m)
	fb := make([]float64, m)
	u := make([]float64, d)
	evals := 0
	for i := 0; i < m; i++ {
		a[i] = make([]float64, d)
		b[i] = make([]float64, d)
		sa.Sample(i, u)
		TransformPoint(dists, u, a[i])
		sb.Sample(i, u)
		TransformPoint(dists, u, b[i])
		var err error
		if fa[i], err = eval(a[i]); err != nil {
			return nil, err
		}
		if fb[i], err = eval(b[i]); err != nil {
			return nil, err
		}
		evals += 2
	}

	// Variance of the pooled base evaluations.
	pooled := append(append([]float64(nil), fa...), fb...)
	varF := stats.PopVariance(pooled)
	if varF == 0 {
		return nil, fmt.Errorf("uq: model output has zero variance; Sobol indices undefined")
	}

	res := &SobolIndices{Main: make([]float64, d), Total: make([]float64, d)}
	params := make([]float64, d)
	for j := 0; j < d; j++ {
		sumMain, sumTotal := 0.0, 0.0
		for i := 0; i < m; i++ {
			copy(params, a[i])
			params[j] = b[i][j] // AB_j: column j from B
			fab, err := eval(params)
			if err != nil {
				return nil, err
			}
			evals++
			sumMain += fb[i] * (fab - fa[i])
			diff := fa[i] - fab
			sumTotal += diff * diff
		}
		res.Main[j] = sumMain / float64(m) / varF
		res.Total[j] = sumTotal / (2 * float64(m)) / varF
	}
	res.Evals = evals
	return res, nil
}
