package uq

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// statsJSON canonicalizes accumulator state for bit-for-bit comparison:
// identical bits marshal to identical bytes.
func statsJSON(t *testing.T, c *CampaignResult) string {
	t.Helper()
	data, err := json.Marshal(c.Stats)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

func TestPlanShardsPartition(t *testing.T) {
	for _, tc := range []struct{ m, k, b int }{
		{1000, 1, 64}, {1000, 2, 64}, {1000, 4, 64}, {1000, 7, 64},
		{100, 4, 8}, {5, 4, 8}, {64, 64, 1}, {17, 3, 4}, {6, 8, 2},
	} {
		plan, err := PlanShards(tc.m, tc.k, tc.b)
		if err != nil {
			t.Fatal(err)
		}
		prevEnd := 0
		for k := 0; k < plan.NumShards; k++ {
			start, end := plan.Shard(k)
			if start != prevEnd {
				t.Fatalf("plan %+v: shard %d starts at %d, previous ended at %d", *plan, k, start, prevEnd)
			}
			if start%plan.BlockSize != 0 && start != plan.MaxSamples {
				t.Fatalf("plan %+v: shard %d start %d not block-aligned", *plan, k, start)
			}
			if end < start || end > plan.MaxSamples {
				t.Fatalf("plan %+v: shard %d range [%d,%d) invalid", *plan, k, start, end)
			}
			prevEnd = end
		}
		if prevEnd != tc.m {
			t.Fatalf("plan %+v: shards cover [0,%d), want [0,%d)", *plan, prevEnd, tc.m)
		}
	}
	if _, err := PlanShards(0, 2, 8); err == nil {
		t.Error("zero budget accepted")
	}
	if _, err := PlanShards(10, 0, 8); err == nil {
		t.Error("zero shards accepted")
	}
	if _, err := PlanShards(10, 2, -1); err == nil {
		t.Error("negative block size accepted")
	}
	plan, err := PlanShards(10, 2, 0)
	if err != nil || plan.BlockSize != DefaultShardBlockSize {
		t.Errorf("default block size not applied: %+v (%v)", plan, err)
	}
}

// TestShardedCampaignInvariantAcrossK is the core guarantee of the sharded
// layer: for a fixed plan granularity, the merged result is bit-identical
// for ANY shard count and ANY per-shard worker count, including shards that
// contain isolated sample failures.
func TestShardedCampaignInvariantAcrossK(t *testing.T) {
	dists := normDists(2)
	const m, block = 600, 16
	var want string
	var wantRes *CampaignResult
	for i, tc := range []struct{ k, workers int }{
		{1, 1}, {1, 4}, {2, 3}, {4, 1}, {4, 8}, {8, 2}, {40, 1},
	} {
		plan, err := PlanShards(m, tc.k, block)
		if err != nil {
			t.Fatal(err)
		}
		camp, err := RunShardedCampaign(context.Background(), SingleFactory(&vecModel{nOut: 4}), dists,
			PseudoRandom{D: 2, Seed: 99}, plan, ShardOptions{Workers: tc.workers, Threshold: 0.5, Tag: "inv"})
		if err != nil {
			t.Fatal(err)
		}
		if camp.Evaluated != m || camp.StopReason != StopBudget {
			t.Fatalf("K=%d: accounting %d/%s", tc.k, camp.Evaluated, camp.StopReason)
		}
		got := statsJSON(t, camp)
		if i == 0 {
			want, wantRes = got, camp
			continue
		}
		if got != want {
			t.Errorf("K=%d workers=%d: merged accumulator state differs from K=1", tc.k, tc.workers)
		}
		if camp.Failures != wantRes.Failures || camp.Tag != wantRes.Tag || camp.SamplerFP != wantRes.SamplerFP {
			t.Errorf("K=%d: accounting differs from K=1", tc.k)
		}
	}

	// The merged moments must agree with the single-fold streaming campaign
	// to floating-point reshuffling accuracy, and the order-independent
	// accumulators (extrema, exceedance counts) exactly.
	single, err := RunCampaign(context.Background(), SingleFactory(&vecModel{nOut: 4}), dists,
		PseudoRandom{D: 2, Seed: 99}, CampaignOptions{MaxSamples: m, Threshold: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if single.Stats.Ext.GlobalMax() != wantRes.Stats.Ext.GlobalMax() {
		t.Errorf("sharded extrema %g != single-fold %g", wantRes.Stats.Ext.GlobalMax(), single.Stats.Ext.GlobalMax())
	}
	if single.Stats.ExceedAny != wantRes.Stats.ExceedAny {
		t.Errorf("sharded exceedance %+v != single-fold %+v", wantRes.Stats.ExceedAny, single.Stats.ExceedAny)
	}
	for j, mu := range single.MeanAll() {
		if d := wantRes.Stats.Moments.Mean[j] - mu; d > 1e-12 || d < -1e-12 {
			t.Errorf("output %d: sharded mean %g far from single-fold %g", j, wantRes.Stats.Moments.Mean[j], mu)
		}
	}
}

func TestShardedCampaignInvariantWithFailures(t *testing.T) {
	dists := []Dist{Uniform{0, 1}}
	run := func(k int) (*CampaignResult, string) {
		plan, err := PlanShards(500, k, 8)
		if err != nil {
			t.Fatal(err)
		}
		camp, err := RunShardedCampaign(context.Background(), SingleFactory(&failingModel{failAbove: 0.7}), dists,
			PseudoRandom{D: 1, Seed: 3}, plan, ShardOptions{Workers: 3, Threshold: 0.5})
		if err != nil {
			t.Fatal(err)
		}
		return camp, statsJSON(t, camp)
	}
	ref, refJSON := run(1)
	if ref.Failures == 0 {
		t.Fatal("fixture produced no failures; test is vacuous")
	}
	for _, k := range []int{2, 4} {
		camp, got := run(k)
		if got != refJSON || camp.Failures != ref.Failures || camp.Evaluated != ref.Evaluated {
			t.Errorf("K=%d: result differs from K=1 (failures %d vs %d)", k, camp.Failures, ref.Failures)
		}
	}
}

// TestShardCheckpointResume interrupts one shard mid-range and verifies the
// resumed shard reproduces the uninterrupted run bit-for-bit from its
// ".shard-N" file, while the other shard's state file stays untouched.
func TestShardCheckpointResume(t *testing.T) {
	dists := normDists(2)
	plan, err := PlanShards(256, 2, 16)
	if err != nil {
		t.Fatal(err)
	}
	base := filepath.Join(t.TempDir(), "campaign.ckpt")
	opt := ShardOptions{Workers: 1, Threshold: 0.5, Tag: "resume", CheckpointPath: base, CheckpointEvery: 8, Resume: true}

	// Uninterrupted reference for shard 1.
	ref, err := RunShard(context.Background(), SingleFactory(&vecModel{nOut: 3}), dists,
		PseudoRandom{D: 2, Seed: 5}, plan, 1, ShardOptions{Workers: 1, Threshold: 0.5, Tag: "resume"})
	if err != nil {
		t.Fatal(err)
	}

	// Interrupted run: cancel after 40 evaluations.
	ctx, cancel := context.WithCancel(context.Background())
	iopt := opt
	var n int
	iopt.OnSample = func(int, error) {
		if n++; n == 40 {
			cancel()
		}
	}
	partial, err := RunShard(ctx, SingleFactory(&vecModel{nOut: 3}), dists, PseudoRandom{D: 2, Seed: 5}, plan, 1, iopt)
	if err == nil || partial == nil || partial.Complete() {
		t.Fatalf("interrupted shard: err=%v complete=%v", err, partial != nil && partial.Complete())
	}
	if _, statErr := os.Stat(ShardCheckpointPath(base, 1)); statErr != nil {
		t.Fatalf("shard checkpoint missing: %v", statErr)
	}
	if _, statErr := os.Stat(ShardCheckpointPath(base, 0)); !os.IsNotExist(statErr) {
		t.Fatalf("shard 0 state file appeared from a shard 1 run: %v", statErr)
	}

	resumed, err := RunShard(context.Background(), SingleFactory(&vecModel{nOut: 3}), dists,
		PseudoRandom{D: 2, Seed: 5}, plan, 1, opt)
	if err != nil {
		t.Fatal(err)
	}
	refJSON, _ := json.Marshal(ref)
	gotJSON, _ := json.Marshal(resumed)
	if string(refJSON) != string(gotJSON) {
		t.Errorf("resumed shard differs from uninterrupted run:\n%s\nvs\n%s", gotJSON, refJSON)
	}
}

// TestShardCheckpointRejectsStaleState reuses PR 3's fingerprint/tag guard
// per shard: a checkpoint from a different sample stream, model tag or
// shard plan must be rejected, never silently absorbed.
func TestShardCheckpointRejectsStaleState(t *testing.T) {
	dists := normDists(2)
	plan, err := PlanShards(64, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	base := filepath.Join(t.TempDir(), "c.ckpt")
	opt := ShardOptions{Workers: 1, Tag: "model-a", CheckpointPath: base, CheckpointEvery: 4, Resume: true}
	if _, err := RunShard(context.Background(), SingleFactory(&vecModel{nOut: 2}), dists,
		PseudoRandom{D: 2, Seed: 1}, plan, 0, opt); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name    string
		sampler Sampler
		opt     ShardOptions
		plan    *ShardPlan
		want    string
	}{
		{"changed seed", PseudoRandom{D: 2, Seed: 2}, opt, plan, "different"},
		{"changed tag", PseudoRandom{D: 2, Seed: 1},
			ShardOptions{Workers: 1, Tag: "model-b", CheckpointPath: base, Resume: true}, plan, "tag"},
		{"changed plan", PseudoRandom{D: 2, Seed: 1}, opt,
			&ShardPlan{MaxSamples: 64, BlockSize: 16, NumShards: 2}, "shard plan changed"},
		{"changed threshold", PseudoRandom{D: 2, Seed: 1},
			ShardOptions{Workers: 1, Tag: "model-a", Threshold: 9, CheckpointPath: base, Resume: true}, plan, "threshold"},
	}
	for _, tc := range cases {
		_, err := RunShard(context.Background(), SingleFactory(&vecModel{nOut: 2}), dists, tc.sampler, tc.plan, 0, tc.opt)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: want error containing %q, got %v", tc.name, tc.want, err)
		}
	}

	// Resume off: the stale file is ignored and overwritten, not an error.
	fresh := ShardOptions{Workers: 1, Tag: "model-b", CheckpointPath: base, Resume: false}
	if _, err := RunShard(context.Background(), SingleFactory(&vecModel{nOut: 2}), dists,
		PseudoRandom{D: 2, Seed: 9}, plan, 0, fresh); err != nil {
		t.Errorf("Resume=false should ignore the stale checkpoint: %v", err)
	}
}

func TestMergeShardsValidation(t *testing.T) {
	dists := normDists(2)
	plan, err := PlanShards(96, 3, 8)
	if err != nil {
		t.Fatal(err)
	}
	results := make([]*ShardResult, plan.NumShards)
	for k := range results {
		r, err := RunShard(context.Background(), SingleFactory(&vecModel{nOut: 2}), dists,
			PseudoRandom{D: 2, Seed: 7}, plan, k, ShardOptions{Workers: 2, Tag: "v"})
		if err != nil {
			t.Fatal(err)
		}
		results[k] = r
	}
	if _, err := MergeShards(plan, results); err != nil {
		t.Fatalf("valid merge rejected: %v", err)
	}

	t.Run("missing shard", func(t *testing.T) {
		if _, err := MergeShards(plan, results[:2]); err == nil {
			t.Error("short result list accepted")
		}
	})
	t.Run("duplicate shard", func(t *testing.T) {
		dup := []*ShardResult{results[0], results[1], results[1]}
		if _, err := MergeShards(plan, dup); err == nil {
			t.Error("duplicate shard accepted")
		}
	})
	t.Run("incomplete shard", func(t *testing.T) {
		cp := *results[2]
		cp.Evaluated--
		if _, err := MergeShards(plan, []*ShardResult{results[0], results[1], &cp}); err == nil {
			t.Error("incomplete shard accepted")
		}
	})
	t.Run("mixed tag", func(t *testing.T) {
		cp := *results[1]
		cp.Tag = "other-model"
		if _, err := MergeShards(plan, []*ShardResult{results[0], &cp, results[2]}); err == nil {
			t.Error("mixed-tag merge accepted")
		}
	})
	t.Run("mixed stream", func(t *testing.T) {
		cp := *results[1]
		cp.SamplerFP++
		if _, err := MergeShards(plan, []*ShardResult{results[0], &cp, results[2]}); err == nil {
			t.Error("mixed-fingerprint merge accepted")
		}
	})
	t.Run("wrong geometry", func(t *testing.T) {
		cp := *results[1]
		cp.Start += plan.BlockSize
		if _, err := MergeShards(plan, []*ShardResult{results[0], &cp, results[2]}); err == nil {
			t.Error("range-mismatched shard accepted")
		}
	})
}

func TestShardResultJSONRoundTripPreservesMerge(t *testing.T) {
	// The fleet posts shard results over HTTP; (de)serialization must not
	// perturb the merged bits.
	dists := normDists(2)
	plan, err := PlanShards(128, 2, 16)
	if err != nil {
		t.Fatal(err)
	}
	results := make([]*ShardResult, 2)
	for k := range results {
		r, err := RunShard(context.Background(), SingleFactory(&vecModel{nOut: 3}), dists,
			PseudoRandom{D: 2, Seed: 21}, plan, k, ShardOptions{Workers: 2, Threshold: 0.3})
		if err != nil {
			t.Fatal(err)
		}
		results[k] = r
	}
	direct, err := MergeShards(plan, results)
	if err != nil {
		t.Fatal(err)
	}
	wire := make([]*ShardResult, 2)
	for k, r := range results {
		data, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		var rt ShardResult
		if err := json.Unmarshal(data, &rt); err != nil {
			t.Fatal(err)
		}
		wire[k] = &rt
	}
	viaWire, err := MergeShards(plan, wire)
	if err != nil {
		t.Fatal(err)
	}
	if statsJSON(t, direct) != statsJSON(t, viaWire) {
		t.Error("JSON round trip of shard results perturbed the merged state")
	}
}
