package uq

import (
	"fmt"
	"math"
)

// Rule1D is a one-dimensional quadrature rule in the standard space of a
// distribution family: nodes and weights such that Σ w_i f(x_i) ≈ E[f(X)].
type Rule1D struct {
	Nodes, Weights []float64
}

// GaussHermite returns the n-point Gauss–Hermite rule for the standard
// normal weight (probabilists' convention): Σ w_i f(x_i) ≈ E[f(Z)], Z~N(0,1).
// It integrates polynomials up to degree 2n−1 exactly (property-tested).
func GaussHermite(n int) (Rule1D, error) {
	if n < 1 || n > 64 {
		return Rule1D{}, fmt.Errorf("uq: Gauss–Hermite order %d outside 1..64", n)
	}
	r := Rule1D{Nodes: make([]float64, n), Weights: make([]float64, n)}
	// Newton iteration on the physicists' Hermite polynomial H_n with
	// standard asymptotic initial guesses, then transform to probabilists'
	// convention: x_prob = √2·x_phys, w_prob = w_phys/√π.
	for i := 0; i < (n+1)/2; i++ {
		var x float64
		switch i {
		case 0:
			x = math.Sqrt(float64(2*n+1)) - 1.85575*math.Pow(float64(2*n+1), -1.0/6)
		case 1:
			x = r.nodePhys(0) - 1.14*math.Pow(float64(n), 0.426)/r.nodePhys(0)
		case 2:
			x = 1.86*r.nodePhys(1) - 0.86*r.nodePhys(0)
		case 3:
			x = 1.91*r.nodePhys(2) - 0.91*r.nodePhys(1)
		default:
			x = 2*r.nodePhys(i-1) - r.nodePhys(i-2)
		}
		var dp float64
		for iter := 0; iter < 100; iter++ {
			p, d := hermitePhys(n, x)
			dx := p / d
			x -= dx
			dp = d
			if math.Abs(dx) < 1e-15*(1+math.Abs(x)) {
				break
			}
		}
		r.Nodes[i] = x // store physicists' node temporarily (descending)
		// w_i = 2^{n-1} n! √π / (n² H_{n-1}(x)²); with H'_n = 2n H_{n-1}:
		// dp = H'_n(x) ⇒ H_{n-1} = dp/(2n).
		hnm1 := dp / (2 * float64(n))
		r.Weights[i] = math.Exp2(float64(n-1)) * factorial(n) * math.Sqrt(math.Pi) / (float64(n*n) * hnm1 * hnm1)
	}
	// Mirror symmetric nodes and convert conventions.
	for i := 0; i < (n+1)/2; i++ {
		xp, wp := r.Nodes[i], r.Weights[i]
		r.Nodes[i] = -xp * math.Sqrt2
		r.Nodes[n-1-i] = xp * math.Sqrt2
		w := wp / math.Sqrt(math.Pi)
		r.Weights[i] = w
		r.Weights[n-1-i] = w
	}
	if n%2 == 1 {
		r.Nodes[n/2] = 0
	}
	return r, nil
}

func (r Rule1D) nodePhys(i int) float64 { return r.Nodes[i] }

// hermitePhys evaluates the physicists' Hermite polynomial H_n and its
// derivative at x via the three-term recurrence.
func hermitePhys(n int, x float64) (p, dp float64) {
	p0, p1 := 1.0, 2*x
	if n == 0 {
		return 1, 0
	}
	for k := 2; k <= n; k++ {
		p0, p1 = p1, 2*x*p1-2*float64(k-1)*p0
	}
	return p1, 2 * float64(n) * p0
}

func factorial(n int) float64 {
	f := 1.0
	for i := 2; i <= n; i++ {
		f *= float64(i)
	}
	return f
}

// GaussLegendre returns the n-point Gauss–Legendre rule rescaled to the unit
// interval with uniform weight: Σ w_i f(u_i) ≈ ∫₀¹ f(u) du. Used for
// collocation in the u-space of non-normal distributions.
func GaussLegendre(n int) (Rule1D, error) {
	if n < 1 || n > 64 {
		return Rule1D{}, fmt.Errorf("uq: Gauss–Legendre order %d outside 1..64", n)
	}
	r := Rule1D{Nodes: make([]float64, n), Weights: make([]float64, n)}
	for i := 0; i < (n+1)/2; i++ {
		// Chebyshev initial guess on [-1,1].
		x := math.Cos(math.Pi * (float64(i) + 0.75) / (float64(n) + 0.5))
		var dp float64
		for iter := 0; iter < 100; iter++ {
			p, d := legendre(n, x)
			dx := p / d
			x -= dx
			dp = d
			if math.Abs(dx) < 1e-15 {
				break
			}
		}
		w := 2 / ((1 - x*x) * dp * dp)
		// Map [-1,1] → [0,1].
		r.Nodes[i] = 0.5 * (1 - x) // descending cosine gives ascending order
		r.Nodes[n-1-i] = 0.5 * (1 + x)
		r.Weights[i] = 0.5 * w
		r.Weights[n-1-i] = 0.5 * w
	}
	if n%2 == 1 {
		r.Nodes[n/2] = 0.5
	}
	return r, nil
}

// legendre evaluates P_n and P'_n at x.
func legendre(n int, x float64) (p, dp float64) {
	if n == 0 {
		return 1, 0
	}
	p0, p1 := 1.0, x
	for k := 2; k <= n; k++ {
		p0, p1 = p1, ((2*float64(k)-1)*x*p1-(float64(k)-1)*p0)/float64(k)
	}
	return p1, float64(n) * (x*p1 - p0) / (x*x - 1)
}

// RuleFor returns the n-point collocation rule for dist together with the
// mapping of rule nodes to parameter values: Gauss–Hermite in standard-normal
// space for (truncated) normals, Gauss–Legendre in u-space otherwise.
func RuleFor(dist Dist, n int) (Rule1D, []float64, error) {
	switch d := dist.(type) {
	case Normal:
		r, err := GaussHermite(n)
		if err != nil {
			return Rule1D{}, nil, err
		}
		params := make([]float64, n)
		for i, x := range r.Nodes {
			params[i] = d.Mu + d.Sigma*x
		}
		return r, params, nil
	default:
		r, err := GaussLegendre(n)
		if err != nil {
			return Rule1D{}, nil, err
		}
		params := make([]float64, n)
		for i, u := range r.Nodes {
			params[i] = dist.Quantile(u)
		}
		return r, params, nil
	}
}
