package uq

import (
	"context"
	"errors"
	"math"
	"path/filepath"
	"runtime"
	"sync/atomic"
	"testing"
)

// slowPolyModel is polyModel with an optional per-eval spin to widen the
// completion-order race window in concurrency tests.
type spinModel struct {
	c    []float64
	spin int
}

func (m *spinModel) Dim() int        { return len(m.c) }
func (m *spinModel) NumOutputs() int { return 1 }
func (m *spinModel) Eval(p, out []float64) error {
	v := 0.0
	for j, cj := range m.c {
		v += cj * p[j]
	}
	s := 0.0
	for i := 0; i < m.spin; i++ {
		s += math.Sqrt(float64(i) + v*v)
	}
	out[0] = v + s*0 // spin result discarded; keeps the loop alive
	return nil
}

// vecModel emits a deterministic multi-output vector per parameter point.
type vecModel struct{ nOut int }

func (m *vecModel) Dim() int        { return 2 }
func (m *vecModel) NumOutputs() int { return m.nOut }
func (m *vecModel) Eval(p, out []float64) error {
	for j := range out {
		out[j] = p[0] + float64(j)*p[1]
	}
	return nil
}

func normDists(d int) []Dist {
	out := make([]Dist, d)
	for i := range out {
		out[i] = Normal{Mu: 0, Sigma: 1}
	}
	return out
}

func TestCampaignMatchesStoredEnsembleExactly(t *testing.T) {
	// The streaming fold uses the identical Welford recurrence in the
	// identical sample order as the stored-ensemble post-processing, so the
	// moments must agree bit-for-bit, at any worker count.
	dists := normDists(2)
	const m = 4096
	ens, err := RunEnsemble(SingleFactory(&vecModel{nOut: 5}), dists,
		PseudoRandom{D: 2, Seed: 13}, EnsembleOptions{Samples: m, Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	wantMean, wantStd := ens.MeanAll(), ens.StdAll()

	for _, workers := range []int{1, 2, 8} {
		camp, err := RunCampaign(context.Background(), SingleFactory(&vecModel{nOut: 5}), dists,
			PseudoRandom{D: 2, Seed: 13}, CampaignOptions{MaxSamples: m, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if camp.StopReason != StopBudget || camp.Evaluated != m || camp.Ensemble != nil {
			t.Fatalf("workers=%d: unexpected campaign accounting %+v", workers, camp)
		}
		gotMean, gotStd := camp.MeanAll(), camp.StdAll()
		for j := range wantMean {
			if gotMean[j] != wantMean[j] {
				t.Errorf("workers=%d output %d: streaming mean %g != stored %g", workers, j, gotMean[j], wantMean[j])
			}
			if gotStd[j] != wantStd[j] {
				t.Errorf("workers=%d output %d: streaming std %g != stored %g", workers, j, gotStd[j], wantStd[j])
			}
		}
	}
}

func TestCampaignStoredPathPreservesEnsemble(t *testing.T) {
	dists := normDists(2)
	camp, err := RunCampaign(context.Background(), SingleFactory(&vecModel{nOut: 3}), dists,
		PseudoRandom{D: 2, Seed: 4}, CampaignOptions{MaxSamples: 200, StoreSamples: true})
	if err != nil {
		t.Fatal(err)
	}
	ens := camp.Ensemble
	if ens == nil || ens.M != 200 || len(ens.Outputs) != 200 {
		t.Fatalf("stored ensemble missing or truncated: %+v", ens)
	}
	// Stored samples and streaming accumulators describe the same data.
	if ens.Mean(1) != camp.Stats.Moments.Mean[1] {
		t.Errorf("ensemble mean %g vs accumulator %g", ens.Mean(1), camp.Stats.Moments.Mean[1])
	}
	for i, o := range ens.Outputs {
		if o == nil {
			t.Fatalf("sample %d missing", i)
		}
	}
}

func TestCampaignWorkerInvarianceWithFailures(t *testing.T) {
	dists := []Dist{Uniform{0, 1}}
	run := func(workers int) *CampaignResult {
		camp, err := RunCampaign(context.Background(), SingleFactory(&failingModel{failAbove: 0.7}), dists,
			PseudoRandom{D: 1, Seed: 3}, CampaignOptions{
				MaxSamples: 600, Workers: workers, Threshold: 0.5, Quantiles: []float64{0.5, 0.9},
			})
		if err != nil {
			t.Fatal(err)
		}
		return camp
	}
	a := run(1)
	for _, workers := range []int{2, 8} {
		b := run(workers)
		if a.Failures != b.Failures || a.Evaluated != b.Evaluated {
			t.Fatalf("workers=%d changed accounting: %d/%d vs %d/%d",
				workers, b.Evaluated, b.Failures, a.Evaluated, a.Failures)
		}
		if a.Stats.Moments.Mean[0] != b.Stats.Moments.Mean[0] || a.Stats.Moments.M2[0] != b.Stats.Moments.M2[0] {
			t.Errorf("workers=%d changed the moments bit pattern", workers)
		}
		if a.Stats.ExceedAny.Count != b.Stats.ExceedAny.Count {
			t.Errorf("workers=%d changed the exceedance count", workers)
		}
		qa, _ := a.Stats.Quantile(0.9, 0)
		qb, _ := b.Stats.Quantile(0.9, 0)
		if qa != qb {
			t.Errorf("workers=%d changed the P² sketch: %g vs %g", workers, qb, qa)
		}
	}
	if a.Failures == 0 {
		t.Fatal("test model produced no failures; race window untested")
	}
}

func TestCampaignAdaptiveStopDeterministic(t *testing.T) {
	// A generous SE target must stop well before the budget, at a batch
	// boundary, at the same sample count for every worker count.
	dists := normDists(1)
	run := func(workers int) *CampaignResult {
		camp, err := RunCampaign(context.Background(), SingleFactory(&spinModel{c: []float64{1}, spin: 50}), dists,
			PseudoRandom{D: 1, Seed: 8}, CampaignOptions{
				MaxSamples: 100000, Workers: workers, BatchSize: 64, TargetSE: 0.05,
			})
		if err != nil {
			t.Fatal(err)
		}
		return camp
	}
	a := run(1)
	if a.StopReason != StopTargetSE {
		t.Fatalf("stop reason %q, want %q", a.StopReason, StopTargetSE)
	}
	if a.Evaluated >= 100000 || a.Evaluated%64 != 0 {
		t.Fatalf("stopped at %d — not an early batch boundary", a.Evaluated)
	}
	if se := a.Stats.Moments.MaxSE(); se > 0.05 {
		t.Errorf("claimed target-se stop but SE is %g", se)
	}
	for _, workers := range []int{3, 8} {
		b := run(workers)
		if b.Evaluated != a.Evaluated || b.Stats.Moments.Mean[0] != a.Stats.Moments.Mean[0] {
			t.Errorf("workers=%d: stopped at %d (mean %g), serial stopped at %d (mean %g)",
				workers, b.Evaluated, b.Stats.Moments.Mean[0], a.Evaluated, a.Stats.Moments.Mean[0])
		}
	}
}

func TestCampaignTargetCIStop(t *testing.T) {
	dists := []Dist{Uniform{0, 1}}
	camp, err := RunCampaign(context.Background(), SingleFactory(&failingModel{failAbove: 2}), dists,
		PseudoRandom{D: 1, Seed: 2}, CampaignOptions{
			MaxSamples: 1 << 20, BatchSize: 256, Threshold: 0.9, TargetCI: 0.02,
		})
	if err != nil {
		t.Fatal(err)
	}
	if camp.StopReason != StopTargetCI {
		t.Fatalf("stop reason %q, want %q", camp.StopReason, StopTargetCI)
	}
	if camp.Stats.ExceedAny.HalfWidth(1.96) > 0.02 {
		t.Errorf("stopped above the CI target: %g", camp.Stats.ExceedAny.HalfWidth(1.96))
	}
	// P(U ≥ 0.9) = 0.1 within the interval.
	lo, hi := camp.Stats.ExceedAny.Wilson(1.96)
	if !(lo < 0.1 && 0.1 < hi) {
		t.Errorf("failure probability interval [%g, %g] excludes 0.1", lo, hi)
	}
}

func TestCampaignCheckpointResumeBitIdentical(t *testing.T) {
	dists := normDists(2)
	const budget = 3000
	copt := func(workers int) CampaignOptions {
		return CampaignOptions{
			MaxSamples: budget, Workers: workers,
			Threshold: 0.5, Quantiles: []float64{0.5, 0.95},
		}
	}
	whole, err := RunCampaign(context.Background(), SingleFactory(&vecModel{nOut: 4}), dists,
		PseudoRandom{D: 2, Seed: 6}, copt(2))
	if err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{1, 2, 8} {
		dir := t.TempDir()
		path := filepath.Join(dir, "campaign.ckpt")
		// Phase 1: run only part of the budget, persisting a checkpoint.
		o := copt(workers)
		o.MaxSamples = 1100
		o.CheckpointPath = path
		o.CheckpointEvery = 256
		if _, err := RunCampaign(context.Background(), SingleFactory(&vecModel{nOut: 4}), dists,
			PseudoRandom{D: 2, Seed: 6}, o); err != nil {
			t.Fatal(err)
		}
		cp, err := LoadCheckpoint(path)
		if err != nil {
			t.Fatal(err)
		}
		if cp.Next != 1100 {
			t.Fatalf("workers=%d: checkpoint at %d, want 1100", workers, cp.Next)
		}
		// Phase 2: resume to the full budget.
		o = copt(workers)
		o.Resume = cp
		resumed, err := RunCampaign(context.Background(), SingleFactory(&vecModel{nOut: 4}), dists,
			PseudoRandom{D: 2, Seed: 6}, o)
		if err != nil {
			t.Fatal(err)
		}
		if resumed.Evaluated != budget {
			t.Fatalf("workers=%d: resumed run evaluated %d", workers, resumed.Evaluated)
		}
		for j := 0; j < 4; j++ {
			if resumed.Stats.Moments.Mean[j] != whole.Stats.Moments.Mean[j] ||
				resumed.Stats.Moments.M2[j] != whole.Stats.Moments.M2[j] {
				t.Errorf("workers=%d output %d: resumed moments differ from uninterrupted run", workers, j)
			}
			if resumed.Stats.Ext.Max[j] != whole.Stats.Ext.Max[j] {
				t.Errorf("workers=%d output %d: resumed extrema differ", workers, j)
			}
			for _, p := range []float64{0.5, 0.95} {
				qa, _ := resumed.Stats.Quantile(p, j)
				qb, _ := whole.Stats.Quantile(p, j)
				if qa != qb {
					t.Errorf("workers=%d output %d p=%g: resumed sketch %g != %g", workers, j, p, qa, qb)
				}
			}
		}
		if resumed.Stats.ExceedAny.Count != whole.Stats.ExceedAny.Count {
			t.Errorf("workers=%d: resumed exceedance differs", workers)
		}
	}
}

func TestCampaignResumeValidation(t *testing.T) {
	dists := normDists(2)
	camp, err := RunCampaign(context.Background(), SingleFactory(&vecModel{nOut: 4}), dists,
		PseudoRandom{D: 2, Seed: 6}, CampaignOptions{MaxSamples: 100})
	if err != nil {
		t.Fatal(err)
	}
	cp := camp.Checkpoint()

	// Wrong sampler.
	if _, err := RunCampaign(context.Background(), SingleFactory(&vecModel{nOut: 4}), dists,
		NewMustLHS(t, 2, 200, 1), CampaignOptions{MaxSamples: 200, Resume: cp}); err == nil {
		t.Error("sampler-mismatched resume accepted")
	}
	// Same sampler name, different seed: the point-stream fingerprint must
	// catch what the name cannot.
	if _, err := RunCampaign(context.Background(), SingleFactory(&vecModel{nOut: 4}), dists,
		PseudoRandom{D: 2, Seed: 7}, CampaignOptions{MaxSamples: 200, Resume: cp}); err == nil {
		t.Error("seed-changed resume accepted")
	}
	// Changed caller tag (a different model configuration).
	if _, err := RunCampaign(context.Background(), SingleFactory(&vecModel{nOut: 4}), dists,
		PseudoRandom{D: 2, Seed: 6}, CampaignOptions{MaxSamples: 200, Resume: cp, Tag: "other-model"}); err == nil {
		t.Error("tag-mismatched resume accepted")
	}
	// Wrong output count.
	if _, err := RunCampaign(context.Background(), SingleFactory(&vecModel{nOut: 5}), dists,
		PseudoRandom{D: 2, Seed: 6}, CampaignOptions{MaxSamples: 200, Resume: cp}); err == nil {
		t.Error("output-mismatched resume accepted")
	}
	// Resume with StoreSamples is unsupported.
	if _, err := RunCampaign(context.Background(), SingleFactory(&vecModel{nOut: 4}), dists,
		PseudoRandom{D: 2, Seed: 6}, CampaignOptions{MaxSamples: 200, Resume: cp, StoreSamples: true}); err == nil {
		t.Error("stored-path resume accepted")
	}
	// Budget already met: returns the checkpointed state unchanged.
	done, err := RunCampaign(context.Background(), SingleFactory(&vecModel{nOut: 4}), dists,
		PseudoRandom{D: 2, Seed: 6}, CampaignOptions{MaxSamples: 100, Resume: cp})
	if err != nil {
		t.Fatal(err)
	}
	if done.Evaluated != 100 || done.StopReason != StopBudget {
		t.Errorf("already-complete resume: %+v", done)
	}
}

// NewMustLHS builds an LHS sampler or fails the test.
func NewMustLHS(t *testing.T, d, m int, seed uint64) Sampler {
	t.Helper()
	s, err := NewLatinHypercube(d, m, seed)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestCampaignResumeOfStoppedCampaignIsNoOp(t *testing.T) {
	// An adaptively stopped campaign checkpoints at a batch boundary;
	// resubmitting it must re-evaluate the rule on the preloaded prefix and
	// return without a single new model evaluation.
	dists := normDists(1)
	opt := CampaignOptions{MaxSamples: 100000, BatchSize: 64, TargetSE: 0.05}
	first, err := RunCampaign(context.Background(), SingleFactory(&spinModel{c: []float64{1}}), dists,
		PseudoRandom{D: 1, Seed: 8}, opt)
	if err != nil {
		t.Fatal(err)
	}
	if first.StopReason != StopTargetSE {
		t.Fatalf("stop reason %q", first.StopReason)
	}
	var evals atomic.Int64
	opt.Resume = first.Checkpoint()
	opt.OnSample = func(int, error) { evals.Add(1) }
	second, err := RunCampaign(context.Background(), SingleFactory(&spinModel{c: []float64{1}}), dists,
		PseudoRandom{D: 1, Seed: 8}, opt)
	if err != nil {
		t.Fatal(err)
	}
	if n := evals.Load(); n != 0 {
		t.Errorf("resume of a satisfied campaign evaluated %d samples", n)
	}
	if second.Evaluated != first.Evaluated || second.StopReason != StopTargetSE ||
		second.Stats.Moments.Mean[0] != first.Stats.Moments.Mean[0] {
		t.Errorf("no-op resume changed the result: %+v vs %+v", second, first)
	}
}

func TestCampaignCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var evals atomic.Int64
	camp, err := RunCampaign(ctx, SingleFactory(&spinModel{c: []float64{1}, spin: 2000}), normDists(1),
		PseudoRandom{D: 1, Seed: 1}, CampaignOptions{
			MaxSamples: 1 << 30, Workers: 2,
			OnSample: func(i int, err error) {
				if evals.Add(1) == 50 {
					cancel()
				}
			},
		})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled campaign returned err=%v", err)
	}
	if camp == nil || camp.StopReason != StopCanceled {
		t.Fatalf("partial result missing or mislabeled: %+v", camp)
	}
	if camp.Evaluated < 50 || camp.Evaluated > 10000 {
		t.Errorf("canceled after %d samples — cancellation not prompt", camp.Evaluated)
	}
	if camp.Stats.Moments.N != camp.Succeeded() {
		t.Error("accumulator count disagrees with accounting")
	}
}

func TestCampaignAllFailuresErrors(t *testing.T) {
	dists := []Dist{Uniform{0.9, 1}}
	if _, err := RunCampaign(context.Background(), SingleFactory(&failingModel{failAbove: 0.1}), dists,
		PseudoRandom{D: 1, Seed: 3}, CampaignOptions{MaxSamples: 10}); err == nil {
		t.Error("fully failed campaign should error")
	}
}

// TestCampaignStreamingMemoryBound is the campaign-memory gate: the
// streaming path must retain O(NumOutputs) accumulator state, not
// O(M·NumOutputs) sample storage. With M=50000 and 64 outputs the stored
// path would retain ≥ 25 MB of outputs alone; the gate allows 4 MB for
// accumulators, pools and noise.
func TestCampaignStreamingMemoryBound(t *testing.T) {
	dists := normDists(2)
	measure := func() uint64 {
		runtime.GC()
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		return ms.HeapAlloc
	}
	before := measure()
	camp, err := RunCampaign(context.Background(), SingleFactory(&vecModel{nOut: 64}), dists,
		PseudoRandom{D: 2, Seed: 9}, CampaignOptions{
			MaxSamples: 50000, Workers: 4, Threshold: 1.0, Quantiles: []float64{0.5, 0.99},
		})
	if err != nil {
		t.Fatal(err)
	}
	after := measure()
	if camp.Evaluated != 50000 || camp.Ensemble != nil {
		t.Fatalf("campaign accounting wrong: %+v", camp)
	}
	retained := int64(after) - int64(before)
	const limit = 4 << 20
	if retained > limit {
		t.Errorf("streaming campaign retained %d bytes (> %d): sample storage leaked into the streaming path", retained, limit)
	}
	// The statistics must still be live and sane.
	if camp.Stats.Moments.N != 50000 || math.IsNaN(camp.Stats.Moments.Mean[0]) {
		t.Error("accumulator state incomplete")
	}
}
