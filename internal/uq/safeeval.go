package uq

import "etherm/internal/panicsafe"

// safeEval runs one model evaluation with panic isolation: a panicking
// model (a solver bug, an out-of-range index in user geometry code, an
// injected chaos fault) becomes an error on that sample instead of
// killing the whole campaign worker pool — the sample counts as a
// failure, every other sample proceeds, and the captured stack travels
// in the error for diagnosis. A plain function (not a closure) so the
// per-sample hot path stays allocation-free.
func safeEval(m Model, params, out []float64) (err error) {
	defer panicsafe.Recover("uq: model evaluation", &err)
	return m.Eval(params, out)
}
