package uq

import (
	"context"
	"math"
	"testing"
)

// TestSmolyakDesignMatchesCollocation checks the explicit design against
// the recursive evaluator: same moments, and never more model evaluations
// (node dedup across tensor terms can only shrink the count).
func TestSmolyakDesignMatchesCollocation(t *testing.T) {
	dists := []Dist{Normal{1, 0.5}, Normal{-2, 0.25}, Normal{0, 1}}
	model := &polyModel{c: []float64{1, 2, 3}, q: 1.5}
	for level := 1; level <= 3; level++ {
		ref, err := SmolyakCollocation(SingleFactory(model), dists, level)
		if err != nil {
			t.Fatal(err)
		}
		des, err := SmolyakDesign(dists, level)
		if err != nil {
			t.Fatal(err)
		}
		outs, err := des.Eval(context.Background(), SingleFactory(model))
		if err != nil {
			t.Fatal(err)
		}
		mom, err := des.Moments(outs)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(mom.Mean[0]-ref.Mean[0]) > 1e-9 {
			t.Errorf("level %d: design mean %g vs collocation %g", level, mom.Mean[0], ref.Mean[0])
		}
		if math.Abs(mom.Variance[0]-ref.Variance[0]) > 1e-9*(1+ref.Variance[0]) {
			t.Errorf("level %d: design var %g vs collocation %g", level, mom.Variance[0], ref.Variance[0])
		}
		if len(des.Points) > ref.Evaluations {
			t.Errorf("level %d: design has %d distinct nodes, collocation evaluated %d",
				level, len(des.Points), ref.Evaluations)
		}
		if mom.Evaluations != len(des.Points) {
			t.Errorf("level %d: moments report %d evals, design has %d", level, mom.Evaluations, len(des.Points))
		}
	}
}

// TestSmolyakDesignWeightsNormalized: quadrature weights of a Smolyak rule
// sum to one (the constant function integrates exactly).
func TestSmolyakDesignWeightsNormalized(t *testing.T) {
	dists := []Dist{Normal{0, 1}, Normal{0, 1}}
	for level := 1; level <= 4; level++ {
		des, err := SmolyakDesign(dists, level)
		if err != nil {
			t.Fatal(err)
		}
		sum := 0.0
		for _, w := range des.Weights {
			sum += w
		}
		if math.Abs(sum-1) > 1e-12 {
			t.Errorf("level %d: weights sum to %g, want 1", level, sum)
		}
		if des.Bound() <= 0 {
			t.Errorf("level %d: nonpositive germ bound %g", level, des.Bound())
		}
	}
}

// TestSmolyakDesignCancellation: a canceled context aborts the evaluation.
func TestSmolyakDesignCancellation(t *testing.T) {
	dists := []Dist{Normal{0, 1}, Normal{0, 1}}
	des, err := SmolyakDesign(dists, 3)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := des.Eval(ctx, SingleFactory(&polyModel{c: []float64{1, 1}})); err == nil {
		t.Fatal("evaluation survived a canceled context")
	}
}
