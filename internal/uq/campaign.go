package uq

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"sync"

	"etherm/internal/stats"
)

// Accumulator consumes sample results in strict sample-index order. The
// campaign driver guarantees Accumulate is called from a single goroutine
// with strictly increasing indices (failed samples are skipped), so
// implementations need no locking and fold-order accumulators (quantile
// sketches) stay deterministic for any worker count.
type Accumulator interface {
	// Accumulate folds one successful sample: its index, transformed input
	// parameters and output vector. The slices are only valid during the
	// call; implementations must copy what they keep.
	Accumulate(i int, params, out []float64)
}

// Campaign stop reasons.
const (
	// StopBudget means the sample budget MaxSamples was exhausted.
	StopBudget = "budget"
	// StopTargetSE means the Monte Carlo standard error target was reached.
	StopTargetSE = "target-se"
	// StopTargetCI means the failure-probability confidence target was
	// reached.
	StopTargetCI = "target-ci"
	// StopCanceled means the context was canceled mid-campaign.
	StopCanceled = "canceled"
)

// DefaultBatchSize is the adaptive-stopping check granularity: rules are
// evaluated whenever the folded sample count crosses a multiple of the
// batch size, keeping the stop decision deterministic for any worker count.
const DefaultBatchSize = 64

// DefaultCheckpointEvery is the default folded-sample period between
// checkpoint writes when a checkpoint path is set.
const DefaultCheckpointEvery = 4096

// CampaignOptions controls a streaming sampling campaign.
type CampaignOptions struct {
	// MaxSamples is the sample budget M (the campaign never evaluates past
	// it; adaptive rules may stop earlier).
	MaxSamples int
	// Workers bounds parallel model evaluations; 0 = GOMAXPROCS. Results
	// are bit-identical for any worker count.
	Workers int

	// BatchSize is the adaptive-stopping granularity (default
	// DefaultBatchSize). Stop rules are checked when the folded count
	// reaches a multiple of it, so the stopped sample count is a
	// deterministic function of the sample stream alone.
	BatchSize int
	// TargetSE, when positive, stops the campaign once the largest
	// output-wise Monte Carlo standard error σ_j/√N (eq. 6) drops to it.
	TargetSE float64
	// TargetCI, when positive (with Threshold set), stops once the 95%
	// Wilson half-width of the any-output exceedance probability drops to it.
	TargetCI float64

	// Threshold enables exceedance/failure-probability tracking (T_crit).
	Threshold float64
	// Quantiles lists P² quantile levels sketched per output.
	Quantiles []float64

	// StoreSamples retains every sample's params and outputs in an
	// Ensemble (exact quantiles, PCE fitting) at O(M·NumOutputs) memory.
	// The default streaming path retains O(NumOutputs) accumulator state
	// only. Checkpoint/resume requires the streaming path.
	StoreSamples bool

	// CheckpointPath, when set, periodically persists a JSON Checkpoint
	// (atomic rename) every CheckpointEvery folded samples and at the end
	// of the run, so an interrupted campaign can resume bit-for-bit.
	CheckpointPath  string
	CheckpointEvery int
	// Tag is an opaque caller identity (e.g. a hash of the model
	// configuration that produces the samples). It is recorded in
	// checkpoints and must match on resume, so accumulator state from one
	// model cannot silently absorb samples from another.
	Tag string
	// Resume continues a previous campaign from its checkpoint state: the
	// sampler stream picks up at Checkpoint.Next and the accumulators are
	// preloaded, reproducing the uninterrupted run exactly.
	Resume *Checkpoint

	// OnSample, when non-nil, is invoked after every model evaluation with
	// the sample index and its error (nil on success). Called concurrently
	// from worker goroutines; must be safe for parallel use and fast.
	OnSample func(i int, err error)
}

// CampaignResult is the outcome of a streaming campaign: cumulative
// accumulator state plus accounting. With StoreSamples it also carries the
// stored Ensemble.
type CampaignResult struct {
	SamplerName string
	SamplerFP   uint64 // fingerprint of the sample stream (see Checkpoint)
	Tag         string // caller identity echoed from CampaignOptions.Tag
	NumOutputs  int
	Requested   int // sample budget MaxSamples
	Evaluated   int // samples consumed from the stream (cumulative over resumes, incl. failures)
	Failures    int // failed evaluations (cumulative)
	StopReason  string
	Stats       *stats.StreamStats
	Ensemble    *Ensemble // non-nil only with StoreSamples
}

// Succeeded returns the number of successful evaluations folded so far.
func (c *CampaignResult) Succeeded() int { return c.Evaluated - c.Failures }

// MeanAll returns the running means of all outputs.
func (c *CampaignResult) MeanAll() []float64 { return c.Stats.Moments.MeanAll() }

// StdAll returns the running standard deviations of all outputs.
func (c *CampaignResult) StdAll() []float64 { return c.Stats.Moments.StdAll() }

// Checkpoint captures the campaign state for resumption.
func (c *CampaignResult) Checkpoint() *Checkpoint {
	return &Checkpoint{
		Version:    1,
		Sampler:    c.SamplerName,
		SamplerFP:  c.SamplerFP,
		Tag:        c.Tag,
		NumOutputs: c.NumOutputs,
		Next:       c.Evaluated,
		Failures:   c.Failures,
		Stats:      c.Stats,
	}
}

// Checkpoint is the JSON-serialized resumable state of a streaming
// campaign: the next sample index plus the full accumulator state. Size is
// O(NumOutputs), independent of the samples already folded.
type Checkpoint struct {
	Version    int    `json:"version"`
	Sampler    string `json:"sampler"`
	Dim        int    `json:"dim"`
	NumOutputs int    `json:"num_outputs"`
	// SamplerFP fingerprints the sampler's actual point stream (a hash of
	// the first fingerprintPoints points), catching identity changes a name
	// cannot — a different Monte Carlo seed, QMC shift or scramble, or an
	// LHS design size. Legacy checkpoints carry a single-point hash, still
	// accepted with a warning.
	SamplerFP uint64 `json:"sampler_fp,omitempty"`
	// Tag echoes CampaignOptions.Tag.
	Tag      string             `json:"tag,omitempty"`
	Next     int                `json:"next"`
	Failures int                `json:"failures"`
	Stats    *stats.StreamStats `json:"stats"`
}

// fingerprintPoints is how many leading points samplerFingerprint hashes.
// One point (the legacy scheme) cannot tell apart streams that agree at
// index 0 and diverge after — e.g. two randomized-QMC replicate counts over
// the same base scramble; eight catches every such divergence we ship.
const fingerprintPoints = 8

// samplerFingerprint hashes the first fingerprintPoints sampler points
// (FNV-1a over the raw float64 bits), clamped to the design size for
// bounded samplers. Index-addressable samplers are pure, so the fingerprint
// is stable across runs yet distinguishes seeds, shifts, scrambles and
// stratified design sizes.
func samplerFingerprint(s Sampler) uint64 {
	n := fingerprintPoints
	if b, ok := s.(BoundedSampler); ok && b.Len() < n {
		n = b.Len()
	}
	return fingerprintFirst(s, n)
}

// legacySamplerFingerprint reproduces the pre-v2 point-0-only hash so old
// checkpoints remain resumable.
func legacySamplerFingerprint(s Sampler) uint64 {
	return fingerprintFirst(s, 1)
}

func fingerprintFirst(s Sampler, n int) uint64 {
	u := make([]float64, s.Dim())
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < n; i++ {
		s.Sample(i, u)
		for _, v := range u {
			b := math.Float64bits(v)
			for k := 0; k < 8; k++ {
				h ^= (b >> (8 * k)) & 0xff
				h *= prime64
			}
		}
	}
	if h == 0 {
		h = 1 // keep 0 free as "not fingerprinted" (legacy checkpoints)
	}
	return h
}

// checkSamplerFP validates a checkpointed fingerprint against the current
// sampler. A zero stored value (never fingerprinted) passes; the legacy
// single-point hash passes with a one-line warning; anything else is a
// stream mismatch.
func checkSamplerFP(stored uint64, s Sampler) error {
	if stored == 0 || stored == samplerFingerprint(s) {
		return nil
	}
	if stored == legacySamplerFingerprint(s) {
		fmt.Fprintf(os.Stderr, "uq: accepting legacy single-point sampler fingerprint for %s; checkpoint will be upgraded on next save\n", s.Name())
		return nil
	}
	return fmt.Errorf("uq: checkpoint was written by a different %s sample stream (changed seed, shift, scramble or design size)", s.Name())
}

// saveAtomicJSON marshals v and writes it atomically (temp file + rename in
// the destination directory), creating parent directories as needed. All
// checkpoint writers share it so a crash mid-write never leaves a torn
// state file behind.
func saveAtomicJSON(path string, v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return err
	}
	dir := filepath.Dir(path)
	if dir != "." && dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// loadJSON reads and unmarshals a JSON state file.
func loadJSON(path string, v any) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if err := json.Unmarshal(data, v); err != nil {
		return fmt.Errorf("uq: checkpoint %s: %w", path, err)
	}
	return nil
}

// Save writes the checkpoint atomically (temp file + rename).
func (c *Checkpoint) Save(path string) error {
	return saveAtomicJSON(path, c)
}

// LoadCheckpoint reads a checkpoint file.
func LoadCheckpoint(path string) (*Checkpoint, error) {
	var c Checkpoint
	if err := loadJSON(path, &c); err != nil {
		return nil, err
	}
	if c.Version != 1 || c.Stats == nil || c.Stats.Moments == nil {
		return nil, fmt.Errorf("uq: checkpoint %s: unsupported or corrupt state", path)
	}
	return &c, nil
}

// LoadCheckpointIfExists loads a checkpoint when the file exists and
// returns (nil, nil) when it does not — the resume-if-present pattern of
// the scenario engine and study front-ends. Errors other than absence
// (unreadable file, corrupt state) are reported, not swallowed.
func LoadCheckpointIfExists(path string) (*Checkpoint, error) {
	c, err := LoadCheckpoint(path)
	if errors.Is(err, fs.ErrNotExist) {
		return nil, nil
	}
	return c, err
}

// sampleMsg carries one evaluated sample from a worker to the fold loop.
type sampleMsg struct {
	i           int
	params, out []float64
	err         error
}

// RunCampaign evaluates up to opt.MaxSamples sampler points through models
// from the factory, folding each sample's outputs into streaming
// accumulators the moment it completes. Sample i is deterministic (sampler
// point i through dists) and results are folded in strict index order, so
// every statistic — including the adaptive stop decision — is bit-identical
// for any worker count. Memory on the streaming path is O(NumOutputs).
//
// On context cancellation the partial result is returned together with the
// context error; a checkpoint (when configured) has been written so the
// campaign can resume. A campaign where every evaluation failed returns an
// error, like RunEnsemble.
func RunCampaign(ctx context.Context, factory ModelFactory, dists []Dist, s Sampler, opt CampaignOptions) (*CampaignResult, error) {
	if opt.MaxSamples <= 0 {
		return nil, fmt.Errorf("uq: campaign needs a positive sample budget")
	}
	if err := CheckBudget(s, opt.MaxSamples); err != nil {
		return nil, err
	}
	if s.Dim() != len(dists) {
		return nil, fmt.Errorf("uq: sampler dimension %d does not match %d distributions", s.Dim(), len(dists))
	}
	probe, err := factory()
	if err != nil {
		return nil, fmt.Errorf("uq: model factory: %w", err)
	}
	if probe.Dim() != len(dists) {
		return nil, fmt.Errorf("uq: model dimension %d does not match %d distributions", probe.Dim(), len(dists))
	}
	nOut := probe.NumOutputs()

	// Resume or fresh accumulator state.
	start, failures := 0, 0
	var st *stats.StreamStats
	fp := samplerFingerprint(s)
	if opt.Resume != nil {
		cp := opt.Resume
		if opt.StoreSamples {
			return nil, fmt.Errorf("uq: checkpoint resume requires the streaming path (StoreSamples off)")
		}
		if cp.Sampler != s.Name() || (cp.Dim != 0 && cp.Dim != s.Dim()) || cp.NumOutputs != nOut {
			return nil, fmt.Errorf("uq: checkpoint (sampler %s, dim %d, %d outputs) does not match campaign (sampler %s, dim %d, %d outputs)",
				cp.Sampler, cp.Dim, cp.NumOutputs, s.Name(), s.Dim(), nOut)
		}
		if err := checkSamplerFP(cp.SamplerFP, s); err != nil {
			return nil, err
		}
		if cp.Tag != opt.Tag {
			return nil, fmt.Errorf("uq: checkpoint tag %q does not match campaign tag %q (model or configuration changed)", cp.Tag, opt.Tag)
		}
		if opt.Threshold > 0 && cp.Stats.Threshold != opt.Threshold {
			return nil, fmt.Errorf("uq: checkpoint threshold %g does not match campaign threshold %g", cp.Stats.Threshold, opt.Threshold)
		}
		if len(opt.Quantiles) > 0 && len(opt.Quantiles) != len(cp.Stats.Probs) {
			return nil, fmt.Errorf("uq: checkpoint sketches %d quantiles, campaign wants %d", len(cp.Stats.Probs), len(opt.Quantiles))
		}
		st = cp.Stats
		start, failures = cp.Next, cp.Failures
	} else {
		st, err = stats.NewStreamStats(nOut, opt.Threshold, opt.Quantiles)
		if err != nil {
			return nil, err
		}
	}

	res := &CampaignResult{
		SamplerName: s.Name(),
		SamplerFP:   fp,
		Tag:         opt.Tag,
		NumOutputs:  nOut,
		Requested:   opt.MaxSamples,
		Evaluated:   start,
		Failures:    failures,
		Stats:       st,
	}
	if start >= opt.MaxSamples {
		res.StopReason = StopBudget
		return res, nil
	}

	batch := opt.BatchSize
	if batch <= 0 {
		batch = DefaultBatchSize
	}
	// Resuming at a batch boundary re-evaluates the stop rules before any
	// work: a campaign that already stopped adaptively (always at a
	// boundary) becomes a no-op on resubmission instead of burning another
	// batch. Mid-batch checkpoints (cancellation) skip this so the resumed
	// run keeps making exactly the boundary decisions of an uninterrupted
	// one.
	if start > 0 && start%batch == 0 {
		if r := stopReason(st, opt); r != "" {
			res.StopReason = r
			return res, nil
		}
	}
	cpEvery := opt.CheckpointEvery
	if cpEvery <= 0 {
		cpEvery = DefaultCheckpointEvery
	}

	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if remaining := opt.MaxSamples - start; workers > remaining {
		workers = remaining
	}

	var ens *Ensemble
	if opt.StoreSamples {
		ens = &Ensemble{
			SamplerName: s.Name(),
			M:           opt.MaxSamples,
			NumOutputs:  nOut,
			Params:      make([][]float64, opt.MaxSamples),
			Outputs:     make([][]float64, opt.MaxSamples),
		}
	}

	// Worker models are created serially up front: factories typically clone
	// a shared base simulator, and a lazy in-goroutine clone would race with
	// worker 0 already mutating that base through its first evaluation.
	models := make([]Model, workers)
	models[0] = probe
	for w := 1; w < workers; w++ {
		m, err := factory()
		if err != nil {
			return nil, fmt.Errorf("uq: worker setup: %w", err)
		}
		models[w] = m
	}

	// Buffer pools keep the streaming path allocation-bounded: slices cycle
	// worker → fold → pool. The stored path hands buffers to the Ensemble
	// instead.
	var paramPool, outPool *sync.Pool
	if !opt.StoreSamples {
		dim := s.Dim()
		paramPool = &sync.Pool{New: func() any { return make([]float64, dim) }}
		outPool = &sync.Pool{New: func() any { return make([]float64, nOut) }}
	}
	recycle := func(m sampleMsg) {
		if paramPool != nil {
			paramPool.Put(m.params)
			outPool.Put(m.out)
		}
	}

	jobs := make(chan int)
	results := make(chan sampleMsg, workers)
	stop := make(chan struct{})

	go func() {
		defer close(jobs)
		for i := start; i < opt.MaxSamples; i++ {
			select {
			case jobs <- i:
			case <-stop:
				return
			case <-ctx.Done():
				return
			}
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			m := models[w]
			u := make([]float64, s.Dim())
			for i := range jobs {
				var params, out []float64
				if paramPool != nil {
					params = paramPool.Get().([]float64)
					out = outPool.Get().([]float64)
				} else {
					params = make([]float64, s.Dim())
					out = make([]float64, nOut)
				}
				s.Sample(i, u)
				TransformPoint(dists, u, params)
				err := safeEval(m, params, out)
				if opt.OnSample != nil {
					opt.OnSample(i, err)
				}
				results <- sampleMsg{i: i, params: params, out: out, err: err}
			}
		}(w)
	}
	go func() {
		wg.Wait()
		close(results)
	}()

	// Ordered fold: samples are folded in strict index order through a
	// small reorder buffer (bounded by the in-flight worker count), so the
	// accumulators see exactly the sequence sample 0, 1, 2, … regardless of
	// completion order.
	next := start
	stopAt := opt.MaxSamples
	stopped := false
	var firstErr error
	pending := make(map[int]sampleMsg, workers)
	var cpErr error
	writeCheckpoint := func() {
		if opt.CheckpointPath == "" || cpErr != nil {
			return
		}
		cp := &Checkpoint{
			Version: 1, Sampler: s.Name(), Dim: s.Dim(), NumOutputs: nOut,
			SamplerFP: fp, Tag: opt.Tag,
			Next: next, Failures: res.Failures, Stats: st,
		}
		cpErr = cp.Save(opt.CheckpointPath)
	}

	for msg := range results {
		if msg.i >= stopAt {
			recycle(msg)
			continue
		}
		pending[msg.i] = msg
		for next < stopAt {
			m, ok := pending[next]
			if !ok {
				break
			}
			delete(pending, next)
			if m.err != nil {
				res.Failures++
				if firstErr == nil {
					firstErr = m.err
				}
				recycle(m)
			} else {
				st.Add(m.out)
				if ens != nil {
					ens.Params[next] = m.params
					ens.Outputs[next] = m.out
				} else {
					recycle(m)
				}
			}
			next++
			res.Evaluated = next
			if opt.CheckpointPath != "" && next%cpEvery == 0 {
				writeCheckpoint()
			}
			if !stopped && next < stopAt && next%batch == 0 {
				if r := stopReason(st, opt); r != "" {
					stopAt = next
					res.StopReason = r
					stopped = true
					close(stop)
				}
			}
		}
	}
	for _, m := range pending {
		recycle(m)
	}

	if res.StopReason == "" {
		if ctx.Err() != nil && next < opt.MaxSamples {
			res.StopReason = StopCanceled
		} else {
			res.StopReason = StopBudget
		}
	}
	writeCheckpoint()
	if cpErr != nil {
		return res, fmt.Errorf("uq: campaign checkpoint: %w", cpErr)
	}

	if ens != nil {
		ens.M = res.Evaluated
		ens.Params = ens.Params[:res.Evaluated]
		ens.Outputs = ens.Outputs[:res.Evaluated]
		ens.Failures = res.Failures
		res.Ensemble = ens
	}
	if res.Failures == res.Evaluated && res.Evaluated > 0 {
		return nil, fmt.Errorf("uq: every campaign evaluation failed; first error: %w", firstErr)
	}
	if res.StopReason == StopCanceled {
		return res, ctx.Err()
	}
	return res, nil
}

// stopReason evaluates the adaptive stopping rules on the folded prefix.
func stopReason(st *stats.StreamStats, opt CampaignOptions) string {
	if opt.TargetSE > 0 && st.Moments.N >= 2 && st.Moments.MaxSE() <= opt.TargetSE {
		return StopTargetSE
	}
	if opt.TargetCI > 0 && opt.Threshold > 0 && st.ExceedAny.N > 0 &&
		st.ExceedAny.HalfWidth(1.96) <= opt.TargetCI {
		return StopTargetCI
	}
	return ""
}
