// Package uq implements the uncertainty-quantification machinery of the
// paper and its natural extensions: probability distributions, Monte Carlo
// and quasi-Monte Carlo samplers (pseudo-random, Latin hypercube, Halton,
// Sobol'), Gauss quadrature, tensor/Smolyak stochastic collocation,
// non-intrusive polynomial chaos and Sobol' sensitivity indices, plus a
// deterministic parallel sampling driver with two modes: the streaming
// campaign (RunCampaign: constant-memory online accumulators, adaptive
// stopping, resumable checkpoints) and the stored ensemble (RunEnsemble,
// a campaign with StoreSamples for exact quantiles and surrogate fitting).
//
// The paper quantifies the wire-temperature variability with plain Monte
// Carlo (section IV-C, M = 1000) and notes that "the application of other
// methods is straightforward"; the additional methods here are those other
// methods.
package uq

import (
	"fmt"
	"math"
)

// Dist is a univariate distribution for an uncertain input parameter.
type Dist interface {
	// Quantile maps u ∈ (0,1) to the distribution's u-quantile (inverse CDF).
	Quantile(u float64) float64
	// PDF evaluates the density at x.
	PDF(x float64) float64
	// CDF evaluates the cumulative distribution at x.
	CDF(x float64) float64
	// Mean returns the expectation.
	Mean() float64
	// StdDev returns the standard deviation.
	StdDev() float64
	// String describes the distribution.
	String() string
}

// Normal is the N(Mu, Sigma²) distribution; the paper's elongation law is
// Normal{Mu: 0.17, Sigma: 0.048}.
type Normal struct {
	Mu, Sigma float64
}

// Quantile implements Dist using the exact inverse error function.
func (n Normal) Quantile(u float64) float64 {
	if u <= 0 || u >= 1 {
		if u == 0.5 {
			return n.Mu
		}
		return math.NaN()
	}
	return n.Mu + n.Sigma*math.Sqrt2*math.Erfinv(2*u-1)
}

// PDF implements Dist.
func (n Normal) PDF(x float64) float64 {
	z := (x - n.Mu) / n.Sigma
	return math.Exp(-0.5*z*z) / (n.Sigma * math.Sqrt(2*math.Pi))
}

// CDF implements Dist.
func (n Normal) CDF(x float64) float64 {
	return 0.5 * math.Erfc(-(x-n.Mu)/(n.Sigma*math.Sqrt2))
}

// Mean implements Dist.
func (n Normal) Mean() float64 { return n.Mu }

// StdDev implements Dist.
func (n Normal) StdDev() float64 { return n.Sigma }

func (n Normal) String() string { return fmt.Sprintf("N(%g, %g²)", n.Mu, n.Sigma) }

// TruncatedNormal restricts a normal to [Lo, Hi] by quantile rescaling. The
// elongation δ = (L−d)/L physically lives in [0, 1); truncation keeps
// extreme Monte Carlo draws physical.
type TruncatedNormal struct {
	Mu, Sigma float64
	Lo, Hi    float64
}

func (t TruncatedNormal) base() Normal { return Normal{Mu: t.Mu, Sigma: t.Sigma} }

// Quantile implements Dist.
func (t TruncatedNormal) Quantile(u float64) float64 {
	b := t.base()
	clo, chi := b.CDF(t.Lo), b.CDF(t.Hi)
	return b.Quantile(clo + u*(chi-clo))
}

// PDF implements Dist.
func (t TruncatedNormal) PDF(x float64) float64 {
	if x < t.Lo || x > t.Hi {
		return 0
	}
	b := t.base()
	return b.PDF(x) / (b.CDF(t.Hi) - b.CDF(t.Lo))
}

// CDF implements Dist.
func (t TruncatedNormal) CDF(x float64) float64 {
	if x <= t.Lo {
		return 0
	}
	if x >= t.Hi {
		return 1
	}
	b := t.base()
	clo, chi := b.CDF(t.Lo), b.CDF(t.Hi)
	return (b.CDF(x) - clo) / (chi - clo)
}

// Mean implements Dist (standard truncated-normal formula).
func (t TruncatedNormal) Mean() float64 {
	a := (t.Lo - t.Mu) / t.Sigma
	b := (t.Hi - t.Mu) / t.Sigma
	std := Normal{0, 1}
	z := std.CDF(b) - std.CDF(a)
	return t.Mu + t.Sigma*(std.PDF(a)-std.PDF(b))/z
}

// StdDev implements Dist.
func (t TruncatedNormal) StdDev() float64 {
	a := (t.Lo - t.Mu) / t.Sigma
	b := (t.Hi - t.Mu) / t.Sigma
	std := Normal{0, 1}
	z := std.CDF(b) - std.CDF(a)
	pa, pb := std.PDF(a), std.PDF(b)
	term := 1.0
	// Guard the ±∞ limits of the standard formula.
	if !math.IsInf(a, 0) {
		term += a * pa / z
	}
	if !math.IsInf(b, 0) {
		term -= b * pb / z
	}
	m := (pa - pb) / z
	v := t.Sigma * t.Sigma * (term - m*m)
	return math.Sqrt(v)
}

func (t TruncatedNormal) String() string {
	return fmt.Sprintf("N(%g, %g²)|[%g,%g]", t.Mu, t.Sigma, t.Lo, t.Hi)
}

// Uniform is the continuous uniform distribution on [Lo, Hi].
type Uniform struct {
	Lo, Hi float64
}

// Quantile implements Dist.
func (u Uniform) Quantile(p float64) float64 { return u.Lo + p*(u.Hi-u.Lo) }

// PDF implements Dist.
func (u Uniform) PDF(x float64) float64 {
	if x < u.Lo || x > u.Hi {
		return 0
	}
	return 1 / (u.Hi - u.Lo)
}

// CDF implements Dist.
func (u Uniform) CDF(x float64) float64 {
	switch {
	case x <= u.Lo:
		return 0
	case x >= u.Hi:
		return 1
	default:
		return (x - u.Lo) / (u.Hi - u.Lo)
	}
}

// Mean implements Dist.
func (u Uniform) Mean() float64 { return 0.5 * (u.Lo + u.Hi) }

// StdDev implements Dist.
func (u Uniform) StdDev() float64 { return (u.Hi - u.Lo) / math.Sqrt(12) }

func (u Uniform) String() string { return fmt.Sprintf("U[%g, %g]", u.Lo, u.Hi) }

// LogNormal is exp(N(MuLog, SigmaLog²)) — a common alternative elongation
// model guaranteeing positivity.
type LogNormal struct {
	MuLog, SigmaLog float64
}

// Quantile implements Dist.
func (l LogNormal) Quantile(u float64) float64 {
	return math.Exp(Normal{l.MuLog, l.SigmaLog}.Quantile(u))
}

// PDF implements Dist.
func (l LogNormal) PDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	z := (math.Log(x) - l.MuLog) / l.SigmaLog
	return math.Exp(-0.5*z*z) / (x * l.SigmaLog * math.Sqrt(2*math.Pi))
}

// CDF implements Dist.
func (l LogNormal) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return Normal{l.MuLog, l.SigmaLog}.CDF(math.Log(x))
}

// Mean implements Dist.
func (l LogNormal) Mean() float64 { return math.Exp(l.MuLog + 0.5*l.SigmaLog*l.SigmaLog) }

// StdDev implements Dist.
func (l LogNormal) StdDev() float64 {
	s2 := l.SigmaLog * l.SigmaLog
	return l.Mean() * math.Sqrt(math.Exp(s2)-1)
}

func (l LogNormal) String() string { return fmt.Sprintf("LogN(%g, %g²)", l.MuLog, l.SigmaLog) }

// PaperElongation returns the paper's fitted elongation distribution
// N(µ = 0.17, σ = 0.048), truncated to the physical range [0, 0.9] (the
// truncation clips less than 2×10⁻⁴ of the probability mass on each side of
// relevance and keeps sampled lengths finite).
func PaperElongation() Dist {
	return TruncatedNormal{Mu: 0.17, Sigma: 0.048, Lo: 0, Hi: 0.9}
}
