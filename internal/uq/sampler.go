package uq

import (
	"fmt"
	"math"
	"math/rand/v2"
)

// Sampler generates points in the unit hypercube [0,1)^d, addressable by
// sample index so that parallel workers produce identical streams regardless
// of scheduling.
type Sampler interface {
	// Dim returns the dimensionality d.
	Dim() int
	// Sample writes point i (0-based) into dst (length d).
	Sample(i int, dst []float64)
	// Name identifies the sampler in reports.
	Name() string
}

// BoundedSampler is a Sampler backed by a finite design: indices outside
// [0, Len()) are invalid. Campaign drivers validate their sample budget
// against Len() at setup so a too-small design is a returned error, not a
// panic mid-campaign.
type BoundedSampler interface {
	Sampler
	// Len returns the number of valid sample indices.
	Len() int
}

// CheckBudget validates that a campaign budget of n samples fits the
// sampler's design. Unbounded samplers accept any budget.
func CheckBudget(s Sampler, n int) error {
	b, ok := s.(BoundedSampler)
	if !ok {
		return nil
	}
	if n > b.Len() {
		return fmt.Errorf("uq: budget %d exceeds %s design of size %d", n, s.Name(), b.Len())
	}
	return nil
}

// PseudoRandom is the paper's plain Monte Carlo sampling: independent
// uniform draws with a deterministic per-index stream.
type PseudoRandom struct {
	D    int
	Seed uint64
}

// Dim implements Sampler.
func (s PseudoRandom) Dim() int { return s.D }

// Name implements Sampler.
func (s PseudoRandom) Name() string { return "monte-carlo" }

// Sample implements Sampler. Each index gets its own PCG stream keyed by
// (Seed, index), so results do not depend on evaluation order.
func (s PseudoRandom) Sample(i int, dst []float64) {
	rng := rand.New(rand.NewPCG(s.Seed, 0x9e3779b97f4a7c15^uint64(i)*0xbf58476d1ce4e5b9))
	for j := range dst[:s.D] {
		dst[j] = rng.Float64()
	}
}

// LatinHypercube stratifies every dimension into M bins and randomly pairs
// them, reducing variance for additive-ish models at identical cost.
type LatinHypercube struct {
	d, m  int
	perms [][]int
	offs  [][]float64
}

// NewLatinHypercube prepares an LHS design with m samples in d dimensions.
func NewLatinHypercube(d, m int, seed uint64) (*LatinHypercube, error) {
	if d < 1 || m < 1 {
		return nil, fmt.Errorf("uq: invalid LHS design %d×%d", d, m)
	}
	rng := rand.New(rand.NewPCG(seed, 0xda942042e4dd58b5))
	l := &LatinHypercube{d: d, m: m, perms: make([][]int, d), offs: make([][]float64, d)}
	for j := 0; j < d; j++ {
		l.perms[j] = rng.Perm(m)
		l.offs[j] = make([]float64, m)
		for i := range l.offs[j] {
			l.offs[j][i] = rng.Float64()
		}
	}
	return l, nil
}

// Dim implements Sampler.
func (l *LatinHypercube) Dim() int { return l.d }

// Name implements Sampler.
func (l *LatinHypercube) Name() string { return "latin-hypercube" }

// Len returns the design size M.
func (l *LatinHypercube) Len() int { return l.m }

// Sample implements Sampler. Indices beyond the design size panic; the
// campaign drivers reject such budgets up front via CheckBudget, so the
// panic marks a programming error, never a runtime condition.
func (l *LatinHypercube) Sample(i int, dst []float64) {
	if i < 0 || i >= l.m {
		panic(fmt.Sprintf("uq: LHS index %d outside design of size %d", i, l.m))
	}
	for j := 0; j < l.d; j++ {
		dst[j] = (float64(l.perms[j][i]) + l.offs[j][i]) / float64(l.m)
	}
}

// Halton is the quasi-random Halton sequence with a Cranley–Patterson random
// shift (mod 1) to allow unbiased randomized-QMC error estimation.
type Halton struct {
	d     int
	shift []float64
}

// NewHalton returns a d-dimensional shifted Halton sampler. A zero seed
// disables the shift (plain Halton).
func NewHalton(d int, seed uint64) (*Halton, error) {
	if d < 1 || d > len(primes) {
		return nil, fmt.Errorf("uq: Halton supports 1..%d dimensions, got %d", len(primes), d)
	}
	h := &Halton{d: d, shift: make([]float64, d)}
	if seed != 0 {
		rng := rand.New(rand.NewPCG(seed, 0xc2b2ae3d27d4eb4f))
		for j := range h.shift {
			h.shift[j] = rng.Float64()
		}
	}
	return h, nil
}

// Dim implements Sampler.
func (h *Halton) Dim() int { return h.d }

// Name implements Sampler.
func (h *Halton) Name() string { return "halton" }

// Sample implements Sampler (index 0 maps to the sequence's first point).
func (h *Halton) Sample(i int, dst []float64) {
	for j := 0; j < h.d; j++ {
		v := radicalInverse(uint64(i+1), primes[j]) + h.shift[j]
		dst[j] = v - math.Floor(v)
	}
}

var primes = []int{2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67, 71, 73, 79, 83, 89}

func radicalInverse(i uint64, base int) float64 {
	b := uint64(base)
	inv := 1.0 / float64(base)
	f := inv
	v := 0.0
	for i > 0 {
		v += float64(i%b) * f
		i /= b
		f *= inv
	}
	return v
}

// sobolBits is the fixed-point resolution of the Sobol' sequence.
const sobolBits = 52

// sobolPoly holds (s, a, m...) primitive-polynomial data for dimensions ≥ 2
// (dimension 1 is the van der Corput sequence). Values follow the Joe–Kuo
// construction; validity (m_k odd, m_k < 2^k) is property-tested.
var sobolPoly = []struct {
	s, a uint
	m    []uint64
}{
	{1, 0, []uint64{1}},
	{2, 1, []uint64{1, 3}},
	{3, 1, []uint64{1, 3, 1}},
	{3, 2, []uint64{1, 1, 1}},
	{4, 1, []uint64{1, 1, 3, 3}},
	{4, 4, []uint64{1, 3, 5, 13}},
	{5, 2, []uint64{1, 1, 5, 5, 17}},
	{5, 4, []uint64{1, 1, 5, 5, 5}},
	{5, 7, []uint64{1, 1, 7, 11, 19}},
	{5, 11, []uint64{1, 1, 5, 1, 1}},
	{5, 13, []uint64{1, 1, 1, 3, 11}},
	{5, 14, []uint64{1, 3, 5, 5, 31}},
	{6, 1, []uint64{1, 3, 3, 9, 7, 49}},
	{6, 13, []uint64{1, 1, 1, 15, 21, 21}},
	{6, 16, []uint64{1, 3, 1, 13, 27, 49}},
	{6, 19, []uint64{1, 1, 1, 15, 7, 5}},
	{6, 22, []uint64{1, 3, 1, 15, 13, 25}},
	{6, 25, []uint64{1, 1, 5, 5, 19, 61}},
	{7, 1, []uint64{1, 3, 7, 11, 23, 15, 103}},
	{7, 4, []uint64{1, 3, 7, 13, 13, 15, 69}},
	{7, 7, []uint64{1, 1, 3, 13, 7, 35, 63}},
	{7, 8, []uint64{1, 3, 5, 9, 1, 25, 53}},
	{7, 14, []uint64{1, 3, 1, 13, 9, 35, 107}},
}

// Sobol is the Sobol' low-discrepancy sequence (index 0 ↦ sequence element 1
// so the degenerate all-zero point is skipped).
type Sobol struct {
	d int
	v [][]uint64 // direction integers per dimension, sobolBits entries
}

// NewSobol returns a d-dimensional Sobol' sampler (d ≤ MaxSobolDim).
func NewSobol(d int) (*Sobol, error) {
	if d < 1 || d > MaxSobolDim() {
		return nil, fmt.Errorf("uq: Sobol' supports 1..%d dimensions, got %d", MaxSobolDim(), d)
	}
	s := &Sobol{d: d, v: make([][]uint64, d)}
	for j := 0; j < d; j++ {
		s.v[j] = directionIntegers(j)
	}
	return s, nil
}

// MaxSobolDim returns the highest supported Sobol' dimensionality.
func MaxSobolDim() int { return 1 + len(sobolPoly) }

// SobolBits is the fixed-point resolution of the Sobol' sequence — the
// number of output bits in every direction integer.
const SobolBits = sobolBits

// SobolDirections returns the direction integers for one Sobol' dimension
// (0-based, dim < MaxSobolDim). The slice has SobolBits entries, each with
// bit k of the radix-2 expansion in position SobolBits-1-k. Callers own the
// returned slice; it is freshly computed. This is the seam packages such as
// internal/rare build scrambled variants on without duplicating the Joe–Kuo
// tables.
func SobolDirections(dim int) ([]uint64, error) {
	if dim < 0 || dim >= MaxSobolDim() {
		return nil, fmt.Errorf("uq: Sobol' dimension %d outside 0..%d", dim, MaxSobolDim()-1)
	}
	return directionIntegers(dim), nil
}

func directionIntegers(dim int) []uint64 {
	v := make([]uint64, sobolBits)
	if dim == 0 {
		for k := 0; k < sobolBits; k++ {
			v[k] = 1 << (sobolBits - 1 - k)
		}
		return v
	}
	p := sobolPoly[dim-1]
	s := int(p.s)
	m := make([]uint64, sobolBits)
	copy(m, p.m)
	for k := s; k < sobolBits; k++ {
		mk := m[k-s] ^ (m[k-s] << s)
		for j := 1; j < s; j++ {
			if (p.a>>(s-1-j))&1 == 1 {
				mk ^= m[k-j] << j
			}
		}
		m[k] = mk
	}
	for k := 0; k < sobolBits; k++ {
		v[k] = m[k] << (sobolBits - 1 - k)
	}
	return v
}

// Dim implements Sampler.
func (s *Sobol) Dim() int { return s.d }

// Name implements Sampler.
func (s *Sobol) Name() string { return "sobol" }

// Sample implements Sampler using the Gray-code XOR construction, which is
// index-addressable: x_i = ⊕_k v_k over the set bits of gray(i).
func (s *Sobol) Sample(i int, dst []float64) {
	idx := uint64(i + 1)
	gray := idx ^ (idx >> 1)
	const scale = 1.0 / (1 << sobolBits)
	for j := 0; j < s.d; j++ {
		var x uint64
		g := gray
		for k := 0; g != 0 && k < sobolBits; k++ {
			if g&1 == 1 {
				x ^= s.v[j][k]
			}
			g >>= 1
		}
		dst[j] = float64(x) * scale
	}
}

// TransformPoint maps a unit-cube point through per-dimension distributions.
func TransformPoint(dists []Dist, u, dst []float64) {
	for j, d := range dists {
		// Clamp away from {0,1} so quantiles stay finite.
		p := u[j]
		if p < 1e-15 {
			p = 1e-15
		}
		if p > 1-1e-15 {
			p = 1 - 1e-15
		}
		dst[j] = d.Quantile(p)
	}
}
