package uq

import (
	"fmt"
	"math"
)

// CollocationResult holds the statistics computed from a (sparse) tensor
// collocation study.
type CollocationResult struct {
	Mean, Variance []float64 // per output
	Evaluations    int
}

// StdDev returns the standard deviation of output j (negative variances from
// sparse-grid cancellation are clamped at zero).
func (r *CollocationResult) StdDev(j int) float64 {
	if r.Variance[j] < 0 {
		return 0
	}
	return math.Sqrt(r.Variance[j])
}

// TensorCollocation computes E[f] and Var[f] with a full tensor-product
// Gauss rule of n points per dimension. Cost n^d evaluations — use for small
// d or as a dense reference for the Smolyak grid.
func TensorCollocation(factory ModelFactory, dists []Dist, n int) (*CollocationResult, error) {
	d := len(dists)
	if d == 0 {
		return nil, fmt.Errorf("uq: no dimensions")
	}
	total := 1
	for j := 0; j < d; j++ {
		total *= n
		if total > 2_000_000 {
			return nil, fmt.Errorf("uq: tensor grid of %d^%d points is too large; use SmolyakCollocation", n, d)
		}
	}
	m, err := factory()
	if err != nil {
		return nil, err
	}
	nodes := make([][]float64, d)
	weights := make([][]float64, d)
	for j := 0; j < d; j++ {
		r, params, err := RuleFor(dists[j], n)
		if err != nil {
			return nil, err
		}
		nodes[j] = params
		weights[j] = r.Weights
	}
	nOut := m.NumOutputs()
	mean := make([]float64, nOut)
	second := make([]float64, nOut)
	params := make([]float64, d)
	out := make([]float64, nOut)
	idx := make([]int, d)
	evals := 0
	for {
		w := 1.0
		for j := 0; j < d; j++ {
			params[j] = nodes[j][idx[j]]
			w *= weights[j][idx[j]]
		}
		if err := safeEval(m, params, out); err != nil {
			return nil, fmt.Errorf("uq: collocation evaluation failed: %w", err)
		}
		evals++
		for k, v := range out {
			mean[k] += w * v
			second[k] += w * v * v
		}
		// Advance the mixed-radix counter.
		j := 0
		for ; j < d; j++ {
			idx[j]++
			if idx[j] < n {
				break
			}
			idx[j] = 0
		}
		if j == d {
			break
		}
	}
	res := &CollocationResult{Mean: mean, Variance: make([]float64, nOut), Evaluations: evals}
	for k := range second {
		res.Variance[k] = second[k] - mean[k]*mean[k]
	}
	return res, nil
}

// SmolyakCollocation computes E[f] and Var[f] on a Smolyak sparse grid of
// the given level (level ≥ 0; level 0 is the single-point rule). The
// combination technique over non-nested Gauss rules is used:
//
//	A(q,d) = Σ_{q−d+1 ≤ |i| ≤ q} (−1)^{q−|i|} C(d−1, q−|i|) ⊗_j U^{i_j}
//
// with q = d + level and the 1D rule U^i using i points. The cost grows
// polynomially in d — for d = 12, level 2 needs a few hundred evaluations
// versus 1000 for the paper's Monte Carlo study.
func SmolyakCollocation(factory ModelFactory, dists []Dist, level int) (*CollocationResult, error) {
	d := len(dists)
	if d == 0 {
		return nil, fmt.Errorf("uq: no dimensions")
	}
	if level < 0 {
		return nil, fmt.Errorf("uq: negative Smolyak level %d", level)
	}
	m, err := factory()
	if err != nil {
		return nil, err
	}
	nOut := m.NumOutputs()
	q := d + level

	// Cache 1D rules per (dimension, points).
	type ruleKey struct{ j, n int }
	rules := map[ruleKey]struct {
		params  []float64
		weights []float64
	}{}
	getRule := func(j, n int) ([]float64, []float64, error) {
		k := ruleKey{j, n}
		if r, ok := rules[k]; ok {
			return r.params, r.weights, nil
		}
		r, params, err := RuleFor(dists[j], n)
		if err != nil {
			return nil, nil, err
		}
		rules[k] = struct {
			params  []float64
			weights []float64
		}{params, r.Weights}
		return params, r.Weights, nil
	}

	mean := make([]float64, nOut)
	second := make([]float64, nOut)
	evals := 0

	// Enumerate multi-indices i ≥ 1 with q−d+1 ≤ |i| ≤ q.
	multi := make([]int, d)
	var walk func(j, remMin, remMax int) error
	var evalTensor func(coeff float64) error

	evalTensor = func(coeff float64) error {
		idx := make([]int, d)
		params := make([]float64, d)
		out := make([]float64, nOut)
		for {
			w := coeff
			for j := 0; j < d; j++ {
				p, ws, err := getRule(j, multi[j])
				if err != nil {
					return err
				}
				params[j] = p[idx[j]]
				w *= ws[idx[j]]
			}
			if err := safeEval(m, params, out); err != nil {
				return fmt.Errorf("uq: Smolyak evaluation failed: %w", err)
			}
			evals++
			for k, v := range out {
				mean[k] += w * v
				second[k] += w * v * v
			}
			j := 0
			for ; j < d; j++ {
				idx[j]++
				if idx[j] < multi[j] {
					break
				}
				idx[j] = 0
			}
			if j == d {
				return nil
			}
		}
	}

	walk = func(j, remMin, remMax int) error {
		if j == d-1 {
			lo := remMin
			if lo < 1 {
				lo = 1
			}
			for v := lo; v <= remMax; v++ {
				multi[j] = v
				total := 0
				for _, x := range multi {
					total += x
				}
				diff := q - total
				coeff := float64(sign(diff)) * binom(d-1, diff)
				if coeff != 0 {
					if err := evalTensor(coeff); err != nil {
						return err
					}
				}
			}
			return nil
		}
		for v := 1; v <= remMax-(d-1-j); v++ {
			multi[j] = v
			if err := walk(j+1, remMin-v, remMax-v); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(0, q-d+1, q); err != nil {
		return nil, err
	}

	res := &CollocationResult{Mean: mean, Variance: make([]float64, nOut), Evaluations: evals}
	for k := range second {
		res.Variance[k] = second[k] - mean[k]*mean[k]
	}
	return res, nil
}

func sign(k int) int {
	if k%2 == 0 {
		return 1
	}
	return -1
}

func binom(n, k int) float64 {
	if k < 0 || k > n {
		return 0
	}
	r := 1.0
	for i := 1; i <= k; i++ {
		r = r * float64(n-k+i) / float64(i)
	}
	return r
}
