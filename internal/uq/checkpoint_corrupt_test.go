package uq

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// Corrupt checkpoint files — a machine dying mid-write before PR 3's
// atomic rename existed, a half-copied file, disk corruption — must
// surface as clean errors at load time, never panic or silently resume
// from garbage; and after the operator deletes the bad file, a fresh
// start from the same path must work.

func TestLoadCheckpointIfExistsAbsent(t *testing.T) {
	cp, err := LoadCheckpointIfExists(filepath.Join(t.TempDir(), "nope.ckpt"))
	if cp != nil || err != nil {
		t.Fatalf("absent checkpoint: got (%v, %v), want (nil, nil)", cp, err)
	}
}

func TestCorruptCampaignCheckpoint(t *testing.T) {
	dists := normDists(2)
	path := filepath.Join(t.TempDir(), "camp.ckpt")
	run := func(resume *Checkpoint) (*CampaignResult, error) {
		return RunCampaign(context.Background(), SingleFactory(&vecModel{nOut: 4}), dists,
			PseudoRandom{D: 2, Seed: 6}, CampaignOptions{
				MaxSamples: 64, Workers: 1, CheckpointPath: path, CheckpointEvery: 16, Resume: resume,
			})
	}
	if _, err := run(nil); err != nil {
		t.Fatal(err)
	}
	good, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name string
		data []byte
	}{
		{"garbage", []byte("{{{ not json at all \x00\xff")},
		{"truncated", good[:len(good)/2]},
		{"empty", nil},
		{"wrong shape", []byte(`{"version":1}`)}, // parses, but carries no state
		{"bad version", []byte(`{"version":99}`)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := os.WriteFile(path, tc.data, 0o644); err != nil {
				t.Fatal(err)
			}
			cp, err := LoadCheckpointIfExists(path)
			if err == nil {
				t.Fatalf("corrupt checkpoint loaded without error: %+v", cp)
			}
			if cp != nil {
				t.Errorf("corrupt load returned state alongside the error")
			}
		})
	}

	// Fresh start after the operator removes the bad file: same path,
	// no resume — must run and overwrite cleanly.
	if err := os.WriteFile(path, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	camp, err := run(nil)
	if err != nil {
		t.Fatalf("fresh start over a corrupt checkpoint file: %v", err)
	}
	if camp.Evaluated != 64 {
		t.Fatalf("fresh start evaluated %d of 64", camp.Evaluated)
	}
	if _, err := LoadCheckpoint(path); err != nil {
		t.Fatalf("checkpoint rewritten by the fresh start does not load: %v", err)
	}
}

func TestCorruptShardCheckpoint(t *testing.T) {
	dists := normDists(2)
	plan, err := PlanShards(64, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	base := filepath.Join(t.TempDir(), "c.ckpt")
	path := ShardCheckpointPath(base, 0)
	opt := ShardOptions{Workers: 1, Tag: "m", CheckpointPath: base, CheckpointEvery: 4, Resume: true}
	run := func(o ShardOptions) (*ShardResult, error) {
		return RunShard(context.Background(), SingleFactory(&vecModel{nOut: 2}), dists,
			PseudoRandom{D: 2, Seed: 1}, plan, 0, o)
	}
	if _, err := run(opt); err != nil {
		t.Fatal(err)
	}
	good, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	for _, tc := range []struct {
		name string
		data []byte
	}{
		{"garbage", []byte("\x01\x02 definitely not json")},
		{"truncated", good[:len(good)/2]},
		{"bad version", []byte(`{"version":7}`)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			if err := os.WriteFile(path, tc.data, 0o644); err != nil {
				t.Fatal(err)
			}
			if _, err := run(opt); err == nil {
				t.Fatal("resume from a corrupt shard checkpoint accepted")
			}
		})
	}

	// Block-count mismatch: a checkpoint whose folded-sample position and
	// accumulator blocks disagree (torn state) is rejected, not absorbed.
	if err := os.WriteFile(path, good, 0o644); err != nil {
		t.Fatal(err)
	}
	cp, err := LoadShardCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(cp.Blocks) < 2 {
		t.Fatalf("test premise: want ≥ 2 blocks in the checkpoint, got %d", len(cp.Blocks))
	}
	cp.Blocks = cp.Blocks[:len(cp.Blocks)-1]
	if err := cp.Save(path); err != nil {
		t.Fatal(err)
	}
	_, err = run(opt)
	if err == nil || !strings.Contains(err.Error(), "blocks") {
		t.Fatalf("block-count-mismatched checkpoint: want a corrupt-state error naming blocks, got %v", err)
	}

	// Fresh start is usable: Resume=false ignores and overwrites the
	// torn file, completing the shard in full.
	fresh := opt
	fresh.Resume = false
	res, err := run(fresh)
	if err != nil {
		t.Fatalf("fresh shard run over a torn checkpoint: %v", err)
	}
	if !res.Complete() {
		t.Fatalf("fresh shard run incomplete: %d of [%d,%d)", res.Evaluated, res.Start, res.End)
	}
}
