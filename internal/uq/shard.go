// Sharded campaign execution: a deterministic partition of the sample index
// range into K self-contained shards, each runnable on a different process
// or machine, whose merged result is bit-identical for ANY shard count K,
// worker placement or per-shard worker count.
//
// The invariance trick is a fixed merge granularity: the index range is cut
// into blocks of ShardPlan.BlockSize samples (a property of the campaign,
// never of K), every shard folds each of its blocks into a fresh
// stats.StreamStats in strict index order, and MergeShards folds the blocks
// back together in global block order. Because block boundaries and the
// merge sequence do not depend on K, the merged accumulators are the same
// bits no matter how the blocks were grouped into shards or which worker
// computed them. (The merged result is deterministic but not bit-identical
// to the single-fold streaming path of RunCampaign, whose accumulators see
// one unpartitioned stream; compare sharded runs against a 1-shard run.)
package uq

import (
	"context"
	"errors"
	"fmt"
	"io/fs"
	"runtime"
	"sync"

	"etherm/internal/stats"
)

// DefaultShardBlockSize is the default merge granularity of a shard plan.
// It must be a property of the campaign alone — deriving it from the shard
// or worker count would break cross-K bit-identity.
const DefaultShardBlockSize = 64

// ShardPlan is the deterministic partition of a campaign's sample index
// range [0, MaxSamples) into NumShards contiguous, block-aligned shards. It
// is pure data (JSON-serializable) so a coordinator can ship it to workers;
// two plans with equal fields describe byte-identical work.
type ShardPlan struct {
	MaxSamples int `json:"max_samples"`
	BlockSize  int `json:"block_size"`
	NumShards  int `json:"num_shards"`
}

// PlanShards partitions maxSamples samples into shards contiguous shards
// aligned to blockSize (0 = DefaultShardBlockSize). Blocks are distributed
// as evenly as possible; when there are fewer blocks than shards the tail
// shards are empty (still valid: they complete immediately).
func PlanShards(maxSamples, shards, blockSize int) (*ShardPlan, error) {
	if maxSamples <= 0 {
		return nil, fmt.Errorf("uq: shard plan needs a positive sample budget, got %d", maxSamples)
	}
	if shards <= 0 {
		return nil, fmt.Errorf("uq: shard plan needs at least one shard, got %d", shards)
	}
	if blockSize < 0 {
		return nil, fmt.Errorf("uq: negative shard block size %d", blockSize)
	}
	if blockSize == 0 {
		blockSize = DefaultShardBlockSize
	}
	return &ShardPlan{MaxSamples: maxSamples, BlockSize: blockSize, NumShards: shards}, nil
}

// Validate checks a plan received over the wire.
func (p *ShardPlan) Validate() error {
	if p.MaxSamples <= 0 || p.BlockSize <= 0 || p.NumShards <= 0 {
		return fmt.Errorf("uq: invalid shard plan %+v", *p)
	}
	return nil
}

// NumBlocks returns the number of merge blocks of the plan.
func (p *ShardPlan) NumBlocks() int {
	return (p.MaxSamples + p.BlockSize - 1) / p.BlockSize
}

// Shard returns the sample index range [start, end) of shard k. Shards are
// contiguous, block-aligned and cover [0, MaxSamples) exactly; an empty
// shard has start == end.
func (p *ShardPlan) Shard(k int) (start, end int) {
	nb := p.NumBlocks()
	base, rem := nb/p.NumShards, nb%p.NumShards
	b0 := k*base + min(k, rem)
	b1 := b0 + base
	if k < rem {
		b1++
	}
	start = min(b0*p.BlockSize, p.MaxSamples)
	end = min(b1*p.BlockSize, p.MaxSamples)
	return start, end
}

// shardBlocks returns how many blocks span [start, next) of a shard whose
// start is block-aligned.
func (p *ShardPlan) shardBlocks(start, next int) int {
	if next <= start {
		return 0
	}
	return (next - start + p.BlockSize - 1) / p.BlockSize
}

// ShardOptions controls one shard execution (and the local sequential
// driver RunShardedCampaign). Unlike CampaignOptions there are no adaptive
// stopping targets: a sharded campaign is budget-only, because a stopping
// decision would need the globally folded prefix no single shard sees.
type ShardOptions struct {
	// Workers bounds parallel model evaluations inside the shard;
	// 0 = GOMAXPROCS. Per-block folding is in strict index order, so shard
	// results are bit-identical for any worker count.
	Workers int
	// Threshold enables exceedance/failure-probability tracking (T_crit).
	Threshold float64
	// Tag is the caller's model identity, recorded in shard results and
	// checkpoints and required to be consistent at merge and resume time.
	Tag string
	// CheckpointPath, when set, is the BASE checkpoint path of the
	// campaign; shard k persists to ShardCheckpointPath(base, k)
	// ("<base>.shard-k"), so concurrent shards never mix state.
	CheckpointPath  string
	CheckpointEvery int
	// Resume loads an existing shard checkpoint file (fingerprint-, tag-
	// and plan-validated) and continues from it; when false an existing
	// file is ignored and overwritten.
	Resume bool
	// OnSample forwards per-evaluation progress; called concurrently from
	// worker goroutines.
	OnSample func(i int, err error)
}

// ShardResult is the self-contained outcome of one shard: per-block
// accumulator state plus accounting. It JSON-round-trips exactly, so a
// worker can post it to a coordinator and the merged campaign stays
// bit-identical to a local run.
type ShardResult struct {
	Shard     int    `json:"shard"`
	Start     int    `json:"start"`
	End       int    `json:"end"`
	BlockSize int    `json:"block_size"`
	Sampler   string `json:"sampler"`
	SamplerFP uint64 `json:"sampler_fp,omitempty"`
	Tag       string `json:"tag,omitempty"`

	NumOutputs int `json:"num_outputs"`
	// Evaluated counts samples consumed from [Start, End) including
	// failures; a complete shard has Evaluated == End-Start.
	Evaluated int `json:"evaluated"`
	Failures  int `json:"failures"`
	// Blocks holds one accumulator set per merge block of the shard, in
	// index order. A block where every sample failed has zero-count
	// accumulators and merges as a no-op.
	Blocks []*stats.StreamStats `json:"blocks"`
}

// Complete reports whether the shard consumed its whole index range.
func (r *ShardResult) Complete() bool { return r.Evaluated == r.End-r.Start }

// ShardCheckpoint is the resumable state of one shard, the per-shard
// analogue of Checkpoint. It lives in its own ".shard-N" file so resumed
// sharded campaigns never mix shard state.
type ShardCheckpoint struct {
	Version   int    `json:"version"`
	Sampler   string `json:"sampler"`
	SamplerFP uint64 `json:"sampler_fp,omitempty"`
	Tag       string `json:"tag,omitempty"`

	Shard      int     `json:"shard"`
	Start      int     `json:"start"`
	End        int     `json:"end"`
	BlockSize  int     `json:"block_size"`
	NumOutputs int     `json:"num_outputs"`
	Threshold  float64 `json:"threshold,omitempty"`

	Next     int                  `json:"next"`
	Failures int                  `json:"failures"`
	Blocks   []*stats.StreamStats `json:"blocks"`
}

// ShardCheckpointPath returns the checkpoint file of shard k under a
// campaign's base checkpoint path: "<base>.shard-<k>".
func ShardCheckpointPath(base string, k int) string {
	return fmt.Sprintf("%s.shard-%d", base, k)
}

// Save writes the shard checkpoint atomically (temp file + rename).
func (c *ShardCheckpoint) Save(path string) error {
	return saveAtomicJSON(path, c)
}

// LoadShardCheckpoint reads a shard checkpoint file.
func LoadShardCheckpoint(path string) (*ShardCheckpoint, error) {
	var c ShardCheckpoint
	if err := loadJSON(path, &c); err != nil {
		return nil, err
	}
	if c.Version != 1 {
		return nil, fmt.Errorf("uq: shard checkpoint %s: unsupported version %d", path, c.Version)
	}
	return &c, nil
}

// validate rejects a stale or foreign shard checkpoint — PR 3's
// fingerprint/tag guard applied per shard, plus the plan geometry that
// decides which samples belong to the shard.
func (c *ShardCheckpoint) validate(s Sampler, fp uint64, plan *ShardPlan, shard, start, end, nOut int, opt ShardOptions) error {
	fpErr := checkSamplerFP(c.SamplerFP, s)
	switch {
	case c.Sampler != s.Name():
		return fmt.Errorf("uq: shard checkpoint sampler %q does not match campaign sampler %q", c.Sampler, s.Name())
	case fpErr != nil:
		return fpErr
	case c.Tag != opt.Tag:
		return fmt.Errorf("uq: shard checkpoint tag %q does not match campaign tag %q (model or configuration changed)", c.Tag, opt.Tag)
	case c.Shard != shard || c.Start != start || c.End != end || c.BlockSize != plan.BlockSize:
		return fmt.Errorf("uq: shard checkpoint covers shard %d [%d,%d) blocks of %d, campaign plans shard %d [%d,%d) blocks of %d (shard plan changed)",
			c.Shard, c.Start, c.End, c.BlockSize, shard, start, end, plan.BlockSize)
	case c.NumOutputs != nOut:
		return fmt.Errorf("uq: shard checkpoint has %d outputs, model has %d", c.NumOutputs, nOut)
	case c.Threshold != opt.Threshold:
		return fmt.Errorf("uq: shard checkpoint threshold %g does not match campaign threshold %g", c.Threshold, opt.Threshold)
	case c.Next < start || c.Next > end:
		return fmt.Errorf("uq: shard checkpoint position %d outside shard range [%d,%d)", c.Next, start, end)
	case len(c.Blocks) != plan.shardBlocks(start, c.Next):
		return fmt.Errorf("uq: shard checkpoint has %d blocks for %d folded samples (corrupt state)", len(c.Blocks), c.Next-start)
	}
	return nil
}

// RunShard evaluates shard k of the plan: sampler points [start, end)
// through models from the factory, folded in strict index order into one
// fresh stats.StreamStats per merge block. The result is bit-identical for
// any worker count, and — because block boundaries come from the plan, not
// the shard — byte-for-byte the state MergeShards needs for cross-K
// invariance.
//
// With a checkpoint configured the shard persists its state to
// ShardCheckpointPath(opt.CheckpointPath, k) every CheckpointEvery folded
// samples and on return; with opt.Resume an existing (validated) checkpoint
// continues bit-for-bit. On context cancellation the partial result is
// returned together with the context error.
func RunShard(ctx context.Context, factory ModelFactory, dists []Dist, s Sampler, plan *ShardPlan, shard int, opt ShardOptions) (*ShardResult, error) {
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	if shard < 0 || shard >= plan.NumShards {
		return nil, fmt.Errorf("uq: shard %d outside plan of %d shards", shard, plan.NumShards)
	}
	if s.Dim() != len(dists) {
		return nil, fmt.Errorf("uq: sampler dimension %d does not match %d distributions", s.Dim(), len(dists))
	}
	if err := CheckBudget(s, plan.MaxSamples); err != nil {
		return nil, err
	}
	start, end := plan.Shard(shard)
	fp := samplerFingerprint(s)

	res := &ShardResult{
		Shard: shard, Start: start, End: end, BlockSize: plan.BlockSize,
		Sampler: s.Name(), SamplerFP: fp, Tag: opt.Tag,
	}

	probe, err := factory()
	if err != nil {
		return nil, fmt.Errorf("uq: model factory: %w", err)
	}
	if probe.Dim() != len(dists) {
		return nil, fmt.Errorf("uq: model dimension %d does not match %d distributions", probe.Dim(), len(dists))
	}
	nOut := probe.NumOutputs()
	res.NumOutputs = nOut

	cpPath := ""
	if opt.CheckpointPath != "" {
		cpPath = ShardCheckpointPath(opt.CheckpointPath, shard)
	}
	next, failures := start, 0
	var blocks []*stats.StreamStats
	if opt.Resume && cpPath != "" {
		cp, err := LoadShardCheckpoint(cpPath)
		if errors.Is(err, fs.ErrNotExist) {
			cp = nil
		} else if err != nil {
			return nil, err
		}
		if cp != nil {
			if err := cp.validate(s, fp, plan, shard, start, end, nOut, opt); err != nil {
				return nil, err
			}
			next, failures, blocks = cp.Next, cp.Failures, cp.Blocks
		}
	}
	res.Evaluated = next - start
	res.Failures = failures
	res.Blocks = blocks
	if next >= end {
		return res, nil // empty shard or already-complete checkpoint
	}

	// Validate the accumulator construction once, before any worker starts:
	// the in-loop constructor below then cannot fail (it sketches no
	// quantiles), keeping the fold loop free of early returns that would
	// strand the worker goroutines.
	if _, err := stats.NewStreamStats(nOut, opt.Threshold, nil); err != nil {
		return nil, err
	}
	cpEvery := opt.CheckpointEvery
	if cpEvery <= 0 {
		cpEvery = DefaultCheckpointEvery
	}
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if remaining := end - next; workers > remaining {
		workers = remaining
	}

	models := make([]Model, workers)
	models[0] = probe
	for w := 1; w < workers; w++ {
		m, err := factory()
		if err != nil {
			return nil, fmt.Errorf("uq: worker setup: %w", err)
		}
		models[w] = m
	}

	dim := s.Dim()
	paramPool := &sync.Pool{New: func() any { return make([]float64, dim) }}
	outPool := &sync.Pool{New: func() any { return make([]float64, nOut) }}
	recycle := func(m sampleMsg) {
		paramPool.Put(m.params)
		outPool.Put(m.out)
	}

	jobs := make(chan int)
	results := make(chan sampleMsg, workers)
	go func() {
		defer close(jobs)
		for i := next; i < end; i++ {
			select {
			case jobs <- i:
			case <-ctx.Done():
				return
			}
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			m := models[w]
			u := make([]float64, dim)
			for i := range jobs {
				params := paramPool.Get().([]float64)
				out := outPool.Get().([]float64)
				s.Sample(i, u)
				TransformPoint(dists, u, params)
				err := safeEval(m, params, out)
				if opt.OnSample != nil {
					opt.OnSample(i, err)
				}
				results <- sampleMsg{i: i, params: params, out: out, err: err}
			}
		}(w)
	}
	go func() {
		wg.Wait()
		close(results)
	}()

	var cpErr error
	writeCheckpoint := func() {
		if cpPath == "" || cpErr != nil {
			return
		}
		cp := &ShardCheckpoint{
			Version: 1, Sampler: s.Name(), SamplerFP: fp, Tag: opt.Tag,
			Shard: shard, Start: start, End: end, BlockSize: plan.BlockSize,
			NumOutputs: nOut, Threshold: opt.Threshold,
			Next: next, Failures: res.Failures, Blocks: blocks,
		}
		cpErr = cp.Save(cpPath)
	}

	// Ordered fold through a reorder buffer, as in RunCampaign, with one
	// twist: crossing a global block boundary starts a fresh accumulator
	// set, so blocks are independent of everything but the sample stream.
	var firstErr error
	pending := make(map[int]sampleMsg, workers)
	for msg := range results {
		pending[msg.i] = msg
		for {
			m, ok := pending[next]
			if !ok {
				break
			}
			delete(pending, next)
			if next%plan.BlockSize == 0 || len(blocks) == 0 {
				st, _ := stats.NewStreamStats(nOut, opt.Threshold, nil) // validated above
				blocks = append(blocks, st)
			}
			if m.err != nil {
				res.Failures++
				if firstErr == nil {
					firstErr = m.err
				}
			} else {
				blocks[len(blocks)-1].Add(m.out)
			}
			recycle(m)
			next++
			res.Evaluated = next - start
			if next%cpEvery == 0 && next < end {
				writeCheckpoint()
			}
		}
	}
	for _, m := range pending {
		recycle(m)
	}
	res.Blocks = blocks

	writeCheckpoint()
	if cpErr != nil {
		return res, fmt.Errorf("uq: shard checkpoint: %w", cpErr)
	}
	if res.Failures == res.Evaluated && res.Evaluated > 0 && ctx.Err() == nil {
		return nil, fmt.Errorf("uq: every evaluation of shard %d failed; first error: %w", shard, firstErr)
	}
	if ctx.Err() != nil && next < end {
		return res, ctx.Err()
	}
	return res, nil
}

// MergeShards folds complete shard results back into one campaign result by
// merging their blocks in global block order. The merge sequence depends
// only on the plan — never on K, worker placement or per-shard worker
// counts — so any partitioning of the same sample stream produces
// bit-identical merged accumulators. Incomplete, inconsistent (mixed
// fingerprint/tag) or missing shards are rejected.
func MergeShards(plan *ShardPlan, results []*ShardResult) (*CampaignResult, error) {
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	if len(results) != plan.NumShards {
		return nil, fmt.Errorf("uq: merge got %d shard results, plan has %d shards", len(results), plan.NumShards)
	}
	ordered := make([]*ShardResult, plan.NumShards)
	for _, r := range results {
		if r == nil {
			return nil, fmt.Errorf("uq: merge got a nil shard result")
		}
		if r.Shard < 0 || r.Shard >= plan.NumShards {
			return nil, fmt.Errorf("uq: shard index %d outside plan of %d shards", r.Shard, plan.NumShards)
		}
		if ordered[r.Shard] != nil {
			return nil, fmt.Errorf("uq: duplicate result for shard %d", r.Shard)
		}
		ordered[r.Shard] = r
	}

	first := ordered[0]
	res := &CampaignResult{
		SamplerName: first.Sampler,
		SamplerFP:   first.SamplerFP,
		Tag:         first.Tag,
		NumOutputs:  first.NumOutputs,
		Requested:   plan.MaxSamples,
		StopReason:  StopBudget,
	}
	var merged *stats.StreamStats
	for k, r := range ordered {
		start, end := plan.Shard(k)
		if r.Start != start || r.End != end || r.BlockSize != plan.BlockSize {
			return nil, fmt.Errorf("uq: shard %d result covers [%d,%d) blocks of %d, plan says [%d,%d) blocks of %d",
				k, r.Start, r.End, r.BlockSize, start, end, plan.BlockSize)
		}
		if !r.Complete() {
			return nil, fmt.Errorf("uq: shard %d is incomplete (%d of %d samples)", k, r.Evaluated, end-start)
		}
		if r.Sampler != first.Sampler || r.SamplerFP != first.SamplerFP {
			return nil, fmt.Errorf("uq: shard %d came from sampler %q (fp %x), shard 0 from %q (fp %x) — mixed sample streams",
				k, r.Sampler, r.SamplerFP, first.Sampler, first.SamplerFP)
		}
		if r.Tag != first.Tag {
			return nil, fmt.Errorf("uq: shard %d tag %q does not match shard 0 tag %q — mixed models", k, r.Tag, first.Tag)
		}
		if r.NumOutputs != first.NumOutputs {
			return nil, fmt.Errorf("uq: shard %d has %d outputs, shard 0 has %d", k, r.NumOutputs, first.NumOutputs)
		}
		if want := plan.shardBlocks(start, end); len(r.Blocks) != want {
			return nil, fmt.Errorf("uq: shard %d has %d blocks, expected %d", k, len(r.Blocks), want)
		}
		res.Evaluated += r.Evaluated
		res.Failures += r.Failures
		for _, b := range r.Blocks {
			if merged == nil {
				st, err := stats.NewStreamStats(first.NumOutputs, b.Threshold, nil)
				if err != nil {
					return nil, err
				}
				merged = st
			}
			if err := merged.Merge(b); err != nil {
				return nil, fmt.Errorf("uq: merging shard %d: %w", k, err)
			}
		}
	}
	if merged == nil {
		// Every shard was empty; impossible for a valid plan, but keep the
		// result well-formed.
		st, err := stats.NewStreamStats(first.NumOutputs, 0, nil)
		if err != nil {
			return nil, err
		}
		merged = st
	}
	res.Stats = merged
	if res.Failures == res.Evaluated && res.Evaluated > 0 {
		return nil, fmt.Errorf("uq: every evaluation of the sharded campaign failed")
	}
	return res, nil
}

// RunShardedCampaign is the local driver: it runs every shard of the plan
// in shard order through RunShard and merges the results. It exists for
// single-box sharded runs (parity testing, resumable partitioned jobs) —
// the fleet coordinator and etworker pull loop distribute the same shards
// across processes and merge with the same MergeShards, so both paths are
// bit-identical.
func RunShardedCampaign(ctx context.Context, factory ModelFactory, dists []Dist, s Sampler, plan *ShardPlan, opt ShardOptions) (*CampaignResult, error) {
	results := make([]*ShardResult, plan.NumShards)
	for k := 0; k < plan.NumShards; k++ {
		r, err := RunShard(ctx, factory, dists, s, plan, k, opt)
		if err != nil {
			return nil, fmt.Errorf("uq: shard %d: %w", k, err)
		}
		results[k] = r
	}
	return MergeShards(plan, results)
}
