package measure

import (
	"math"
	"testing"

	"etherm/internal/stats"
)

func TestCampaignReproducesPaperFit(t *testing.T) {
	// Average over many campaign seeds: the fitted (µ, σ) must center on the
	// paper's N(0.17, 0.048) within small-sample scatter.
	var mus, sigmas []float64
	for seed := uint64(1); seed <= 40; seed++ {
		res, err := DefaultCampaign(seed).FitElongationPDF(8)
		if err != nil {
			t.Fatal(err)
		}
		mus = append(mus, res.Fit.Mu)
		sigmas = append(sigmas, res.Fit.Sigma)
	}
	if m := stats.Mean(mus); math.Abs(m-0.17) > 0.02 {
		t.Errorf("mean fitted µ = %g, want ≈ 0.17", m)
	}
	if s := stats.Mean(sigmas); math.Abs(s-0.048) > 0.02 {
		t.Errorf("mean fitted σ = %g, want ≈ 0.048", s)
	}
}

func TestCensoringImputesAverage(t *testing.T) {
	c := DefaultCampaign(7)
	samples, err := c.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 12 {
		t.Fatalf("%d samples, want 12", len(samples))
	}
	seen := 0
	visSum := 0.0
	for i, s := range samples {
		if s.DHSeen {
			seen++
			visSum += s.True.DeltaH
			if s.Measured.DeltaH != s.True.DeltaH {
				t.Error("visible wire's Δh altered by measurement")
			}
		} else {
			_ = i
		}
	}
	if seen != 6 {
		t.Fatalf("%d visible wires, want 6 (paper)", seen)
	}
	avg := visSum / 6
	for _, s := range samples {
		if !s.DHSeen && math.Abs(s.Measured.DeltaH-avg) > 1e-15 {
			t.Errorf("censored wire got Δh = %g, want imputed average %g", s.Measured.DeltaH, avg)
		}
	}
}

func TestElongationsPhysical(t *testing.T) {
	for seed := uint64(1); seed < 20; seed++ {
		samples, err := DefaultCampaign(seed).Run()
		if err != nil {
			t.Fatal(err)
		}
		for i, d := range Elongations(samples) {
			if d < 0 || d >= 1 {
				t.Fatalf("seed %d wire %d: δ = %g outside [0,1)", seed, i, d)
			}
		}
	}
}

func TestDeterministicPerSeed(t *testing.T) {
	a, err := DefaultCampaign(5).Run()
	if err != nil {
		t.Fatal(err)
	}
	b, err := DefaultCampaign(5).Run()
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].True != b[i].True {
			t.Fatal("campaign not deterministic per seed")
		}
	}
}

func TestValidation(t *testing.T) {
	c := DefaultCampaign(1)
	c.NumWires = 1
	if _, err := c.Run(); err == nil {
		t.Error("single-wire campaign accepted")
	}
	c = DefaultCampaign(1)
	c.VisibleDH = 99
	if _, err := c.Run(); err == nil {
		t.Error("too many visible wires accepted")
	}
}
