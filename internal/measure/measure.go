// Package measure is the synthetic substitute for the paper's X-ray
// measurement campaign (Fig. 3): it generates physical wire geometries with
// placement and bending imperfections, "measures" them with the camera
// limitation the paper reports (the bending elongation Δh is observable for
// only 6 of the 12 wires; the average of the visible ones is imputed for the
// rest), extracts the relative elongations δ = (L−d)/L and fits the normal
// PDF of Fig. 5.
//
// The generator is calibrated so the fitted law reproduces the paper's
// N(µ = 0.17, σ = 0.048); the downstream UQ consumes only that fitted law.
package measure

import (
	"fmt"
	"math/rand/v2"

	"etherm/internal/bondwire"
	"etherm/internal/stats"
)

// Campaign parameterizes the synthetic measurement campaign.
type Campaign struct {
	NumWires   int     // wires on the chip (12 in the paper)
	VisibleDH  int     // wires whose Δh is visible in the perspective view (6)
	Diameter   float64 // wire diameter, m
	MeanDirect float64 // mean direct distance d, m
	SpanDirect float64 // half-spread of d across the package, m
	// Imperfection magnitudes (calibrated): misplacement Δs ~ |N(0, SigmaS)|
	// plus bending Δh ~ N(MuH, SigmaH) clamped at ≥ 0.
	SigmaS      float64
	MuH, SigmaH float64
	Seed        uint64
}

// DefaultCampaign returns a campaign calibrated to reproduce the paper's
// fitted elongation law within small-sample scatter.
func DefaultCampaign(seed uint64) Campaign {
	return Campaign{
		NumWires:   12,
		VisibleDH:  6,
		Diameter:   25.4e-6,
		MeanDirect: 1.29e-3,
		SpanDirect: 0.25e-3,
		SigmaS:     0.050e-3,
		MuH:        0.22e-3,
		SigmaH:     0.055e-3,
		Seed:       seed,
	}
}

// Validate checks the campaign parameters.
func (c Campaign) Validate() error {
	if c.NumWires < 2 {
		return fmt.Errorf("measure: need ≥2 wires, got %d", c.NumWires)
	}
	if c.VisibleDH < 1 || c.VisibleDH > c.NumWires {
		return fmt.Errorf("measure: visible Δh count %d outside 1..%d", c.VisibleDH, c.NumWires)
	}
	if c.Diameter <= 0 || c.MeanDirect <= 0 {
		return fmt.Errorf("measure: non-positive diameter or direct distance")
	}
	return nil
}

// Sample is one measured wire.
type Sample struct {
	True     bondwire.Geometry // ground-truth geometry (unknown to the lab)
	Measured bondwire.Geometry // what the X-ray measurement yields
	DHSeen   bool              // whether Δh was visible in the perspective view
}

// Run generates and measures the wire population.
func (c Campaign) Run() ([]Sample, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewPCG(c.Seed, 0x5851f42d4c957f2d))
	samples := make([]Sample, c.NumWires)
	for i := range samples {
		frac := 0.0
		if c.NumWires > 1 {
			frac = float64(i)/float64(c.NumWires-1)*2 - 1 // −1..1 across the package
		}
		d := c.MeanDirect + frac*c.SpanDirect
		ds := abs(rng.NormFloat64()) * c.SigmaS
		dh := c.MuH + rng.NormFloat64()*c.SigmaH
		if dh < 0 {
			dh = 0
		}
		samples[i].True = bondwire.Geometry{Direct: d, DeltaS: ds, DeltaH: dh, Diameter: c.Diameter}
	}

	// Perspective censoring: Δh is visible for the first VisibleDH wires (the
	// ones facing the camera); the others get the average of the visible Δh,
	// exactly the paper's imputation.
	visSum := 0.0
	for i := 0; i < c.VisibleDH; i++ {
		visSum += samples[i].True.DeltaH
	}
	visAvg := visSum / float64(c.VisibleDH)
	for i := range samples {
		m := samples[i].True
		if i < c.VisibleDH {
			samples[i].DHSeen = true
		} else {
			m.DeltaH = visAvg
		}
		samples[i].Measured = m
	}
	return samples, nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// Elongations extracts the measured relative elongations δ.
func Elongations(samples []Sample) []float64 {
	out := make([]float64, len(samples))
	for i, s := range samples {
		out[i] = s.Measured.RelElongation()
	}
	return out
}

// FitResult is the outcome of the Fig. 5 pipeline.
type FitResult struct {
	Samples    []Sample
	Deltas     []float64
	Fit        stats.NormalFit
	Histogram  *stats.Histogram
	KSDistance float64
}

// FitElongationPDF runs the full pipeline: measure → extract δ → histogram →
// normal MLE fit, mirroring section IV-B of the paper.
func (c Campaign) FitElongationPDF(bins int) (*FitResult, error) {
	samples, err := c.Run()
	if err != nil {
		return nil, err
	}
	deltas := Elongations(samples)
	fit, err := stats.FitNormal(deltas)
	if err != nil {
		return nil, err
	}
	lo, hi := 0.0, 0.4 // the paper's Fig. 5 axis range
	hist, err := stats.NewHistogram(deltas, lo, hi, bins)
	if err != nil {
		return nil, err
	}
	return &FitResult{
		Samples:    samples,
		Deltas:     deltas,
		Fit:        fit,
		Histogram:  hist,
		KSDistance: fit.KSDistance(deltas),
	}, nil
}
