// Package analytic provides the closed-form bonding-wire baselines the field
// model is compared against: the steady fin equation with Joule heating
// (Nöbauer–Moser style), allowable-current estimation, and a transient
// lumped package model. These are the "bonding wire calculators" the paper's
// introduction situates its field-coupled approach against.
package analytic

import (
	"fmt"
	"math"

	"etherm/internal/material"
)

// FinWire is a straight wire of length L and cross-section A carrying
// current I between two end reservoirs at TEndA/TEndB, losing heat laterally
// to an environment at TInf through an effective film coefficient HEff over
// the wire perimeter (zero for an adiabatic lateral surface, as for a wire
// buried in poorly conducting mold on short time scales).
type FinWire struct {
	Length, Diameter float64
	Mat              material.Model
	Current          float64
	TEndA, TEndB     float64
	HEff             float64
	TInf             float64
}

// Validate checks the parameters.
func (w FinWire) Validate() error {
	if w.Length <= 0 || w.Diameter <= 0 {
		return fmt.Errorf("analytic: non-positive wire dimensions")
	}
	if w.Mat == nil {
		return fmt.Errorf("analytic: missing material")
	}
	if w.TEndA <= 0 || w.TEndB <= 0 {
		return fmt.Errorf("analytic: non-positive end temperatures")
	}
	return nil
}

// Area returns the cross-section area.
func (w FinWire) Area() float64 { return math.Pi * w.Diameter * w.Diameter / 4 }

// Perimeter returns the wire circumference.
func (w FinWire) Perimeter() float64 { return math.Pi * w.Diameter }

// evalAt evaluates material properties at the reference temperature Tref
// (the model is linear; properties are frozen at Tref).
func (w FinWire) props(tref float64) (lambda, q, m2 float64) {
	lambda = w.Mat.ThermCond(tref)
	sigma := w.Mat.ElecCond(tref)
	// Joule heating per unit length: I²/(σA).
	q = w.Current * w.Current / (sigma * w.Area())
	// Fin parameter m² = h·P/(λ·A).
	m2 = w.HEff * w.Perimeter() / (lambda * w.Area())
	return
}

// Temperature returns the steady temperature at position x ∈ [0, L], with
// material properties frozen at tref. For m² = 0 the profile is the exact
// parabola T = T_lin(x) + q·x(L−x)/(2λA); otherwise the standard sinh/cosh
// fin solution applies.
func (w FinWire) Temperature(x, tref float64) float64 {
	lambda, q, m2 := w.props(tref)
	a := w.Area()
	l := w.Length
	if m2 == 0 {
		lin := w.TEndA + (w.TEndB-w.TEndA)*x/l
		return lin + q*x*(l-x)/(2*lambda*a)
	}
	m := math.Sqrt(m2)
	// θ(x) = T − T∞ − q/(hP); particular solution plus homogeneous terms
	// matched to the end conditions.
	part := q / (w.HEff * w.Perimeter())
	thA := w.TEndA - w.TInf - part
	thB := w.TEndB - w.TInf - part
	sh := math.Sinh(m * l)
	th := (thB*math.Sinh(m*x) + thA*math.Sinh(m*(l-x))) / sh
	return th + w.TInf + part
}

// MaxTemperature returns the peak steady temperature along the wire and its
// position, located by golden-section search (the profile is unimodal).
func (w FinWire) MaxTemperature(tref float64) (tmax, xmax float64) {
	const phi = 0.6180339887498949
	lo, hi := 0.0, w.Length
	a := hi - phi*(hi-lo)
	b := lo + phi*(hi-lo)
	fa, fb := w.Temperature(a, tref), w.Temperature(b, tref)
	for i := 0; i < 200 && hi-lo > 1e-12*w.Length; i++ {
		if fa < fb {
			lo, a, fa = a, b, fb
			b = lo + phi*(hi-lo)
			fb = w.Temperature(b, tref)
		} else {
			hi, b, fb = b, a, fa
			a = hi - phi*(hi-lo)
			fa = w.Temperature(a, tref)
		}
	}
	x := 0.5 * (lo + hi)
	return w.Temperature(x, tref), x
}

// MidpointTemperature returns T(L/2).
func (w FinWire) MidpointTemperature(tref float64) float64 {
	return w.Temperature(w.Length/2, tref)
}

// AllowableCurrent returns the largest current for which the wire's peak
// steady temperature stays below tCrit, found by bisection — the analytic
// analogue of the paper's design question. The material is evaluated at the
// critical temperature for a conservative estimate.
func (w FinWire) AllowableCurrent(tCrit float64) (float64, error) {
	if err := w.Validate(); err != nil {
		return 0, err
	}
	if tCrit <= w.TEndA || tCrit <= w.TEndB {
		return 0, fmt.Errorf("analytic: critical temperature %g below end temperatures", tCrit)
	}
	peakAt := func(i float64) float64 {
		wi := w
		wi.Current = i
		t, _ := wi.MaxTemperature(tCrit)
		return t
	}
	lo, hi := 0.0, 1e-3
	for peakAt(hi) < tCrit {
		hi *= 2
		if hi > 1e4 {
			return 0, fmt.Errorf("analytic: wire never reaches %g K (lateral cooling dominates)", tCrit)
		}
	}
	for i := 0; i < 100; i++ {
		mid := 0.5 * (lo + hi)
		if peakAt(mid) < tCrit {
			lo = mid
		} else {
			hi = mid
		}
	}
	return 0.5 * (lo + hi), nil
}

// LumpedPackage is a one-node transient package model: heat capacity C,
// thermal resistance R to ambient, and a power source that may depend on the
// node temperature (voltage-driven Joule heating falls with T for metals).
type LumpedPackage struct {
	C     float64 // J/K
	R     float64 // K/W
	TInf  float64
	Power func(T float64) float64
}

// Step advances the lumped ODE C dT/dt = P(T) − (T−T∞)/R with the implicit
// Euler method (matching the field solver's integrator) using a fixed-point
// iteration on the power term.
func (p LumpedPackage) Step(t, dt float64) float64 {
	tn := t
	for k := 0; k < 50; k++ {
		pw := p.Power(tn)
		next := (p.C/dt*t + pw + p.TInf/p.R) / (p.C/dt + 1/p.R)
		if math.Abs(next-tn) < 1e-12 {
			return next
		}
		tn = next
	}
	return tn
}

// Solve integrates from T0 over nSteps of size dt, returning the trajectory
// including the initial state (length nSteps+1).
func (p LumpedPackage) Solve(t0, dt float64, nSteps int) []float64 {
	out := make([]float64, nSteps+1)
	out[0] = t0
	t := t0
	for i := 1; i <= nSteps; i++ {
		t = p.Step(t, dt)
		out[i] = t
	}
	return out
}

// SteadyState returns the fixed point of the lumped model.
func (p LumpedPackage) SteadyState() float64 {
	t := p.TInf
	for i := 0; i < 500; i++ {
		next := p.TInf + p.R*p.Power(t)
		if math.Abs(next-t) < 1e-10 {
			return next
		}
		t = 0.5*t + 0.5*next
	}
	return t
}

// WirePairPower returns a Power closure for n wire pairs driven at vPair
// each, with per-wire resistance from the material at temperature T:
// P(T) = n · vPair² / (2·R_wire(T)).
func WirePairPower(nPairs int, vPair, length, diameter float64, mat material.Model) func(float64) float64 {
	area := math.Pi * diameter * diameter / 4
	return func(t float64) float64 {
		r := length / (mat.ElecCond(t) * area)
		return float64(nPairs) * vPair * vPair / (2 * r)
	}
}
