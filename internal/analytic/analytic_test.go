package analytic

import (
	"math"
	"testing"

	"etherm/internal/material"
)

func constCu() material.Linear {
	return material.Linear{MatName: "cu0", Sigma0: 5.8e7, Lambda0: 398, RhoC: 3.45e6}
}

func TestAdiabaticParabola(t *testing.T) {
	w := FinWire{
		Length: 1.5e-3, Diameter: 25.4e-6, Mat: constCu(),
		Current: 0.4, TEndA: 300, TEndB: 300, TInf: 300,
	}
	lam := 398.0
	q := 0.4 * 0.4 / (5.8e7 * w.Area())
	l := w.Length
	for _, frac := range []float64{0, 0.25, 0.5, 0.75, 1} {
		x := frac * l
		want := 300 + q*x*(l-x)/(2*lam*w.Area())
		if got := w.Temperature(x, 300); math.Abs(got-want) > 1e-9 {
			t.Errorf("T(%g) = %g, want %g", x, got, want)
		}
	}
	mid := w.MidpointTemperature(300)
	tmax, xmax := w.MaxTemperature(300)
	if math.Abs(tmax-mid) > 1e-6 || math.Abs(xmax-l/2) > 1e-6*l {
		t.Errorf("symmetric wire peak not at midpoint: %g at %g", tmax, xmax)
	}
}

func TestAsymmetricEndsShiftPeak(t *testing.T) {
	w := FinWire{
		Length: 1.5e-3, Diameter: 25.4e-6, Mat: constCu(),
		Current: 0.3, TEndA: 300, TEndB: 380, TInf: 300,
	}
	_, xmax := w.MaxTemperature(300)
	if xmax <= w.Length/2 {
		t.Errorf("peak at %g should shift toward the hot end", xmax)
	}
}

func TestFinWithLateralLossReducesToEnds(t *testing.T) {
	// Without current, a fin with both ends at T∞ stays at T∞.
	w := FinWire{
		Length: 1.5e-3, Diameter: 25.4e-6, Mat: constCu(),
		Current: 0, TEndA: 300, TEndB: 300, HEff: 5000, TInf: 300,
	}
	for _, x := range []float64{0, 0.5e-3, 1e-3, 1.5e-3} {
		if got := w.Temperature(x, 300); math.Abs(got-300) > 1e-9 {
			t.Errorf("T(%g) = %g, want 300", x, got)
		}
	}
}

func TestLateralCoolingLowersPeak(t *testing.T) {
	base := FinWire{
		Length: 1.5e-3, Diameter: 25.4e-6, Mat: constCu(),
		Current: 0.5, TEndA: 300, TEndB: 300, TInf: 300,
	}
	cooled := base
	cooled.HEff = 2000
	t0, _ := base.MaxTemperature(300)
	t1, _ := cooled.MaxTemperature(300)
	if t1 >= t0 {
		t.Errorf("lateral cooling should lower the peak: %g vs %g", t1, t0)
	}
}

func TestAllowableCurrentMonotoneInDiameter(t *testing.T) {
	prev := 0.0
	for _, d := range []float64{15e-6, 25.4e-6, 50e-6} {
		w := FinWire{
			Length: 1.55e-3, Diameter: d, Mat: material.Copper(),
			TEndA: 300, TEndB: 300, TInf: 300,
		}
		i, err := w.AllowableCurrent(523)
		if err != nil {
			t.Fatal(err)
		}
		if i <= prev {
			t.Errorf("allowable current should grow with diameter: %g after %g", i, prev)
		}
		prev = i
	}
}

func TestAllowableCurrentConsistent(t *testing.T) {
	w := FinWire{
		Length: 1.55e-3, Diameter: 25.4e-6, Mat: material.Copper(),
		TEndA: 300, TEndB: 300, TInf: 300,
	}
	imax, err := w.AllowableCurrent(523)
	if err != nil {
		t.Fatal(err)
	}
	w.Current = imax
	peak, _ := w.MaxTemperature(523)
	if math.Abs(peak-523) > 0.5 {
		t.Errorf("peak at allowable current = %g, want ≈ 523", peak)
	}
}

func TestLumpedPackageMatchesClosedForm(t *testing.T) {
	// Constant power: T(t) = T∞ + PR(1−e^{−t/RC}); implicit Euler converges
	// to it as dt → 0 and to the exact steady state for any dt.
	p := LumpedPackage{C: 0.03, R: 500, TInf: 300, Power: func(float64) float64 { return 0.4 }}
	steady := p.SteadyState()
	if math.Abs(steady-500) > 1e-6 {
		t.Errorf("steady %g, want 500", steady)
	}
	traj := p.Solve(300, 0.01, 10000) // dt ≪ τ = 15 s
	exact := 300 + 200*(1-math.Exp(-100*0.01/(500*0.03)))
	_ = exact
	tEnd := traj[len(traj)-1]
	wantEnd := 300 + 200*(1-math.Exp(-100.0/(500*0.03)))
	if math.Abs(tEnd-wantEnd) > 0.5 {
		t.Errorf("T(100 s) = %g, want %g", tEnd, wantEnd)
	}
}

func TestLumpedTemperatureFeedback(t *testing.T) {
	// Voltage-driven metal load: power falls with temperature, so the steady
	// state sits below the constant-power prediction.
	pw := WirePairPower(6, 114e-3, 1.55e-3, 25.4e-6, material.Copper())
	pConst := pw(300)
	fb := LumpedPackage{C: 0.03, R: 500, TInf: 300, Power: pw}
	noFb := LumpedPackage{C: 0.03, R: 500, TInf: 300, Power: func(float64) float64 { return pConst }}
	if fb.SteadyState() >= noFb.SteadyState() {
		t.Errorf("feedback steady %g should be below constant-power %g", fb.SteadyState(), noFb.SteadyState())
	}
}

func TestValidateErrors(t *testing.T) {
	w := FinWire{}
	if err := w.Validate(); err == nil {
		t.Error("empty wire accepted")
	}
	good := FinWire{Length: 1e-3, Diameter: 25e-6, Mat: constCu(), TEndA: 300, TEndB: 300}
	if err := good.Validate(); err != nil {
		t.Error(err)
	}
	if _, err := good.AllowableCurrent(250); err == nil {
		t.Error("T_crit below end temperature accepted")
	}
}
