package study

import (
	"math"
	"testing"

	"etherm/internal/chipmodel"
	"etherm/internal/core"
	"etherm/internal/uq"
)

// coarse returns a fast chip spec for tests.
func coarse() chipmodel.Spec {
	s := chipmodel.DATE16Calibrated()
	s.HMax = 0.8e-3
	return s
}

func fastOpt() core.Options {
	o := core.FastOptions()
	o.EndTime = 50
	o.NumSteps = 10
	return o
}

func TestModelDimensions(t *testing.T) {
	lay, err := coarse().Build()
	if err != nil {
		t.Fatal(err)
	}
	sim, err := core.NewSimulator(lay.Problem, fastOpt())
	if err != nil {
		t.Fatal(err)
	}
	m := NewWireTempModel(sim)
	if m.NumWires() != 12 || m.NumTimes() != 11 {
		t.Fatalf("wires %d times %d", m.NumWires(), m.NumTimes())
	}
	if m.NumOutputs() != 12*11 {
		t.Error("output layout wrong")
	}
	m.Rho = 0
	if m.Dim() != 12 {
		t.Error("independent dim wrong")
	}
	m.Rho = 1
	if m.Dim() != 1 {
		t.Error("fully correlated dim wrong")
	}
	m.Rho = 0.3
	if m.Dim() != 13 {
		t.Error("partial correlation dim wrong")
	}
}

func TestDeltasCorrelationStructure(t *testing.T) {
	lay, err := coarse().Build()
	if err != nil {
		t.Fatal(err)
	}
	sim, err := core.NewSimulator(lay.Problem, fastOpt())
	if err != nil {
		t.Fatal(err)
	}
	m := NewWireTempModel(sim)

	m.Rho = 1
	d := m.Deltas([]float64{1})
	for _, v := range d {
		if math.Abs(v-(0.17+0.048)) > 1e-12 {
			t.Fatalf("correlated delta %g, want µ+σ", v)
		}
	}

	m.Rho = 0
	z := make([]float64, 12)
	z[3] = 2
	d = m.Deltas(z)
	if math.Abs(d[3]-(0.17+2*0.048)) > 1e-12 {
		t.Error("independent delta wrong")
	}
	if d[0] != 0.17 {
		t.Error("unperturbed wire moved")
	}

	m.Rho = 0.3
	z = make([]float64, 13)
	z[0] = 1 // common germ only
	d = m.Deltas(z)
	want := 0.17 + 0.048*math.Sqrt(0.3)
	for _, v := range d {
		if math.Abs(v-want) > 1e-12 {
			t.Fatalf("partial-correlation delta %g, want %g", v, want)
		}
	}
	// Variance is preserved: √ρ² + √(1−ρ)² = 1.
	z = make([]float64, 13)
	z[0], z[1] = 1, 1
	d = m.Deltas(z)
	g := (d[0] - 0.17) / 0.048
	if math.Abs(g-(math.Sqrt(0.3)+math.Sqrt(0.7))) > 1e-12 {
		t.Error("germ combination wrong")
	}

	// Clamping keeps δ physical.
	z[0] = -100
	d = m.Deltas(z)
	if d[0] < 0 {
		t.Error("delta clamp failed")
	}
}

func TestSmallEnsembleAndFig7(t *testing.T) {
	if testing.Short() {
		t.Skip("coupled-field ensemble is seconds-scale")
	}
	f7, lay, ens, err := RunStudy(coarse(), fastOpt(), 4, 11, 2, DefaultRho)
	if err != nil {
		t.Fatal(err)
	}
	if ens.Succeeded() != 4 {
		t.Fatalf("%d samples succeeded", ens.Succeeded())
	}
	last := len(f7.Times) - 1
	if f7.EMax[last] < 400 || f7.EMax[last] > 560 {
		t.Errorf("E_max(end) = %g K outside the calibrated regime", f7.EMax[last])
	}
	if f7.SigmaMC <= 0 || f7.SigmaMC > 30 {
		t.Errorf("sigma_MC = %g implausible", f7.SigmaMC)
	}
	if f7.ErrorMC != f7.SigmaMC/2 {
		t.Errorf("error_MC = %g, want σ/√4", f7.ErrorMC)
	}
	// Monotone heating of the hottest wire.
	hot := f7.HotSeries()
	for i := 1; i < len(hot); i++ {
		if hot[i] < hot[i-1]-1e-6 {
			t.Fatalf("hottest-wire expectation not monotone at step %d", i)
		}
	}
	// The hottest wire sits on the north side (shortest wires).
	if lay.Wires[f7.HotWire].Side != chipmodel.North {
		t.Errorf("hottest wire on %s, want north", lay.Wires[f7.HotWire].Side)
	}
}

func TestEnsembleDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("coupled-field ensemble is seconds-scale")
	}
	run := func(workers int) float64 {
		f7, _, _, err := RunStudy(coarse(), fastOpt(), 3, 5, workers, DefaultRho)
		if err != nil {
			t.Fatal(err)
		}
		return f7.EMax[len(f7.EMax)-1]
	}
	if a, b := run(1), run(2); a != b {
		t.Errorf("worker count changed the ensemble: %g vs %g", a, b)
	}
}

func TestBuildFig7LayoutValidation(t *testing.T) {
	ens := &uq.Ensemble{NumOutputs: 5}
	if _, err := BuildFig7([]float64{0, 1}, ens, 12, 523); err == nil {
		t.Error("mismatched ensemble accepted")
	}
}
