// Package study wires the coupled simulator into the UQ machinery: the
// forward model "12 uncertain wire elongations → wire temperatures over
// time", the ensemble post-processing that reproduces the paper's Fig. 7
// (expected temperature of the hottest wire with its 6σ band against
// T_crit), and the sensitivity/failure summaries built on top.
package study

import (
	"context"
	"fmt"
	"math"
	"sync"

	"etherm/internal/chipmodel"
	"etherm/internal/core"
	"etherm/internal/degrade"
	"etherm/internal/stats"
	"etherm/internal/uq"
)

// WireTempModel adapts the coupled simulator to uq.Model. The uncertain
// inputs are standard-normal germs z that drive the wire elongations through
// an equicorrelated Gaussian process model
//
//	δ_j = µ + σ·(√ρ·z₀ + √(1−ρ)·z_j),   clamped to [0, 0.9),
//
// where ρ ∈ [0, 1] is the wire-to-wire correlation: ρ = 0 means fully
// independent elongations (dim = nWires), ρ = 1 a single shared draw
// (dim = 1), and 0 < ρ < 1 a common bonding-process component plus per-wire
// scatter (dim = nWires + 1).
//
// The paper's description ("the random elongations for all bonding wires ...
// are determined by the probability density function for δ") does not pin ρ
// down. The choice matters for the output spread: on the calibrated chip,
// ρ = 0 yields σ_MC ≈ 1.6 K (the 12 wires' power fluctuations average out),
// ρ = 1 yields ≈ 8.3 K, and ρ ≈ 0.3 reproduces the paper's σ_MC = 4.65 K.
// The default is the matching ρ = 0.3; the correlation ablation bench sweeps
// it. Outputs are the end-point-average wire temperatures T_bw,j(t_i)
// flattened time-major (index t·nWires + j).
type WireTempModel struct {
	sim    *core.Simulator
	nWires int
	nTimes int
	Mu     float64 // elongation mean; default 0.17
	Sigma  float64 // elongation std; default 0.048
	Rho    float64 // wire-to-wire correlation; default DefaultRho
}

// DefaultRho is the bonding-process correlation that reproduces the paper's
// σ_MC on the calibrated chip model.
const DefaultRho = 0.3

// NewWireTempModel wraps an existing simulator (which defines geometry,
// options and mesh) with the paper's elongation law and the default
// process correlation.
func NewWireTempModel(sim *core.Simulator) *WireTempModel {
	return &WireTempModel{
		sim:    sim,
		nWires: len(sim.Wires()),
		nTimes: sim.Options().NumSteps + 1,
		Mu:     0.17,
		Sigma:  0.048,
		Rho:    DefaultRho,
	}
}

// GermDim returns the number of standard-normal germs driving nWires
// equicorrelated elongations at correlation rho: one shared draw at ρ = 1,
// one per wire at ρ = 0, and a common component plus per-wire scatter in
// between.
func GermDim(nWires int, rho float64) int {
	switch {
	case rho >= 1:
		return 1
	case rho <= 0:
		return nWires
	default:
		return nWires + 1
	}
}

// GermDists returns the standard-normal distributions of the germ vector —
// the sampler inputs for any study over the equicorrelated elongation law.
func GermDists(nWires int, rho float64) []uq.Dist {
	out := make([]uq.Dist, GermDim(nWires, rho))
	for i := range out {
		out[i] = uq.Normal{Mu: 0, Sigma: 1}
	}
	return out
}

// Dim implements uq.Model.
func (m *WireTempModel) Dim() int { return GermDim(m.nWires, m.Rho) }

// Deltas maps the standard-normal germ vector to the wire elongations.
func (m *WireTempModel) Deltas(z []float64) []float64 {
	out := make([]float64, m.nWires)
	for j := 0; j < m.nWires; j++ {
		var g float64
		switch {
		case m.Rho >= 1:
			g = z[0]
		case m.Rho <= 0:
			g = z[j]
		default:
			g = math.Sqrt(m.Rho)*z[0] + math.Sqrt(1-m.Rho)*z[j+1]
		}
		d := m.Mu + m.Sigma*g
		if d < 0 {
			d = 0
		}
		if d > 0.9 {
			d = 0.9
		}
		out[j] = d
	}
	return out
}

// InputDists returns the standard-normal germ distributions for this model.
func (m *WireTempModel) InputDists() []uq.Dist {
	return GermDists(m.nWires, m.Rho)
}

// NumOutputs implements uq.Model.
func (m *WireTempModel) NumOutputs() int { return m.nWires * m.nTimes }

// NumWires returns the number of wires.
func (m *WireTempModel) NumWires() int { return m.nWires }

// NumTimes returns the number of recorded time points (steps + 1).
func (m *WireTempModel) NumTimes() int { return m.nTimes }

// Eval implements uq.Model: maps the germs to elongations, applies them and
// runs the transient coupled simulation.
func (m *WireTempModel) Eval(params, out []float64) error {
	if len(params) != m.Dim() {
		return fmt.Errorf("study: got %d germs for model dimension %d", len(params), m.Dim())
	}
	for j, delta := range m.Deltas(params) {
		if err := m.sim.SetWireElongation(j, delta); err != nil {
			return err
		}
	}
	res, err := m.sim.Run()
	if err != nil {
		return err
	}
	if len(res.Times) != m.nTimes {
		return fmt.Errorf("study: result has %d time points, expected %d", len(res.Times), m.nTimes)
	}
	for t := 0; t < m.nTimes; t++ {
		for j := 0; j < m.nWires; j++ {
			out[t*m.nWires+j] = res.WireTemp[t][j]
		}
	}
	return nil
}

// Params bundles the elongation-law parameters applied to every model a
// factory hands out: the mean and standard deviation of the relative
// elongation δ and the wire-to-wire process correlation ρ. Zero-valued Mu
// and Sigma select the paper's fitted 0.17 and 0.048 (an exactly-zero law
// is not expressible, by the same zero-means-default convention as
// config.UQConfig); ρ = 0 is meaningful and kept as given.
type Params struct {
	Mu    float64 // elongation mean; zero means the paper's 0.17
	Sigma float64 // elongation std; zero means the paper's 0.048
	Rho   float64 // wire-to-wire correlation in [0, 1]
}

// Effective returns the params with the paper's fitted defaults filled
// into zero fields — the law a ParamFactory model actually runs with,
// which surrogate metadata must record verbatim.
func (p Params) Effective() Params { return p.withDefaults() }

// withDefaults fills zero fields with the paper's fitted values.
func (p Params) withDefaults() Params {
	if p.Mu == 0 {
		p.Mu = 0.17
	}
	if p.Sigma == 0 {
		p.Sigma = 0.048
	}
	return p
}

// Factory returns a uq.ModelFactory producing independent clones of the
// base simulator for parallel workers (sharing the immutable mesh assembly),
// with the default process correlation.
func Factory(base *core.Simulator) uq.ModelFactory {
	return FactoryFor(base, DefaultRho)
}

// FactoryFor is Factory with an explicit wire-to-wire elongation correlation.
func FactoryFor(base *core.Simulator, rho float64) uq.ModelFactory {
	return ParamFactory(base, Params{Rho: rho})
}

// ParamFactory is Factory with the full elongation law spelled out. The first
// model handed out wraps base itself; later calls wrap clones sharing the
// immutable mesh assembly, so every worker model carries identical Mu, Sigma
// and Rho.
func ParamFactory(base *core.Simulator, p Params) uq.ModelFactory {
	p = p.withDefaults()
	var mu sync.Mutex
	first := true
	return func() (uq.Model, error) {
		mu.Lock()
		useBase := first
		first = false
		mu.Unlock()
		sim := base
		if !useBase {
			clone, err := base.Clone()
			if err != nil {
				return nil, err
			}
			sim = clone
		}
		m := NewWireTempModel(sim)
		m.Mu = p.Mu
		m.Sigma = p.Sigma
		m.Rho = p.Rho
		return m, nil
	}
}

// Fig7 is the paper's headline result: per-wire expectation series, the
// hottest-wire envelope E_max(t) (eq. 7) and its Monte Carlo statistics.
type Fig7 struct {
	Times   []float64
	EWire   [][]float64 // [time][wire] expectation E_j(t)
	SWire   [][]float64 // [time][wire] standard deviation
	EMax    []float64   // max_j E_j(t)
	HotWire int         // wire attaining E_max at the end time

	SigmaHot []float64 // σ(t) of the hottest wire
	SigmaMC  float64   // σ of the hottest wire at the end time
	ErrorMC  float64   // eq. (6): σ_MC/√M

	TCritical  float64
	Cross6Sig  float64 // first time E_max + 6σ ≥ T_crit (NaN if never)
	CrossMean  float64 // first time E_max ≥ T_crit (NaN if never)
	ExceedProb float64 // P(T_hot(end) ≥ T_crit), normal approximation
	// FailProbEmp is the empirical failure probability P(any wire reaches
	// T_crit at any time), available only from streaming campaigns that
	// track exceedance (NaN otherwise).
	FailProbEmp float64
	Samples     int
}

// BuildFig7 aggregates an ensemble (outputs laid out by WireTempModel) into
// the Fig. 7 statistics.
func BuildFig7(times []float64, ens *uq.Ensemble, nWires int, tCrit float64) (*Fig7, error) {
	if ens.NumOutputs != len(times)*nWires {
		return nil, fmt.Errorf("study: ensemble has %d outputs, expected %d×%d", ens.NumOutputs, len(times), nWires)
	}
	return BuildFig7FromMoments(times, ens.MeanAll(), ens.StdAll(), nWires, tCrit, ens.Succeeded())
}

// BuildFig7FromMoments aggregates per-output means and standard deviations
// (laid out time-major like WireTempModel outputs) into the Fig. 7
// statistics. This is the moment-based core shared by the Monte Carlo path
// (BuildFig7) and collocation/PCE studies, whose results arrive as moments
// rather than sample sets. samples is only used for the eq. (6) error
// estimate and may be zero for deterministic quadratures.
func BuildFig7FromMoments(times, means, stds []float64, nWires int, tCrit float64, samples int) (*Fig7, error) {
	nTimes := len(times)
	if len(means) != nTimes*nWires || len(stds) != nTimes*nWires {
		return nil, fmt.Errorf("study: got %d means and %d stds, expected %d×%d", len(means), len(stds), nTimes, nWires)
	}

	f := &Fig7{
		Times:       append([]float64(nil), times...),
		EWire:       make([][]float64, nTimes),
		SWire:       make([][]float64, nTimes),
		EMax:        make([]float64, nTimes),
		TCritical:   tCrit,
		FailProbEmp: math.NaN(),
		Samples:     samples,
	}
	for t := 0; t < nTimes; t++ {
		f.EWire[t] = means[t*nWires : (t+1)*nWires]
		f.SWire[t] = stds[t*nWires : (t+1)*nWires]
		m := math.Inf(-1)
		for _, v := range f.EWire[t] {
			if v > m {
				m = v
			}
		}
		f.EMax[t] = m
	}
	// Hottest wire at the end time (the paper plots this wire's series).
	last := nTimes - 1
	f.HotWire = 0
	for j := 1; j < nWires; j++ {
		if f.EWire[last][j] > f.EWire[last][f.HotWire] {
			f.HotWire = j
		}
	}
	f.SigmaHot = make([]float64, nTimes)
	for t := 0; t < nTimes; t++ {
		f.SigmaHot[t] = f.SWire[t][f.HotWire]
	}
	f.SigmaMC = f.SigmaHot[last]
	f.ErrorMC = 0 // eq. (6) applies to sampling studies only
	if f.Samples > 0 {
		f.ErrorMC = stats.MCError(f.SigmaMC, f.Samples)
	}

	// Crossing diagnostics against T_crit.
	upper := make([]float64, nTimes)
	hotMean := make([]float64, nTimes)
	for t := 0; t < nTimes; t++ {
		hotMean[t] = f.EWire[t][f.HotWire]
		upper[t] = hotMean[t] + 6*f.SigmaHot[t]
	}
	f.Cross6Sig = math.NaN()
	if tc, ok := degrade.CrossingTime(f.Times, upper, tCrit); ok {
		f.Cross6Sig = tc
	}
	f.CrossMean = math.NaN()
	if tc, ok := degrade.CrossingTime(f.Times, hotMean, tCrit); ok {
		f.CrossMean = tc
	}
	f.ExceedProb = degrade.ExceedanceProbability(hotMean[last], f.SigmaMC, tCrit)
	return f, nil
}

// HotSeries returns the hottest wire's mean temperature series.
func (f *Fig7) HotSeries() []float64 {
	out := make([]float64, len(f.Times))
	for t := range out {
		out[t] = f.EWire[t][f.HotWire]
	}
	return out
}

// Stationary reports whether the hottest-wire series has stabilized: the
// change over the final fraction of the horizon stays below tol kelvin.
func (f *Fig7) Stationary(tol float64) bool {
	s := f.HotSeries()
	n := len(s)
	if n < 5 {
		return false
	}
	return math.Abs(s[n-1]-s[n-1-n/10]) < tol
}

// BuildFig7FromCampaign aggregates a streaming campaign (outputs laid out
// by WireTempModel) into the Fig. 7 statistics, attaching the empirical
// any-wire/any-time failure probability when the campaign tracked
// exceedance at T_crit.
func BuildFig7FromCampaign(times []float64, c *uq.CampaignResult, nWires int, tCrit float64) (*Fig7, error) {
	if c.NumOutputs != len(times)*nWires {
		return nil, fmt.Errorf("study: campaign has %d outputs, expected %d×%d", c.NumOutputs, len(times), nWires)
	}
	f, err := BuildFig7FromMoments(times, c.MeanAll(), c.StdAll(), nWires, tCrit, c.Succeeded())
	if err != nil {
		return nil, err
	}
	if c.Stats != nil && c.Stats.Threshold == tCrit {
		f.FailProbEmp = c.Stats.FailProb()
	}
	return f, nil
}

// StreamOptions controls a streaming (constant-memory) Monte Carlo study:
// the campaign budget, worker pool, adaptive stopping targets and
// checkpointing. The zero value of TCrit selects the default critical
// temperature.
type StreamOptions struct {
	Samples int // sample budget M
	Workers int // parallel workers; 0 = GOMAXPROCS

	// TargetSE stops once every output's MC standard error (eq. 6) is at or
	// below it; TargetCI stops once the 95% failure-probability confidence
	// half-width is. Zero disables a rule.
	TargetSE float64
	TargetCI float64

	// Checkpoint, when set, periodically persists resumable campaign state
	// to this path; with Resume an existing checkpoint file is loaded and
	// the campaign continues from it bit-for-bit.
	Checkpoint      string
	CheckpointEvery int
	Resume          bool
	// Tag is an opaque model/configuration identity recorded in
	// checkpoints and required to match on resume (see uq.CampaignOptions).
	Tag string

	// TCrit is the failure threshold driving exceedance tracking and the
	// Fig. 7 crossing diagnostics (0 = degrade.DefaultCriticalTemp).
	TCrit float64

	// Shards partitions the sample range into this many self-contained
	// shards run in shard order and merged at fixed block granularity
	// (bit-identical for any shard count; see uq.ShardPlan). 0 keeps the
	// single-fold campaign; 1 is a one-shard campaign through the same
	// merge layer. Sharded studies are budget-only: adaptive targets are
	// rejected, and checkpoints go to "<path>.shard-N" files.
	Shards int
	// ShardBlock is the merge granularity (0 = uq.DefaultShardBlockSize).
	ShardBlock int

	// OnSample forwards per-evaluation progress (concurrent, like
	// uq.EnsembleOptions.OnSample).
	OnSample func(i int, err error)
}

// RunStreamingStudyWith runs the streaming Monte Carlo study on an existing
// base simulator with an explicit elongation law and sampler: the campaign
// folds wire-temperature outputs into O(NumOutputs) accumulators as samples
// complete, so the sample budget no longer bounds memory. Results are
// bit-identical to the stored-ensemble path for any worker count. On
// cancellation the partial campaign is returned together with the context
// error (a checkpoint, when configured, has been written).
func RunStreamingStudyWith(ctx context.Context, base *core.Simulator, p Params, sampler uq.Sampler, o StreamOptions) (*Fig7, *uq.CampaignResult, error) {
	tCrit := o.TCrit
	if tCrit == 0 {
		tCrit = degrade.DefaultCriticalTemp
	}
	model := NewWireTempModel(base)
	pd := p.withDefaults()
	model.Mu, model.Sigma, model.Rho = pd.Mu, pd.Sigma, pd.Rho

	var camp *uq.CampaignResult
	var err error
	if o.Shards >= 1 {
		if o.TargetSE > 0 || o.TargetCI > 0 {
			return nil, nil, fmt.Errorf("study: sharded campaigns are budget-only; drop the adaptive targets or the shards")
		}
		plan, perr := uq.PlanShards(o.Samples, o.Shards, o.ShardBlock)
		if perr != nil {
			return nil, nil, perr
		}
		camp, err = uq.RunShardedCampaign(ctx, ParamFactory(base, p), model.InputDists(), sampler, plan, uq.ShardOptions{
			Workers:         o.Workers,
			Threshold:       tCrit,
			Tag:             o.Tag,
			CheckpointPath:  o.Checkpoint,
			CheckpointEvery: o.CheckpointEvery,
			Resume:          o.Resume,
			OnSample:        o.OnSample,
		})
	} else {
		copt := uq.CampaignOptions{
			MaxSamples:      o.Samples,
			Workers:         o.Workers,
			TargetSE:        o.TargetSE,
			TargetCI:        o.TargetCI,
			Threshold:       tCrit,
			CheckpointPath:  o.Checkpoint,
			CheckpointEvery: o.CheckpointEvery,
			Tag:             o.Tag,
			OnSample:        o.OnSample,
		}
		if o.Resume && o.Checkpoint != "" {
			cp, lerr := uq.LoadCheckpointIfExists(o.Checkpoint)
			if lerr != nil {
				return nil, nil, lerr
			}
			copt.Resume = cp
		}
		camp, err = uq.RunCampaign(ctx, ParamFactory(base, p), model.InputDists(), sampler, copt)
	}
	if err != nil {
		return nil, camp, err
	}
	eff := base.Options()
	times := make([]float64, eff.NumSteps+1)
	dt := eff.EndTime / float64(eff.NumSteps)
	for i := range times {
		times[i] = float64(i) * dt
	}
	f7, err := BuildFig7FromCampaign(times, camp, model.NumWires(), tCrit)
	if err != nil {
		return nil, camp, err
	}
	return f7, camp, nil
}

// RunStreamingStudy is the one-call streaming counterpart of RunStudy:
// build the layout, run the campaign under the fitted elongation law with
// pseudo-random sampling, and aggregate Fig. 7.
func RunStreamingStudy(spec chipmodel.Spec, opt core.Options, seed uint64, rho float64, o StreamOptions) (*Fig7, *uq.CampaignResult, *chipmodel.Layout, error) {
	lay, err := spec.Build()
	if err != nil {
		return nil, nil, nil, err
	}
	base, err := core.NewSimulator(lay.Problem, opt)
	if err != nil {
		return nil, nil, nil, err
	}
	model := NewWireTempModel(base)
	model.Rho = rho
	sampler := uq.PseudoRandom{D: model.Dim(), Seed: seed}
	f7, camp, err := RunStreamingStudyWith(context.Background(), base, Params{Rho: rho}, sampler, o)
	if err != nil {
		return nil, camp, lay, err
	}
	return f7, camp, lay, nil
}

// RunPaperStudy is the one-call reproduction of the paper's Monte Carlo
// experiment: build the layout, run M samples of the coupled model under
// the fitted elongation law with the default process correlation, and
// aggregate Fig. 7.
func RunPaperStudy(spec chipmodel.Spec, opt core.Options, m int, seed uint64, workers int) (*Fig7, *chipmodel.Layout, *uq.Ensemble, error) {
	return RunStudy(spec, opt, m, seed, workers, DefaultRho)
}

// RunStudy runs the Monte Carlo study with the chosen wire-to-wire
// elongation correlation ρ.
func RunStudy(spec chipmodel.Spec, opt core.Options, m int, seed uint64, workers int, rho float64) (*Fig7, *chipmodel.Layout, *uq.Ensemble, error) {
	lay, err := spec.Build()
	if err != nil {
		return nil, nil, nil, err
	}
	base, err := core.NewSimulator(lay.Problem, opt)
	if err != nil {
		return nil, nil, nil, err
	}
	model := NewWireTempModel(base)
	model.Rho = rho
	dists := model.InputDists()
	sampler := uq.PseudoRandom{D: model.Dim(), Seed: seed}
	ens, err := uq.RunEnsemble(FactoryFor(base, rho), dists, sampler, uq.EnsembleOptions{Samples: m, Workers: workers})
	if err != nil {
		return nil, nil, nil, err
	}
	eff := base.Options() // defaults applied
	times := make([]float64, eff.NumSteps+1)
	dt := eff.EndTime / float64(eff.NumSteps)
	for i := range times {
		times[i] = float64(i) * dt
	}
	fig7, err := BuildFig7(times, ens, model.NumWires(), degrade.DefaultCriticalTemp)
	if err != nil {
		return nil, nil, nil, err
	}
	return fig7, lay, ens, nil
}
