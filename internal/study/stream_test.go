package study

import (
	"context"
	"math"
	"path/filepath"
	"testing"

	"etherm/internal/core"
	"etherm/internal/degrade"
	"etherm/internal/uq"
)

// TestStreamingMatchesStoredOnChipModel is the acceptance gate for the
// streaming campaign: on the paper's chip model, the streaming path's mean
// and σ for the hottest wire match the stored-ensemble path within 1e-9 at
// every worker count (they are in fact bit-identical, since both fold the
// same Welford recurrence in sample order).
func TestStreamingMatchesStoredOnChipModel(t *testing.T) {
	if testing.Short() {
		t.Skip("coupled-field ensemble is seconds-scale")
	}
	const m, seed = 4, 11
	f7Stored, _, ens, err := RunStudy(coarse(), fastOpt(), m, seed, 2, DefaultRho)
	if err != nil {
		t.Fatal(err)
	}
	if ens.Succeeded() != m {
		t.Fatalf("stored path: %d samples succeeded", ens.Succeeded())
	}
	last := len(f7Stored.Times) - 1
	for _, workers := range []int{1, 2, 8} {
		f7, camp, _, err := RunStreamingStudy(coarse(), fastOpt(), seed, DefaultRho,
			StreamOptions{Samples: m, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if camp.Ensemble != nil {
			t.Fatal("streaming study retained sample storage")
		}
		if camp.StopReason != uq.StopBudget || camp.Succeeded() != m {
			t.Fatalf("workers=%d: campaign accounting %+v", workers, camp)
		}
		if f7.HotWire != f7Stored.HotWire {
			t.Fatalf("workers=%d: hottest wire %d vs stored %d", workers, f7.HotWire, f7Stored.HotWire)
		}
		hotS, hot := f7Stored.HotSeries(), f7.HotSeries()
		for ti := range hot {
			if math.Abs(hot[ti]-hotS[ti]) > 1e-9 {
				t.Errorf("workers=%d t=%d: streaming mean %g vs stored %g", workers, ti, hot[ti], hotS[ti])
			}
			if math.Abs(f7.SigmaHot[ti]-f7Stored.SigmaHot[ti]) > 1e-9 {
				t.Errorf("workers=%d t=%d: streaming σ %g vs stored %g", workers, ti, f7.SigmaHot[ti], f7Stored.SigmaHot[ti])
			}
		}
		if f7.EMax[last] != f7Stored.EMax[last] {
			t.Errorf("workers=%d: E_max %g vs stored %g", workers, f7.EMax[last], f7Stored.EMax[last])
		}
		// The streaming path adds the empirical failure probability; at the
		// calibrated operating point no wire reaches T_crit.
		if math.IsNaN(f7.FailProbEmp) {
			t.Error("streaming study did not track the empirical failure probability")
		}
		if math.IsNaN(f7Stored.FailProbEmp) == false {
			t.Error("stored study unexpectedly reports an empirical failure probability")
		}
	}
}

// TestStreamingStudyCheckpointResume interrupts a chip-model campaign at a
// checkpoint and verifies the resumed run reproduces the uninterrupted one
// bit-for-bit.
func TestStreamingStudyCheckpointResume(t *testing.T) {
	if testing.Short() {
		t.Skip("coupled-field ensemble is seconds-scale")
	}
	lay, err := coarse().Build()
	if err != nil {
		t.Fatal(err)
	}
	newSim := func() *core.Simulator {
		sim, err := core.NewSimulator(lay.Problem, fastOpt())
		if err != nil {
			t.Fatal(err)
		}
		return sim
	}
	const m, seed = 4, 5
	sampler := func() uq.Sampler {
		return uq.PseudoRandom{D: GermDim(12, DefaultRho), Seed: seed}
	}
	whole, _, err := RunStreamingStudyWith(context.Background(), newSim(), Params{Rho: DefaultRho}, sampler(),
		StreamOptions{Samples: m, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "study.ckpt")
	// Phase 1: half the budget, checkpointing every sample.
	if _, _, err := RunStreamingStudyWith(context.Background(), newSim(), Params{Rho: DefaultRho}, sampler(),
		StreamOptions{Samples: m / 2, Workers: 2, Checkpoint: path, CheckpointEvery: 1}); err != nil {
		t.Fatal(err)
	}
	// Phase 2: resume to the full budget.
	resumed, camp, err := RunStreamingStudyWith(context.Background(), newSim(), Params{Rho: DefaultRho}, sampler(),
		StreamOptions{Samples: m, Workers: 2, Checkpoint: path, Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	if camp.Evaluated != m {
		t.Fatalf("resumed campaign evaluated %d, want %d", camp.Evaluated, m)
	}
	hotW, hotR := whole.HotSeries(), resumed.HotSeries()
	for ti := range hotW {
		if hotR[ti] != hotW[ti] || resumed.SigmaHot[ti] != whole.SigmaHot[ti] {
			t.Fatalf("t=%d: resumed run differs from uninterrupted (mean %g vs %g, σ %g vs %g)",
				ti, hotR[ti], hotW[ti], resumed.SigmaHot[ti], whole.SigmaHot[ti])
		}
	}
}

func TestBuildFig7FromCampaignValidation(t *testing.T) {
	c := &uq.CampaignResult{NumOutputs: 5}
	if _, err := BuildFig7FromCampaign([]float64{0, 1}, c, 12, degrade.DefaultCriticalTemp); err == nil {
		t.Error("mismatched campaign accepted")
	}
}
