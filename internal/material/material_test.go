package material

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTableIValuesAt300K(t *testing.T) {
	cases := []struct {
		m          Model
		lam, sigma float64
	}{
		{EpoxyResin(), 0.87, 1e-6},
		{Copper(), 398, 5.80e7},
	}
	for _, c := range cases {
		if got := c.m.ThermCond(300); math.Abs(got-c.lam) > 1e-9*c.lam {
			t.Errorf("%s λ(300) = %g, want %g", c.m.Name(), got, c.lam)
		}
		if got := c.m.ElecCond(300); math.Abs(got-c.sigma) > 1e-9*c.sigma {
			t.Errorf("%s σ(300) = %g, want %g", c.m.Name(), got, c.sigma)
		}
	}
}

func TestCopperTCR(t *testing.T) {
	cu := Copper()
	// σ(400)/σ(300) = 1/(1+α·100).
	ratio := cu.ElecCond(300) / cu.ElecCond(400)
	if math.Abs(ratio-(1+0.39)) > 1e-12 {
		t.Errorf("TCR ratio %g, want 1.39", ratio)
	}
}

func TestConductivityMonotoneDecreasing(t *testing.T) {
	f := func(dT uint8) bool {
		cu := Copper()
		t1 := 300 + float64(dT)
		t2 := t1 + 1
		return cu.ElecCond(t2) <= cu.ElecCond(t1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestClampPreventsNegativeConductivity(t *testing.T) {
	cu := Copper()
	if s := cu.ElecCond(1e6); s <= 0 || math.IsInf(s, 0) {
		t.Errorf("extreme-temperature conductivity %g invalid", s)
	}
}

func TestWiedemannFranz(t *testing.T) {
	wf := WiedemannFranz{Base: Copper()}
	got := wf.ThermCond(300)
	want := LorenzNumber * Copper().ElecCond(300) * 300
	if math.Abs(got-want) > 1e-9*want {
		t.Errorf("WF λ(300) = %g, want %g", got, want)
	}
	// WF gives the right order for copper: λ ≈ 425 vs tabulated 398.
	if got < 300 || got > 500 {
		t.Errorf("WF λ(300) = %g outside plausible copper range", got)
	}
	if wf.Name() != "copper+WF" {
		t.Errorf("name %q", wf.Name())
	}
}

func TestLibrary(t *testing.T) {
	lib, err := NewLibrary(EpoxyResin(), Copper(), Gold())
	if err != nil {
		t.Fatal(err)
	}
	if lib.Len() != 3 {
		t.Fatal("wrong length")
	}
	id, ok := lib.IDByName("copper")
	if !ok || id != 1 {
		t.Errorf("IDByName copper = %d, %v", id, ok)
	}
	if lib.At(2).Name() != "gold" {
		t.Error("At(2) wrong")
	}
	if err := lib.Validate(); err != nil {
		t.Error(err)
	}
	if _, err := NewLibrary(Copper(), Copper()); err == nil {
		t.Error("expected duplicate-name error")
	}
}

func TestLibraryValidateCatchesBadModel(t *testing.T) {
	bad := Linear{MatName: "bad", Sigma0: 1, Lambda0: -1, RhoC: 1}
	lib, err := NewLibrary(bad)
	if err != nil {
		t.Fatal(err)
	}
	if err := lib.Validate(); err == nil {
		t.Error("expected validation failure for negative λ")
	}
}

func TestPresetsPhysical(t *testing.T) {
	for _, m := range []Model{Copper(), Gold(), Aluminum(), Silicon(), EpoxyResin()} {
		if m.VolHeatCap() < 1e5 || m.VolHeatCap() > 1e7 {
			t.Errorf("%s ρc = %g implausible", m.Name(), m.VolHeatCap())
		}
	}
	// Conductivity ordering of the wire metals.
	if !(Copper().ElecCond(300) > Gold().ElecCond(300) && Gold().ElecCond(300) > Aluminum().ElecCond(300)) {
		t.Error("metal conductivity ordering wrong")
	}
}
