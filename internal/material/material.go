// Package material provides temperature-dependent material models for the
// coupled electrothermal problem: electrical conductivity σ(T), thermal
// conductivity λ(T) and volumetric heat capacity ρc. The presets include the
// materials of Table I of the paper (copper and epoxy mold compound at
// T = 300 K) plus the common bonding-wire alternatives gold and aluminium.
package material

import (
	"fmt"
	"math"
)

// ReferenceTemperature is the temperature at which nominal properties are
// quoted, matching Table I of the paper.
const ReferenceTemperature = 300.0 // K

// LorenzNumber is the Sommerfeld value of the Wiedemann–Franz Lorenz number.
const LorenzNumber = 2.44e-8 // W·Ω/K²

// Model evaluates material properties as functions of temperature (kelvin).
type Model interface {
	// Name identifies the material for reports.
	Name() string
	// ElecCond returns the electrical conductivity σ(T) in S/m.
	ElecCond(T float64) float64
	// ThermCond returns the thermal conductivity λ(T) in W/(K·m).
	ThermCond(T float64) float64
	// VolHeatCap returns the volumetric heat capacity ρc in J/(m³·K).
	// The paper neglects its temperature dependence; so do we.
	VolHeatCap() float64
}

// Linear is the standard first-order resistivity model
//
//	σ(T) = σ0 / (1 + ασ (T − Tref)),   λ(T) = λ0 / (1 + αλ (T − Tref)).
//
// With ασ = αλ = 0 the material is temperature independent.
type Linear struct {
	MatName    string
	Sigma0     float64 // S/m at Tref
	AlphaSigma float64 // 1/K
	Lambda0    float64 // W/K/m at Tref
	AlphaLamda float64 // 1/K
	RhoC       float64 // J/m³/K
	Tref       float64 // K; zero means ReferenceTemperature
}

// Name implements Model.
func (m Linear) Name() string { return m.MatName }

func (m Linear) tref() float64 {
	if m.Tref == 0 {
		return ReferenceTemperature
	}
	return m.Tref
}

// ElecCond implements Model. The denominator is clamped to stay positive so
// extreme Newton iterates cannot produce negative conductivities.
func (m Linear) ElecCond(T float64) float64 {
	d := 1 + m.AlphaSigma*(T-m.tref())
	if d < 0.1 {
		d = 0.1
	}
	return m.Sigma0 / d
}

// ThermCond implements Model with the same clamped linear law as ElecCond.
func (m Linear) ThermCond(T float64) float64 {
	d := 1 + m.AlphaLamda*(T-m.tref())
	if d < 0.1 {
		d = 0.1
	}
	return m.Lambda0 / d
}

// VolHeatCap implements Model.
func (m Linear) VolHeatCap() float64 { return m.RhoC }

// WiedemannFranz derives the thermal conductivity of a metal from its
// electrical conductivity via λ(T) = L σ(T) T. It is provided as the "more
// sophisticated bonding wire model" extension point mentioned in the paper's
// conclusions.
type WiedemannFranz struct {
	Base   Model   // supplies σ(T), ρc and the name
	Lorenz float64 // zero means LorenzNumber
}

// Name implements Model.
func (m WiedemannFranz) Name() string { return m.Base.Name() + "+WF" }

// ElecCond implements Model.
func (m WiedemannFranz) ElecCond(T float64) float64 { return m.Base.ElecCond(T) }

// ThermCond implements Model using the Wiedemann–Franz law.
func (m WiedemannFranz) ThermCond(T float64) float64 {
	l := m.Lorenz
	if l == 0 {
		l = LorenzNumber
	}
	if T < 1 {
		T = 1
	}
	return l * m.Base.ElecCond(T) * T
}

// VolHeatCap implements Model.
func (m WiedemannFranz) VolHeatCap() float64 { return m.Base.VolHeatCap() }

// Copper returns the copper model of Table I: λ = 398 W/K/m and
// σ = 5.80×10⁷ S/m at 300 K. The temperature coefficient of resistivity is
// the handbook value 3.9×10⁻³/K; thermal conductivity of copper is nearly
// flat in the considered range, modeled with a small coefficient.
func Copper() Linear {
	return Linear{
		MatName:    "copper",
		Sigma0:     5.80e7,
		AlphaSigma: 3.9e-3,
		Lambda0:    398,
		AlphaLamda: 1.0e-4,
		RhoC:       3.45e6,
	}
}

// EpoxyResin returns the mold-compound model of Table I: λ = 0.87 W/K/m,
// σ = 1×10⁻⁶ S/m at 300 K, both treated as temperature independent.
func EpoxyResin() Linear {
	return Linear{
		MatName: "epoxy resin",
		Sigma0:  1e-6,
		Lambda0: 0.87,
		RhoC:    1.7e6,
	}
}

// Gold returns a gold bonding-wire model (σ = 4.52×10⁷ S/m, λ = 318 W/K/m at
// 300 K, TCR 3.4×10⁻³/K).
func Gold() Linear {
	return Linear{
		MatName:    "gold",
		Sigma0:     4.52e7,
		AlphaSigma: 3.4e-3,
		Lambda0:    318,
		AlphaLamda: 1.0e-4,
		RhoC:       2.49e6,
	}
}

// Aluminum returns an aluminium bonding-wire model (σ = 3.77×10⁷ S/m,
// λ = 237 W/K/m at 300 K, TCR 4.3×10⁻³/K).
func Aluminum() Linear {
	return Linear{
		MatName:    "aluminum",
		Sigma0:     3.77e7,
		AlphaSigma: 4.3e-3,
		Lambda0:    237,
		AlphaLamda: 1.0e-4,
		RhoC:       2.42e6,
	}
}

// Silicon returns a plain (undoped bulk) silicon model, useful when modeling
// the die as semiconductor instead of the paper's copper block.
func Silicon() Linear {
	return Linear{
		MatName:    "silicon",
		Sigma0:     1e-3,
		Lambda0:    148,
		AlphaLamda: 2.0e-3,
		RhoC:       1.63e6,
	}
}

// Library is an ordered material table; cell material IDs index into it.
type Library struct {
	models []Model
	byName map[string]int
}

// NewLibrary builds a library from the given models. Names must be unique.
func NewLibrary(models ...Model) (*Library, error) {
	l := &Library{byName: make(map[string]int, len(models))}
	for _, m := range models {
		if m == nil {
			return nil, fmt.Errorf("material: nil model in library")
		}
		if _, dup := l.byName[m.Name()]; dup {
			return nil, fmt.Errorf("material: duplicate material name %q", m.Name())
		}
		l.byName[m.Name()] = len(l.models)
		l.models = append(l.models, m)
	}
	return l, nil
}

// Len returns the number of materials.
func (l *Library) Len() int { return len(l.models) }

// At returns the material with ID id.
func (l *Library) At(id int) Model { return l.models[id] }

// IDByName returns the ID for a material name.
func (l *Library) IDByName(name string) (int, bool) {
	id, ok := l.byName[name]
	return id, ok
}

// Names returns the material names in ID order.
func (l *Library) Names() []string {
	out := make([]string, len(l.models))
	for i, m := range l.models {
		out[i] = m.Name()
	}
	return out
}

// Validate checks physical plausibility of all models at a few temperatures.
func (l *Library) Validate() error {
	for id, m := range l.models {
		for _, T := range []float64{250, 300, 400, 600, 1000} {
			if s := m.ElecCond(T); s < 0 || math.IsNaN(s) {
				return fmt.Errorf("material %q (id %d): σ(%g K) = %g invalid", m.Name(), id, T, s)
			}
			if la := m.ThermCond(T); la <= 0 || math.IsNaN(la) {
				return fmt.Errorf("material %q (id %d): λ(%g K) = %g invalid", m.Name(), id, T, la)
			}
		}
		if c := m.VolHeatCap(); c <= 0 || math.IsNaN(c) {
			return fmt.Errorf("material %q (id %d): ρc = %g invalid", m.Name(), id, c)
		}
	}
	return nil
}
