package vtkio

import (
	"bytes"
	"strings"
	"testing"

	"etherm/internal/grid"
)

func testGrid(t *testing.T) *grid.Grid {
	t.Helper()
	g, err := grid.NewUniform(1e-3, 2e-3, 0.5e-3, 3, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestWriteRectilinearStructure(t *testing.T) {
	g := testGrid(t)
	temps := make([]float64, g.NumNodes())
	for i := range temps {
		temps[i] = 300 + float64(i)
	}
	mats := make([]float64, g.NumCells())
	var buf bytes.Buffer
	if err := WriteRectilinear(&buf, g, "test export",
		Field{Name: "T", Values: temps},
		Field{Name: "mat", Values: mats, OnCell: true}); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	for _, want := range []string{
		"# vtk DataFile Version 3.0",
		"DATASET RECTILINEAR_GRID",
		"DIMENSIONS 3 4 2",
		"X_COORDINATES 3 double",
		"POINT_DATA 24",
		"CELL_DATA 6",
		"SCALARS T double 1",
		"SCALARS mat double 1",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q", want)
		}
	}
	// Every nodal value present.
	if got := strings.Count(s, "\n"); got < g.NumNodes()+g.NumCells() {
		t.Error("too few data lines")
	}
}

func TestWriteRectilinearRejectsBadLengths(t *testing.T) {
	g := testGrid(t)
	var buf bytes.Buffer
	err := WriteRectilinear(&buf, g, "", Field{Name: "T", Values: make([]float64, 3)})
	if err == nil {
		t.Error("short field accepted")
	}
}

func TestWriteSliceCSV(t *testing.T) {
	g := testGrid(t)
	vals := make([]float64, g.NumNodes())
	for i := range vals {
		vals[i] = float64(i)
	}
	var buf bytes.Buffer
	if err := WriteSliceCSV(&buf, g, vals, 1); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 1+g.Nx*g.Ny {
		t.Errorf("%d lines, want %d", len(lines), 1+g.Nx*g.Ny)
	}
	if lines[0] != "x_m,y_m,value" {
		t.Errorf("header %q", lines[0])
	}
	if err := WriteSliceCSV(&buf, g, vals, 99); err == nil {
		t.Error("bad slice index accepted")
	}
}

func TestNodeMaterialMajority(t *testing.T) {
	g := testGrid(t)
	cellMat := make([]int, g.NumCells())
	for c := range cellMat {
		cellMat[c] = 1
	}
	out := NodeMaterialMajority(g, cellMat)
	for n, v := range out {
		if v != 1 {
			t.Fatalf("node %d majority %g, want 1", n, v)
		}
	}
}
