// Package vtkio writes field data on the FIT tensor grid as legacy-VTK
// rectilinear files (loadable in ParaView/VisIt) and as CSV slices, for the
// paper's Fig. 6 (mesh/materials) and Fig. 8 (temperature field) outputs.
package vtkio

import (
	"bufio"
	"fmt"
	"io"
	"os"

	"etherm/internal/grid"
)

// Field is one named nodal or cell scalar field.
type Field struct {
	Name   string
	Values []float64
	OnCell bool // false → point data (per node), true → cell data
}

// WriteRectilinear writes a legacy-VTK rectilinear grid with the given
// fields. Point fields need NumNodes values, cell fields NumCells.
func WriteRectilinear(w io.Writer, g *grid.Grid, title string, fields ...Field) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "# vtk DataFile Version 3.0")
	if title == "" {
		title = "etherm field export"
	}
	fmt.Fprintln(bw, title)
	fmt.Fprintln(bw, "ASCII")
	fmt.Fprintln(bw, "DATASET RECTILINEAR_GRID")
	fmt.Fprintf(bw, "DIMENSIONS %d %d %d\n", g.Nx, g.Ny, g.Nz)
	writeCoords := func(name string, line []float64) {
		fmt.Fprintf(bw, "%s_COORDINATES %d double\n", name, len(line))
		for i, v := range line {
			if i > 0 {
				fmt.Fprint(bw, " ")
			}
			fmt.Fprintf(bw, "%g", v)
		}
		fmt.Fprintln(bw)
	}
	writeCoords("X", g.Xs)
	writeCoords("Y", g.Ys)
	writeCoords("Z", g.Zs)

	wrotePoint, wroteCell := false, false
	for _, f := range fields {
		want := g.NumNodes()
		if f.OnCell {
			want = g.NumCells()
		}
		if len(f.Values) != want {
			return fmt.Errorf("vtkio: field %q has %d values, want %d", f.Name, len(f.Values), want)
		}
		if f.OnCell && !wroteCell {
			fmt.Fprintf(bw, "CELL_DATA %d\n", g.NumCells())
			wroteCell = true
		}
		if !f.OnCell && !wrotePoint {
			fmt.Fprintf(bw, "POINT_DATA %d\n", g.NumNodes())
			wrotePoint = true
		}
		fmt.Fprintf(bw, "SCALARS %s double 1\n", f.Name)
		fmt.Fprintln(bw, "LOOKUP_TABLE default")
		for _, v := range f.Values {
			fmt.Fprintf(bw, "%g\n", v)
		}
	}
	return bw.Flush()
}

// WriteRectilinearFile writes the VTK export to a file path.
func WriteRectilinearFile(path string, g *grid.Grid, title string, fields ...Field) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := WriteRectilinear(f, g, title, fields...); err != nil {
		return err
	}
	return f.Sync()
}

// WriteSliceCSV writes a z-slice of a nodal field as x,y,value CSV rows (the
// flattened form of the paper's Fig. 8 color map).
func WriteSliceCSV(w io.Writer, g *grid.Grid, values []float64, k int) error {
	if len(values) < g.NumNodes() {
		return fmt.Errorf("vtkio: field too short (%d values)", len(values))
	}
	if k < 0 || k >= g.Nz {
		return fmt.Errorf("vtkio: slice index %d outside 0..%d", k, g.Nz-1)
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "x_m,y_m,value")
	for j := 0; j < g.Ny; j++ {
		for i := 0; i < g.Nx; i++ {
			n := g.NodeIndex(i, j, k)
			fmt.Fprintf(bw, "%g,%g,%g\n", g.Xs[i], g.Ys[j], values[n])
		}
	}
	return bw.Flush()
}

// NodeMaterialMajority returns a per-node material field (for Fig. 6-style
// exports): each node takes the material of the adjacent cell contributing
// the largest dual-volume share.
func NodeMaterialMajority(g *grid.Grid, cellMat []int) []float64 {
	out := make([]float64, g.NumNodes())
	for n := 0; n < g.NumNodes(); n++ {
		cells, weights := g.NodeAdjacentCells(n)
		best, bestW := 0, -1.0
		for i, c := range cells {
			if weights[i] > bestW {
				best, bestW = cellMat[c], weights[i]
			}
		}
		out[n] = float64(best)
	}
	return out
}
