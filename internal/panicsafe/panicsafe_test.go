package panicsafe

import (
	"errors"
	"strings"
	"testing"
)

func boom() (err error) {
	defer Recover("test: boom", &err)
	panic("kaboom")
}

func calm() (err error) {
	defer Recover("test: calm", &err)
	return errors.New("ordinary failure")
}

func TestRecoverConvertsPanic(t *testing.T) {
	before := Count()
	err := boom()
	if err == nil {
		t.Fatal("panic was not converted into an error")
	}
	var pe *Error
	if !errors.As(err, &pe) {
		t.Fatalf("error is %T, want *panicsafe.Error", err)
	}
	if pe.Where != "test: boom" || pe.Value != "kaboom" {
		t.Errorf("captured Where=%q Value=%v", pe.Where, pe.Value)
	}
	if !strings.Contains(err.Error(), "kaboom") || !strings.Contains(err.Error(), "panicsafe") {
		t.Errorf("message lacks panic value or stack: %q", err.Error())
	}
	if Count() != before+1 {
		t.Errorf("counter moved %d → %d, want +1", before, Count())
	}
}

func TestRecoverLeavesErrorsAlone(t *testing.T) {
	before := Count()
	err := calm()
	if err == nil || err.Error() != "ordinary failure" {
		t.Fatalf("plain error mangled: %v", err)
	}
	if Count() != before {
		t.Errorf("counter bumped without a panic")
	}
}

func TestStackIsBounded(t *testing.T) {
	err := boom()
	var pe *Error
	errors.As(err, &pe)
	if len(pe.Stack) > maxStack {
		t.Errorf("stack capture %d bytes exceeds bound %d", len(pe.Stack), maxStack)
	}
}
