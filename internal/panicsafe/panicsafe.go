// Package panicsafe converts panics into structured errors with stack
// capture, so one malformed scenario or poisoned solve can never kill a
// server, worker or campaign process. Every recovery is counted; the
// server exposes the counter on /metrics as
// etherm_panics_recovered_total.
//
// The internal/sparse kernels (and any model evaluation behind them)
// panic on malformed inputs by design — the isolation boundary is the
// unit of work that contains them: a scenario, a shard, a sample
// evaluation. Wrap exactly those boundaries:
//
//	func safeEval(m Model, params, out []float64) (err error) {
//		defer panicsafe.Recover("uq: model evaluation", &err)
//		return m.Eval(params, out)
//	}
package panicsafe

import (
	"fmt"
	"runtime/debug"
	"sync/atomic"
)

// maxStack bounds the captured stack per recovered panic so failure
// messages stay loggable (the full trace of a deep solver stack can run
// to tens of KB).
const maxStack = 4 << 10

var recovered atomic.Int64

// Count returns the number of panics recovered process-wide.
func Count() int64 { return recovered.Load() }

// Error is a recovered panic as a structured failure: where it was
// contained, the panic value, and the captured stack.
type Error struct {
	Where string
	Value any
	Stack []byte
}

// Error renders the panic with its (bounded) stack so the failure message
// that lands in a job record or shard-fail report pinpoints the origin.
func (e *Error) Error() string {
	return fmt.Sprintf("panic in %s: %v\n%s", e.Where, e.Value, e.Stack)
}

// New records one recovered panic: bumps the process counter and captures
// the stack of the calling goroutine. Call it from inside a deferred
// recover branch with the recovered value.
func New(where string, value any) *Error {
	recovered.Add(1)
	stack := debug.Stack()
	if len(stack) > maxStack {
		stack = stack[:maxStack]
	}
	return &Error{Where: where, Value: value, Stack: stack}
}

// Recover is a deferred one-liner that converts a panic into *Error
// through errp, leaving an existing error untouched when no panic is in
// flight:
//
//	defer panicsafe.Recover("fleet: shard run", &err)
func Recover(where string, errp *error) {
	if r := recover(); r != nil {
		*errp = New(where, r)
	}
}
