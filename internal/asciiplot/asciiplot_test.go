package asciiplot

import (
	"strings"
	"testing"
)

func TestLinePlotContainsSeriesAndHLine(t *testing.T) {
	p := LinePlot{
		Title:  "demo",
		XLabel: "t", YLabel: "T",
		Series: []Series{{
			Name: "hot wire",
			X:    []float64{0, 10, 20, 30, 40, 50},
			Y:    []float64{300, 400, 450, 480, 495, 500},
			Err:  []float64{0, 5, 10, 15, 20, 25},
		}},
		HLines: map[string]float64{"T_crit": 523},
	}
	s := p.Render()
	if !strings.Contains(s, "demo") || !strings.Contains(s, "hot wire") {
		t.Error("title/legend missing")
	}
	if !strings.Contains(s, "T_crit") {
		t.Error("hline label missing")
	}
	if !strings.Contains(s, "*") || !strings.Contains(s, "|") {
		t.Error("markers or error bars missing")
	}
	if len(strings.Split(s, "\n")) < 10 {
		t.Error("plot suspiciously small")
	}
}

func TestLinePlotDegenerateInput(t *testing.T) {
	p := LinePlot{Series: []Series{{Name: "flat", X: []float64{1}, Y: []float64{5}}}}
	s := p.Render()
	if len(s) == 0 {
		t.Error("degenerate plot rendered empty")
	}
}

func TestHeatmapRampAndShape(t *testing.T) {
	vals := []float64{0, 1, 2, 3, 4, 5}
	s := Heatmap(vals, 3, 2, "field")
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if len(lines) != 3 { // title + 2 rows
		t.Fatalf("%d lines", len(lines))
	}
	if !strings.Contains(lines[0], "min 0") || !strings.Contains(lines[0], "max 5") {
		t.Error("range annotation missing")
	}
	// Row 0 is plotted at the bottom; the hottest cell (5) sits top-right of
	// values row 1 → rendered first line after title.
	if lines[1][2] != '@' {
		t.Errorf("hottest cell not rendered with densest glyph: %q", lines[1])
	}
	if lines[2][0] != ' ' {
		t.Errorf("coldest cell not rendered blank: %q", lines[2])
	}
}

func TestHeatmapMismatch(t *testing.T) {
	if s := Heatmap([]float64{1, 2}, 3, 2, ""); !strings.Contains(s, "mismatch") {
		t.Error("dimension mismatch not reported")
	}
}
