// Package asciiplot renders line plots with error bars and heatmaps as
// plain text, so the figure harness can show the paper's Fig. 7 and Fig. 8
// directly in a terminal next to the CSV exports.
package asciiplot

import (
	"fmt"
	"math"
	"strings"
)

// Series is one named curve; Err (optional, same length) draws symmetric
// error bars.
type Series struct {
	Name   string
	X, Y   []float64
	Err    []float64
	Marker byte
}

// LinePlot renders series into a width×height character canvas with axes
// and a legend. Horizontal reference lines can be added via HLine entries.
type LinePlot struct {
	Width, Height int
	Title         string
	XLabel        string
	YLabel        string
	Series        []Series
	HLines        map[string]float64
}

// Render draws the plot.
func (p LinePlot) Render() string {
	w, h := p.Width, p.Height
	if w < 20 {
		w = 72
	}
	if h < 8 {
		h = 22
	}
	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	for _, s := range p.Series {
		for i := range s.X {
			xmin = math.Min(xmin, s.X[i])
			xmax = math.Max(xmax, s.X[i])
			lo, hi := s.Y[i], s.Y[i]
			if s.Err != nil {
				lo -= s.Err[i]
				hi += s.Err[i]
			}
			ymin = math.Min(ymin, lo)
			ymax = math.Max(ymax, hi)
		}
	}
	for _, v := range p.HLines {
		ymin = math.Min(ymin, v)
		ymax = math.Max(ymax, v)
	}
	if math.IsInf(xmin, 0) || xmin == xmax {
		xmin, xmax = 0, 1
	}
	if math.IsInf(ymin, 0) || ymin == ymax {
		ymin, ymax = 0, 1
	}
	pad := 0.04 * (ymax - ymin)
	ymin -= pad
	ymax += pad

	canvas := make([][]byte, h)
	for r := range canvas {
		canvas[r] = []byte(strings.Repeat(" ", w))
	}
	col := func(x float64) int {
		c := int(math.Round((x - xmin) / (xmax - xmin) * float64(w-1)))
		return clampInt(c, 0, w-1)
	}
	row := func(y float64) int {
		r := int(math.Round((ymax - y) / (ymax - ymin) * float64(h-1)))
		return clampInt(r, 0, h-1)
	}

	for name, v := range p.HLines {
		r := row(v)
		for c := 0; c < w; c++ {
			canvas[r][c] = '-'
		}
		label := name
		if len(label) > w-2 {
			label = label[:w-2]
		}
		copy(canvas[r][1:], label)
	}
	for si, s := range p.Series {
		mark := s.Marker
		if mark == 0 {
			mark = "*o+x#@"[si%6]
		}
		for i := range s.X {
			c := col(s.X[i])
			if s.Err != nil && s.Err[i] > 0 {
				rLo := row(s.Y[i] - s.Err[i])
				rHi := row(s.Y[i] + s.Err[i])
				for r := rHi; r <= rLo; r++ {
					if canvas[r][c] == ' ' || canvas[r][c] == '-' {
						canvas[r][c] = '|'
					}
				}
			}
			canvas[row(s.Y[i])][c] = mark
		}
	}

	var b strings.Builder
	if p.Title != "" {
		fmt.Fprintf(&b, "%s\n", p.Title)
	}
	for r := 0; r < h; r++ {
		y := ymax - (ymax-ymin)*float64(r)/float64(h-1)
		fmt.Fprintf(&b, "%10.3g |%s\n", y, string(canvas[r]))
	}
	fmt.Fprintf(&b, "%10s +%s\n", "", strings.Repeat("-", w))
	fmt.Fprintf(&b, "%10s  %-*g%*g\n", "", w/2, xmin, w-w/2, xmax)
	if p.XLabel != "" || p.YLabel != "" {
		fmt.Fprintf(&b, "x: %s   y: %s\n", p.XLabel, p.YLabel)
	}
	for si, s := range p.Series {
		mark := s.Marker
		if mark == 0 {
			mark = "*o+x#@"[si%6]
		}
		fmt.Fprintf(&b, "  %c %s\n", mark, s.Name)
	}
	return b.String()
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Heatmap renders a 2D scalar field (row-major, ny rows × nx cols; row 0 at
// the bottom) with a density character ramp — the terminal rendition of the
// paper's Fig. 8.
func Heatmap(values []float64, nx, ny int, title string) string {
	if len(values) != nx*ny || nx == 0 || ny == 0 {
		return "heatmap: dimension mismatch\n"
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range values {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	if lo == hi {
		hi = lo + 1
	}
	ramp := " .:-=+*#%@"
	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "%s  [min %.4g, max %.4g]\n", title, lo, hi)
	}
	for j := ny - 1; j >= 0; j-- {
		for i := 0; i < nx; i++ {
			v := (values[j*nx+i] - lo) / (hi - lo)
			idx := int(v * float64(len(ramp)-1))
			b.WriteByte(ramp[clampInt(idx, 0, len(ramp)-1)])
		}
		b.WriteByte('\n')
	}
	return b.String()
}
