// Package faultinject is the deterministic, seed-driven chaos layer of
// the control plane: it injects faults at the three seams where real
// deployments fail — the job store (failed, torn and delayed writes), the
// HTTP transport (latency, connection drops, synthesized 5xx bursts,
// truncated SSE streams) and the linear solver (NaN poisoning, forced
// divergence, panics) — so the hardening around those seams can be
// exercised on demand and every chaos run replayed from its seed.
//
// Everything is off by default: a zero Config injects nothing, and the
// solver hook is only installed by an explicit EnableSolverFaults call.
// The injector draws from one seeded PRNG under a lock, so a given
// (seed, workload) pair replays the same fault schedule up to goroutine
// interleaving; per-fault counters record what actually fired, and chaos
// harnesses assert the counts are non-zero so a "green" run cannot mean
// "the faults never happened".
//
// Transport faults respect the API's retry contract: only requests that
// are safe to lose — GETs and the fleet worker protocol POSTs
// (lease/heartbeat/result/fail) — are dropped or answered with
// synthesized 5xx. Submissions and cancels pass through untouched, so an
// injected fault can never forge the "request was not processed"
// guarantee that makes shed submissions retryable.
package faultinject

import (
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"etherm/internal/jobstore"
	"etherm/internal/solver"
)

// ErrInjected is the sentinel wrapped by every injected failure, so tests
// and harnesses can separate chaos from genuine faults with errors.Is.
var ErrInjected = errors.New("faultinject: injected fault")

// Config declares the fault schedule. The zero value injects nothing.
// Probabilities are per operation in [0, 1]; durations are the maximum of
// a uniform injected delay.
type Config struct {
	// Seed drives the PRNG; a run is replayable from its seed. Zero picks
	// the fixed default seed (the package never reads a clock), so a
	// recorded config always names its seed.
	Seed uint64

	// Store faults (jobstore.Store wrapper).
	StoreFailP  float64       // Put/Delete returns an injected error, nothing written
	StoreTornP  float64       // Put writes a truncated record, then reports failure
	StoreDelay  time.Duration // max injected latency per store operation
	StoreDelayP float64       // probability of injecting that latency

	// Transport faults (http.RoundTripper wrapper).
	HTTPLatency  time.Duration // max injected latency per request
	HTTPLatencyP float64       // probability of injecting that latency
	HTTPDropP    float64       // safe request fails with a connection error
	HTTP5xxP     float64       // safe request answered with a synthesized 502
	SSETruncP    float64       // SSE response body truncated mid-stream

	// Solver faults (consulted per CGWith solve via EnableSolverFaults).
	SolverNaNP     float64
	SolverDivergeP float64
	SolverPanicP   float64
}

// DefaultSeed is used when Config.Seed is zero, so every chaos run has a
// concrete, reportable seed.
const DefaultSeed = 20160607 // the paper's publication date

// Fault kind labels, the keys of Injector.Counts.
const (
	KindStoreFail   = "store-fail"
	KindStoreTorn   = "store-torn"
	KindStoreDelay  = "store-delay"
	KindHTTPLatency = "http-latency"
	KindHTTPDrop    = "http-drop"
	KindHTTP5xx     = "http-5xx"
	KindSSETrunc    = "sse-trunc"
	KindSolverNaN   = "solver-nan"
	KindSolverDiv   = "solver-diverge"
	KindSolverPanic = "solver-panic"
)

var kinds = []string{
	KindStoreFail, KindStoreTorn, KindStoreDelay,
	KindHTTPLatency, KindHTTPDrop, KindHTTP5xx, KindSSETrunc,
	KindSolverNaN, KindSolverDiv, KindSolverPanic,
}

// Injector draws faults from one seeded PRNG and counts what fired.
// Safe for concurrent use.
type Injector struct {
	cfg Config

	mu  sync.Mutex
	rng *rand.Rand

	counts map[string]*atomic.Int64
}

// New builds an injector for cfg, defaulting a zero seed to DefaultSeed.
func New(cfg Config) *Injector {
	if cfg.Seed == 0 {
		cfg.Seed = DefaultSeed
	}
	in := &Injector{
		cfg:    cfg,
		rng:    rand.New(rand.NewPCG(cfg.Seed, cfg.Seed^0x9e3779b97f4a7c15)),
		counts: make(map[string]*atomic.Int64, len(kinds)),
	}
	for _, k := range kinds {
		in.counts[k] = &atomic.Int64{}
	}
	return in
}

// Seed returns the effective seed, for recording in chaos reports.
func (in *Injector) Seed() uint64 { return in.cfg.Seed }

// Counts snapshots how many faults of each kind fired (zero entries
// omitted). Chaos harnesses assert the total is non-zero.
func (in *Injector) Counts() map[string]int64 {
	out := make(map[string]int64)
	for k, c := range in.counts {
		if n := c.Load(); n > 0 {
			out[k] = n
		}
	}
	return out
}

// Total returns the total number of injected faults.
func (in *Injector) Total() int64 {
	var n int64
	for _, c := range in.counts {
		n += c.Load()
	}
	return n
}

// hit draws one Bernoulli trial.
func (in *Injector) hit(p float64) bool {
	if p <= 0 {
		return false
	}
	in.mu.Lock()
	v := in.rng.Float64()
	in.mu.Unlock()
	return v < p
}

// span draws a uniform duration in (0, max].
func (in *Injector) span(max time.Duration) time.Duration {
	if max <= 0 {
		return 0
	}
	in.mu.Lock()
	d := time.Duration(in.rng.Int64N(int64(max))) + 1
	in.mu.Unlock()
	return d
}

func (in *Injector) fired(kind string) { in.counts[kind].Add(1) }

// ---------------------------------------------------------------------------
// Store faults.
// ---------------------------------------------------------------------------

// faultyStore wraps a jobstore.Store with injected write failures. Reads
// (State) pass through untouched: recovery correctness under corrupted
// bytes is the WAL fuzzers' job; this seam models the write path failing
// mid-flight.
type faultyStore struct {
	in *Injector
	s  jobstore.Store
}

// WrapStore returns s with injected Put/Delete faults: fail-stop errors
// (nothing written), torn writes (a truncated record is written, then the
// error surfaces — what a crash mid-fsync leaves behind) and delays.
func (in *Injector) WrapStore(s jobstore.Store) jobstore.Store {
	return &faultyStore{in: in, s: s}
}

func (fs *faultyStore) Put(kind, id string, data []byte, c jobstore.Counters) error {
	if fs.in.cfg.StoreDelay > 0 && fs.in.hit(fs.in.cfg.StoreDelayP) {
		fs.in.fired(KindStoreDelay)
		time.Sleep(fs.in.span(fs.in.cfg.StoreDelay))
	}
	if fs.in.hit(fs.in.cfg.StoreFailP) {
		fs.in.fired(KindStoreFail)
		return fmt.Errorf("store put %s/%s failed (injected fsync error): %w", kind, id, ErrInjected)
	}
	if len(data) > 1 && fs.in.hit(fs.in.cfg.StoreTornP) {
		fs.in.fired(KindStoreTorn)
		// A torn write lands half a record AND reports failure — the
		// caller must treat the record as unwritten, and recovery must
		// shrug off the garbage (the WAL's CRC framing drops it).
		_ = fs.s.Put(kind, id, data[:len(data)/2], c)
		return fmt.Errorf("store put %s/%s torn mid-write (injected): %w", kind, id, ErrInjected)
	}
	return fs.s.Put(kind, id, data, c)
}

func (fs *faultyStore) Delete(kind, id string, c jobstore.Counters) error {
	if fs.in.hit(fs.in.cfg.StoreFailP) {
		fs.in.fired(KindStoreFail)
		return fmt.Errorf("store delete %s/%s failed (injected): %w", kind, id, ErrInjected)
	}
	return fs.s.Delete(kind, id, c)
}

func (fs *faultyStore) State() *jobstore.State { return fs.s.State() }
func (fs *faultyStore) Close() error           { return fs.s.Close() }

// ---------------------------------------------------------------------------
// Transport faults.
// ---------------------------------------------------------------------------

// transport wraps an http.RoundTripper with injected network faults.
type transport struct {
	in   *Injector
	base http.RoundTripper
}

// Transport returns base (nil = http.DefaultTransport) wrapped with
// injected latency on every request, drops and synthesized 502s on safe
// requests, and mid-stream truncation of SSE response bodies.
func (in *Injector) Transport(base http.RoundTripper) http.RoundTripper {
	if base == nil {
		base = http.DefaultTransport
	}
	return &transport{in: in, base: base}
}

// safeToDisrupt reports whether losing req before it reaches the server
// preserves the system's invariants: GETs are idempotent, and the fleet
// worker protocol tolerates every lost call (a lost lease is re-polled, a
// lost heartbeat retried, a lost result re-leased after TTL expiry — the
// re-run is bit-identical, and the coordinator's stale-lease rejection
// keeps the merge exactly-once). Submissions and cancels are never
// disrupted: the SDK must not see a synthetic failure on a call the
// server may otherwise have processed.
func safeToDisrupt(req *http.Request) bool {
	if req.Method == http.MethodGet {
		return true
	}
	if req.Method != http.MethodPost {
		return false
	}
	p := req.URL.Path
	for _, suffix := range []string{"/lease", "/heartbeat", "/result", "/fail"} {
		if strings.HasSuffix(p, suffix) {
			return true
		}
	}
	return false
}

func (t *transport) RoundTrip(req *http.Request) (*http.Response, error) {
	if t.in.cfg.HTTPLatency > 0 && t.in.hit(t.in.cfg.HTTPLatencyP) {
		t.in.fired(KindHTTPLatency)
		select {
		case <-time.After(t.in.span(t.in.cfg.HTTPLatency)):
		case <-req.Context().Done():
			return nil, req.Context().Err()
		}
	}
	if safeToDisrupt(req) {
		if t.in.hit(t.in.cfg.HTTPDropP) {
			t.in.fired(KindHTTPDrop)
			return nil, fmt.Errorf("%s %s connection dropped: %w", req.Method, req.URL.Path, ErrInjected)
		}
		if t.in.hit(t.in.cfg.HTTP5xxP) {
			t.in.fired(KindHTTP5xx)
			return synthesized5xx(req), nil
		}
	}
	resp, err := t.base.RoundTrip(req)
	if err != nil {
		return nil, err
	}
	if strings.HasPrefix(resp.Header.Get("Content-Type"), "text/event-stream") &&
		t.in.hit(t.in.cfg.SSETruncP) {
		t.in.fired(KindSSETrunc)
		// Truncate after a random early slice of the stream: the watcher
		// sees a connection reset mid-stream and must re-subscribe.
		resp.Body = &truncatedBody{rc: resp.Body, remain: 64 + int64(t.in.span(4096))}
	}
	return resp, nil
}

// synthesized5xx fabricates the 502 an upstream proxy would return when
// the backend connection fails.
func synthesized5xx(req *http.Request) *http.Response {
	body := "injected bad gateway (chaos)"
	return &http.Response{
		Status:        strconv.Itoa(http.StatusBadGateway) + " " + http.StatusText(http.StatusBadGateway),
		StatusCode:    http.StatusBadGateway,
		Proto:         req.Proto,
		ProtoMajor:    req.ProtoMajor,
		ProtoMinor:    req.ProtoMinor,
		Header:        http.Header{"Content-Type": []string{"text/plain"}},
		Body:          io.NopCloser(strings.NewReader(body)),
		ContentLength: int64(len(body)),
		Request:       req,
	}
}

// truncatedBody yields remain bytes of the stream, then fails like a
// reset connection.
type truncatedBody struct {
	rc     io.ReadCloser
	remain int64
}

func (b *truncatedBody) Read(p []byte) (int, error) {
	if b.remain <= 0 {
		return 0, fmt.Errorf("stream truncated: %w", ErrInjected)
	}
	if int64(len(p)) > b.remain {
		p = p[:b.remain]
	}
	n, err := b.rc.Read(p)
	b.remain -= int64(n)
	return n, err
}

func (b *truncatedBody) Close() error { return b.rc.Close() }

// ---------------------------------------------------------------------------
// Solver faults.
// ---------------------------------------------------------------------------

// SolverFault draws at most one injected solver failure mode; it is the
// function EnableSolverFaults installs as the solver's chaos hook.
func (in *Injector) SolverFault() solver.Fault {
	switch {
	case in.hit(in.cfg.SolverPanicP):
		in.fired(KindSolverPanic)
		return solver.FaultPanic
	case in.hit(in.cfg.SolverNaNP):
		in.fired(KindSolverNaN)
		return solver.FaultNaN
	case in.hit(in.cfg.SolverDivergeP):
		in.fired(KindSolverDiv)
		return solver.FaultDiverge
	}
	return solver.FaultNone
}

// EnableSolverFaults installs the injector as the process-wide solver
// fault source. Call DisableSolverFaults before any phase that asserts
// bit-identical results — solver faults are drawn per solve, so they are
// not deterministic across scheduling orders.
func (in *Injector) EnableSolverFaults() { solver.SetFaultHook(in.SolverFault) }

// DisableSolverFaults removes the process-wide solver fault source.
func DisableSolverFaults() { solver.SetFaultHook(nil) }

// ---------------------------------------------------------------------------
// Spec parsing (flags/env).
// ---------------------------------------------------------------------------

// EnvVar is the environment variable FromEnv reads a chaos spec from.
const EnvVar = "ETHERM_CHAOS"

// ParseSpec builds a Config from a compact "key=value,key=value" spec:
//
//	seed=42,store-fail=0.05,http-drop=0.03,sse-trunc=0.1,latency=5ms
//
// Keys: seed, store-fail, store-torn, store-delay (duration),
// store-delay-p, latency (duration), latency-p, http-drop, http-5xx,
// sse-trunc, solver-nan, solver-diverge, solver-panic. Unknown keys are
// an error, so a typo cannot silently disable a fault.
func ParseSpec(spec string) (Config, error) {
	var cfg Config
	if strings.TrimSpace(spec) == "" {
		return cfg, nil
	}
	for _, kv := range strings.Split(spec, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if !ok {
			return cfg, fmt.Errorf("faultinject: bad spec entry %q (want key=value)", kv)
		}
		var err error
		switch key {
		case "seed":
			cfg.Seed, err = strconv.ParseUint(val, 10, 64)
		case "store-fail":
			cfg.StoreFailP, err = parseProb(val)
		case "store-torn":
			cfg.StoreTornP, err = parseProb(val)
		case "store-delay":
			cfg.StoreDelay, err = time.ParseDuration(val)
		case "store-delay-p":
			cfg.StoreDelayP, err = parseProb(val)
		case "latency":
			cfg.HTTPLatency, err = time.ParseDuration(val)
		case "latency-p":
			cfg.HTTPLatencyP, err = parseProb(val)
		case "http-drop":
			cfg.HTTPDropP, err = parseProb(val)
		case "http-5xx":
			cfg.HTTP5xxP, err = parseProb(val)
		case "sse-trunc":
			cfg.SSETruncP, err = parseProb(val)
		case "solver-nan":
			cfg.SolverNaNP, err = parseProb(val)
		case "solver-diverge":
			cfg.SolverDivergeP, err = parseProb(val)
		case "solver-panic":
			cfg.SolverPanicP, err = parseProb(val)
		default:
			return cfg, fmt.Errorf("faultinject: unknown spec key %q", key)
		}
		if err != nil {
			return cfg, fmt.Errorf("faultinject: spec %s=%s: %w", key, val, err)
		}
	}
	return cfg, nil
}

func parseProb(s string) (float64, error) {
	p, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, err
	}
	if p < 0 || p > 1 {
		return 0, fmt.Errorf("probability %g outside [0, 1]", p)
	}
	return p, nil
}

// Spec renders the configuration as a ParseSpec-compatible string — the
// replay recipe a chaos report records: feeding it back (via flag or
// ETHERM_CHAOS) reproduces the identical fault stream.
func (c Config) Spec() string {
	parts := []string{fmt.Sprintf("seed=%d", c.Seed)}
	prob := func(k string, p float64) {
		if p > 0 {
			parts = append(parts, fmt.Sprintf("%s=%g", k, p))
		}
	}
	dur := func(k string, d time.Duration) {
		if d > 0 {
			parts = append(parts, fmt.Sprintf("%s=%s", k, d))
		}
	}
	prob("store-fail", c.StoreFailP)
	prob("store-torn", c.StoreTornP)
	dur("store-delay", c.StoreDelay)
	prob("store-delay-p", c.StoreDelayP)
	dur("latency", c.HTTPLatency)
	prob("latency-p", c.HTTPLatencyP)
	prob("http-drop", c.HTTPDropP)
	prob("http-5xx", c.HTTP5xxP)
	prob("sse-trunc", c.SSETruncP)
	prob("solver-nan", c.SolverNaNP)
	prob("solver-diverge", c.SolverDivergeP)
	prob("solver-panic", c.SolverPanicP)
	return strings.Join(parts, ",")
}

// Spec returns the injector's configuration as a replayable spec string.
func (in *Injector) Spec() string { return in.cfg.Spec() }

// FromEnv builds an injector from the ETHERM_CHAOS spec, or nil when the
// variable is unset/empty — the off-by-default path of every binary.
func FromEnv(getenv func(string) string) (*Injector, error) {
	spec := getenv(EnvVar)
	if strings.TrimSpace(spec) == "" {
		return nil, nil
	}
	cfg, err := ParseSpec(spec)
	if err != nil {
		return nil, err
	}
	return New(cfg), nil
}

// Describe renders the fired counters as a stable one-line summary for
// logs ("http-drop=12 sse-trunc=3 …").
func (in *Injector) Describe() string {
	counts := in.Counts()
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%s=%d", k, counts[k]))
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, " ")
}
