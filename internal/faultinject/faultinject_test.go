package faultinject

import (
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"etherm/internal/jobstore"
)

func TestZeroConfigInjectsNothing(t *testing.T) {
	in := New(Config{})
	store := in.WrapStore(jobstore.NewMem())
	for i := 0; i < 200; i++ {
		if err := store.Put(jobstore.KindJob, "id", []byte("payload"), jobstore.Counters{}); err != nil {
			t.Fatalf("zero config injected a store fault: %v", err)
		}
	}
	if in.Total() != 0 {
		t.Errorf("zero config fired %d faults: %s", in.Total(), in.Describe())
	}
	if in.Seed() != DefaultSeed {
		t.Errorf("zero seed not defaulted: %d", in.Seed())
	}
}

func TestStoreFaultsAreDeterministicPerSeed(t *testing.T) {
	schedule := func(seed uint64) []bool {
		in := New(Config{Seed: seed, StoreFailP: 0.3})
		store := in.WrapStore(jobstore.NewMem())
		out := make([]bool, 100)
		for i := range out {
			out[i] = store.Put(jobstore.KindJob, "id", []byte("x"), jobstore.Counters{}) != nil
		}
		return out
	}
	a, b := schedule(7), schedule(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at op %d", i)
		}
	}
	c := schedule(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced an identical 100-op schedule")
	}
}

func TestInjectedStoreErrorsWrapSentinel(t *testing.T) {
	in := New(Config{StoreFailP: 1})
	store := in.WrapStore(jobstore.NewMem())
	err := store.Put(jobstore.KindJob, "id", []byte("x"), jobstore.Counters{})
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("injected error does not wrap ErrInjected: %v", err)
	}
	if got := in.Counts()[KindStoreFail]; got != 1 {
		t.Errorf("store-fail count = %d, want 1", got)
	}
}

func TestTornWriteLeavesTruncatedRecord(t *testing.T) {
	in := New(Config{StoreTornP: 1})
	mem := jobstore.NewMem()
	store := in.WrapStore(mem)
	err := store.Put(jobstore.KindJob, "id", []byte("0123456789"), jobstore.Counters{})
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("torn write did not surface an error: %v", err)
	}
	got := mem.State().Kinds[jobstore.KindJob]["id"]
	if string(got) != "01234" {
		t.Errorf("torn record = %q, want the truncated half %q", got, "01234")
	}
}

func TestTransportNeverDisruptsSubmissions(t *testing.T) {
	in := New(Config{HTTPDropP: 1, HTTP5xxP: 1})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusAccepted)
	}))
	defer srv.Close()
	cl := &http.Client{Transport: in.Transport(nil)}

	// POST /v1/jobs (a submission) must pass through untouched.
	resp, err := cl.Post(srv.URL+"/v1/jobs", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatalf("submission disrupted by injected transport fault: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submission got synthesized status %d", resp.StatusCode)
	}

	// A fleet heartbeat is safe to lose and must be disrupted at p=1.
	if _, err := cl.Post(srv.URL+"/v1/fleet/heartbeat", "application/json", strings.NewReader("{}")); err == nil {
		t.Fatal("heartbeat not dropped at http-drop=1")
	}
	if in.Counts()[KindHTTPDrop] == 0 {
		t.Error("drop counter did not move")
	}
}

func TestTransportSynthesizes5xxOnGets(t *testing.T) {
	in := New(Config{HTTP5xxP: 1})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		t.Error("request reached the server despite http-5xx=1")
	}))
	defer srv.Close()
	cl := &http.Client{Transport: in.Transport(nil)}
	resp, err := cl.Get(srv.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("synthesized status = %d, want 502", resp.StatusCode)
	}
}

func TestSSETruncation(t *testing.T) {
	in := New(Config{SSETruncP: 1})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/event-stream")
		for i := 0; i < 1000; i++ {
			if _, err := io.WriteString(w, "data: {\"type\":\"sample\"}\n\n"); err != nil {
				return
			}
		}
	}))
	defer srv.Close()
	cl := &http.Client{Transport: in.Transport(nil)}
	resp, err := cl.Get(srv.URL + "/v1/jobs/job-000001/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	_, err = io.Copy(io.Discard, resp.Body)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("stream not truncated: %v", err)
	}
	if in.Counts()[KindSSETrunc] == 0 {
		t.Error("sse-trunc counter did not move")
	}
}

func TestParseSpecRoundTrip(t *testing.T) {
	cfg, err := ParseSpec("seed=42,store-fail=0.05,store-torn=0.01,latency=5ms,latency-p=0.5,http-drop=0.03,sse-trunc=0.1,solver-nan=0.02")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Seed != 42 || cfg.StoreFailP != 0.05 || cfg.HTTPLatency != 5*time.Millisecond ||
		cfg.SSETruncP != 0.1 || cfg.SolverNaNP != 0.02 {
		t.Errorf("parsed config wrong: %+v", cfg)
	}
	if _, err := ParseSpec("store-fial=0.1"); err == nil {
		t.Error("typo key accepted silently")
	}
	if _, err := ParseSpec("store-fail=1.5"); err == nil {
		t.Error("out-of-range probability accepted")
	}
}

func TestSpecRoundTrip(t *testing.T) {
	cfg := Config{
		Seed: 99, StoreFailP: 0.05, StoreTornP: 0.02,
		StoreDelay: 2 * time.Millisecond, StoreDelayP: 0.1,
		HTTPLatency: 5 * time.Millisecond, HTTPLatencyP: 0.15,
		HTTPDropP: 0.1, HTTP5xxP: 0.05, SSETruncP: 0.2,
		SolverNaNP: 0.02, SolverDivergeP: 0.02, SolverPanicP: 0.01,
	}
	back, err := ParseSpec(cfg.Spec())
	if err != nil {
		t.Fatalf("Spec() output rejected by ParseSpec: %v\nspec: %s", err, cfg.Spec())
	}
	if back != cfg {
		t.Errorf("spec round trip changed the config:\n got %+v\nwant %+v", back, cfg)
	}
	// A zero-seed injector always reports a concrete, replayable seed.
	in := New(Config{HTTPDropP: 0.5})
	re, err := ParseSpec(in.Spec())
	if err != nil {
		t.Fatal(err)
	}
	if re.Seed != DefaultSeed {
		t.Errorf("injector spec seed = %d, want the defaulted %d", re.Seed, DefaultSeed)
	}
}

func TestFromEnv(t *testing.T) {
	if in, err := FromEnv(func(string) string { return "" }); err != nil || in != nil {
		t.Fatalf("empty env: in=%v err=%v, want nil/nil", in, err)
	}
	in, err := FromEnv(func(k string) string {
		if k != EnvVar {
			t.Errorf("read unexpected env var %q", k)
		}
		return "seed=9,http-drop=0.2"
	})
	if err != nil || in == nil || in.Seed() != 9 {
		t.Fatalf("env spec not parsed: in=%v err=%v", in, err)
	}
}
