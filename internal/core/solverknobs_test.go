package core

import (
	"math"
	"sync"
	"testing"
)

// TestPerTierIterationSplit: the per-tier CG counters attribute every
// iteration to the preconditioner tier that served it, and the tiers track
// the configured Precond mode.
func TestPerTierIterationSplit(t *testing.T) {
	for _, tc := range []struct {
		name string
		opt  Options
		tier func(st RunStats) int
	}{
		{"ic0 default lands in mic0", Options{EndTime: 2, NumSteps: 3},
			func(st RunStats) int { return st.CGItersMIC0 }},
		{"ict mode lands in ict", Options{EndTime: 2, NumSteps: 3, Precond: PrecondICT},
			func(st RunStats) int { return st.CGItersICT }},
		{"plain omega lands in ic0", Options{EndTime: 2, NumSteps: 3, PrecondOmega: -1},
			func(st RunStats) int { return st.CGItersIC0 }},
		{"jacobi lands in jacobi", Options{EndTime: 2, NumSteps: 3, Precond: PrecondJacobi},
			func(st RunStats) int { return st.CGItersJacobi }},
		{"none lands in none", Options{EndTime: 2, NumSteps: 3, Precond: PrecondNone},
			func(st RunStats) int { return st.CGItersNone }},
		{"deflation lands in deflated", Options{EndTime: 2, NumSteps: 3, Deflate: true},
			func(st RunStats) int { return st.CGItersDeflated }},
	} {
		p := wiredProblem(t)
		s, err := NewSimulator(p, tc.opt)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		res, err := s.Run()
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		st := res.Stats
		total := st.ElecCGIters + st.ThermCGIters
		inTier := tc.tier(st)
		perTier := st.CGItersDeflated + st.CGItersICT + st.CGItersMIC0 +
			st.CGItersIC0 + st.CGItersJacobi + st.CGItersNone
		if total == 0 {
			t.Fatalf("%s: no CG iterations recorded", tc.name)
		}
		if perTier != total {
			t.Errorf("%s: per-tier sum %d != total CG iterations %d (%+v)", tc.name, perTier, total, st)
		}
		if inTier != total {
			t.Errorf("%s: want all %d iterations in the configured tier, got %d (%+v)",
				tc.name, total, inTier, st)
		}
	}
}

// TestMixedPrecisionMatchesFloat64Run: a full coupled transient run under
// Precision=mixed reproduces the float64 fields far inside the linear
// tolerance — iterative refinement corrects every inner float32 solve
// against the float64 residual, so only tolerance-level differences in the
// CG stopping point remain.
func TestMixedPrecisionMatchesFloat64Run(t *testing.T) {
	run := func(prec Precision) *Result {
		p := wiredProblem(t)
		s, err := NewSimulator(p, Options{EndTime: 2, NumSteps: 4, Precond: PrecondICT, Precision: prec})
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	ref := run(PrecisionFloat64)
	mix := run(PrecisionMixed)
	for i := range ref.FinalField {
		if math.Abs(mix.FinalField[i]-ref.FinalField[i]) > 1e-7*(1+math.Abs(ref.FinalField[i])) {
			t.Fatalf("FinalField[%d]: mixed %g vs float64 %g", i, mix.FinalField[i], ref.FinalField[i])
		}
	}
	for i := range ref.FinalPhi {
		if math.Abs(mix.FinalPhi[i]-ref.FinalPhi[i]) > 1e-7*(1+math.Abs(ref.FinalPhi[i])) {
			t.Fatalf("FinalPhi[%d]: mixed %g vs float64 %g", i, mix.FinalPhi[i], ref.FinalPhi[i])
		}
	}
}

// TestDeflationMatchesBaseline: the two-level preconditioner changes the CG
// trajectory, never the answer; the run must stay fallback-free (a healthy
// SPD system never needs to degrade out of deflation).
func TestDeflationMatchesBaseline(t *testing.T) {
	p := wiredProblem(t)
	base, err := NewSimulator(p, Options{EndTime: 2, NumSteps: 4})
	if err != nil {
		t.Fatal(err)
	}
	refRes, err := base.Run()
	if err != nil {
		t.Fatal(err)
	}
	defl, err := NewSimulator(p, Options{EndTime: 2, NumSteps: 4, Deflate: true, DeflateBlock: 16})
	if err != nil {
		t.Fatal(err)
	}
	res, err := defl.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.PrecondFallbacks != 0 || res.Stats.PrecondDowngrades != 0 {
		t.Errorf("deflated run degraded: %+v", res.Stats)
	}
	if res.Stats.CGItersDeflated == 0 {
		t.Error("no iterations attributed to the deflated tier")
	}
	for i := range refRes.FinalField {
		if math.Abs(res.FinalField[i]-refRes.FinalField[i]) > 1e-6*(1+math.Abs(refRes.FinalField[i])) {
			t.Fatalf("FinalField[%d]: deflated %g vs baseline %g", i, res.FinalField[i], refRes.FinalField[i])
		}
	}
}

// TestSolveObserver: every linear solve of a run is reported with its
// operator and serving tier; removing the observer stops the stream.
func TestSolveObserver(t *testing.T) {
	var mu sync.Mutex
	type key struct{ op, tier string }
	seen := map[key]int{}
	SetSolveObserver(func(op, tier string, iters int) {
		// iters can legitimately be 0: warm-started CG may accept the
		// previous iterate immediately.
		if iters < 0 {
			t.Errorf("observer saw %d iterations for %s/%s", iters, op, tier)
		}
		mu.Lock()
		seen[key{op, tier}]++
		mu.Unlock()
	})
	defer SetSolveObserver(nil)

	p := wiredProblem(t)
	s, err := NewSimulator(p, Options{EndTime: 1, NumSteps: 2, Precond: PrecondICT})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	elec, therm := seen[key{"electric", "ict"}], seen[key{"thermal", "ict"}]
	mu.Unlock()
	if elec != res.Stats.ElecSolves || therm != res.Stats.ThermSolves {
		t.Errorf("observer saw %d electric / %d thermal solves, stats say %d / %d",
			elec, therm, res.Stats.ElecSolves, res.Stats.ThermSolves)
	}

	SetSolveObserver(nil)
	mu.Lock()
	before := len(seen)
	mu.Unlock()
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	after := len(seen)
	mu.Unlock()
	if after != before {
		t.Error("observer still firing after removal")
	}
}
