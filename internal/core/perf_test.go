package core

import (
	"testing"

	"etherm/internal/bondwire"
	"etherm/internal/fit"
	"etherm/internal/sparse"
)

// wiredProblem builds a small coupled problem with a driven bonding wire so
// both the electric and the thermal path are exercised.
func wiredProblem(t *testing.T) *Problem {
	t.Helper()
	p := uniformProblem(t, constCopper(), 2e-3, 2e-3, 1e-3, 5, 5, 3)
	g := p.Grid
	nodeA := g.NodeIndex(0, 0, 2)
	nodeB := g.NodeIndex(4, 4, 2)
	p.Wires = []bondwire.Wire{{
		NodeA: nodeA, NodeB: nodeB,
		Geom: bondwire.Geometry{Direct: 1.29e-3, DeltaS: 0.26e-3, Diameter: 25.4e-6},
		Mat:  constCopper(),
	}}
	p.ElecDirichlet = []fit.Dirichlet{
		{Nodes: []int{nodeA}, Values: []float64{0}},
		{Nodes: []int{nodeB}, Values: []float64{20e-3}},
	}
	p.ThermalBC = fit.RobinBC{H: 25, Emissivity: 0.8, TInf: 300}
	return p
}

// TestSteadyStateSolveZeroAllocs is the allocation-regression gate for the
// simulator hot path: once the preconditioners are built, a full
// assemble-and-solve cycle — electric solve, thermal assembly, thermal step —
// must not allocate.
func TestSteadyStateSolveZeroAllocs(t *testing.T) {
	p := wiredProblem(t)
	s, err := NewSimulator(p, Options{EndTime: 1, NumSteps: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Run once: builds preconditioners, sizes every buffer.
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	dt := s.opt.EndTime / float64(s.opt.NumSteps)

	allocs := testing.AllocsPerRun(10, func() {
		if _, err := s.SolveElectric(s.T); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state SolveElectric performed %v allocations, want 0", allocs)
	}

	allocs = testing.AllocsPerRun(10, func() {
		s.assembleThermal(s.T)
	})
	if allocs != 0 {
		t.Errorf("steady-state assembleThermal performed %v allocations, want 0", allocs)
	}

	copy(s.tPrev, s.T)
	copy(s.tIter, s.T)
	allocs = testing.AllocsPerRun(10, func() {
		copy(s.tIter, s.tPrev)
		if err := s.thermalStep(ImplicitEuler, dt, s.prev2, res); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state thermalStep performed %v allocations, want 0", allocs)
	}
}

// TestRunDeterministicAcrossWorkers asserts the opt-in parallel path is
// bit-identical to the serial default: every Result field of a coupled
// transient must match exactly for 1, 2 and 8 workers. The mesh is sized
// above both parallel gates (sparse.ParallelMinNNZ, fit.ParallelMinEdges)
// so the blocked goroutine paths genuinely run rather than falling back to
// the serial loops.
func TestRunDeterministicAcrossWorkers(t *testing.T) {
	build := func() *Problem {
		p := uniformProblem(t, constCopper(), 4e-3, 4e-3, 4e-3, 14, 14, 14)
		g := p.Grid
		nodeA := g.NodeIndex(0, 0, 13)
		nodeB := g.NodeIndex(13, 13, 13)
		p.Wires = []bondwire.Wire{{
			NodeA: nodeA, NodeB: nodeB,
			Geom: bondwire.Geometry{Direct: 1.29e-3, DeltaS: 0.26e-3, Diameter: 25.4e-6},
			Mat:  constCopper(),
		}}
		p.ElecDirichlet = []fit.Dirichlet{
			{Nodes: []int{nodeA}, Values: []float64{0}},
			{Nodes: []int{nodeB}, Values: []float64{20e-3}},
		}
		p.ThermalBC = fit.RobinBC{H: 25, Emissivity: 0.8, TInf: 300}
		return p
	}
	run := func(workers int) *Result {
		p := build()
		if p.Grid.NumEdges() < fit.ParallelMinEdges {
			t.Fatalf("test mesh has %d edges, below the parallel assembly gate", p.Grid.NumEdges())
		}
		opt := Options{EndTime: 2, NumSteps: 4, Workers: workers}
		s, err := NewSimulator(p, opt)
		if err != nil {
			t.Fatal(err)
		}
		if s.opT.Matrix().NNZ() < sparse.ParallelMinNNZ {
			t.Fatalf("thermal operator has %d entries, below the parallel matvec gate", s.opT.Matrix().NNZ())
		}
		res, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	ref := run(0)
	eqVec := func(t *testing.T, name string, a, b []float64) {
		t.Helper()
		if len(a) != len(b) {
			t.Fatalf("%s: length %d vs %d", name, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s[%d]: %g != %g", name, i, a[i], b[i])
			}
		}
	}
	for _, workers := range []int{1, 2, 8} {
		got := run(workers)
		eqVec(t, "Times", got.Times, ref.Times)
		eqVec(t, "FieldPower", got.FieldPower, ref.FieldPower)
		eqVec(t, "WirePowerTotal", got.WirePowerTotal, ref.WirePowerTotal)
		eqVec(t, "BoundaryLoss", got.BoundaryLoss, ref.BoundaryLoss)
		eqVec(t, "EnergyImbalance", got.EnergyImbalance, ref.EnergyImbalance)
		eqVec(t, "FinalField", got.FinalField, ref.FinalField)
		eqVec(t, "FinalPhi", got.FinalPhi, ref.FinalPhi)
		for ti := range ref.WireTemp {
			eqVec(t, "WireTemp", got.WireTemp[ti], ref.WireTemp[ti])
			eqVec(t, "WireMaxTemp", got.WireMaxTemp[ti], ref.WireMaxTemp[ti])
			eqVec(t, "WirePower", got.WirePower[ti], ref.WirePower[ti])
		}
		if got.Stats != ref.Stats {
			t.Errorf("workers=%d: solver stats diverged: %+v vs %+v", workers, got.Stats, ref.Stats)
		}
	}
}

// TestPrecondLifecycle pins the cached-preconditioner contract: one build
// per operator per run, refreshes only when the lag policy triggers, no
// fallbacks on healthy SPD systems, and a reset between runs (run-to-run
// determinism).
func TestPrecondLifecycle(t *testing.T) {
	p := wiredProblem(t)
	s, err := NewSimulator(p, Options{EndTime: 2, NumSteps: 5})
	if err != nil {
		t.Fatal(err)
	}
	first, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if first.Stats.PrecondBuilds != 2 {
		t.Errorf("expected one IC0 build per operator (2 total), got %d", first.Stats.PrecondBuilds)
	}
	if first.Stats.PrecondFallbacks != 0 || first.Stats.PrecondFallbackReason != "" {
		t.Errorf("unexpected fallback: %+v", first.Stats)
	}
	if first.Stats.ThermSolves > 0 && first.Stats.PrecondRefreshes >= first.Stats.ThermSolves {
		t.Errorf("lag policy refreshed every solve (%d refreshes for %d solves)",
			first.Stats.PrecondRefreshes, first.Stats.ThermSolves)
	}
	second, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if second.Stats != first.Stats {
		t.Errorf("re-running the same simulator changed solver work: %+v vs %+v",
			second.Stats, first.Stats)
	}
}

// TestPrecondJacobiFallbackReason forces the IC0 chain to fail by feeding a
// matrix mode that cannot be factorized and checks the recorded reason.
// PrecondNone and PrecondJacobi must keep working regardless.
func TestPrecondModes(t *testing.T) {
	for _, mode := range []Precond{PrecondIC0, PrecondJacobi, PrecondNone} {
		p := wiredProblem(t)
		s, err := NewSimulator(p, Options{EndTime: 1, NumSteps: 2, Precond: mode})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Run(); err != nil {
			t.Errorf("precond %v: %v", mode, err)
		}
	}
}

// TestPlainIC0OptOut checks PrecondOmega < 0 selects the unmodified
// factorization — a genuinely different preconditioner (distinct CG
// trajectory) converging to the same answer. (Which of the two needs fewer
// iterations is problem-dependent: modified IC0 wins decisively on the large
// high-contrast chip meshes, plain can edge it out on tiny uniform boxes
// like this one, so no direction is asserted here.)
func TestPlainIC0OptOut(t *testing.T) {
	p := wiredProblem(t)
	run := func(omega float64) *Result {
		s, err := NewSimulator(p, Options{EndTime: 2, NumSteps: 4, PrecondOmega: omega})
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	modified := run(0) // default resolves to ω = 1
	plain := run(-1)
	if plain.Stats.ThermCGIters == modified.Stats.ThermCGIters {
		t.Errorf("omega opt-out did not change the solve trajectory (%d therm iters both)",
			plain.Stats.ThermCGIters)
	}
	last := len(modified.Times) - 1
	for j := range modified.WireTemp[last] {
		d := modified.WireTemp[last][j] - plain.WireTemp[last][j]
		if d < -1e-6 || d > 1e-6 {
			t.Errorf("wire %d: modified %g vs plain %g differ beyond solver tolerance",
				j, modified.WireTemp[last][j], plain.WireTemp[last][j])
		}
	}
}
