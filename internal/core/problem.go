// Package core implements the paper's primary contribution: the transient
// coupled electrothermal field simulation with lumped bonding-wire models
// embedded as point-to-point electrothermal conductances in the FIT
// discretization. It solves, per implicit-Euler time step,
//
//	S̃ Mσ(T) S̃ᵀ Φ + Σ_j P_j G_el,j(T_bw,j) P_jᵀ Φ = 0
//	Mρc Ṫ + S̃ Mλ(T) S̃ᵀ T + Σ_j P_j G_th,j(T_bw,j) P_jᵀ T = Q(T, Φ)
//
// with Q collecting field Joule heating, convective/radiative boundary
// exchange and the bonding-wire self-heating (eqs. 3–4 of the paper plus the
// wire stamps of section III-B).
package core

import (
	"fmt"

	"etherm/internal/bondwire"
	"etherm/internal/fit"
	"etherm/internal/grid"
	"etherm/internal/material"
	"etherm/internal/solver"
)

// Problem is the discrete electrothermal problem definition: geometry,
// materials, bonding wires and boundary conditions.
type Problem struct {
	Grid    *grid.Grid
	CellMat []int // material ID per primary cell
	Lib     *material.Library
	Wires   []bondwire.Wire

	// ElecDirichlet lists the PEC contact sets with prescribed potentials.
	ElecDirichlet []fit.Dirichlet
	// ThermDirichlet optionally pins node temperatures (mostly for
	// verification problems; the paper's example uses Robin only).
	ThermDirichlet []fit.Dirichlet
	// ThermalBC is the convection+radiation exchange on the domain boundary.
	ThermalBC fit.RobinBC
	// TInit is the uniform initial temperature; zero means ThermalBC.TInf.
	TInit float64
}

// Validate checks the problem for consistency.
func (p *Problem) Validate() error {
	if p.Grid == nil {
		return fmt.Errorf("core: problem has no grid")
	}
	if p.Lib == nil {
		return fmt.Errorf("core: problem has no material library")
	}
	if len(p.CellMat) != p.Grid.NumCells() {
		return fmt.Errorf("core: cellMat has %d entries for %d cells", len(p.CellMat), p.Grid.NumCells())
	}
	n := p.Grid.NumNodes()
	for i, d := range p.ElecDirichlet {
		if err := d.Validate(n); err != nil {
			return fmt.Errorf("core: electric Dirichlet set %d: %w", i, err)
		}
	}
	for i, d := range p.ThermDirichlet {
		if err := d.Validate(n); err != nil {
			return fmt.Errorf("core: thermal Dirichlet set %d: %w", i, err)
		}
	}
	if err := p.ThermalBC.Validate(); err != nil {
		return err
	}
	for i, w := range p.Wires {
		if err := w.Validate(n); err != nil {
			return fmt.Errorf("core: wire %d: %w", i, err)
		}
	}
	if p.TInit < 0 {
		return fmt.Errorf("core: negative initial temperature %g", p.TInit)
	}
	return nil
}

// InitTemperature returns the effective initial temperature.
func (p *Problem) InitTemperature() float64 {
	if p.TInit > 0 {
		return p.TInit
	}
	return p.ThermalBC.TInf
}

// CouplingMode selects how the electric and thermal sub-problems exchange
// data within one time step.
type CouplingMode int

// Coupling modes.
const (
	// StrongCoupling iterates electric solve → Joule → thermal solve until
	// the wire/node temperatures stop changing (Gauss–Seidel multiphysics).
	StrongCoupling CouplingMode = iota
	// WeakCoupling performs a single staggered pass per step: the electric
	// problem sees the temperatures of the previous step only.
	WeakCoupling
)

func (m CouplingMode) String() string {
	if m == WeakCoupling {
		return "weak"
	}
	return "strong"
}

// NonlinearMode selects the treatment of the temperature-dependent
// coefficients and the radiation boundary term in the thermal step.
type NonlinearMode int

// Nonlinear solve modes.
const (
	// Picard lags the coefficients: each inner iteration assembles
	// K(T^k) and the secant radiation coefficient and solves the SPD system.
	Picard NonlinearMode = iota
	// NewtonLinearized additionally uses the tangent (4εσT³) linearization of
	// the radiation term, converging faster near the solution.
	NewtonLinearized
)

func (m NonlinearMode) String() string {
	if m == NewtonLinearized {
		return "newton"
	}
	return "picard"
}

// Integrator selects the time discretization.
type Integrator int

// Time integrators.
const (
	// ImplicitEuler is the paper's scheme (first order, L-stable).
	ImplicitEuler Integrator = iota
	// Trapezoidal is the Crank–Nicolson scheme (second order, A-stable).
	Trapezoidal
	// BDF2 is the two-step backward differentiation formula (second order,
	// L-stable); the first step falls back to implicit Euler.
	BDF2
)

func (i Integrator) String() string {
	switch i {
	case Trapezoidal:
		return "trapezoidal"
	case BDF2:
		return "bdf2"
	default:
		return "implicit-euler"
	}
}

// JouleScheme selects the redistribution of field Joule power onto nodes.
type JouleScheme int

// Joule redistribution schemes.
const (
	// EdgeSplit assigns each branch power g(Δφ)² half to each terminal;
	// exactly energy conserving.
	EdgeSplit JouleScheme = iota
	// CellAverage is the paper's variant: interpolate E to cell midpoints,
	// evaluate σ|E|² per cell and average back to nodes.
	CellAverage
)

func (s JouleScheme) String() string {
	if s == CellAverage {
		return "cell-average"
	}
	return "edge-split"
}

// Preconditioner selection for the inner CG solves.
type Precond int

// Preconditioner kinds. PrecondICT and PrecondIC0 name the top tier of the
// shared degradation chain ICT → MIC0 → IC0 → Jacobi; a failed factorization
// (or a refresh that breaks a tier) drops to the next tier, at most once per
// tier per operator, with the reason recorded in RunStats.
const (
	// PrecondIC0 starts the chain at modified incomplete Cholesky with zero
	// fill (MIC0, or plain IC0 for PrecondOmega < 0).
	PrecondIC0 Precond = iota
	// PrecondJacobi uses the inverse diagonal.
	PrecondJacobi
	// PrecondNone runs plain CG.
	PrecondNone
	// PrecondICT starts the chain at dual-threshold incomplete Cholesky
	// (drop tolerance + per-column fill cap). Roughly 3.6× the factor
	// entries of IC0 buy a ~2.3× CG iteration cut on the FIT operators, and
	// the threshold factorization survives matrices where the modified-IC
	// compensation fails (the electric operator). FastOptions selects it.
	PrecondICT
)

func (p Precond) String() string {
	switch p {
	case PrecondJacobi:
		return "jacobi"
	case PrecondNone:
		return "none"
	case PrecondICT:
		return "ict"
	default:
		return "ic0"
	}
}

// Precision selects the arithmetic of the inner CG solves.
type Precision int

// Precision kinds.
const (
	// PrecisionFloat64 runs every solve fully in float64 (default).
	PrecisionFloat64 Precision = iota
	// PrecisionMixed runs the CG iterations in float32 inside a float64
	// iterative-refinement loop (solver.CGMixed). Solutions still meet
	// LinTol against the float64 residual; headline observables change only
	// at the level LinTol already permits, and all streaming/sharded merge
	// bit-exactness guarantees are untouched (they operate on the solved
	// fields, not on solver internals).
	PrecisionMixed
)

func (p Precision) String() string {
	if p == PrecisionMixed {
		return "mixed"
	}
	return "float64"
}

// Options controls the transient solve. The zero value is completed by
// withDefaults to the paper's Table II settings where applicable.
type Options struct {
	EndTime  float64 // default 50 s
	NumSteps int     // default 50 (51 time points, as in the paper)

	Coupling        CouplingMode
	MaxCouplingIter int     // default 8 (strong coupling)
	CouplingTol     float64 // K, default 1e-4

	Nonlinear     NonlinearMode
	MaxNonlinIter int     // default 25
	NonlinTol     float64 // K, default 1e-6

	TimeIntegrator Integrator
	Joule          JouleScheme

	// LinTol is the CG relative-residual target. The strict default is
	// 1e-10 under the default (modified-IC) preconditioner: the extra
	// digit costs fewer iterations than the pre-MIC 1e-9 did, and it keeps
	// the energy-balance audit an order of magnitude inside its bound.
	// Explicit PrecondJacobi/PrecondNone keep the 1e-9 default — the extra
	// digit is only cheap with a strong preconditioner. (FastOptions
	// relaxes this to 1e-8 for ensembles.)
	LinTol     float64
	LinMaxIter int // default 4000
	Precond    Precond

	// Precision selects float64 (default) or mixed float32/float64 CG (see
	// PrecisionMixed). Mixed precision requires a preconditioner with a
	// float32 apply; with PrecondJacobi/PrecondNone the solver silently runs
	// float64.
	Precision Precision

	// Deflate puts a two-level (deflation) preconditioner at the top of the
	// chain: an aggregation coarse grid captures the smooth error modes the
	// incomplete factorization damps slowly, applied as a V-cycle around a
	// plain-IC0 smoother. The coarse space is built once per operator
	// pattern (or shared via DeflationSpace) and only the factorizations are
	// refreshed as values drift. On the chip-scale meshes the iteration cut
	// does not repay the extra apply cost (see DESIGN.md), so this is off by
	// default; it is the right tool when iteration counts grow with mesh
	// size. A failed coarse-space build degrades into the normal chain.
	Deflate bool
	// DeflateBlock is the target aggregate size of the coarse space
	// (solver.DefaultAggregateSize when 0).
	DeflateBlock int
	// DeflationSpace, when non-nil, supplies a precomputed grid coarse space
	// (built once per geometry, shared across Monte Carlo samples and
	// scenario re-runs). It is extended to cover wire DOFs automatically.
	DeflationSpace *solver.CoarseSpace

	// PrecondRefreshRatio is the lag policy for the cached IC0
	// preconditioner: the numeric factorization is reused across solves and
	// refreshed (in place, same pattern) only when a solve needs more than
	// ratio·(iterations right after the last refresh) + a small slack. The
	// thermal and electric matrices drift slowly with temperature, so 1.5
	// (the default) refreshes rarely while keeping iteration counts near
	// the freshly-factored ones. Values below 1 refresh aggressively.
	PrecondRefreshRatio float64

	// PrecondOmega is the modified-IC relaxation ω ∈ [0, 1] of the default
	// IC0 preconditioner (Gustafsson diagonal compensation of dropped
	// fill). ω = 1 — the default, selected by leaving the field zero —
	// makes the factor exact on constant vectors, cutting CG iterations
	// ~2–3× on the near-uniform FIT fields. Set a negative value for the
	// plain, uncompensated IC(0). A failed modified factorization degrades
	// to plain IC(0) and then Jacobi automatically.
	PrecondOmega float64

	// Workers enables the opt-in parallel path: row-blocked matvecs inside
	// CG and blocked edge-conductance assembly, both bit-identical to the
	// serial loops. 0 or 1 keeps the fully serial default; larger values
	// are clamped to GOMAXPROCS, and small problems stay serial regardless
	// (see sparse.ParallelMinNNZ, fit.ParallelMinEdges).
	Workers int

	// RecordFieldEvery stores the full grid temperature field every k-th
	// step (0 disables; the final field is always kept).
	RecordFieldEvery int
}

// FastOptions returns options tuned for ensemble (Monte Carlo) runs: weak
// staggered coupling, tangent-linearized radiation and mildly relaxed
// tolerances. On the chip example these settings reproduce the
// strong-coupling solution within a few hundredths of a kelvin at roughly a
// third of the cost (see the coupling ablation bench).
func FastOptions() Options {
	return Options{
		Coupling:      WeakCoupling,
		Nonlinear:     NewtonLinearized,
		NonlinTol:     2e-5,
		MaxNonlinIter: 8,
		LinTol:        1e-8,
		Precond:       PrecondICT,
	}
}

func (o Options) withDefaults() Options {
	if o.EndTime <= 0 {
		o.EndTime = 50
	}
	if o.NumSteps <= 0 {
		o.NumSteps = 50
	}
	if o.MaxCouplingIter <= 0 {
		o.MaxCouplingIter = 8
	}
	if o.CouplingTol <= 0 {
		o.CouplingTol = 1e-4
	}
	if o.MaxNonlinIter <= 0 {
		o.MaxNonlinIter = 25
	}
	if o.NonlinTol <= 0 {
		o.NonlinTol = 1e-6
	}
	if o.LinTol <= 0 {
		if o.Precond == PrecondIC0 || o.Precond == PrecondICT {
			o.LinTol = 1e-10
		} else {
			o.LinTol = 1e-9
		}
	}
	if o.LinMaxIter <= 0 {
		o.LinMaxIter = 4000
	}
	if o.PrecondRefreshRatio <= 0 {
		o.PrecondRefreshRatio = 1.5
	}
	switch {
	case o.PrecondOmega == 0:
		o.PrecondOmega = 1
	case o.PrecondOmega < 0:
		o.PrecondOmega = 0
	case o.PrecondOmega > 1:
		o.PrecondOmega = 1
	}
	return o
}
