package core

import (
	"math"
	"testing"

	"etherm/internal/bondwire"
	"etherm/internal/fit"
)

// TestJouleSchemesAgreeOnSmoothProblem: edge-split and the paper's
// cell-average redistribution must produce nearly identical temperatures on
// a smooth current distribution.
func TestJouleSchemesAgreeOnSmoothProblem(t *testing.T) {
	run := func(js JouleScheme) float64 {
		p := uniformProblem(t, constCopper(), 1e-3, 2e-4, 2e-4, 15, 3, 3)
		p.ThermalBC = fit.RobinBC{H: 2000, Emissivity: 0, TInf: 300}
		p.ElecDirichlet = []fit.Dirichlet{
			{Nodes: faceNodes(p.Grid, 0), Values: []float64{0}},
			{Nodes: faceNodes(p.Grid, 1), Values: []float64{5e-4}},
		}
		s, err := NewSimulator(p, Options{EndTime: 1, NumSteps: 10, Joule: js})
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.FinalField[p.Grid.NodeIndex(7, 1, 1)]
	}
	a, b := run(EdgeSplit), run(CellAverage)
	if math.Abs(a-b) > 0.05*(a-300+1e-9) {
		t.Errorf("Joule schemes diverge: %g vs %g", a, b)
	}
}

// TestRadiationOnlyEquilibrium: with h = 0 and pure radiation the block must
// settle exactly at the ambient temperature from above.
func TestRadiationOnlyEquilibrium(t *testing.T) {
	p := uniformProblem(t, constCopper(), 1e-3, 1e-3, 1e-3, 3, 3, 3)
	p.ThermalBC = fit.RobinBC{H: 0, Emissivity: 0.9, TInf: 300}
	p.TInit = 500
	for _, nl := range []NonlinearMode{Picard, NewtonLinearized} {
		s, err := NewSimulator(p, Options{EndTime: 2000, NumSteps: 40, Nonlinear: nl})
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		final := res.FinalField[0]
		if final < 300-1e-6 {
			t.Errorf("%v: cooled below ambient: %g", nl, final)
		}
		if final > 310 {
			t.Errorf("%v: radiation equilibrium not reached: %g", nl, final)
		}
		// Monotone cooling.
		prev := math.Inf(1)
		for ti := range res.Times {
			v := res.MaxWireTempAtOrField(ti)
			if v > prev+1e-9 {
				t.Fatalf("%v: non-monotone cooling at step %d", nl, ti)
			}
			prev = v
		}
	}
}

// MaxWireTempAtOrField is a test helper: the max wire temperature when wires
// exist, otherwise a field probe is unavailable per step, so fall back to
// boundary-loss monotonicity via stored series.
func (r *Result) MaxWireTempAtOrField(t int) float64 {
	if r.NumWires() > 0 {
		return r.MaxWireTempAt(t)
	}
	// Without wires use the boundary loss as a monotone proxy (cooling ⇒
	// decreasing loss for a body above ambient).
	return r.BoundaryLoss[t]
}

// TestSnapshotsRecorded checks RecordFieldEvery.
func TestSnapshotsRecorded(t *testing.T) {
	p := uniformProblem(t, constCopper(), 1e-3, 1e-3, 1e-3, 3, 3, 3)
	p.ThermalBC = fit.RobinBC{H: 100, Emissivity: 0, TInf: 300}
	p.TInit = 350
	s, err := NewSimulator(p, Options{EndTime: 1, NumSteps: 6, RecordFieldEvery: 2})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, step := range []int{2, 4, 6} {
		if _, ok := res.Snapshots[step]; !ok {
			t.Errorf("snapshot at step %d missing", step)
		}
	}
	if _, ok := res.Snapshots[3]; ok {
		t.Error("unexpected snapshot at step 3")
	}
	if len(res.Snapshots[2]) != p.Grid.NumNodes() {
		t.Error("snapshot has wrong length")
	}
}

// TestBDF2MatchesEulerAtSteadyState: different integrators must agree once
// the transient has decayed.
func TestBDF2MatchesEulerAtSteadyState(t *testing.T) {
	run := func(integ Integrator) float64 {
		p := uniformProblem(t, constCopper(), 1e-3, 2e-4, 2e-4, 9, 3, 3)
		p.ThermalBC = fit.RobinBC{H: 3000, Emissivity: 0, TInf: 300}
		p.ElecDirichlet = []fit.Dirichlet{
			{Nodes: faceNodes(p.Grid, 0), Values: []float64{0}},
			{Nodes: faceNodes(p.Grid, 1), Values: []float64{1e-3}},
		}
		s, err := NewSimulator(p, Options{EndTime: 3, NumSteps: 30, TimeIntegrator: integ})
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.FinalField[p.Grid.NodeIndex(4, 1, 1)]
	}
	ie := run(ImplicitEuler)
	bdf := run(BDF2)
	cn := run(Trapezoidal)
	if math.Abs(ie-bdf) > 0.01*(ie-300) || math.Abs(ie-cn) > 0.01*(ie-300) {
		t.Errorf("steady states diverge: IE %g, BDF2 %g, CN %g", ie, bdf, cn)
	}
}

// TestMultiSegmentWireMatchesSingleForLinearProfile: when the temperature
// along the wire is linear (no wire Joule heating), chains and single
// segments are equivalent.
func TestMultiSegmentWireMatchesSingleForLinearProfile(t *testing.T) {
	run := func(segs int) float64 {
		p := uniformProblem(t, constCopper(), 1e-3, 1e-3, 1e-3, 3, 3, 3)
		g := p.Grid
		p.ThermDirichlet = []fit.Dirichlet{
			{Nodes: []int{g.NodeIndex(0, 0, 0)}, Values: []float64{320}},
			{Nodes: []int{g.NodeIndex(2, 2, 2)}, Values: []float64{400}},
		}
		p.Wires = []bondwire.Wire{{
			Name: "w", NodeA: g.NodeIndex(0, 0, 0), NodeB: g.NodeIndex(2, 2, 2),
			Geom: bondwire.Geometry{Direct: 1.2e-3, Diameter: 25.4e-6},
			Mat:  constCopper(), Segments: segs,
		}}
		s, err := NewSimulator(p, Options{EndTime: 5, NumSteps: 20})
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.WireTemp[len(res.Times)-1][0]
	}
	a, b := run(1), run(6)
	if math.Abs(a-b) > 0.05 {
		t.Errorf("segment counts disagree without wire heating: %g vs %g", a, b)
	}
	if math.Abs(a-360) > 1.0 {
		t.Errorf("end-point average %g, want ≈ 360 (eq. 5)", a)
	}
}

// TestElectricSolveWithoutDrive returns zero potentials and zero power.
func TestElectricSolveWithoutDrive(t *testing.T) {
	p := uniformProblem(t, constCopper(), 1e-3, 1e-3, 1e-3, 3, 3, 3)
	p.ThermalBC = fit.RobinBC{H: 10, Emissivity: 0, TInf: 300}
	s, err := NewSimulator(p, Options{EndTime: 1, NumSteps: 5})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	last := len(res.Times) - 1
	if res.FieldPower[last] != 0 || res.WirePowerTotal[last] != 0 {
		t.Error("undriven problem dissipates power")
	}
	for _, v := range res.FinalField {
		if math.Abs(v-300) > 1e-9 {
			t.Error("undriven problem changed temperature")
		}
	}
}

// TestOptionsDefaults checks the Table II defaults.
func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.EndTime != 50 || o.NumSteps != 50 {
		t.Errorf("defaults (%g, %d) differ from the paper's 50 s / 50 steps", o.EndTime, o.NumSteps)
	}
	f := FastOptions()
	if f.Coupling != WeakCoupling || f.Nonlinear != NewtonLinearized {
		t.Error("FastOptions changed")
	}
	// Enum strings for reports.
	if StrongCoupling.String() != "strong" || WeakCoupling.String() != "weak" ||
		ImplicitEuler.String() != "implicit-euler" || CellAverage.String() != "cell-average" ||
		PrecondIC0.String() != "ic0" || Picard.String() != "picard" {
		t.Error("enum strings changed")
	}
}

// TestProblemValidation exercises the error paths.
func TestProblemValidation(t *testing.T) {
	p := uniformProblem(t, constCopper(), 1e-3, 1e-3, 1e-3, 3, 3, 3)
	p.ElecDirichlet = []fit.Dirichlet{{Nodes: []int{9999}, Values: []float64{0}}}
	if _, err := NewSimulator(p, Options{}); err == nil {
		t.Error("out-of-range Dirichlet accepted")
	}
	p = uniformProblem(t, constCopper(), 1e-3, 1e-3, 1e-3, 3, 3, 3)
	p.ThermalBC.TInf = -1
	if _, err := NewSimulator(p, Options{}); err == nil {
		t.Error("negative ambient accepted")
	}
	p = uniformProblem(t, constCopper(), 1e-3, 1e-3, 1e-3, 3, 3, 3)
	p.CellMat = p.CellMat[:1]
	if _, err := NewSimulator(p, Options{}); err == nil {
		t.Error("short cell material map accepted")
	}
}

// TestWirePowerReportedPerWire: the per-wire power series sums to the wire
// total.
func TestWirePowerReportedPerWire(t *testing.T) {
	p := uniformProblem(t, constCopper(), 1e-3, 1e-3, 1e-3, 3, 3, 3)
	g := p.Grid
	p.ThermalBC = fit.RobinBC{H: 1000, Emissivity: 0, TInf: 300}
	p.Wires = []bondwire.Wire{
		{Name: "w1", NodeA: g.NodeIndex(0, 0, 0), NodeB: g.NodeIndex(2, 2, 2),
			Geom: bondwire.Geometry{Direct: 1.2e-3, Diameter: 25.4e-6}, Mat: constCopper()},
		{Name: "w2", NodeA: g.NodeIndex(0, 2, 0), NodeB: g.NodeIndex(2, 0, 2),
			Geom: bondwire.Geometry{Direct: 1.3e-3, Diameter: 25.4e-6}, Mat: constCopper()},
	}
	p.ElecDirichlet = []fit.Dirichlet{
		{Nodes: []int{g.NodeIndex(0, 0, 0), g.NodeIndex(0, 2, 0)}, Values: []float64{10e-3}},
		{Nodes: []int{g.NodeIndex(2, 2, 2), g.NodeIndex(2, 0, 2)}, Values: []float64{0}},
	}
	s, err := NewSimulator(p, Options{EndTime: 1, NumSteps: 5})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	last := len(res.Times) - 1
	sum := res.WirePower[last][0] + res.WirePower[last][1]
	if math.Abs(sum-res.WirePowerTotal[last]) > 1e-9*(1+sum) {
		t.Errorf("per-wire powers %g do not sum to total %g", sum, res.WirePowerTotal[last])
	}
	if sum <= 0 {
		t.Error("wires carry no power")
	}
}
