package core

import (
	"fmt"
	"math"

	"etherm/internal/fit"
)

// RunStats aggregates solver work over a transient run.
type RunStats struct {
	ElecSolves            int
	ThermSolves           int
	ElecCGIters           int
	ThermCGIters          int
	CouplingIters         int
	CouplingNonConverged  int
	NonlinIters           int
	NonlinNonConverged    int
	MaxEnergyImbalance    float64 // max over steps of |dE/dt + P_out − P_in| / max(P_in, 1e-30)
	FinalElecPower        float64
	FinalBoundaryLoss     float64
	FinalHottestWireIndex int

	// Preconditioner lifecycle: IC0 factorizations built from scratch
	// (normally one per operator), in-place numeric refreshes triggered by
	// the lag policy, downgrades from modified to plain IC(0), and
	// permanent falls back to Jacobi. The reason records the most recent
	// downgrade or fallback (normally none happen and it stays empty).
	PrecondBuilds         int
	PrecondRefreshes      int
	PrecondDowngrades     int
	PrecondFallbacks      int
	PrecondFallbackReason string `json:",omitempty"`

	// CG iterations split by the preconditioner tier that served each solve
	// (both operators combined). With a healthy chain all iterations land in
	// the configured top tier; anything in the lower tiers quantifies what a
	// downgrade or fallback cost. Fixed fields, not a map, so RunStats stays
	// comparable with ==.
	CGItersDeflated int `json:",omitempty"`
	CGItersICT      int `json:",omitempty"`
	CGItersMIC0     int `json:",omitempty"`
	CGItersIC0      int `json:",omitempty"`
	CGItersJacobi   int `json:",omitempty"`
	CGItersNone     int `json:",omitempty"`
}

// Result holds the transient solution history. Index 0 of every time series
// is the initial state at t = 0.
type Result struct {
	Times       []float64
	WireTemp    [][]float64 // [time][wire] end-point average T_bw (eq. 5)
	WireMaxTemp [][]float64 // [time][wire] max over the wire's DOF chain
	WirePower   [][]float64 // [time][wire] Joule power in the wire, W

	FieldPower      []float64 // Joule power in the field (grid), W
	WirePowerTotal  []float64 // Joule power in all wires, W
	BoundaryLoss    []float64 // convective+radiative outflow, W
	EnergyImbalance []float64 // relative energy-balance defect per step

	FinalField []float64         // grid temperatures at the end time
	FinalPhi   []float64         // grid potentials at the end time
	Snapshots  map[int][]float64 // step index → grid temperature copy

	Stats RunStats

	// wireBack is the single backing array behind the WireTemp, WireMaxTemp
	// and WirePower rows, allocated once per run.
	wireBack []float64
}

// NumWires returns the number of wires in the result.
func (r *Result) NumWires() int {
	if len(r.WireTemp) == 0 {
		return 0
	}
	return len(r.WireTemp[0])
}

// WireSeries returns the temperature time series of wire j.
func (r *Result) WireSeries(j int) []float64 {
	out := make([]float64, len(r.Times))
	for t := range r.Times {
		out[t] = r.WireTemp[t][j]
	}
	return out
}

// HottestWire returns the wire index with the highest final temperature.
func (r *Result) HottestWire() int {
	last := len(r.Times) - 1
	best, bestT := 0, math.Inf(-1)
	for j := 0; j < r.NumWires(); j++ {
		if v := r.WireTemp[last][j]; v > bestT {
			best, bestT = j, v
		}
	}
	return best
}

// MaxWireTempAt returns max_j T_bw,j at time index t.
func (r *Result) MaxWireTempAt(t int) float64 {
	m := math.Inf(-1)
	for _, v := range r.WireTemp[t] {
		if v > m {
			m = v
		}
	}
	return m
}

// Run executes the transient coupled simulation from the initial state.
func (s *Simulator) Run() (*Result, error) {
	s.ResetState()
	opt := s.opt
	nSteps := opt.NumSteps
	dt := opt.EndTime / float64(nSteps)
	nw := len(s.coup.Wires)

	res := &Result{
		Times:           make([]float64, 0, nSteps+1),
		WireTemp:        make([][]float64, 0, nSteps+1),
		WireMaxTemp:     make([][]float64, 0, nSteps+1),
		WirePower:       make([][]float64, 0, nSteps+1),
		FieldPower:      make([]float64, 0, nSteps+1),
		WirePowerTotal:  make([]float64, 0, nSteps+1),
		BoundaryLoss:    make([]float64, 0, nSteps+1),
		EnergyImbalance: make([]float64, 0, nSteps+1),
		Snapshots:       make(map[int][]float64),

		// One backing array per wire series instead of three slices per
		// recorded step; record slices rows out of these.
		wireBack: make([]float64, 3*(nSteps+1)*nw),
	}
	s.runStats = &res.Stats
	defer func() { s.runStats = nil }()

	// Initial state: record wire temperatures and the instantaneous electric
	// power at the initial temperature.
	if st, err := s.SolveElectric(s.T); err == nil {
		res.Stats.ElecSolves++
		res.Stats.ElecCGIters += st.Iterations
	} else {
		return nil, err
	}
	fieldP, wireP := s.jouleInto(s.T, s.q)
	for i := range s.scratch {
		s.scratch[i] = 0
	}
	pOut0 := fit.RobinLoss(s.T[:s.nGrid], s.bndAreas[:s.nGrid], s.prob.ThermalBC, s.scratch)
	s.record(res, 0, 0, fieldP, wireP, pOut0, nw)

	prev2 := s.prev2 // T_{n-1} for BDF2
	for i := range prev2 {
		prev2[i] = 0
	}
	havePrev2 := false

	// Explicit part for the trapezoidal rule: K(T_n)T_n + q_bnd(T_n) − Q_n.
	if opt.TimeIntegrator == Trapezoidal {
		s.thermalResidualParts(s.T, s.q, s.explicit)
	}

	for n := 1; n <= nSteps; n++ {
		copy(s.tPrev, s.T)

		integ := opt.TimeIntegrator
		if integ == BDF2 && !havePrev2 {
			integ = ImplicitEuler // BDF2 startup step
		}

		// Coupling loop: electric solve → Joule → thermal step.
		var couplingErr error
		converged := false
		guess := s.T // s.T holds the current estimate of T_{n+1}
		for c := 0; c < opt.MaxCouplingIter; c++ {
			st, err := s.SolveElectric(guess)
			if err != nil {
				couplingErr = err
				break
			}
			res.Stats.ElecSolves++
			res.Stats.ElecCGIters += st.Iterations

			fieldP, wireP = s.jouleInto(guess, s.q)

			copy(s.tIter, guess)
			if err := s.thermalStep(integ, dt, prev2, res); err != nil {
				couplingErr = err
				break
			}
			diff := maxAbsDiff(s.tIter, guess)
			copy(s.T, s.tIter)
			res.Stats.CouplingIters++
			if opt.Coupling == WeakCoupling {
				converged = true
				break
			}
			if diff < opt.CouplingTol {
				converged = true
				break
			}
		}
		if couplingErr != nil {
			return nil, fmt.Errorf("core: step %d (t=%g s): %w", n, float64(n)*dt, couplingErr)
		}
		if !converged && opt.Coupling == StrongCoupling {
			res.Stats.CouplingNonConverged++
		}

		// Energy audit for the implicit Euler branch: dE/dt + P_out − P_in.
		dEdt := 0.0
		for i := 0; i < s.nDOF; i++ {
			dEdt += s.massDiag[i] * (s.T[i] - s.tPrev[i]) / dt
		}
		for i := range s.scratch {
			s.scratch[i] = 0
		}
		pOut := fit.RobinLoss(s.T[:s.nGrid], s.bndAreas[:s.nGrid], s.prob.ThermalBC, s.scratch)
		pIn := fieldP + wireP
		imb := math.Abs(dEdt+pOut-pIn) / math.Max(pIn, 1e-30)
		if integ != ImplicitEuler {
			imb = 0 // the audit identity holds for implicit Euler only
		}
		if imb > res.Stats.MaxEnergyImbalance {
			res.Stats.MaxEnergyImbalance = imb
		}

		// History bookkeeping.
		copy(prev2, s.tPrev)
		havePrev2 = true
		if opt.TimeIntegrator == Trapezoidal {
			s.thermalResidualParts(s.T, s.q, s.explicit)
		}

		s.record(res, float64(n)*dt, imb, fieldP, wireP, pOut, nw)
		if opt.RecordFieldEvery > 0 && n%opt.RecordFieldEvery == 0 {
			res.Snapshots[n] = append([]float64(nil), s.T[:s.nGrid]...)
		}
	}

	res.FinalField = append([]float64(nil), s.T[:s.nGrid]...)
	res.FinalPhi = append([]float64(nil), s.phi[:s.nGrid]...)
	res.Stats.FinalElecPower = res.FieldPower[len(res.FieldPower)-1] + res.WirePowerTotal[len(res.WirePowerTotal)-1]
	res.Stats.FinalBoundaryLoss = res.BoundaryLoss[len(res.BoundaryLoss)-1]
	res.Stats.FinalHottestWireIndex = res.HottestWire()
	return res, nil
}

func (s *Simulator) record(res *Result, t, imb, fieldP, wireP, pOut float64, nw int) {
	res.Times = append(res.Times, t)
	base := 3 * nw * (len(res.Times) - 1)
	wt := res.wireBack[base : base+nw : base+nw]
	wmax := res.wireBack[base+nw : base+2*nw : base+2*nw]
	wp := res.wireBack[base+2*nw : base+3*nw : base+3*nw]
	for j := 0; j < nw; j++ {
		wt[j] = s.coup.WireTemperature(j, s.T)
		wmax[j] = s.coup.WireMaxTemperature(j, s.T)
		wp[j] = s.coup.WirePower(j, s.phi, s.T)
	}
	res.WireTemp = append(res.WireTemp, wt)
	res.WireMaxTemp = append(res.WireMaxTemp, wmax)
	res.WirePower = append(res.WirePower, wp)
	res.FieldPower = append(res.FieldPower, fieldP)
	res.WirePowerTotal = append(res.WirePowerTotal, wireP)
	res.BoundaryLoss = append(res.BoundaryLoss, pOut)
	res.EnergyImbalance = append(res.EnergyImbalance, imb)
}

// thermalStep advances s.tIter (initialized to the coupling guess) to the
// solution of the nonlinear thermal system for one step of the selected
// integrator, holding the Joule vector s.q fixed. On return s.tIter holds
// T_{n+1}; s.tPrev holds T_n; prev2 holds T_{n-1} (for BDF2).
func (s *Simulator) thermalStep(integ Integrator, dt float64, prev2 []float64, res *Result) error {
	opt := s.opt
	var thetaW, massCoef float64
	switch integ {
	case Trapezoidal:
		thetaW, massCoef = 0.5, 1/dt
	case BDF2:
		thetaW, massCoef = 1.0, 1.5/dt
	default: // implicit Euler
		thetaW, massCoef = 1.0, 1/dt
	}

	// History right-hand side.
	hist := s.scratch
	switch integ {
	case BDF2:
		for i := range hist {
			hist[i] = s.massDiag[i] * (2*s.tPrev[i] - 0.5*prev2[i]) / dt
		}
	case Trapezoidal:
		for i := range hist {
			hist[i] = s.massDiag[i]*s.tPrev[i]/dt - 0.5*s.explicit[i]
		}
	default:
		for i := range hist {
			hist[i] = s.massDiag[i] * s.tPrev[i] / dt
		}
	}

	newton := opt.Nonlinear == NewtonLinearized
	tNext := s.tNext
	copy(tNext, s.tIter)

	for k := 0; k < opt.MaxNonlinIter; k++ {
		s.assembleThermal(s.tIter)
		a := s.opT.Matrix()
		if thetaW != 1 {
			a.Scale(thetaW)
		}
		fit.RobinLinearized(s.tIter[:s.nGrid], s.bndAreas[:s.nGrid], s.prob.ThermalBC, newton,
			s.bndDiag[:s.nGrid], s.bndRh[:s.nGrid])
		for i := 0; i < s.nDOF; i++ {
			d := massCoef * s.massDiag[i]
			if i < s.nGrid {
				d += thetaW * s.bndDiag[i]
			}
			s.opT.AddToDiagEntry(i, d)
		}
		for i := 0; i < s.nDOF; i++ {
			s.rhs[i] = hist[i] + thetaW*s.q[i]
			if i < s.nGrid {
				s.rhs[i] += thetaW * s.bndRh[i]
			}
		}
		s.dirT.Apply(a, s.rhs)
		st, err := s.solveCG("thermal", s.wsT, a, s.rhs, tNext, &s.precT)
		res.Stats.ThermSolves++
		res.Stats.ThermCGIters += st.Iterations
		res.Stats.NonlinIters++
		if err != nil {
			return fmt.Errorf("core: thermal solve: %w", err)
		}
		diff := maxAbsDiff(tNext, s.tIter)
		copy(s.tIter, tNext)
		if diff < opt.NonlinTol {
			return nil
		}
	}
	res.Stats.NonlinNonConverged++
	return nil
}

func maxAbsDiff(a, b []float64) float64 {
	m := 0.0
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}
