package core

import (
	"fmt"

	"etherm/internal/bondwire"
	"etherm/internal/fit"
	"etherm/internal/solver"
	"etherm/internal/sparse"
)

// Simulator solves the transient coupled electrothermal problem. A Simulator
// owns mutable per-run buffers and may be Cloned cheaply for parallel Monte
// Carlo workers: clones share the immutable mesh/material assembly but have
// independent wires, operators and state.
type Simulator struct {
	prob *Problem
	opt  Options

	asm  *fit.Assembler
	coup *bondwire.Coupling

	nGrid, nEdges, nDOF int

	branches []fit.Branch // grid edges followed by wire segments
	opE, opT *fit.Operator

	massDiag []float64 // lumped heat capacity per DOF
	bndAreas []float64 // exposed boundary area per DOF (zero beyond grid)

	// Work buffers (length nDOF unless noted).
	condE, condT   []float64 // per-branch conductances
	phi, T         []float64
	q, rhs         []float64
	bndDiag, bndRh []float64 // grid-length boundary linearization
	tPrev, tIter   []float64
	explicit       []float64 // explicit part for θ/BDF2 schemes
	scratch        []float64
}

// NewSimulator validates the problem and prepares operators and buffers.
func NewSimulator(p *Problem, opt Options) (*Simulator, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	asm, err := fit.NewAssembler(p.Grid, p.CellMat, p.Lib)
	if err != nil {
		return nil, err
	}
	return newWithAssembler(p, opt, asm)
}

// NewSimulatorShared builds a simulator reusing an existing assembler (which
// must have been built for the same grid/materials). Monte Carlo drivers use
// this to share the mesh assembly across workers.
func NewSimulatorShared(p *Problem, opt Options, asm *fit.Assembler) (*Simulator, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if asm.Grid != p.Grid {
		return nil, fmt.Errorf("core: assembler was built for a different grid")
	}
	return newWithAssembler(p, opt, asm)
}

func newWithAssembler(p *Problem, opt Options, asm *fit.Assembler) (*Simulator, error) {
	opt = opt.withDefaults()
	coup, err := bondwire.NewCoupling(p.Grid.NumNodes(), p.Wires)
	if err != nil {
		return nil, err
	}
	s := &Simulator{
		prob:   p,
		opt:    opt,
		asm:    asm,
		coup:   coup,
		nGrid:  p.Grid.NumNodes(),
		nEdges: p.Grid.NumEdges(),
		nDOF:   coup.TotalDOF,
	}

	// Merged branch list: grid edges first, then wire segments.
	s.branches = make([]fit.Branch, 0, s.nEdges+coup.NumSegments())
	for e := 0; e < s.nEdges; e++ {
		n1, n2 := p.Grid.EdgeNodes(e)
		s.branches = append(s.branches, fit.Branch{N1: n1, N2: n2})
	}
	s.branches = append(s.branches, coup.Branches()...)

	if s.opE, err = fit.NewOperator(s.nDOF, s.branches); err != nil {
		return nil, err
	}
	if s.opT, err = fit.NewOperator(s.nDOF, s.branches); err != nil {
		return nil, err
	}

	s.massDiag = make([]float64, s.nDOF)
	copy(s.massDiag, asm.MassDiag())
	copy(s.massDiag[s.nGrid:], coup.MassDiagExtra())

	s.bndAreas = make([]float64, s.nDOF)
	copy(s.bndAreas, asm.BoundaryAreasMasked(p.ThermalBC))

	nb := len(s.branches)
	s.condE = make([]float64, nb)
	s.condT = make([]float64, nb)
	s.phi = make([]float64, s.nDOF)
	s.T = make([]float64, s.nDOF)
	s.q = make([]float64, s.nDOF)
	s.rhs = make([]float64, s.nDOF)
	s.bndDiag = make([]float64, s.nDOF)
	s.bndRh = make([]float64, s.nDOF)
	s.tPrev = make([]float64, s.nDOF)
	s.tIter = make([]float64, s.nDOF)
	s.explicit = make([]float64, s.nDOF)
	s.scratch = make([]float64, s.nDOF)

	s.ResetState()
	return s, nil
}

// Clone returns an independent simulator sharing the immutable mesh assembly
// (grid, material blends, capacities) but with its own wires, operators and
// state. Intended for parallel workers.
func (s *Simulator) Clone() (*Simulator, error) {
	p := *s.prob
	p.Wires = append([]bondwire.Wire(nil), s.coup.Wires...)
	return newWithAssembler(&p, s.opt, s.asm)
}

// NumDOF returns the total number of unknowns (grid nodes + wire internals).
func (s *Simulator) NumDOF() int { return s.nDOF }

// NumGridNodes returns the number of grid nodes.
func (s *Simulator) NumGridNodes() int { return s.nGrid }

// Problem returns the problem definition (treat as read-only).
func (s *Simulator) Problem() *Problem { return s.prob }

// Options returns the effective (defaulted) options.
func (s *Simulator) Options() Options { return s.opt }

// Wires returns the simulator's wires (a live slice owned by the coupling;
// use SetWireGeometry to modify).
func (s *Simulator) Wires() []bondwire.Wire { return s.coup.Wires }

// SetWireGeometry replaces the geometry of wire i (e.g. with a sampled
// uncertain length). The wire's segment topology is unchanged.
func (s *Simulator) SetWireGeometry(i int, g bondwire.Geometry) error {
	if i < 0 || i >= len(s.coup.Wires) {
		return fmt.Errorf("core: wire index %d out of range", i)
	}
	if err := g.Validate(); err != nil {
		return err
	}
	s.coup.Wires[i].Geom = g
	return nil
}

// SetWireElongation sets the relative elongation δ of wire i, keeping its
// direct distance and diameter: L = d/(1−δ) per the paper's definition.
func (s *Simulator) SetWireElongation(i int, delta float64) error {
	if i < 0 || i >= len(s.coup.Wires) {
		return fmt.Errorf("core: wire index %d out of range", i)
	}
	old := s.coup.Wires[i].Geom
	g, err := bondwire.FromElongation(old.Direct, delta, old.Diameter)
	if err != nil {
		return err
	}
	s.coup.Wires[i].Geom = g
	return nil
}

// ResetState restores the initial condition (uniform initial temperature,
// zero potentials) so the simulator can run another sample.
func (s *Simulator) ResetState() {
	t0 := s.prob.InitTemperature()
	for i := range s.T {
		s.T[i] = t0
	}
	for i := range s.phi {
		s.phi[i] = 0
	}
}

// Temperatures returns the current DOF temperature vector (live; copy before
// modifying).
func (s *Simulator) Temperatures() []float64 { return s.T }

// Potentials returns the current DOF potential vector (live).
func (s *Simulator) Potentials() []float64 { return s.phi }

func (s *Simulator) preconditioner(a *sparse.CSR) solver.Preconditioner {
	switch s.opt.Precond {
	case PrecondNone:
		return solver.IdentityPrec{}
	case PrecondJacobi:
		return solver.NewJacobi(a)
	default:
		if p, err := solver.NewIC0(a); err == nil {
			return p
		}
		return solver.NewJacobi(a)
	}
}

// SolveElectric assembles and solves the stationary current problem at the
// DOF temperatures T, leaving the potentials in s.phi (warm-started). The
// per-branch electric conductances remain in s.condE for Joule evaluation.
func (s *Simulator) SolveElectric(T []float64) (solver.Stats, error) {
	s.asm.EdgeConductances(fit.Electric, T[:s.nGrid], s.condE[:s.nEdges])
	s.coup.SegmentConductances(fit.Electric, T, s.condE[s.nEdges:])
	s.opE.SetValues(s.condE)
	a := s.opE.Matrix()
	for i := range s.rhs {
		s.rhs[i] = 0
	}
	if err := fit.ApplyDirichlet(a, s.rhs, s.prob.ElecDirichlet...); err != nil {
		return solver.Stats{}, err
	}
	stats, err := solver.CG(a, s.rhs, s.phi, s.preconditioner(a),
		solver.Options{Tol: s.opt.LinTol, MaxIter: s.opt.LinMaxIter})
	if err != nil {
		return stats, fmt.Errorf("core: electric solve: %w", err)
	}
	return stats, nil
}

// jouleInto accumulates the Joule power vector at the current potentials and
// conductances (s.phi, s.condE) into dst, returning field and wire totals.
// The temperatures are those at which s.condE was evaluated.
func (s *Simulator) jouleInto(T, dst []float64) (fieldP, wireP float64) {
	for i := range dst {
		dst[i] = 0
	}
	if s.opt.Joule == CellAverage {
		fieldP = s.asm.JouleCellAverage(s.phi[:s.nGrid], T[:s.nGrid], dst[:s.nGrid])
	} else {
		fit.JouleEdgeSplit(s.branches[:s.nEdges], s.condE[:s.nEdges], s.phi, dst)
		fieldP = fit.TotalPower(s.branches[:s.nEdges], s.condE[:s.nEdges], s.phi)
	}
	// Wire self-heating: the ½/½ split onto the wire chain nodes is exactly
	// the paper's X_j redistribution for single-segment wires.
	fit.JouleEdgeSplit(s.branches[s.nEdges:], s.condE[s.nEdges:], s.phi, dst)
	wireP = fit.TotalPower(s.branches[s.nEdges:], s.condE[s.nEdges:], s.phi)
	return fieldP, wireP
}

// assembleThermal evaluates the thermal conductances at Tk and stamps the
// Laplacian into s.opT.
func (s *Simulator) assembleThermal(Tk []float64) {
	s.asm.EdgeConductances(fit.Thermal, Tk[:s.nGrid], s.condT[:s.nEdges])
	s.coup.SegmentConductances(fit.Thermal, Tk, s.condT[s.nEdges:])
	s.opT.SetValues(s.condT)
}

// thermalResidualParts computes, at the temperatures Tk, the conduction term
// K(Tk)·Tk + boundary loss − Q into dst. Used for the explicit part of the
// θ-scheme and for energy audits.
func (s *Simulator) thermalResidualParts(Tk, q, dst []float64) {
	s.asm.EdgeConductances(fit.Thermal, Tk[:s.nGrid], s.condT[:s.nEdges])
	s.coup.SegmentConductances(fit.Thermal, Tk, s.condT[s.nEdges:])
	fit.ApplyLaplacian(s.branches, s.condT, Tk, dst)
	fit.RobinLoss(Tk[:s.nGrid], s.bndAreas[:s.nGrid], s.prob.ThermalBC, dst)
	for i := range dst {
		dst[i] -= q[i]
	}
}
