package core

import (
	"fmt"

	"etherm/internal/bondwire"
	"etherm/internal/fit"
	"etherm/internal/solver"
	"etherm/internal/sparse"
)

// Simulator solves the transient coupled electrothermal problem. A Simulator
// owns mutable per-run buffers and may be Cloned cheaply for parallel Monte
// Carlo workers: clones share the immutable mesh/material assembly but have
// independent wires, operators and state.
type Simulator struct {
	prob *Problem
	opt  Options

	asm  *fit.Assembler
	coup *bondwire.Coupling

	nGrid, nEdges, nDOF int

	branches []fit.Branch // grid edges followed by wire segments
	opE, opT *fit.Operator

	massDiag []float64 // lumped heat capacity per DOF
	bndAreas []float64 // exposed boundary area per DOF (zero beyond grid)

	// Work buffers (length nDOF unless noted).
	condE, condT   []float64 // per-branch conductances
	phi, T         []float64
	q, rhs         []float64
	bndDiag, bndRh []float64 // grid-length boundary linearization
	tPrev, tIter   []float64
	tNext, prev2   []float64 // step-loop iterates, hoisted out of the loop
	explicit       []float64 // explicit part for θ/BDF2 schemes
	scratch        []float64

	// Allocation-free solver state, one per operator: CG workspace, the
	// precomputed Dirichlet elimination, and the cached preconditioner with
	// its lag-policy bookkeeping.
	wsE, wsT     *solver.Workspace
	dirE, dirT   *fit.DirichletApplier
	precE, precT precState

	// runStats points at the RunStats of the transient in flight so the
	// preconditioner lifecycle can be audited; nil outside Run.
	runStats *RunStats
}

// precState caches the preconditioner of one operator across solves. The
// factorization of the configured top tier is built once per operator
// matrix, numerically refreshed in place only when the lag policy triggers,
// and degraded — deflated → ICT → modified IC0 → plain IC0 → Jacobi — at
// most once per tier per operator, with the reason recorded.
type precState struct {
	mat      *sparse.CSR // operator matrix this state is bound to
	defl     *solver.DeflatedPrec
	ict      *solver.CholPrec
	ic0      *solver.IC0Prec
	jac      *solver.JacobiPrec
	omega    float64 // current modified-IC relaxation (downgraded on failure)
	deflDead bool    // deflation tier abandoned for this operator
	ictDead  bool    // ICT tier abandoned for this operator
	useJac   bool    // permanent fallback for this operator
	tier     string  // tier that will serve the upcoming solve
	reason   string  // why a tier was abandoned or downgraded
	refIters int     // CG iterations right after the last (re)factorization
	fresh    bool    // factorization was rebuilt for the upcoming solve
	pending  bool    // lag policy requested a refresh before the next solve
}

// current returns the live factorization of the highest surviving tier, or
// nil when the chain has not been built for this operator yet.
func (ps *precState) current() solver.Preconditioner {
	switch {
	case ps.defl != nil:
		return ps.defl
	case ps.ict != nil:
		return ps.ict
	case ps.ic0 != nil:
		return ps.ic0
	}
	return nil
}

// refreshCurrent refactorizes the live tier in place for the drifted values.
func (ps *precState) refreshCurrent(a *sparse.CSR) error {
	switch {
	case ps.defl != nil:
		return ps.defl.Refresh(a)
	case ps.ict != nil:
		return ps.ict.Refresh(a)
	case ps.ic0 != nil:
		return ps.ic0.Refresh(a)
	}
	return nil
}

// dropCurrent abandons the live tier after a failed refresh so buildChain
// rebuilds from the next tier down. (A failed IC0 refresh keeps its omega:
// buildChain retries the factorization from scratch at the same relaxation
// before downgrading, matching the build-time chain.)
func (ps *precState) dropCurrent() {
	switch {
	case ps.defl != nil:
		ps.defl = nil
		ps.deflDead = true
	case ps.ict != nil:
		ps.ict = nil
		ps.ictDead = true
	case ps.ic0 != nil:
		ps.ic0 = nil
	}
}

// precondIterSlack is the additive headroom of the lag policy: refresh only
// when a solve exceeds ratio·refIters + slack iterations, so near-zero
// iteration counts (warm-started solves) don't trigger refresh storms.
const precondIterSlack = 4

// noteIters feeds a solve's iteration count into the lag policy.
func (ps *precState) noteIters(iters int, ratio float64) {
	if ps.fresh {
		ps.fresh = false
		ps.refIters = iters
		return
	}
	if ps.current() == nil || ps.useJac {
		return
	}
	if float64(iters) > ratio*float64(ps.refIters)+precondIterSlack {
		ps.pending = true
	}
}

// NewSimulator validates the problem and prepares operators and buffers.
func NewSimulator(p *Problem, opt Options) (*Simulator, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	asm, err := fit.NewAssembler(p.Grid, p.CellMat, p.Lib)
	if err != nil {
		return nil, err
	}
	return newWithAssembler(p, opt, asm)
}

// NewSimulatorShared builds a simulator reusing an existing assembler (which
// must have been built for the same grid/materials). Monte Carlo drivers use
// this to share the mesh assembly across workers.
func NewSimulatorShared(p *Problem, opt Options, asm *fit.Assembler) (*Simulator, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if asm.Grid != p.Grid {
		return nil, fmt.Errorf("core: assembler was built for a different grid")
	}
	return newWithAssembler(p, opt, asm)
}

func newWithAssembler(p *Problem, opt Options, asm *fit.Assembler) (*Simulator, error) {
	opt = opt.withDefaults()
	coup, err := bondwire.NewCoupling(p.Grid.NumNodes(), p.Wires)
	if err != nil {
		return nil, err
	}
	s := &Simulator{
		prob:   p,
		opt:    opt,
		asm:    asm,
		coup:   coup,
		nGrid:  p.Grid.NumNodes(),
		nEdges: p.Grid.NumEdges(),
		nDOF:   coup.TotalDOF,
	}

	// Merged branch list: grid edges first, then wire segments.
	s.branches = make([]fit.Branch, 0, s.nEdges+coup.NumSegments())
	for e := 0; e < s.nEdges; e++ {
		n1, n2 := p.Grid.EdgeNodes(e)
		s.branches = append(s.branches, fit.Branch{N1: n1, N2: n2})
	}
	s.branches = append(s.branches, coup.Branches()...)

	if s.opE, err = fit.NewOperator(s.nDOF, s.branches); err != nil {
		return nil, err
	}
	if s.opT, err = fit.NewOperator(s.nDOF, s.branches); err != nil {
		return nil, err
	}

	s.massDiag = make([]float64, s.nDOF)
	copy(s.massDiag, asm.MassDiag())
	copy(s.massDiag[s.nGrid:], coup.MassDiagExtra())

	s.bndAreas = make([]float64, s.nDOF)
	copy(s.bndAreas, asm.BoundaryAreasMasked(p.ThermalBC))

	nb := len(s.branches)
	s.condE = make([]float64, nb)
	s.condT = make([]float64, nb)
	s.phi = make([]float64, s.nDOF)
	s.T = make([]float64, s.nDOF)
	s.q = make([]float64, s.nDOF)
	s.rhs = make([]float64, s.nDOF)
	s.bndDiag = make([]float64, s.nDOF)
	s.bndRh = make([]float64, s.nDOF)
	s.tPrev = make([]float64, s.nDOF)
	s.tIter = make([]float64, s.nDOF)
	s.tNext = make([]float64, s.nDOF)
	s.prev2 = make([]float64, s.nDOF)
	s.explicit = make([]float64, s.nDOF)
	s.scratch = make([]float64, s.nDOF)

	s.wsE = solver.NewWorkspace(s.nDOF)
	s.wsT = solver.NewWorkspace(s.nDOF)
	if s.dirE, err = fit.NewDirichletApplier(s.opE.Matrix(), p.ElecDirichlet...); err != nil {
		return nil, err
	}
	if s.dirT, err = fit.NewDirichletApplier(s.opT.Matrix(), p.ThermDirichlet...); err != nil {
		return nil, err
	}

	s.ResetState()
	return s, nil
}

// Clone returns an independent simulator sharing the immutable mesh assembly
// (grid, material blends, capacities) but with its own wires, operators and
// state. Intended for parallel workers.
func (s *Simulator) Clone() (*Simulator, error) {
	p := *s.prob
	p.Wires = append([]bondwire.Wire(nil), s.coup.Wires...)
	return newWithAssembler(&p, s.opt, s.asm)
}

// NumDOF returns the total number of unknowns (grid nodes + wire internals).
func (s *Simulator) NumDOF() int { return s.nDOF }

// NumGridNodes returns the number of grid nodes.
func (s *Simulator) NumGridNodes() int { return s.nGrid }

// Problem returns the problem definition (treat as read-only).
func (s *Simulator) Problem() *Problem { return s.prob }

// Options returns the effective (defaulted) options.
func (s *Simulator) Options() Options { return s.opt }

// Wires returns the simulator's wires (a live slice owned by the coupling;
// use SetWireGeometry to modify).
func (s *Simulator) Wires() []bondwire.Wire { return s.coup.Wires }

// SetWireGeometry replaces the geometry of wire i (e.g. with a sampled
// uncertain length). The wire's segment topology is unchanged.
func (s *Simulator) SetWireGeometry(i int, g bondwire.Geometry) error {
	if i < 0 || i >= len(s.coup.Wires) {
		return fmt.Errorf("core: wire index %d out of range", i)
	}
	if err := g.Validate(); err != nil {
		return err
	}
	s.coup.Wires[i].Geom = g
	return nil
}

// SetWireElongation sets the relative elongation δ of wire i, keeping its
// direct distance and diameter: L = d/(1−δ) per the paper's definition.
func (s *Simulator) SetWireElongation(i int, delta float64) error {
	if i < 0 || i >= len(s.coup.Wires) {
		return fmt.Errorf("core: wire index %d out of range", i)
	}
	old := s.coup.Wires[i].Geom
	g, err := bondwire.FromElongation(old.Direct, delta, old.Diameter)
	if err != nil {
		return err
	}
	s.coup.Wires[i].Geom = g
	return nil
}

// ResetState restores the initial condition (uniform initial temperature,
// zero potentials) and discards the cached preconditioner state, so the
// simulator can run another sample. The preconditioner reset matters for
// determinism: ensemble workers run different sample subsequences on the
// same cloned simulator, and a factorization (or lag-policy history) leaking
// from one sample into the next would make results depend on the worker
// split. With the reset, every Run starts from the identical solver state.
func (s *Simulator) ResetState() {
	t0 := s.prob.InitTemperature()
	for i := range s.T {
		s.T[i] = t0
	}
	for i := range s.phi {
		s.phi[i] = 0
	}
	s.precE = precState{}
	s.precT = precState{}
}

// Temperatures returns the current DOF temperature vector (live; copy before
// modifying).
func (s *Simulator) Temperatures() []float64 { return s.T }

// Potentials returns the current DOF potential vector (live).
func (s *Simulator) Potentials() []float64 { return s.phi }

// preconditioner returns the cached preconditioner of the operator behind
// ps, building it on first use, refreshing the IC0 factorization in place
// when the lag policy has flagged drift, and falling back to Jacobi at most
// once per operator (the reason lands in RunStats).
func (s *Simulator) preconditioner(ps *precState, a *sparse.CSR) solver.Preconditioner {
	switch s.opt.Precond {
	case PrecondNone:
		ps.tier = tierNone
		return solver.IdentityPrec{}
	case PrecondJacobi:
		if ps.mat != a || ps.jac == nil {
			*ps = precState{mat: a, jac: solver.NewJacobi(a)}
		} else {
			ps.jac.Refresh(a)
		}
		ps.tier = tierJacobi
		return ps.jac
	default: // incomplete-factorization chain with lagged in-place refresh
		if ps.mat != a {
			*ps = precState{mat: a, omega: s.opt.PrecondOmega}
		}
		if ps.useJac {
			ps.jac.Refresh(a)
			ps.tier = tierJacobi
			return ps.jac
		}
		cur := ps.current()
		if cur == nil {
			return s.buildChain(ps, a)
		}
		if ps.pending {
			if err := ps.refreshCurrent(a); err != nil {
				// The refreshed values broke this tier; rebuild down the
				// degradation chain.
				ps.reason = err.Error()
				ps.dropCurrent()
				return s.buildChain(ps, a)
			}
			ps.pending = false
			ps.fresh = true
			if s.runStats != nil {
				s.runStats.PrecondRefreshes++
			}
		}
		return cur
	}
}

// noteDowngrade records one step down the degradation chain.
func (s *Simulator) noteDowngrade(ps *precState, err error) {
	ps.reason = err.Error()
	if s.runStats != nil {
		s.runStats.PrecondDowngrades++
		s.runStats.PrecondFallbackReason = ps.reason
	}
}

// buildChain factorizes the operator at the highest tier the options and
// this operator's earlier failures allow, degrading
// deflated → ICT → modified IC0 → plain IC0 → Jacobi.
func (s *Simulator) buildChain(ps *precState, a *sparse.CSR) solver.Preconditioner {
	if s.opt.Deflate && !ps.deflDead {
		d, err := s.buildDeflated(a)
		if err == nil {
			ps.defl = d
			ps.tier = tierDeflated
			ps.pending, ps.fresh = false, true
			if s.runStats != nil {
				s.runStats.PrecondBuilds++
			}
			return d
		}
		ps.deflDead = true
		s.noteDowngrade(ps, err)
	}
	if s.opt.Precond == PrecondICT && !ps.ictDead {
		ict, err := solver.NewICT(a, 0, 0)
		if err == nil {
			ps.ict = ict
			ps.tier = tierICT
			ps.pending, ps.fresh = false, true
			if s.runStats != nil {
				s.runStats.PrecondBuilds++
			}
			return ict
		}
		ps.ictDead = true
		s.noteDowngrade(ps, err)
	}
	ic, err := solver.NewMIC0(a, ps.omega)
	if err != nil && ps.omega != 0 {
		ps.omega = 0
		s.noteDowngrade(ps, err)
		ic, err = solver.NewIC0(a)
	}
	if err != nil {
		return s.fallbackJacobi(ps, a, err)
	}
	ps.ic0 = ic
	if ps.omega != 0 {
		ps.tier = tierMIC0
	} else {
		ps.tier = tierIC0
	}
	ps.pending = false
	ps.fresh = true
	if s.runStats != nil {
		s.runStats.PrecondBuilds++
	}
	return ic
}

// buildDeflated assembles the two-level preconditioner: a plain-IC0 smoother
// (the modified factor's spectrum is unbounded above, which diverges inside
// a V-cycle) around the aggregation coarse space — the shared precomputed
// one when the options carry it, extended to any wire DOFs, or one built
// from this operator's own connectivity.
func (s *Simulator) buildDeflated(a *sparse.CSR) (*solver.DeflatedPrec, error) {
	base, err := solver.NewIC0(a)
	if err != nil {
		return nil, err
	}
	cs := s.opt.DeflationSpace
	if cs != nil {
		if cs, err = cs.ExtendedTo(a.Rows); err != nil {
			return nil, err
		}
	} else {
		size := s.opt.DeflateBlock
		if size <= 0 {
			size = solver.DefaultAggregateSize
		}
		cs = solver.BuildCoarseSpace(a, size)
	}
	return solver.NewDeflated(a, base, cs)
}

// fallbackJacobi permanently switches one operator's preconditioning to
// Jacobi after a failed IC0 factorization, recording why.
func (s *Simulator) fallbackJacobi(ps *precState, a *sparse.CSR, err error) solver.Preconditioner {
	ps.defl, ps.ict, ps.ic0 = nil, nil, nil
	ps.useJac = true
	ps.tier = tierJacobi
	ps.fresh = true
	ps.reason = err.Error()
	if ps.jac == nil {
		ps.jac = solver.NewJacobi(a)
	} else {
		ps.jac.Refresh(a)
	}
	if s.runStats != nil {
		s.runStats.PrecondFallbacks++
		s.runStats.PrecondFallbackReason = ps.reason
	}
	return ps.jac
}

// solveCG runs one preconditioned CG solve in the configured precision and
// feeds the outcome to the lag policy, the per-tier RunStats counters and
// the process-wide solve observer.
func (s *Simulator) solveCG(op string, ws *solver.Workspace, a *sparse.CSR, b, x []float64, ps *precState) (solver.Stats, error) {
	m := s.preconditioner(ps, a)
	opt := solver.Options{Tol: s.opt.LinTol, MaxIter: s.opt.LinMaxIter, Workers: s.opt.Workers}
	var stats solver.Stats
	var err error
	if s.opt.Precision == PrecisionMixed {
		stats, err = solver.CGMixed(ws, a, b, x, m, opt)
	} else {
		stats, err = solver.CGWith(ws, a, b, x, m, opt)
	}
	ps.noteIters(stats.Iterations, s.opt.PrecondRefreshRatio)
	if s.runStats != nil {
		switch ps.tier {
		case tierDeflated:
			s.runStats.CGItersDeflated += stats.Iterations
		case tierICT:
			s.runStats.CGItersICT += stats.Iterations
		case tierMIC0:
			s.runStats.CGItersMIC0 += stats.Iterations
		case tierIC0:
			s.runStats.CGItersIC0 += stats.Iterations
		case tierJacobi:
			s.runStats.CGItersJacobi += stats.Iterations
		case tierNone:
			s.runStats.CGItersNone += stats.Iterations
		}
	}
	notifySolve(op, ps.tier, stats.Iterations)
	return stats, err
}

// SolveElectric assembles and solves the stationary current problem at the
// DOF temperatures T, leaving the potentials in s.phi (warm-started). The
// per-branch electric conductances remain in s.condE for Joule evaluation.
func (s *Simulator) SolveElectric(T []float64) (solver.Stats, error) {
	s.asm.EdgeConductancesWorkers(fit.Electric, T[:s.nGrid], s.condE[:s.nEdges], s.opt.Workers)
	s.coup.SegmentConductances(fit.Electric, T, s.condE[s.nEdges:])
	s.opE.SetValues(s.condE)
	a := s.opE.Matrix()
	for i := range s.rhs {
		s.rhs[i] = 0
	}
	s.dirE.Apply(a, s.rhs)
	stats, err := s.solveCG("electric", s.wsE, a, s.rhs, s.phi, &s.precE)
	if err != nil {
		return stats, fmt.Errorf("core: electric solve: %w", err)
	}
	return stats, nil
}

// jouleInto accumulates the Joule power vector at the current potentials and
// conductances (s.phi, s.condE) into dst, returning field and wire totals.
// The temperatures are those at which s.condE was evaluated.
func (s *Simulator) jouleInto(T, dst []float64) (fieldP, wireP float64) {
	for i := range dst {
		dst[i] = 0
	}
	if s.opt.Joule == CellAverage {
		fieldP = s.asm.JouleCellAverage(s.phi[:s.nGrid], T[:s.nGrid], dst[:s.nGrid])
	} else {
		fit.JouleEdgeSplit(s.branches[:s.nEdges], s.condE[:s.nEdges], s.phi, dst)
		fieldP = fit.TotalPower(s.branches[:s.nEdges], s.condE[:s.nEdges], s.phi)
	}
	// Wire self-heating: the ½/½ split onto the wire chain nodes is exactly
	// the paper's X_j redistribution for single-segment wires.
	fit.JouleEdgeSplit(s.branches[s.nEdges:], s.condE[s.nEdges:], s.phi, dst)
	wireP = fit.TotalPower(s.branches[s.nEdges:], s.condE[s.nEdges:], s.phi)
	return fieldP, wireP
}

// assembleThermal evaluates the thermal conductances at Tk and stamps the
// Laplacian into s.opT.
func (s *Simulator) assembleThermal(Tk []float64) {
	s.asm.EdgeConductancesWorkers(fit.Thermal, Tk[:s.nGrid], s.condT[:s.nEdges], s.opt.Workers)
	s.coup.SegmentConductances(fit.Thermal, Tk, s.condT[s.nEdges:])
	s.opT.SetValues(s.condT)
}

// thermalResidualParts computes, at the temperatures Tk, the conduction term
// K(Tk)·Tk + boundary loss − Q into dst. Used for the explicit part of the
// θ-scheme and for energy audits.
func (s *Simulator) thermalResidualParts(Tk, q, dst []float64) {
	s.asm.EdgeConductancesWorkers(fit.Thermal, Tk[:s.nGrid], s.condT[:s.nEdges], s.opt.Workers)
	s.coup.SegmentConductances(fit.Thermal, Tk, s.condT[s.nEdges:])
	fit.ApplyLaplacian(s.branches, s.condT, Tk, dst)
	fit.RobinLoss(Tk[:s.nGrid], s.bndAreas[:s.nGrid], s.prob.ThermalBC, dst)
	for i := range dst {
		dst[i] -= q[i]
	}
}
