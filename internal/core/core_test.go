package core

import (
	"math"
	"testing"

	"etherm/internal/bondwire"
	"etherm/internal/fit"
	"etherm/internal/grid"
	"etherm/internal/material"
)

// constCopper is copper with temperature-independent properties, for tests
// with exact analytic references.
func constCopper() material.Linear {
	return material.Linear{MatName: "const-copper", Sigma0: 5.8e7, Lambda0: 398, RhoC: 3.45e6}
}

func mustLib(t *testing.T, models ...material.Model) *material.Library {
	t.Helper()
	lib, err := material.NewLibrary(models...)
	if err != nil {
		t.Fatal(err)
	}
	return lib
}

func uniformProblem(t *testing.T, m material.Model, lx, ly, lz float64, nx, ny, nz int) *Problem {
	t.Helper()
	g, err := grid.NewUniform(lx, ly, lz, nx, ny, nz)
	if err != nil {
		t.Fatal(err)
	}
	cellMat := make([]int, g.NumCells())
	return &Problem{
		Grid:      g,
		CellMat:   cellMat,
		Lib:       mustLib(t, m),
		ThermalBC: fit.RobinBC{H: 0, Emissivity: 0, TInf: 300},
	}
}

func faceNodes(g *grid.Grid, face int) []int {
	var out []int
	for n := 0; n < g.NumNodes(); n++ {
		i, j, k := g.NodeCoordsOf(n)
		hit := false
		switch face {
		case 0:
			hit = i == 0
		case 1:
			hit = i == g.Nx-1
		case 2:
			hit = j == 0
		case 3:
			hit = j == g.Ny-1
		case 4:
			hit = k == 0
		case 5:
			hit = k == g.Nz-1
		}
		if hit {
			out = append(out, n)
		}
	}
	return out
}

// TestSteadyRodLinearProfile drives a copper rod with fixed end temperatures
// and checks the transient settles to the exact linear profile.
func TestSteadyRodLinearProfile(t *testing.T) {
	p := uniformProblem(t, constCopper(), 1e-3, 2e-4, 2e-4, 11, 3, 3)
	p.ThermDirichlet = []fit.Dirichlet{
		{Nodes: faceNodes(p.Grid, 0), Values: []float64{300}},
		{Nodes: faceNodes(p.Grid, 1), Values: []float64{400}},
	}
	s, err := NewSimulator(p, Options{EndTime: 0.05, NumSteps: 25})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	g := p.Grid
	for n := 0; n < g.NumNodes(); n++ {
		x, _, _ := g.NodePosition(n)
		want := 300 + 100*x/1e-3
		if math.Abs(res.FinalField[n]-want) > 0.02 {
			t.Fatalf("node %d (x=%g): T = %g, want %g", n, x, res.FinalField[n], want)
		}
	}
}

// TestLumpedCoolingMatchesDiscreteODE cools a highly conductive block by
// convection; because the block is effectively isothermal (Bi ≪ 1), the FIT
// solution must match the implicit-Euler discretization of the lumped ODE
// C dT/dt = −hA (T − T∞) to tight tolerance.
func TestLumpedCoolingMatchesDiscreteODE(t *testing.T) {
	p := uniformProblem(t, constCopper(), 1e-3, 1e-3, 1e-3, 4, 4, 4)
	p.ThermalBC = fit.RobinBC{H: 25, Emissivity: 0, TInf: 300}
	p.TInit = 400
	const endTime, nSteps = 10.0, 20
	s, err := NewSimulator(p, Options{EndTime: endTime, NumSteps: nSteps, RecordFieldEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}

	c := constCopper().VolHeatCap() * 1e-9 // ρc·V
	hA := 25.0 * 6e-6
	dt := endTime / nSteps
	tOde := 400.0
	for n := 1; n <= nSteps; n++ {
		tOde = (c/dt*tOde + hA*300) / (c/dt + hA)
		got := res.WireTempOrField(n, p.Grid.NodeIndex(2, 2, 2))
		if math.Abs(got-tOde) > 5e-3 {
			t.Fatalf("step %d: T = %g, lumped IE ODE %g", n, got, tOde)
		}
	}
	// And the continuous solution within the IE discretization error.
	exact := 300 + 100*math.Exp(-hA*endTime/c)
	if math.Abs(res.FinalField[0]-exact) > 1.0 {
		t.Errorf("final T %g too far from exact %g", res.FinalField[0], exact)
	}
}

// TestTrapezoidalMoreAccurateThanEuler checks the integrator order on the
// lumped cooling problem.
func TestTrapezoidalMoreAccurateThanEuler(t *testing.T) {
	run := func(integ Integrator) float64 {
		p := uniformProblem(t, constCopper(), 1e-3, 1e-3, 1e-3, 3, 3, 3)
		p.ThermalBC = fit.RobinBC{H: 200, Emissivity: 0, TInf: 300}
		p.TInit = 400
		s, err := NewSimulator(p, Options{EndTime: 4, NumSteps: 8, TimeIntegrator: integ})
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		c := constCopper().VolHeatCap() * 1e-9
		hA := 200.0 * 6e-6
		exact := 300 + 100*math.Exp(-hA*4/c)
		return math.Abs(res.FinalField[0] - exact)
	}
	errIE := run(ImplicitEuler)
	errCN := run(Trapezoidal)
	errBDF2 := run(BDF2)
	if errCN >= errIE {
		t.Errorf("trapezoidal error %g should beat implicit Euler %g", errCN, errIE)
	}
	if errBDF2 >= errIE {
		t.Errorf("BDF2 error %g should beat implicit Euler %g", errBDF2, errIE)
	}
}

// TestJouleSteadyBalance drives a copper bar electrically and verifies the
// steady state: electric power matches V²/R and equals the boundary loss.
func TestJouleSteadyBalance(t *testing.T) {
	const lx, a = 1e-3, 1e-8 // 1 mm bar, 1e-4 × 1e-4 m cross-section
	p := uniformProblem(t, constCopper(), lx, 1e-4, 1e-4, 21, 3, 3)
	p.ThermalBC = fit.RobinBC{H: 5000, Emissivity: 0, TInf: 300}
	const v = 1e-3
	p.ElecDirichlet = []fit.Dirichlet{
		{Nodes: faceNodes(p.Grid, 0), Values: []float64{0}},
		{Nodes: faceNodes(p.Grid, 1), Values: []float64{v}},
	}
	s, err := NewSimulator(p, Options{EndTime: 2, NumSteps: 20})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	sigma := constCopper().ElecCond(300)
	r := lx / (sigma * a)
	wantP := v * v / r
	last := len(res.Times) - 1
	gotP := res.FieldPower[last]
	if math.Abs(gotP-wantP) > 1e-3*wantP {
		t.Errorf("electric power %g, want %g", gotP, wantP)
	}
	// Steady state: boundary loss balances input power.
	if math.Abs(res.BoundaryLoss[last]-gotP) > 0.02*gotP {
		t.Errorf("boundary loss %g vs power %g — not stationary", res.BoundaryLoss[last], gotP)
	}
	if res.Stats.MaxEnergyImbalance > 1e-6 {
		t.Errorf("energy imbalance %g too large", res.Stats.MaxEnergyImbalance)
	}
}

// TestWireChainParabolicProfile checks the N-segment wire model against the
// exact solution of a Joule-heated wire with fixed end temperatures and no
// lateral loss: T(x) = T0 + q·x(L−x)/(2λA), exact at chain nodes.
func TestWireChainParabolicProfile(t *testing.T) {
	p := uniformProblem(t, constCopper(), 1e-3, 1e-3, 1e-3, 2, 2, 2)
	g := p.Grid
	nodeA := g.NodeIndex(0, 0, 0)
	nodeB := g.NodeIndex(1, 1, 1)
	const segments = 8
	const vWire = 20e-3
	wire := bondwire.Wire{
		Name:  "w0",
		NodeA: nodeA, NodeB: nodeB,
		Geom:     bondwire.Geometry{Direct: 1.5e-3, Diameter: 25.4e-6},
		Mat:      constCopper(),
		Segments: segments,
	}
	p.Wires = []bondwire.Wire{wire}
	// Pin every grid node thermally and drive the wire electrically.
	all := make([]int, g.NumNodes())
	for i := range all {
		all[i] = i
	}
	p.ThermDirichlet = []fit.Dirichlet{{Nodes: all, Values: []float64{300}}}
	p.ElecDirichlet = []fit.Dirichlet{
		{Nodes: []int{nodeA}, Values: []float64{vWire}},
		{Nodes: []int{nodeB}, Values: []float64{0}},
	}
	s, err := NewSimulator(p, Options{EndTime: 1, NumSteps: 30})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}

	lam := constCopper().ThermCond(300)
	area := wire.Geom.CrossSection()
	l := wire.Geom.Length()
	// The grid short-circuits the wire ends electrically (all-copper block is
	// nearly equipotential per PEC set), so the wire sees vWire.
	q := vWire * vWire * constCopper().ElecCond(300) * area / l / l // W/m

	T := s.Temperatures()
	chainTemps := make([]float64, segments+1)
	for i, dof := range s.coup.Chain(0) {
		chainTemps[i] = T[dof]
	}
	for i := 0; i <= segments; i++ {
		x := l * float64(i) / segments
		want := 300 + q*x*(l-x)/(2*lam*area)
		if math.Abs(chainTemps[i]-want) > 0.02*(want-300+1) {
			t.Fatalf("chain node %d: T = %g, want %g (profile %v)", i, chainTemps[i], want, chainTemps)
		}
	}
	// The paper's end-point average must stay at the pinned 300 K while the
	// max-over-chain QoI sees the hot midpoint.
	last := len(res.Times) - 1
	if math.Abs(res.WireTemp[last][0]-300) > 1e-6 {
		t.Errorf("end-point average %g, want 300", res.WireTemp[last][0])
	}
	mid := 300 + q*l*l/(8*lam*area)
	if math.Abs(res.WireMaxTemp[last][0]-mid) > 0.05*(mid-300) {
		t.Errorf("chain max %g, want midpoint %g", res.WireMaxTemp[last][0], mid)
	}
}

// TestWireConnectsIsolatedBlocks checks the electrothermal wire stamp: two
// copper blocks joined only by a wire carry the analytic current.
func TestWireConnectsIsolatedBlocks(t *testing.T) {
	// Two copper cells at the ends of an epoxy-filled bar.
	g, err := grid.NewTensor(
		[]float64{0, 0.2e-3, 1.0e-3, 1.2e-3},
		[]float64{0, 0.2e-3},
		[]float64{0, 0.2e-3},
	)
	if err != nil {
		t.Fatal(err)
	}
	lib := mustLib(t, material.EpoxyResin(), constCopper())
	cellMat := make([]int, g.NumCells())
	cellMat[0] = 1 // copper
	cellMat[2] = 1 // copper
	p := &Problem{
		Grid: g, CellMat: cellMat, Lib: lib,
		ThermalBC: fit.RobinBC{H: 25, Emissivity: 0, TInf: 300},
	}
	nodeA := g.NodeIndex(1, 0, 0) // inner face of left block
	nodeB := g.NodeIndex(2, 1, 1) // inner face of right block
	wire := bondwire.Wire{
		Name:  "bridge",
		NodeA: nodeA, NodeB: nodeB,
		Geom: bondwire.Geometry{Direct: 1.5e-3, Diameter: 25.4e-6},
		Mat:  constCopper(),
	}
	p.Wires = []bondwire.Wire{wire}
	const v = 10e-3
	p.ElecDirichlet = []fit.Dirichlet{
		{Nodes: faceNodes(g, 0), Values: []float64{0}},
		{Nodes: faceNodes(g, 1), Values: []float64{v}},
	}
	s, err := NewSimulator(p, Options{EndTime: 1, NumSteps: 10})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	// The blocks are far more conductive than the wire, so nearly the whole
	// voltage drops across the wire (the residual drop is within tolerance).
	gw := wire.ElecConductance(material.ReferenceTemperature)
	wantP := v * v * gw
	last := len(res.Times) - 1
	gotP := res.WirePower[last][0]
	if math.Abs(gotP-wantP) > 0.05*wantP {
		t.Errorf("wire power %g, want ≈ %g", gotP, wantP)
	}
	if gotP <= 0 {
		t.Error("no current flows through the wire")
	}
}

// TestWeakVsStrongCouplingAgreeForMildHeating: with weak heating the
// staggered and iterated schemes must agree closely.
func TestWeakVsStrongCouplingAgreeForMildHeating(t *testing.T) {
	run := func(mode CouplingMode) float64 {
		p := uniformProblem(t, material.Copper(), 1e-3, 1e-4, 1e-4, 11, 3, 3)
		p.ThermalBC = fit.RobinBC{H: 1000, Emissivity: 0, TInf: 300}
		p.ElecDirichlet = []fit.Dirichlet{
			{Nodes: faceNodes(p.Grid, 0), Values: []float64{0}},
			{Nodes: faceNodes(p.Grid, 1), Values: []float64{2e-4}},
		}
		s, err := NewSimulator(p, Options{EndTime: 1, NumSteps: 10, Coupling: mode})
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.FinalField[p.Grid.NodeIndex(5, 1, 1)]
	}
	tw := run(WeakCoupling)
	ts := run(StrongCoupling)
	if math.Abs(tw-ts) > 0.01 {
		t.Errorf("weak %g and strong %g coupling diverge", tw, ts)
	}
}

// TestSetWireElongationChangesResistance verifies the δ → length → G path.
func TestSetWireElongationChangesResistance(t *testing.T) {
	p := uniformProblem(t, constCopper(), 1e-3, 1e-3, 1e-3, 2, 2, 2)
	p.Wires = []bondwire.Wire{{
		Name: "w", NodeA: 0, NodeB: 7,
		Geom: bondwire.Geometry{Direct: 1.0e-3, Diameter: 25.4e-6},
		Mat:  constCopper(),
	}}
	s, err := NewSimulator(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	r0 := s.Wires()[0].Resistance(300)
	if err := s.SetWireElongation(0, 0.2); err != nil {
		t.Fatal(err)
	}
	r1 := s.Wires()[0].Resistance(300)
	if math.Abs(r1/r0-1.25) > 1e-9 {
		t.Errorf("R(δ=0.2)/R(δ=0) = %g, want 1.25", r1/r0)
	}
	if got := s.Wires()[0].Geom.RelElongation(); math.Abs(got-0.2) > 1e-12 {
		t.Errorf("RelElongation = %g, want 0.2", got)
	}
}

// TestCloneIsIndependent ensures clones do not share mutable state.
func TestCloneIsIndependent(t *testing.T) {
	p := uniformProblem(t, constCopper(), 1e-3, 1e-3, 1e-3, 3, 3, 3)
	p.Wires = []bondwire.Wire{{
		Name: "w", NodeA: 0, NodeB: 26,
		Geom: bondwire.Geometry{Direct: 1.0e-3, Diameter: 25.4e-6},
		Mat:  constCopper(),
	}}
	s1, err := NewSimulator(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	s2, err := s1.Clone()
	if err != nil {
		t.Fatal(err)
	}
	if err := s2.SetWireElongation(0, 0.3); err != nil {
		t.Fatal(err)
	}
	if s1.Wires()[0].Geom.RelElongation() == s2.Wires()[0].Geom.RelElongation() {
		t.Error("clone shares wire state with original")
	}
	if s1.asm != s2.asm {
		t.Error("clone should share the immutable assembler")
	}
}

// WireTempOrField is a small test helper on Result: temperature of grid node
// n at time index step (falls back to snapshots being absent by using the
// recorded final field only at the last step).
func (r *Result) WireTempOrField(step, node int) float64 {
	if step == len(r.Times)-1 {
		return r.FinalField[node]
	}
	if f, ok := r.Snapshots[step]; ok {
		return f[node]
	}
	// For the lumped test the block is isothermal; wire-free problems can
	// use any recorded wire series. Fall back to re-deriving from snapshots
	// is not possible — tests request RecordFieldEvery when needed.
	panic("core_test: field not recorded at this step")
}
