package core

import "sync/atomic"

// Preconditioner tier names, as reported in RunStats and to the solve
// observer. They name the position in the degradation chain that served a
// solve, not the option that was requested.
const (
	tierDeflated = "deflated"
	tierICT      = "ict"
	tierMIC0     = "mic0"
	tierIC0      = "ic0"
	tierJacobi   = "jacobi"
	tierNone     = "none"
)

// SolveObserver receives one callback per inner CG solve: the operator
// ("electric" or "thermal"), the preconditioner tier that served the solve,
// and the iteration count. Observers run synchronously on the simulation
// goroutine and may be called concurrently from parallel Monte Carlo
// workers — they must be fast and thread-safe (metrics counters, not I/O).
type SolveObserver func(op, tier string, iters int)

var solveObs atomic.Pointer[SolveObserver]

// SetSolveObserver installs (or, with nil, removes) the process-wide solve
// observer. The server uses it to feed the CG-iteration histogram on
// /metrics; simulations never depend on it.
func SetSolveObserver(f SolveObserver) {
	if f == nil {
		solveObs.Store(nil)
		return
	}
	solveObs.Store(&f)
}

func notifySolve(op, tier string, iters int) {
	if p := solveObs.Load(); p != nil {
		(*p)(op, tier, iters)
	}
}
