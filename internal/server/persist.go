package server

import (
	"context"
	"encoding/json"
	"sort"
	"time"

	"etherm/api"
	"etherm/internal/core"
	"etherm/internal/jobstore"
	"etherm/internal/metrics"
	"etherm/internal/panicsafe"
	"etherm/internal/scenario"
)

// Durability of batch jobs. Every transition of an api.Job is mirrored
// into the job store as one storedJob record; the raw batch JSON rides
// along while the job is non-terminal, so recovery can requeue an
// interrupted job and re-run it from scratch — the engine is
// deterministic, so the re-run converges on the result the crash stole.
// Terminal records drop the batch payload and keep the result.

// storedJob is the persisted form of one batch job.
type storedJob struct {
	Job *api.Job `json:"job"`
	// Batch is the submitted batch document, present only while the job
	// can still be (re)run.
	Batch json.RawMessage `json:"batch,omitempty"`
}

func (s *Server) logErr(format string, args ...any) {
	if s.logf != nil {
		s.logf(format, args...)
	}
}

// persistJobLocked writes the current record of one job and returns the
// store error, if any. Mid-flight callers treat failures as non-fatal
// (logged; the next transition retries on the in-memory state), but every
// outcome feeds the degraded latch: a failed write latches degraded mode
// (submissions are shed with 503 until the store recovers), a successful
// one clears it. Caller holds s.mu.
func (s *Server) persistJobLocked(id string) error {
	j, ok := s.jobs[id]
	if !ok {
		return nil
	}
	data, err := json.Marshal(&storedJob{Job: j, Batch: s.batches[id]})
	if err != nil {
		s.logErr("server: persist %s: %v", id, err)
		return err
	}
	err = s.store.Put(jobstore.KindJob, id, data, jobstore.Counters{Job: s.seq})
	s.notePersist(err)
	if err != nil {
		s.logErr("server: persist %s: %v", id, err)
	}
	return err
}

// notePersist drives the degraded latch and the write-failure counter
// from one store-write outcome.
func (s *Server) notePersist(err error) {
	if err != nil {
		s.mStoreErrs.Inc()
		if s.degraded.CompareAndSwap(false, true) {
			s.logErr("server: job store failing writes; shedding new submissions until a write succeeds")
		}
		return
	}
	if s.degraded.CompareAndSwap(true, false) {
		s.logErr("server: job store recovered; accepting submissions again")
	}
}

// persistJob is persistJobLocked taking the lock.
func (s *Server) persistJob(id string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	_ = s.persistJobLocked(id)
}

// recover rebuilds the job table from the store and requeues every job
// the previous process died with: non-terminal recovered jobs reset to
// queued (progress zeroed) and re-enter the runner queue, terminal ones
// come back with their results.
func (s *Server) recover() error {
	st := s.store.State()
	s.seq = max(s.seq, st.Counters.Job)

	type requeue struct {
		id    string
		batch *scenario.Batch
	}
	var pending []requeue
	recovered := 0
	for id, data := range st.Kinds[jobstore.KindJob] {
		var sj storedJob
		if err := json.Unmarshal(data, &sj); err != nil || sj.Job == nil {
			s.logErr("server: dropping unreadable job record %s: %v", id, err)
			_ = s.store.Delete(jobstore.KindJob, id, jobstore.Counters{})
			continue
		}
		j := sj.Job
		s.jobs[id] = j
		s.order = append(s.order, id)
		recovered++
		if j.Status.Finished() {
			continue
		}
		// Interrupted mid-flight: requeue from the retained batch document.
		j.Status = api.JobQueued
		j.StartedAt = nil
		j.FinishedAt = nil
		j.Error = ""
		j.Progress = api.JobProgress{ScenariosTotal: j.Progress.ScenariosTotal}
		batch, err := scenario.ParseBatch(sj.Batch)
		if err != nil {
			now := time.Now().UTC()
			j.Status = api.JobFailed
			j.FinishedAt = &now
			j.Error = "lost across restart: batch document unrecoverable: " + err.Error()
			s.persistJobLocked(id)
			continue
		}
		s.batches[id] = sj.Batch
		pending = append(pending, requeue{id: id, batch: batch})
	}
	// The store is a map; submission order lives in the sequence-numbered
	// IDs ("job-%06d" sorts lexically in submission order).
	sort.Strings(s.order)
	sort.Slice(pending, func(i, k int) bool { return pending[i].id < pending[k].id })
	if recovered > 0 {
		s.logErr("server: recovered %d job(s) (%d requeued), sequence job=%d", recovered, len(pending), s.seq)
	}
	for _, rq := range pending {
		s.persistJobLocked(rq.id)
		ctx, cancel := context.WithCancel(context.Background())
		s.cancels[rq.id] = cancel
		s.runners.Add(1)
		go s.runJob(ctx, rq.id, rq.batch)
	}
	return nil
}

// queuedLocked counts jobs waiting for a runner slot. Caller holds s.mu.
func (s *Server) queuedLocked() int {
	n := 0
	for _, j := range s.jobs {
		if j.Status == api.JobQueued {
			n++
		}
	}
	return n
}

// jobStates are the dimension values of the jobs-by-state gauges.
var jobStates = []api.JobStatus{api.JobQueued, api.JobRunning, api.JobDone, api.JobFailed, api.JobCanceled}

// initMetrics registers the server's metric families. GaugeFuncs sample
// live state at scrape time; counters and the fsync histogram are bumped
// on the hot paths they describe.
func (s *Server) initMetrics() {
	for _, state := range jobStates {
		state := state
		s.reg.NewGaugeFunc("etserver_jobs", "Batch jobs by state.",
			metrics.Labels{"state": string(state)}, func() float64 {
				s.mu.Lock()
				defer s.mu.Unlock()
				n := 0
				for _, j := range s.jobs {
					if j.Status == state {
						n++
					}
				}
				return float64(n)
			})
	}
	s.reg.NewGaugeFunc("etserver_fleet_jobs", "Fleet jobs currently known to the coordinator.",
		nil, func() float64 { return float64(len(s.coord.Jobs())) })
	s.reg.NewGaugeFunc("etserver_sse_watchers", "Open SSE event streams.",
		nil, func() float64 { return float64(s.hub.watcherCount()) })
	s.reg.NewGaugeFunc("etserver_queue_depth", "Jobs waiting for a runner slot.",
		nil, func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return float64(s.queuedLocked())
		})
	s.reg.NewGaugeFunc("etserver_queue_capacity", "Backpressure bound on waiting jobs (0 = unbounded).",
		nil, func() float64 { return float64(s.maxQueued) })
	s.reg.NewGaugeFunc("etserver_runners_busy", "Occupied batch runner slots.",
		nil, func() float64 { return float64(len(s.sem)) })
	s.reg.NewGaugeFunc("etserver_runner_capacity", "Total batch runner slots.",
		nil, func() float64 { return float64(cap(s.sem)) })
	s.reg.NewGaugeFunc("etserver_cache_hits_total", "Assembly cache hits.",
		nil, func() float64 { return float64(s.cache.Hits()) })
	s.reg.NewGaugeFunc("etserver_cache_misses_total", "Assembly cache misses.",
		nil, func() float64 { return float64(s.cache.Misses()) })
	s.reg.NewGaugeFunc("etserver_draining", "1 while the server drains for graceful shutdown.",
		nil, func() float64 {
			if s.draining.Load() {
				return 1
			}
			return 0
		})
	s.reg.NewGaugeFunc("etserver_degraded", "1 while job-store writes are failing and submissions are shed.",
		nil, func() float64 {
			if s.degraded.Load() {
				return 1
			}
			return 0
		})
	s.reg.NewGaugeFunc("etherm_panics_recovered_total",
		"Panics recovered into structured failures (process-wide).",
		nil, func() float64 { return float64(panicsafe.Count()) })
	s.mSubmitted = s.reg.NewCounter("etserver_submissions_total", "Accepted job submissions.", nil)
	s.mRejected = s.reg.NewCounter("etserver_submissions_rejected_total",
		"Submissions rejected by backpressure (429) or shed while degraded (503).", nil)
	s.mExpiries = s.reg.NewCounter("etserver_lease_expiries_total",
		"Fleet shard leases reclaimed from silent workers.", nil)
	s.mFsync = s.reg.NewHistogram("etserver_wal_fsync_seconds",
		"WAL fsync latency of the durable job store.", nil, nil)
	s.mStoreErrs = s.reg.NewCounter("etserver_store_write_failures_total",
		"Failed job-store writes (each one latches degraded mode until a write succeeds).", nil)

	// Surrogate serving telemetry: query outcomes (a miss is an unknown or
	// not-ready surrogate, out_of_domain a what-if beyond the trained
	// region — both redirect to the FEM path), end-to-end query latency,
	// and the number of ready models serving.
	s.mSurrQueries = make(map[string]*metrics.Counter, 3)
	for _, res := range []string{"hit", "miss", "out_of_domain"} {
		s.mSurrQueries[res] = s.reg.NewCounter("etherm_surrogate_queries_total",
			"Surrogate queries by outcome.", metrics.Labels{"result": res})
	}
	s.mSurrLatency = s.reg.NewHistogram("etherm_surrogate_query_seconds",
		"Surrogate query latency (request to answer).", nil,
		[]float64{1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 1e-2, 1e-1})
	s.reg.NewGaugeFunc("etherm_surrogate_cache_entries",
		"Ready surrogate models in the serving cache.",
		nil, func() float64 { return float64(s.scache.Len()) })

	// CG-iteration telemetry: the core simulator reports every inner linear
	// solve through its process-wide observer; the histogram tracks the
	// iteration distribution per operator and the counters attribute solves
	// to the preconditioner tier that served them (a drift away from the
	// configured top tier flags degradation in production).
	cgHist := make(map[string]*metrics.Histogram, 2)
	cgSolves := make(map[string]*metrics.Counter, 12)
	cgBounds := []float64{5, 10, 15, 20, 25, 35, 50, 75, 100, 150, 250, 500, 1000}
	for _, op := range []string{"electric", "thermal"} {
		cgHist[op] = s.reg.NewHistogram("etherm_cg_iterations",
			"CG iterations per linear solve.", metrics.Labels{"op": op}, cgBounds)
		for _, tier := range []string{"deflated", "ict", "mic0", "ic0", "jacobi", "none"} {
			cgSolves[op+"/"+tier] = s.reg.NewCounter("etherm_cg_solves_total",
				"Linear solves by preconditioner tier.", metrics.Labels{"op": op, "tier": tier})
		}
	}
	core.SetSolveObserver(func(op, tier string, iters int) {
		if h, ok := cgHist[op]; ok {
			h.Observe(float64(iters))
		}
		if c, ok := cgSolves[op+"/"+tier]; ok {
			c.Inc()
		}
	})
}

// initStoreMetrics registers gauges over a FileStore's Stats.
func (s *Server) initStoreMetrics(fs *jobstore.FileStore) {
	s.reg.NewGaugeFunc("etserver_wal_bytes", "Live WAL size of the job store.",
		nil, func() float64 { return float64(fs.Stats().WALBytes) })
	s.reg.NewGaugeFunc("etserver_wal_records", "Records in the live WAL.",
		nil, func() float64 { return float64(fs.Stats().WALRecords) })
	s.reg.NewGaugeFunc("etserver_store_generation", "Snapshot generation of the job store.",
		nil, func() float64 { return float64(fs.Stats().Gen) })
	s.reg.NewGaugeFunc("etserver_store_compactions_total", "Snapshot compactions since start.",
		nil, func() float64 { return float64(fs.Stats().Compactions) })
}
