package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"etherm/api"
	"etherm/client"
	"etherm/internal/apiconv"
)

// newTestServer spins an httptest server plus an SDK client against it.
func newTestServer(t *testing.T, srv *Server) (*httptest.Server, *client.Client) {
	t.Helper()
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts, client.New(ts.URL)
}

// submitBatch submits a batch through the SDK.
func submitBatch(t *testing.T, cl *client.Client, b *api.Batch) *api.Job {
	t.Helper()
	job, err := cl.SubmitBatch(context.Background(), b)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	return job
}

// waitDone waits for a terminal state through the SDK (SSE under the hood).
func waitDone(t *testing.T, cl *client.Client, id string, timeout time.Duration) *api.Job {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	job, err := cl.WaitJob(ctx, id)
	if err != nil {
		t.Fatalf("wait %s: %v", id, err)
	}
	return job
}

// tinySim is the fast transient configuration shared by the API tests.
func tinySim() api.SimSpec {
	return api.SimSpec{EndTimeS: 10, NumSteps: 3, Coupling: "weak", Nonlinear: "newton"}
}

// tinyBatch is a fast two-scenario batch (shared coarse mesh, short
// horizon) for API round-trip tests.
func tinyBatch() *api.Batch {
	return &api.Batch{
		Name: "api-test",
		Scenarios: []api.Scenario{
			{Name: "pair", Chip: api.ChipSpec{HMaxM: 0.8e-3, ActivePairs: []int{0}}, Sim: tinySim()},
			{Name: "full", Chip: api.ChipSpec{HMaxM: 0.8e-3}, Sim: tinySim()},
		},
	}
}

func TestJobRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("runs coupled-field simulations")
	}
	_, cl := newTestServer(t, NewServer(1))

	job := submitBatch(t, cl, tinyBatch())
	if job.ID == "" || (job.Status != api.JobQueued && job.Status != api.JobRunning) {
		t.Fatalf("unexpected submit response: %+v", job)
	}
	if job.Progress.ScenariosTotal != 2 {
		t.Errorf("progress total %d, want 2", job.Progress.ScenariosTotal)
	}

	done := waitDone(t, cl, job.ID, 3*time.Minute)
	if done.Status != api.JobDone {
		t.Fatalf("job finished as %s (%s)", done.Status, done.Error)
	}
	if done.Result == nil || len(done.Result.Scenarios) != 2 {
		t.Fatalf("missing results: %+v", done.Result)
	}
	if done.Result.FailedCount != 0 {
		t.Fatalf("scenarios failed: %+v", done.Result)
	}
	if done.Progress.ScenariosDone != 2 {
		t.Errorf("progress done %d, want 2", done.Progress.ScenariosDone)
	}
	for _, s := range done.Result.Scenarios {
		if s.TEndMaxK < 300 || s.TEndMaxK > 700 {
			t.Errorf("scenario %s end temperature %g K implausible", s.Name, s.TEndMaxK)
		}
	}
	if done.StartedAt == nil || done.FinishedAt == nil {
		t.Error("timestamps not recorded")
	}

	// The two scenarios share one geometry: the second must hit the cache.
	if !done.Result.Scenarios[1].CacheHit && !done.Result.Scenarios[0].CacheHit {
		t.Error("no scenario hit the assembly cache")
	}

	// A second identical job on the warm server caches everything.
	job2 := submitBatch(t, cl, tinyBatch())
	done2 := waitDone(t, cl, job2.ID, 3*time.Minute)
	if done2.Status != api.JobDone {
		t.Fatalf("second job finished as %s (%s)", done2.Status, done2.Error)
	}
	for _, s := range done2.Result.Scenarios {
		if !s.CacheHit {
			t.Errorf("scenario %s missed the warm cross-job cache", s.Name)
		}
	}

	// Listing returns both jobs newest first, without result payloads.
	list, err := cl.ListJobs(context.Background(), client.ListJobsOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(list.Jobs) != 2 || list.Jobs[0].ID != job2.ID || list.Jobs[1].ID != job.ID {
		t.Errorf("job list wrong (want newest first): %+v", list.Jobs)
	}
	if list.NextCursor != "" {
		t.Errorf("unexpected next cursor %q on a complete page", list.NextCursor)
	}
	for _, j := range list.Jobs {
		if j.Result != nil {
			t.Error("job list embeds result payloads")
		}
	}
}

func TestSubmitValidation(t *testing.T) {
	ts, _ := newTestServer(t, NewServer(1))

	for name, tc := range map[string]struct {
		body   string
		status int
		code   string
	}{
		"not json":      {"}{", http.StatusBadRequest, api.CodeInvalidBody},
		"empty batch":   {`{"scenarios": []}`, http.StatusUnprocessableEntity, api.CodeValidation},
		"unknown field": {`{"scenarios": [{"name": "x", "chipp": 1}]}`, http.StatusUnprocessableEntity, api.CodeValidation},
		"duplicate":     {`{"scenarios": [{"name": "x"}, {"name": "x"}]}`, http.StatusUnprocessableEntity, api.CodeValidation},
		"contradictory solver knobs": {
			`{"scenarios": [{"name": "x", "sim": {"precision": "mixed", "precond": "jacobi"}}]}`,
			http.StatusUnprocessableEntity, api.CodeValidation},
		"deflation without factorization": {
			`{"scenarios": [{"name": "x", "sim": {"deflation": true, "precond": "none"}}]}`,
			http.StatusUnprocessableEntity, api.CodeValidation},
	} {
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		problem := decodeProblem(t, resp)
		if resp.StatusCode != tc.status {
			t.Errorf("%s: status %d, want %d", name, resp.StatusCode, tc.status)
		}
		if problem.Code != tc.code {
			t.Errorf("%s: problem code %q, want %q", name, problem.Code, tc.code)
		}
	}
}

func TestFinishedJobEviction(t *testing.T) {
	if testing.Short() {
		t.Skip("runs coupled-field simulations")
	}
	_, cl := newTestServer(t, NewServerWithHistory(1, 2))

	small := &api.Batch{Scenarios: []api.Scenario{{
		Name: "pair",
		Chip: api.ChipSpec{HMaxM: 0.8e-3, ActivePairs: []int{0}},
		Sim:  tinySim(),
	}}}
	var ids []string
	for i := 0; i < 4; i++ {
		job := submitBatch(t, cl, small)
		waitDone(t, cl, job.ID, time.Minute)
		ids = append(ids, job.ID)
	}
	// Retention cap 2: the two oldest finished jobs are gone, newest remain.
	if _, err := cl.GetJob(context.Background(), ids[0]); !api.IsNotFound(err) {
		t.Errorf("oldest job survived eviction (err %v)", err)
	}
	if _, err := cl.GetJob(context.Background(), ids[3]); err != nil {
		t.Errorf("newest job evicted: %v", err)
	}
	list, err := cl.ListJobs(context.Background(), client.ListJobsOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(list.Jobs) > 2 {
		t.Errorf("job list holds %d entries, retention cap is 2", len(list.Jobs))
	}
}

func TestJobCancellation(t *testing.T) {
	if testing.Short() {
		t.Skip("runs coupled-field simulations")
	}
	_, cl := newTestServer(t, NewServer(1))
	ctx := context.Background()

	// A long streaming Monte Carlo job: hundreds of samples, so the cancel
	// lands mid-ensemble.
	big := &api.Batch{
		Name: "cancel-me",
		Scenarios: []api.Scenario{{
			Name: "mc-long",
			Chip: api.ChipSpec{HMaxM: 0.8e-3, ActivePairs: []int{0}},
			Sim:  tinySim(),
			UQ:   api.UQSpec{Method: api.MethodMonteCarlo, Samples: 2000, Seed: 1, Stream: true},
		}},
	}
	job := submitBatch(t, cl, big)

	// Wait until it is actually running before canceling, so the test
	// exercises the mid-run path (the queued path is covered by timing
	// races either way).
	deadline := time.Now().Add(time.Minute)
	for time.Now().Before(deadline) {
		j, err := cl.GetJob(ctx, job.ID)
		if err != nil {
			t.Fatal(err)
		}
		if j.Status == api.JobRunning {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if _, err := cl.CancelJob(ctx, job.ID); err != nil {
		t.Fatalf("cancel: %v", err)
	}
	done := waitDone(t, cl, job.ID, time.Minute)
	if done.Status != api.JobCanceled {
		t.Fatalf("job finished as %s (%s), want canceled", done.Status, done.Error)
	}
	if done.FinishedAt == nil {
		t.Error("canceled job missing finish timestamp")
	}

	// Canceling a finished job conflicts; canceling an unknown one 404s.
	if _, err := cl.CancelJob(ctx, job.ID); !api.IsConflict(err) {
		t.Errorf("second cancel error %v, want 409 conflict", err)
	}
	if _, err := cl.CancelJob(ctx, "job-999999"); !api.IsNotFound(err) {
		t.Errorf("unknown cancel error %v, want 404", err)
	}

	// The server stays healthy and accepts new work after a cancel.
	job2 := submitBatch(t, cl, tinyBatch())
	if done2 := waitDone(t, cl, job2.ID, 3*time.Minute); done2.Status != api.JobDone {
		t.Fatalf("post-cancel job finished as %s (%s)", done2.Status, done2.Error)
	}
}

func TestUnknownJob(t *testing.T) {
	_, cl := newTestServer(t, NewServer(1))
	if _, err := cl.GetJob(context.Background(), "job-999999"); !api.IsNotFound(err) {
		t.Errorf("unknown job returned %v, want 404 problem", err)
	}
}

func TestPresetsEndpoint(t *testing.T) {
	_, cl := newTestServer(t, NewServer(1))
	b, err := cl.Presets(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Scenarios) < 8 {
		t.Errorf("served presets cover %d scenarios, want ≥ 8", len(b.Scenarios))
	}
	// The served suite must itself be a valid submission, both through the
	// wire validator and the engine's deep validator.
	if err := b.Validate(); err != nil {
		t.Errorf("served presets invalid on the wire: %v", err)
	}
	internal, err := apiconv.BatchToInternal(b)
	if err != nil {
		t.Fatalf("served presets do not fit the wire contract: %v", err)
	}
	if err := internal.Validate(); err != nil {
		t.Errorf("served presets invalid: %v", err)
	}
}

func TestHealthz(t *testing.T) {
	_, cl := newTestServer(t, NewServer(1))
	h, err := cl.Health(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" {
		t.Errorf("health status %q", h.Status)
	}
}

// TestListPagination walks GET /v1/jobs with limit/cursor through the SDK:
// newest first, stable page boundaries, empty cursor at the end.
func TestListPagination(t *testing.T) {
	ts, cl := newTestServer(t, NewServer(1))
	ctx := context.Background()

	quick := &api.Batch{Scenarios: []api.Scenario{{
		Name: "pair", Chip: api.ChipSpec{HMaxM: 0.8e-3, ActivePairs: []int{0}}, Sim: tinySim(),
	}}}

	// The first submission goes over raw HTTP to pin the 202 + Location
	// contract the SDK abstracts away.
	raw, err := json.Marshal(quick)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	var first api.Job
	if err := json.NewDecoder(resp.Body).Decode(&first); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d, want 202", resp.StatusCode)
	}
	if loc := resp.Header.Get("Location"); loc != api.JobPath(first.ID) {
		t.Errorf("Location header %q, want %q", loc, api.JobPath(first.ID))
	}
	if v := resp.Header.Get(api.VersionHeader); v != api.APIVersion {
		t.Errorf("version header %q, want %q", v, api.APIVersion)
	}

	ids := []string{first.ID}
	for i := 0; i < 4; i++ {
		ids = append(ids, submitBatch(t, cl, quick).ID)
	}
	// Cancel everything immediately: pagination needs jobs, not results.
	for _, id := range ids {
		if _, err := cl.CancelJob(ctx, id); err != nil && !api.IsConflict(err) {
			t.Fatalf("cancel %s: %v", id, err)
		}
	}

	var walked []string
	cursor := ""
	pages := 0
	for {
		list, err := cl.ListJobs(ctx, client.ListJobsOptions{Limit: 2, Cursor: cursor})
		if err != nil {
			t.Fatal(err)
		}
		if len(list.Jobs) > 2 {
			t.Fatalf("page holds %d jobs, limit is 2", len(list.Jobs))
		}
		for _, j := range list.Jobs {
			walked = append(walked, j.ID)
		}
		pages++
		if list.NextCursor == "" {
			break
		}
		cursor = list.NextCursor
		if pages > 10 {
			t.Fatal("cursor walk does not terminate")
		}
	}
	if len(walked) != len(ids) {
		t.Fatalf("walked %d jobs, submitted %d", len(walked), len(ids))
	}
	// Newest first across page boundaries: the reverse of submission order.
	for i, id := range walked {
		if want := ids[len(ids)-1-i]; id != want {
			t.Errorf("walk position %d: got %s, want %s", i, id, want)
		}
	}

	// Bad pagination parameters are 400 problems.
	for _, q := range []string{"?limit=0", "?limit=x", "?cursor=nope"} {
		resp, err := http.Get(ts.URL + "/v1/jobs" + q)
		if err != nil {
			t.Fatal(err)
		}
		problem := decodeProblem(t, resp)
		if resp.StatusCode != http.StatusBadRequest || problem.Code != api.CodeValidation {
			t.Errorf("%s: status %d code %q, want 400 %q", q, resp.StatusCode, problem.Code, api.CodeValidation)
		}
	}
}

// decodeProblem reads a problem+json body, failing the test when the
// response does not carry the uniform error envelope.
func decodeProblem(t *testing.T, resp *http.Response) *api.Error {
	t.Helper()
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != api.ProblemContentType {
		t.Errorf("%s %s: error content type %q, want %q",
			resp.Request.Method, resp.Request.URL.Path, ct, api.ProblemContentType)
	}
	var e api.Error
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatalf("error body is not problem json: %v", err)
	}
	if e.Status != resp.StatusCode {
		t.Errorf("problem status %d != HTTP status %d", e.Status, resp.StatusCode)
	}
	if e.Title == "" {
		t.Error("problem has no title")
	}
	return &e
}
