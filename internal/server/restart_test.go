package server

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"etherm/api"
	"etherm/client"
)

// openPersistent opens a persistent server on dir behind an httptest
// listener, returning a closer that tears the incarnation down in order.
func openPersistent(t *testing.T, dir string, history int) (*client.Client, func()) {
	t.Helper()
	srv, err := New(Config{MaxConcurrent: 1, MaxHistory: history, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	closed := false
	closer := func() {
		if closed {
			return
		}
		closed = true
		ts.Close()
		if err := srv.Close(); err != nil {
			t.Errorf("close store: %v", err)
		}
	}
	t.Cleanup(closer)
	return client.New(ts.URL), closer
}

// submitCanceled submits a tiny job and cancels it straight away — the
// cheapest way to mint terminal history entries — then waits for the
// terminal state so ordering and timestamps are settled.
func submitCanceled(t *testing.T, cl *client.Client) *api.Job {
	t.Helper()
	ctx := context.Background()
	job := submitBatch(t, cl, &api.Batch{Scenarios: []api.Scenario{{
		Name: "pair", Chip: api.ChipSpec{HMaxM: 0.8e-3, ActivePairs: []int{0}}, Sim: tinySim(),
	}}})
	if _, err := cl.CancelJob(ctx, job.ID); err != nil && !api.IsConflict(err) {
		t.Fatalf("cancel %s: %v", job.ID, err)
	}
	return waitDone(t, cl, job.ID, time.Minute)
}

// walkJobs pages through GET /v1/jobs with the given limit and returns the
// concatenated ID sequence.
func walkJobs(t *testing.T, cl *client.Client, limit int, cursor string) []string {
	t.Helper()
	var ids []string
	for pages := 0; ; pages++ {
		if pages > 50 {
			t.Fatal("cursor walk does not terminate")
		}
		list, err := cl.ListJobs(context.Background(), client.ListJobsOptions{Limit: limit, Cursor: cursor})
		if err != nil {
			t.Fatal(err)
		}
		for _, j := range list.Jobs {
			ids = append(ids, j.ID)
		}
		if list.NextCursor == "" {
			return ids
		}
		cursor = list.NextCursor
	}
}

func equalIDs(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestRestartSurvivesPaginationAndEviction proves the listing contract
// holds across a process restart on a persistent store: the cursor walk
// reproduces the exact pre-restart order, a cursor handed out before the
// restart stays valid after it, MaxHistory eviction keeps biting on
// recovered history, and job IDs never regress — even when the jobs that
// once held the high IDs were evicted long ago.
func TestRestartSurvivesPaginationAndEviction(t *testing.T) {
	if testing.Short() {
		t.Skip("starts coupled-field jobs")
	}
	dir := t.TempDir()
	ctx := context.Background()
	const history = 6

	cl1, close1 := openPersistent(t, dir, history)
	var ids []string
	for i := 0; i < 9; i++ {
		ids = append(ids, submitCanceled(t, cl1).ID)
	}

	// Nine terminal jobs against a retention cap of six: the oldest three
	// are already gone before the restart.
	before := walkJobs(t, cl1, 2, "")
	if len(before) != history {
		t.Fatalf("pre-restart walk holds %d jobs, retention cap is %d", len(before), history)
	}
	// Keep a live cursor across the restart boundary: first page of three,
	// remember where it stopped.
	firstPage, err := cl1.ListJobs(ctx, client.ListJobsOptions{Limit: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(firstPage.Jobs) != 3 || firstPage.NextCursor == "" {
		t.Fatalf("short first page: %d jobs, cursor %q", len(firstPage.Jobs), firstPage.NextCursor)
	}
	restBefore := walkJobs(t, cl1, 3, firstPage.NextCursor)
	close1()

	cl2, _ := openPersistent(t, dir, history)

	// The full walk reproduces the pre-restart order exactly.
	after := walkJobs(t, cl2, 2, "")
	if !equalIDs(after, before) {
		t.Errorf("walk changed across restart:\n %v\nvs\n %v", after, before)
	}
	// The cursor minted by the previous incarnation resumes cleanly.
	restAfter := walkJobs(t, cl2, 3, firstPage.NextCursor)
	if !equalIDs(restAfter, restBefore) {
		t.Errorf("pre-restart cursor walks differently:\n %v\nvs\n %v", restAfter, restBefore)
	}
	// Terminal details survived: the newest job is still canceled, with
	// its finish timestamp.
	last, err := cl2.GetJob(ctx, ids[len(ids)-1])
	if err != nil {
		t.Fatal(err)
	}
	if last.Status != api.JobCanceled || last.FinishedAt == nil {
		t.Errorf("recovered job %s: status %s, finishedAt %v", last.ID, last.Status, last.FinishedAt)
	}
	// Evicted jobs stayed evicted.
	if _, err := cl2.GetJob(ctx, ids[0]); !api.IsNotFound(err) {
		t.Errorf("evicted job %s resurrected by restart (err %v)", ids[0], err)
	}

	// New work continues the ID sequence — the persisted counter, not the
	// surviving records, is the source of truth, so no recovered or future
	// job can collide with an evicted ID.
	next := submitCanceled(t, cl2)
	if next.ID <= ids[len(ids)-1] {
		t.Errorf("job ID regressed after restart: %s after %s", next.ID, ids[len(ids)-1])
	}
	// And eviction keeps rolling on the recovered history: the oldest
	// recovered entry falls out once newer terminals push past the cap.
	evictee := before[len(before)-1]
	for i := 0; i < history; i++ {
		submitCanceled(t, cl2)
	}
	if _, err := cl2.GetJob(ctx, evictee); !api.IsNotFound(err) {
		t.Errorf("recovered job %s not evicted by post-restart history (err %v)", evictee, err)
	}
	if got := walkJobs(t, cl2, 4, ""); len(got) > history+1 {
		t.Errorf("post-restart walk holds %d jobs, cap is %d", len(got), history)
	}
}
