package server

import (
	"context"
	"testing"
	"time"

	"etherm/api"
)

// TestRareJobOverServerAPI drives a failure_probability campaign end to
// end through the HTTP API using only the SDK: submit the rare scenario,
// follow its per-level SSE progress (the "level" event type), and read the
// failure-probability estimate with its level telemetry off the finished
// job. The threshold sits below the operating temperature so the subset
// run converges in its first level — the statistical depth of the
// estimator is covered by internal/rare and internal/scenario; this test
// pins the serving contract.
func TestRareJobOverServerAPI(t *testing.T) {
	if testing.Short() {
		t.Skip("runs coupled-field simulations")
	}
	_, cl := newTestServer(t, NewServer(1))
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()

	batch := &api.Batch{
		Name: "rare-sse",
		Scenarios: []api.Scenario{{
			Name: "rare",
			Chip: api.ChipSpec{HMaxM: 0.8e-3, ActivePairs: []int{0}},
			Sim:  tinySim(),
			UQ: api.UQSpec{
				Mode:         api.ModeFailureProbability,
				LevelSamples: 20,
				Seed:         3,
				CriticalK:    305, // barely above ambient: P ≈ 1, one level
			},
		}},
	}
	job := submitBatch(t, cl, batch)

	events, errc := cl.WatchJob(ctx, job.ID)
	var levelEvents []api.JobEvent
	for ev := range events {
		if ev.Type == api.EventLevel {
			levelEvents = append(levelEvents, ev)
		}
	}
	if err := <-errc; err != nil {
		t.Fatalf("watch: %v", err)
	}
	if len(levelEvents) == 0 {
		t.Fatal("observed no level events")
	}
	for _, ev := range levelEvents {
		if ev.Scenario != "rare" || ev.Done < 1 || ev.Total < ev.Done {
			t.Errorf("level event incomplete: %+v", ev)
		}
		if ev.Level == nil {
			t.Fatalf("level event has no telemetry payload: %+v", ev)
		}
		if ev.Level.ThresholdK <= 0 || ev.Level.Evals <= 0 {
			t.Errorf("level telemetry implausible: %+v", *ev.Level)
		}
	}

	final, err := cl.GetJob(ctx, job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.Status != api.JobDone || final.Result == nil {
		t.Fatalf("job not done: %s (%s)", final.Status, final.Error)
	}
	s := final.Result.Scenarios[0]
	if !s.OK {
		t.Fatalf("rare scenario failed: %s", s.Error)
	}
	if s.Method != api.ModeFailureProbability || s.RareEstimator != api.EstimatorSubset {
		t.Errorf("method %q estimator %q", s.Method, s.RareEstimator)
	}
	if s.PFail == nil {
		t.Fatal("rare result has no p_fail")
	}
	if *s.PFail <= 0 || *s.PFail > 1 {
		t.Fatalf("p_fail %g outside (0, 1]", *s.PFail)
	}
	if len(s.RareLevels) != len(levelEvents) {
		t.Errorf("%d levels in the result, %d level events on the stream", len(s.RareLevels), len(levelEvents))
	}
	if !s.RareConverged {
		t.Errorf("subset run below the operating temperature did not converge")
	}
}

// TestRareSubmitValidation checks that a malformed rare spec is rejected
// at submission with a structured 4xx, not accepted and failed later.
func TestRareSubmitValidation(t *testing.T) {
	_, cl := newTestServer(t, NewServer(1))
	ctx := context.Background()
	b := &api.Batch{Scenarios: []api.Scenario{{
		Name: "bad",
		Sim:  tinySim(),
		UQ: api.UQSpec{
			Mode:   api.ModeFailureProbability,
			Method: api.MethodMonteCarlo, // excluded in rare mode
		},
	}}}
	if _, err := cl.SubmitBatch(ctx, b); err == nil {
		t.Fatal("rare spec with a sampling method accepted")
	}
}
