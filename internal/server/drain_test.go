package server

import (
	"context"
	"net/http"
	"sync/atomic"
	"testing"
	"time"

	"etherm/api"
	"etherm/client"
	"etherm/internal/jobstore"
)

// Graceful drain: a draining server sheds every submission with a
// retryable 503 problem while reads keep working.
func TestDrainShedsSubmissions(t *testing.T) {
	srv := NewServer(1)
	_, cl := newTestServer(t, srv)
	ctx := context.Background()

	if err := srv.Drain(ctx); err != nil {
		t.Fatalf("drain of an idle server: %v", err)
	}
	if !srv.Draining() {
		t.Fatal("Draining() false after Drain")
	}

	// The SDK would retry the shedding 503 (honoring Retry-After);
	// disable retries to assert on the rejection itself.
	cl0 := client.New(cl.BaseURL(), client.WithRetry(1, time.Millisecond))
	_, err := cl0.SubmitBatch(ctx, tinyBatch())
	if !api.IsDraining(err) {
		t.Fatalf("batch submission during drain: got %v, want a draining rejection", err)
	}
	if !api.IsShedding(err) {
		t.Errorf("draining rejection must be shedding (safe to retry), got %v", err)
	}
	e, ok := api.AsError(err)
	if !ok || e.Status != http.StatusServiceUnavailable || e.RetryAfterS <= 0 {
		t.Errorf("draining rejection should be 503 with a Retry-After hint, got %+v", e)
	}

	_, err = cl0.SubmitFleetJob(ctx, crashScenario())
	if !api.IsDraining(err) {
		t.Fatalf("fleet submission during drain: got %v, want a draining rejection", err)
	}

	// Reads survive the drain: listing and health must still answer.
	if _, err := cl.ListJobs(ctx, client.ListJobsOptions{}); err != nil {
		t.Errorf("list during drain: %v", err)
	}
	if _, err := cl.Health(ctx); err != nil {
		t.Errorf("health during drain: %v", err)
	}
}

// The hub broadcast: every subscribed watcher gets an explicit terminal
// shutdown frame, and the frame is NOT a job-terminal event (the job is
// still alive; only the stream ends).
func TestHubShutdownBroadcast(t *testing.T) {
	h := newEventHub()
	sub := h.subscribe("job-000042")
	h.shutdown()
	evs := sub.drain()
	if len(evs) != 1 || evs[0].Type != api.EventShutdown {
		t.Fatalf("queued events after shutdown = %+v, want one shutdown event", evs)
	}
	if evs[0].JobID != "job-000042" {
		t.Errorf("shutdown event names job %q", evs[0].JobID)
	}
	if evs[0].Terminal() {
		t.Error("shutdown event must not read as job-terminal (the job is not done)")
	}
}

// A fleet watcher (poll-driven, no queue for the broadcast to land in)
// still receives the shutdown frame: the watch loop checks the draining
// flag every tick.
func TestDrainEndsFleetWatchWithShutdownEvent(t *testing.T) {
	srv := NewServer(1)
	_, cl := newTestServer(t, srv)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	// No workers are connected, so the fleet job idles under leases and
	// the watch stream stays open until the drain ends it.
	fj, err := cl.SubmitFleetJob(ctx, crashScenario())
	if err != nil {
		t.Fatalf("submit fleet job: %v", err)
	}
	events, errc := cl.WatchJob(ctx, fj.ID)

	// First frame is the status snapshot; drain after it to be sure the
	// stream is established.
	first, ok := <-events
	if !ok {
		t.Fatalf("stream closed before the snapshot: %v", <-errc)
	}
	if first.Type != api.EventStatus {
		t.Fatalf("first frame %+v, want the status snapshot", first)
	}
	if err := srv.Drain(context.Background()); err != nil {
		t.Fatalf("drain: %v", err)
	}

	var last api.JobEvent
	for ev := range events {
		last = ev
	}
	if last.Type != api.EventShutdown {
		t.Fatalf("stream ended with %+v, want an explicit shutdown event", last)
	}
	// The SDK reports the early stream end so WaitJob falls back to
	// polling (the job is not terminal).
	if err := <-errc; err == nil {
		t.Error("watch of a non-terminal job ended without error; WaitJob would misread the job as done")
	}
}

// Drain with an expired deadline cancels in-flight jobs instead of
// waiting; they land in a terminal canceled state with their records
// persisted.
func TestDrainTimeoutCancelsRunningJobs(t *testing.T) {
	if testing.Short() {
		t.Skip("runs coupled-field simulations")
	}
	srv := NewServer(1)
	_, cl := newTestServer(t, srv)
	ctx := context.Background()

	job := submitBatch(t, cl, tinyBatch())
	expired, cancel := context.WithCancel(context.Background())
	cancel()
	if err := srv.Drain(expired); err == nil {
		t.Fatal("drain with expired deadline over a live job should report the timeout")
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		j, err := cl.GetJob(ctx, job.ID)
		if err != nil {
			t.Fatalf("get after drain: %v", err)
		}
		if j.Status.Finished() {
			if j.Status != api.JobCanceled && j.Status != api.JobDone {
				t.Fatalf("job finished as %s after drain cancel", j.Status)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job still %s long after drain cancel", j.Status)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// flakyStore fails Puts on demand — the degraded-mode switch.
type flakyStore struct {
	jobstore.Store
	fail atomic.Bool
}

func (f *flakyStore) Put(kind, id string, data []byte, c jobstore.Counters) error {
	if f.fail.Load() {
		return &failedWrite{}
	}
	return f.Store.Put(kind, id, data, c)
}

type failedWrite struct{}

func (*failedWrite) Error() string { return "injected: disk full" }

// Degraded mode: when the store cannot persist a submission, the
// submission is shed with a retryable 503 — acknowledged-then-lost is the
// one behavior the durability contract forbids — and the server heals
// itself on the first successful write.
func TestDegradedModeShedsAndRecovers(t *testing.T) {
	fs := &flakyStore{Store: jobstore.NewMem()}
	srv, err := New(Config{MaxConcurrent: 1, Store: fs})
	if err != nil {
		t.Fatal(err)
	}
	_, cl := newTestServer(t, srv)
	ctx := context.Background()

	fs.fail.Store(true)
	cl0 := client.New(cl.BaseURL(), client.WithRetry(1, time.Millisecond))
	_, err = cl0.SubmitBatch(ctx, tinyBatch())
	if !api.IsDegraded(err) {
		t.Fatalf("submission with failing store: got %v, want a degraded rejection", err)
	}
	if !api.IsShedding(err) {
		t.Errorf("degraded rejection must be shedding (safe to retry), got %v", err)
	}
	if e, ok := api.AsError(err); !ok || e.Status != http.StatusServiceUnavailable || e.RetryAfterS <= 0 {
		t.Errorf("degraded rejection should be 503 with a Retry-After hint, got %+v", e)
	}
	if !srv.degraded.Load() {
		t.Error("degraded latch not set after a failed persist")
	}
	// The shed submission must leave no trace: no job record, no leaked
	// sequence number.
	if list, err := cl.ListJobs(ctx, client.ListJobsOptions{}); err != nil || len(list.Jobs) != 0 {
		t.Fatalf("shed submission left state behind: jobs=%v err=%v", list, err)
	}

	fs.fail.Store(false)
	job, err := cl.SubmitBatch(ctx, tinyBatch())
	if err != nil {
		t.Fatalf("submission after store recovery: %v", err)
	}
	if job.ID != "job-000001" {
		t.Errorf("first accepted job is %s; the shed submission leaked a sequence number", job.ID)
	}
	if srv.degraded.Load() {
		t.Error("degraded latch not cleared by the successful persist")
	}
	if _, err := cl.CancelJob(ctx, job.ID); err != nil {
		t.Logf("cancel cleanup: %v", err) // may already be running/finished
	}
}
