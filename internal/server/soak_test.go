package server

import (
	"context"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"etherm/api"
)

// TestEventHubSoak1kWatchers is the fan-out soak of the SSE hub, meant to
// run under -race: a thousand concurrent watchers — a quarter of them
// deliberately slow consumers — attach to one streaming Monte Carlo job.
// Publishing must never block on the slow quarter (per-subscriber queues
// are bounded by sample coalescing), every single watcher must receive
// the terminal event, and when the streams close the hub and the
// goroutine count must return to baseline — no leaked watcher goroutines.
func TestEventHubSoak1kWatchers(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a streaming ensemble with 1000 SSE watchers")
	}
	const nWatchers = 1000
	srv := NewServer(1)
	_, cl := newTestServer(t, srv)
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()
	baseline := runtime.NumGoroutine()

	// A long streaming ensemble: sample events keep flowing the whole time
	// the watcher pool is attaching, so coalescing is actually exercised.
	job := submitBatch(t, cl, &api.Batch{
		Name: "soak",
		Scenarios: []api.Scenario{{
			Name: "mc-soak",
			Chip: api.ChipSpec{HMaxM: 0.8e-3, ActivePairs: []int{0}},
			Sim:  tinySim(),
			UQ:   api.UQSpec{Method: api.MethodMonteCarlo, Samples: 100000, Seed: 3, Stream: true},
		}},
	})

	var (
		terminals    atomic.Int64
		dropped      atomic.Int64
		watchErrs    atomic.Int64
		sampleEvents atomic.Int64
		wg           sync.WaitGroup
	)
	for i := 0; i < nWatchers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			events, errc := cl.WatchJob(ctx, job.ID)
			slow := i%4 == 0
			terminal := false
			for ev := range events {
				if ev.Type == api.EventSample {
					sampleEvents.Add(1)
				}
				if ev.Terminal() {
					terminal = true
				}
				if slow {
					time.Sleep(2 * time.Millisecond)
				}
			}
			if err := <-errc; err != nil {
				watchErrs.Add(1)
				return
			}
			if terminal {
				terminals.Add(1)
			} else {
				dropped.Add(1)
			}
		}(i)
	}

	// Hold the pool fully connected before ending the job, so the terminal
	// event really fans out to 1000 live streams at once.
	deadline := time.Now().Add(time.Minute)
	for srv.hub.watcherCount() < nWatchers {
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d watchers connected", srv.hub.watcherCount(), nWatchers)
		}
		time.Sleep(10 * time.Millisecond)
	}
	// And hold it until samples are actually streaming through the full
	// pool (cold-cache assembly can outlast the attach phase).
	for sampleEvents.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no sample events reached the pool")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if _, err := cl.CancelJob(ctx, job.ID); err != nil {
		t.Fatalf("cancel: %v", err)
	}
	wg.Wait()

	if n := terminals.Load(); n != nWatchers {
		t.Errorf("terminal events received by %d of %d watchers", n, nWatchers)
	}
	if n := dropped.Load(); n != 0 {
		t.Errorf("%d watchers saw their stream close without a terminal event", n)
	}
	if n := watchErrs.Load(); n != 0 {
		t.Errorf("%d watch streams errored", n)
	}
	if sampleEvents.Load() == 0 {
		t.Error("no sample events flowed while the pool was attached")
	}

	// Every stream closed: the hub must be empty again.
	for srv.hub.watcherCount() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("%d watchers still registered after all streams closed", srv.hub.watcherCount())
		}
		time.Sleep(10 * time.Millisecond)
	}

	// And the goroutines must drain — a leak here is exactly the kind of
	// bug a soak exists to catch. Idle keep-alive connections hold transport
	// goroutines, so flush them before judging.
	if tr, ok := http.DefaultTransport.(*http.Transport); ok {
		tr.CloseIdleConnections()
	}
	var ng int
	for {
		runtime.GC()
		if ng = runtime.NumGoroutine(); ng <= baseline+50 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines did not settle: %d now vs %d baseline", ng, baseline)
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Logf("soak: %d watchers, %d sample events observed, goroutines %d→%d",
		nWatchers, sampleEvents.Load(), baseline, ng)
}
