package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"etherm/api"
	"etherm/internal/fleet"
)

// eventHub fans job progress events out to SSE subscribers. Publishing
// never blocks on a slow consumer: events queue per subscriber and
// consecutive sample events of the same scenario coalesce (watchers see
// the latest count, not every increment), so a stalled client cannot back
// up the scenario engine's event path.
type eventHub struct {
	mu   sync.Mutex
	subs map[string]map[*eventSub]struct{}
	// watchers counts open SSE streams (batch and fleet watchers both),
	// exposed via /metrics and /healthz.
	watchers atomic.Int64
	// draining flips when the server drains: fleet watch loops end their
	// streams with a shutdown event at the next poll tick (batch watchers
	// get theirs pushed through their queues).
	draining atomic.Bool
}

// watcherCount returns the number of open SSE streams.
func (h *eventHub) watcherCount() int64 { return h.watchers.Load() }

// eventSub is one watcher's queue.
type eventSub struct {
	mu       sync.Mutex
	queue    []api.JobEvent
	sampleAt map[string]int // scenario → queue index of its pending sample event
	notify   chan struct{}  // 1-slot wakeup
}

func newEventHub() *eventHub {
	return &eventHub{subs: make(map[string]map[*eventSub]struct{})}
}

// subscribe registers a watcher for one job's events.
func (h *eventHub) subscribe(jobID string) *eventSub {
	sub := &eventSub{notify: make(chan struct{}, 1)}
	h.mu.Lock()
	if h.subs[jobID] == nil {
		h.subs[jobID] = make(map[*eventSub]struct{})
	}
	h.subs[jobID][sub] = struct{}{}
	h.mu.Unlock()
	return sub
}

// unsubscribe removes a watcher.
func (h *eventHub) unsubscribe(jobID string, sub *eventSub) {
	h.mu.Lock()
	if set := h.subs[jobID]; set != nil {
		delete(set, sub)
		if len(set) == 0 {
			delete(h.subs, jobID)
		}
	}
	h.mu.Unlock()
}

// shutdown broadcasts the graceful-drain event to every open stream: each
// batch subscriber gets an EventShutdown queued (the watch loop writes it
// and ends the stream), and the draining flag makes fleet watch loops do
// the same at their next poll. After shutdown, no SSE stream dangles into
// the listener teardown — every watcher sees an explicit final frame.
func (h *eventHub) shutdown() {
	h.draining.Store(true)
	h.mu.Lock()
	for id, set := range h.subs {
		for sub := range set {
			sub.push(api.JobEvent{Type: api.EventShutdown, JobID: id})
		}
	}
	h.mu.Unlock()
}

// publish queues ev on every subscriber of the job.
func (h *eventHub) publish(jobID string, ev api.JobEvent) {
	h.mu.Lock()
	for sub := range h.subs[jobID] {
		sub.push(ev)
	}
	h.mu.Unlock()
}

// push enqueues one event and wakes the subscriber. Sample events
// coalesce per scenario — a pending one is overwritten in place — so the
// queue of a slow watcher is bounded by the batch size (one sample slot
// per scenario plus the finite lifecycle events), even with many
// concurrent streaming scenarios interleaving their progress.
func (s *eventSub) push(ev api.JobEvent) {
	s.mu.Lock()
	if ev.Type == api.EventSample {
		if i, ok := s.sampleAt[ev.Scenario]; ok {
			s.queue[i] = ev
			s.mu.Unlock()
			s.wake()
			return
		}
		if s.sampleAt == nil {
			s.sampleAt = make(map[string]int)
		}
		s.sampleAt[ev.Scenario] = len(s.queue)
	}
	s.queue = append(s.queue, ev)
	s.mu.Unlock()
	s.wake()
}

func (s *eventSub) wake() {
	select {
	case s.notify <- struct{}{}:
	default:
	}
}

// drain takes the queued events.
func (s *eventSub) drain() []api.JobEvent {
	s.mu.Lock()
	out := s.queue
	s.queue = nil
	s.sampleAt = nil
	s.mu.Unlock()
	return out
}

// sseKeepalive is the idle comment interval of an event stream.
const sseKeepalive = 15 * time.Second

// fleetPollInterval is how often the SSE handler samples the coordinator
// state of a fleet job (the pull-based fleet protocol has no push source).
const fleetPollInterval = 150 * time.Millisecond

// handleEvents serves GET /v1/jobs/{id}/events: a server-sent-event stream
// of the job's progress (api.JobEvent frames) that opens with a status
// snapshot and closes after the terminal status event. Batch jobs stream
// live engine events (scenario completions, streaming-campaign sample
// counts); fleet job IDs fall through to a coordinator watch emitting
// shard progress.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	flusher, ok := w.(http.Flusher)
	if !ok {
		api.WriteError(w, r, api.NewError(http.StatusInternalServerError, api.CodeInternal,
			"response writer does not support streaming"))
		return
	}
	if s.snapshot(id) != nil {
		s.watchBatchJob(w, r, flusher, id)
		return
	}
	if _, isFleet := s.coord.Job(id); isFleet {
		s.watchFleetJob(w, r, flusher, id)
		return
	}
	api.WriteError(w, r, api.Errorf(http.StatusNotFound, api.CodeNotFound, "no such job %s", id))
}

// sseHeaders switches the response into an event stream.
func sseHeaders(w http.ResponseWriter) {
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no") // defeat buffering proxies
	w.WriteHeader(http.StatusOK)
}

// writeEvent renders one SSE frame.
func writeEvent(w http.ResponseWriter, flusher http.Flusher, ev api.JobEvent) error {
	data, err := json.Marshal(ev)
	if err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Type, data); err != nil {
		return err
	}
	flusher.Flush()
	return nil
}

// watchBatchJob subscribes to the hub and streams events until the job
// terminates or the client goes away. Subscribing before snapshotting
// closes the race with a job finishing in between: the terminal transition
// is then either in the snapshot or in the queue.
func (s *Server) watchBatchJob(w http.ResponseWriter, r *http.Request, flusher http.Flusher, id string) {
	s.hub.watchers.Add(1)
	defer s.hub.watchers.Add(-1)
	sub := s.hub.subscribe(id)
	defer s.hub.unsubscribe(id, sub)

	j := s.snapshot(id)
	if j == nil { // evicted between route and subscribe
		api.WriteError(w, r, api.Errorf(http.StatusNotFound, api.CodeNotFound, "no such job %s", id))
		return
	}
	sseHeaders(w)
	snap := statusEvent(j)
	if err := writeEvent(w, flusher, snap); err != nil || snap.Terminal() {
		return
	}
	// A watcher arriving after the drain broadcast would miss it (the
	// broadcast only reaches subscribers that existed then): close the
	// race by ending the fresh stream with its own shutdown event.
	if s.hub.draining.Load() {
		_ = writeEvent(w, flusher, api.JobEvent{Type: api.EventShutdown, JobID: id})
		return
	}

	keepalive := time.NewTicker(sseKeepalive)
	defer keepalive.Stop()
	for {
		select {
		case <-r.Context().Done():
			return
		case <-keepalive.C:
			if _, err := fmt.Fprint(w, ": keepalive\n\n"); err != nil {
				return
			}
			flusher.Flush()
		case <-sub.notify:
			for _, ev := range sub.drain() {
				if err := writeEvent(w, flusher, ev); err != nil {
					return
				}
				// Terminal status and drain shutdown both end the stream;
				// only the former means the job is done.
				if ev.Terminal() || ev.Type == api.EventShutdown {
					return
				}
			}
		}
	}
}

// watchFleetJob polls the coordinator and emits shard-progress deltas as
// events, closing with the terminal status. The fleet protocol is pull
// based (workers poll leases), so a short poll here is the push adapter.
// The events only need the view's counters, so no wire conversion happens
// on the poll path; idle stretches carry keepalive comments like the
// batch stream.
func (s *Server) watchFleetJob(w http.ResponseWriter, r *http.Request, flusher http.Flusher, id string) {
	s.hub.watchers.Add(1)
	defer s.hub.watchers.Add(-1)
	sseHeaders(w)
	lastDone := -1
	first := true
	lastWrite := time.Now()
	ticker := time.NewTicker(fleetPollInterval)
	defer ticker.Stop()
	for {
		// The fleet stream is poll-driven, so the drain broadcast cannot
		// reach it through a queue; the flag check at each tick ends the
		// stream with the same explicit shutdown frame batch watchers get.
		if s.hub.draining.Load() {
			_ = writeEvent(w, flusher, api.JobEvent{Type: api.EventShutdown, JobID: id})
			return
		}
		fv, ok := s.coord.Job(id)
		if !ok {
			// Evicted mid-watch: nothing more will happen; end the stream.
			return
		}
		terminal := fv.Status != fleet.JobRunning
		ev := api.JobEvent{
			JobID: fv.ID, Status: api.JobStatus(fv.Status),
			ShardsDone: fv.ShardsDone, ShardsTotal: len(fv.Shards),
		}
		switch {
		case first || terminal:
			ev.Type = api.EventStatus
			ev.Error = fv.Error
		case fv.ShardsDone != lastDone:
			ev.Type = api.EventShards
		default:
			ev.Type = ""
		}
		if ev.Type != "" {
			if err := writeEvent(w, flusher, ev); err != nil {
				return
			}
			lastWrite = time.Now()
		}
		if terminal {
			return
		}
		first = false
		lastDone = fv.ShardsDone
		if time.Since(lastWrite) >= sseKeepalive {
			if _, err := fmt.Fprint(w, ": keepalive\n\n"); err != nil {
				return
			}
			flusher.Flush()
			lastWrite = time.Now()
		}
		select {
		case <-r.Context().Done():
			return
		case <-ticker.C:
		}
	}
}
