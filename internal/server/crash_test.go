package server

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"strings"
	"testing"
	"time"

	"etherm/api"
	"etherm/client"
	"etherm/internal/apiconv"
	"etherm/internal/fleet"
	"etherm/internal/scenario"
)

// crashChildEnv switches the re-executed test binary into server mode: it
// serves a persistent etserver on a loopback port until the parent test
// kills it — with SIGKILL, which is the point.
const crashChildEnv = "ETSERVER_CRASH_DIR"

func TestMain(m *testing.M) {
	if dir := os.Getenv(crashChildEnv); dir != "" {
		runCrashChild(dir)
		return
	}
	os.Exit(m.Run())
}

// runCrashChild is the child process: a real etserver over the durable
// store, indistinguishable from `etserver -data DIR` as far as recovery is
// concerned. It announces its address on stdout and serves until killed.
func runCrashChild(dir string) {
	srv, err := New(Config{
		MaxConcurrent: 1,
		MaxHistory:    64,
		LeaseTTL:      5 * time.Second,
		DataDir:       dir,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "crash child: %v\n", err)
		os.Exit(1)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fmt.Fprintf(os.Stderr, "crash child: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("LISTENING %s\n", ln.Addr())
	err = http.Serve(ln, srv.Handler())
	fmt.Fprintf(os.Stderr, "crash child: serve ended: %v\n", err)
	os.Exit(1)
}

// startCrashServer re-executes the test binary as a persistent etserver on
// dir and returns its base URL once it is accepting connections.
func startCrashServer(t *testing.T, dir string) (string, *exec.Cmd) {
	t.Helper()
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(), crashChildEnv+"="+dir)
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		_ = cmd.Process.Kill()
		_, _ = cmd.Process.Wait()
	})
	sc := bufio.NewScanner(stdout)
	for sc.Scan() {
		if addr, ok := strings.CutPrefix(sc.Text(), "LISTENING "); ok {
			go io.Copy(io.Discard, stdout) //nolint:errcheck // keep the pipe drained
			return "http://" + addr, cmd
		}
	}
	t.Fatalf("crash child exited before announcing an address: %v", sc.Err())
	return "", nil
}

// sigkill delivers an uncatchable SIGKILL and reaps the child — the crash
// the WAL exists for: no flush, no shutdown hook, no warning.
func sigkill(t *testing.T, cmd *exec.Cmd) {
	t.Helper()
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	_, _ = cmd.Process.Wait()
}

// crashScenario is the sharded Monte Carlo campaign the crash tests
// interrupt: 6 samples in blocks of 2 over 3 shards.
func crashScenario() *api.Scenario {
	return &api.Scenario{
		Name: "mc-crash",
		Chip: api.ChipSpec{HMaxM: 0.8e-3},
		Sim:  tinySim(),
		UQ: api.UQSpec{
			Method: api.MethodMonteCarlo, Samples: 6, Seed: 7,
			Shards: 3, ShardBlock: 2,
		},
	}
}

// canonicalInternal strips the context-dependent fields of a scenario
// result (timing, batch index, cache provenance) and renders the rest as
// JSON, so two runs can be compared bit-for-bit.
func canonicalInternal(t *testing.T, r *scenario.ScenarioResult) string {
	t.Helper()
	cp := *r
	cp.ElapsedS = 0
	cp.Index = 0
	cp.CacheHit = false
	data, err := json.Marshal(&cp)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// canonicalResult canonicalizes a wire scenario result for comparison
// against an engine-side run.
func canonicalResult(t *testing.T, r *api.ScenarioResult) string {
	t.Helper()
	internal, err := apiconv.ScenarioResultToInternal(r)
	if err != nil {
		t.Fatal(err)
	}
	return canonicalInternal(t, internal)
}

// TestCrashRecoverySIGKILL is the durability acceptance test: a real
// etserver process is killed with SIGKILL in the middle of a fleet
// campaign — one shard merged, one lease outstanding — and restarted on
// the same data directory. The finished batch job must survive with its
// result byte-identical, the merged shard must not be recomputed, the
// orphaned lease must be rejected as stale, and the resumed campaign must
// finish with a merge bit-identical to an uninterrupted single-process
// run.
func TestCrashRecoverySIGKILL(t *testing.T) {
	if testing.Short() {
		t.Skip("re-executes the test binary and runs coupled-field ensembles")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 4*time.Minute)
	defer cancel()
	dir := t.TempDir()

	// The uninterrupted reference: the same campaign through the engine's
	// local sharded path, no fleet, no crash.
	scen, err := apiconv.ScenarioToInternal(crashScenario())
	if err != nil {
		t.Fatal(err)
	}
	eng := scenario.NewEngine()
	ref, err := eng.Run(ctx, &scenario.Batch{Scenarios: []scenario.Scenario{scen}})
	if err != nil {
		t.Fatal(err)
	}
	if ref.FailedCount != 0 {
		t.Fatalf("local reference failed: %+v", ref.Failed())
	}
	want := canonicalInternal(t, ref.Scenarios[0])

	// Incarnation one: a finished batch job and a fleet campaign with one
	// shard merged and a second shard leased but never completed.
	url1, child1 := startCrashServer(t, dir)
	cl1 := client.New(url1)

	batchJob := submitBatch(t, cl1, tinyBatch())
	batchDone := waitDone(t, cl1, batchJob.ID, 2*time.Minute)
	if batchDone.Status != api.JobDone {
		t.Fatalf("batch job finished as %s (%s)", batchDone.Status, batchDone.Error)
	}
	batchResultBefore, err := json.Marshal(batchDone.Result)
	if err != nil {
		t.Fatal(err)
	}

	view, err := cl1.SubmitFleetJob(ctx, crashScenario())
	if err != nil {
		t.Fatal(err)
	}
	w := &fleet.Worker{Client: cl1, ID: "crash-worker", SampleWorkers: 2, Poll: 10 * time.Millisecond}
	if worked, err := w.RunOnce(ctx); err != nil || !worked {
		t.Fatalf("first shard: worked=%v err=%v", worked, err)
	}
	mid, err := cl1.GetFleetJob(ctx, view.ID)
	if err != nil {
		t.Fatal(err)
	}
	if mid.ShardsDone != 1 {
		t.Fatalf("shards done before crash = %d, want 1", mid.ShardsDone)
	}
	// Lease the next shard and compute it, but crash the coordinator
	// before the result is posted: the lease must survive the restart.
	orphan, ok, err := cl1.Lease(ctx, "outliving-worker")
	if err != nil || !ok {
		t.Fatalf("orphan lease: ok=%v err=%v", ok, err)
	}
	orphanRes, err := scenario.RunShard(ctx, scenario.NewCache(), scen, orphan.Shard, 2)
	if err != nil {
		t.Fatal(err)
	}
	orphanWire, err := apiconv.ShardResultToAPI(orphanRes)
	if err != nil {
		t.Fatal(err)
	}

	sigkill(t, child1)

	// Incarnation two: same directory, new port. Recovery must replay the
	// WAL, not re-run anything already merged.
	url2, _ := startCrashServer(t, dir)
	cl2 := client.New(url2)

	// The finished batch job survived byte-identical.
	batchAfter, err := cl2.GetJob(ctx, batchJob.ID)
	if err != nil {
		t.Fatalf("batch job lost across restart: %v", err)
	}
	if batchAfter.Status != api.JobDone || batchAfter.Result == nil {
		t.Fatalf("batch job recovered as %s (result %v)", batchAfter.Status, batchAfter.Result != nil)
	}
	batchResultAfter, err := json.Marshal(batchAfter.Result)
	if err != nil {
		t.Fatal(err)
	}
	if string(batchResultAfter) != string(batchResultBefore) {
		t.Errorf("batch result changed across restart:\n%s\nvs\n%s", batchResultAfter, batchResultBefore)
	}

	// The campaign survived with its merged shard intact.
	resumed, err := cl2.GetFleetJob(ctx, view.ID)
	if err != nil {
		t.Fatalf("fleet job lost across restart: %v", err)
	}
	if resumed.Status != api.JobRunning || resumed.ShardsDone != 1 {
		t.Fatalf("fleet job recovered as %s with %d shards done, want running/1",
			resumed.Status, resumed.ShardsDone)
	}

	// The outstanding lease was persisted with its absolute expiry, so the
	// coordinator restart is invisible to a live worker: its computed shard
	// posts successfully — and exactly once, because the consumed lease
	// then rejects a duplicate post (no double merge).
	if err := cl2.PostShardResult(ctx, orphan.LeaseID, orphanWire); err != nil {
		t.Fatalf("live lease rejected across restart: %v", err)
	}
	if err := cl2.PostShardResult(ctx, orphan.LeaseID, orphanWire); !api.IsLeaseLost(err) {
		t.Errorf("duplicate post under a consumed lease accepted: %v", err)
	}
	if j, err := cl2.GetFleetJob(ctx, view.ID); err != nil || j.ShardsDone != 2 {
		t.Fatalf("after cross-restart post: %d shards done (err %v), want 2", j.ShardsDone, err)
	}

	// A fresh worker drains the remaining shard.
	w2 := &fleet.Worker{Client: cl2, ID: "recovery-worker", SampleWorkers: 2, Poll: 10 * time.Millisecond}
	deadline := time.Now().Add(2 * time.Minute)
	for {
		final, err := cl2.GetFleetJob(ctx, view.ID)
		if err != nil {
			t.Fatal(err)
		}
		if final.Status != api.JobRunning {
			if final.Status != api.JobDone || final.Result == nil {
				t.Fatalf("resumed campaign finished as %s (%s)", final.Status, final.Error)
			}
			if got := canonicalResult(t, final.Result); got != want {
				t.Errorf("post-crash merge differs from uninterrupted run:\n%s\nvs\n%s", got, want)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("campaign did not finish after restart: %+v", final)
		}
		if _, err := w2.RunOnce(ctx); err != nil {
			t.Fatalf("recovery worker: %v", err)
		}
		time.Sleep(20 * time.Millisecond)
	}

	// ID counters were persisted: new work gets fresh IDs, not recycled
	// ones that would collide with recovered history.
	fresh, err := cl2.SubmitFleetJob(ctx, crashScenario())
	if err != nil {
		t.Fatal(err)
	}
	if fresh.ID == view.ID || fresh.ID < view.ID {
		t.Errorf("fleet ID %s reused or regressed after restart (previous %s)", fresh.ID, view.ID)
	}
}
