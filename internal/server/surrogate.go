package server

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"sort"
	"time"

	"etherm/api"
	"etherm/internal/apiconv"
	"etherm/internal/jobstore"
	"etherm/internal/panicsafe"
	"etherm/internal/scenario"
	"etherm/internal/surrogate"
)

// The surrogate serving path. POST /v1/surrogates accepts a build spec,
// fingerprints it into a content-addressed ID (resubmission of the same
// spec joins the existing build or returns the ready model), persists the
// accepted build before acking, and evaluates the sparse-grid design on
// the shared runner slots — a build competes with batch jobs for FEM
// capacity, never with queries. Queries are lock-light reads against the
// ready-model cache and answer in microseconds; anything the surrogate
// cannot serve redirects to the FEM job path via a typed problem+json
// whose FallbackJob is a ready-to-submit batch.

// surrogateRecord is the in-memory state of one surrogate.
type surrogateRecord struct {
	meta     *api.Surrogate
	spec     *api.SurrogateSpec
	specRaw  json.RawMessage
	scenario scenario.Scenario // converted + validated build scenario
	level    int
	order    int
	modelRaw json.RawMessage // serialized model, set once ready
}

// storedSurrogate is the persisted form of one surrogate: metadata always,
// the build spec for requeue/fallback, and the model bytes once ready. The
// model rides as raw JSON so a restart serves bit-identical answers.
type storedSurrogate struct {
	Meta  *api.Surrogate  `json:"meta"`
	Spec  json.RawMessage `json:"spec"`
	Model json.RawMessage `json:"model,omitempty"`
}

// persistSurrogateLocked mirrors persistJobLocked for surrogate records:
// write-through with the degraded latch. Caller holds s.mu.
func (s *Server) persistSurrogateLocked(id string) error {
	rec, ok := s.surr[id]
	if !ok {
		return nil
	}
	data, err := json.Marshal(&storedSurrogate{Meta: rec.meta, Spec: rec.specRaw, Model: rec.modelRaw})
	if err != nil {
		s.logErr("server: persist surrogate %s: %v", id, err)
		return err
	}
	err = s.store.Put(jobstore.KindSurrogate, id, data, jobstore.Counters{})
	s.notePersist(err)
	if err != nil {
		s.logErr("server: persist surrogate %s: %v", id, err)
	}
	return err
}

// persistSurrogate is persistSurrogateLocked taking the lock.
func (s *Server) persistSurrogate(id string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	_ = s.persistSurrogateLocked(id)
}

// recoverSurrogates rebuilds the surrogate table from the store: ready
// models deserialize straight into the serving cache (no FEM work),
// interrupted builds requeue from their retained spec, failed ones come
// back inspectable. Unreadable records are dropped.
func (s *Server) recoverSurrogates() {
	st := s.store.State()
	var requeue []string
	for id, data := range st.Kinds[jobstore.KindSurrogate] {
		var ss storedSurrogate
		if err := json.Unmarshal(data, &ss); err != nil || ss.Meta == nil || len(ss.Spec) == 0 {
			s.logErr("server: dropping unreadable surrogate record %s: %v", id, err)
			_ = s.store.Delete(jobstore.KindSurrogate, id, jobstore.Counters{})
			continue
		}
		rec, err := s.surrogateRecordFromSpec(ss.Spec)
		if err != nil {
			s.logErr("server: dropping surrogate %s with unrecoverable spec: %v", id, err)
			_ = s.store.Delete(jobstore.KindSurrogate, id, jobstore.Counters{})
			continue
		}
		rec.meta = ss.Meta
		s.surr[id] = rec
		s.surrOrder = append(s.surrOrder, id)
		switch ss.Meta.Status {
		case api.SurrogateReady:
			var m surrogate.Model
			if err := json.Unmarshal(ss.Model, &m); err == nil {
				err = m.Validate()
			}
			if err != nil {
				// The metadata says ready but the model bytes do not serve;
				// rebuild from the spec rather than lie.
				s.logErr("server: surrogate %s model unreadable (%v); rebuilding", id, err)
				ss.Meta.Status = api.SurrogateBuilding
				rec.modelRaw = nil
				requeue = append(requeue, id)
				continue
			}
			rec.modelRaw = ss.Model
			s.scache.Put(&m)
		case api.SurrogateBuilding:
			requeue = append(requeue, id)
		}
	}
	sort.Strings(s.surrOrder)
	sort.Strings(requeue)
	if n := len(s.surrOrder); n > 0 {
		s.logErr("server: recovered %d surrogate(s) (%d requeued, %d serving)",
			n, len(requeue), s.scache.Len())
	}
	for _, id := range requeue {
		rec := s.surr[id]
		_ = s.persistSurrogateLocked(id)
		ctx, cancel := context.WithCancel(context.Background())
		s.cancels[id] = cancel
		s.runners.Add(1)
		go s.buildSurrogate(ctx, id, rec.scenario, rec.level, rec.order)
	}
}

// surrogateScenario strips campaign-control knobs from a build scenario:
// the collocation design defines the study, so only the physical model and
// the elongation law may influence the fingerprint and the build.
func surrogateScenario(sc scenario.Scenario) scenario.Scenario {
	law := sc.UQ
	sc.UQ = scenario.UQSpec{
		Rho:       law.Rho,
		MeanDelta: law.MeanDelta,
		StdDelta:  law.StdDelta,
		CriticalK: law.CriticalK,
	}
	return sc
}

// surrogateRecordFromSpec parses and validates a raw SurrogateSpec into a
// build-ready record (meta left for the caller).
func (s *Server) surrogateRecordFromSpec(raw json.RawMessage) (*surrogateRecord, error) {
	var spec api.SurrogateSpec
	if err := json.Unmarshal(raw, &spec); err != nil {
		return nil, err
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	sc, err := apiconv.ScenarioToInternal(&spec.Scenario)
	if err != nil {
		return nil, err
	}
	sc = surrogateScenario(sc)
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	return &surrogateRecord{
		spec:     &spec,
		specRaw:  raw,
		scenario: sc,
		level:    spec.EffectiveLevel(),
		order:    spec.Order,
	}, nil
}

// handleSurrogateBuild accepts a SurrogateSpec, content-addresses it and
// starts (or joins) the build. 200 returns an already-ready surrogate,
// 202 a building one; persist-before-ack mirrors job submission.
func (s *Server) handleSurrogateBuild(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, s.maxBody+1))
	if err != nil {
		api.WriteError(w, r, api.NewError(http.StatusBadRequest, api.CodeInvalidBody, err.Error()))
		return
	}
	if int64(len(body)) > s.maxBody {
		api.WriteError(w, r, api.Errorf(http.StatusRequestEntityTooLarge, api.CodeTooLarge,
			"surrogate spec exceeds the %d-byte limit", s.maxBody))
		return
	}
	var syntax any
	if err := json.Unmarshal(body, &syntax); err != nil {
		api.WriteError(w, r, api.NewError(http.StatusBadRequest, api.CodeInvalidBody, err.Error()))
		return
	}
	rec, err := s.surrogateRecordFromSpec(body)
	if err != nil {
		api.WriteError(w, r, api.NewError(http.StatusUnprocessableEntity, api.CodeValidation, err.Error()))
		return
	}
	id := scenario.SurrogateID(rec.scenario, rec.level, rec.order)

	s.mu.Lock()
	if existing, ok := s.surr[id]; ok {
		switch {
		case existing.meta.Status == api.SurrogateBuilding:
			// Idempotent join: the same content-addressed build is already
			// in flight.
			meta := *existing.meta
			s.mu.Unlock()
			w.Header().Set("Location", api.SurrogatePath(id))
			writeJSON(w, http.StatusAccepted, &meta)
			return
		case existing.meta.Status == api.SurrogateReady && !rec.spec.Rebuild:
			meta := *existing.meta
			s.mu.Unlock()
			w.Header().Set("Location", api.SurrogatePath(id))
			writeJSON(w, http.StatusOK, &meta)
			return
		default:
			// Failed build or forced rebuild: reset in place, below.
			s.scache.Delete(id)
			s.surrOrder = removeID(s.surrOrder, id)
		}
	}
	rec.meta = &api.Surrogate{
		ID:          id,
		Status:      api.SurrogateBuilding,
		Scenario:    rec.scenario.Name,
		Level:       rec.level,
		Order:       rec.order,
		SubmittedAt: time.Now().UTC(),
	}
	prev, hadPrev := s.surr[id]
	s.surr[id] = rec
	s.surrOrder = append(s.surrOrder, id)
	// Persist before acking, with full rollback on a failed write —
	// accepting a build the store cannot record would break the restart
	// contract.
	if err := s.persistSurrogateLocked(id); err != nil {
		if hadPrev {
			s.surr[id] = prev
		} else {
			delete(s.surr, id)
		}
		s.surrOrder = removeID(s.surrOrder, id)
		if hadPrev {
			s.surrOrder = append(s.surrOrder, id)
			sort.Strings(s.surrOrder)
		}
		s.mu.Unlock()
		s.mRejected.Inc()
		e := api.Errorf(http.StatusServiceUnavailable, api.CodeDegraded,
			"job store is failing writes (%v); build shed, retry shortly", err)
		e.RetryAfterS = 2
		api.WriteError(w, r, e)
		return
	}
	ctx, cancel := context.WithCancel(context.Background())
	s.cancels[id] = cancel
	s.runners.Add(1)
	meta := *rec.meta
	s.mu.Unlock()
	s.mSubmitted.Inc()

	go s.buildSurrogate(ctx, id, rec.scenario, rec.level, rec.order)

	w.Header().Set("Location", api.SurrogatePath(id))
	writeJSON(w, http.StatusAccepted, &meta)
}

// removeID drops one ID from an order slice, preserving order.
func removeID(order []string, id string) []string {
	for i, v := range order {
		if v == id {
			return append(order[:i], order[i+1:]...)
		}
	}
	return order
}

// buildSurrogate evaluates the design under a runner slot and publishes
// the result. Terminal states persist; the ready model enters the cache.
func (s *Server) buildSurrogate(ctx context.Context, id string, sc scenario.Scenario, level, order int) {
	defer s.runners.Done()
	defer s.release(id)

	fail := func(msg string) {
		now := time.Now().UTC()
		s.mu.Lock()
		if rec, ok := s.surr[id]; ok && rec.meta.Status == api.SurrogateBuilding {
			rec.meta.Status = api.SurrogateFailed
			rec.meta.Error = msg
			rec.meta.BuiltAt = &now
			_ = s.persistSurrogateLocked(id)
		}
		s.mu.Unlock()
	}

	select {
	case s.sem <- struct{}{}:
	case <-ctx.Done():
		fail("canceled before start")
		return
	}
	defer func() { <-s.sem }()

	start := time.Now()
	model, err := s.runSurrogateBuild(ctx, sc, level, order)
	if err != nil {
		if ctx.Err() != nil {
			fail("canceled: " + ctx.Err().Error())
		} else {
			fail(err.Error())
		}
		return
	}
	modelRaw, err := json.Marshal(model)
	if err != nil {
		fail("model serialization failed: " + err.Error())
		return
	}

	now := time.Now().UTC()
	lo, hi := model.DeltaDomain()
	kHot := (model.NTimes-1)*model.NWires + model.HotWire
	s.mu.Lock()
	rec, ok := s.surr[id]
	if !ok || rec.meta.Status != api.SurrogateBuilding {
		s.mu.Unlock()
		return
	}
	rec.modelRaw = modelRaw
	m := rec.meta
	m.Status = api.SurrogateReady
	m.GeometryKey = model.GeometryKey
	m.Order = model.Order
	m.Dim = model.Dim
	m.NumWires = model.NWires
	m.Evaluations = model.Evaluations
	m.ErrIndicatorK = model.LOLO[kHot]
	m.GermBound = model.GermBound
	m.DeltaLo, m.DeltaHi = lo, hi
	m.TCritK = model.TCritK
	m.MeanK = model.MeanK[kHot]
	m.StdK = model.StdK[kHot]
	m.BuiltAt = &now
	m.BuildS = time.Since(start).Seconds()
	_ = s.persistSurrogateLocked(id)
	s.mu.Unlock()
	s.scache.Put(model)
}

// runSurrogateBuild wraps the build in the job-level panic boundary.
func (s *Server) runSurrogateBuild(ctx context.Context, sc scenario.Scenario, level, order int) (m *surrogate.Model, err error) {
	defer panicsafe.Recover("server: surrogate build", &err)
	return scenario.BuildSurrogate(ctx, s.cache, sc, level, order)
}

// handleSurrogateList returns every known surrogate, submission-ordered.
func (s *Server) handleSurrogateList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	list := &api.SurrogateList{Surrogates: make([]*api.Surrogate, 0, len(s.surrOrder))}
	for _, id := range s.surrOrder {
		if rec, ok := s.surr[id]; ok {
			meta := *rec.meta
			list.Surrogates = append(list.Surrogates, &meta)
		}
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, list)
}

// handleSurrogateGet returns one surrogate's metadata.
func (s *Server) handleSurrogateGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	rec, ok := s.surr[id]
	var meta api.Surrogate
	if ok {
		meta = *rec.meta
	}
	s.mu.Unlock()
	if !ok {
		api.WriteError(w, r, api.Errorf(http.StatusNotFound, api.CodeNotFound, "no such surrogate %s", id))
		return
	}
	writeJSON(w, http.StatusOK, &meta)
}

// surrogateFallback builds the FEM batch that answers a failed query
// exactly: the build scenario re-armed with sparse-grid collocation — or,
// for a what-if δ outside the trained domain, a deterministic solve at
// that elongation.
func surrogateFallback(rec *surrogateRecord, q *api.SurrogateQuery) *api.Batch {
	sc := rec.spec.Scenario
	law := sc.UQ
	sc.UQ = api.UQSpec{
		Method:    api.MethodSmolyak,
		Level:     rec.level,
		Rho:       law.Rho,
		MeanDelta: law.MeanDelta,
		StdDelta:  law.StdDelta,
		CriticalK: law.CriticalK,
	}
	if q != nil {
		if q.TCritK > 0 {
			sc.UQ.CriticalK = q.TCritK
		}
		delta := q.Delta
		if delta == nil && q.Sweep != nil {
			delta = &q.Sweep.To
		}
		if delta != nil && *delta > 0 {
			// Deterministic what-if at the requested elongation.
			sc.Chip.MeanElongation = *delta
			sc.UQ = api.UQSpec{CriticalK: sc.UQ.CriticalK}
		}
	}
	return &api.Batch{
		Name:      "surrogate-fallback-" + rec.meta.ID,
		Scenarios: []api.Scenario{sc},
	}
}

// handleSurrogateQuery answers statistics queries from the ready-model
// cache. Misses and out-of-domain queries return typed problems carrying
// the FEM fallback batch.
func (s *Server) handleSurrogateQuery(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	id := r.PathValue("id")
	body, err := io.ReadAll(io.LimitReader(r.Body, s.maxBody+1))
	if err != nil || int64(len(body)) > s.maxBody {
		api.WriteError(w, r, api.NewError(http.StatusBadRequest, api.CodeInvalidBody, "unreadable or oversized query body"))
		return
	}
	var wireQ api.SurrogateQuery
	if len(body) > 0 {
		if err := json.Unmarshal(body, &wireQ); err != nil {
			api.WriteError(w, r, api.NewError(http.StatusBadRequest, api.CodeInvalidBody, err.Error()))
			return
		}
	}

	s.mu.Lock()
	rec, ok := s.surr[id]
	var status string
	if ok {
		status = rec.meta.Status
	}
	s.mu.Unlock()

	if !ok {
		s.mSurrQueries["miss"].Inc()
		api.WriteError(w, r, api.Errorf(http.StatusNotFound, api.CodeNotFound,
			"no such surrogate %s; POST %s to build one", id, api.SurrogatesPath))
		return
	}
	if status != api.SurrogateReady {
		s.mSurrQueries["miss"].Inc()
		detail := "surrogate " + id + " is still building; retry shortly or run the fallback job"
		if status == api.SurrogateFailed {
			detail = "surrogate " + id + " failed to build; run the fallback job or rebuild"
		}
		e := api.NewError(http.StatusConflict, api.CodeSurrogateNotReady, detail)
		if status == api.SurrogateBuilding {
			e.RetryAfterS = 2
		}
		e.FallbackJob = surrogateFallback(rec, &wireQ)
		api.WriteError(w, r, e)
		return
	}
	model, ok := s.scache.Get(id)
	if !ok {
		// Metadata says ready but the cache lost the model (cannot happen
		// in-process; defensive for future eviction policies).
		s.mSurrQueries["miss"].Inc()
		e := api.NewError(http.StatusConflict, api.CodeSurrogateNotReady,
			"surrogate "+id+" is not cached; rebuild or run the fallback job")
		e.FallbackJob = surrogateFallback(rec, &wireQ)
		api.WriteError(w, r, e)
		return
	}

	q, err := apiconv.SurrogateQueryToInternal(&wireQ)
	if err != nil {
		api.WriteError(w, r, api.NewError(http.StatusUnprocessableEntity, api.CodeValidation, err.Error()))
		return
	}
	ans, err := model.Answer(q)
	if err != nil {
		if surrogate.IsDomainError(err) {
			s.mSurrQueries["out_of_domain"].Inc()
			e := api.NewError(http.StatusUnprocessableEntity, api.CodeOutOfDomain, err.Error()+
				"; run the fallback job for a full FEM answer")
			e.FallbackJob = surrogateFallback(rec, &wireQ)
			api.WriteError(w, r, e)
			return
		}
		api.WriteError(w, r, api.NewError(http.StatusUnprocessableEntity, api.CodeValidation, err.Error()))
		return
	}
	wireAns, err := apiconv.SurrogateAnswerToAPI(ans)
	if err != nil {
		api.WriteError(w, r, api.NewError(http.StatusInternalServerError, api.CodeInternal, err.Error()))
		return
	}
	s.mSurrQueries["hit"].Inc()
	s.mSurrLatency.Observe(time.Since(start).Seconds())
	writeJSON(w, http.StatusOK, wireAns)
}
