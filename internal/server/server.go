package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"etherm/api"
	"etherm/internal/apiconv"
	"etherm/internal/fleet"
	"etherm/internal/jobstore"
	"etherm/internal/metrics"
	"etherm/internal/panicsafe"
	"etherm/internal/scenario"
	"etherm/internal/surrogate"
)

// Server is the HTTP job service: an in-memory store of api.Job records, a
// bounded number of concurrent batch runners, one shared assembly cache
// that stays warm across jobs, and an event hub broadcasting job progress
// over server-sent events. Every network touchpoint speaks the versioned
// wire contract of package api: request and response bodies are api types,
// errors are RFC-9457 problem+json envelopes (api.Error), the route table
// is api.Routes, and the API version is negotiated via api.VersionHeader.
//
// Every job runs under its own cancellable context so clients can abort
// queued or running work with DELETE /v1/jobs/{id}. Finished jobs beyond
// the retention cap are evicted oldest-first (queued and running jobs are
// never evicted), so a long-running server does not accumulate result
// payloads without bound.
type Server struct {
	cache      *scenario.AssemblyCache
	coord      *fleet.Coordinator
	sem        chan struct{}
	maxBody    int64
	maxHistory int
	maxQueued  int

	// store absorbs every job transition; jobstore.Mem by default, a
	// durable FileStore when the server runs with a data directory.
	store      jobstore.Store
	persistent bool
	logf       func(format string, args ...any)

	// FleetBatches, when set before serving, routes the sharded scenarios
	// of batch jobs through the fleet coordinator instead of running them
	// locally — the job then progresses only while etworkers are connected.
	FleetBatches bool

	mu      sync.Mutex
	jobs    map[string]*api.Job
	batches map[string][]byte             // raw batch JSON of non-terminal jobs (requeued on recovery)
	cancels map[string]context.CancelFunc // pending/running jobs only
	order   []string                      // job IDs in submission order
	seq     int

	// surr tracks surrogate builds (content-addressed, so no counter);
	// scache holds the ready models, next to the assembly cache.
	surr      map[string]*surrogateRecord
	surrOrder []string
	scache    *surrogate.Cache

	// draining flips on Drain: submissions are rejected with 503 +
	// Retry-After while reads and running jobs continue to completion.
	draining atomic.Bool
	// degraded latches on a failed store write and clears on the next
	// successful one; while set, /metrics exposes it and submissions are
	// shed by their own failed persist (persist-before-ack).
	degraded atomic.Bool
	// runners tracks live runJob goroutines so Drain can await them.
	runners sync.WaitGroup

	hub *eventHub
	mux *http.ServeMux

	reg        *metrics.Registry
	mSubmitted *metrics.Counter
	mRejected  *metrics.Counter
	mExpiries  *metrics.Counter
	mFsync     *metrics.Histogram
	mStoreErrs *metrics.Counter

	mSurrQueries map[string]*metrics.Counter // by result: hit|miss|out_of_domain
	mSurrLatency *metrics.Histogram
}

// DefaultMaxHistory is the default finished-job retention cap.
const DefaultMaxHistory = 128

// Pagination bounds of GET /v1/jobs.
const (
	// DefaultListLimit is the page size when the client passes none.
	DefaultListLimit = 50
	// MaxListLimit caps client-requested page sizes.
	MaxListLimit = 500
)

// Config declares a server. The zero value is a usable in-memory server
// with one runner slot and default caps.
type Config struct {
	// MaxConcurrent bounds parallel batch runners (minimum 1).
	MaxConcurrent int
	// MaxHistory caps retained finished jobs (0 = DefaultMaxHistory).
	MaxHistory int
	// LeaseTTL is the fleet shard-lease TTL (0 = fleet.DefaultLeaseTTL).
	LeaseTTL time.Duration
	// MaxQueued bounds jobs waiting for a runner slot; submissions beyond
	// it are rejected with 429 + Retry-After (0 = unbounded).
	MaxQueued int
	// DataDir, when set, opens a durable jobstore.FileStore there: jobs,
	// leases and fleet shard payloads survive restarts (and kill -9).
	DataDir string
	// Store overrides the job store directly (tests); ignored when
	// DataDir is set.
	Store jobstore.Store
	// FleetBatches routes sharded scenarios of batch jobs through the
	// fleet coordinator.
	FleetBatches bool
	// Logf receives recovery and persistence notes (nil = silent).
	Logf func(format string, args ...any)
}

// NewServer returns a server allowing maxConcurrent batch jobs to run in
// parallel (minimum 1), retaining at most DefaultMaxHistory finished jobs.
func NewServer(maxConcurrent int) *Server {
	return NewServerWithHistory(maxConcurrent, DefaultMaxHistory)
}

// NewServerWithHistory is NewServer with an explicit finished-job retention
// cap (minimum 1).
func NewServerWithHistory(maxConcurrent, maxHistory int) *Server {
	return NewServerWithOptions(maxConcurrent, maxHistory, fleet.DefaultLeaseTTL)
}

// NewServerWithOptions is a convenience constructor for in-memory servers:
// concurrency cap, retention cap and the fleet shard-lease TTL (how long
// an etworker may go silent before its shard is re-leased).
func NewServerWithOptions(maxConcurrent, maxHistory int, leaseTTL time.Duration) *Server {
	s, err := New(Config{MaxConcurrent: maxConcurrent, MaxHistory: maxHistory, LeaseTTL: leaseTTL})
	if err != nil {
		// Unreachable: only store recovery can fail, and the in-memory
		// store has nothing to recover.
		panic(err)
	}
	return s
}

// New builds a server from a Config, recovering persisted state (and
// requeueing interrupted jobs) when the store holds any.
func New(cfg Config) (*Server, error) {
	if cfg.MaxConcurrent < 1 {
		cfg.MaxConcurrent = 1
	}
	if cfg.MaxHistory == 0 {
		cfg.MaxHistory = DefaultMaxHistory
	}
	if cfg.MaxHistory < 1 {
		cfg.MaxHistory = 1
	}
	cache := scenario.NewCache()
	s := &Server{
		cache:        cache,
		coord:        fleet.NewCoordinator(cache, cfg.LeaseTTL),
		sem:          make(chan struct{}, cfg.MaxConcurrent),
		maxBody:      4 << 20,
		maxHistory:   cfg.MaxHistory,
		maxQueued:    cfg.MaxQueued,
		logf:         cfg.Logf,
		FleetBatches: cfg.FleetBatches,
		jobs:         make(map[string]*api.Job),
		batches:      make(map[string][]byte),
		cancels:      make(map[string]context.CancelFunc),
		surr:         make(map[string]*surrogateRecord),
		scache:       surrogate.NewCache(),
		hub:          newEventHub(),
		mux:          http.NewServeMux(),
		reg:          metrics.NewRegistry(),
	}
	s.initMetrics()

	switch {
	case cfg.DataDir != "":
		fs, err := jobstore.Open(cfg.DataDir, jobstore.Options{
			OnFsync: func(d time.Duration) { s.mFsync.Observe(d.Seconds()) },
			Logf:    cfg.Logf,
		})
		if err != nil {
			return nil, err
		}
		s.store = fs
		s.persistent = true
		s.initStoreMetrics(fs)
	case cfg.Store != nil:
		s.store = cfg.Store
		s.persistent = true
		if fs, ok := cfg.Store.(*jobstore.FileStore); ok {
			s.initStoreMetrics(fs)
		}
	default:
		s.store = jobstore.NewMem()
	}

	// One handler per route of the public contract. A test asserts this
	// map covers api.Routes exactly, so the registered surface, the SDK
	// and openapi.yaml cannot drift apart.
	handlers := map[string]http.HandlerFunc{
		"POST /v1/jobs":             s.handleSubmit,
		"GET /v1/jobs":              s.handleList,
		"GET /v1/jobs/{id}":         s.handleGet,
		"DELETE /v1/jobs/{id}":      s.handleCancel,
		"GET /v1/jobs/{id}/events":  s.handleEvents,
		"GET /v1/scenarios/presets": s.handlePresets,
		"GET /healthz":              s.handleHealth,
		"GET /metrics":              s.reg.Handler().ServeHTTP,

		"POST /v1/surrogates":            s.handleSurrogateBuild,
		"GET /v1/surrogates":             s.handleSurrogateList,
		"GET /v1/surrogates/{id}":        s.handleSurrogateGet,
		"POST /v1/surrogates/{id}/query": s.handleSurrogateQuery,
	}
	for pattern, h := range handlers {
		s.mux.HandleFunc(pattern, h)
	}
	// The fleet coordinator: etworkers lease shards of sharded scenarios
	// from these endpoints; clients submit sharded campaign jobs to
	// POST /v1/fleet/jobs and read shard progress from GET /v1/jobs/{id}
	// (which falls through to fleet jobs) or GET /v1/fleet/jobs/{id}.
	s.coord.Register(s.mux, api.FleetPrefix)
	s.coord.OnLeaseExpiry = s.mExpiries.Inc

	// Recovery: replay the store into the job table (requeueing jobs the
	// last process died with) and the fleet coordinator.
	if err := s.recover(); err != nil {
		return nil, err
	}
	s.recoverSurrogates()
	if err := s.coord.SetStore(s.store, cfg.Logf); err != nil {
		return nil, err
	}
	return s, nil
}

// Close releases the job store (a durable store flushes its WAL). In-flight
// runner goroutines are not awaited: every transition they still make is
// persisted, which is exactly the crash-consistency path recovery handles.
func (s *Server) Close() error { return s.store.Close() }

// Registry exposes the server's metrics registry (load harnesses register
// their own series on it when embedding the server in-process).
func (s *Server) Registry() *metrics.Registry { return s.reg }

// Coordinator exposes the fleet coordinator (batch jobs whose sharded
// scenarios should run on the fleet plug it into their engine).
func (s *Server) Coordinator() *fleet.Coordinator { return s.coord }

// Handler returns the HTTP handler (also used by httptest): the registered
// routes wrapped in version negotiation and uniform problem+json routing
// errors (404 for unknown paths, 405 with Allow for known paths hit with
// the wrong method).
func (s *Server) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set(api.VersionHeader, api.APIVersion)
		if err := api.CheckVersion(r.Header.Get(api.VersionHeader)); err != nil {
			api.WriteError(w, r, api.NewError(http.StatusBadRequest, api.CodeUnsupportedVersion, err.Error()))
			return
		}
		// A draining server sheds every submission — batch and fleet — at
		// the front door, before any handler state is touched, so the 503
		// carries the not-processed guarantee that makes it retryable.
		if s.draining.Load() && r.Method == http.MethodPost &&
			(r.URL.Path == "/v1/jobs" || r.URL.Path == api.FleetPrefix+"/jobs" ||
				r.URL.Path == api.SurrogatesPath) {
			e := api.NewError(http.StatusServiceUnavailable, api.CodeDraining,
				"server is draining for shutdown; resubmit to another replica or retry shortly")
			e.RetryAfterS = 2
			api.WriteError(w, r, e)
			return
		}
		// Probe the route table first: Handler only reports the match, the
		// dispatch below goes through ServeHTTP so path values are bound.
		_, pattern := s.mux.Handler(r)
		if pattern == "" {
			if allow := s.allowedMethods(r); len(allow) > 0 {
				w.Header().Set("Allow", strings.Join(allow, ", "))
				api.WriteError(w, r, api.Errorf(http.StatusMethodNotAllowed, api.CodeMethodNotAllowed,
					"method %s not allowed on %s (allowed: %s)", r.Method, r.URL.Path, strings.Join(allow, ", ")))
			} else {
				api.WriteError(w, r, api.Errorf(http.StatusNotFound, api.CodeNotFound,
					"no such route: %s", r.URL.Path))
			}
			return
		}
		s.mux.ServeHTTP(w, r)
	})
}

// allowedMethods probes the mux for methods that WOULD match the request
// path, powering method-aware 405 responses.
func (s *Server) allowedMethods(r *http.Request) []string {
	var allow []string
	for _, m := range []string{http.MethodGet, http.MethodPost, http.MethodDelete, http.MethodPut, http.MethodPatch} {
		if m == r.Method {
			continue
		}
		probe := r.Clone(r.Context())
		probe.Method = m
		if _, pattern := s.mux.Handler(probe); pattern != "" {
			allow = append(allow, m)
		}
	}
	return allow
}

// writeJSON renders a 2xx body.
func writeJSON(w http.ResponseWriter, status int, v any) {
	api.WriteJSON(w, status, v)
}

// handleSubmit accepts an api.Batch as JSON, enqueues it and returns 202
// with the job description.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, s.maxBody+1))
	if err != nil {
		api.WriteError(w, r, api.NewError(http.StatusBadRequest, api.CodeInvalidBody, err.Error()))
		return
	}
	if int64(len(body)) > s.maxBody {
		api.WriteError(w, r, api.Errorf(http.StatusRequestEntityTooLarge, api.CodeTooLarge,
			"scenario file exceeds the %d-byte limit", s.maxBody))
		return
	}
	// Syntactically broken JSON is an invalid-body 400, mirroring the fleet
	// endpoints; only well-formed bodies proceed to semantic validation.
	var syntax any
	if err := json.Unmarshal(body, &syntax); err != nil {
		api.WriteError(w, r, api.NewError(http.StatusBadRequest, api.CodeInvalidBody, err.Error()))
		return
	}
	// scenario.ParseBatch is the validation authority; api.Batch is
	// conformance-tested to marshal into exactly this shape.
	batch, err := scenario.ParseBatch(body)
	if err != nil {
		api.WriteError(w, r, api.NewError(http.StatusUnprocessableEntity, api.CodeValidation, err.Error()))
		return
	}

	s.mu.Lock()
	// Backpressure: a full waiting queue rejects the submission before any
	// state is created, so a 429 is always safe to retry.
	if s.maxQueued > 0 && s.queuedLocked() >= s.maxQueued {
		s.mu.Unlock()
		s.mRejected.Inc()
		e := api.Errorf(http.StatusTooManyRequests, api.CodeOverloaded,
			"job queue is full (%d waiting); retry shortly", s.maxQueued)
		e.RetryAfterS = 1
		api.WriteError(w, r, e)
		return
	}
	s.seq++
	job := &api.Job{
		ID:          fmt.Sprintf("job-%06d", s.seq),
		Status:      api.JobQueued,
		BatchName:   batch.Name,
		SubmittedAt: time.Now().UTC(),
		Progress:    api.JobProgress{ScenariosTotal: len(batch.Scenarios)},
	}
	ctx, cancel := context.WithCancel(context.Background())
	s.jobs[job.ID] = job
	s.batches[job.ID] = body
	s.cancels[job.ID] = cancel
	s.order = append(s.order, job.ID)
	s.evictLocked()
	// Persist before acking: a 202 promises the job survives a crash, so a
	// failed store write must shed the submission, not accept it on
	// best-effort durability. The submission doubles as the store probe —
	// degraded mode self-heals on the first write that succeeds again.
	if err := s.persistJobLocked(job.ID); err != nil {
		delete(s.jobs, job.ID)
		delete(s.batches, job.ID)
		delete(s.cancels, job.ID)
		s.order = s.order[:len(s.order)-1]
		s.seq--
		s.mu.Unlock()
		cancel()
		s.mRejected.Inc()
		e := api.Errorf(http.StatusServiceUnavailable, api.CodeDegraded,
			"job store is failing writes (%v); submission shed, retry shortly", err)
		e.RetryAfterS = 2
		api.WriteError(w, r, e)
		return
	}
	s.runners.Add(1)
	s.mu.Unlock()
	s.mSubmitted.Inc()

	go s.runJob(ctx, job.ID, batch)

	w.Header().Set("Location", api.JobPath(job.ID))
	writeJSON(w, http.StatusAccepted, s.snapshot(job.ID))
}

// runJob executes one batch under the runner-slot semaphore, streaming
// scenario completions into the job's progress counters and the event hub.
// The job's context cancels the whole pipeline: a queued job is abandoned
// before acquiring a runner slot, a running one aborts mid-batch
// (streaming scenarios stop mid-ensemble).
func (s *Server) runJob(ctx context.Context, id string, batch *scenario.Batch) {
	defer s.runners.Done()
	defer s.release(id)

	select {
	case s.sem <- struct{}{}:
	case <-ctx.Done():
		s.finish(id, func(j *api.Job) {
			j.Status = api.JobCanceled
			j.Error = "canceled before start"
		})
		return
	}
	defer func() { <-s.sem }()

	now := time.Now().UTC()
	s.update(id, func(j *api.Job) {
		j.Status = api.JobRunning
		j.StartedAt = &now
	})
	s.persistJob(id)
	s.publishStatus(id)

	eng := scenario.NewEngineWithCache(s.cache)
	if s.FleetBatches {
		eng.Sharder = s.coord
	}
	eng.OnEvent = func(ev scenario.Event) {
		switch ev.Phase {
		case scenario.PhaseDone, scenario.PhaseFailed:
			s.update(id, func(j *api.Job) {
				j.Progress.ScenariosDone++
				if ev.Phase == scenario.PhaseFailed {
					j.Progress.ScenariosFailed++
				}
			})
			s.persistJob(id)
			if j := s.snapshot(id); j != nil {
				s.hub.publish(id, api.JobEvent{
					Type: api.EventScenario, JobID: id,
					Scenario: ev.Scenario, Phase: string(ev.Phase),
					Progress: &j.Progress,
				})
			}
		case scenario.PhaseSample:
			s.hub.publish(id, api.JobEvent{
				Type: api.EventSample, JobID: id,
				Scenario: ev.Scenario, Done: ev.Done, Total: ev.Total,
			})
		case scenario.PhaseLevel:
			var lv *api.RareLevel
			if ev.Level != nil {
				lv = &api.RareLevel{
					Level: ev.Level.Level, ThresholdK: ev.Level.ThresholdK,
					Accept: ev.Level.Accept, CondProb: ev.Level.CondProb,
					Evals: ev.Level.Evals,
				}
			}
			s.hub.publish(id, api.JobEvent{
				Type: api.EventLevel, JobID: id,
				Scenario: ev.Scenario, Done: ev.Done, Total: ev.Total,
				Level: lv,
			})
		}
	}
	res, err := s.runEngine(ctx, eng, batch)
	var apiRes *api.BatchResult
	var convErr error
	if res != nil {
		apiRes, convErr = apiconv.BatchResultToAPI(res)
	}
	s.finish(id, func(j *api.Job) {
		switch {
		case ctx.Err() != nil:
			j.Status = api.JobCanceled
			j.Error = "canceled by client"
			j.Result = apiRes // partial results when the final scenario absorbed the cancel
		case err != nil:
			j.Status = api.JobFailed
			j.Error = err.Error()
		case convErr != nil:
			j.Status = api.JobFailed
			j.Error = convErr.Error()
		default:
			j.Status = api.JobDone
			j.Result = apiRes
		}
	})
}

// runEngine runs the batch with the panic-isolation boundary of the job:
// the engine already contains per-scenario panics, so this catches only
// batch-level ones (assembly of shared state, result aggregation) —
// either way a panic fails the job, never the process.
func (s *Server) runEngine(ctx context.Context, eng *scenario.Engine, batch *scenario.Batch) (res *scenario.BatchResult, err error) {
	defer panicsafe.Recover("server: batch run", &err)
	return eng.Run(ctx, batch)
}

// Drain begins a graceful shutdown: submissions are rejected (503 +
// Retry-After) while queued and running jobs continue. When ctx expires
// before the runners finish, the remaining jobs are canceled (their
// terminal "canceled" records persist, so nothing is lost — a restarted
// server requeues nothing and clients see a clean terminal state). After
// the runners settle, every SSE watcher receives a terminal shutdown
// event so no stream is left dangling. Close (the store flush) remains
// the caller's last step.
func (s *Server) Drain(ctx context.Context) error {
	s.draining.Store(true)
	done := make(chan struct{})
	go func() {
		s.runners.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = fmt.Errorf("server: drain timeout: %w", ctx.Err())
		s.mu.Lock()
		cancels := make([]context.CancelFunc, 0, len(s.cancels))
		for _, c := range s.cancels {
			cancels = append(cancels, c)
		}
		s.mu.Unlock()
		for _, c := range cancels {
			c()
		}
		// Canceled runners unwind promptly (the engine checks its context
		// between scenarios and samples); bound the wait regardless.
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			err = fmt.Errorf("server: drain gave up on stuck runners: %w", ctx.Err())
		}
	}
	s.hub.shutdown()
	return err
}

// Draining reports whether Drain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// finish stamps the completion time, applies the terminal transition,
// persists the terminal record (dropping the requeue batch payload) and
// publishes the terminal status event (closing watcher streams).
func (s *Server) finish(id string, f func(*api.Job)) {
	done := time.Now().UTC()
	s.mu.Lock()
	if j, ok := s.jobs[id]; ok {
		j.FinishedAt = &done
		f(j)
		delete(s.batches, id)
		s.persistJobLocked(id)
	}
	s.mu.Unlock()
	s.publishStatus(id)
}

// publishStatus broadcasts the job's current status snapshot to watchers.
func (s *Server) publishStatus(id string) {
	if j := s.snapshot(id); j != nil {
		s.hub.publish(id, statusEvent(j))
	}
}

// statusEvent renders a job snapshot as its SSE status event.
func statusEvent(j *api.Job) api.JobEvent {
	p := j.Progress
	return api.JobEvent{
		Type: api.EventStatus, JobID: j.ID, Status: j.Status,
		Progress: &p, Error: j.Error,
	}
}

// release drops the job's cancel handle once the runner goroutine exits.
func (s *Server) release(id string) {
	s.mu.Lock()
	cancel := s.cancels[id]
	delete(s.cancels, id)
	s.mu.Unlock()
	if cancel != nil {
		cancel()
	}
}

// handleCancel aborts a queued or running job. Fleet job IDs fall through
// to the coordinator, mirroring handleGet.
func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	j, ok := s.jobs[id]
	var cancel context.CancelFunc
	var done bool
	if ok {
		done = j.Status.Finished()
		cancel = s.cancels[id]
	}
	s.mu.Unlock()
	if !ok {
		if _, isFleet := s.coord.Job(id); isFleet {
			if err := s.coord.Cancel(id); err != nil {
				api.WriteError(w, r, api.NewError(http.StatusConflict, api.CodeConflict, err.Error()))
				return
			}
			s.writeFleetJob(w, r, id)
			return
		}
		api.WriteError(w, r, api.Errorf(http.StatusNotFound, api.CodeNotFound, "no such job %s", id))
		return
	}
	if done {
		api.WriteError(w, r, api.Errorf(http.StatusConflict, api.CodeConflict, "job %s already finished", id))
		return
	}
	if cancel != nil {
		cancel()
	}
	writeJSON(w, http.StatusAccepted, s.snapshot(id))
}

// writeFleetJob renders the coordinator's view of a fleet job (202).
func (s *Server) writeFleetJob(w http.ResponseWriter, r *http.Request, id string) {
	fv, ok := s.coord.Job(id)
	if !ok {
		api.WriteError(w, r, api.Errorf(http.StatusNotFound, api.CodeNotFound, "no such job %s", id))
		return
	}
	fj, err := fleet.ViewToAPI(fv)
	if err != nil {
		api.WriteError(w, r, api.NewError(http.StatusInternalServerError, api.CodeInternal, err.Error()))
		return
	}
	writeJSON(w, http.StatusAccepted, fj)
}

// evictLocked drops the oldest finished jobs until at most maxHistory
// remain. Queued and running jobs are kept regardless, so the store can
// transiently exceed the cap while work is in flight. Caller holds s.mu.
func (s *Server) evictLocked() {
	if len(s.order) <= s.maxHistory {
		return
	}
	kept := s.order[:0]
	excess := len(s.order) - s.maxHistory
	for _, id := range s.order {
		j := s.jobs[id]
		if excess > 0 && j.Status.Finished() {
			delete(s.jobs, id)
			delete(s.batches, id)
			if err := s.store.Delete(jobstore.KindJob, id, jobstore.Counters{}); err != nil {
				s.logErr("server: evict %s: %v", id, err)
			}
			excess--
			continue
		}
		kept = append(kept, id)
	}
	s.order = kept
}

// update mutates a job under the store lock.
func (s *Server) update(id string, f func(*api.Job)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if j, ok := s.jobs[id]; ok {
		f(j)
	}
}

// snapshot returns a deep-enough copy of a job for rendering without racing
// the runner goroutine. The result pointer is shared but immutable once set.
func (s *Server) snapshot(id string) *api.Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil
	}
	cp := *j
	return &cp
}

// handleGet returns one job by ID. Fleet job IDs ("fleet-…") fall through
// to the coordinator, so shard progress of a distributed campaign is
// readable from the same endpoint as batch jobs.
func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	j := s.snapshot(id)
	if j == nil {
		if fv, ok := s.coord.Job(id); ok {
			fj, err := fleet.ViewToAPI(fv)
			if err != nil {
				api.WriteError(w, r, api.NewError(http.StatusInternalServerError, api.CodeInternal, err.Error()))
				return
			}
			writeJSON(w, http.StatusOK, fj)
			return
		}
		api.WriteError(w, r, api.Errorf(http.StatusNotFound, api.CodeNotFound, "no such job %s", id))
		return
	}
	writeJSON(w, http.StatusOK, j)
}

// jobSeq extracts the monotonic sequence number of a job ID ("job-000042"),
// the pagination key of the list endpoint. Cursors survive eviction of the
// cursor job because the key is ordered, not positional.
func jobSeq(id string) (int, bool) {
	num, ok := strings.CutPrefix(id, "job-")
	if !ok {
		return 0, false
	}
	n, err := strconv.Atoi(num)
	if err != nil || n < 0 {
		return 0, false
	}
	return n, true
}

// handleList returns one page of jobs, newest first, without embedded
// result payloads (fetch an individual job for its manifest). ?limit=
// bounds the page size, ?cursor= (the next_cursor of the previous page)
// continues the walk toward older jobs.
func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	limit := DefaultListLimit
	if lv := r.URL.Query().Get("limit"); lv != "" {
		n, err := strconv.Atoi(lv)
		if err != nil || n < 1 {
			api.WriteError(w, r, api.Errorf(http.StatusBadRequest, api.CodeValidation,
				"limit %q is not a positive integer", lv))
			return
		}
		limit = min(n, MaxListLimit)
	}
	before := int(^uint(0) >> 1) // no cursor: start at the newest job
	if cv := r.URL.Query().Get("cursor"); cv != "" {
		n, ok := jobSeq(cv)
		if !ok {
			api.WriteError(w, r, api.Errorf(http.StatusBadRequest, api.CodeValidation,
				"cursor %q is not a job ID", cv))
			return
		}
		before = n
	}

	s.mu.Lock()
	out := api.JobList{Jobs: make([]*api.Job, 0, min(limit, len(s.order)))}
	for i := len(s.order) - 1; i >= 0; i-- {
		id := s.order[i]
		seq, ok := jobSeq(id)
		if !ok || seq >= before {
			continue
		}
		if len(out.Jobs) == limit {
			out.NextCursor = out.Jobs[limit-1].ID
			break
		}
		cp := *s.jobs[id]
		cp.Result = nil
		out.Jobs = append(out.Jobs, &cp)
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, out)
}

// handlePresets serves the bundled scenario suite so clients can fetch,
// edit and resubmit it.
func (s *Server) handlePresets(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, scenario.Presets())
}

// handleHealth reports liveness plus cache statistics.
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	n := len(s.jobs)
	queued := s.queuedLocked()
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, api.Health{
		Status: "ok", Jobs: n,
		FleetJobs:    len(s.coord.Jobs()),
		CacheEntries: s.cache.Len(),
		CacheHits:    s.cache.Hits(),
		CacheMisses:  s.cache.Misses(),
		QueuedJobs:   queued,
		MaxQueued:    s.maxQueued,
		Watchers:     int(s.hub.watcherCount()),
		Persistent:   s.persistent,
		Surrogates:   s.scache.Len(),
	})
}
