package server

import (
	"context"
	"net/http"
	"strings"
	"testing"
	"time"

	"etherm/api"
	"etherm/client"
	"etherm/internal/fleet"
)

// startWorker runs an etworker pull loop (built on the SDK) against the
// test server for the lifetime of ctx.
func startWorker(t *testing.T, ctx context.Context, cl *client.Client) {
	t.Helper()
	w := &fleet.Worker{Client: cl, ID: "api-test", SampleWorkers: 2, Poll: 20 * time.Millisecond}
	go func() { _ = w.Run(ctx) }()
}

// TestRouteTableMatchesContract probes the server mux with every route of
// the public contract: each must resolve to a registered handler, so
// api.Routes (the source openapi.yaml is checked against) cannot drift
// from the surface the server actually serves.
func TestRouteTableMatchesContract(t *testing.T) {
	srv := NewServer(1)
	for _, route := range api.Routes() {
		path := strings.ReplaceAll(route.Pattern, "{id}", "probe-id")
		req, err := http.NewRequest(route.Method, "http://server"+path, nil)
		if err != nil {
			t.Fatal(err)
		}
		if _, pattern := srv.mux.Handler(req); pattern == "" {
			t.Errorf("route %s is in the contract but not registered", route)
		}
	}
}

// TestErrorConformance is the uniform-error-contract table: every failure
// path of the surface — routing errors included — must answer with an
// RFC-9457 problem+json envelope carrying the right status and condition
// code.
func TestErrorConformance(t *testing.T) {
	ts, _ := newTestServer(t, NewServer(1))

	for _, tc := range []struct {
		name         string
		method, path string
		body         string
		wantStatus   int
		wantCode     string
	}{
		{"unknown path", "GET", "/v1/nope", "", 404, api.CodeNotFound},
		{"unknown nested path", "GET", "/v2/jobs", "", 404, api.CodeNotFound},
		{"method not allowed on jobs", "PUT", "/v1/jobs", "", 405, api.CodeMethodNotAllowed},
		{"method not allowed on presets", "POST", "/v1/scenarios/presets", "", 405, api.CodeMethodNotAllowed},
		{"method not allowed on fleet lease", "DELETE", "/v1/fleet/lease", "", 405, api.CodeMethodNotAllowed},
		{"malformed submit", "POST", "/v1/jobs", "}{", 400, api.CodeInvalidBody},
		{"invalid batch", "POST", "/v1/jobs", `{"scenarios":[]}`, 422, api.CodeValidation},
		{"unknown job", "GET", "/v1/jobs/job-999999", "", 404, api.CodeNotFound},
		{"unknown job cancel", "DELETE", "/v1/jobs/job-999999", "", 404, api.CodeNotFound},
		{"unknown job events", "GET", "/v1/jobs/job-999999/events", "", 404, api.CodeNotFound},
		{"unknown fleet job", "GET", "/v1/fleet/jobs/fleet-999999", "", 404, api.CodeNotFound},
		{"malformed lease", "POST", "/v1/fleet/lease", "}{", 400, api.CodeInvalidBody},
		{"stale heartbeat", "POST", "/v1/fleet/heartbeat", `{"lease_id":"lease-000042"}`, 410, api.CodeLeaseLost},
		{"stale result", "POST", "/v1/fleet/result", `{"lease_id":"lease-000042","result":{"shard":0,"start":0,"end":0,"block_size":1,"sampler":"x","num_outputs":0,"evaluated":0,"failures":0,"blocks":[]}}`, 410, api.CodeLeaseLost},
		{"unsharded fleet submit", "POST", "/v1/fleet/jobs", `{"name":"x"}`, 422, api.CodeValidation},
		{"method not allowed on surrogates", "PUT", "/v1/surrogates", "", 405, api.CodeMethodNotAllowed},
		{"malformed surrogate build", "POST", "/v1/surrogates", "}{", 400, api.CodeInvalidBody},
		{"nameless surrogate spec", "POST", "/v1/surrogates", `{"scenario":{}}`, 422, api.CodeValidation},
		{"surrogate level out of range", "POST", "/v1/surrogates", `{"scenario":{"name":"x"},"level":9}`, 422, api.CodeValidation},
		{"unknown surrogate", "GET", "/v1/surrogates/sg-999999", "", 404, api.CodeNotFound},
		{"unknown surrogate query", "POST", "/v1/surrogates/sg-999999/query", "{}", 404, api.CodeNotFound},
		{"bad version header", "GET", "/healthz", "", 400, api.CodeUnsupportedVersion},
	} {
		var body *strings.Reader
		if tc.body != "" {
			body = strings.NewReader(tc.body)
		} else {
			body = strings.NewReader("")
		}
		req, err := http.NewRequest(tc.method, ts.URL+tc.path, body)
		if err != nil {
			t.Fatal(err)
		}
		if tc.wantCode == api.CodeUnsupportedVersion {
			req.Header.Set(api.VersionHeader, "v999")
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		problem := decodeProblem(t, resp)
		if resp.StatusCode != tc.wantStatus {
			t.Errorf("%s: status %d, want %d", tc.name, resp.StatusCode, tc.wantStatus)
		}
		if problem.Code != tc.wantCode {
			t.Errorf("%s: code %q, want %q", tc.name, problem.Code, tc.wantCode)
		}
		if problem.Type != api.ErrorTypeBase+tc.wantCode {
			t.Errorf("%s: type %q, want %q", tc.name, problem.Type, api.ErrorTypeBase+tc.wantCode)
		}
		if problem.Instance != tc.path && !strings.HasPrefix(tc.path, problem.Instance) {
			t.Errorf("%s: instance %q does not identify %q", tc.name, problem.Instance, tc.path)
		}
	}

	// 405 responses advertise the allowed methods.
	req, _ := http.NewRequest(http.MethodPut, ts.URL+"/v1/jobs", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	allow := resp.Header.Get("Allow")
	if !strings.Contains(allow, http.MethodGet) || !strings.Contains(allow, http.MethodPost) {
		t.Errorf("405 Allow header %q misses GET/POST", allow)
	}
}

// TestVersionNegotiation covers the version header contract: matching and
// absent versions pass, responses are stamped.
func TestVersionNegotiation(t *testing.T) {
	ts, _ := newTestServer(t, NewServer(1))
	for _, requested := range []string{"", api.APIVersion} {
		req, _ := http.NewRequest(http.MethodGet, ts.URL+"/healthz", nil)
		if requested != "" {
			req.Header.Set(api.VersionHeader, requested)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("version %q: status %d", requested, resp.StatusCode)
		}
		if v := resp.Header.Get(api.VersionHeader); v != api.APIVersion {
			t.Errorf("version %q: response stamped %q, want %q", requested, v, api.APIVersion)
		}
	}
}

// TestJobEventsStream is the SSE acceptance test: watching a
// multi-scenario batch (one scenario a small streaming Monte Carlo
// campaign) must observe at least one progress event — scenario
// completions and streaming sample counts — and the terminal state, after
// which the stream closes.
func TestJobEventsStream(t *testing.T) {
	if testing.Short() {
		t.Skip("runs coupled-field simulations")
	}
	_, cl := newTestServer(t, NewServer(1))
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()

	batch := &api.Batch{
		Name: "sse-test",
		Scenarios: []api.Scenario{
			{Name: "pair", Chip: api.ChipSpec{HMaxM: 0.8e-3, ActivePairs: []int{0}}, Sim: tinySim()},
			{
				Name: "mc-small",
				Chip: api.ChipSpec{HMaxM: 0.8e-3, ActivePairs: []int{0}},
				Sim:  tinySim(),
				UQ:   api.UQSpec{Method: api.MethodMonteCarlo, Samples: 4, Seed: 2, Stream: true},
			},
		},
	}
	job := submitBatch(t, cl, batch)

	events, errc := cl.WatchJob(ctx, job.ID)
	var scenarioEvents, sampleEvents int
	var terminal *api.JobEvent
	for ev := range events {
		if ev.JobID != job.ID {
			t.Errorf("event for job %q on a watch of %q", ev.JobID, job.ID)
		}
		switch ev.Type {
		case api.EventScenario:
			scenarioEvents++
			if ev.Scenario == "" || ev.Progress == nil {
				t.Errorf("scenario event incomplete: %+v", ev)
			}
		case api.EventSample:
			sampleEvents++
			if ev.Scenario != "mc-small" || ev.Done < 1 || ev.Total != 4 {
				t.Errorf("sample event incomplete: %+v", ev)
			}
		case api.EventStatus:
			if ev.Terminal() {
				cp := ev
				terminal = &cp
			}
		}
	}
	if err := <-errc; err != nil {
		t.Fatalf("watch: %v", err)
	}
	if scenarioEvents < 2 {
		t.Errorf("observed %d scenario events, want one per scenario", scenarioEvents)
	}
	if sampleEvents < 1 {
		t.Errorf("observed no streaming-campaign sample events")
	}
	if terminal == nil {
		t.Fatal("stream closed without a terminal status event")
	}
	if terminal.Status != api.JobDone {
		t.Errorf("terminal status %s (%s), want done", terminal.Status, terminal.Error)
	}
	if terminal.Progress == nil || terminal.Progress.ScenariosDone != 2 {
		t.Errorf("terminal progress wrong: %+v", terminal.Progress)
	}

	// Watching an already-finished job replays the terminal snapshot and
	// closes immediately.
	events, errc = cl.WatchJob(ctx, job.ID)
	var replay []api.JobEvent
	for ev := range events {
		replay = append(replay, ev)
	}
	if err := <-errc; err != nil {
		t.Fatalf("replay watch: %v", err)
	}
	if len(replay) != 1 || !replay[0].Terminal() {
		t.Errorf("terminal replay wrong: %+v", replay)
	}
}

// TestFleetJobOverServerAPI drives a sharded campaign end to end through
// the server using only the SDK: submit to the fleet, serve the shards
// with an etworker pull loop over the same mux, and follow shard progress
// through both the unified job endpoint and the SSE stream.
func TestFleetJobOverServerAPI(t *testing.T) {
	if testing.Short() {
		t.Skip("runs coupled-field ensembles")
	}
	_, cl := newTestServer(t, NewServerWithOptions(1, 8, 5*time.Second))
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()

	s := &api.Scenario{
		Name: "mc-fleet",
		Chip: api.ChipSpec{HMaxM: 0.8e-3},
		Sim:  tinySim(),
		UQ: api.UQSpec{
			Method: api.MethodMonteCarlo, Samples: 4, Seed: 9,
			Shards: 2, ShardBlock: 2,
		},
	}
	view, err := cl.SubmitFleetJob(ctx, s)
	if err != nil {
		t.Fatal(err)
	}
	if view.Status != api.JobRunning || len(view.Shards) != 2 {
		t.Fatalf("unexpected fleet job view: %+v", view)
	}

	// Shard progress is visible on the unified job endpoint before any
	// worker joins... as a fleet job view.
	progress, err := cl.GetFleetJob(ctx, view.ID)
	if err != nil {
		t.Fatal(err)
	}
	if progress.ShardsDone != 0 || len(progress.Shards) != 2 {
		t.Fatalf("initial shard progress: %+v", progress)
	}

	// Start watching before the worker joins, then let the fleet drain the
	// shards: the stream must carry shard progress and the terminal state.
	events, errc := cl.WatchJob(ctx, view.ID)

	startWorker(t, ctx, cl)

	var shardEvents int
	var terminal *api.JobEvent
	for ev := range events {
		switch ev.Type {
		case api.EventShards:
			shardEvents++
			if ev.ShardsTotal != 2 {
				t.Errorf("shard event wrong: %+v", ev)
			}
		case api.EventStatus:
			if ev.Terminal() {
				cp := ev
				terminal = &cp
			}
		}
	}
	if err := <-errc; err != nil {
		t.Fatalf("fleet watch: %v", err)
	}
	if terminal == nil || terminal.Status != api.JobDone {
		t.Fatalf("fleet stream terminal: %+v", terminal)
	}
	if shardEvents < 1 {
		t.Error("no shard progress events observed")
	}

	final, err := cl.GetFleetJob(ctx, view.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.Status != api.JobDone || final.Result == nil {
		t.Fatalf("fleet job finished as %s (%s)", final.Status, final.Error)
	}
	if final.ShardsDone != 2 || !final.Result.OK || final.Result.Shards != 2 {
		t.Errorf("fleet result accounting: done=%d result=%+v", final.ShardsDone, final.Result)
	}
	if final.Result.Samples+final.Result.Failures != 4 {
		t.Errorf("fleet campaign consumed %d samples, want 4", final.Result.Samples+final.Result.Failures)
	}
}
