package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"etherm/api"
	"etherm/client"
	"etherm/internal/scenario"
)

// tinySurrogateSpec is the cheapest buildable surrogate: one wire pair on
// a coarse mesh, three transient steps, ρ = 1 so the germ is scalar and
// the level-2 union design costs five FEM solves.
func tinySurrogateSpec() *api.SurrogateSpec {
	rho := 1.0
	return &api.SurrogateSpec{
		Scenario: api.Scenario{
			Name: "surr-pair",
			Chip: api.ChipSpec{HMaxM: 0.8e-3, ActivePairs: []int{0}},
			Sim:  tinySim(),
			UQ:   api.UQSpec{Rho: &rho},
		},
		Level: 2,
	}
}

// buildReady builds the tiny surrogate through the SDK and waits for ready.
func buildReady(t *testing.T, cl *client.Client) *api.Surrogate {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()
	sg, err := cl.BuildSurrogate(ctx, tinySurrogateSpec())
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	sg, err = cl.WaitSurrogate(ctx, sg.ID)
	if err != nil {
		t.Fatalf("wait: %v", err)
	}
	if sg.Status != api.SurrogateReady {
		t.Fatalf("surrogate ended %s: %s", sg.Status, sg.Error)
	}
	return sg
}

// TestSurrogateBuildAndQuery drives the serving path end to end through
// the SDK: build, inspect, list, query — and the content-addressed join on
// resubmission.
func TestSurrogateBuildAndQuery(t *testing.T) {
	if testing.Short() {
		t.Skip("runs coupled-field simulations")
	}
	_, cl := newTestServer(t, NewServer(1))
	ctx := context.Background()

	sg := buildReady(t, cl)
	if sg.GeometryKey == "" || sg.Evaluations == 0 || sg.Dim != 1 || !strings.HasPrefix(sg.ID, "sg-") {
		t.Fatalf("ready metadata incomplete: %+v", sg)
	}
	if !(sg.DeltaLo < sg.DeltaHi) || sg.GermBound <= 0 {
		t.Fatalf("trained domain not reported: %+v", sg)
	}
	if sg.BuiltAt == nil || sg.BuildS <= 0 || sg.MeanK < 300 || sg.MeanK > 700 {
		t.Fatalf("build stats implausible: %+v", sg)
	}

	// Resubmitting the same spec joins the ready surrogate — no new build.
	again, err := cl.BuildSurrogate(ctx, tinySurrogateSpec())
	if err != nil {
		t.Fatal(err)
	}
	if again.ID != sg.ID || again.Status != api.SurrogateReady || again.Evaluations != sg.Evaluations {
		t.Fatalf("resubmission did not join: %+v", again)
	}

	list, err := cl.ListSurrogates(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(list.Surrogates) != 1 || list.Surrogates[0].ID != sg.ID {
		t.Fatalf("list wrong: %+v", list)
	}
	h, err := cl.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.Surrogates != 1 {
		t.Errorf("health reports %d surrogates, want 1", h.Surrogates)
	}

	ans, err := cl.QuerySurrogate(ctx, sg.ID, &api.SurrogateQuery{Quantiles: []float64{0.05, 0.5, 0.95}})
	if err != nil {
		t.Fatalf("query: %v", err)
	}
	if ans.ID != sg.ID || ans.Evaluations != sg.Evaluations {
		t.Errorf("answer identity wrong: %+v", ans)
	}
	if ans.ErrIndicatorK < 0 || ans.MeanK < 300 || ans.MeanK > 700 || len(ans.Quantiles) != 3 {
		t.Errorf("answer implausible: %+v", ans)
	}
	if ans.TCritK == 0 {
		t.Error("answer lacks the critical temperature it used")
	}

	// An in-domain what-if sweep answers without touching the FEM path.
	sweep, err := cl.QuerySurrogate(ctx, sg.ID, &api.SurrogateQuery{
		Sweep: &api.SurrogateSweep{From: sg.DeltaLo, To: sg.DeltaHi, Steps: 5},
	})
	if err != nil {
		t.Fatalf("sweep query: %v", err)
	}
	if len(sweep.Sweep) != 5 {
		t.Errorf("sweep answered %d points, want 5", len(sweep.Sweep))
	}
}

// TestSurrogateOutOfDomainFallback: a what-if beyond the trained domain is
// refused with the typed out-of-domain problem whose fallback batch parses
// through the engine's own strict validator and pins the requested δ.
func TestSurrogateOutOfDomainFallback(t *testing.T) {
	if testing.Short() {
		t.Skip("runs coupled-field simulations")
	}
	_, cl := newTestServer(t, NewServer(1))
	sg := buildReady(t, cl)

	bad := sg.DeltaHi + 0.05
	_, err := cl.QuerySurrogate(context.Background(), sg.ID, &api.SurrogateQuery{Delta: &bad})
	if !api.IsOutOfDomain(err) {
		t.Fatalf("want out-of-domain problem, got %v", err)
	}
	e, _ := api.AsError(err)
	if e.Status != http.StatusUnprocessableEntity || e.FallbackJob == nil {
		t.Fatalf("problem incomplete: %+v", e)
	}
	raw, err := json.Marshal(e.FallbackJob)
	if err != nil {
		t.Fatal(err)
	}
	b, err := scenario.ParseBatch(raw)
	if err != nil {
		t.Fatalf("fallback job rejected by the engine: %v", err)
	}
	if len(b.Scenarios) != 1 || b.Scenarios[0].Chip.MeanElongation != bad {
		t.Errorf("fallback does not pin the requested δ: %+v", b.Scenarios[0].Chip)
	}

	// Invalid queries are plain validation problems, not domain redirects.
	_, err = cl.QuerySurrogate(context.Background(), sg.ID, &api.SurrogateQuery{Quantiles: []float64{2}})
	if e, ok := api.AsError(err); !ok || e.Code != api.CodeValidation {
		t.Errorf("bad quantile: want validation problem, got %v", err)
	}
}

// TestSurrogateNotReady: while the single runner slot is held by a batch
// job, a queued build answers queries with the typed not-ready problem —
// retry hint plus a fallback batch that parses.
func TestSurrogateNotReady(t *testing.T) {
	if testing.Short() {
		t.Skip("runs coupled-field simulations")
	}
	_, cl := newTestServer(t, NewServer(1))
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()

	// Occupy the only runner slot with a long Monte Carlo job.
	blocker := submitBatch(t, cl, &api.Batch{Scenarios: []api.Scenario{{
		Name: "blocker", Chip: api.ChipSpec{HMaxM: 0.8e-3, ActivePairs: []int{0}}, Sim: tinySim(),
		UQ: api.UQSpec{Method: api.MethodMonteCarlo, Samples: 100000, Seed: 1, Stream: true},
	}}})

	sg, err := cl.BuildSurrogate(ctx, tinySurrogateSpec())
	if err != nil {
		t.Fatal(err)
	}
	if sg.Status != api.SurrogateBuilding {
		t.Fatalf("expected a building surrogate behind the blocked slot, got %s", sg.Status)
	}
	_, err = cl.QuerySurrogate(ctx, sg.ID, nil)
	if !api.IsSurrogateNotReady(err) {
		t.Fatalf("want surrogate-not-ready problem, got %v", err)
	}
	e, _ := api.AsError(err)
	if e.Status != http.StatusConflict || e.RetryAfterS <= 0 || e.FallbackJob == nil {
		t.Fatalf("not-ready problem incomplete: %+v", e)
	}
	raw, _ := json.Marshal(e.FallbackJob)
	if _, perr := scenario.ParseBatch(raw); perr != nil {
		t.Fatalf("not-ready fallback rejected by the engine: %v", perr)
	}
	// The fallback re-arms the study as sparse-grid collocation at the
	// surrogate's level.
	if e.FallbackJob.Scenarios[0].UQ.Method != api.MethodSmolyak || e.FallbackJob.Scenarios[0].UQ.Level != 2 {
		t.Errorf("fallback UQ wrong: %+v", e.FallbackJob.Scenarios[0].UQ)
	}

	// Unblock; the build must then complete and serve.
	if _, err := cl.CancelJob(ctx, blocker.ID); err != nil && !api.IsConflict(err) {
		t.Fatal(err)
	}
	sg, err = cl.WaitSurrogate(ctx, sg.ID)
	if err != nil {
		t.Fatal(err)
	}
	if sg.Status != api.SurrogateReady {
		t.Fatalf("surrogate ended %s: %s", sg.Status, sg.Error)
	}
	if _, err := cl.QuerySurrogate(ctx, sg.ID, nil); err != nil {
		t.Fatalf("query after unblock: %v", err)
	}
}

// TestSurrogateRestartSurvival: a ready surrogate persisted through the
// jobstore serves bit-identical answers after a full process restart, with
// zero FEM work in the new incarnation.
func TestSurrogateRestartSurvival(t *testing.T) {
	if testing.Short() {
		t.Skip("runs coupled-field simulations")
	}
	dir := t.TempDir()
	ctx := context.Background()
	q := &api.SurrogateQuery{Quantiles: []float64{0.1, 0.5, 0.9}}

	cl, closer := openPersistent(t, dir, 8)
	sg := buildReady(t, cl)
	before, err := cl.QuerySurrogate(ctx, sg.ID, q)
	if err != nil {
		t.Fatal(err)
	}
	closer()

	cl2, _ := openPersistent(t, dir, 8)
	got, err := cl2.GetSurrogate(ctx, sg.ID)
	if err != nil {
		t.Fatalf("surrogate lost across restart: %v", err)
	}
	if got.Status != api.SurrogateReady || got.Evaluations != sg.Evaluations {
		t.Fatalf("recovered metadata wrong: %+v", got)
	}
	after, err := cl2.QuerySurrogate(ctx, sg.ID, q)
	if err != nil {
		t.Fatalf("query after restart: %v", err)
	}
	a, _ := json.Marshal(before)
	b, _ := json.Marshal(after)
	if !bytes.Equal(a, b) {
		t.Fatalf("answers diverge across restart:\n%s\nvs\n%s", a, b)
	}
	h, err := cl2.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.Surrogates != 1 {
		t.Errorf("recovered server serves %d surrogates, want 1", h.Surrogates)
	}
}

// TestSurrogateMetrics: the query counters, latency histogram and cache
// gauge appear on /metrics with the outcomes the test provoked.
func TestSurrogateMetrics(t *testing.T) {
	if testing.Short() {
		t.Skip("runs coupled-field simulations")
	}
	ts, cl := newTestServer(t, NewServer(1))
	ctx := context.Background()
	sg := buildReady(t, cl)

	if _, err := cl.QuerySurrogate(ctx, sg.ID, nil); err != nil { // hit
		t.Fatal(err)
	}
	_, _ = cl.QuerySurrogate(ctx, "sg-nope", nil) // miss
	bad := sg.DeltaHi + 0.05
	_, _ = cl.QuerySurrogate(ctx, sg.ID, &api.SurrogateQuery{Delta: &bad}) // out_of_domain

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, want := range []string{
		`etherm_surrogate_queries_total{result="hit"} 1`,
		`etherm_surrogate_queries_total{result="miss"} 1`,
		`etherm_surrogate_queries_total{result="out_of_domain"} 1`,
		"etherm_surrogate_cache_entries 1",
		"etherm_surrogate_query_seconds",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics misses %q", want)
		}
	}
}
