package apiconv

import (
	"etherm/api"
	"etherm/internal/surrogate"
)

// SurrogateQueryToInternal converts a wire surrogate query into the
// engine's type.
func SurrogateQueryToInternal(q *api.SurrogateQuery) (surrogate.Query, error) {
	var out surrogate.Query
	err := Strict(q, &out)
	return out, err
}

// SurrogateQueryToAPI converts an engine surrogate query into its wire
// form.
func SurrogateQueryToAPI(q surrogate.Query) (*api.SurrogateQuery, error) {
	var out api.SurrogateQuery
	err := Strict(q, &out)
	return &out, err
}

// SurrogateAnswerToAPI converts an engine surrogate answer into its wire
// form.
func SurrogateAnswerToAPI(a *surrogate.Answer) (*api.SurrogateAnswer, error) {
	var out api.SurrogateAnswer
	if err := Strict(a, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// SurrogateAnswerToInternal converts a wire answer back into the engine's
// type (the round-trip direction of the conformance tests).
func SurrogateAnswerToInternal(a *api.SurrogateAnswer) (*surrogate.Answer, error) {
	var out surrogate.Answer
	if err := Strict(a, &out); err != nil {
		return nil, err
	}
	return &out, nil
}
