package apiconv

import (
	"encoding/json"
	"testing"

	"etherm/api"
	"etherm/internal/surrogate"
)

// fullSurrogateQuery populates every query field so a silently dropped or
// renamed field breaks the byte comparison.
func fullSurrogateQuery() surrogate.Query {
	delta := 0.25
	return surrogate.Query{
		Quantiles: []float64{0.05, 0.5, 0.95},
		TCritK:    533.5,
		Delta:     &delta,
		Sweep:     &surrogate.Sweep{From: 0.125, To: 0.375, Steps: 9},
	}
}

// fullSurrogateAnswer populates every answer field.
func fullSurrogateAnswer() *surrogate.Answer {
	return &surrogate.Answer{
		ID: "sg-0123456789abcdef", MeanK: 450.5, StdK: 3.25, HotWire: 4,
		TCritK: 523, FailProb: 0.0625,
		Quantiles:     []surrogate.QuantileValue{{Q: 0.05, TK: 445.25}, {Q: 0.95, TK: 456.75}},
		Delta:         &surrogate.SweepPoint{Delta: 0.25, TK: 452.125},
		Sweep:         []surrogate.SweepPoint{{Delta: 0.125, TK: 448.5}, {Delta: 0.375, TK: 455.5}},
		ErrIndicatorK: 0.03125, Evaluations: 29,
	}
}

// TestSurrogateQueryShapeConformance pins the query wire shape in both
// directions, byte-for-byte.
func TestSurrogateQueryShapeConformance(t *testing.T) {
	in := fullSurrogateQuery()
	wire, err := SurrogateQueryToAPI(in)
	if err != nil {
		t.Fatalf("internal query does not fit api.SurrogateQuery: %v", err)
	}
	back, err := SurrogateQueryToInternal(wire)
	if err != nil {
		t.Fatalf("api.SurrogateQuery does not fit internal query: %v", err)
	}
	a, _ := json.Marshal(in)
	b, _ := json.Marshal(back)
	if string(a) != string(b) {
		t.Errorf("query round trip not byte-identical:\n%s\nvs\n%s", a, b)
	}
}

// TestSurrogateAnswerShapeConformance pins the answer wire shape.
func TestSurrogateAnswerShapeConformance(t *testing.T) {
	in := fullSurrogateAnswer()
	wire, err := SurrogateAnswerToAPI(in)
	if err != nil {
		t.Fatalf("internal answer does not fit api.SurrogateAnswer: %v", err)
	}
	back, err := SurrogateAnswerToInternal(wire)
	if err != nil {
		t.Fatalf("api.SurrogateAnswer does not fit internal answer: %v", err)
	}
	a, _ := json.Marshal(in)
	b, _ := json.Marshal(back)
	if string(a) != string(b) {
		t.Errorf("answer round trip not byte-identical:\n%s\nvs\n%s", a, b)
	}
	// The indicator must stay visible even at zero — a surrogate whose
	// indicator vanishes from the wire would look like it has no error
	// estimate at all.
	zero := &surrogate.Answer{ID: "sg-0"}
	w, err := SurrogateAnswerToAPI(zero)
	if err != nil {
		t.Fatal(err)
	}
	data, _ := json.Marshal(w)
	for _, key := range []string{"err_indicator_k", "evaluations", "fail_prob"} {
		var m map[string]any
		_ = json.Unmarshal(data, &m)
		if _, ok := m[key]; !ok {
			t.Errorf("zero-valued %q omitted from the wire answer", key)
		}
	}
}

// TestSurrogateQueryStrictness: unknown fields on the wire are rejected —
// the strict decode is what keeps typos loud.
func TestSurrogateQueryStrictness(t *testing.T) {
	var wire api.SurrogateQuery
	data := []byte(`{"quantiles":[0.5],"qantiles":[0.9]}`)
	if err := json.Unmarshal(data, &wire); err != nil {
		t.Fatal(err) // plain decode tolerates unknowns
	}
	type loose struct {
		Extra float64 `json:"extra,omitempty"`
		api.SurrogateQuery
	}
	if _, err := SurrogateQueryToInternal(&wire); err != nil {
		t.Fatalf("clean query rejected: %v", err)
	}
	l := &loose{Extra: 1}
	var out surrogate.Query
	if err := Strict(l, &out); err == nil {
		t.Error("unknown wire field survived the strict round trip")
	}
}
