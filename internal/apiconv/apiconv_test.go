package apiconv

import (
	"context"
	"encoding/json"
	"testing"

	"etherm/api"
	"etherm/internal/config"
	"etherm/internal/scenario"
	"etherm/internal/uq"
)

// fullScenario populates every field of the internal scenario declaration
// with a non-zero value, so a wire field missing on either side fails the
// strict round trip instead of hiding behind omitempty.
func fullScenario() scenario.Scenario {
	rho, htc, emis := 0.5, 25.0, 0.4
	return scenario.Scenario{
		Name:        "full",
		Description: "conformance fixture",
		Chip: scenario.ChipSpec{
			Preset:         "date16",
			DriveVoltageV:  0.04,
			DriveScale:     1.2,
			HMaxM:          0.8e-3,
			WireSegments:   7,
			WireDiameterM:  25e-6,
			WireMaterial:   "gold",
			MeanElongation: 0.2,
			ActivePairs:    []int{0, 2},
			HTC:            &htc,
			Emissivity:     &emis,
			AmbientK:       300,
		},
		Sim: config.SimConfig{
			EndTimeS: 10, NumSteps: 4, Coupling: "weak", Nonlinear: "newton",
			Integrator: "bdf2", Joule: "edge-split", LinTol: 1e-10,
			Precond: "ic0", PrecondOmega: 0.9, PrecondRefresh: 1.5, SolverWorkers: 2,
		},
		UQ: scenario.UQSpec{
			Method: scenario.MethodMonteCarlo, Samples: 8, Level: 0, Seed: 3,
			Rho: &rho, MeanDelta: 0.17, StdDelta: 0.048, CriticalK: 523,
			Stream: true, MaxSamples: 8, TargetSE: 0.1, TargetCI: 0.01,
			Checkpoint: "cp.json", CheckpointEvery: 4,
			Shards: 2, ShardBlock: 4,
			Mode: scenario.ModeFailureProbability, Estimator: scenario.EstimatorSubset,
			P0: 0.2, LevelSamples: 20, MaxLevels: 5, MCMCStep: 0.8, ISShift: -1.5,
		},
	}
}

// fullScenarioResult populates every field of the internal result.
func fullScenarioResult() *scenario.ScenarioResult {
	cross, cross6, failP, pfail := 12.5, 9.25, 0.125, 0.015625
	return &scenario.ScenarioResult{
		Index: 3, Name: "full", Description: "conformance fixture",
		OK: true, Error: "isolated failure text", CacheHit: true, ElapsedS: 1.5,
		GridNodes: 1024, NumWires: 12, Method: scenario.MethodMonteCarlo,
		Samples: 8, Failures: 1, Evaluations: 5,
		Streamed: true, StopReason: "budget", RequestedSamples: 8, Shards: 2,
		HotWire: 4, HotWireName: "w5", HotWireSide: "left",
		TEndMaxK: 450.5, SigmaK: 3.25, ErrorMCK: 1.125,
		TCritK: 523, CrossMeanS: &cross, Cross6SigS: &cross6,
		ExceedProb: 0.0625, FailProbEmp: &failP, TObsMaxK: 533.5,
		DamageHot: 0.5, PTotalEndW: 2.25,
		RareEstimator: scenario.EstimatorSubset, PFail: &pfail, PFailCoV: 0.25,
		RareConverged: true,
		RareLevels: []scenario.RareLevel{
			{Level: 0, ThresholdK: 510.5, Accept: 0.5, CondProb: 0.125, Evals: 20},
		},
		TimesS: []float64{0, 1}, HotMeanK: []float64{300, 400.0625}, HotSigmaK: []float64{0, 1.5},
	}
}

// TestScenarioShapeConformance pins the wire shape of scenario
// declarations field-for-field in both directions.
func TestScenarioShapeConformance(t *testing.T) {
	in := fullScenario()
	wire, err := ScenarioToAPI(in)
	if err != nil {
		t.Fatalf("internal scenario does not fit api.Scenario: %v", err)
	}
	back, err := ScenarioToInternal(&wire)
	if err != nil {
		t.Fatalf("api.Scenario does not fit internal scenario: %v", err)
	}
	a, _ := json.Marshal(in)
	b, _ := json.Marshal(back)
	if string(a) != string(b) {
		t.Errorf("scenario round trip not byte-identical:\n%s\nvs\n%s", a, b)
	}
}

// TestBatchShapeConformance covers the batch envelope plus a fully
// populated api-side construction decoding into the engine's validator.
func TestBatchShapeConformance(t *testing.T) {
	in := &scenario.Batch{
		Name: "b", Workers: 2, SampleWorkers: 3,
		Scenarios: []scenario.Scenario{fullScenario()},
	}
	wire, err := BatchToAPI(in)
	if err != nil {
		t.Fatalf("internal batch does not fit api.Batch: %v", err)
	}
	back, err := BatchToInternal(wire)
	if err != nil {
		t.Fatalf("api.Batch does not fit internal batch: %v", err)
	}
	a, _ := json.Marshal(in)
	b, _ := json.Marshal(back)
	if string(a) != string(b) {
		t.Errorf("batch round trip not byte-identical:\n%s\nvs\n%s", a, b)
	}
	// The api.Batch marshal must parse through the server's strict parser.
	// fullScenario deliberately over-constrains its UQ spec (sharding plus
	// adaptive stopping, rare-event knobs alongside a sampling method) so
	// every wire field is non-zero; the parser sees semantically valid
	// variants covering both campaign modes instead.
	sampling := fullScenario()
	sampling.UQ.Shards, sampling.UQ.ShardBlock = 0, 0
	sampling.UQ.Mode, sampling.UQ.Estimator = "", ""
	sampling.UQ.P0, sampling.UQ.LevelSamples, sampling.UQ.MaxLevels = 0, 0, 0
	sampling.UQ.MCMCStep, sampling.UQ.ISShift = 0, 0
	rare := fullScenario()
	rare.Name = "rare"
	rare.UQ = scenario.UQSpec{
		Mode: scenario.ModeFailureProbability, Estimator: scenario.EstimatorSubset,
		P0: 0.2, LevelSamples: 20, MaxLevels: 5, MCMCStep: 0.8,
		Seed: 3, CriticalK: 523,
	}
	valid, err := BatchToAPI(&scenario.Batch{Scenarios: []scenario.Scenario{sampling, rare}})
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(valid)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := scenario.ParseBatch(data); err != nil {
		t.Errorf("api.Batch rejected by scenario.ParseBatch: %v", err)
	}
}

// TestResultShapeConformance pins scenario/batch results.
func TestResultShapeConformance(t *testing.T) {
	in := &scenario.BatchResult{
		Name:      "b",
		Scenarios: []*scenario.ScenarioResult{fullScenarioResult()},
		Workers:   2, SampleWorkers: 3,
		CacheHits: 4, CacheMisses: 5, CacheEntries: 6, FailedCount: 1, ElapsedS: 2.5,
	}
	wire, err := BatchResultToAPI(in)
	if err != nil {
		t.Fatalf("internal batch result does not fit api.BatchResult: %v", err)
	}
	back, err := ScenarioResultToInternal(wire.Scenarios[0])
	if err != nil {
		t.Fatalf("api.ScenarioResult does not fit internal result: %v", err)
	}
	a, _ := json.Marshal(in.Scenarios[0])
	b, _ := json.Marshal(back)
	if string(a) != string(b) {
		t.Errorf("scenario result round trip not byte-identical:\n%s\nvs\n%s", a, b)
	}
}

// TestShardResultBitIdentity runs a real (synthetic) shard, round-trips
// its result through the wire form twice — exactly what worker → client →
// coordinator does — and requires the merged campaign state to be
// bit-identical to merging the original results.
func TestShardResultBitIdentity(t *testing.T) {
	dists := []uq.Dist{uq.Uniform{Lo: 0, Hi: 1}, uq.Uniform{Lo: 0, Hi: 1}}
	factory := uq.SingleFactory(affineModel{})
	plan, err := uq.PlanShards(48, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	sampler := uq.PseudoRandom{D: 2, Seed: 11}
	opt := uq.ShardOptions{Workers: 2, Threshold: 0.75, Tag: "conv"}

	var direct, viaWire []*uq.ShardResult
	for k := 0; k < plan.NumShards; k++ {
		res, err := uq.RunShard(context.Background(), factory, dists, sampler, plan, k, opt)
		if err != nil {
			t.Fatal(err)
		}
		direct = append(direct, res)

		wire, err := ShardResultToAPI(res)
		if err != nil {
			t.Fatalf("shard result does not fit api.ShardResult: %v", err)
		}
		// Simulate the HTTP hop: marshal the api form and decode it again.
		data, err := json.Marshal(api.ShardResultRequest{LeaseID: "lease-1", Result: wire})
		if err != nil {
			t.Fatal(err)
		}
		var req api.ShardResultRequest
		if err := json.Unmarshal(data, &req); err != nil {
			t.Fatal(err)
		}
		back, err := ShardResultToInternal(req.Result)
		if err != nil {
			t.Fatalf("api.ShardResult does not fit internal result: %v", err)
		}
		viaWire = append(viaWire, back)
	}

	a, err := uq.MergeShards(plan, direct)
	if err != nil {
		t.Fatal(err)
	}
	b, err := uq.MergeShards(plan, viaWire)
	if err != nil {
		t.Fatal(err)
	}
	aj, _ := json.Marshal(a.Stats)
	bj, _ := json.Marshal(b.Stats)
	if string(aj) != string(bj) {
		t.Errorf("merged campaign state differs after wire round trip:\n%s\nvs\n%s", aj, bj)
	}
}

// TestPlanConversion covers the shard plan mirror.
func TestPlanConversion(t *testing.T) {
	p, err := uq.PlanShards(100, 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	wire, err := PlanToAPI(p)
	if err != nil {
		t.Fatal(err)
	}
	if wire.MaxSamples != 100 || wire.BlockSize != 8 || wire.NumShards != 4 {
		t.Errorf("plan conversion lost fields: %+v", wire)
	}
	if nilPlan, err := PlanToAPI(nil); err != nil || nilPlan != nil {
		t.Errorf("nil plan should convert to nil, got %+v (%v)", nilPlan, err)
	}
}

// affineModel is a cheap two-input model for shard fixtures.
type affineModel struct{}

func (affineModel) Dim() int        { return 2 }
func (affineModel) NumOutputs() int { return 3 }
func (affineModel) Eval(p, out []float64) error {
	for j := range out {
		out[j] = p[0] + float64(j+1)*p[1]
	}
	return nil
}
