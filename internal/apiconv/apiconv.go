// Package apiconv converts between the public wire types of package api
// and the engine's internal types. Conversions go through a strict JSON
// round trip (marshal the source, decode into the destination with
// unknown fields rejected), which makes the package double as the
// conformance harness of the API contract: any field present on one side
// but missing on the other fails the conversion — and the tests — instead
// of silently dropping data.
//
// Float payloads survive the round trip bit-exactly (Go's encoder emits
// the shortest decimal that parses back to the same float64), and the
// serialized accumulator blocks of shard results are carried as raw JSON,
// so a fleet campaign merged from converted results stays bit-identical to
// a single-process run.
package apiconv

import (
	"bytes"
	"encoding/json"
	"fmt"

	"etherm/api"
	"etherm/internal/scenario"
	"etherm/internal/uq"
)

// Strict converts src into dst by marshaling src and decoding the JSON
// into dst with unknown fields rejected. src and dst must have the same
// JSON shape; a field mismatch is an error, not data loss.
func Strict(src, dst any) error {
	data, err := json.Marshal(src)
	if err != nil {
		return fmt.Errorf("apiconv: encode %T: %w", src, err)
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		return fmt.Errorf("apiconv: %T does not fit %T: %w", src, dst, err)
	}
	return nil
}

// ScenarioToInternal converts a wire scenario into the engine's type.
func ScenarioToInternal(s *api.Scenario) (scenario.Scenario, error) {
	var out scenario.Scenario
	err := Strict(s, &out)
	return out, err
}

// ScenarioToAPI converts an engine scenario into its wire form.
func ScenarioToAPI(s scenario.Scenario) (api.Scenario, error) {
	var out api.Scenario
	err := Strict(s, &out)
	return out, err
}

// BatchToInternal converts a wire batch into the engine's type.
func BatchToInternal(b *api.Batch) (*scenario.Batch, error) {
	var out scenario.Batch
	if err := Strict(b, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// BatchToAPI converts an engine batch into its wire form.
func BatchToAPI(b *scenario.Batch) (*api.Batch, error) {
	var out api.Batch
	if err := Strict(b, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// BatchResultToAPI converts a batch manifest into its wire form.
func BatchResultToAPI(r *scenario.BatchResult) (*api.BatchResult, error) {
	var out api.BatchResult
	if err := Strict(r, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// ScenarioResultToInternal converts a wire scenario result back into the
// engine's type (used by tests comparing fleet results bit-for-bit).
func ScenarioResultToInternal(r *api.ScenarioResult) (*scenario.ScenarioResult, error) {
	var out scenario.ScenarioResult
	if err := Strict(r, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// PlanToAPI converts a shard plan into its wire form.
func PlanToAPI(p *uq.ShardPlan) (*api.ShardPlan, error) {
	if p == nil {
		return nil, nil
	}
	var out api.ShardPlan
	if err := Strict(p, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// ShardResultToAPI converts a computed shard result into its wire form;
// the per-block accumulator state is serialized once here and travels as
// raw JSON from then on.
func ShardResultToAPI(r *uq.ShardResult) (*api.ShardResult, error) {
	var out api.ShardResult
	if err := Strict(r, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// ShardResultToInternal decodes a wire shard result (its raw accumulator
// blocks included) into the engine's type, rejecting unknown fields.
func ShardResultToInternal(r *api.ShardResult) (*uq.ShardResult, error) {
	var out uq.ShardResult
	if err := Strict(r, &out); err != nil {
		return nil, err
	}
	return &out, nil
}
