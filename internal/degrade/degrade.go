// Package degrade models bonding-wire degradation and failure: the paper's
// critical-temperature criterion (T_crit = 523 K ≈ 250 °C, the mold
// degradation threshold of section V-D), crossing-time detection on
// temperature histories, Arrhenius damage accumulation and ensemble failure
// probabilities.
package degrade

import (
	"fmt"
	"math"
)

// DefaultCriticalTemp is the paper's failure threshold in kelvin.
const DefaultCriticalTemp = 523.0

// BoltzmannEV is the Boltzmann constant in eV/K.
const BoltzmannEV = 8.617333262e-5

// CrossingTime returns the first time at which the series reaches the
// threshold, linearly interpolated between samples. ok is false when the
// series never crosses.
func CrossingTime(times, series []float64, threshold float64) (t float64, ok bool) {
	if len(times) != len(series) || len(times) == 0 {
		return 0, false
	}
	if series[0] >= threshold {
		return times[0], true
	}
	for i := 1; i < len(series); i++ {
		if series[i] >= threshold {
			t0, t1 := times[i-1], times[i]
			v0, v1 := series[i-1], series[i]
			if v1 == v0 {
				return t1, true
			}
			return t0 + (threshold-v0)*(t1-t0)/(v1-v0), true
		}
	}
	return 0, false
}

// ExceedanceProbability returns the normal-approximation probability that a
// quantity with the given mean and standard deviation exceeds the threshold
// — the design-margin number behind the paper's 6σ band.
func ExceedanceProbability(mean, std, threshold float64) float64 {
	if std <= 0 {
		if mean >= threshold {
			return 1
		}
		return 0
	}
	z := (threshold - mean) / std
	return 0.5 * math.Erfc(z/math.Sqrt2)
}

// EmpiricalExceedance returns the fraction of samples exceeding the
// threshold.
func EmpiricalExceedance(samples []float64, threshold float64) float64 {
	if len(samples) == 0 {
		return math.NaN()
	}
	n := 0
	for _, s := range samples {
		if s >= threshold {
			n++
		}
	}
	return float64(n) / float64(len(samples))
}

// Arrhenius is a thermally activated degradation-rate model
// rate(T) = A·exp(−Ea/(kB·T)) with Ea in eV.
type Arrhenius struct {
	A  float64 // 1/s at infinite temperature
	Ea float64 // activation energy, eV
}

// Validate checks the model parameters.
func (a Arrhenius) Validate() error {
	if a.A <= 0 || a.Ea <= 0 {
		return fmt.Errorf("degrade: Arrhenius parameters must be positive (A=%g, Ea=%g)", a.A, a.Ea)
	}
	return nil
}

// Rate returns the degradation rate at temperature T.
func (a Arrhenius) Rate(T float64) float64 {
	if T <= 0 {
		return 0
	}
	return a.A * math.Exp(-a.Ea/(BoltzmannEV*T))
}

// Damage integrates the degradation rate over a temperature history with
// the trapezoidal rule; failure is conventionally damage ≥ 1.
func (a Arrhenius) Damage(times, temps []float64) (float64, error) {
	if len(times) != len(temps) || len(times) < 2 {
		return 0, fmt.Errorf("degrade: need matching series of ≥2 points")
	}
	d := 0.0
	for i := 1; i < len(times); i++ {
		dt := times[i] - times[i-1]
		if dt < 0 {
			return 0, fmt.Errorf("degrade: times not monotone at index %d", i)
		}
		d += 0.5 * (a.Rate(temps[i-1]) + a.Rate(temps[i])) * dt
	}
	return d, nil
}

// TimeToFailure returns the hold time at constant temperature T until
// damage reaches 1.
func (a Arrhenius) TimeToFailure(T float64) float64 {
	r := a.Rate(T)
	if r == 0 {
		return math.Inf(1)
	}
	return 1 / r
}

// AccelerationFactor returns rate(T2)/rate(T1) — how much faster degradation
// runs at T2 than at T1.
func (a Arrhenius) AccelerationFactor(t1, t2 float64) float64 {
	return a.Rate(t2) / a.Rate(t1)
}

// MoldEpoxy returns an Arrhenius model calibrated so that the damage rate
// becomes design-relevant near the paper's 523 K threshold: time-to-failure
// ≈ 1000 h at 523 K with Ea = 0.8 eV (typical epoxy-degradation activation
// energies are 0.7–1.1 eV).
func MoldEpoxy() Arrhenius {
	ea := 0.8
	ttf := 1000 * 3600.0 // 1000 h in seconds
	a := 1 / (ttf * math.Exp(-ea/(BoltzmannEV*DefaultCriticalTemp)))
	return Arrhenius{A: a, Ea: ea}
}
