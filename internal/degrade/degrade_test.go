package degrade

import (
	"math"
	"testing"
	"testing/quick"
)

func TestCrossingTimeInterpolation(t *testing.T) {
	times := []float64{0, 1, 2, 3}
	series := []float64{300, 400, 500, 600}
	tc, ok := CrossingTime(times, series, 450)
	if !ok || math.Abs(tc-1.5) > 1e-12 {
		t.Errorf("crossing at %g, want 1.5", tc)
	}
	if _, ok := CrossingTime(times, series, 700); ok {
		t.Error("reported a crossing that never happens")
	}
	tc, ok = CrossingTime(times, series, 250)
	if !ok || tc != 0 {
		t.Error("immediate crossing not detected")
	}
}

func TestExceedanceProbability(t *testing.T) {
	if p := ExceedanceProbability(500, 4.65, 523); p > 1e-5 {
		t.Errorf("P = %g should be tiny ~5 sigma out", p)
	}
	if p := ExceedanceProbability(523, 4.65, 523); math.Abs(p-0.5) > 1e-12 {
		t.Errorf("at-threshold P = %g, want 0.5", p)
	}
	if p := ExceedanceProbability(530, 0, 523); p != 1 {
		t.Error("deterministic exceedance wrong")
	}
	if p := ExceedanceProbability(500, 0, 523); p != 0 {
		t.Error("deterministic non-exceedance wrong")
	}
}

func TestEmpiricalExceedance(t *testing.T) {
	s := []float64{510, 520, 523, 530, 540}
	if p := EmpiricalExceedance(s, 523); p != 0.6 {
		t.Errorf("empirical P = %g, want 0.6", p)
	}
}

func TestArrheniusMonotone(t *testing.T) {
	a := MoldEpoxy()
	f := func(dT uint8) bool {
		t1 := 400 + float64(dT)
		return a.Rate(t1+1) > a.Rate(t1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMoldEpoxyCalibration(t *testing.T) {
	a := MoldEpoxy()
	// By construction: TTF(523 K) = 1000 h.
	ttf := a.TimeToFailure(DefaultCriticalTemp)
	if math.Abs(ttf-1000*3600) > 1*3600 {
		t.Errorf("TTF(523) = %g h, want 1000", ttf/3600)
	}
	// Rough rule: ~2× acceleration per 10 K at Ea = 0.8 eV near 523 K.
	acc := a.AccelerationFactor(523, 533)
	if acc < 1.2 || acc > 2.5 {
		t.Errorf("acceleration per 10 K = %g implausible", acc)
	}
}

func TestDamageIntegralConstantTemp(t *testing.T) {
	a := MoldEpoxy()
	times := []float64{0, 1800, 3600}
	temps := []float64{523, 523, 523}
	d, err := a.Damage(times, temps)
	if err != nil {
		t.Fatal(err)
	}
	want := 3600 * a.Rate(523)
	if math.Abs(d-want) > 1e-12*want {
		t.Errorf("damage %g, want %g", d, want)
	}
	if _, err := a.Damage([]float64{1, 0}, []float64{1, 1}); err == nil {
		t.Error("non-monotone times accepted")
	}
}

func TestTimeToFailureInfiniteAtZeroRate(t *testing.T) {
	a := Arrhenius{A: 1, Ea: 0.8}
	if !math.IsInf(a.TimeToFailure(0), 1) {
		t.Error("zero-temperature TTF should be infinite")
	}
	if err := (Arrhenius{}).Validate(); err == nil {
		t.Error("zero parameters accepted")
	}
}
