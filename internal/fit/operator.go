package fit

import (
	"fmt"

	"etherm/internal/sparse"
)

// Branch is a two-terminal conductance between DOFs N1 and N2 of the global
// system. Grid edges and bonding-wire segments are both branches; the
// Laplacian stamp is [g,−g;−g,g].
type Branch struct {
	N1, N2 int
}

// Operator is a weighted graph Laplacian over a fixed branch topology with
// pattern-stable, allocation-free reassembly: the CSR pattern (including the
// full diagonal) is computed once, and SetValues refreshes the numeric
// values for a new conductance vector. This is what makes the repeated
// nonlinear/Monte-Carlo assemblies cheap.
type Operator struct {
	n        int
	branches []Branch
	mat      *sparse.CSR
	// For branch b: value-array positions of (n1,n1), (n2,n2), (n1,n2), (n2,n1).
	pos [][4]int
	// Value-array positions of the diagonal, for AddDiag.
	diagPos []int
}

// NewOperator builds the pattern for nDOF unknowns and the given branches.
// Every diagonal entry is part of the pattern even for isolated DOFs, so
// mass terms and boundary conductances can always be added.
func NewOperator(nDOF int, branches []Branch) (*Operator, error) {
	b := sparse.NewBuilder(nDOF, nDOF)
	for i, br := range branches {
		if br.N1 < 0 || br.N1 >= nDOF || br.N2 < 0 || br.N2 >= nDOF {
			return nil, fmt.Errorf("fit: branch %d (%d,%d) out of range for %d DOFs", i, br.N1, br.N2, nDOF)
		}
		if br.N1 == br.N2 {
			return nil, fmt.Errorf("fit: branch %d is a self-loop at DOF %d", i, br.N1)
		}
		b.AddSym(br.N1, br.N2, 0)
	}
	for i := 0; i < nDOF; i++ {
		b.Add(i, i, 0)
	}
	op := &Operator{n: nDOF, branches: append([]Branch(nil), branches...), mat: b.ToCSR()}
	op.pos = make([][4]int, len(branches))
	for i, br := range branches {
		p11, ok1 := op.mat.Find(br.N1, br.N1)
		p22, ok2 := op.mat.Find(br.N2, br.N2)
		p12, ok3 := op.mat.Find(br.N1, br.N2)
		p21, ok4 := op.mat.Find(br.N2, br.N1)
		if !ok1 || !ok2 || !ok3 || !ok4 {
			return nil, fmt.Errorf("fit: internal error: pattern entry missing for branch %d", i)
		}
		op.pos[i] = [4]int{p11, p22, p12, p21}
	}
	op.diagPos = make([]int, nDOF)
	for i := 0; i < nDOF; i++ {
		p, ok := op.mat.Find(i, i)
		if !ok {
			return nil, fmt.Errorf("fit: internal error: diagonal %d missing", i)
		}
		op.diagPos[i] = p
	}
	// The pattern is final here — SetValues/AddDiag only restamp values — so
	// select the cache-blocked matvec layout once at assembly time. Every
	// matvec on this operator (CG inner loops included) then runs the blocked
	// kernel, bit-identical to the scalar reference by the shared canonical
	// summation order.
	op.mat.Optimize()
	return op, nil
}

// NumDOF returns the number of unknowns.
func (op *Operator) NumDOF() int { return op.n }

// NumBranches returns the number of branches.
func (op *Operator) NumBranches() int { return len(op.branches) }

// Branches returns the branch topology (shared slice; do not modify).
func (op *Operator) Branches() []Branch { return op.branches }

// SetValues zeroes the matrix and stamps conductance g[b] for every branch b.
func (op *Operator) SetValues(g []float64) {
	if len(g) != len(op.branches) {
		panic(fmt.Sprintf("fit: SetValues got %d conductances for %d branches", len(g), len(op.branches)))
	}
	op.mat.Zero()
	v := op.mat.Val
	for b, p := range op.pos {
		gb := g[b]
		v[p[0]] += gb
		v[p[1]] += gb
		v[p[2]] -= gb
		v[p[3]] -= gb
	}
}

// AddDiag adds d[i] to the matrix diagonal (mass terms, Robin conductances).
func (op *Operator) AddDiag(d []float64) {
	if len(d) != op.n {
		panic("fit: AddDiag length mismatch")
	}
	v := op.mat.Val
	for i, di := range d {
		v[op.diagPos[i]] += di
	}
}

// AddToDiagEntry adds v to diagonal entry i.
func (op *Operator) AddToDiagEntry(i int, v float64) {
	op.mat.Val[op.diagPos[i]] += v
}

// Matrix returns the assembled CSR matrix. The operator retains ownership;
// the matrix is invalidated by the next SetValues call.
func (op *Operator) Matrix() *sparse.CSR { return op.mat }

// ApplyLaplacian computes dst = K x directly from branch conductances
// without touching the CSR matrix (useful for residual evaluations):
// dst[n1] += g (x[n1]−x[n2]), dst[n2] += g (x[n2]−x[n1]).
func ApplyLaplacian(branches []Branch, g, x, dst []float64) {
	for i := range dst {
		dst[i] = 0
	}
	for b, br := range branches {
		d := g[b] * (x[br.N1] - x[br.N2])
		dst[br.N1] += d
		dst[br.N2] -= d
	}
}

// JouleEdgeSplit accumulates branch Joule powers P_b = g_b (Δφ_b)² into dst,
// half to each terminal. The total injected power equals φᵀKφ exactly, which
// keeps the discrete energy balance closed (property-tested).
func JouleEdgeSplit(branches []Branch, g, phi, dst []float64) {
	for b, br := range branches {
		dphi := phi[br.N1] - phi[br.N2]
		p := 0.5 * g[b] * dphi * dphi
		dst[br.N1] += p
		dst[br.N2] += p
	}
}

// BranchPowers returns the per-branch Joule powers g_b (Δφ_b)².
func BranchPowers(branches []Branch, g, phi []float64) []float64 {
	out := make([]float64, len(branches))
	for b, br := range branches {
		dphi := phi[br.N1] - phi[br.N2]
		out[b] = g[b] * dphi * dphi
	}
	return out
}

// TotalPower returns φᵀKφ = Σ_b g_b (Δφ_b)².
func TotalPower(branches []Branch, g, phi []float64) float64 {
	s := 0.0
	for b, br := range branches {
		dphi := phi[br.N1] - phi[br.N2]
		s += g[b] * dphi * dphi
	}
	return s
}
