// Package fit implements the Finite Integration Technique (FIT) assembly for
// the coupled electrothermal problem of the paper: the diagonal material
// matrices Mσ(T) and Mλ(T) expressed as per-edge conductances with
// volumetric material averaging, the lumped thermal capacitance Mρc, Joule
// heating redistribution, Robin (convection + radiation) boundary exchange
// and symmetric Dirichlet elimination for PEC contacts.
//
// The discrete system matches eqs. (3)–(4) of the paper:
//
//	−S̃ Mσ(T) G Φ = 0
//	Mρc Ṫ − S̃ Mλ(T) G T = Q(T, Φ)
//
// where S̃ Mσ G is assembled directly as a weighted graph Laplacian over
// primary edges (the equivalence is property-tested against the explicit
// operator product).
package fit

import (
	"fmt"
	"sync"

	"etherm/internal/grid"
	"etherm/internal/material"
	"etherm/internal/sparse"
)

// StefanBoltzmann is the Stefan–Boltzmann constant in W/(m²·K⁴).
const StefanBoltzmann = 5.670374419e-8

// Kind selects which conductivity the assembler evaluates.
type Kind int

// Conductivity kinds.
const (
	Electric Kind = iota
	Thermal
)

func (k Kind) String() string {
	if k == Electric {
		return "electric"
	}
	return "thermal"
}

// Assembler precomputes, once per mesh, everything needed to evaluate the
// temperature-dependent FIT operators quickly: per-edge geometric factors
// Ã/ℓ with their material blends, per-node lumped heat capacities ρc·Ṽ and
// exposed boundary areas. The same Assembler is shared by all Monte Carlo
// samples since the geometry does not change — only wire parameters do.
type Assembler struct {
	Grid *grid.Grid
	Lib  *material.Library

	cellMat []int

	// Flattened per-edge material blends: for edge e the blend entries are
	// blendMat/blendW[blendPtr[e]:blendPtr[e+1]] and geo[e] = Ã/ℓ.
	geo      []float64
	blendPtr []int
	blendMat []int
	blendW   []float64

	massDiag []float64 // ρc·Ṽ per node
	bndArea  []float64 // exposed boundary area per node (all faces)
}

// NewAssembler builds an assembler for the given grid, per-cell material IDs
// (len = NumCells) and material library.
func NewAssembler(g *grid.Grid, cellMat []int, lib *material.Library) (*Assembler, error) {
	if len(cellMat) != g.NumCells() {
		return nil, fmt.Errorf("fit: cellMat has %d entries, grid has %d cells", len(cellMat), g.NumCells())
	}
	for c, id := range cellMat {
		if id < 0 || id >= lib.Len() {
			return nil, fmt.Errorf("fit: cell %d has invalid material ID %d (library holds %d)", c, id, lib.Len())
		}
	}
	if err := lib.Validate(); err != nil {
		return nil, fmt.Errorf("fit: %w", err)
	}

	a := &Assembler{Grid: g, Lib: lib, cellMat: append([]int(nil), cellMat...)}
	ne := g.NumEdges()
	a.geo = make([]float64, ne)
	a.blendPtr = make([]int, ne+1)
	for e := 0; e < ne; e++ {
		a.geo[e] = g.DualArea(e) / g.EdgeLength(e)
		cells, weights := g.EdgeAdjacentCells(e)
		// Merge weights per material ID to shorten the blend.
		var ids []int
		var ws []float64
		for i, c := range cells {
			id := cellMat[c]
			found := false
			for p, existing := range ids {
				if existing == id {
					ws[p] += weights[i]
					found = true
					break
				}
			}
			if !found {
				ids = append(ids, id)
				ws = append(ws, weights[i])
			}
		}
		a.blendMat = append(a.blendMat, ids...)
		a.blendW = append(a.blendW, ws...)
		a.blendPtr[e+1] = len(a.blendMat)
	}

	nn := g.NumNodes()
	a.massDiag = make([]float64, nn)
	a.bndArea = make([]float64, nn)
	for n := 0; n < nn; n++ {
		cells, weights := g.NodeAdjacentCells(n)
		rhoc := 0.0
		for i, c := range cells {
			rhoc += weights[i] * lib.At(cellMat[c]).VolHeatCap()
		}
		a.massDiag[n] = rhoc * g.DualVolume(n)
		a.bndArea[n] = g.BoundaryArea(n)
	}
	return a, nil
}

// CellMaterial returns the material ID of cell c.
func (a *Assembler) CellMaterial(c int) int { return a.cellMat[c] }

// NumEdges returns the number of grid edges (branches) the assembler manages.
func (a *Assembler) NumEdges() int { return a.Grid.NumEdges() }

// EdgeConductances evaluates the diagonal of Mσ (kind Electric) or Mλ (kind
// Thermal) into dst (length NumEdges): for edge e,
//
//	dst[e] = Ã_e/ℓ_e · Σ_c w_c · prop_c(T_e),  T_e = (T[n1]+T[n2])/2,
//
// the volumetric average of the adjacent cells' conductivities evaluated at
// the edge temperature. T may be nil to evaluate at the reference 300 K.
func (a *Assembler) EdgeConductances(kind Kind, T []float64, dst []float64) {
	g := a.Grid
	if len(dst) != g.NumEdges() {
		panic("fit: EdgeConductances dst length mismatch")
	}
	if T != nil && len(T) < g.NumNodes() {
		panic("fit: EdgeConductances temperature vector too short")
	}
	a.edgeConductancesRange(kind, T, dst, 0, len(dst))
}

// edgeConductancesRange evaluates edges [lo, hi). Both the serial and the
// parallel assembly run this kernel over disjoint ranges, so they produce
// bit-identical conductances.
func (a *Assembler) edgeConductancesRange(kind Kind, T, dst []float64, lo, hi int) {
	g := a.Grid
	for e := lo; e < hi; e++ {
		var Te float64 = material.ReferenceTemperature
		if T != nil {
			n1, n2 := g.EdgeNodes(e)
			Te = 0.5 * (T[n1] + T[n2])
		}
		s := 0.0
		for k := a.blendPtr[e]; k < a.blendPtr[e+1]; k++ {
			m := a.Lib.At(a.blendMat[k])
			if kind == Electric {
				s += a.blendW[k] * m.ElecCond(Te)
			} else {
				s += a.blendW[k] * m.ThermCond(Te)
			}
		}
		dst[e] = s * a.geo[e]
	}
}

// ParallelMinEdges is the edge count below which EdgeConductancesWorkers
// falls back to the serial loop: the per-edge material blends are cheap
// enough that small meshes lose more to goroutine scheduling than they gain.
const ParallelMinEdges = 4096

// EdgeConductancesWorkers is EdgeConductances with the edges split into
// contiguous blocks evaluated by up to `workers` goroutines (clamped to
// GOMAXPROCS). Every edge is evaluated by the same kernel regardless of the
// worker count and no edge is touched twice, so the result is bit-identical
// to the serial path. workers <= 1 or fewer than ParallelMinEdges edges fall
// back to the serial loop.
func (a *Assembler) EdgeConductancesWorkers(kind Kind, T, dst []float64, workers int) {
	g := a.Grid
	ne := g.NumEdges()
	if len(dst) != ne {
		panic("fit: EdgeConductancesWorkers dst length mismatch")
	}
	if T != nil && len(T) < g.NumNodes() {
		panic("fit: EdgeConductancesWorkers temperature vector too short")
	}
	workers = sparse.ClampWorkers(workers, ne)
	if workers <= 1 || ne < ParallelMinEdges {
		a.edgeConductancesRange(kind, T, dst, 0, ne)
		return
	}
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		lo := ne * w / workers
		hi := ne * (w + 1) / workers
		go func(lo, hi int) {
			defer wg.Done()
			a.edgeConductancesRange(kind, T, dst, lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// MassDiag returns a copy of the lumped thermal capacitance diagonal Mρc
// (entries ρc_j·Ṽ_j per node).
func (a *Assembler) MassDiag() []float64 {
	return append([]float64(nil), a.massDiag...)
}

// BoundaryAreas returns a copy of the exposed boundary area per node.
func (a *Assembler) BoundaryAreas() []float64 {
	return append([]float64(nil), a.bndArea...)
}

// TotalBoundaryArea returns the summed exposed area (the domain surface).
func (a *Assembler) TotalBoundaryArea() float64 {
	s := 0.0
	for _, v := range a.bndArea {
		s += v
	}
	return s
}
