package fit

import (
	"fmt"
	"math"

	"etherm/internal/grid"
	"etherm/internal/sparse"
)

// RobinBC describes the thermal boundary exchange of the paper: convection
// with heat transfer coefficient H and radiation with emissivity Emissivity
// against the ambient temperature TInf, applied on the selected faces of the
// domain box. The outgoing flux density at a boundary node is
//
//	q = H (T − T∞) + ε σ_SB (T⁴ − T∞⁴).
type RobinBC struct {
	H          float64 // W/(m²·K)
	Emissivity float64 // dimensionless, in [0,1]
	TInf       float64 // K
	// Faces masks the box faces: -x, +x, -y, +y, -z, +z. The zero value
	// (all false) is interpreted as "all faces active", matching the paper.
	Faces [6]bool
}

// AllFaces reports whether the BC applies to every face.
func (bc RobinBC) AllFaces() bool {
	for _, f := range bc.Faces {
		if f {
			return false
		}
	}
	return true
}

// Validate checks the physical ranges.
func (bc RobinBC) Validate() error {
	if bc.H < 0 {
		return fmt.Errorf("fit: negative heat transfer coefficient %g", bc.H)
	}
	if bc.Emissivity < 0 || bc.Emissivity > 1 {
		return fmt.Errorf("fit: emissivity %g outside [0,1]", bc.Emissivity)
	}
	if bc.TInf <= 0 {
		return fmt.Errorf("fit: ambient temperature %g K must be positive", bc.TInf)
	}
	return nil
}

// BoundaryAreasMasked returns the per-node exposed area restricted to the
// faces active in bc.
func (a *Assembler) BoundaryAreasMasked(bc RobinBC) []float64 {
	g := a.Grid
	out := make([]float64, g.NumNodes())
	all := bc.AllFaces()
	for n := 0; n < g.NumNodes(); n++ {
		i, j, k := g.NodeCoordsOf(n)
		var area float64
		add := func(face int, ax grid.Axis) {
			if all || bc.Faces[face] {
				area += g.DualFacetArea(ax, n)
			}
		}
		if i == 0 {
			add(0, grid.X)
		}
		if i == g.Nx-1 {
			add(1, grid.X)
		}
		if j == 0 {
			add(2, grid.Y)
		}
		if j == g.Ny-1 {
			add(3, grid.Y)
		}
		if k == 0 {
			add(4, grid.Z)
		}
		if k == g.Nz-1 {
			add(5, grid.Z)
		}
		out[n] = area
	}
	return out
}

// RobinLoss accumulates the outgoing boundary heat flow per node into dst:
// dst[n] += area[n]·(H (T[n]−T∞) + ε σ_SB (T[n]⁴−T∞⁴)). It returns the total
// outgoing power.
func RobinLoss(T, areas []float64, bc RobinBC, dst []float64) float64 {
	total := 0.0
	sb := bc.Emissivity * StefanBoltzmann
	t4inf := bc.TInf * bc.TInf * bc.TInf * bc.TInf
	for n, area := range areas {
		if area == 0 {
			continue
		}
		t := T[n]
		q := area * (bc.H*(t-bc.TInf) + sb*(t*t*t*t-t4inf))
		dst[n] += q
		total += q
	}
	return total
}

// RobinLinearized returns, for the current iterate T, the per-node boundary
// conductance diag[n] and source rhs[n] of the linearization
//
//	q(T_new) ≈ diag·T_new − rhs
//
// Two linearizations are supported:
//
//   - Picard (newton=false): q ≈ area·h_eff(T)·(T_new − T∞) with
//     h_eff = H + εσ(T²+T∞²)(T+T∞), the secant radiation coefficient.
//   - Newton (newton=true): first-order expansion around T with
//     dq/dT = area·(H + 4εσT³).
//
// Both make the thermal step matrix symmetric positive definite.
func RobinLinearized(T, areas []float64, bc RobinBC, newton bool, diag, rhs []float64) {
	sb := bc.Emissivity * StefanBoltzmann
	t4inf := bc.TInf * bc.TInf * bc.TInf * bc.TInf
	for n, area := range areas {
		if area == 0 {
			diag[n], rhs[n] = 0, 0
			continue
		}
		t := T[n]
		if newton {
			d := area * (bc.H + 4*sb*t*t*t)
			q := area * (bc.H*(t-bc.TInf) + sb*(t*t*t*t-t4inf))
			diag[n] = d
			rhs[n] = d*t - q
		} else {
			heff := bc.H + sb*(t*t+bc.TInf*bc.TInf)*(t+bc.TInf)
			diag[n] = area * heff
			rhs[n] = area * heff * bc.TInf
		}
	}
}

// Dirichlet fixes a set of DOFs to prescribed values (the paper's PEC
// contacts at ±20 mV, or fixed-temperature experiments in tests).
type Dirichlet struct {
	Nodes  []int
	Values []float64 // either one value per node, or a single shared value
}

// Value returns the prescribed value for the i-th constrained node.
func (d Dirichlet) Value(i int) float64 {
	if len(d.Values) == 1 {
		return d.Values[0]
	}
	return d.Values[i]
}

// Validate checks index/value consistency against n DOFs.
func (d Dirichlet) Validate(n int) error {
	if len(d.Values) != 1 && len(d.Values) != len(d.Nodes) {
		return fmt.Errorf("fit: Dirichlet has %d nodes but %d values", len(d.Nodes), len(d.Values))
	}
	for _, node := range d.Nodes {
		if node < 0 || node >= n {
			return fmt.Errorf("fit: Dirichlet node %d out of range (%d DOFs)", node, n)
		}
	}
	return nil
}

// ApplyDirichlet imposes the constraints on the symmetric system A x = rhs by
// symmetric elimination: constrained rows and columns are zeroed, the
// diagonal is set to the row's original diagonal (or 1 when it was zero) to
// preserve conditioning, and rhs is updated so unconstrained equations see
// the prescribed values. After solving, x holds the prescribed values at the
// constrained DOFs exactly.
//
// The matrix pattern must be symmetric (true for all operators assembled in
// this package).
func ApplyDirichlet(a *sparse.CSR, rhs []float64, sets ...Dirichlet) error {
	n := a.Rows
	if len(rhs) != n {
		return fmt.Errorf("fit: ApplyDirichlet rhs length %d != %d", len(rhs), n)
	}
	constrained := make(map[int]float64)
	for _, d := range sets {
		if err := d.Validate(n); err != nil {
			return err
		}
		for i, node := range d.Nodes {
			v := d.Value(i)
			if prev, dup := constrained[node]; dup && prev != v {
				return fmt.Errorf("fit: node %d constrained to both %g and %g", node, prev, v)
			}
			constrained[node] = v
		}
	}
	for node, val := range constrained {
		// Walk row `node`; for each off-diagonal entry (node, j) also locate
		// the symmetric entry (j, node), move its contribution to rhs[j] and
		// zero both.
		var diag float64
		for k := a.RowPtr[node]; k < a.RowPtr[node+1]; k++ {
			j := a.ColIdx[k]
			if j == node {
				diag = a.Val[k]
				continue
			}
			if _, isC := constrained[j]; !isC {
				if kj, ok := a.Find(j, node); ok {
					rhs[j] -= a.Val[kj] * val
					a.Val[kj] = 0
				}
			} else if kj, ok := a.Find(j, node); ok {
				a.Val[kj] = 0
			}
			a.Val[k] = 0
		}
		if diag == 0 || math.IsNaN(diag) {
			diag = 1
		}
		kd, ok := a.Find(node, node)
		if !ok {
			return fmt.Errorf("fit: diagonal entry for constrained node %d missing", node)
		}
		a.Val[kd] = diag
		rhs[node] = diag * val
	}
	return nil
}

// DirichletApplier is ApplyDirichlet with the pattern walk done once: for a
// matrix whose sparsity pattern is stable across reassemblies (every
// fit.Operator), the value positions to zero, the symmetric entries feeding
// the right-hand side and the constrained diagonals are precomputed, so
// applying the constraints each solve is a few flat loops with no map, no
// binary searches and no allocation. The elimination is order-independent
// (reads happen before writes, each position is written once per group), so
// the result is identical to ApplyDirichlet.
type DirichletApplier struct {
	n int
	// rhs[updJ[k]] -= Val[updK[k]] * updV[k], evaluated before any zeroing.
	updK, updJ []int32
	updV       []float64
	// Val positions zeroed by the symmetric elimination.
	zeroK []int32
	// Constrained diagonals: Val[diagK[k]] keeps its assembled value (or 1
	// when zero/NaN) and rhs[diagNode[k]] = diag · diagV[k].
	diagK, diagNode []int32
	diagV           []float64
}

// NewDirichletApplier validates the constraint sets against the pattern of a
// and precomputes the elimination program. The matrix pattern must be
// symmetric and must not change afterwards; values may change freely.
func NewDirichletApplier(a *sparse.CSR, sets ...Dirichlet) (*DirichletApplier, error) {
	n := a.Rows
	constrained := make(map[int]float64)
	order := make([]int, 0, 16)
	for _, d := range sets {
		if err := d.Validate(n); err != nil {
			return nil, err
		}
		for i, node := range d.Nodes {
			v := d.Value(i)
			if prev, dup := constrained[node]; dup {
				if prev != v {
					return nil, fmt.Errorf("fit: node %d constrained to both %g and %g", node, prev, v)
				}
				continue
			}
			constrained[node] = v
			order = append(order, node)
		}
	}
	ap := &DirichletApplier{n: n}
	for _, node := range order {
		val := constrained[node]
		for k := a.RowPtr[node]; k < a.RowPtr[node+1]; k++ {
			j := a.ColIdx[k]
			if j == node {
				continue
			}
			if kj, ok := a.Find(j, node); ok {
				if _, isC := constrained[j]; !isC {
					ap.updK = append(ap.updK, int32(kj))
					ap.updJ = append(ap.updJ, int32(j))
					ap.updV = append(ap.updV, val)
				}
				ap.zeroK = append(ap.zeroK, int32(kj))
			}
			ap.zeroK = append(ap.zeroK, int32(k))
		}
		kd, ok := a.Find(node, node)
		if !ok {
			return nil, fmt.Errorf("fit: diagonal entry for constrained node %d missing", node)
		}
		ap.diagK = append(ap.diagK, int32(kd))
		ap.diagNode = append(ap.diagNode, int32(node))
		ap.diagV = append(ap.diagV, val)
	}
	return ap, nil
}

// NumConstrained returns the number of constrained DOFs.
func (ap *DirichletApplier) NumConstrained() int { return len(ap.diagK) }

// Apply imposes the precomputed constraints on the freshly assembled values
// of a and the right-hand side, exactly as ApplyDirichlet would.
func (ap *DirichletApplier) Apply(a *sparse.CSR, rhs []float64) {
	if a.Rows != ap.n || len(rhs) != ap.n {
		panic("fit: DirichletApplier dimension mismatch")
	}
	for k := range ap.updK {
		rhs[ap.updJ[k]] -= a.Val[ap.updK[k]] * ap.updV[k]
	}
	for _, k := range ap.zeroK {
		a.Val[k] = 0
	}
	for k := range ap.diagK {
		d := a.Val[ap.diagK[k]]
		if d == 0 || math.IsNaN(d) {
			d = 1
		}
		a.Val[ap.diagK[k]] = d
		rhs[ap.diagNode[k]] = d * ap.diagV[k]
	}
}
