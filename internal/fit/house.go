package fit

import (
	"fmt"
	"strings"

	"etherm/internal/grid"
	"etherm/internal/sparse"
)

// House bundles the discrete operators of the paper's Fig. 1 ("discrete
// electrothermal house"): the topological gradient/divergence pair of the
// Maxwell side, the material matrices Mσ, Mλ, Mρc, and the Joule coupling.
// It exists for inspection, documentation and verification — the production
// solver assembles the Laplacians branch-wise without forming the products.
type House struct {
	G      *sparse.CSR // discrete gradient, edges×nodes
	Div    *sparse.CSR // discrete dual divergence S̃ = −Gᵀ, nodes×edges
	MSigma []float64   // diagonal of Mσ(T) per edge
	MLamda []float64   // diagonal of Mλ(T) per edge
	MRhoC  []float64   // diagonal of Mρc per node
}

// BuildHouse evaluates all operators of the electrothermal house at the
// temperature field T (nil for the 300 K reference).
func (a *Assembler) BuildHouse(T []float64) *House {
	h := &House{
		G:      a.Grid.Gradient(),
		MSigma: make([]float64, a.NumEdges()),
		MLamda: make([]float64, a.NumEdges()),
		MRhoC:  a.MassDiag(),
	}
	h.Div = h.G.Transpose()
	h.Div.Scale(-1)
	a.EdgeConductances(Electric, T, h.MSigma)
	a.EdgeConductances(Thermal, T, h.MLamda)
	return h
}

// ElectricLaplacian forms −S̃ Mσ G = Gᵀ Mσ G explicitly (for verification).
func (h *House) ElectricLaplacian() *sparse.CSR { return tripleProduct(h.G, h.MSigma) }

// ThermalLaplacian forms −S̃ Mλ G = Gᵀ Mλ G explicitly (for verification).
func (h *House) ThermalLaplacian() *sparse.CSR { return tripleProduct(h.G, h.MLamda) }

// tripleProduct computes Gᵀ diag(m) G via stamping, which is algebraically
// identical to the explicit sparse product for an incidence-structured G.
func tripleProduct(g *sparse.CSR, m []float64) *sparse.CSR {
	b := sparse.NewBuilder(g.Cols, g.Cols)
	for e := 0; e < g.Rows; e++ {
		lo, hi := g.RowPtr[e], g.RowPtr[e+1]
		if hi-lo != 2 {
			continue
		}
		n1, n2 := g.ColIdx[lo], g.ColIdx[lo+1]
		b.AddSym(n1, n2, m[e])
	}
	for i := 0; i < g.Cols; i++ {
		b.Add(i, i, 0)
	}
	return b.ToCSR()
}

// Verify checks the structural identities of the house: the duality
// S̃ = −Gᵀ, G applied to constants vanishing, and positivity of the material
// diagonals. It returns nil when all hold.
func (h *House) Verify() error {
	gt := h.G.Transpose()
	if gt.Rows != h.Div.Rows || gt.NNZ() != h.Div.NNZ() {
		return fmt.Errorf("fit: S̃ and −Gᵀ differ structurally")
	}
	for i := range gt.Val {
		if gt.Val[i] != -h.Div.Val[i] || gt.ColIdx[i] != h.Div.ColIdx[i] {
			return fmt.Errorf("fit: S̃ ≠ −Gᵀ at entry %d", i)
		}
	}
	ones := make([]float64, h.G.Cols)
	for i := range ones {
		ones[i] = 1
	}
	gOnes := make([]float64, h.G.Rows)
	h.G.MulVec(gOnes, ones)
	if sparse.NormInf(gOnes) != 0 {
		return fmt.Errorf("fit: G·1 ≠ 0 (max %g)", sparse.NormInf(gOnes))
	}
	for e, v := range h.MSigma {
		if v < 0 {
			return fmt.Errorf("fit: Mσ[%d] = %g negative", e, v)
		}
	}
	for e, v := range h.MLamda {
		if v <= 0 {
			return fmt.Errorf("fit: Mλ[%d] = %g non-positive", e, v)
		}
	}
	for n, v := range h.MRhoC {
		if v <= 0 {
			return fmt.Errorf("fit: Mρc[%d] = %g non-positive", n, v)
		}
	}
	return nil
}

// Render draws the electrothermal house of Fig. 1 as ASCII art, annotated
// with the dimensions of this instance's operators.
func (h *House) Render(g *grid.Grid) string {
	var b strings.Builder
	nn, ne := g.NumNodes(), g.NumEdges()
	fmt.Fprintf(&b, "Discrete electrothermal house (FIT), %d nodes / %d edges\n\n", nn, ne)
	b.WriteString("        Maxwell house                  Thermal house\n")
	b.WriteString("  Φ [V] --(-G)--> ^e [V]          T [K] --(-G)--> ^t [K]\n")
	fmt.Fprintf(&b, "            |  Mσ(T) [S] %8s            |  Mλ(T) [W/K]\n", "")
	b.WriteString("            v                              v\n")
	b.WriteString("  0  <--(S~)-- ^j [A]            Q [W] <--(S~)-- ^q [W]\n")
	b.WriteString("                                   ^\n")
	b.WriteString("                                   |  Mρc [Ws/K] d/dt, Qel = ^e . ^j\n")
	b.WriteString("\ncoupling: Qel (Joule) feeds the thermal RHS; σ(T), λ(T) close the loop.\n")
	fmt.Fprintf(&b, "operator sizes: G %d×%d, S~ %d×%d, |Mσ|=|Mλ|=%d, |Mρc|=%d\n",
		h.G.Rows, h.G.Cols, h.Div.Rows, h.Div.Cols, len(h.MSigma), len(h.MRhoC))
	return b.String()
}
