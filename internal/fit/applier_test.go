package fit

import (
	"math"
	"math/rand/v2"
	"testing"

	"etherm/internal/sparse"
)

// randomSymPattern builds a random symmetric-pattern matrix with a full
// diagonal, mimicking an assembled operator.
func randomSymPattern(rng *rand.Rand, n int) *sparse.CSR {
	b := sparse.NewBuilder(n, n)
	for k := 0; k < 4*n; k++ {
		i, j := rng.IntN(n), rng.IntN(n)
		if i == j {
			continue
		}
		b.AddSym(i, j, rng.NormFloat64())
	}
	for i := 0; i < n; i++ {
		b.Add(i, i, 1+rng.Float64())
	}
	return b.ToCSR()
}

// TestDirichletApplierMatchesApplyDirichlet compares the precomputed applier
// against the reference elimination on random matrices, values and
// constraint sets — matrix values and right-hand side must agree exactly.
func TestDirichletApplierMatchesApplyDirichlet(t *testing.T) {
	rng := rand.New(rand.NewPCG(41, 42))
	for trial := 0; trial < 25; trial++ {
		n := 6 + rng.IntN(30)
		a := randomSymPattern(rng, n)

		nc := 1 + rng.IntN(n/2)
		nodes := rng.Perm(n)[:nc]
		sets := []Dirichlet{
			{Nodes: nodes[:nc/2+1], Values: []float64{rng.NormFloat64()}},
		}
		if rest := nodes[nc/2+1:]; len(rest) > 0 {
			vals := make([]float64, len(rest))
			for i := range vals {
				vals[i] = rng.NormFloat64()
			}
			sets = append(sets, Dirichlet{Nodes: rest, Values: vals})
		}

		ap, err := NewDirichletApplier(a, sets...)
		if err != nil {
			t.Fatal(err)
		}
		if ap.NumConstrained() != nc {
			t.Fatalf("applier holds %d constraints, want %d", ap.NumConstrained(), nc)
		}

		// Reference path on a deep copy.
		aRef := a.Clone()
		rhsRef := make([]float64, n)
		rhsAp := make([]float64, n)
		for i := range rhsRef {
			v := rng.NormFloat64()
			rhsRef[i] = v
			rhsAp[i] = v
		}
		if err := ApplyDirichlet(aRef, rhsRef, sets...); err != nil {
			t.Fatal(err)
		}
		ap.Apply(a, rhsAp)

		for k := range a.Val {
			if a.Val[k] != aRef.Val[k] {
				t.Fatalf("trial %d: Val[%d] = %g, reference %g", trial, k, a.Val[k], aRef.Val[k])
			}
		}
		// ApplyDirichlet accumulates the contributions of multiple
		// constrained neighbors in Go map order (nondeterministic!), so rhs
		// entries can differ from the applier's fixed order in the last bit.
		// The applier itself is deterministic — that is the point.
		for i := range rhsAp {
			if d := math.Abs(rhsAp[i] - rhsRef[i]); d > 1e-13*(1+math.Abs(rhsRef[i])) {
				t.Fatalf("trial %d: rhs[%d] = %g, reference %g", trial, i, rhsAp[i], rhsRef[i])
			}
		}
	}
}

// TestDirichletApplierReusable checks a second Apply on freshly assembled
// values (pattern-stable reassembly) matches a fresh reference elimination.
func TestDirichletApplierReusable(t *testing.T) {
	rng := rand.New(rand.NewPCG(43, 44))
	a := randomSymPattern(rng, 20)
	sets := []Dirichlet{{Nodes: []int{0, 7, 13}, Values: []float64{2.5}}}
	ap, err := NewDirichletApplier(a, sets...)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 3; round++ {
		for k := range a.Val {
			a.Val[k] = rng.NormFloat64()
		}
		// Re-symmetrize values so the reference's symmetric walk sees the
		// same entries (pattern already symmetric).
		for i := 0; i < a.Rows; i++ {
			for k := a.RowPtr[i]; k < a.RowPtr[i+1]; k++ {
				if j := a.ColIdx[k]; j > i {
					if kj, ok := a.Find(j, i); ok {
						a.Val[kj] = a.Val[k]
					}
				}
			}
		}
		aRef := a.Clone()
		rhsRef := make([]float64, a.Rows)
		rhsAp := make([]float64, a.Rows)
		for i := range rhsRef {
			v := rng.NormFloat64()
			rhsRef[i], rhsAp[i] = v, v
		}
		if err := ApplyDirichlet(aRef, rhsRef, sets...); err != nil {
			t.Fatal(err)
		}
		ap.Apply(a, rhsAp)
		for k := range a.Val {
			if a.Val[k] != aRef.Val[k] {
				t.Fatalf("round %d: Val[%d] mismatch", round, k)
			}
		}
		for i := range rhsAp {
			if d := math.Abs(rhsAp[i] - rhsRef[i]); d > 1e-13*(1+math.Abs(rhsRef[i])) {
				t.Fatalf("round %d: rhs[%d] mismatch", round, i)
			}
		}
	}
}

// TestDirichletApplierConflict mirrors ApplyDirichlet's duplicate handling:
// same node with equal values is fine, conflicting values error.
func TestDirichletApplierConflict(t *testing.T) {
	rng := rand.New(rand.NewPCG(45, 46))
	a := randomSymPattern(rng, 8)
	if _, err := NewDirichletApplier(a,
		Dirichlet{Nodes: []int{1}, Values: []float64{3}},
		Dirichlet{Nodes: []int{1}, Values: []float64{4}}); err == nil {
		t.Error("expected conflict error")
	}
	if _, err := NewDirichletApplier(a,
		Dirichlet{Nodes: []int{1}, Values: []float64{3}},
		Dirichlet{Nodes: []int{1}, Values: []float64{3}}); err != nil {
		t.Errorf("equal duplicate constraint should be accepted: %v", err)
	}
}

// TestDirichletApplierZeroAlloc: the per-solve constraint application must
// not allocate.
func TestDirichletApplierZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewPCG(47, 48))
	a := randomSymPattern(rng, 50)
	ap, err := NewDirichletApplier(a, Dirichlet{Nodes: []int{0, 10, 20}, Values: []float64{1}})
	if err != nil {
		t.Fatal(err)
	}
	rhs := make([]float64, a.Rows)
	allocs := testing.AllocsPerRun(20, func() { ap.Apply(a, rhs) })
	if allocs != 0 {
		t.Errorf("Apply performed %v allocations, want 0", allocs)
	}
}

// TestEdgeConductancesWorkersBitIdentical compares the blocked parallel
// assembly against the serial one bit for bit, on a mesh below the size
// gate (serial fallback) and one above it (the goroutine path really runs).
func TestEdgeConductancesWorkersBitIdentical(t *testing.T) {
	small, gs := uniformAssembler(t, 1, 6, 5, 4)
	big, gb := uniformAssembler(t, 1, 13, 13, 12)
	if gb.NumEdges() < ParallelMinEdges {
		t.Fatalf("large mesh has %d edges, below the %d parallel gate", gb.NumEdges(), ParallelMinEdges)
	}
	for _, tc := range []struct {
		asm *Assembler
		ne  int
		nn  int
	}{{small, gs.NumEdges(), gs.NumNodes()}, {big, gb.NumEdges(), gb.NumNodes()}} {
		T := make([]float64, tc.nn)
		for i := range T {
			T[i] = 300 + 20*float64(i%13)
		}
		for _, kind := range []Kind{Electric, Thermal} {
			ref := make([]float64, tc.ne)
			tc.asm.EdgeConductances(kind, T, ref)
			for _, workers := range []int{0, 2, 8} {
				dst := make([]float64, tc.ne)
				tc.asm.EdgeConductancesWorkers(kind, T, dst, workers)
				for e := range dst {
					if dst[e] != ref[e] {
						t.Fatalf("%v edges=%d workers=%d: edge %d = %g, serial %g",
							kind, tc.ne, workers, e, dst[e], ref[e])
					}
				}
			}
		}
	}
}
