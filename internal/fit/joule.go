package fit

import "etherm/internal/material"

// JouleCellAverage implements the paper's Joule redistribution path: the edge
// voltages are interpolated to the primary cell midpoints, the power density
// Q_el,k = σ_k |E_k|² is evaluated per cell and the cell powers are averaged
// back to the primary nodes with dual-volume overlap weights, so that the
// node receives Q_el = Ṽ_j q_j.
//
// Unlike JouleEdgeSplit this variant is not exactly energy conserving at the
// discrete level (the interpolation redistributes power between neighbouring
// cells); the difference is quantified by the Joule-scheme ablation bench.
// phi and T are grid-node vectors; dst (grid-node length) is accumulated.
// It returns the total injected power.
func (a *Assembler) JouleCellAverage(phi, T, dst []float64) float64 {
	g := a.Grid
	nxm, nym := g.Nx-1, g.Ny-1
	total := 0.0
	for c := 0; c < g.NumCells(); c++ {
		ci := c % nxm
		cj := (c / nxm) % nym
		ck := c / (nxm * nym)

		dx := g.Xs[ci+1] - g.Xs[ci]
		dy := g.Ys[cj+1] - g.Ys[cj]
		dz := g.Zs[ck+1] - g.Zs[ck]

		nodes := g.CellNodes(c)
		// Average field components from the four parallel edges of the cell.
		// Node order: (i,j,k),(i+1,j,k),(i,j+1,k),(i+1,j+1,k), then k+1 layer.
		ex := (phi[nodes[0]] - phi[nodes[1]] + phi[nodes[2]] - phi[nodes[3]] +
			phi[nodes[4]] - phi[nodes[5]] + phi[nodes[6]] - phi[nodes[7]]) / (4 * dx)
		ey := (phi[nodes[0]] - phi[nodes[2]] + phi[nodes[1]] - phi[nodes[3]] +
			phi[nodes[4]] - phi[nodes[6]] + phi[nodes[5]] - phi[nodes[7]]) / (4 * dy)
		ez := (phi[nodes[0]] - phi[nodes[4]] + phi[nodes[1]] - phi[nodes[5]] +
			phi[nodes[2]] - phi[nodes[6]] + phi[nodes[3]] - phi[nodes[7]]) / (4 * dz)

		// Cell temperature: average of the eight nodes.
		var tc float64
		if T != nil {
			for _, n := range nodes {
				tc += T[n]
			}
			tc /= 8
		} else {
			tc = material.ReferenceTemperature
		}
		sigma := a.Lib.At(a.cellMat[c]).ElecCond(tc)
		p := sigma * (ex*ex + ey*ey + ez*ez) * dx * dy * dz
		if p == 0 {
			continue
		}
		total += p

		// Distribute to the eight nodes with dual-volume overlap weights.
		// For a tensor cell the overlap fractions factor per direction into
		// 1/2·1/2·1/2 shares (each node owns half of the cell extent in each
		// direction), i.e. equal 1/8 shares.
		share := p / 8
		for _, n := range nodes {
			dst[n] += share
		}
	}
	return total
}
