package fit

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"etherm/internal/grid"
	"etherm/internal/material"
	"etherm/internal/solver"
	"etherm/internal/sparse"
)

func testLib(t *testing.T) *material.Library {
	t.Helper()
	lib, err := material.NewLibrary(material.EpoxyResin(), material.Copper())
	if err != nil {
		t.Fatal(err)
	}
	return lib
}

func uniformAssembler(t *testing.T, matID int, nx, ny, nz int) (*Assembler, *grid.Grid) {
	t.Helper()
	g, err := grid.NewUniform(1e-3, 1e-3, 1e-3, nx, ny, nz)
	if err != nil {
		t.Fatal(err)
	}
	cellMat := make([]int, g.NumCells())
	for i := range cellMat {
		cellMat[i] = matID
	}
	a, err := NewAssembler(g, cellMat, testLib(t))
	if err != nil {
		t.Fatal(err)
	}
	return a, g
}

func gridBranches(g *grid.Grid) []Branch {
	out := make([]Branch, g.NumEdges())
	for e := range out {
		n1, n2 := g.EdgeNodes(e)
		out[e] = Branch{N1: n1, N2: n2}
	}
	return out
}

func TestEdgeConductanceUniformMaterial(t *testing.T) {
	a, g := uniformAssembler(t, 1, 4, 3, 3) // copper
	cond := make([]float64, g.NumEdges())
	a.EdgeConductances(Electric, nil, cond)
	sigma := material.Copper().ElecCond(300)
	for e := 0; e < g.NumEdges(); e++ {
		want := sigma * g.DualArea(e) / g.EdgeLength(e)
		if math.Abs(cond[e]-want) > 1e-9*want {
			t.Fatalf("edge %d conductance %g, want %g", e, cond[e], want)
		}
	}
}

func TestEdgeConductanceTwoMaterialInterface(t *testing.T) {
	// Lower half copper, upper half epoxy, split at z = 0.5 mm: an x-edge on
	// the interface plane must see the 50/50 volumetric average.
	g, err := grid.NewUniform(1e-3, 1e-3, 1e-3, 3, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	lib := testLib(t)
	cellMat := make([]int, g.NumCells())
	for c := range cellMat {
		_, _, ck := g.CellCoordsOf(c)
		if ck == 0 {
			cellMat[c] = 1 // copper below
		} else {
			cellMat[c] = 0 // epoxy above
		}
	}
	a, err := NewAssembler(g, cellMat, lib)
	if err != nil {
		t.Fatal(err)
	}
	cond := make([]float64, g.NumEdges())
	a.EdgeConductances(Thermal, nil, cond)

	e := g.EdgeIndex(grid.X, 0, 1, 1) // on the interface plane, interior in y
	lamAvg := 0.5*material.Copper().ThermCond(300) + 0.5*material.EpoxyResin().ThermCond(300)
	want := lamAvg * g.DualArea(e) / g.EdgeLength(e)
	if math.Abs(cond[e]-want) > 1e-9*want {
		t.Fatalf("interface edge conductance %g, want %g", cond[e], want)
	}
}

func TestMassDiagSumsToHeatCapacity(t *testing.T) {
	a, g := uniformAssembler(t, 0, 4, 4, 4) // epoxy
	mass := a.MassDiag()
	sum := 0.0
	for _, v := range mass {
		sum += v
	}
	want := material.EpoxyResin().VolHeatCap() * g.TotalVolume()
	if math.Abs(sum-want) > 1e-9*want {
		t.Errorf("ΣMρc = %g, want %g", sum, want)
	}
}

func TestOperatorMatchesExplicitProduct(t *testing.T) {
	// The branch-stamped Laplacian must equal Gᵀ Mσ G = −S̃ Mσ G.
	a, g := uniformAssembler(t, 1, 3, 4, 3)
	house := a.BuildHouse(nil)
	explicit := house.ElectricLaplacian()

	op, err := NewOperator(g.NumNodes(), gridBranches(g))
	if err != nil {
		t.Fatal(err)
	}
	cond := make([]float64, g.NumEdges())
	a.EdgeConductances(Electric, nil, cond)
	op.SetValues(cond)
	stamped := op.Matrix()

	if stamped.Rows != explicit.Rows {
		t.Fatal("shape mismatch")
	}
	for i := 0; i < stamped.Rows; i++ {
		for k := stamped.RowPtr[i]; k < stamped.RowPtr[i+1]; k++ {
			j := stamped.ColIdx[k]
			if d := math.Abs(stamped.Val[k] - explicit.At(i, j)); d > 1e-6 {
				t.Fatalf("(%d,%d): stamped %g vs explicit %g", i, j, stamped.Val[k], explicit.At(i, j))
			}
		}
	}
}

func TestHouseVerify(t *testing.T) {
	a, g := uniformAssembler(t, 1, 3, 3, 4)
	house := a.BuildHouse(nil)
	if err := house.Verify(); err != nil {
		t.Fatal(err)
	}
	if s := house.Render(g); len(s) < 100 {
		t.Error("house rendering suspiciously short")
	}
}

func TestLaplacianRowSumsZero(t *testing.T) {
	a, g := uniformAssembler(t, 1, 4, 3, 3)
	op, err := NewOperator(g.NumNodes(), gridBranches(g))
	if err != nil {
		t.Fatal(err)
	}
	cond := make([]float64, g.NumEdges())
	a.EdgeConductances(Thermal, nil, cond)
	op.SetValues(cond)
	m := op.Matrix()
	ones := make([]float64, m.Cols)
	for i := range ones {
		ones[i] = 1
	}
	out := make([]float64, m.Rows)
	m.MulVec(out, ones)
	if sparse.NormInf(out) > 1e-9 {
		t.Errorf("Laplacian row sums not zero: %g", sparse.NormInf(out))
	}
	if !m.IsSymmetric(1e-12) {
		t.Error("Laplacian not symmetric")
	}
}

func TestJouleEdgeSplitConservesEnergy(t *testing.T) {
	f := func(seed uint64) bool {
		r := rand.New(rand.NewPCG(seed, 23))
		n := 4 + r.IntN(20)
		var branches []Branch
		var g []float64
		for i := 0; i < n-1; i++ {
			branches = append(branches, Branch{N1: i, N2: i + 1})
			g = append(g, 0.1+r.Float64())
		}
		for k := 0; k < n/2; k++ {
			i, j := r.IntN(n), r.IntN(n)
			if i != j {
				branches = append(branches, Branch{N1: i, N2: j})
				g = append(g, 0.1+r.Float64())
			}
		}
		phi := make([]float64, n)
		for i := range phi {
			phi[i] = r.NormFloat64()
		}
		dst := make([]float64, n)
		JouleEdgeSplit(branches, g, phi, dst)
		sum := 0.0
		for _, v := range dst {
			sum += v
		}
		total := TotalPower(branches, g, phi)
		return math.Abs(sum-total) <= 1e-12*(1+total) && total >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestJouleCellAverageMatchesEdgeSplitForUniformField(t *testing.T) {
	// φ = E·x in uniform copper: both schemes must give σE²·V in total.
	a, g := uniformAssembler(t, 1, 5, 4, 4)
	phi := make([]float64, g.NumNodes())
	const efield = 2.5 // V/m
	for n := range phi {
		x, _, _ := g.NodePosition(n)
		phi[n] = efield * x
	}
	branches := gridBranches(g)
	cond := make([]float64, g.NumEdges())
	a.EdgeConductances(Electric, nil, cond)

	dstEdge := make([]float64, g.NumNodes())
	JouleEdgeSplit(branches, cond, phi, dstEdge)
	totalEdge := TotalPower(branches, cond, phi)

	dstCell := make([]float64, g.NumNodes())
	totalCell := a.JouleCellAverage(phi, nil, dstCell)

	sigma := material.Copper().ElecCond(300)
	want := sigma * efield * efield * g.TotalVolume()
	if math.Abs(totalEdge-want) > 1e-9*want {
		t.Errorf("edge-split total %g, want %g", totalEdge, want)
	}
	if math.Abs(totalCell-want) > 1e-9*want {
		t.Errorf("cell-average total %g, want %g", totalCell, want)
	}
	// Node sums agree with totals.
	sum := 0.0
	for _, v := range dstCell {
		sum += v
	}
	if math.Abs(sum-totalCell) > 1e-12*want {
		t.Errorf("cell-average node sum %g vs total %g", sum, totalCell)
	}
}

func TestApplyDirichletPathGraph(t *testing.T) {
	// 1D path of equal conductances with ends fixed at 0 and 1 must give a
	// linear profile; the eliminated system must stay symmetric.
	n := 9
	var branches []Branch
	for i := 0; i < n-1; i++ {
		branches = append(branches, Branch{N1: i, N2: i + 1})
	}
	op, err := NewOperator(n, branches)
	if err != nil {
		t.Fatal(err)
	}
	g := make([]float64, n-1)
	for i := range g {
		g[i] = 3.7
	}
	op.SetValues(g)
	a := op.Matrix()
	rhs := make([]float64, n)
	err = ApplyDirichlet(a, rhs,
		Dirichlet{Nodes: []int{0}, Values: []float64{0}},
		Dirichlet{Nodes: []int{n - 1}, Values: []float64{1}})
	if err != nil {
		t.Fatal(err)
	}
	if !a.IsSymmetric(1e-12) {
		t.Error("matrix lost symmetry after Dirichlet elimination")
	}
	x := make([]float64, n)
	if _, err := solver.CG(a, rhs, x, solver.NewJacobi(a), solver.Options{Tol: 1e-12}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		want := float64(i) / float64(n-1)
		if math.Abs(x[i]-want) > 1e-8 {
			t.Fatalf("x[%d] = %g, want %g", i, x[i], want)
		}
	}
}

func TestApplyDirichletConflictingValues(t *testing.T) {
	op, err := NewOperator(3, []Branch{{0, 1}, {1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	op.SetValues([]float64{1, 1})
	rhs := make([]float64, 3)
	err = ApplyDirichlet(op.Matrix(), rhs,
		Dirichlet{Nodes: []int{0}, Values: []float64{1}},
		Dirichlet{Nodes: []int{0}, Values: []float64{2}})
	if err == nil {
		t.Error("expected conflict error")
	}
}

func TestRobinLossAndLinearizationsAgreeAtPoint(t *testing.T) {
	bc := RobinBC{H: 25, Emissivity: 0.2475, TInf: 300}
	if err := bc.Validate(); err != nil {
		t.Fatal(err)
	}
	areas := []float64{1e-6, 2e-6, 0}
	T := []float64{450, 320, 999}
	loss := make([]float64, 3)
	total := RobinLoss(T, areas, bc, loss)

	sum := 0.0
	for _, v := range loss {
		sum += v
	}
	if math.Abs(total-sum) > 1e-15 {
		t.Error("RobinLoss total disagrees with node sum")
	}
	if loss[2] != 0 {
		t.Error("zero-area node received boundary loss")
	}

	for _, newton := range []bool{false, true} {
		diag := make([]float64, 3)
		rhs := make([]float64, 3)
		RobinLinearized(T, areas, bc, newton, diag, rhs)
		for n := range areas {
			// At the linearization point: diag·T − rhs == q exactly.
			got := diag[n]*T[n] - rhs[n]
			if math.Abs(got-loss[n]) > 1e-9*(1+math.Abs(loss[n])) {
				t.Errorf("newton=%v node %d: linearization %g vs loss %g", newton, n, got, loss[n])
			}
		}
	}
}

func TestRobinRadiationOnly(t *testing.T) {
	bc := RobinBC{H: 0, Emissivity: 1, TInf: 300}
	areas := []float64{1}
	T := []float64{400}
	dst := make([]float64, 1)
	total := RobinLoss(T, areas, bc, dst)
	want := StefanBoltzmann * (math.Pow(400, 4) - math.Pow(300, 4))
	if math.Abs(total-want) > 1e-9*want {
		t.Errorf("radiation loss %g, want %g", total, want)
	}
}

func TestRobinValidate(t *testing.T) {
	bad := []RobinBC{
		{H: -1, TInf: 300},
		{H: 1, Emissivity: 2, TInf: 300},
		{H: 1, Emissivity: 0.5, TInf: 0},
	}
	for i, bc := range bad {
		if err := bc.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestBoundaryAreasMasked(t *testing.T) {
	a, g := uniformAssembler(t, 0, 4, 4, 4)
	all := a.BoundaryAreasMasked(RobinBC{H: 1, TInf: 300})
	topOnly := a.BoundaryAreasMasked(RobinBC{H: 1, TInf: 300, Faces: [6]bool{false, false, false, false, false, true}})
	sumAll, sumTop := 0.0, 0.0
	for n := range all {
		sumAll += all[n]
		sumTop += topOnly[n]
	}
	if math.Abs(sumAll-g.SurfaceArea()) > 1e-12*g.SurfaceArea() {
		t.Errorf("all-face area %g, want %g", sumAll, g.SurfaceArea())
	}
	wantTop := 1e-6 // 1 mm × 1 mm
	if math.Abs(sumTop-wantTop) > 1e-12 {
		t.Errorf("top-face area %g, want %g", sumTop, wantTop)
	}
}

func TestOperatorRejectsBadBranches(t *testing.T) {
	if _, err := NewOperator(3, []Branch{{0, 3}}); err == nil {
		t.Error("expected out-of-range branch error")
	}
	if _, err := NewOperator(3, []Branch{{1, 1}}); err == nil {
		t.Error("expected self-loop error")
	}
}

func TestApplyLaplacianMatchesMatrix(t *testing.T) {
	a, g := uniformAssembler(t, 1, 3, 3, 3)
	branches := gridBranches(g)
	op, err := NewOperator(g.NumNodes(), branches)
	if err != nil {
		t.Fatal(err)
	}
	cond := make([]float64, g.NumEdges())
	a.EdgeConductances(Thermal, nil, cond)
	op.SetValues(cond)

	rng := rand.New(rand.NewPCG(31, 7))
	x := make([]float64, g.NumNodes())
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	y1 := make([]float64, g.NumNodes())
	op.Matrix().MulVec(y1, x)
	y2 := make([]float64, g.NumNodes())
	ApplyLaplacian(branches, cond, x, y2)
	for i := range y1 {
		if math.Abs(y1[i]-y2[i]) > 1e-9*(1+math.Abs(y1[i])) {
			t.Fatalf("ApplyLaplacian mismatch at %d: %g vs %g", i, y1[i], y2[i])
		}
	}
}

func TestAssemblerRejectsBadInput(t *testing.T) {
	g, err := grid.NewUniform(1, 1, 1, 3, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	lib := testLib(t)
	if _, err := NewAssembler(g, make([]int, 3), lib); err == nil {
		t.Error("expected cell-count mismatch error")
	}
	bad := make([]int, g.NumCells())
	bad[0] = 99
	if _, err := NewAssembler(g, bad, lib); err == nil {
		t.Error("expected invalid material ID error")
	}
}

func TestEdgeConductanceTemperatureDependence(t *testing.T) {
	a, g := uniformAssembler(t, 1, 3, 3, 3)
	T := make([]float64, g.NumNodes())
	for i := range T {
		T[i] = 400
	}
	cold := make([]float64, g.NumEdges())
	hot := make([]float64, g.NumEdges())
	a.EdgeConductances(Electric, nil, cold)
	a.EdgeConductances(Electric, T, hot)
	for e := range cold {
		if hot[e] >= cold[e] {
			t.Fatalf("copper conductance should fall with temperature (edge %d: %g vs %g)", e, hot[e], cold[e])
		}
	}
	ratio := cold[0] / hot[0]
	want := 1 + 3.9e-3*100
	if math.Abs(ratio-want) > 1e-6 {
		t.Errorf("σ(300)/σ(400) = %g, want %g", ratio, want)
	}
}
