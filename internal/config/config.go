// Package config defines the JSON run configuration consumed by the command
// line tools, with defaults matching the paper's Table II.
package config

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"

	"etherm/internal/chipmodel"
	"etherm/internal/core"
)

// Run is the top-level configuration.
type Run struct {
	// Chip geometry and drive.
	Chip ChipConfig `json:"chip"`
	// Transient solve.
	Sim SimConfig `json:"sim"`
	// Uncertainty study.
	UQ UQConfig `json:"uq"`
}

// ChipConfig selects and overrides the package model.
type ChipConfig struct {
	// Preset: "date16" (faithful drive) or "date16-calibrated" (power level
	// matched to the paper's Fig. 7, see chipmodel.DATE16Calibrated).
	Preset string `json:"preset"`
	// Optional overrides (zero = keep preset value).
	DriveVoltageV float64 `json:"drive_voltage_v,omitempty"`
	HMaxM         float64 `json:"hmax_m,omitempty"`
	WireSegments  int     `json:"wire_segments,omitempty"`
	WireDiameterM float64 `json:"wire_diameter_m,omitempty"`
	WireMaterial  string  `json:"wire_material,omitempty"` // copper|gold|aluminum
}

// SimConfig mirrors core.Options.
type SimConfig struct {
	EndTimeS   float64 `json:"end_time_s"`
	NumSteps   int     `json:"num_steps"`
	Coupling   string  `json:"coupling,omitempty"`   // strong|weak
	Nonlinear  string  `json:"nonlinear,omitempty"`  // picard|newton
	Integrator string  `json:"integrator,omitempty"` // implicit-euler|trapezoidal|bdf2
	Joule      string  `json:"joule,omitempty"`      // edge-split|cell-average
	LinTol     float64 `json:"lin_tol,omitempty"`

	// Performance knobs (see core.Options for the full semantics).
	// Precond selects the CG preconditioner: ict | ic0 | jacobi | none.
	// Empty keeps the mode's default top tier (ICT for ensembles via
	// FastOptions, the modified-IC0 chain otherwise); ict and ic0 name the
	// top of the shared degradation chain, which falls through
	// ICT → MIC0 → IC0 → Jacobi on factorization failure.
	Precond string `json:"precond,omitempty"`
	// Precision selects the inner CG arithmetic: float64 (default) | mixed
	// (float32 Krylov iterations inside a float64 iterative-refinement
	// loop; solutions still meet lin_tol against the float64 residual).
	// Mixed needs a factorization preconditioner — it contradicts
	// precond=jacobi and precond=none.
	Precision string `json:"precision,omitempty"`
	// Deflation puts a two-level (aggregation coarse grid) tier on top of
	// the preconditioner chain; deflation_block sets the target aggregate
	// size (0 = solver default). Contradicts precond=jacobi/none, which
	// have no factorization to wrap.
	Deflation      bool `json:"deflation,omitempty"`
	DeflationBlock int  `json:"deflation_block,omitempty"`
	// PrecondOmega is the modified-IC relaxation in [0, 1]; 0 keeps the
	// default (1, full compensation), negative selects plain IC(0).
	PrecondOmega float64 `json:"precond_omega,omitempty"`
	// PrecondRefresh is the preconditioner lag ratio (default 1.5).
	PrecondRefresh float64 `json:"precond_refresh,omitempty"`
	// SolverWorkers enables the bit-identical parallel matvec/assembly path
	// inside each transient solve; 0 or 1 keeps the serial default.
	SolverWorkers int `json:"solver_workers,omitempty"`
}

// UQConfig controls the sampling study.
type UQConfig struct {
	Method    string  `json:"method"`  // monte-carlo|lhs|halton|sobol|smolyak
	Samples   int     `json:"samples"` // M (or Smolyak level when method=smolyak)
	Seed      uint64  `json:"seed"`
	Workers   int     `json:"workers,omitempty"`
	MeanDelta float64 `json:"mean_delta,omitempty"` // default 0.17
	StdDelta  float64 `json:"std_delta,omitempty"`  // default 0.048
	CriticalK float64 `json:"critical_k,omitempty"` // default 523

	// Streaming-campaign knobs. Stream selects the constant-memory
	// streaming path (O(NumOutputs) accumulators instead of O(M·NumOutputs)
	// sample storage); it is implied by any of the other knobs.
	Stream bool `json:"stream,omitempty"`
	// MaxSamples is the streaming sample budget; 0 falls back to Samples.
	MaxSamples int `json:"max_samples,omitempty"`
	// TargetSE stops the campaign early once every output's Monte Carlo
	// standard error (eq. 6) reaches it; TargetCI once the 95% Wilson
	// half-width of the failure probability does. Zero disables a rule.
	TargetSE float64 `json:"target_se,omitempty"`
	TargetCI float64 `json:"target_ci,omitempty"`
	// Checkpoint periodically persists resumable campaign state to this
	// path (every CheckpointEvery folded samples; 0 = default period).
	// Sharded campaigns write one "<path>.shard-N" file per shard.
	Checkpoint      string `json:"checkpoint,omitempty"`
	CheckpointEvery int    `json:"checkpoint_every,omitempty"`

	// Shards partitions the sample range into this many self-contained,
	// block-aligned shards (merged results are bit-identical for any shard
	// count or worker placement — see uq.ShardPlan). 0 keeps the
	// single-fold streaming campaign, shards=1 is a one-shard campaign
	// through the same merge layer; sharding implies streaming and is
	// budget-only (no adaptive targets).
	Shards int `json:"shards,omitempty"`
	// ShardBlock is the merge granularity of the shard plan
	// (0 = uq.DefaultShardBlockSize).
	ShardBlock int `json:"shard_block,omitempty"`
}

// Sharded reports whether the configuration routes the campaign through the
// shard/merge layer (any positive shard count).
func (u UQConfig) Sharded() bool { return u.Shards >= 1 }

// Streaming reports whether the configuration selects the streaming
// campaign path, explicitly or through one of its knobs.
func (u UQConfig) Streaming() bool {
	return u.Stream || u.MaxSamples > 0 || u.TargetSE > 0 || u.TargetCI > 0 || u.Checkpoint != "" || u.Sharded()
}

// Budget returns the effective sample budget of a streaming campaign.
func (u UQConfig) Budget() int {
	if u.MaxSamples > 0 {
		return u.MaxSamples
	}
	return u.Samples
}

// Default returns the configuration of the paper's study (Table II).
func Default() Run {
	return Run{
		Chip: ChipConfig{Preset: "date16-calibrated"},
		Sim:  SimConfig{EndTimeS: 50, NumSteps: 50},
		UQ: UQConfig{
			Method: "monte-carlo", Samples: 1000, Seed: 2016,
			MeanDelta: 0.17, StdDelta: 0.048, CriticalK: 523,
		},
	}
}

// Load reads and validates a configuration file; empty path returns Default.
func Load(path string) (Run, error) {
	cfg := Default()
	if path == "" {
		return cfg, nil
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return cfg, err
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&cfg); err != nil {
		return cfg, fmt.Errorf("config: %s: %w", path, err)
	}
	if err := cfg.Validate(); err != nil {
		return cfg, fmt.Errorf("config: %s: %w", path, err)
	}
	return cfg, nil
}

// Validate checks the configuration.
func (c Run) Validate() error {
	switch c.Chip.Preset {
	case "", "date16", "date16-calibrated":
	default:
		return fmt.Errorf("unknown chip preset %q", c.Chip.Preset)
	}
	switch c.Chip.WireMaterial {
	case "", "copper", "gold", "aluminum":
	default:
		return fmt.Errorf("unknown wire material %q", c.Chip.WireMaterial)
	}
	if err := c.Sim.Validate(); err != nil {
		return err
	}
	switch c.UQ.Method {
	case "", "monte-carlo", "lhs", "halton", "sobol", "smolyak":
	default:
		return fmt.Errorf("unknown UQ method %q", c.UQ.Method)
	}
	if c.UQ.Samples <= 0 && c.UQ.Budget() <= 0 {
		return fmt.Errorf("uq.samples must be positive")
	}
	if c.UQ.MaxSamples < 0 || c.UQ.TargetSE < 0 || c.UQ.TargetCI < 0 || c.UQ.CheckpointEvery < 0 {
		return fmt.Errorf("uq streaming knobs must be non-negative")
	}
	if c.UQ.Shards < 0 || c.UQ.ShardBlock < 0 {
		return fmt.Errorf("uq sharding knobs must be non-negative")
	}
	if c.UQ.Sharded() && (c.UQ.TargetSE > 0 || c.UQ.TargetCI > 0) {
		return fmt.Errorf("sharded campaigns are budget-only: adaptive stopping (target_se/target_ci) needs the single-fold streaming path")
	}
	if c.UQ.Method == "smolyak" && c.UQ.Streaming() {
		return fmt.Errorf("streaming campaigns apply to sampling methods, not smolyak collocation")
	}
	return nil
}

// Validate checks the transient-solve section in isolation, so other
// front-ends (e.g. the batch scenario engine) can embed SimConfig without a
// full Run.
func (s SimConfig) Validate() error {
	if s.EndTimeS <= 0 || s.NumSteps <= 0 {
		return fmt.Errorf("end_time_s and num_steps must be positive")
	}
	switch s.Coupling {
	case "", "strong", "weak":
	default:
		return fmt.Errorf("unknown coupling %q", s.Coupling)
	}
	switch s.Nonlinear {
	case "", "picard", "newton":
	default:
		return fmt.Errorf("unknown nonlinear mode %q", s.Nonlinear)
	}
	switch s.Integrator {
	case "", "implicit-euler", "trapezoidal", "bdf2":
	default:
		return fmt.Errorf("unknown integrator %q", s.Integrator)
	}
	switch s.Joule {
	case "", "edge-split", "cell-average":
	default:
		return fmt.Errorf("unknown joule scheme %q", s.Joule)
	}
	switch s.Precond {
	case "", "ict", "ic0", "jacobi", "none":
	default:
		return fmt.Errorf("unknown preconditioner %q", s.Precond)
	}
	switch s.Precision {
	case "", "float64", "mixed":
	default:
		return fmt.Errorf("unknown precision %q", s.Precision)
	}
	// Contradictory combinations are rejected here instead of being silently
	// ignored downstream: both features wrap a factorization preconditioner,
	// which jacobi/none do not build.
	if s.Precision == "mixed" && (s.Precond == "jacobi" || s.Precond == "none") {
		return fmt.Errorf("precision=mixed needs a factorization preconditioner; contradicts precond=%s", s.Precond)
	}
	if s.Deflation && (s.Precond == "jacobi" || s.Precond == "none") {
		return fmt.Errorf("deflation wraps a factorization preconditioner; contradicts precond=%s", s.Precond)
	}
	if s.DeflationBlock < 0 {
		return fmt.Errorf("negative deflation_block %d", s.DeflationBlock)
	}
	if s.DeflationBlock > 0 && !s.Deflation {
		return fmt.Errorf("deflation_block set without deflation")
	}
	if s.PrecondOmega > 1 {
		return fmt.Errorf("precond_omega %g above 1", s.PrecondOmega)
	}
	if s.PrecondRefresh < 0 {
		return fmt.Errorf("negative precond_refresh %g", s.PrecondRefresh)
	}
	if s.SolverWorkers < 0 {
		return fmt.Errorf("negative solver_workers %d", s.SolverWorkers)
	}
	return nil
}

// Spec materializes the chip specification.
func (c Run) Spec() (chipmodel.Spec, error) {
	var spec chipmodel.Spec
	switch c.Chip.Preset {
	case "", "date16-calibrated":
		spec = chipmodel.DATE16Calibrated()
	case "date16":
		spec = chipmodel.DATE16()
	default:
		return spec, fmt.Errorf("unknown preset %q", c.Chip.Preset)
	}
	if c.Chip.DriveVoltageV > 0 {
		spec.DriveV = c.Chip.DriveVoltageV
	}
	if c.Chip.HMaxM > 0 {
		spec.HMax = c.Chip.HMaxM
	}
	if c.Chip.WireSegments > 0 {
		spec.WireSegments = c.Chip.WireSegments
	}
	if c.Chip.WireDiameterM > 0 {
		spec.WireDiameter = c.Chip.WireDiameterM
	}
	return spec, nil
}

// Options materializes the solver options. Ensemble studies default to the
// fast weak-coupling settings; single runs use the strict defaults.
func (c Run) Options(forEnsemble bool) core.Options {
	return c.Sim.CoreOptions(forEnsemble)
}

// CoreOptions materializes core.Options from the transient-solve section.
// With forEnsemble the unset fields start from core.FastOptions (weak
// staggered coupling, linearized radiation) instead of the strict defaults.
func (s SimConfig) CoreOptions(forEnsemble bool) core.Options {
	var o core.Options
	if forEnsemble {
		o = core.FastOptions()
	}
	o.EndTime = s.EndTimeS
	o.NumSteps = s.NumSteps
	switch s.Coupling {
	case "strong":
		o.Coupling = core.StrongCoupling
	case "weak":
		o.Coupling = core.WeakCoupling
	}
	switch s.Nonlinear {
	case "picard":
		o.Nonlinear = core.Picard
	case "newton":
		o.Nonlinear = core.NewtonLinearized
	}
	switch s.Integrator {
	case "trapezoidal":
		o.TimeIntegrator = core.Trapezoidal
	case "bdf2":
		o.TimeIntegrator = core.BDF2
	case "implicit-euler":
		o.TimeIntegrator = core.ImplicitEuler
	}
	switch s.Joule {
	case "cell-average":
		o.Joule = core.CellAverage
	case "edge-split":
		o.Joule = core.EdgeSplit
	}
	if s.LinTol > 0 {
		o.LinTol = s.LinTol
	}
	switch s.Precond {
	case "ict":
		o.Precond = core.PrecondICT
	case "ic0":
		o.Precond = core.PrecondIC0
	case "jacobi":
		o.Precond = core.PrecondJacobi
	case "none":
		o.Precond = core.PrecondNone
	}
	if s.Precision == "mixed" {
		o.Precision = core.PrecisionMixed
	}
	if s.Deflation {
		o.Deflate = true
		o.DeflateBlock = s.DeflationBlock
	}
	if s.PrecondOmega != 0 {
		o.PrecondOmega = s.PrecondOmega
	}
	if s.PrecondRefresh > 0 {
		o.PrecondRefreshRatio = s.PrecondRefresh
	}
	if s.SolverWorkers > 0 {
		o.Workers = s.SolverWorkers
	}
	return o
}

// WriteExample writes a commented example configuration.
func WriteExample(path string) error {
	data, err := json.MarshalIndent(Default(), "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
