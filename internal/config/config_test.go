package config

import (
	"os"
	"path/filepath"
	"testing"

	"etherm/internal/core"
)

func TestDefaultMatchesTableII(t *testing.T) {
	cfg := Default()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if cfg.Sim.EndTimeS != 50 || cfg.Sim.NumSteps != 50 {
		t.Error("time discretization differs from Table II")
	}
	if cfg.UQ.Samples != 1000 || cfg.UQ.MeanDelta != 0.17 || cfg.UQ.StdDelta != 0.048 {
		t.Error("UQ defaults differ from the paper")
	}
	if cfg.UQ.CriticalK != 523 {
		t.Error("critical temperature differs from the paper")
	}
}

func TestLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "run.json")
	if err := WriteExample(path); err != nil {
		t.Fatal(err)
	}
	cfg, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if cfg != Default() {
		t.Error("round trip changed the configuration")
	}
}

func TestLoadRejectsUnknownFields(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.json")
	os.WriteFile(path, []byte(`{"chip":{"preset":"date16"},"sim":{"end_time_s":1,"num_steps":1},"uq":{"method":"monte-carlo","samples":1,"typo":true}}`), 0o644)
	if _, err := Load(path); err == nil {
		t.Error("unknown field accepted")
	}
}

func TestValidationErrors(t *testing.T) {
	bad := Default()
	bad.Chip.Preset = "nope"
	if err := bad.Validate(); err == nil {
		t.Error("bad preset accepted")
	}
	bad = Default()
	bad.Sim.Integrator = "rk4"
	if err := bad.Validate(); err == nil {
		t.Error("bad integrator accepted")
	}
	bad = Default()
	bad.UQ.Samples = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero samples accepted")
	}
	bad = Default()
	bad.UQ.TargetSE = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative target_se accepted")
	}
	bad = Default()
	bad.UQ.Method = "smolyak"
	bad.UQ.Stream = true
	if err := bad.Validate(); err == nil {
		t.Error("streaming smolyak accepted")
	}
}

func TestStreamingKnobs(t *testing.T) {
	u := UQConfig{Samples: 100}
	if u.Streaming() {
		t.Error("plain config reported streaming")
	}
	if u.Budget() != 100 {
		t.Errorf("budget %d", u.Budget())
	}
	u.MaxSamples = 5000
	if !u.Streaming() || u.Budget() != 5000 {
		t.Errorf("max_samples did not switch to streaming budget: %v %d", u.Streaming(), u.Budget())
	}
	for _, v := range []UQConfig{{Stream: true}, {TargetSE: 0.1}, {TargetCI: 0.01}, {Checkpoint: "x.ckpt"}} {
		if !v.Streaming() {
			t.Errorf("%+v not recognized as streaming", v)
		}
	}
	// Streaming budget satisfies validation even with samples unset.
	cfg := Default()
	cfg.UQ.Samples = 0
	cfg.UQ.MaxSamples = 1000
	if err := cfg.Validate(); err != nil {
		t.Errorf("streaming budget rejected: %v", err)
	}
}

func TestShardingKnobs(t *testing.T) {
	u := UQConfig{Samples: 100, Shards: 4}
	if !u.Sharded() || !u.Streaming() {
		t.Error("shards must imply the streaming sharded path")
	}
	if (UQConfig{Samples: 100}).Sharded() {
		t.Error("unsharded config reported sharded")
	}
	cfg := Default()
	cfg.UQ.Shards = 4
	cfg.UQ.ShardBlock = 128
	if err := cfg.Validate(); err != nil {
		t.Errorf("sharded config rejected: %v", err)
	}
	bad := Default()
	bad.UQ.Shards = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative shard count accepted")
	}
	adaptive := Default()
	adaptive.UQ.Shards = 2
	adaptive.UQ.TargetSE = 0.1
	if err := adaptive.Validate(); err == nil {
		t.Error("sharded config with adaptive target accepted")
	}
	smolyak := Default()
	smolyak.UQ.Method = "smolyak"
	smolyak.UQ.Shards = 2
	if err := smolyak.Validate(); err == nil {
		t.Error("sharded smolyak accepted")
	}
}

func TestSpecAndOptionsMaterialization(t *testing.T) {
	cfg := Default()
	cfg.Chip.Preset = "date16"
	cfg.Chip.WireSegments = 4
	cfg.Sim.Coupling = "weak"
	cfg.Sim.Integrator = "bdf2"
	spec, err := cfg.Spec()
	if err != nil {
		t.Fatal(err)
	}
	if spec.WireSegments != 4 {
		t.Error("wire segments override lost")
	}
	if spec.DriveV != 0.020 {
		t.Error("faithful preset drive wrong")
	}
	opt := cfg.Options(false)
	if opt.Coupling != core.WeakCoupling || opt.TimeIntegrator != core.BDF2 {
		t.Error("options materialization wrong")
	}
	// Ensemble options start from the fast profile.
	optE := cfg.Options(true)
	if optE.Nonlinear != core.NewtonLinearized {
		t.Error("ensemble options should start from FastOptions")
	}
}

func TestSolverKnobsMaterialization(t *testing.T) {
	s := SimConfig{
		EndTimeS: 10, NumSteps: 5,
		Precond: "jacobi", PrecondOmega: -1, PrecondRefresh: 2.5, SolverWorkers: 4,
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	o := s.CoreOptions(false)
	if o.Precond != core.PrecondJacobi {
		t.Error("precond selection lost")
	}
	if o.PrecondOmega != -1 {
		t.Error("precond omega override lost")
	}
	if o.PrecondRefreshRatio != 2.5 {
		t.Error("precond refresh ratio lost")
	}
	if o.Workers != 4 {
		t.Error("solver workers lost")
	}
	// Unset knobs keep the core defaults.
	d := SimConfig{EndTimeS: 10, NumSteps: 5}.CoreOptions(false)
	if d.Precond != core.PrecondIC0 || d.Workers != 0 || d.PrecondOmega != 0 {
		t.Errorf("zero-value knobs should defer to core defaults: %+v", d)
	}
	for _, bad := range []SimConfig{
		{EndTimeS: 1, NumSteps: 1, Precond: "ilu"},
		{EndTimeS: 1, NumSteps: 1, PrecondOmega: 1.5},
		{EndTimeS: 1, NumSteps: 1, PrecondRefresh: -1},
		{EndTimeS: 1, NumSteps: 1, SolverWorkers: -2},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("expected validation error for %+v", bad)
		}
	}
}

func TestPrecisionAndDeflationKnobs(t *testing.T) {
	// Valid combinations materialize into core options.
	s := SimConfig{
		EndTimeS: 10, NumSteps: 5,
		Precond: "ict", Precision: "mixed",
		Deflation: true, DeflationBlock: 96,
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	o := s.CoreOptions(false)
	if o.Precond != core.PrecondICT {
		t.Error("ict precond selection lost")
	}
	if o.Precision != core.PrecisionMixed {
		t.Error("mixed precision lost")
	}
	if !o.Deflate || o.DeflateBlock != 96 {
		t.Errorf("deflation knobs lost: %+v", o)
	}
	// Unset precision stays float64.
	d := SimConfig{EndTimeS: 10, NumSteps: 5}.CoreOptions(false)
	if d.Precision != core.PrecisionFloat64 || d.Deflate {
		t.Errorf("zero-value solver knobs should stay float64/no-deflation: %+v", d)
	}
	// Contradictory combinations are rejected up front, not silently
	// degraded at solve time.
	for name, bad := range map[string]SimConfig{
		"unknown precision":            {EndTimeS: 1, NumSteps: 1, Precision: "half"},
		"mixed with jacobi":            {EndTimeS: 1, NumSteps: 1, Precision: "mixed", Precond: "jacobi"},
		"mixed with none":              {EndTimeS: 1, NumSteps: 1, Precision: "mixed", Precond: "none"},
		"deflation with jacobi":        {EndTimeS: 1, NumSteps: 1, Deflation: true, Precond: "jacobi"},
		"deflation with none":          {EndTimeS: 1, NumSteps: 1, Deflation: true, Precond: "none"},
		"negative deflation block":     {EndTimeS: 1, NumSteps: 1, Deflation: true, DeflationBlock: -8},
		"deflation block without defl": {EndTimeS: 1, NumSteps: 1, DeflationBlock: 64},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("%s: expected validation error for %+v", name, bad)
		}
	}
	// Mixed precision rides on the default (factorization) preconditioner.
	ok := SimConfig{EndTimeS: 1, NumSteps: 1, Precision: "mixed"}
	if err := ok.Validate(); err != nil {
		t.Errorf("mixed with default precond rejected: %v", err)
	}
}
