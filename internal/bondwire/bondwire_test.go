package bondwire

import (
	"math"
	"testing"
	"testing/quick"

	"etherm/internal/fit"
	"etherm/internal/material"
)

func demoGeom() Geometry {
	return Geometry{Direct: 1.29e-3, DeltaS: 0.2e-3, DeltaH: 0.06e-3, Diameter: 25.4e-6}
}

func TestGeometryDerivedQuantities(t *testing.T) {
	g := demoGeom()
	if math.Abs(g.Length()-1.55e-3) > 1e-12 {
		t.Errorf("L = %g", g.Length())
	}
	want := (1.55e-3 - 1.29e-3) / 1.55e-3
	if math.Abs(g.RelElongation()-want) > 1e-12 {
		t.Errorf("δ = %g, want %g", g.RelElongation(), want)
	}
	area := math.Pi * 25.4e-6 * 25.4e-6 / 4
	if math.Abs(g.CrossSection()-area) > 1e-20 {
		t.Error("cross-section wrong")
	}
}

func TestFromElongationRoundTrip(t *testing.T) {
	f := func(d16 uint16) bool {
		delta := float64(d16%800) / 1000 // 0 .. 0.799
		g, err := FromElongation(1.3e-3, delta, 25.4e-6)
		if err != nil {
			return false
		}
		return math.Abs(g.RelElongation()-delta) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	if _, err := FromElongation(1e-3, 1.0, 25e-6); err == nil {
		t.Error("δ = 1 must be rejected")
	}
	if _, err := FromElongation(1e-3, -0.1, 25e-6); err == nil {
		t.Error("negative δ must be rejected")
	}
}

func TestWireConductances(t *testing.T) {
	w := Wire{NodeA: 0, NodeB: 1, Geom: demoGeom(), Mat: material.Copper()}
	// Paper's Table II values: R ≈ L/(σA) ≈ 52.7 mΩ for L = 1.55 mm.
	r := w.Resistance(300)
	want := 1.55e-3 / (5.8e7 * w.Geom.CrossSection())
	if math.Abs(r-want) > 1e-9*want {
		t.Errorf("R = %g, want %g", r, want)
	}
	if math.Abs(r-52.7e-3) > 1e-3 {
		t.Errorf("R(300 K) = %g mΩ, expected ≈ 52.7 mΩ (Table II check)", r*1e3)
	}
	// Temperature dependence: conductance falls with T.
	if w.ElecConductance(400) >= w.ElecConductance(300) {
		t.Error("electrical conductance should fall with temperature")
	}
	gth := w.ThermalConductance(300)
	if math.Abs(gth-398*w.Geom.CrossSection()/1.55e-3) > 1e-9 {
		t.Error("thermal conductance wrong")
	}
}

func TestCouplingLayout(t *testing.T) {
	wires := []Wire{
		{Name: "a", NodeA: 0, NodeB: 5, Geom: demoGeom(), Mat: material.Copper(), Segments: 1},
		{Name: "b", NodeA: 1, NodeB: 6, Geom: demoGeom(), Mat: material.Copper(), Segments: 4},
	}
	c, err := NewCoupling(10, wires)
	if err != nil {
		t.Fatal(err)
	}
	if c.TotalDOF != 13 {
		t.Errorf("TotalDOF = %d, want 13 (10 grid + 3 internals)", c.TotalDOF)
	}
	if c.NumSegments() != 5 {
		t.Errorf("NumSegments = %d, want 5", c.NumSegments())
	}
	chain := c.Chain(1)
	if len(chain) != 5 || chain[0] != 1 || chain[4] != 6 {
		t.Errorf("chain = %v", chain)
	}
	for _, dof := range chain[1:4] {
		if dof < 10 || dof >= 13 {
			t.Errorf("internal DOF %d outside extension range", dof)
		}
	}
}

func TestSegmentConductancesSeriesEquivalence(t *testing.T) {
	// N equal segments in series must reproduce the whole-wire conductance.
	whole := Wire{NodeA: 0, NodeB: 1, Geom: demoGeom(), Mat: material.Copper()}
	chain := whole
	chain.Segments = 8
	c, err := NewCoupling(2, []Wire{chain})
	if err != nil {
		t.Fatal(err)
	}
	g := make([]float64, c.NumSegments())
	c.SegmentConductances(fit.Electric, nil, g)
	inv := 0.0
	for _, gi := range g {
		inv += 1 / gi
	}
	if math.Abs(1/inv-whole.ElecConductance(300)) > 1e-12 {
		t.Errorf("series chain conductance %g, want %g", 1/inv, whole.ElecConductance(300))
	}
}

func TestMassDiagExtraConservesHeatCapacity(t *testing.T) {
	w := Wire{NodeA: 0, NodeB: 1, Geom: demoGeom(), Mat: material.Copper(), Segments: 6}
	c, err := NewCoupling(2, []Wire{w})
	if err != nil {
		t.Fatal(err)
	}
	extra := c.MassDiagExtra()
	sum := 0.0
	for _, v := range extra {
		sum += v
	}
	// Internal nodes carry (s−1)/s of the wire's capacity.
	want := w.HeatCapacity() * 5 / 6
	if math.Abs(sum-want) > 1e-12*want {
		t.Errorf("internal capacity %g, want %g", sum, want)
	}
}

func TestWireTemperatureAveraging(t *testing.T) {
	w := Wire{NodeA: 0, NodeB: 1, Geom: demoGeom(), Mat: material.Copper()}
	c, err := NewCoupling(2, []Wire{w})
	if err != nil {
		t.Fatal(err)
	}
	T := []float64{310, 350}
	if got := c.WireTemperature(0, T); got != 330 {
		t.Errorf("Xᵀ T = %g, want 330 (eq. 5)", got)
	}
	if got := c.WireMaxTemperature(0, T); got != 350 {
		t.Errorf("max = %g", got)
	}
}

func TestInitExtraLinearProfile(t *testing.T) {
	w := Wire{NodeA: 0, NodeB: 1, Geom: demoGeom(), Mat: material.Copper(), Segments: 4}
	c, err := NewCoupling(2, []Wire{w})
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, c.TotalDOF)
	x[0], x[1] = 300, 340
	c.InitExtra(x)
	chain := c.Chain(0)
	for k, dof := range chain {
		want := 300 + 40*float64(k)/4
		if math.Abs(x[dof]-want) > 1e-12 {
			t.Errorf("chain node %d: %g, want %g", k, x[dof], want)
		}
	}
}

func TestWirePowerMatchesOhm(t *testing.T) {
	w := Wire{NodeA: 0, NodeB: 1, Geom: demoGeom(), Mat: material.Copper()}
	c, err := NewCoupling(2, []Wire{w})
	if err != nil {
		t.Fatal(err)
	}
	phi := []float64{40e-3, 0}
	T := []float64{300, 300}
	p := c.WirePower(0, phi, T)
	want := 40e-3 * 40e-3 * w.ElecConductance(300)
	if math.Abs(p-want) > 1e-12*want {
		t.Errorf("P = %g, want %g", p, want)
	}
}

func TestValidation(t *testing.T) {
	good := Wire{NodeA: 0, NodeB: 1, Geom: demoGeom(), Mat: material.Copper()}
	if err := good.Validate(2); err != nil {
		t.Error(err)
	}
	bad := good
	bad.NodeB = 0
	if err := bad.Validate(2); err == nil {
		t.Error("self-loop wire accepted")
	}
	bad = good
	bad.Mat = nil
	if err := bad.Validate(2); err == nil {
		t.Error("nil material accepted")
	}
	bad = good
	bad.Geom.Diameter = 0
	if err := bad.Validate(2); err == nil {
		t.Error("zero diameter accepted")
	}
	if _, err := NewCoupling(1, []Wire{good}); err == nil {
		t.Error("out-of-range endpoint accepted")
	}
}
