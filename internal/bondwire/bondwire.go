// Package bondwire implements the paper's lumped electrothermal bonding-wire
// model: wires are not resolved by the computational grid but enter the FIT
// system as point-to-point electrothermal conductances G_bw(T_bw) stamped
// between pairs of mesh nodes (Fig. 2 of the paper), with the wire Joule
// power redistributed onto the wire end nodes and the representative wire
// temperature defined as the end-point average T_bw = Xᵀ T (eq. 5).
//
// Beyond the paper's single lumped element, a wire may be subdivided into N
// concatenated segments with internal degrees of freedom, giving a piecewise
// linear temperature along the wire — the refinement the paper mentions for
// nonlinear temperature distributions.
package bondwire

import (
	"fmt"
	"math"

	"etherm/internal/fit"
	"etherm/internal/material"
)

// Geometry describes the uncertain wire geometry of Fig. 4: the direct
// distance d between the bond points, the elongation Δs from pad
// misplacement and the elongation Δh from bending. All lengths in metres.
type Geometry struct {
	Direct   float64 // d
	DeltaS   float64 // Δs, misplacement elongation
	DeltaH   float64 // Δh, bending elongation
	Diameter float64 // wire diameter
}

// Length returns the total wire length L = d + Δs + Δh.
func (g Geometry) Length() float64 { return g.Direct + g.DeltaS + g.DeltaH }

// RelElongation returns δ = (L − d)/L, the paper's uncertain quantity.
func (g Geometry) RelElongation() float64 {
	l := g.Length()
	if l == 0 {
		return 0
	}
	return (l - g.Direct) / l
}

// CrossSection returns the wire cross-section area πD²/4.
func (g Geometry) CrossSection() float64 { return math.Pi * g.Diameter * g.Diameter / 4 }

// Validate checks physical plausibility.
func (g Geometry) Validate() error {
	if g.Direct <= 0 {
		return fmt.Errorf("bondwire: direct distance %g must be positive", g.Direct)
	}
	if g.DeltaS < 0 || g.DeltaH < 0 {
		return fmt.Errorf("bondwire: elongations must be non-negative (Δs=%g, Δh=%g)", g.DeltaS, g.DeltaH)
	}
	if g.Diameter <= 0 {
		return fmt.Errorf("bondwire: diameter %g must be positive", g.Diameter)
	}
	return nil
}

// FromElongation constructs a Geometry with direct distance d and total
// length L = d/(1−δ); the excess is booked as Δs. This is the inverse of the
// paper's δ definition used when sampling uncertain lengths.
func FromElongation(direct, delta, diameter float64) (Geometry, error) {
	if delta < 0 || delta >= 1 {
		return Geometry{}, fmt.Errorf("bondwire: relative elongation δ=%g outside [0,1)", delta)
	}
	l := direct / (1 - delta)
	return Geometry{Direct: direct, DeltaS: l - direct, Diameter: diameter}, nil
}

// Wire is a lumped electrothermal bonding wire between two grid nodes.
type Wire struct {
	Name     string
	NodeA    int // grid node on the chip side
	NodeB    int // grid node on the contact-pad side
	Geom     Geometry
	Mat      material.Model
	Segments int // number of concatenated lumped elements; 0/1 = paper model
}

func (w Wire) segments() int {
	if w.Segments < 1 {
		return 1
	}
	return w.Segments
}

// Validate checks the wire definition against nGrid grid DOFs.
func (w Wire) Validate(nGrid int) error {
	if err := w.Geom.Validate(); err != nil {
		return err
	}
	if w.NodeA < 0 || w.NodeA >= nGrid || w.NodeB < 0 || w.NodeB >= nGrid {
		return fmt.Errorf("bondwire: wire %q endpoints (%d,%d) out of range (%d grid nodes)", w.Name, w.NodeA, w.NodeB, nGrid)
	}
	if w.NodeA == w.NodeB {
		return fmt.Errorf("bondwire: wire %q connects a node to itself", w.Name)
	}
	if w.Mat == nil {
		return fmt.Errorf("bondwire: wire %q has no material", w.Name)
	}
	return nil
}

// ElecConductance returns the whole-wire electrical conductance
// G_el = σ(T)·A/L at wire temperature T.
func (w Wire) ElecConductance(T float64) float64 {
	return w.Mat.ElecCond(T) * w.Geom.CrossSection() / w.Geom.Length()
}

// Resistance returns 1/G_el.
func (w Wire) Resistance(T float64) float64 { return 1 / w.ElecConductance(T) }

// ThermalConductance returns the whole-wire thermal conductance
// G_th = λ(T)·A/L at wire temperature T.
func (w Wire) ThermalConductance(T float64) float64 {
	return w.Mat.ThermCond(T) * w.Geom.CrossSection() / w.Geom.Length()
}

// HeatCapacity returns the total heat capacity ρc·A·L of the wire.
func (w Wire) HeatCapacity() float64 {
	return w.Mat.VolHeatCap() * w.Geom.CrossSection() * w.Geom.Length()
}

// Coupling manages the field–circuit coupling for a set of wires: the extra
// internal DOFs of multi-segment wires, the branch list to merge into the
// FIT operator, per-segment conductance evaluation, and the paper's
// incidence (P) and averaging (X) actions.
type Coupling struct {
	NGrid    int
	Wires    []Wire
	TotalDOF int

	chains   [][]int      // DOF chain per wire: NodeA, internals..., NodeB
	branches []fit.Branch // all wire segments, wire-major
	segWire  []int        // owning wire per segment/branch
}

// NewCoupling validates the wires and lays out internal DOFs after the nGrid
// grid DOFs.
func NewCoupling(nGrid int, wires []Wire) (*Coupling, error) {
	c := &Coupling{NGrid: nGrid, Wires: append([]Wire(nil), wires...), TotalDOF: nGrid}
	for i, w := range c.Wires {
		if err := w.Validate(nGrid); err != nil {
			return nil, fmt.Errorf("bondwire: wire %d: %w", i, err)
		}
		s := w.segments()
		chain := make([]int, 0, s+1)
		chain = append(chain, w.NodeA)
		for k := 0; k < s-1; k++ {
			chain = append(chain, c.TotalDOF)
			c.TotalDOF++
		}
		chain = append(chain, w.NodeB)
		c.chains = append(c.chains, chain)
		for k := 0; k < s; k++ {
			c.branches = append(c.branches, fit.Branch{N1: chain[k], N2: chain[k+1]})
			c.segWire = append(c.segWire, i)
		}
	}
	return c, nil
}

// NumSegments returns the total number of wire segments (= branches).
func (c *Coupling) NumSegments() int { return len(c.branches) }

// NumExtraDOF returns the number of internal wire DOFs beyond the grid.
func (c *Coupling) NumExtraDOF() int { return c.TotalDOF - c.NGrid }

// Branches returns the wire branch list (shared; do not modify).
func (c *Coupling) Branches() []fit.Branch { return c.branches }

// Chain returns the DOF chain of wire w (shared; do not modify).
func (c *Coupling) Chain(w int) []int { return c.chains[w] }

// SegmentConductances evaluates the per-segment conductances into dst
// (length NumSegments) at the DOF temperature vector T (length ≥ TotalDOF;
// nil evaluates at 300 K). A wire with s segments of length L/s has segment
// conductance s·prop(T_seg)·A/L with T_seg the segment end-point average —
// for s = 1 exactly the paper's G_bw(T_bw) with T_bw = Xᵀ T.
func (c *Coupling) SegmentConductances(kind fit.Kind, T []float64, dst []float64) {
	if len(dst) != len(c.branches) {
		panic("bondwire: SegmentConductances dst length mismatch")
	}
	for b, br := range c.branches {
		w := &c.Wires[c.segWire[b]]
		var tSeg float64 = material.ReferenceTemperature
		if T != nil {
			tSeg = 0.5 * (T[br.N1] + T[br.N2])
		}
		var prop float64
		if kind == fit.Electric {
			prop = w.Mat.ElecCond(tSeg)
		} else {
			prop = w.Mat.ThermCond(tSeg)
		}
		dst[b] = float64(w.segments()) * prop * w.Geom.CrossSection() / w.Geom.Length()
	}
}

// MassDiagExtra returns the lumped heat capacities of the internal wire DOFs
// (length NumExtraDOF): each internal node carries the heat capacity of one
// segment (ρc·A·L/s), so that the total wire heat capacity is preserved up
// to the end segments, whose capacity the paper's model also neglects.
func (c *Coupling) MassDiagExtra() []float64 {
	out := make([]float64, c.NumExtraDOF())
	for i, w := range c.Wires {
		s := w.segments()
		if s == 1 {
			continue
		}
		segCap := w.HeatCapacity() / float64(s)
		for _, dof := range c.chains[i][1:s] {
			out[dof-c.NGrid] = segCap
		}
	}
	return out
}

// InitExtra fills the internal wire DOFs of the full vector x by linear
// interpolation between the wire end values — the paper's assumption of a
// linear distribution along the wire, used as the initial condition.
func (c *Coupling) InitExtra(x []float64) {
	for i := range c.Wires {
		chain := c.chains[i]
		n := len(chain)
		if n <= 2 {
			continue
		}
		a, b := x[chain[0]], x[chain[n-1]]
		for k := 1; k < n-1; k++ {
			x[chain[k]] = a + (b-a)*float64(k)/float64(n-1)
		}
	}
}

// WireTemperature returns the paper's representative wire temperature
// T_bw = Xᵀ T, the average of the two end-point (grid) temperatures (eq. 5).
func (c *Coupling) WireTemperature(w int, T []float64) float64 {
	wire := &c.Wires[w]
	return 0.5 * (T[wire.NodeA] + T[wire.NodeB])
}

// WireMaxTemperature returns the maximum temperature over the wire's DOF
// chain — for multi-segment wires the hottest interior point, a more
// conservative QoI than the end-point average.
func (c *Coupling) WireMaxTemperature(w int, T []float64) float64 {
	m := math.Inf(-1)
	for _, dof := range c.chains[w] {
		if T[dof] > m {
			m = T[dof]
		}
	}
	return m
}

// WirePower returns the Joule power Q_bw,w = Φᵀ P G_el Pᵀ Φ dissipated in
// wire w at potentials phi and temperatures T (full DOF vectors).
func (c *Coupling) WirePower(w int, phi, T []float64) float64 {
	total := 0.0
	for b, br := range c.branches {
		if c.segWire[b] != w {
			continue
		}
		wire := &c.Wires[w]
		var tSeg float64 = material.ReferenceTemperature
		if T != nil {
			tSeg = 0.5 * (T[br.N1] + T[br.N2])
		}
		g := float64(wire.segments()) * wire.Mat.ElecCond(tSeg) * wire.Geom.CrossSection() / wire.Geom.Length()
		dphi := phi[br.N1] - phi[br.N2]
		total += g * dphi * dphi
	}
	return total
}
