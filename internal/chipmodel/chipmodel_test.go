package chipmodel

import (
	"math"
	"testing"

	"etherm/internal/material"
)

func buildDefault(t *testing.T) *Layout {
	t.Helper()
	lay, err := DATE16().Build()
	if err != nil {
		t.Fatal(err)
	}
	return lay
}

func TestPaperInventory(t *testing.T) {
	lay := buildDefault(t)
	if len(lay.Pads) != 28 {
		t.Errorf("%d pads, want 28", len(lay.Pads))
	}
	long := 0
	wired := 0
	for _, p := range lay.Pads {
		if p.Long {
			long++
		}
		if p.Wired {
			wired++
		}
	}
	if long != 4 {
		t.Errorf("%d long pads, want 4", long)
	}
	if wired != 12 {
		t.Errorf("%d wired pads, want 12", wired)
	}
	if len(lay.Wires) != 12 || len(lay.Problem.Wires) != 12 {
		t.Errorf("wire count %d/%d, want 12", len(lay.Wires), len(lay.Problem.Wires))
	}
	// Six pairs, each with a +V and a −V pad.
	pairs := map[int][]float64{}
	for _, w := range lay.Wires {
		pairs[w.Pair] = append(pairs[w.Pair], w.Polarity)
	}
	if len(pairs) != 6 {
		t.Errorf("%d pairs, want 6", len(pairs))
	}
	for p, pol := range pairs {
		if len(pol) != 2 || pol[0]*pol[1] != -1 {
			t.Errorf("pair %d polarities %v", p, pol)
		}
	}
	if len(lay.Problem.ElecDirichlet) != 12 {
		t.Errorf("%d PEC sets, want 12", len(lay.Problem.ElecDirichlet))
	}
}

func TestPadDimensionsMatchTable(t *testing.T) {
	lay := buildDefault(t)
	for _, p := range lay.Pads {
		var w, l float64
		switch p.Side {
		case South, North:
			w = p.Box.X1 - p.Box.X0
			l = p.Box.Y1 - p.Box.Y0
		default:
			w = p.Box.Y1 - p.Box.Y0
			l = p.Box.X1 - p.Box.X0
		}
		if math.Abs(w-0.311e-3) > 1e-12 {
			t.Fatalf("pad width %g, want 0.311 mm", w)
		}
		want := 1.01e-3
		if p.Long {
			want = 1.261e-3
		}
		if math.Abs(l-want) > 1e-12 {
			t.Fatalf("pad length %g, want %g", l, want)
		}
	}
}

func TestMeanWireLengthNearPaper(t *testing.T) {
	lay := buildDefault(t)
	if l := lay.MeanLength(); math.Abs(l-1.55e-3) > 0.05e-3 {
		t.Errorf("mean wire length %.4g mm, want ≈ 1.55 mm", l*1e3)
	}
	for i, w := range lay.Problem.Wires {
		if got := w.Geom.RelElongation(); math.Abs(got-0.17) > 1e-9 {
			t.Errorf("wire %d nominal δ = %g, want 0.17", i, got)
		}
	}
}

func TestWireEndpointsOnCopper(t *testing.T) {
	lay := buildDefault(t)
	g := lay.Problem.Grid
	for i, w := range lay.Wires {
		// Chip node on the chip box, pad node on the pad box.
		x, y, z := g.NodePosition(w.ChipNode)
		if !lay.Chip.Contains(x, y, z) {
			t.Errorf("wire %d chip node (%g,%g,%g) outside chip box", i, x, y, z)
		}
		x, y, z = g.NodePosition(w.PadNode)
		if !lay.Pads[w.PadID].Box.Contains(x+1e-12, y+1e-12, z) &&
			!lay.Pads[w.PadID].Box.Contains(x-1e-12, y-1e-12, z) &&
			!lay.Pads[w.PadID].Box.Contains(x, y, z) {
			t.Errorf("wire %d pad node (%g,%g,%g) outside its pad box", i, x, y, z)
		}
		if w.Direct <= 0.5e-3 || w.Direct > 2.5e-3 {
			t.Errorf("wire %d direct distance %g mm implausible", i, w.Direct*1e3)
		}
	}
}

func TestNorthWiresShortest(t *testing.T) {
	// The chip offset makes the north-side wires the shortest — the "closest
	// contacts" of the paper's Fig. 8 discussion.
	lay := buildDefault(t)
	minD, minSide := math.Inf(1), South
	for _, w := range lay.Wires {
		if w.Direct < minD {
			minD, minSide = w.Direct, w.Side
		}
	}
	if minSide != North {
		t.Errorf("shortest wire on %s side, want north", minSide)
	}
}

func TestMaterialVolumes(t *testing.T) {
	lay := buildDefault(t)
	g := lay.Problem.Grid
	copperVol := 0.0
	for c, id := range lay.Problem.CellMat {
		if id == lay.CopperMat {
			copperVol += g.CellVolume(c)
		}
	}
	want := lay.Chip.Volume()
	for _, p := range lay.Pads {
		want += p.Box.Volume()
	}
	if math.Abs(copperVol-want) > 0.02*want {
		t.Errorf("copper volume %g, boxes %g — material painting off", copperVol, want)
	}
}

func TestCalibratedSpecDiffersOnlyInDrive(t *testing.T) {
	a, b := DATE16(), DATE16Calibrated()
	if a.DriveV >= b.DriveV {
		t.Error("calibrated drive should be higher")
	}
	b.DriveV = a.DriveV
	if a != b {
		t.Error("calibrated spec changes more than the drive voltage")
	}
}

func TestSpecValidation(t *testing.T) {
	s := DATE16()
	s.ChipLx = 5e-3 // chip overlaps pad ring
	if _, err := s.Build(); err == nil {
		t.Error("overlapping chip accepted")
	}
	s = DATE16()
	s.PadsPerSide = 1
	if _, err := s.Build(); err == nil {
		t.Error("single pad per side accepted")
	}
	s = DATE16()
	s.MeanElong = 1.5
	if _, err := s.Build(); err == nil {
		t.Error("elongation ≥ 1 accepted")
	}
}

func TestWireMaterialOverride(t *testing.T) {
	s := DATE16()
	s.WireMat = material.Gold()
	lay, err := s.Build()
	if err != nil {
		t.Fatal(err)
	}
	if lay.Problem.Wires[0].Mat.Name() != "gold" {
		t.Error("wire material override ignored")
	}
}

func TestProblemValidates(t *testing.T) {
	lay := buildDefault(t)
	if err := lay.Problem.Validate(); err != nil {
		t.Fatal(err)
	}
	if lay.PairVoltage() != 0.04 {
		t.Errorf("pair voltage %g, want 0.040 (paper)", lay.PairVoltage())
	}
}
