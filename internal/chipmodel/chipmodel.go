// Package chipmodel builds the paper's example package: a molded chip with
// 28 contact pads and 12 bonding wires driven in 6 adjacent pairs at
// V_bw = 40 mV (PEC contacts at ±20 mV), following section V-A and Table II.
//
// The published quantities are used exactly: pad width 0.311 mm, 24 pads of
// length 1.01 mm and 4 of 1.261 mm, copper pads/chip/wires, epoxy mold,
// wire diameter 25.4 µm, mean wire length 1.55 mm (via mean elongation
// δ = 0.17 over the direct distances of the layout). The mold and chip
// dimensions are not published; the defaults in DATE16() were chosen so the
// layout is geometrically consistent with the published pad and wire
// lengths (see DESIGN.md §2 on this substitution).
package chipmodel

import (
	"fmt"
	"math"

	"etherm/internal/bondwire"
	"etherm/internal/core"
	"etherm/internal/fit"
	"etherm/internal/grid"
	"etherm/internal/material"
)

// Side identifies a package side.
type Side int

// Package sides in counter-clockwise order.
const (
	South Side = iota // y = 0
	East              // x = Lx
	North             // y = Ly
	West              // x = 0
)

func (s Side) String() string {
	switch s {
	case South:
		return "south"
	case East:
		return "east"
	case North:
		return "north"
	default:
		return "west"
	}
}

// Box is an axis-aligned box (metres).
type Box struct {
	X0, X1, Y0, Y1, Z0, Z1 float64
}

// Contains reports whether (x,y,z) lies inside the box.
func (b Box) Contains(x, y, z float64) bool {
	return x >= b.X0 && x <= b.X1 && y >= b.Y0 && y <= b.Y1 && z >= b.Z0 && z <= b.Z1
}

// Volume returns the box volume.
func (b Box) Volume() float64 { return (b.X1 - b.X0) * (b.Y1 - b.Y0) * (b.Z1 - b.Z0) }

// Spec parameterizes the package model. All lengths in metres.
type Spec struct {
	// Mold compound block dimensions.
	MoldLx, MoldLy, MoldH float64
	// Chip dimensions and placement. The chip sits on the leadframe plane
	// (PadZ0) and may be offset in y, which makes one side's wires shorter —
	// the "closest contacts" of the paper's Fig. 8 discussion.
	ChipLx, ChipLy, ChipH float64
	ChipOffsetY           float64
	// Contact pads.
	PadW, PadLen, PadLenLong, PadThk, PadZ0 float64
	PadsPerSide                             int
	// Wires.
	WireDiameter float64
	WireSegments int
	MeanElong    float64 // nominal relative elongation δ̄ for the initial geometry
	// Electrical drive: PEC contacts at ±DriveV, so each wire pair sees
	// V_bw = 2·DriveV.
	DriveV float64
	// Thermal environment (Table II).
	HTC        float64 // heat transfer coefficient, W/m²/K
	Emissivity float64
	TAmbient   float64
	// Mesh: maximum spacing between grid lines.
	HMax float64
	// WireMat overrides the copper bonding-wire material when non-nil
	// (gold/aluminium design studies).
	WireMat material.Model
}

// DATE16 returns the specification of the paper's example with the published
// values of Table I/II and calibrated free dimensions.
func DATE16() Spec {
	return Spec{
		MoldLx: 5.86e-3, MoldLy: 5.86e-3, MoldH: 0.55e-3,
		ChipLx: 1.3e-3, ChipLy: 1.3e-3, ChipH: 0.30e-3,
		ChipOffsetY:  0.15e-3,
		PadW:         0.311e-3,
		PadLen:       1.01e-3,
		PadLenLong:   1.261e-3,
		PadThk:       0.10e-3,
		PadZ0:        0.15e-3,
		PadsPerSide:  7,
		WireDiameter: 25.4e-6,
		WireSegments: 1,
		MeanElong:    0.17,
		DriveV:       0.020,
		HTC:          25,
		Emissivity:   0.2475,
		TAmbient:     300,
		HMax:         0.35e-3,
	}
}

// DATE16Calibrated returns the DATE16 spec with the electric drive raised to
// the power-calibrated level. With the published inputs alone (V_bw = 40 mV,
// R_wire ≈ 53 mΩ at 300 K) the total dissipation is ≈ 91 mW, which no
// geometrically consistent package of this footprint can turn into the
// ≈ 200 K steady rise of the paper's Fig. 7 under h = 25 W/m²/K — the
// missing factor sits in unpublished geometry/power details. Raising the
// contact drive to ±57 mV (V_bw = 114 mV, ≈ 4.5× power at temperature) is a
// power-equivalent surrogate that reproduces the paper's temperature level
// (E_max(50 s) ≈ 500 K) and crossing behaviour while keeping every published
// parameter ratio intact. EXPERIMENTS.md reports both the faithful and the
// calibrated runs.
func DATE16Calibrated() Spec {
	s := DATE16()
	s.DriveV = 0.057
	return s
}

// padMargin returns the corner keep-out distance of the pad rows.
func (s Spec) padMargin() float64 { return s.PadLenLong + s.PadW }

// Validate checks geometric consistency.
func (s Spec) Validate() error {
	if s.MoldLx <= 0 || s.MoldLy <= 0 || s.MoldH <= 0 {
		return fmt.Errorf("chipmodel: non-positive mold dimensions")
	}
	if s.PadsPerSide < 2 {
		return fmt.Errorf("chipmodel: need ≥2 pads per side, got %d", s.PadsPerSide)
	}
	// Pad rows stay clear of the corners so pads of adjacent sides cannot
	// overlap: the row spans [margin, L−margin] with margin covering the
	// longest pad of the neighbouring side.
	margin := s.padMargin()
	span := s.MoldLx - 2*margin
	if span <= 0 {
		return fmt.Errorf("chipmodel: mold too small for the pad ring (span %g)", span)
	}
	pitch := span / float64(s.PadsPerSide-1)
	if pitch <= s.PadW {
		return fmt.Errorf("chipmodel: pads overlap (pitch %g ≤ width %g)", pitch, s.PadW)
	}
	if s.PadZ0+s.PadThk > s.MoldH || s.PadZ0+s.ChipH > s.MoldH {
		return fmt.Errorf("chipmodel: pad or chip sticks out of the mold")
	}
	halfGapX := (s.MoldLx-s.ChipLx)/2 - s.PadLenLong
	halfGapY := (s.MoldLy-s.ChipLy)/2 - s.PadLenLong - math.Abs(s.ChipOffsetY)
	if halfGapX <= 0 || halfGapY <= 0 {
		return fmt.Errorf("chipmodel: chip overlaps the pad ring (gaps %g, %g)", halfGapX, halfGapY)
	}
	if s.MeanElong < 0 || s.MeanElong >= 1 {
		return fmt.Errorf("chipmodel: mean elongation %g outside [0,1)", s.MeanElong)
	}
	if s.WireDiameter <= 0 || s.DriveV <= 0 || s.HMax <= 0 {
		return fmt.Errorf("chipmodel: non-positive wire diameter, drive voltage or mesh size")
	}
	return nil
}

// Pad describes one contact pad of the layout.
type Pad struct {
	Side  Side
	Index int // position along the side, 0-based
	Box   Box
	Long  bool
	Wired bool
}

// WireInfo records the layout data of one bonding wire.
type WireInfo struct {
	Side     Side
	PadID    int     // index into Layout.Pads
	Pair     int     // 0..5; wires 2k and 2k+1 form pair k
	Polarity float64 // +1 → pad driven at +DriveV, −1 → −DriveV
	Direct   float64 // direct distance d between the bond points
	PadNode  int     // grid node at the pad-side bond point
	ChipNode int     // grid node at the chip-side bond point
}

// Layout is the fully constructed model: the discrete problem plus the
// geometric bookkeeping needed by figures and reports.
type Layout struct {
	Spec    Spec
	Problem *core.Problem
	Pads    []Pad
	Chip    Box
	Wires   []WireInfo
	// Material IDs in Problem.Lib.
	MoldMat, CopperMat, WireMatID int
}

// wiredPositions returns the pad position indices that carry wires on each
// side: four on north/south (two adjacent pairs each) and two on east/west
// (one pair each) — 12 wires in 6 adjacent pairs.
func wiredPositions(side Side, perSide int) [][2]int {
	c := perSide / 2
	switch side {
	case North, South:
		return [][2]int{{c - 2, c - 1}, {c + 1, c + 2}}
	default:
		return [][2]int{{c - 1, c}}
	}
}

// Build constructs the mesh, material map, bonding wires and boundary
// conditions.
func (s Spec) Build() (*Layout, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	lib, err := material.NewLibrary(material.EpoxyResin(), material.Copper())
	if err != nil {
		return nil, err
	}
	moldID, copperID := 0, 1
	wireMat := material.Model(material.Copper())
	if s.WireMat != nil {
		wireMat = s.WireMat
	}

	lay := &Layout{Spec: s, MoldMat: moldID, CopperMat: copperID, WireMatID: copperID}

	// --- Pad and chip boxes -------------------------------------------------
	cx, cy := s.MoldLx/2, s.MoldLy/2
	chipZ0 := s.PadZ0
	chipTop := chipZ0 + s.ChipH
	lay.Chip = Box{
		X0: cx - s.ChipLx/2, X1: cx + s.ChipLx/2,
		Y0: cy - s.ChipLy/2 + s.ChipOffsetY, Y1: cy + s.ChipLy/2 + s.ChipOffsetY,
		Z0: chipZ0, Z1: chipTop,
	}
	margin := s.padMargin()
	pitchX := (s.MoldLx - 2*margin) / float64(s.PadsPerSide-1)
	pitchY := (s.MoldLy - 2*margin) / float64(s.PadsPerSide-1)
	padTop := s.PadZ0 + s.PadThk
	for _, side := range []Side{South, East, North, West} {
		wired := map[int]bool{}
		for _, pr := range wiredPositions(side, s.PadsPerSide) {
			wired[pr[0]], wired[pr[1]] = true, true
		}
		for i := 0; i < s.PadsPerSide; i++ {
			long := i == 0 // one long pad per side → 4 of 28, as in the paper
			plen := s.PadLen
			if long {
				plen = s.PadLenLong
			}
			pitch := pitchX
			if side == East || side == West {
				pitch = pitchY
			}
			center := margin + pitch*float64(i)
			var b Box
			switch side {
			case South:
				b = Box{X0: center - s.PadW/2, X1: center + s.PadW/2, Y0: 0, Y1: plen, Z0: s.PadZ0, Z1: padTop}
			case North:
				b = Box{X0: center - s.PadW/2, X1: center + s.PadW/2, Y0: s.MoldLy - plen, Y1: s.MoldLy, Z0: s.PadZ0, Z1: padTop}
			case East:
				b = Box{X0: s.MoldLx - plen, X1: s.MoldLx, Y0: center - s.PadW/2, Y1: center + s.PadW/2, Z0: s.PadZ0, Z1: padTop}
			default: // West
				b = Box{X0: 0, X1: plen, Y0: center - s.PadW/2, Y1: center + s.PadW/2, Z0: s.PadZ0, Z1: padTop}
			}
			lay.Pads = append(lay.Pads, Pad{Side: side, Index: i, Box: b, Long: long, Wired: wired[i]})
		}
	}

	// --- Mesh lines snapped to all material interfaces ---------------------
	xb := []float64{0, s.MoldLx, lay.Chip.X0, lay.Chip.X1}
	yb := []float64{0, s.MoldLy, lay.Chip.Y0, lay.Chip.Y1}
	zb := []float64{0, s.PadZ0, padTop, chipTop, s.MoldH}
	for _, p := range lay.Pads {
		xb = append(xb, p.Box.X0, p.Box.X1)
		yb = append(yb, p.Box.Y0, p.Box.Y1)
		if p.Wired {
			// Snap lines through the bond points so wires attach exactly.
			switch p.Side {
			case South, North:
				xb = append(xb, (p.Box.X0+p.Box.X1)/2)
			default:
				yb = append(yb, (p.Box.Y0+p.Box.Y1)/2)
			}
		}
	}
	tol := 1e-9
	xs, err := grid.LinesFromBreakpoints(xb, s.HMax, tol)
	if err != nil {
		return nil, err
	}
	ys, err := grid.LinesFromBreakpoints(yb, s.HMax, tol)
	if err != nil {
		return nil, err
	}
	zs, err := grid.LinesFromBreakpoints(zb, s.HMax, tol)
	if err != nil {
		return nil, err
	}
	g, err := grid.NewTensor(xs, ys, zs)
	if err != nil {
		return nil, err
	}

	// --- Cell materials -----------------------------------------------------
	cellMat := make([]int, g.NumCells())
	for c := range cellMat {
		x, y, z := g.CellCenter(c)
		id := moldID
		if lay.Chip.Contains(x, y, z) {
			id = copperID
		} else {
			for _, p := range lay.Pads {
				if p.Box.Contains(x, y, z) {
					id = copperID
					break
				}
			}
		}
		cellMat[c] = id
	}

	// --- Wires and PEC contacts ---------------------------------------------
	prob := &core.Problem{
		Grid: g, CellMat: cellMat, Lib: lib,
		ThermalBC: fit.RobinBC{H: s.HTC, Emissivity: s.Emissivity, TInf: s.TAmbient},
	}
	pair := 0
	// Deterministic wire order: iterate sides, then pairs, then the two pads.
	for _, side := range []Side{South, East, North, West} {
		for _, pr := range wiredPositions(side, s.PadsPerSide) {
			for k, pos := range []int{pr[0], pr[1]} {
				padID := int(side)*s.PadsPerSide + pos
				p := lay.Pads[padID]
				polarity := 1.0
				if k == 1 {
					polarity = -1
				}

				// Bond points: pad inner-end top center ↔ nearest chip top edge.
				var padPt, chipPt [3]float64
				switch side {
				case South:
					padPt = [3]float64{(p.Box.X0 + p.Box.X1) / 2, p.Box.Y1, padTop}
					chipPt = [3]float64{clamp(padPt[0], lay.Chip.X0, lay.Chip.X1), lay.Chip.Y0, chipTop}
				case North:
					padPt = [3]float64{(p.Box.X0 + p.Box.X1) / 2, p.Box.Y0, padTop}
					chipPt = [3]float64{clamp(padPt[0], lay.Chip.X0, lay.Chip.X1), lay.Chip.Y1, chipTop}
				case East:
					padPt = [3]float64{p.Box.X0, (p.Box.Y0 + p.Box.Y1) / 2, padTop}
					chipPt = [3]float64{lay.Chip.X1, clamp(padPt[1], lay.Chip.Y0, lay.Chip.Y1), chipTop}
				default: // West
					padPt = [3]float64{p.Box.X1, (p.Box.Y0 + p.Box.Y1) / 2, padTop}
					chipPt = [3]float64{lay.Chip.X0, clamp(padPt[1], lay.Chip.Y0, lay.Chip.Y1), chipTop}
				}
				padNode := g.NearestNode(padPt[0], padPt[1], padPt[2])
				chipNode := g.NearestNode(chipPt[0], chipPt[1], chipPt[2])
				px, py, pz := g.NodePosition(padNode)
				qx, qy, qz := g.NodePosition(chipNode)
				d := math.Sqrt((px-qx)*(px-qx) + (py-qy)*(py-qy) + (pz-qz)*(pz-qz))

				geom, err := bondwire.FromElongation(d, s.MeanElong, s.WireDiameter)
				if err != nil {
					return nil, err
				}
				wireIdx := len(prob.Wires)
				prob.Wires = append(prob.Wires, bondwire.Wire{
					Name:     fmt.Sprintf("w%02d-%s%d", wireIdx+1, side, pos),
					NodeA:    chipNode,
					NodeB:    padNode,
					Geom:     geom,
					Mat:      wireMat,
					Segments: s.WireSegments,
				})
				lay.Wires = append(lay.Wires, WireInfo{
					Side: side, PadID: padID, Pair: pair, Polarity: polarity,
					Direct: d, PadNode: padNode, ChipNode: chipNode,
				})

				// PEC contact: the pad's outer-end face at ±DriveV.
				nodes := padOuterFaceNodes(g, p, side, tol)
				if len(nodes) == 0 {
					return nil, fmt.Errorf("chipmodel: no PEC nodes found for pad %d (%s %d)", padID, side, pos)
				}
				prob.ElecDirichlet = append(prob.ElecDirichlet, fit.Dirichlet{
					Nodes:  nodes,
					Values: []float64{polarity * s.DriveV},
				})
			}
			pair++
		}
	}

	if err := prob.Validate(); err != nil {
		return nil, err
	}
	lay.Problem = prob
	return lay, nil
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// padOuterFaceNodes collects the grid nodes on the pad's outer-end face (the
// PEC contact of the paper).
func padOuterFaceNodes(g *grid.Grid, p Pad, side Side, tol float64) []int {
	var out []int
	for n := 0; n < g.NumNodes(); n++ {
		x, y, z := g.NodePosition(n)
		if z < p.Box.Z0-tol || z > p.Box.Z1+tol {
			continue
		}
		switch side {
		case South:
			if math.Abs(y-0) < tol && x >= p.Box.X0-tol && x <= p.Box.X1+tol {
				out = append(out, n)
			}
		case North:
			if math.Abs(y-p.Box.Y1) < tol && x >= p.Box.X0-tol && x <= p.Box.X1+tol {
				out = append(out, n)
			}
		case East:
			if math.Abs(x-p.Box.X1) < tol && y >= p.Box.Y0-tol && y <= p.Box.Y1+tol {
				out = append(out, n)
			}
		default: // West
			if math.Abs(x-0) < tol && y >= p.Box.Y0-tol && y <= p.Box.Y1+tol {
				out = append(out, n)
			}
		}
	}
	return out
}

// MeanDirect returns the average direct distance d over all wires.
func (l *Layout) MeanDirect() float64 {
	s := 0.0
	for _, w := range l.Wires {
		s += w.Direct
	}
	return s / float64(len(l.Wires))
}

// MeanLength returns the average wire length at the nominal elongation.
func (l *Layout) MeanLength() float64 {
	s := 0.0
	for _, w := range l.Problem.Wires {
		s += w.Geom.Length()
	}
	return s / float64(len(l.Problem.Wires))
}

// NumWired returns the number of wired pads (= wires).
func (l *Layout) NumWired() int { return len(l.Wires) }

// PairVoltage returns the voltage across each wire pair, 2·DriveV.
func (l *Layout) PairVoltage() float64 { return 2 * l.Spec.DriveV }
