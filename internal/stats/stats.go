// Package stats provides the small-sample statistics used by the measurement
// pipeline and the Monte Carlo post-processing: descriptive moments,
// streaming (Welford) accumulation, histograms, normal fits, quantiles and
// simple goodness-of-fit measures.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs (NaN for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the unbiased sample variance (NaN for fewer than two
// samples).
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return math.NaN()
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(n-1)
}

// StdDev returns the unbiased sample standard deviation.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// PopVariance returns the population (biased, 1/n) variance.
func PopVariance(xs []float64) float64 {
	n := len(xs)
	if n == 0 {
		return math.NaN()
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(n)
}

// MinMax returns the extrema of xs.
func MinMax(xs []float64) (min, max float64) {
	if len(xs) == 0 {
		return math.NaN(), math.NaN()
	}
	min, max = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return min, max
}

// Quantile returns the p-quantile (0 ≤ p ≤ 1) of xs using linear
// interpolation between order statistics.
func Quantile(xs []float64, p float64) float64 {
	if len(xs) == 0 || p < 0 || p > 1 {
		return math.NaN()
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return QuantileSorted(s, p)
}

// Welford is a streaming mean/variance accumulator that is numerically
// stable and mergeable (Chan et al.), used by the parallel ensemble driver.
type Welford struct {
	N    int
	Mean float64
	m2   float64
}

// Add folds one observation into the accumulator.
func (w *Welford) Add(x float64) {
	w.N++
	d := x - w.Mean
	w.Mean += d / float64(w.N)
	w.m2 += d * (x - w.Mean)
}

// Merge combines another accumulator into this one.
func (w *Welford) Merge(o Welford) {
	if o.N == 0 {
		return
	}
	if w.N == 0 {
		*w = o
		return
	}
	n1, n2 := float64(w.N), float64(o.N)
	d := o.Mean - w.Mean
	tot := n1 + n2
	w.Mean += d * n2 / tot
	w.m2 += o.m2 + d*d*n1*n2/tot
	w.N += o.N
}

// Variance returns the unbiased running variance.
func (w *Welford) Variance() float64 {
	if w.N < 2 {
		return math.NaN()
	}
	return w.m2 / float64(w.N-1)
}

// StdDev returns the unbiased running standard deviation.
func (w *Welford) StdDev() float64 { return math.Sqrt(w.Variance()) }

// Histogram is a fixed-width binning of scalar samples.
type Histogram struct {
	Lo, Hi float64
	Counts []int
	N      int
}

// NewHistogram bins xs into nbins equal bins over [lo, hi]; samples outside
// the range are clamped into the edge bins.
func NewHistogram(xs []float64, lo, hi float64, nbins int) (*Histogram, error) {
	if nbins < 1 {
		return nil, fmt.Errorf("stats: need ≥1 bins, got %d", nbins)
	}
	if !(hi > lo) {
		return nil, fmt.Errorf("stats: invalid histogram range [%g, %g]", lo, hi)
	}
	h := &Histogram{Lo: lo, Hi: hi, Counts: make([]int, nbins)}
	for _, x := range xs {
		b := int(float64(nbins) * (x - lo) / (hi - lo))
		if b < 0 {
			b = 0
		}
		if b >= nbins {
			b = nbins - 1
		}
		h.Counts[b]++
		h.N++
	}
	return h, nil
}

// BinWidth returns the width of each bin.
func (h *Histogram) BinWidth() float64 { return (h.Hi - h.Lo) / float64(len(h.Counts)) }

// BinCenter returns the midpoint of bin b.
func (h *Histogram) BinCenter(b int) float64 {
	return h.Lo + (float64(b)+0.5)*h.BinWidth()
}

// Density returns the PDF estimate of bin b (counts normalized so the
// histogram integrates to one), the quantity plotted in the paper's Fig. 5.
func (h *Histogram) Density(b int) float64 {
	if h.N == 0 {
		return 0
	}
	return float64(h.Counts[b]) / (float64(h.N) * h.BinWidth())
}

// NormalFit holds a fitted normal distribution.
type NormalFit struct {
	Mu, Sigma float64
	N         int
}

// FitNormal returns the maximum-likelihood normal fit (µ = sample mean,
// σ = population standard deviation) as used by the paper to identify
// N(0.17, 0.048) from 12 elongation samples.
func FitNormal(xs []float64) (NormalFit, error) {
	if len(xs) < 2 {
		return NormalFit{}, fmt.Errorf("stats: need ≥2 samples to fit a normal, got %d", len(xs))
	}
	mu := Mean(xs)
	sigma := math.Sqrt(PopVariance(xs))
	if sigma == 0 {
		return NormalFit{}, fmt.Errorf("stats: degenerate sample (zero variance)")
	}
	return NormalFit{Mu: mu, Sigma: sigma, N: len(xs)}, nil
}

// PDF evaluates the fitted normal density at x.
func (f NormalFit) PDF(x float64) float64 {
	z := (x - f.Mu) / f.Sigma
	return math.Exp(-0.5*z*z) / (f.Sigma * math.Sqrt(2*math.Pi))
}

// CDF evaluates the fitted normal cumulative distribution at x.
func (f NormalFit) CDF(x float64) float64 {
	return 0.5 * math.Erfc(-(x-f.Mu)/(f.Sigma*math.Sqrt2))
}

// KSDistance returns the Kolmogorov–Smirnov statistic between the empirical
// distribution of xs and the fitted normal — a simple goodness-of-fit
// number for reports.
func (f NormalFit) KSDistance(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	d := 0.0
	n := float64(len(s))
	for i, x := range s {
		c := f.CDF(x)
		lo := float64(i) / n
		hi := float64(i+1) / n
		if v := math.Abs(c - lo); v > d {
			d = v
		}
		if v := math.Abs(c - hi); v > d {
			d = v
		}
	}
	return d
}

// MCError returns the paper's Monte Carlo error estimate (eq. 6):
// error_MC = σ_MC / √M.
func MCError(sigma float64, m int) float64 {
	if m <= 0 {
		return math.NaN()
	}
	return sigma / math.Sqrt(float64(m))
}
