package stats

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestMoments(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if Mean(xs) != 5 {
		t.Errorf("mean %g", Mean(xs))
	}
	if math.Abs(PopVariance(xs)-4) > 1e-12 {
		t.Errorf("population variance %g, want 4", PopVariance(xs))
	}
	if math.Abs(Variance(xs)-32.0/7) > 1e-12 {
		t.Errorf("sample variance %g", Variance(xs))
	}
	lo, hi := MinMax(xs)
	if lo != 2 || hi != 9 {
		t.Error("minmax wrong")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if Quantile(xs, 0) != 1 || Quantile(xs, 1) != 5 || Quantile(xs, 0.5) != 3 {
		t.Error("quantiles wrong")
	}
	if math.Abs(Quantile(xs, 0.25)-2) > 1e-12 {
		t.Errorf("q25 = %g", Quantile(xs, 0.25))
	}
}

func TestWelfordMatchesBatch(t *testing.T) {
	f := func(seed uint64) bool {
		r := rand.New(rand.NewPCG(seed, 1))
		n := 2 + r.IntN(100)
		xs := make([]float64, n)
		var w Welford
		for i := range xs {
			xs[i] = r.NormFloat64() * 10
			w.Add(xs[i])
		}
		return math.Abs(w.Mean-Mean(xs)) < 1e-9 && math.Abs(w.Variance()-Variance(xs)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestWelfordMergeEqualsSequential(t *testing.T) {
	r := rand.New(rand.NewPCG(3, 4))
	xs := make([]float64, 200)
	for i := range xs {
		xs[i] = r.NormFloat64()
	}
	var whole Welford
	for _, x := range xs {
		whole.Add(x)
	}
	var a, b Welford
	for _, x := range xs[:77] {
		a.Add(x)
	}
	for _, x := range xs[77:] {
		b.Add(x)
	}
	a.Merge(b)
	if math.Abs(a.Mean-whole.Mean) > 1e-12 || math.Abs(a.Variance()-whole.Variance()) > 1e-12 {
		t.Error("merged accumulator disagrees with sequential")
	}
}

func TestHistogramDensityIntegratesToOne(t *testing.T) {
	r := rand.New(rand.NewPCG(5, 6))
	xs := make([]float64, 500)
	for i := range xs {
		xs[i] = r.Float64()*0.4 - 0.0
	}
	h, err := NewHistogram(xs, 0, 0.4, 8)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for b := range h.Counts {
		sum += h.Density(b) * h.BinWidth()
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("∫density = %g", sum)
	}
	if h.N != 500 {
		t.Error("count wrong")
	}
}

func TestHistogramClampsOutliers(t *testing.T) {
	h, err := NewHistogram([]float64{-10, 10}, 0, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if h.Counts[0] != 1 || h.Counts[3] != 1 {
		t.Errorf("outliers not clamped: %v", h.Counts)
	}
}

func TestFitNormalPaperLike(t *testing.T) {
	// 12 samples from the paper's law — the fit must recover µ, σ within
	// small-sample scatter, and the PDF must integrate to one.
	r := rand.New(rand.NewPCG(7, 8))
	xs := make([]float64, 12)
	for i := range xs {
		xs[i] = 0.17 + 0.048*r.NormFloat64()
	}
	fit, err := FitNormal(xs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Mu-0.17) > 0.05 || fit.Sigma < 0.01 || fit.Sigma > 0.12 {
		t.Errorf("fit (%g, %g) far from truth", fit.Mu, fit.Sigma)
	}
	sum := 0.0
	for x := -0.3; x < 0.7; x += 1e-4 {
		sum += fit.PDF(x) * 1e-4
	}
	if math.Abs(sum-1) > 1e-3 {
		t.Errorf("∫pdf = %g", sum)
	}
	if d := fit.KSDistance(xs); d <= 0 || d > 0.5 {
		t.Errorf("KS distance %g implausible", d)
	}
}

func TestFitNormalRejectsDegenerate(t *testing.T) {
	if _, err := FitNormal([]float64{1}); err == nil {
		t.Error("single sample accepted")
	}
	if _, err := FitNormal([]float64{2, 2, 2}); err == nil {
		t.Error("zero-variance sample accepted")
	}
}

func TestMCErrorEq6(t *testing.T) {
	// The paper: σ_MC = 4.65 K, M = 1000 → error_MC = 0.147 K.
	if got := MCError(4.65, 1000); math.Abs(got-0.147) > 1e-3 {
		t.Errorf("error_MC = %g, want 0.147 (paper)", got)
	}
}
