package stats

import (
	"encoding/json"
	"math"
	"math/rand"
	"testing"
)

func TestVectorMomentsMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const n, d = 500, 3
	series := make([][]float64, d)
	for j := range series {
		series[j] = make([]float64, n)
	}
	vm := NewVectorMoments(d)
	x := make([]float64, d)
	for i := 0; i < n; i++ {
		for j := range x {
			x[j] = rng.NormFloat64()*float64(j+1) + float64(j)
			series[j][i] = x[j]
		}
		vm.Add(x)
	}
	for j := 0; j < d; j++ {
		if m := Mean(series[j]); math.Abs(vm.Mean[j]-m) > 1e-12*(1+math.Abs(m)) {
			t.Errorf("output %d: streaming mean %g, direct %g", j, vm.Mean[j], m)
		}
		if v := Variance(series[j]); math.Abs(vm.Variance(j)-v) > 1e-10*(1+v) {
			t.Errorf("output %d: streaming var %g, direct %g", j, vm.Variance(j), v)
		}
	}
}

func TestVectorMomentsMergeEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	whole := NewVectorMoments(2)
	a, b := NewVectorMoments(2), NewVectorMoments(2)
	x := make([]float64, 2)
	for i := 0; i < 400; i++ {
		x[0], x[1] = rng.Float64(), rng.ExpFloat64()
		whole.Add(x)
		if i < 150 {
			a.Add(x)
		} else {
			b.Add(x)
		}
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.N != whole.N {
		t.Fatalf("merged count %d, want %d", a.N, whole.N)
	}
	for j := 0; j < 2; j++ {
		if math.Abs(a.Mean[j]-whole.Mean[j]) > 1e-12 {
			t.Errorf("merged mean %g vs %g", a.Mean[j], whole.Mean[j])
		}
		if math.Abs(a.Variance(j)-whole.Variance(j)) > 1e-11 {
			t.Errorf("merged var %g vs %g", a.Variance(j), whole.Variance(j))
		}
	}
	// Dimension mismatch refused.
	if err := a.Merge(NewVectorMoments(3)); err == nil {
		t.Error("mismatched merge accepted")
	}
}

func TestExtremaAndMerge(t *testing.T) {
	a, b := NewExtrema(2), NewExtrema(2)
	a.Add([]float64{1, -5})
	a.Add([]float64{3, 0})
	b.Add([]float64{-2, 7})
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.N != 3 || a.Min[0] != -2 || a.Max[0] != 3 || a.Min[1] != -5 || a.Max[1] != 7 {
		t.Errorf("merged extrema wrong: %+v", a)
	}
	if a.GlobalMax() != 7 {
		t.Errorf("global max %g", a.GlobalMax())
	}
	if !math.IsNaN(NewExtrema(1).GlobalMax()) {
		t.Error("empty extrema should be NaN")
	}
}

func TestExceedCounterWilson(t *testing.T) {
	var c ExceedCounter
	for i := 0; i < 1000; i++ {
		c.Observe(i < 50) // p = 0.05
	}
	if math.Abs(c.Prob()-0.05) > 1e-12 {
		t.Errorf("prob %g", c.Prob())
	}
	lo, hi := c.Wilson(1.96)
	if !(lo < 0.05 && 0.05 < hi) {
		t.Errorf("Wilson interval [%g, %g] excludes the point estimate", lo, hi)
	}
	if hw := c.HalfWidth(1.96); hw < 0.005 || hw > 0.03 {
		t.Errorf("half-width %g implausible for p=0.05, n=1000", hw)
	}
	// Zero-count intervals stay proper (the small-failure-probability case).
	var z ExceedCounter
	for i := 0; i < 100; i++ {
		z.Observe(false)
	}
	lo, hi = z.Wilson(1.96)
	if lo > 1e-12 || hi <= 0 || hi > 0.1 {
		t.Errorf("zero-count Wilson [%g, %g]", lo, hi)
	}
}

// TestExceedCounterShardMergeTinyCounts is the rare-event regime guard:
// shards of a campaign hunting a 1e-6..1e-8 failure probability see 0 or 1
// exceedances each, and the merged Wilson interval must equal the
// unsharded one bit-for-bit — the integer merge leaves no room for
// floating-point drift, and this test keeps it that way.
func TestExceedCounterShardMergeTinyCounts(t *testing.T) {
	cases := []struct {
		name   string
		shards []ExceedCounter // per-shard (N, Count)
	}{
		{"all empty", []ExceedCounter{{N: 50}, {N: 50}, {N: 50}, {N: 50}}},
		{"single hit", []ExceedCounter{{N: 50}, {N: 50, Count: 1}, {N: 50}, {N: 50}}},
		{"one hit each", []ExceedCounter{{N: 25, Count: 1}, {N: 25, Count: 1}, {N: 25, Count: 1}, {N: 25, Count: 1}}},
		{"uneven shards", []ExceedCounter{{N: 1, Count: 1}, {N: 999}, {N: 3}, {N: 7, Count: 1}}},
		{"zero-sample shard", []ExceedCounter{{N: 100, Count: 1}, {}, {N: 100}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			// Unsharded reference: all Bernoulli observations in one counter.
			var ref ExceedCounter
			for _, s := range tc.shards {
				for i := 0; i < s.N; i++ {
					ref.Observe(i < s.Count)
				}
			}
			var merged ExceedCounter
			for _, s := range tc.shards {
				merged.Merge(s)
			}
			if merged.N != ref.N || merged.Count != ref.Count {
				t.Fatalf("merged (%d, %d) != unsharded (%d, %d)", merged.N, merged.Count, ref.N, ref.Count)
			}
			for _, z := range []float64{1.0, 1.96, 2.5758} {
				mlo, mhi := merged.Wilson(z)
				rlo, rhi := ref.Wilson(z)
				if math.Float64bits(mlo) != math.Float64bits(rlo) || math.Float64bits(mhi) != math.Float64bits(rhi) {
					t.Errorf("z=%g: merged Wilson [%g, %g] not bit-identical to unsharded [%g, %g]", z, mlo, mhi, rlo, rhi)
				}
				if math.Float64bits(merged.HalfWidth(z)) != math.Float64bits(ref.HalfWidth(z)) {
					t.Errorf("z=%g: half-widths differ", z)
				}
			}
			if math.Float64bits(merged.Prob()) != math.Float64bits(ref.Prob()) &&
				!(math.IsNaN(merged.Prob()) && math.IsNaN(ref.Prob())) {
				t.Errorf("probabilities differ: %v vs %v", merged.Prob(), ref.Prob())
			}
		})
	}
}

func TestP2QuantileAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, p := range []float64{0.5, 0.9, 0.99} {
		sketch, err := NewP2Quantile(p)
		if err != nil {
			t.Fatal(err)
		}
		xs := make([]float64, 20000)
		for i := range xs {
			xs[i] = rng.NormFloat64()
			sketch.Add(xs[i])
		}
		exact := Quantile(xs, p)
		if math.Abs(sketch.Value()-exact) > 0.05 {
			t.Errorf("p=%g: sketch %g, exact %g", p, sketch.Value(), exact)
		}
	}
	if _, err := NewP2Quantile(0); err == nil {
		t.Error("p=0 accepted")
	}
}

func TestP2QuantileSmallSampleExact(t *testing.T) {
	s, err := NewP2Quantile(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(s.Value()) {
		t.Error("empty sketch should be NaN")
	}
	for _, x := range []float64{5, 1, 3} {
		s.Add(x)
	}
	if s.Value() != 3 {
		t.Errorf("median of {1,3,5} = %g", s.Value())
	}
}

func TestP2QuantileJSONRoundTripContinues(t *testing.T) {
	// A sketch serialized mid-stream and restored must continue exactly like
	// the uninterrupted one — the checkpoint/resume property.
	rng := rand.New(rand.NewSource(5))
	xs := make([]float64, 2000)
	for i := range xs {
		xs[i] = rng.ExpFloat64()
	}
	whole, _ := NewP2Quantile(0.9)
	half, _ := NewP2Quantile(0.9)
	for i, x := range xs {
		whole.Add(x)
		if i < 1000 {
			half.Add(x)
		}
	}
	data, err := json.Marshal(half)
	if err != nil {
		t.Fatal(err)
	}
	var restored P2Quantile
	if err := json.Unmarshal(data, &restored); err != nil {
		t.Fatal(err)
	}
	for _, x := range xs[1000:] {
		restored.Add(x)
	}
	if restored.Value() != whole.Value() {
		t.Errorf("resumed sketch %g, uninterrupted %g", restored.Value(), whole.Value())
	}
}

func TestStreamStatsExceedanceAndQuantiles(t *testing.T) {
	st, err := NewStreamStats(2, 10.0, []float64{0.5})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		out := []float64{float64(i % 20), 5}
		st.Add(out)
	}
	// Output 0 cycles 0..19: half the samples reach 10 on output 0, none on 1.
	if st.ExceedOut[0] != 50 || st.ExceedOut[1] != 0 {
		t.Errorf("per-output exceed counts %v", st.ExceedOut)
	}
	if p := st.FailProb(); p != 0.5 {
		t.Errorf("any-output failure probability %g", p)
	}
	if v, ok := st.Quantile(0.5, 1); !ok || v != 5 {
		t.Errorf("sketched median %g ok=%v", v, ok)
	}
	if _, ok := st.Quantile(0.25, 0); ok {
		t.Error("untracked quantile reported ok")
	}
	// Sketching stats refuse to merge.
	other, _ := NewStreamStats(2, 10.0, []float64{0.5})
	if err := st.Merge(other); err == nil {
		t.Error("sketching merge accepted")
	}
}

func TestStreamStatsMerge(t *testing.T) {
	whole, _ := NewStreamStats(1, 2.0, nil)
	a, _ := NewStreamStats(1, 2.0, nil)
	b, _ := NewStreamStats(1, 2.0, nil)
	for i := 0; i < 60; i++ {
		out := []float64{float64(i % 4)}
		whole.Add(out)
		if i%2 == 0 {
			a.Add(out)
		} else {
			b.Add(out)
		}
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Moments.N != whole.Moments.N || a.ExceedOut[0] != whole.ExceedOut[0] ||
		a.ExceedAny.Count != whole.ExceedAny.Count || a.Ext.Max[0] != whole.Ext.Max[0] {
		t.Errorf("merged state %+v differs from whole %+v", a, whole)
	}
	mismatched, _ := NewStreamStats(1, 3.0, nil)
	if err := a.Merge(mismatched); err == nil {
		t.Error("threshold-mismatched merge accepted")
	}
}

func TestQuantileSortedMatchesQuantile(t *testing.T) {
	xs := []float64{9, 1, 4, 4, 7, 2}
	sorted := []float64{1, 2, 4, 4, 7, 9}
	for _, p := range []float64{0, 0.1, 0.5, 0.77, 1} {
		if a, b := Quantile(xs, p), QuantileSorted(sorted, p); a != b {
			t.Errorf("p=%g: Quantile %g, QuantileSorted %g", p, a, b)
		}
	}
	if !math.IsNaN(QuantileSorted(nil, 0.5)) {
		t.Error("empty input should be NaN")
	}
}
