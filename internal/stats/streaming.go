// Streaming accumulators for constant-memory sampling campaigns: vector
// Welford moments, extrema, exceedance counters for failure probabilities
// and a bounded P² quantile sketch. All state is exported and
// JSON-serializable so a campaign can checkpoint mid-run and resume
// bit-for-bit; the moment/extrema/exceedance accumulators are additionally
// mergeable (Chan et al.) for shard-level combination.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// VectorMoments is a mergeable streaming mean/variance accumulator over a
// fixed-length output vector: the vector form of Welford, one element per
// model output. Folding samples in index order reproduces the stored-
// ensemble MeanAll/StdAll bit-for-bit because the arithmetic is identical.
type VectorMoments struct {
	N    int       `json:"n"`
	Mean []float64 `json:"mean"`
	M2   []float64 `json:"m2"`
}

// NewVectorMoments returns an accumulator over n outputs.
func NewVectorMoments(n int) *VectorMoments {
	return &VectorMoments{Mean: make([]float64, n), M2: make([]float64, n)}
}

// Len returns the number of tracked outputs.
func (v *VectorMoments) Len() int { return len(v.Mean) }

// Add folds one sample's output vector into the accumulator.
func (v *VectorMoments) Add(x []float64) {
	v.N++
	n := float64(v.N)
	for j, xj := range x {
		d := xj - v.Mean[j]
		v.Mean[j] += d / n
		v.M2[j] += d * (xj - v.Mean[j])
	}
}

// Merge combines another accumulator into this one (Chan et al. pairwise
// update). Merging shards in a fixed order is deterministic but not
// bit-identical to a single-stream fold; campaigns that need bit-identical
// results across worker counts fold in sample order instead.
func (v *VectorMoments) Merge(o *VectorMoments) error {
	if len(o.Mean) != len(v.Mean) {
		return fmt.Errorf("stats: merging %d-output moments into %d", len(o.Mean), len(v.Mean))
	}
	if o.N == 0 {
		return nil
	}
	if v.N == 0 {
		v.N = o.N
		copy(v.Mean, o.Mean)
		copy(v.M2, o.M2)
		return nil
	}
	n1, n2 := float64(v.N), float64(o.N)
	tot := n1 + n2
	for j := range v.Mean {
		d := o.Mean[j] - v.Mean[j]
		v.Mean[j] += d * n2 / tot
		v.M2[j] += o.M2[j] + d*d*n1*n2/tot
	}
	v.N += o.N
	return nil
}

// Variance returns the unbiased running variance of output j (NaN for
// fewer than two samples).
func (v *VectorMoments) Variance(j int) float64 {
	if v.N < 2 {
		return math.NaN()
	}
	return v.M2[j] / float64(v.N-1)
}

// MeanAll returns a copy of the running means.
func (v *VectorMoments) MeanAll() []float64 {
	return append([]float64(nil), v.Mean...)
}

// StdAll returns the running standard deviations, with the under-sampled
// NaN mapped to 0 (matching the stored-ensemble convention).
func (v *VectorMoments) StdAll() []float64 {
	out := make([]float64, len(v.Mean))
	for j := range out {
		s := v.Variance(j)
		if math.IsNaN(s) {
			s = 0
		}
		out[j] = math.Sqrt(s)
	}
	return out
}

// MaxSE returns the largest Monte Carlo standard error σ_j/√N across
// outputs (the paper's eq. 6 applied output-wise), +Inf before two samples.
func (v *VectorMoments) MaxSE() float64 {
	if v.N < 2 {
		return math.Inf(1)
	}
	m := 0.0
	sqrtN := math.Sqrt(float64(v.N))
	for j := range v.Mean {
		if se := math.Sqrt(v.M2[j]/float64(v.N-1)) / sqrtN; se > m {
			m = se
		}
	}
	return m
}

// Extrema tracks streaming per-output minima and maxima.
type Extrema struct {
	N   int       `json:"n"`
	Min []float64 `json:"min"`
	Max []float64 `json:"max"`
}

// NewExtrema returns an extrema tracker over n outputs.
func NewExtrema(n int) *Extrema {
	return &Extrema{Min: make([]float64, n), Max: make([]float64, n)}
}

// Add folds one sample's output vector.
func (e *Extrema) Add(x []float64) {
	if e.N == 0 {
		copy(e.Min, x)
		copy(e.Max, x)
		e.N = 1
		return
	}
	e.N++
	for j, xj := range x {
		if xj < e.Min[j] {
			e.Min[j] = xj
		}
		if xj > e.Max[j] {
			e.Max[j] = xj
		}
	}
}

// Merge combines another tracker into this one.
func (e *Extrema) Merge(o *Extrema) error {
	if len(o.Min) != len(e.Min) {
		return fmt.Errorf("stats: merging %d-output extrema into %d", len(o.Min), len(e.Min))
	}
	if o.N == 0 {
		return nil
	}
	if e.N == 0 {
		e.N = o.N
		copy(e.Min, o.Min)
		copy(e.Max, o.Max)
		return nil
	}
	e.N += o.N
	for j := range e.Min {
		if o.Min[j] < e.Min[j] {
			e.Min[j] = o.Min[j]
		}
		if o.Max[j] > e.Max[j] {
			e.Max[j] = o.Max[j]
		}
	}
	return nil
}

// GlobalMax returns the largest value seen across all outputs (NaN before
// any sample) — for temperature outputs, the hottest observation anywhere.
func (e *Extrema) GlobalMax() float64 {
	if e.N == 0 {
		return math.NaN()
	}
	m := math.Inf(-1)
	for _, v := range e.Max {
		if v > m {
			m = v
		}
	}
	return m
}

// ExceedCounter is a mergeable streaming estimator of an exceedance
// probability P(X ≥ threshold) — the small failure probabilities of the
// bond-wire reliability workload.
type ExceedCounter struct {
	N     int `json:"n"`
	Count int `json:"count"`
}

// Observe folds one Bernoulli observation.
func (c *ExceedCounter) Observe(exceeded bool) {
	c.N++
	if exceeded {
		c.Count++
	}
}

// Merge combines another counter into this one.
func (c *ExceedCounter) Merge(o ExceedCounter) {
	c.N += o.N
	c.Count += o.Count
}

// Prob returns the empirical exceedance probability (NaN before any sample).
func (c *ExceedCounter) Prob() float64 {
	if c.N == 0 {
		return math.NaN()
	}
	return float64(c.Count) / float64(c.N)
}

// Wilson returns the Wilson score confidence interval for the exceedance
// probability at normal quantile z (1.96 for 95%). It remains informative
// at the tiny counts of small-failure-probability campaigns where the
// normal interval collapses to a point.
func (c *ExceedCounter) Wilson(z float64) (lo, hi float64) {
	if c.N == 0 {
		return math.NaN(), math.NaN()
	}
	n := float64(c.N)
	p := float64(c.Count) / n
	z2 := z * z
	denom := 1 + z2/n
	center := (p + z2/(2*n)) / denom
	half := z / denom * math.Sqrt(p*(1-p)/n+z2/(4*n*n))
	return center - half, center + half
}

// HalfWidth returns the half-width of the Wilson interval at quantile z —
// the quantity adaptive stopping rules compare against a target confidence
// width.
func (c *ExceedCounter) HalfWidth(z float64) float64 {
	lo, hi := c.Wilson(z)
	return (hi - lo) / 2
}

// P2Quantile estimates a single quantile in O(1) memory with the P²
// algorithm (Jain & Chlamtac 1985): five markers tracking the running
// quantile without storing samples. The state is exported so checkpoints
// round-trip exactly; it is a fold-order accumulator and does not merge.
type P2Quantile struct {
	P   float64    `json:"p"`
	N   int        `json:"n"`
	Q   [5]float64 `json:"q"`             // marker heights
	Pos [5]float64 `json:"pos"`           // marker positions (integral)
	Des [5]float64 `json:"des"`           // desired marker positions
	Buf []float64  `json:"buf,omitempty"` // observations before initialization
}

// NewP2Quantile returns a sketch for the p-quantile, 0 < p < 1.
func NewP2Quantile(p float64) (*P2Quantile, error) {
	if !(p > 0 && p < 1) {
		return nil, fmt.Errorf("stats: P² quantile p=%g outside (0, 1)", p)
	}
	return &P2Quantile{P: p}, nil
}

// Add folds one observation into the sketch.
func (q *P2Quantile) Add(x float64) {
	q.N++
	if q.N <= 5 {
		q.Buf = append(q.Buf, x)
		if q.N == 5 {
			sort.Float64s(q.Buf)
			for i := 0; i < 5; i++ {
				q.Q[i] = q.Buf[i]
				q.Pos[i] = float64(i + 1)
			}
			p := q.P
			q.Des = [5]float64{1, 1 + 2*p, 1 + 4*p, 3 + 2*p, 5}
			q.Buf = nil
		}
		return
	}

	// Locate the cell and update the extreme markers.
	var k int
	switch {
	case x < q.Q[0]:
		q.Q[0] = x
		k = 0
	case x >= q.Q[4]:
		q.Q[4] = x
		k = 3
	default:
		for k = 0; k < 3; k++ {
			if x < q.Q[k+1] {
				break
			}
		}
	}
	for i := k + 1; i < 5; i++ {
		q.Pos[i]++
	}
	inc := [5]float64{0, q.P / 2, q.P, (1 + q.P) / 2, 1}
	for i := range q.Des {
		q.Des[i] += inc[i]
	}

	// Adjust the interior markers toward their desired positions.
	for i := 1; i <= 3; i++ {
		d := q.Des[i] - q.Pos[i]
		if (d >= 1 && q.Pos[i+1]-q.Pos[i] > 1) || (d <= -1 && q.Pos[i-1]-q.Pos[i] < -1) {
			s := 1.0
			if d < 0 {
				s = -1.0
			}
			// Piecewise-parabolic prediction, falling back to linear when
			// the parabola leaves the bracketing markers.
			qi := q.Q[i] + s/(q.Pos[i+1]-q.Pos[i-1])*
				((q.Pos[i]-q.Pos[i-1]+s)*(q.Q[i+1]-q.Q[i])/(q.Pos[i+1]-q.Pos[i])+
					(q.Pos[i+1]-q.Pos[i]-s)*(q.Q[i]-q.Q[i-1])/(q.Pos[i]-q.Pos[i-1]))
			if q.Q[i-1] < qi && qi < q.Q[i+1] {
				q.Q[i] = qi
			} else {
				si := i + int(s)
				q.Q[i] += s * (q.Q[si] - q.Q[i]) / (q.Pos[si] - q.Pos[i])
			}
			q.Pos[i] += s
		}
	}
}

// Value returns the current quantile estimate (exact below six samples,
// NaN before any).
func (q *P2Quantile) Value() float64 {
	if q.N == 0 {
		return math.NaN()
	}
	if q.N < 5 {
		s := append([]float64(nil), q.Buf...)
		sort.Float64s(s)
		return QuantileSorted(s, q.P)
	}
	return q.Q[2]
}

// StreamStats bundles the streaming accumulators a sampling campaign keeps
// per output vector: moments, extrema, threshold-exceedance counters and
// optional quantile sketches. Memory is O(NumOutputs), independent of the
// sample count. The whole struct JSON-round-trips exactly for checkpoints.
type StreamStats struct {
	Moments *VectorMoments `json:"moments"`
	Ext     *Extrema       `json:"extrema"`

	// Threshold enables exceedance tracking when positive (T_crit for the
	// bond-wire failure workload).
	Threshold float64 `json:"threshold,omitempty"`
	// ExceedOut counts, per output, the successful samples with
	// out[j] ≥ Threshold.
	ExceedOut []int `json:"exceed_out,omitempty"`
	// ExceedAny counts samples where ANY output reached the threshold —
	// for time-major wire-temperature outputs this is the bond-wire failure
	// event "some wire exceeded T_crit at some time".
	ExceedAny ExceedCounter `json:"exceed_any"`

	// Probs are the tracked quantile levels; Sketch[k][j] estimates the
	// Probs[k]-quantile of output j.
	Probs  []float64      `json:"probs,omitempty"`
	Sketch [][]P2Quantile `json:"sketch,omitempty"`
}

// NewStreamStats returns accumulators over nOut outputs. threshold ≤ 0
// disables exceedance tracking; probs lists optional quantile levels to
// sketch per output.
func NewStreamStats(nOut int, threshold float64, probs []float64) (*StreamStats, error) {
	s := &StreamStats{
		Moments: NewVectorMoments(nOut),
		Ext:     NewExtrema(nOut),
	}
	if threshold > 0 {
		s.Threshold = threshold
		s.ExceedOut = make([]int, nOut)
	}
	for _, p := range probs {
		row := make([]P2Quantile, nOut)
		for j := range row {
			q, err := NewP2Quantile(p)
			if err != nil {
				return nil, err
			}
			row[j] = *q
		}
		s.Probs = append(s.Probs, p)
		s.Sketch = append(s.Sketch, row)
	}
	return s, nil
}

// NumOutputs returns the tracked output count.
func (s *StreamStats) NumOutputs() int { return s.Moments.Len() }

// Add folds one successful sample's output vector into every accumulator.
func (s *StreamStats) Add(out []float64) {
	s.Moments.Add(out)
	s.Ext.Add(out)
	if s.Threshold > 0 {
		any := false
		for j, v := range out {
			if v >= s.Threshold {
				s.ExceedOut[j]++
				any = true
			}
		}
		s.ExceedAny.Observe(any)
	}
	for k := range s.Sketch {
		for j := range s.Sketch[k] {
			s.Sketch[k][j].Add(out[j])
		}
	}
}

// FailProb returns the empirical probability that a sample exceeded the
// threshold on any output (NaN when exceedance tracking is off or empty).
func (s *StreamStats) FailProb() float64 { return s.ExceedAny.Prob() }

// Quantile returns the sketched p-quantile of output j; ok is false when p
// is not tracked.
func (s *StreamStats) Quantile(p float64, j int) (v float64, ok bool) {
	for k, pk := range s.Probs {
		if pk == p {
			return s.Sketch[k][j].Value(), true
		}
	}
	return math.NaN(), false
}

// Merge combines another accumulator set into this one. Quantile sketches
// are fold-order accumulators and cannot merge; merging is refused when
// either side sketches quantiles or the exceedance thresholds differ.
func (s *StreamStats) Merge(o *StreamStats) error {
	if len(s.Sketch) > 0 || len(o.Sketch) > 0 {
		return fmt.Errorf("stats: P² quantile sketches do not merge; fold in sample order instead")
	}
	if s.Threshold != o.Threshold {
		return fmt.Errorf("stats: merging exceedance thresholds %g and %g", s.Threshold, o.Threshold)
	}
	if err := s.Moments.Merge(o.Moments); err != nil {
		return err
	}
	if err := s.Ext.Merge(o.Ext); err != nil {
		return err
	}
	for j := range s.ExceedOut {
		s.ExceedOut[j] += o.ExceedOut[j]
	}
	s.ExceedAny.Merge(o.ExceedAny)
	return nil
}

// QuantileSorted returns the p-quantile of an already-sorted slice using
// the same linear interpolation as Quantile, without copying or re-sorting.
func QuantileSorted(s []float64, p float64) float64 {
	if len(s) == 0 || p < 0 || p > 1 {
		return math.NaN()
	}
	if len(s) == 1 {
		return s[0]
	}
	h := p * float64(len(s)-1)
	lo := int(math.Floor(h))
	hi := lo + 1
	if hi >= len(s) {
		return s[len(s)-1]
	}
	return s[lo] + (h-float64(lo))*(s[hi]-s[lo])
}
