// Package metrics is a minimal, dependency-free instrumentation library
// exposing counters, gauges and histograms in the Prometheus text
// exposition format (version 0.0.4). It exists so the control plane can
// serve GET /metrics without pulling the Prometheus client library into a
// module that is otherwise stdlib-only.
//
// A Registry owns a set of named metric families; families render in
// registration order, series within a family in label order. Counter,
// Gauge and Histogram are safe for concurrent use (atomics under the
// hood); GaugeFunc samples a callback at scrape time, which is how cheap
// "current state" gauges (jobs by state, queue depth, watcher counts)
// avoid double bookkeeping.
package metrics

import (
	"fmt"
	"math"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// metric is one series: a render hook plus its identity within a family.
type metric interface {
	// labels returns the series labels ({} rendered empty).
	labelString() string
	// write appends the sample lines of the series (histograms emit
	// several) given the family name and rendered label set.
	write(b *strings.Builder, name, labels string)
}

// family groups series sharing one name, help string and type.
type family struct {
	name, help, typ string
	mu              sync.Mutex
	series          []metric
}

// Registry holds metric families and renders them as a text exposition.
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

// lookup returns (creating on first use) the family of a name, verifying
// the type stays consistent across registrations.
func (r *Registry) lookup(name, help, typ string) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.byName[name]; ok {
		if f.typ != typ {
			panic(fmt.Sprintf("metrics: %s registered as %s and %s", name, f.typ, typ))
		}
		return f
	}
	f := &family{name: name, help: help, typ: typ}
	r.byName[name] = f
	r.families = append(r.families, f)
	return f
}

func (f *family) add(m metric) {
	f.mu.Lock()
	f.series = append(f.series, m)
	f.mu.Unlock()
}

// Labels is one series' label set.
type Labels map[string]string

// render formats a label set deterministically ({a="x",b="y"}).
func (l Labels) render() string {
	if len(l) == 0 {
		return ""
	}
	keys := make([]string, 0, len(l))
	for k := range l {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", k, l[k])
	}
	b.WriteByte('}')
	return b.String()
}

// mergeLabels renders base labels plus one extra pair (for histogram "le").
func mergeLabels(labels string, k, v string) string {
	extra := fmt.Sprintf("%s=%q", k, v)
	if labels == "" {
		return "{" + extra + "}"
	}
	return strings.TrimSuffix(labels, "}") + "," + extra + "}"
}

// formatFloat renders a sample value (Prometheus uses Go's shortest form;
// +Inf appears in histogram bucket labels).
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return fmt.Sprintf("%g", v)
}

// ---------------------------------------------------------------------------
// Counter.
// ---------------------------------------------------------------------------

// Counter is a monotonically increasing sample.
type Counter struct {
	labels string
	bits   atomic.Uint64 // float64 bits
}

// NewCounter registers a counter series (empty Labels allowed).
func (r *Registry) NewCounter(name, help string, l Labels) *Counter {
	c := &Counter{labels: l.render()}
	r.lookup(name, help, "counter").add(c)
	return c
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add increases the counter by v (v < 0 is ignored).
func (c *Counter) Add(v float64) {
	if v < 0 {
		return
	}
	for {
		old := c.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if c.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current count.
func (c *Counter) Value() float64 { return math.Float64frombits(c.bits.Load()) }

func (c *Counter) labelString() string { return c.labels }
func (c *Counter) write(b *strings.Builder, name, labels string) {
	fmt.Fprintf(b, "%s%s %s\n", name, labels, formatFloat(c.Value()))
}

// ---------------------------------------------------------------------------
// Gauge.
// ---------------------------------------------------------------------------

// Gauge is a sample that can go up and down.
type Gauge struct {
	labels string
	bits   atomic.Uint64
}

// NewGauge registers a gauge series.
func (r *Registry) NewGauge(name, help string, l Labels) *Gauge {
	g := &Gauge{labels: l.render()}
	r.lookup(name, help, "gauge").add(g)
	return g
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add shifts the gauge by v (negative allowed).
func (g *Gauge) Add(v float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

func (g *Gauge) labelString() string { return g.labels }
func (g *Gauge) write(b *strings.Builder, name, labels string) {
	fmt.Fprintf(b, "%s%s %s\n", name, labels, formatFloat(g.Value()))
}

// ---------------------------------------------------------------------------
// GaugeFunc.
// ---------------------------------------------------------------------------

// gaugeFunc samples a callback at scrape time.
type gaugeFunc struct {
	labels string
	fn     func() float64
}

// NewGaugeFunc registers a gauge whose value is fn() at scrape time. fn
// must be safe for concurrent use.
func (r *Registry) NewGaugeFunc(name, help string, l Labels, fn func() float64) {
	r.lookup(name, help, "gauge").add(&gaugeFunc{labels: l.render(), fn: fn})
}

func (g *gaugeFunc) labelString() string { return g.labels }
func (g *gaugeFunc) write(b *strings.Builder, name, labels string) {
	fmt.Fprintf(b, "%s%s %s\n", name, labels, formatFloat(g.fn()))
}

// ---------------------------------------------------------------------------
// Histogram.
// ---------------------------------------------------------------------------

// Histogram counts observations into cumulative buckets. Buckets are fixed
// at registration; observations above the last bound land only in +Inf.
type Histogram struct {
	labels  string
	bounds  []float64
	counts  []atomic.Uint64 // one per bound, cumulative rendered at scrape
	count   atomic.Uint64
	sumBits atomic.Uint64
}

// DefBuckets are latency-flavoured default bounds in seconds, spanning
// 50µs (a warm fsync) to 10s.
var DefBuckets = []float64{
	50e-6, 100e-6, 250e-6, 500e-6, 1e-3, 2.5e-3, 5e-3, 10e-3,
	25e-3, 50e-3, 100e-3, 250e-3, 500e-3, 1, 2.5, 5, 10,
}

// NewHistogram registers a histogram series with the given bucket upper
// bounds (nil takes DefBuckets). Bounds must be sorted ascending.
func (r *Registry) NewHistogram(name, help string, l Labels, bounds []float64) *Histogram {
	if bounds == nil {
		bounds = DefBuckets
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("metrics: %s buckets not sorted", name))
		}
	}
	h := &Histogram{labels: l.render(), bounds: bounds, counts: make([]atomic.Uint64, len(bounds))}
	r.lookup(name, help, "histogram").add(h)
	return h
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	for i, bound := range h.bounds {
		if v <= bound {
			h.counts[i].Add(1)
			break
		}
	}
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

func (h *Histogram) labelString() string { return h.labels }
func (h *Histogram) write(b *strings.Builder, name, labels string) {
	cum := uint64(0)
	for i, bound := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(b, "%s_bucket%s %d\n", name, mergeLabels(labels, "le", formatFloat(bound)), cum)
	}
	fmt.Fprintf(b, "%s_bucket%s %d\n", name, mergeLabels(labels, "le", "+Inf"), h.count.Load())
	fmt.Fprintf(b, "%s_sum%s %s\n", name, labels, formatFloat(h.Sum()))
	fmt.Fprintf(b, "%s_count%s %d\n", name, labels, h.count.Load())
}

// ---------------------------------------------------------------------------
// Exposition.
// ---------------------------------------------------------------------------

// Render writes the full exposition of the registry.
func (r *Registry) Render() string {
	r.mu.Lock()
	families := make([]*family, len(r.families))
	copy(families, r.families)
	r.mu.Unlock()

	var b strings.Builder
	for _, f := range families {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.typ)
		f.mu.Lock()
		series := make([]metric, len(f.series))
		copy(series, f.series)
		f.mu.Unlock()
		sort.SliceStable(series, func(i, j int) bool {
			return series[i].labelString() < series[j].labelString()
		})
		for _, m := range series {
			m.write(&b, f.name, m.labelString())
		}
	}
	return b.String()
}

// Handler serves the exposition over HTTP.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_, _ = w.Write([]byte(r.Render()))
	})
}
