package metrics

import (
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeRender(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("jobs_total", "Total jobs.", nil)
	cq := r.NewCounter("jobs_by_state", "Jobs by state.", Labels{"state": "queued"})
	cr := r.NewCounter("jobs_by_state", "Jobs by state.", Labels{"state": "running"})
	g := r.NewGauge("depth", "Queue depth.", nil)
	r.NewGaugeFunc("watchers", "Watchers.", nil, func() float64 { return 7 })

	c.Inc()
	c.Add(2)
	c.Add(-5) // ignored: counters are monotonic
	cq.Add(3)
	cr.Inc()
	g.Set(4)
	g.Add(-1.5)

	out := r.Render()
	for _, want := range []string{
		"# TYPE jobs_total counter",
		"jobs_total 3\n",
		`jobs_by_state{state="queued"} 3`,
		`jobs_by_state{state="running"} 1`,
		"# TYPE depth gauge",
		"depth 2.5\n",
		"watchers 7\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition misses %q:\n%s", want, out)
		}
	}
	// One HELP/TYPE header per family even with several series.
	if n := strings.Count(out, "# TYPE jobs_by_state"); n != 1 {
		t.Errorf("family header repeated %d times", n)
	}
}

func TestHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("lat_seconds", "Latency.", nil, []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.05, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count %d, want 5", h.Count())
	}
	if got, want := h.Sum(), 0.005+0.05+0.05+0.5+5; got != want {
		t.Fatalf("sum %g, want %g", got, want)
	}
	out := r.Render()
	for _, want := range []string{
		`lat_seconds_bucket{le="0.01"} 1`,
		`lat_seconds_bucket{le="0.1"} 3`,
		`lat_seconds_bucket{le="1"} 4`,
		`lat_seconds_bucket{le="+Inf"} 5`,
		"lat_seconds_count 5",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition misses %q:\n%s", want, out)
		}
	}
}

func TestHistogramWithLabels(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("op_seconds", "Op latency.", Labels{"op": "fsync"}, []float64{1})
	h.Observe(0.5)
	out := r.Render()
	if !strings.Contains(out, `op_seconds_bucket{op="fsync",le="1"} 1`) {
		t.Errorf("labelled bucket missing:\n%s", out)
	}
	if !strings.Contains(out, `op_seconds_sum{op="fsync"} 0.5`) {
		t.Errorf("labelled sum missing:\n%s", out)
	}
}

func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("c", "c", nil)
	g := r.NewGauge("g", "g", nil)
	h := r.NewHistogram("h", "h", nil, nil)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(0.001)
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 || g.Value() != 8000 || h.Count() != 8000 {
		t.Fatalf("lost updates: c=%g g=%g h=%d", c.Value(), g.Value(), h.Count())
	}
}

func TestHandler(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("x_total", "X.", nil).Inc()
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("content type %q", ct)
	}
	buf := make([]byte, 1<<16)
	n, _ := resp.Body.Read(buf)
	if !strings.Contains(string(buf[:n]), "x_total 1") {
		t.Errorf("body misses counter: %s", buf[:n])
	}
}
