package jobstore

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// File layout of a store directory. State lives in exactly one generation
// G at a time: snapshot-G (the compacted base, absent for generation 1)
// plus wal-G (the live log of everything since). Compaction moves to
// generation G+1 with a crash-safe handover:
//
//  1. write snapshot-(G+1).tmp with the full current state, fsync it
//  2. create an empty wal-(G+1), fsync the directory
//  3. rename snapshot-(G+1).tmp → snapshot-(G+1), fsync the directory
//  4. switch appends to wal-(G+1), delete generation G
//
// The rename in step 3 is the commit point. A crash before it leaves
// generation G fully intact (the .tmp and a possibly-present empty
// wal-(G+1) are ignored and removed on the next Open); a crash after it
// recovers from snapshot-(G+1) plus an empty or missing wal-(G+1). Open
// picks the highest generation with a readable snapshot, falls back to
// older generations when a snapshot is unreadable, and deletes every
// file outside the chosen generation.

const (
	snapshotPrefix = "snapshot-"
	walPrefix      = "wal-"
	tmpSuffix      = ".tmp"
)

// Compaction thresholds of Options.
const (
	// DefaultCompactBytes triggers compaction once the WAL grows past it.
	DefaultCompactBytes = 8 << 20
	// DefaultCompactRecords triggers compaction on record count (protects
	// against many tiny records never reaching the byte threshold).
	DefaultCompactRecords = 50_000
)

// Options tune a FileStore.
type Options struct {
	// CompactBytes triggers compaction when the live WAL exceeds it
	// (0 = DefaultCompactBytes, negative disables size-triggered
	// compaction).
	CompactBytes int64
	// CompactRecords triggers compaction on WAL record count
	// (0 = DefaultCompactRecords, negative disables).
	CompactRecords int
	// NoSync skips fsync on appends (tests only: a crash may then lose
	// acknowledged writes, exactly the failure mode the defaults prevent).
	NoSync bool
	// OnFsync, when non-nil, observes the latency of every WAL fsync —
	// the hook the server's metrics histogram plugs into.
	OnFsync func(time.Duration)
	// Logf, when non-nil, receives recovery notes (truncated tails,
	// discarded stale generations).
	Logf func(format string, args ...any)
}

// Stats describe a FileStore for monitoring.
type Stats struct {
	// Gen is the live generation number.
	Gen uint64
	// WALRecords / WALBytes describe the live log.
	WALRecords int
	WALBytes   int64
	// Appends counts records written since Open.
	Appends int64
	// Compactions counts snapshot handovers since Open.
	Compactions int64
	// RecoveredRecords counts records replayed by Open (snapshot + WAL).
	RecoveredRecords int
	// TruncatedBytes counts WAL bytes discarded by Open as a torn tail.
	TruncatedBytes int64
}

// FileStore is the durable Store implementation. All methods are safe for
// concurrent use; Put/Delete return after their record is written and
// (unless Options.NoSync) fsync'd.
type FileStore struct {
	dir  string
	opt  Options
	lock *os.File // flock on dir/lock (nil where unsupported)

	mu         sync.Mutex
	state      *State
	wal        *os.File
	gen        uint64
	walBytes   int64
	walRecords int
	buf        []byte // frame encode scratch
	closed     bool

	appends     int64
	compactions int64
	recovered   int
	truncated   int64
}

// Open opens (creating if needed) the store in dir and replays its state.
func Open(dir string, opt Options) (*FileStore, error) {
	if opt.CompactBytes == 0 {
		opt.CompactBytes = DefaultCompactBytes
	}
	if opt.CompactRecords == 0 {
		opt.CompactRecords = DefaultCompactRecords
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("jobstore: %w", err)
	}
	lock, err := lockDir(dir)
	if err != nil {
		return nil, err
	}
	s := &FileStore{dir: dir, opt: opt, lock: lock}
	if err := s.recover(); err != nil {
		if lock != nil {
			lock.Close()
		}
		return nil, err
	}
	return s, nil
}

func (s *FileStore) logf(format string, args ...any) {
	if s.opt.Logf != nil {
		s.opt.Logf(format, args...)
	}
}

// genFiles lists the snapshot and WAL generations present in the
// directory, plus any stray .tmp files.
func (s *FileStore) genFiles() (snaps, wals []uint64, tmps []string, err error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("jobstore: %w", err)
	}
	parse := func(name, prefix string) (uint64, bool) {
		num, ok := strings.CutPrefix(name, prefix)
		if !ok {
			return 0, false
		}
		g, err := strconv.ParseUint(num, 10, 64)
		return g, err == nil
	}
	for _, e := range entries {
		name := e.Name()
		if strings.HasSuffix(name, tmpSuffix) {
			tmps = append(tmps, name)
			continue
		}
		if g, ok := parse(name, snapshotPrefix); ok {
			snaps = append(snaps, g)
		} else if g, ok := parse(name, walPrefix); ok {
			wals = append(wals, g)
		}
	}
	sort.Slice(snaps, func(i, j int) bool { return snaps[i] < snaps[j] })
	sort.Slice(wals, func(i, j int) bool { return wals[i] < wals[j] })
	return snaps, wals, tmps, nil
}

func (s *FileStore) snapshotPath(g uint64) string {
	return filepath.Join(s.dir, fmt.Sprintf("%s%08d", snapshotPrefix, g))
}

func (s *FileStore) walPath(g uint64) string {
	return filepath.Join(s.dir, fmt.Sprintf("%s%08d", walPrefix, g))
}

// readSnapshot loads and validates one snapshot file.
func readSnapshot(path string) (*State, int, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, err
	}
	defer f.Close()
	payload, err := readFrame(f)
	if err != nil {
		return nil, 0, fmt.Errorf("jobstore: snapshot %s: %w", filepath.Base(path), err)
	}
	// A snapshot is exactly one frame; trailing bytes mean a corrupt write.
	if _, err := f.Read(make([]byte, 1)); err != io.EOF {
		return nil, 0, fmt.Errorf("jobstore: snapshot %s has trailing bytes", filepath.Base(path))
	}
	st, err := decodeSnapshot(payload)
	if err != nil {
		return nil, 0, err
	}
	n := 0
	for _, m := range st.Kinds {
		n += len(m)
	}
	return st, n, nil
}

// recover rebuilds state from disk, chooses the live generation, cleans
// stray files and opens the WAL for appending.
func (s *FileStore) recover() error {
	snaps, wals, tmps, err := s.genFiles()
	if err != nil {
		return err
	}
	for _, name := range tmps {
		s.logf("jobstore: removing stray %s", name)
		_ = os.Remove(filepath.Join(s.dir, name))
	}

	// Choose the generation: the highest readable snapshot wins; with no
	// readable snapshot the state starts empty at the lowest WAL present
	// (an interrupted compaction may have left a newer, empty WAL — the
	// old generation's log is the truth), or a fresh generation 1.
	var st *State
	var gen uint64
	for i := len(snaps) - 1; i >= 0; i-- {
		g := snaps[i]
		loaded, n, rerr := readSnapshot(s.snapshotPath(g))
		if rerr != nil {
			s.logf("jobstore: ignoring unreadable snapshot generation %d: %v", g, rerr)
			continue
		}
		st, gen = loaded, g
		s.recovered += n
		break
	}
	if st == nil {
		st = NewState()
		if len(wals) > 0 {
			gen = wals[0]
		} else {
			gen = 1
		}
	}

	// Replay the chosen generation's WAL, truncating a torn tail.
	walPath := s.walPath(gen)
	if f, oerr := os.Open(walPath); oerr == nil {
		validOffset, applied, rerr := replayWAL(f, st)
		size, _ := f.Seek(0, io.SeekEnd)
		f.Close()
		if rerr != nil {
			return fmt.Errorf("jobstore: replay %s: %w", filepath.Base(walPath), rerr)
		}
		if size > validOffset {
			s.truncated = size - validOffset
			s.logf("jobstore: truncating %d torn byte(s) at the tail of %s", s.truncated, filepath.Base(walPath))
			if terr := os.Truncate(walPath, validOffset); terr != nil {
				return fmt.Errorf("jobstore: %w", terr)
			}
		}
		s.recovered += applied
		s.walBytes = validOffset
		s.walRecords = applied
	} else if !os.IsNotExist(oerr) {
		return fmt.Errorf("jobstore: %w", oerr)
	}

	// Drop every file outside the chosen generation: older generations are
	// superseded, newer ones are debris of an interrupted compaction whose
	// commit rename never happened.
	for _, g := range snaps {
		if g != gen {
			_ = os.Remove(s.snapshotPath(g))
		}
	}
	for _, g := range wals {
		if g != gen {
			s.logf("jobstore: removing stale WAL generation %d", g)
			_ = os.Remove(s.walPath(g))
		}
	}

	wal, err := os.OpenFile(walPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("jobstore: %w", err)
	}
	s.state = st
	s.wal = wal
	s.gen = gen
	return s.syncDir()
}

// syncDir fsyncs the store directory (making renames and creates durable).
func (s *FileStore) syncDir() error {
	d, err := os.Open(s.dir)
	if err != nil {
		return fmt.Errorf("jobstore: %w", err)
	}
	defer d.Close()
	return d.Sync()
}

// append writes one WAL record, fsyncs and updates the in-memory mirror.
func (s *FileStore) append(rec walRecord) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("jobstore: store is closed")
	}
	payload, err := json.Marshal(&rec)
	if err != nil {
		return fmt.Errorf("jobstore: encode record: %w", err)
	}
	s.buf = appendFrame(s.buf[:0], payload)
	if _, err := s.wal.Write(s.buf); err != nil {
		return fmt.Errorf("jobstore: append: %w", err)
	}
	if !s.opt.NoSync {
		start := time.Now()
		if err := s.wal.Sync(); err != nil {
			return fmt.Errorf("jobstore: fsync: %w", err)
		}
		if s.opt.OnFsync != nil {
			s.opt.OnFsync(time.Since(start))
		}
	}
	switch rec.Op {
	case opPut:
		s.state.put(rec.Kind, rec.ID, rec.Data)
	case opDelete:
		s.state.del(rec.Kind, rec.ID)
	}
	s.state.Counters = s.state.Counters.Max(rec.C)
	s.walBytes += int64(len(s.buf))
	s.walRecords++
	s.appends++
	return s.maybeCompactLocked()
}

// Put implements Store.
func (s *FileStore) Put(kind, id string, data []byte, c Counters) error {
	if kind == "" || id == "" {
		return fmt.Errorf("jobstore: record needs kind and id")
	}
	if len(data) == 0 {
		return fmt.Errorf("jobstore: put without data")
	}
	return s.append(walRecord{Op: opPut, Kind: kind, ID: id, C: c, Data: data})
}

// Delete implements Store.
func (s *FileStore) Delete(kind, id string, c Counters) error {
	if kind == "" || id == "" {
		return fmt.Errorf("jobstore: record needs kind and id")
	}
	return s.append(walRecord{Op: opDelete, Kind: kind, ID: id, C: c})
}

// State implements Store.
func (s *FileStore) State() *State {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.state.clone()
}

// Stats returns a monitoring snapshot.
func (s *FileStore) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Gen:              s.gen,
		WALRecords:       s.walRecords,
		WALBytes:         s.walBytes,
		Appends:          s.appends,
		Compactions:      s.compactions,
		RecoveredRecords: s.recovered,
		TruncatedBytes:   s.truncated,
	}
}

// maybeCompactLocked compacts when the WAL outgrows the thresholds and a
// compaction would actually shrink it (a WAL whose live state is the WAL —
// no deletes, no overwrites — is left alone until it doubles the snapshot
// size bound). Caller holds s.mu.
func (s *FileStore) maybeCompactLocked() error {
	byBytes := s.opt.CompactBytes > 0 && s.walBytes >= s.opt.CompactBytes
	byRecords := s.opt.CompactRecords > 0 && s.walRecords >= s.opt.CompactRecords
	if !byBytes && !byRecords {
		return nil
	}
	return s.compactLocked()
}

// Compact forces a snapshot handover (exposed for tests and shutdown
// hooks; normal operation compacts automatically).
func (s *FileStore) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("jobstore: store is closed")
	}
	return s.compactLocked()
}

// compactLocked performs the generation handover described at the top of
// the file. Caller holds s.mu.
func (s *FileStore) compactLocked() error {
	next := s.gen + 1
	payload, err := encodeSnapshot(s.state)
	if err != nil {
		return fmt.Errorf("jobstore: encode snapshot: %w", err)
	}

	// 1. Snapshot to a temp file, fsync'd.
	tmpPath := s.snapshotPath(next) + tmpSuffix
	tmp, err := os.OpenFile(tmpPath, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("jobstore: %w", err)
	}
	frame := appendFrame(nil, payload)
	if _, err := tmp.Write(frame); err != nil {
		tmp.Close()
		return fmt.Errorf("jobstore: write snapshot: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("jobstore: sync snapshot: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("jobstore: %w", err)
	}

	// 2. Fresh WAL for the next generation.
	newWAL, err := os.OpenFile(s.walPath(next), os.O_CREATE|os.O_TRUNC|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("jobstore: %w", err)
	}
	if err := s.syncDir(); err != nil {
		newWAL.Close()
		return err
	}

	// 3. Commit: rename the snapshot into place.
	if err := os.Rename(tmpPath, s.snapshotPath(next)); err != nil {
		newWAL.Close()
		return fmt.Errorf("jobstore: commit snapshot: %w", err)
	}
	if err := s.syncDir(); err != nil {
		newWAL.Close()
		return err
	}

	// 4. Switch generations and drop the old one.
	old := s.gen
	_ = s.wal.Close()
	s.wal = newWAL
	s.gen = next
	s.walBytes = 0
	s.walRecords = 0
	s.compactions++
	_ = os.Remove(s.snapshotPath(old))
	_ = os.Remove(s.walPath(old))
	return nil
}

// Close flushes and releases the WAL.
func (s *FileStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	var err error
	if !s.opt.NoSync {
		err = s.wal.Sync()
	}
	if cerr := s.wal.Close(); err == nil {
		err = cerr
	}
	if s.lock != nil {
		// Releases the flock with it; the lock file stays behind.
		if cerr := s.lock.Close(); err == nil {
			err = cerr
		}
	}
	return err
}
