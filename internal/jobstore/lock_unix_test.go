//go:build unix

package jobstore

import (
	"strings"
	"testing"
)

func TestOpenRefusesLockedDir(t *testing.T) {
	dir := t.TempDir()

	s1, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("first Open: %v", err)
	}

	if _, err := Open(dir, Options{}); err == nil {
		t.Fatal("second Open on a live data dir succeeded; want refusal")
	} else if !strings.Contains(err.Error(), "another process") {
		t.Fatalf("second Open error = %v; want mention of another process", err)
	}

	if err := s1.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen after Close: %v", err)
	}
	if err := s2.Close(); err != nil {
		t.Fatalf("Close reopened store: %v", err)
	}
}
