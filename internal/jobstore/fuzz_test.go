package jobstore

import (
	"bytes"
	"encoding/json"
	"testing"
)

// FuzzWALReplay feeds arbitrary bytes through replayWAL. The invariants:
// replay never errors on arbitrary input (corruption is truncation, not
// failure), the valid offset is within the input and re-replaying exactly
// that prefix applies the same number of records and reports the prefix
// clean (idempotent truncation).
func FuzzWALReplay(f *testing.F) {
	// Seeds: empty, a clean two-record log, the same log torn at several
	// depths, a corrupted length field and plain garbage.
	var clean []byte
	for _, rec := range []walRecord{
		{Op: opPut, Kind: KindJob, ID: "job-000001", C: Counters{Job: 1}, Data: []byte(`{"s":"queued"}`)},
		{Op: opDelete, Kind: KindJob, ID: "job-000001"},
	} {
		payload, err := json.Marshal(&rec)
		if err != nil {
			f.Fatal(err)
		}
		clean = appendFrame(clean, payload)
	}
	f.Add([]byte{})
	f.Add(clean)
	f.Add(clean[:len(clean)-1])
	f.Add(clean[:frameHeaderSize+3])
	f.Add(clean[:frameHeaderSize-2])
	huge := append([]byte{0xFF, 0xFF, 0xFF, 0xFF}, clean[4:]...)
	f.Add(huge)
	f.Add([]byte("not a frame at all"))

	f.Fuzz(func(t *testing.T, data []byte) {
		st := NewState()
		off, applied, err := replayWAL(bytes.NewReader(data), st)
		if err != nil {
			t.Fatalf("replayWAL errored on arbitrary input: %v", err)
		}
		if off < 0 || off > int64(len(data)) {
			t.Fatalf("valid offset %d outside input of %d bytes", off, len(data))
		}
		st2 := NewState()
		off2, applied2, err := replayWAL(bytes.NewReader(data[:off]), st2)
		if err != nil {
			t.Fatalf("replay of valid prefix errored: %v", err)
		}
		if off2 != off || applied2 != applied {
			t.Fatalf("replay not idempotent: (%d,%d) then (%d,%d)", off, applied, off2, applied2)
		}
	})
}

// FuzzSnapshotDecode feeds arbitrary bytes through decodeSnapshot: it may
// reject them but must not panic, and anything it accepts must re-encode
// and decode to the same state (decode∘encode is the identity on valid
// snapshots).
func FuzzSnapshotDecode(f *testing.F) {
	st := NewState()
	st.Counters = Counters{Job: 3, Fleet: 1, Lease: 7}
	st.put(KindJob, "job-000001", []byte(`{"s":"done"}`))
	st.put(KindFleet, "fleet-000001", []byte(`{"shards":2}`))
	st.put(KindShard, "fleet-000001/0", []byte(`{"blocks":[]}`))
	good, err := encodeSnapshot(st)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good)
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"records":[{"kind":"","id":"x"}]}`))
	f.Add([]byte(`{"records":null,"counters":{"job":-1}}`))
	f.Add([]byte(`[1,2,3]`))
	f.Add([]byte(``))

	f.Fuzz(func(t *testing.T, data []byte) {
		st, err := decodeSnapshot(data)
		if err != nil {
			return
		}
		re, err := encodeSnapshot(st)
		if err != nil {
			t.Fatalf("accepted snapshot does not re-encode: %v", err)
		}
		st2, err := decodeSnapshot(re)
		if err != nil {
			t.Fatalf("re-encoded snapshot does not decode: %v", err)
		}
		if st.Counters != st2.Counters {
			t.Fatalf("counters drift: %+v vs %+v", st.Counters, st2.Counters)
		}
		if len(st.Kinds) != len(st2.Kinds) {
			t.Fatalf("kind count drift: %d vs %d", len(st.Kinds), len(st2.Kinds))
		}
		for kind, m := range st.Kinds {
			for id, data := range m {
				got, ok := st2.Kinds[kind][id]
				if !ok || !bytes.Equal(data, got) {
					t.Fatalf("record %s/%s drift", kind, id)
				}
			}
		}
	})
}
