//go:build !unix

package jobstore

import "os"

// lockDir is a no-op where flock is unavailable: the single-writer rule
// is documented but not enforced.
func lockDir(dir string) (*os.File, error) { return nil, nil }
