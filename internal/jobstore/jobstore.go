// Package jobstore is the pluggable persistence layer of the control
// plane: a Store absorbs every job, lease and shard-result transition of
// cmd/etserver and the fleet coordinator as opaque (kind, id) → JSON
// records, and hands the surviving state back after a restart.
//
// Two implementations exist. Mem is the historical in-memory behaviour (a
// restart loses everything — every write is a no-op). FileStore is an
// append-only log-structured store: each mutation is one fsync'd,
// CRC-framed WAL record, the log is periodically compacted into a
// snapshot with a crash-safe generation handover, and Open replays
// snapshot + WAL so the server recovers jobs, leases and fleet shard
// payloads bit-identically after kill -9 (a torn tail record — the write
// the crash interrupted — is detected by its checksum and truncated).
//
// The store is deliberately dumb: payloads are opaque JSON owned by the
// callers, and the only structured state is the Counters triple — the
// ID-sequence high-water marks that must survive restarts so job, fleet
// and lease IDs are never reused (cursor pagination and stale-lease
// rejection both depend on that).
package jobstore

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
)

// Record kinds written by the control plane.
const (
	// KindJob records one batch job (cmd/etserver's store).
	KindJob = "job"
	// KindFleet records one fleet job's metadata: scenario, plan, shard
	// lease states, status — everything but the shard result payloads.
	KindFleet = "fleet"
	// KindSurrogate records one surrogate build: its metadata, the build
	// spec while rebuildable, and the serialized model once ready.
	KindSurrogate = "surrogate"
	// KindShard records one posted shard result payload, keyed
	// "<fleet-id>/<shard>"; deleted after the job's merge completes.
	KindShard = "shard"
)

// ShardID keys a shard-result record.
func ShardID(jobID string, shard int) string {
	return fmt.Sprintf("%s/%d", jobID, shard)
}

// ParseShardID splits a shard-result record key.
func ParseShardID(id string) (jobID string, shard int, ok bool) {
	i := strings.LastIndexByte(id, '/')
	if i < 0 {
		return "", 0, false
	}
	n, err := strconv.Atoi(id[i+1:])
	if err != nil || n < 0 {
		return "", 0, false
	}
	return id[:i], n, true
}

// Counters are the ID-sequence high-water marks of the control plane.
// Writers pass the counters they own (zeroes elsewhere); the store keeps
// the elementwise maximum, so the server and the fleet coordinator can
// share one store without coordinating counter writes.
type Counters struct {
	Job   int `json:"job,omitempty"`
	Fleet int `json:"fleet,omitempty"`
	Lease int `json:"lease,omitempty"`
}

// Max returns the elementwise maximum of two counter sets.
func (c Counters) Max(o Counters) Counters {
	return Counters{
		Job:   max(c.Job, o.Job),
		Fleet: max(c.Fleet, o.Fleet),
		Lease: max(c.Lease, o.Lease),
	}
}

// State is the recovered content of a store: current payload per live
// (kind, id) record plus the counter high-water marks.
type State struct {
	Counters Counters
	// Kinds maps kind → id → latest payload.
	Kinds map[string]map[string][]byte
}

// NewState returns an empty state.
func NewState() *State {
	return &State{Kinds: make(map[string]map[string][]byte)}
}

// Get returns the payload of one record.
func (s *State) Get(kind, id string) ([]byte, bool) {
	b, ok := s.Kinds[kind][id]
	return b, ok
}

// put upserts one record (copying the payload).
func (s *State) put(kind, id string, data []byte) {
	m := s.Kinds[kind]
	if m == nil {
		m = make(map[string][]byte)
		s.Kinds[kind] = m
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	m[id] = cp
}

// del removes one record.
func (s *State) del(kind, id string) {
	if m := s.Kinds[kind]; m != nil {
		delete(m, id)
		if len(m) == 0 {
			delete(s.Kinds, kind)
		}
	}
}

// clone deep-copies the state.
func (s *State) clone() *State {
	out := NewState()
	out.Counters = s.Counters
	for kind, m := range s.Kinds {
		for id, data := range m {
			out.put(kind, id, data)
		}
	}
	return out
}

// Store persists control-plane records. Implementations are safe for
// concurrent use. Put and Delete must be durable when they return (for
// persistent stores); c carries the writer's current counter values and
// is folded into the store's high-water marks.
type Store interface {
	// Put upserts one record.
	Put(kind, id string, data []byte, c Counters) error
	// Delete removes one record (deleting a missing record is not an error).
	Delete(kind, id string, c Counters) error
	// State returns a copy of the current store content. For a FileStore
	// this is the replayed state right after Open — the recovery input.
	State() *State
	// Close releases resources; the store must not be used afterwards.
	Close() error
}

// Mem is the non-durable Store: state is mirrored in memory (so State
// works symmetrically in tests) but nothing survives Close or a process
// death. It is the default store of a server started without -data.
type Mem struct {
	mu    sync.Mutex
	state *State
}

// NewMem returns an empty in-memory store.
func NewMem() *Mem {
	return &Mem{state: NewState()}
}

// Put implements Store.
func (m *Mem) Put(kind, id string, data []byte, c Counters) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.state.put(kind, id, data)
	m.state.Counters = m.state.Counters.Max(c)
	return nil
}

// Delete implements Store.
func (m *Mem) Delete(kind, id string, c Counters) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.state.del(kind, id)
	m.state.Counters = m.state.Counters.Max(c)
	return nil
}

// State implements Store.
func (m *Mem) State() *State {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.state.clone()
}

// Close implements Store.
func (m *Mem) Close() error { return nil }
