//go:build unix

package jobstore

import (
	"fmt"
	"os"
	"path/filepath"
	"syscall"
)

// lockDir takes an exclusive advisory flock on dir/lock, refusing to open
// a store another live process owns — two writers on one WAL would corrupt
// it silently. The lock dies with the process (kill -9 included), so crash
// recovery never meets a stale lock; the file itself is left in place.
func lockDir(dir string) (*os.File, error) {
	f, err := os.OpenFile(filepath.Join(dir, "lock"), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("jobstore: %w", err)
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		f.Close()
		return nil, fmt.Errorf("jobstore: data directory %s is owned by another process: %w", dir, err)
	}
	return f, nil
}
