package jobstore

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"
)

func openT(t *testing.T, dir string, opt Options) *FileStore {
	t.Helper()
	s, err := Open(dir, opt)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	t.Cleanup(func() { _ = s.Close() })
	return s
}

// stateEqual compares two states including counters.
func stateEqual(a, b *State) bool {
	return a.Counters == b.Counters && reflect.DeepEqual(a.Kinds, b.Kinds)
}

func TestShardID(t *testing.T) {
	id := ShardID("fleet-000001", 3)
	if id != "fleet-000001/3" {
		t.Fatalf("ShardID = %q", id)
	}
	job, shard, ok := ParseShardID(id)
	if !ok || job != "fleet-000001" || shard != 3 {
		t.Fatalf("ParseShardID = %q %d %v", job, shard, ok)
	}
	for _, bad := range []string{"", "noslash", "x/-1", "x/abc"} {
		if _, _, ok := ParseShardID(bad); ok {
			t.Errorf("ParseShardID(%q) accepted", bad)
		}
	}
}

func TestMemStore(t *testing.T) {
	m := NewMem()
	if err := m.Put(KindJob, "job-1", []byte(`{"a":1}`), Counters{Job: 1}); err != nil {
		t.Fatal(err)
	}
	if err := m.Put(KindJob, "job-2", []byte(`{"a":2}`), Counters{Job: 2}); err != nil {
		t.Fatal(err)
	}
	if err := m.Delete(KindJob, "job-1", Counters{}); err != nil {
		t.Fatal(err)
	}
	st := m.State()
	if _, ok := st.Get(KindJob, "job-1"); ok {
		t.Error("deleted record still present")
	}
	if b, ok := st.Get(KindJob, "job-2"); !ok || string(b) != `{"a":2}` {
		t.Errorf("job-2 = %q %v", b, ok)
	}
	if st.Counters != (Counters{Job: 2}) {
		t.Errorf("counters = %+v", st.Counters)
	}
}

func TestFileStoreRoundtrip(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, Options{})
	writes := map[string]string{
		"job-000001":   `{"id":"job-000001","status":"done"}`,
		"job-000002":   `{"id":"job-000002","status":"running"}`,
		"fleet-000001": `{"id":"fleet-000001"}`,
	}
	if err := s.Put(KindJob, "job-000001", []byte(writes["job-000001"]), Counters{Job: 1}); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(KindJob, "job-000002", []byte(writes["job-000002"]), Counters{Job: 2}); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(KindFleet, "fleet-000001", []byte(writes["fleet-000001"]), Counters{Fleet: 1, Lease: 4}); err != nil {
		t.Fatal(err)
	}
	// Overwrite then delete exercise replay ordering.
	if err := s.Put(KindJob, "job-000001", []byte(`{"id":"job-000001","status":"failed"}`), Counters{}); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete(KindJob, "job-000002", Counters{}); err != nil {
		t.Fatal(err)
	}
	want := s.State()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	re := openT(t, dir, Options{})
	got := re.State()
	if !stateEqual(want, got) {
		t.Fatalf("replayed state differs:\n want %+v\n got  %+v", want, got)
	}
	if got.Counters != (Counters{Job: 2, Fleet: 1, Lease: 4}) {
		t.Errorf("counters = %+v", got.Counters)
	}
	if b, _ := got.Get(KindJob, "job-000001"); string(b) != `{"id":"job-000001","status":"failed"}` {
		t.Errorf("overwrite lost: %s", b)
	}
}

func TestFileStoreRejectsEmptyKeys(t *testing.T) {
	s := openT(t, t.TempDir(), Options{NoSync: true})
	if err := s.Put("", "id", nil, Counters{}); err == nil {
		t.Error("Put with empty kind accepted")
	}
	if err := s.Delete(KindJob, "", Counters{}); err == nil {
		t.Error("Delete with empty id accepted")
	}
}

// fillStore writes n records and returns the expected final state.
func fillStore(t *testing.T, s *FileStore, n int) *State {
	t.Helper()
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("job-%06d", i+1)
		data := fmt.Sprintf(`{"id":%q,"n":%d}`, id, i)
		if err := s.Put(KindJob, id, []byte(data), Counters{Job: i + 1}); err != nil {
			t.Fatal(err)
		}
	}
	return s.State()
}

// TestTornTailEveryOffset truncates the WAL at every byte length and
// verifies recovery always lands on a valid record-boundary prefix.
func TestTornTailEveryOffset(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, Options{})
	const n = 5
	fillStore(t, s, n)
	walPath := s.walPath(s.gen)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	full, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}

	// Record the valid boundary offsets frame by frame.
	boundaries := []int64{0}
	off := int64(0)
	r := bytes.NewReader(full)
	for {
		payload, err := readFrame(r)
		if err != nil {
			break
		}
		off += int64(frameHeaderSize + len(payload))
		boundaries = append(boundaries, off)
	}
	if len(boundaries) != n+1 {
		t.Fatalf("expected %d boundaries, got %d", n+1, len(boundaries))
	}

	isBoundary := func(x int64) bool {
		for _, b := range boundaries {
			if b == x {
				return true
			}
		}
		return false
	}

	for cut := 0; cut <= len(full); cut++ {
		sub := t.TempDir()
		if err := os.WriteFile(filepath.Join(sub, filepath.Base(walPath)), full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		rs, err := Open(sub, Options{NoSync: true})
		if err != nil {
			t.Fatalf("cut=%d: Open: %v", cut, err)
		}
		st := rs.State()
		// Number of recovered records must match the boundary prefix.
		wantRecords := 0
		for _, b := range boundaries[1:] {
			if b <= int64(cut) {
				wantRecords++
			}
		}
		if got := len(st.Kinds[KindJob]); got != wantRecords {
			t.Fatalf("cut=%d: recovered %d records, want %d", cut, got, wantRecords)
		}
		if st.Counters.Job != wantRecords {
			t.Fatalf("cut=%d: counter %d, want %d", cut, st.Counters.Job, wantRecords)
		}
		// The torn tail must have been truncated on disk...
		fi, err := os.Stat(filepath.Join(sub, filepath.Base(walPath)))
		if err != nil {
			t.Fatal(err)
		}
		if !isBoundary(fi.Size()) {
			t.Fatalf("cut=%d: truncated to %d, not a record boundary", cut, fi.Size())
		}
		// ...and appending must work afterwards.
		if err := rs.Put(KindJob, "job-999999", []byte(`{}`), Counters{}); err != nil {
			t.Fatalf("cut=%d: append after truncate: %v", cut, err)
		}
		rs.Close()
		rs2, err := Open(sub, Options{NoSync: true})
		if err != nil {
			t.Fatalf("cut=%d: reopen: %v", cut, err)
		}
		if _, ok := rs2.State().Get(KindJob, "job-999999"); !ok {
			t.Fatalf("cut=%d: post-truncate append lost", cut)
		}
		rs2.Close()
	}
}

// TestCorruptMiddleByte flips one byte inside the first record's payload:
// replay must stop before it (the CRC catches it) and keep nothing after.
func TestCorruptMiddleByte(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, Options{})
	fillStore(t, s, 3)
	walPath := s.walPath(s.gen)
	s.Close()

	data, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	data[frameHeaderSize+2] ^= 0xFF // inside record 1's payload
	if err := os.WriteFile(walPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	rs := openT(t, dir, Options{NoSync: true})
	st := rs.State()
	if len(st.Kinds) != 0 {
		t.Fatalf("recovered %d kinds after leading corruption, want 0", len(st.Kinds))
	}
	if rs.Stats().TruncatedBytes != int64(len(data)) {
		t.Errorf("truncated %d bytes, want %d", rs.Stats().TruncatedBytes, len(data))
	}
}

func TestCompactionPreservesState(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, Options{})
	fillStore(t, s, 10)
	if err := s.Delete(KindJob, "job-000003", Counters{}); err != nil {
		t.Fatal(err)
	}
	want := s.State()
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	if got := s.State(); !stateEqual(want, got) {
		t.Fatal("state changed across Compact")
	}
	stats := s.Stats()
	if stats.Compactions != 1 || stats.Gen != 2 || stats.WALRecords != 0 {
		t.Fatalf("stats after compact: %+v", stats)
	}
	// Old generation files must be gone.
	if _, err := os.Stat(s.walPath(1)); !os.IsNotExist(err) {
		t.Error("old WAL survived compaction")
	}
	// Post-compaction appends + reopen.
	if err := s.Put(KindJob, "job-000011", []byte(`{}`), Counters{Job: 11}); err != nil {
		t.Fatal(err)
	}
	want = s.State()
	s.Close()
	re := openT(t, dir, Options{})
	if got := re.State(); !stateEqual(want, got) {
		t.Fatal("state differs after reopen over snapshot+WAL")
	}
}

func TestAutoCompaction(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, Options{NoSync: true, CompactRecords: 8, CompactBytes: -1})
	fillStore(t, s, 30)
	want := s.State()
	if s.Stats().Compactions == 0 {
		t.Fatal("no automatic compaction after 30 records with threshold 8")
	}
	s.Close()
	re := openT(t, dir, Options{})
	if got := re.State(); !stateEqual(want, got) {
		t.Fatal("state differs after auto-compaction + reopen")
	}
}

// TestCrashMidCompaction exercises the interrupted-compaction layouts the
// handover can leave on disk; each must recover the pre-compaction state.
func TestCrashMidCompaction(t *testing.T) {
	build := func(t *testing.T) (dir string, want *State) {
		dir = t.TempDir()
		s := openT(t, dir, Options{})
		fillStore(t, s, 4)
		want = s.State()
		s.Close()
		return dir, want
	}
	snapshotBytes := func(t *testing.T, st *State) []byte {
		payload, err := encodeSnapshot(st)
		if err != nil {
			t.Fatal(err)
		}
		return appendFrame(nil, payload)
	}

	t.Run("tmp_snapshot_left", func(t *testing.T) {
		// Crash after step 1: snapshot-2.tmp exists, rename never happened.
		dir, want := build(t)
		if err := os.WriteFile(filepath.Join(dir, "snapshot-00000002.tmp"), snapshotBytes(t, want), 0o644); err != nil {
			t.Fatal(err)
		}
		s := openT(t, dir, Options{NoSync: true})
		if !stateEqual(want, s.State()) {
			t.Fatal("state differs with stray .tmp present")
		}
		if _, err := os.Stat(filepath.Join(dir, "snapshot-00000002.tmp")); !os.IsNotExist(err) {
			t.Error(".tmp not cleaned up")
		}
	})

	t.Run("new_wal_no_snapshot", func(t *testing.T) {
		// Crash after step 2: empty wal-2 exists but snapshot-2 does not.
		// Generation 1's WAL is still the truth.
		dir, want := build(t)
		if err := os.WriteFile(filepath.Join(dir, "wal-00000002"), nil, 0o644); err != nil {
			t.Fatal(err)
		}
		s := openT(t, dir, Options{NoSync: true})
		if !stateEqual(want, s.State()) {
			t.Fatal("state differs with orphan new-generation WAL")
		}
		if s.Stats().Gen != 1 {
			t.Errorf("gen = %d, want 1", s.Stats().Gen)
		}
		if _, err := os.Stat(filepath.Join(dir, "wal-00000002")); !os.IsNotExist(err) {
			t.Error("orphan WAL not cleaned up")
		}
	})

	t.Run("snapshot_committed_old_gen_left", func(t *testing.T) {
		// Crash after step 3: snapshot-2 and wal-2 committed, generation 1
		// not yet deleted. Recovery must prefer generation 2.
		dir, want := build(t)
		if err := os.WriteFile(filepath.Join(dir, "snapshot-00000002"), snapshotBytes(t, want), 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, "wal-00000002"), nil, 0o644); err != nil {
			t.Fatal(err)
		}
		s := openT(t, dir, Options{NoSync: true})
		if !stateEqual(want, s.State()) {
			t.Fatal("state differs after committed snapshot")
		}
		if s.Stats().Gen != 2 {
			t.Errorf("gen = %d, want 2", s.Stats().Gen)
		}
		if _, err := os.Stat(filepath.Join(dir, "wal-00000001")); !os.IsNotExist(err) {
			t.Error("old generation not cleaned up")
		}
	})

	t.Run("corrupt_snapshot_falls_back", func(t *testing.T) {
		// A corrupt snapshot-2 (torn write) plus intact generation 1 must
		// fall back to generation 1.
		dir, want := build(t)
		good := snapshotBytes(t, want)
		if err := os.WriteFile(filepath.Join(dir, "snapshot-00000002"), good[:len(good)/2], 0o644); err != nil {
			t.Fatal(err)
		}
		s := openT(t, dir, Options{NoSync: true})
		if !stateEqual(want, s.State()) {
			t.Fatal("state differs after corrupt-snapshot fallback")
		}
		if s.Stats().Gen != 1 {
			t.Errorf("gen = %d, want 1", s.Stats().Gen)
		}
	})
}

func TestFsyncHook(t *testing.T) {
	var calls int
	var total time.Duration
	s := openT(t, t.TempDir(), Options{OnFsync: func(d time.Duration) {
		calls++
		total += d
	}})
	for i := 0; i < 3; i++ {
		if err := s.Put(KindJob, fmt.Sprintf("j%d", i), []byte(`{}`), Counters{}); err != nil {
			t.Fatal(err)
		}
	}
	if calls != 3 {
		t.Fatalf("OnFsync called %d times, want 3", calls)
	}
	if total < 0 {
		t.Fatal("negative fsync latency")
	}
}

func TestClosedStoreRefusesWrites(t *testing.T) {
	s := openT(t, t.TempDir(), Options{NoSync: true})
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(KindJob, "x", nil, Counters{}); err == nil {
		t.Error("Put after Close accepted")
	}
	if err := s.Close(); err != nil {
		t.Errorf("double Close: %v", err)
	}
}
