package jobstore

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"slices"
)

// Every WAL record and every snapshot body is one frame on disk:
//
//	[4B little-endian payload length][4B IEEE CRC32 of payload][payload]
//
// The checksum is what makes kill -9 recoverable: the record a crash
// interrupts is left torn on disk, its CRC cannot match, and replay stops
// exactly at the last record that was fully written and fsync'd. A frame
// claiming more than maxFrameBytes is treated as torn too, so a corrupted
// length field cannot make replay allocate unbounded memory.

// maxFrameBytes bounds one frame's payload (shard results carry
// O(blocks × outputs) accumulator state, far below this).
const maxFrameBytes = 64 << 20

// frameHeaderSize is the fixed prefix of every frame.
const frameHeaderSize = 8

// errTornFrame marks a frame that ends mid-write or fails its checksum —
// the expected state of a WAL tail after a crash, not an I/O error.
var errTornFrame = errors.New("jobstore: torn or corrupt frame")

// appendFrame encodes one frame into buf (reused across calls).
func appendFrame(buf []byte, payload []byte) []byte {
	var hdr [frameHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	buf = append(buf, hdr[:]...)
	return append(buf, payload...)
}

// readFrame reads one frame from r. It returns io.EOF at a clean end,
// errTornFrame when the stream ends mid-frame or the checksum fails.
func readFrame(r io.Reader) ([]byte, error) {
	var hdr [frameHeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, errTornFrame // ErrUnexpectedEOF or worse: a torn header
	}
	n := binary.LittleEndian.Uint32(hdr[0:4])
	if n > maxFrameBytes {
		return nil, errTornFrame
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, errTornFrame
	}
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(hdr[4:8]) {
		return nil, errTornFrame
	}
	return payload, nil
}

// WAL record operations.
const (
	opPut    = "put"
	opDelete = "del"
)

// walRecord is the JSON payload of one WAL frame.
type walRecord struct {
	Op   string          `json:"op"`
	Kind string          `json:"kind"`
	ID   string          `json:"id"`
	C    Counters        `json:"c,omitzero"`
	Data json.RawMessage `json:"data,omitempty"`
}

// validate rejects records that could not have been written by this
// package (fuzzed or hand-edited logs).
func (r *walRecord) validate() error {
	if r.Op != opPut && r.Op != opDelete {
		return fmt.Errorf("jobstore: unknown WAL op %q", r.Op)
	}
	if r.Kind == "" || r.ID == "" {
		return fmt.Errorf("jobstore: WAL record without kind/id")
	}
	if r.Op == opPut && len(r.Data) == 0 {
		return fmt.Errorf("jobstore: put record without data")
	}
	return nil
}

// snapshotRecord is one live record inside a snapshot payload.
type snapshotRecord struct {
	Kind string          `json:"kind"`
	ID   string          `json:"id"`
	Data json.RawMessage `json:"data"`
}

// snapshotPayload is the JSON payload of a snapshot frame: the full store
// content at compaction time.
type snapshotPayload struct {
	Counters Counters         `json:"counters,omitzero"`
	Records  []snapshotRecord `json:"records"`
}

// decodeSnapshot parses a snapshot frame payload into a State.
func decodeSnapshot(payload []byte) (*State, error) {
	var snap snapshotPayload
	if err := json.Unmarshal(payload, &snap); err != nil {
		return nil, fmt.Errorf("jobstore: snapshot does not parse: %w", err)
	}
	st := NewState()
	st.Counters = snap.Counters
	for _, rec := range snap.Records {
		if rec.Kind == "" || rec.ID == "" || len(rec.Data) == 0 {
			return nil, fmt.Errorf("jobstore: snapshot record without kind/id/data")
		}
		st.put(rec.Kind, rec.ID, rec.Data)
	}
	return st, nil
}

// encodeSnapshot renders the state as a snapshot frame payload. Records
// are emitted in sorted (kind, id) order so identical states produce
// identical snapshots.
func encodeSnapshot(st *State) ([]byte, error) {
	snap := snapshotPayload{Counters: st.Counters, Records: []snapshotRecord{}}
	for _, kind := range sortedKeys(st.Kinds) {
		m := st.Kinds[kind]
		for _, id := range sortedKeys(m) {
			snap.Records = append(snap.Records, snapshotRecord{Kind: kind, ID: id, Data: m[id]})
		}
	}
	return json.Marshal(&snap)
}

// sortedKeys returns the sorted keys of a map.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	return keys
}

// replayWAL applies the records of one WAL stream to st. It returns the
// byte offset of the first torn/corrupt frame (== the stream length when
// the log is clean) so the caller can truncate the tail, plus the number
// of applied records. Corruption after a valid prefix is expected after a
// crash and is not an error; a record that parses but fails validation
// stops replay the same way (the bytes cannot be trusted beyond it).
func replayWAL(r io.Reader, st *State) (validOffset int64, applied int, err error) {
	for {
		payload, ferr := readFrame(r)
		if ferr == io.EOF {
			return validOffset, applied, nil
		}
		if ferr != nil {
			if errors.Is(ferr, errTornFrame) {
				return validOffset, applied, nil
			}
			return validOffset, applied, ferr
		}
		var rec walRecord
		if jerr := json.Unmarshal(payload, &rec); jerr != nil {
			return validOffset, applied, nil
		}
		if rec.validate() != nil {
			return validOffset, applied, nil
		}
		switch rec.Op {
		case opPut:
			st.put(rec.Kind, rec.ID, rec.Data)
		case opDelete:
			st.del(rec.Kind, rec.ID)
		}
		st.Counters = st.Counters.Max(rec.C)
		validOffset += int64(frameHeaderSize + len(payload))
		applied++
	}
}
