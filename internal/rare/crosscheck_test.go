package rare

import (
	"context"
	"math"
	"testing"

	"etherm/internal/surrogate"
	"etherm/internal/uq"
)

// TestSubsetVsSurrogateCrossCheck corroborates the two independent
// P(T_max ≥ T_crit) paths the system now ships — the PR 9 sparse-grid/PCE
// surrogate and the new subset-simulation estimator — on the nominal
// analytic fin geometry under the paper's elongation law. Both also get
// checked against the closed form, so a regression in either path cannot
// hide behind agreement with the other.
func TestSubsetVsSurrogateCrossCheck(t *testing.T) {
	// Plant P ≈ 2e-3: resolvable by the surrogate's sample set and a
	// three-level subset run.
	const want = 2e-3
	deltaStar := lawMu + lawSigma*uq.Normal{Mu: 0, Sigma: 1}.Quantile(1-want)
	tcrit := finTemp(deltaStar)

	dists := []uq.Dist{uq.Normal{Mu: 0, Sigma: 1}}
	m, err := surrogate.Build(context.Background(), uq.SingleFactory(finUQModel{}), dists, surrogate.Config{
		ID: "sg-crosscheck", GeometryKey: "geom-crosscheck", Scenario: "fin",
		Level: 3, NWires: 1, Times: []float64{10},
		Mu: lawMu, Sigma: lawSigma, Rho: 1, TCritK: tcrit,
		Samples: 16384,
	})
	if err != nil {
		t.Fatal(err)
	}
	pfSurrogate := m.FailProb(tcrit)

	res, err := RunSubset(context.Background(), MaxOutputFactory(uq.SingleFactory(finUQModel{}), dists), SubsetConfig{
		Threshold: tcrit,
		Dim:       1,
		N:         2000,
		Seed:      1609, // the companion paper's arXiv year-month
		Workers:   4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("subset run did not converge in %d levels", len(res.Levels))
	}

	check := func(name string, got float64) {
		if got < want/1.5 || got > want*1.5 {
			t.Errorf("%s P(T ≥ %.2f K) = %.3g, closed form %.3g (outside factor 1.5)", name, tcrit, got, want)
		}
	}
	check("surrogate", pfSurrogate)
	check("subset", res.PF)
	if ratio := res.PF / pfSurrogate; math.Abs(math.Log(ratio)) > math.Log(1.5) {
		t.Errorf("paths disagree: subset %.3g vs surrogate %.3g (ratio %.2f)", res.PF, pfSurrogate, ratio)
	}
	t.Logf("P(T ≥ %.2f K): closed form %.3g, surrogate %.3g, subset %.3g (CoV %.2f, %d evals)",
		tcrit, want, pfSurrogate, res.PF, res.CoV, res.Evals)
}
