package rare

import (
	"context"
	"encoding/json"
	"errors"
	"math"
	"sync/atomic"
	"testing"
	"time"

	"etherm/internal/stats"
	"etherm/internal/uq"
)

// linearLimit is the classic benchmark limit state g(z) = a·z/‖a‖ with the
// exact tail P(g ≥ β) = Φ(−β) — the oracle for planted-probability tests.
func linearLimit(a []float64) LimitStateFactory {
	norm := 0.0
	for _, v := range a {
		norm += v * v
	}
	norm = math.Sqrt(norm)
	return func() (LimitState, error) {
		return func(z []float64) (float64, error) {
			s := 0.0
			for j := range z {
				s += a[j] * z[j]
			}
			return s / norm, nil
		}, nil
	}
}

// stdNormalTail returns Φ(−β).
func stdNormalTail(beta float64) float64 {
	return uq.Normal{Mu: 0, Sigma: 1}.CDF(-beta)
}

// betaFor returns the threshold with planted tail probability p.
func betaFor(p float64) float64 {
	return -uq.Normal{Mu: 0, Sigma: 1}.Quantile(p)
}

// TestSubsetPlantedProbability is the acceptance gate of the subsystem: on
// an analytic limit state with a planted P(fail) = 1e-6, subset simulation
// must land within a factor of 2 using ≤ 1e5 evaluations — where plain MC
// at the same CoV needs ~1e8.
func TestSubsetPlantedProbability(t *testing.T) {
	const want = 1e-6
	beta := betaFor(want)
	cfg := SubsetConfig{
		Threshold: beta,
		Dim:       6,
		N:         2000,
		Seed:      2016,
		Workers:   4,
	}
	res, err := RunSubset(context.Background(), linearLimit([]float64{1, 1, 1, 1, 1, 1}), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("did not reach the target threshold in %d levels", len(res.Levels))
	}
	if res.Evals > 1e5 {
		t.Fatalf("used %d evaluations, budget is 1e5", res.Evals)
	}
	if res.PF < want/2 || res.PF > want*2 {
		t.Fatalf("PF = %.3g, planted %.3g (outside factor 2); CoV %.2f, %d levels, %d evals",
			res.PF, want, res.CoV, len(res.Levels), res.Evals)
	}
	if res.CoV <= 0 || math.IsInf(res.CoV, 0) || math.IsNaN(res.CoV) {
		t.Fatalf("broken CoV diagnostic %v", res.CoV)
	}
	for i, lv := range res.Levels {
		if lv.Level != i {
			t.Fatalf("level %d reported as %d", i, lv.Level)
		}
		if lv.Exceed.N != cfg.N {
			t.Fatalf("level %d counter over %d samples, want %d", i, lv.Exceed.N, cfg.N)
		}
		if i > 0 && (lv.Accept <= 0 || lv.Accept > 1) {
			t.Fatalf("level %d acceptance %v outside (0,1]", i, lv.Accept)
		}
	}
	t.Logf("PF %.3g (planted %.3g), CoV %.2f, %d levels, %d evals", res.PF, want, res.CoV, len(res.Levels), res.Evals)
}

// TestSubsetBitIdentity: the same configuration must produce byte-identical
// results across reruns and across any Workers/Shards execution layout —
// the property that makes fleet splits and checkpoint resumes trustworthy.
func TestSubsetBitIdentity(t *testing.T) {
	base := SubsetConfig{
		Threshold: betaFor(1e-4),
		Dim:       4,
		N:         500,
		Seed:      99,
	}
	lsf := linearLimit([]float64{3, 1, 2, 0.5})
	var ref []byte
	for _, variant := range []struct {
		name            string
		workers, shards int
	}{
		{"serial", 1, 1},
		{"rerun", 1, 1},
		{"workers4", 4, 1},
		{"shards4", 1, 4},
		{"workers2shards4", 2, 4},
	} {
		cfg := base
		cfg.Workers = variant.workers
		cfg.Shards = variant.shards
		res, err := RunSubset(context.Background(), lsf, cfg)
		if err != nil {
			t.Fatalf("%s: %v", variant.name, err)
		}
		got, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = got
			continue
		}
		if string(got) != string(ref) {
			t.Fatalf("%s diverged from serial run:\n%s\nvs\n%s", variant.name, got, ref)
		}
	}
}

// TestSubsetLevelTelemetry: the OnLevel hook sees every level, in order,
// with thresholds monotonically increasing toward the target.
func TestSubsetLevelTelemetry(t *testing.T) {
	var seen []SubsetLevel
	cfg := SubsetConfig{
		Threshold: betaFor(1e-5),
		Dim:       3,
		N:         1000,
		Seed:      7,
		Workers:   2,
		OnLevel:   func(lv SubsetLevel) { seen = append(seen, lv) },
	}
	res, err := RunSubset(context.Background(), linearLimit([]float64{1, 2, 3}), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != len(res.Levels) {
		t.Fatalf("hook saw %d levels, result has %d", len(seen), len(res.Levels))
	}
	for i := 1; i < len(seen); i++ {
		if seen[i].Threshold <= seen[i-1].Threshold {
			t.Fatalf("thresholds not increasing: level %d %.4f after %.4f", i, seen[i].Threshold, seen[i-1].Threshold)
		}
	}
	last := seen[len(seen)-1]
	if last.Threshold != cfg.Threshold {
		t.Fatalf("final level threshold %.4f, want target %.4f", last.Threshold, cfg.Threshold)
	}
}

// TestSubsetConfigValidation: bad configurations are returned errors, not
// mid-run surprises.
func TestSubsetConfigValidation(t *testing.T) {
	lsf := linearLimit([]float64{1})
	for name, cfg := range map[string]SubsetConfig{
		"zero dim":      {Threshold: 1, N: 100},
		"bad p0":        {Threshold: 1, Dim: 1, N: 100, P0: 0.7},
		"indivisible N": {Threshold: 1, Dim: 1, N: 101},
		"tiny N":        {Threshold: 1, Dim: 1, N: 10, P0: 0.1},
		"negative step": {Threshold: 1, Dim: 1, N: 100, Step: -1},
	} {
		if _, err := RunSubset(context.Background(), lsf, cfg); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// TestImportanceSampling: with the shift placed at the planted design
// point, mean-shift IS recovers a 1e-5 tail probability tightly.
func TestImportanceSampling(t *testing.T) {
	const want = 1e-5
	beta := betaFor(want)
	a := []float64{2, 1, 1}
	norm := math.Sqrt(6.0)
	shift := make([]float64, len(a))
	for j := range a {
		shift[j] = beta * a[j] / norm
	}
	res, err := RunImportance(context.Background(), linearLimit(a), ISConfig{
		Threshold: beta,
		Shift:     shift,
		N:         4000,
		Seed:      11,
		Workers:   4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.PF-want) > 3*res.SE {
		t.Fatalf("PF %.3g outside 3·SE (%.3g) of planted %.3g", res.PF, res.SE, want)
	}
	if res.PF < want/1.5 || res.PF > want*1.5 {
		t.Fatalf("PF %.3g, planted %.3g (outside factor 1.5)", res.PF, want)
	}
	if res.ESS < float64(res.N)/20 {
		t.Fatalf("effective sample size %.0f of %d suspiciously low for an on-target shift", res.ESS, res.N)
	}
	// Bit-identity across worker counts.
	again, err := RunImportance(context.Background(), linearLimit(a), ISConfig{
		Threshold: beta, Shift: shift, N: 4000, Seed: 11, Workers: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(again.PF) != math.Float64bits(res.PF) || math.Float64bits(again.SE) != math.Float64bits(res.SE) {
		t.Fatalf("workers change the IS estimate: %v vs %v", again, res)
	}
}

// TestRQMCSampler: replicate routing, stream purity and the shape of the
// interleaved stream.
func TestRQMCSampler(t *testing.T) {
	q, err := NewRQMC(3, 8, 77)
	if err != nil {
		t.Fatal(err)
	}
	if q.Name() != "rqmc-sobol" || q.Dim() != 3 || q.Replicates() != 8 {
		t.Fatalf("unexpected identity: %s dim %d reps %d", q.Name(), q.Dim(), q.Replicates())
	}
	// Any prefix is replicate-balanced to within one point.
	counts := make([]int, 8)
	for i := 0; i < 1000; i++ {
		counts[q.Replicate(i)]++
	}
	for r, c := range counts {
		if c < 1000/8 || c > 1000/8+1 {
			t.Fatalf("replicate %d holds %d of 1000 points", r, c)
		}
	}
	// Global index i is point i/R of replicate i%R, against an
	// independently built twin.
	twin, _ := NewRQMC(3, 8, 77)
	u, v := make([]float64, 3), make([]float64, 3)
	for i := 0; i < 64; i++ {
		q.Sample(i, u)
		twin.reps[i%8].Sample(i/8, v)
		for j := range u {
			if u[j] != v[j] {
				t.Fatalf("index %d routes wrong replicate", i)
			}
		}
	}
	if _, err := NewRQMC(3, 1, 1); err == nil {
		t.Fatal("accepted single-replicate RQMC (no error bar possible)")
	}
}

// TestRQMCEstimate: per-replicate counters pool into an estimate whose CLT
// error bar covers a known probability, and degenerate inputs error.
func TestRQMCEstimate(t *testing.T) {
	const (
		r    = 8
		n    = 4096 // per replicate
		p    = 0.05 // P(u0 < 0.05), known exactly
		dim  = 2
		seed = 31
	)
	q, err := NewRQMC(dim, r, seed)
	if err != nil {
		t.Fatal(err)
	}
	counters := make([]stats.ExceedCounter, r)
	u := make([]float64, dim)
	for i := 0; i < r*n; i++ {
		q.Sample(i, u)
		counters[q.Replicate(i)].Observe(u[0] < p)
	}
	est, err := EstimateReplicates(counters)
	if err != nil {
		t.Fatal(err)
	}
	if est.N != r*n {
		t.Fatalf("pooled N %d, want %d", est.N, r*n)
	}
	if math.Abs(est.P-p) > 5*est.SE+1e-9 {
		t.Fatalf("estimate %.5f ± %.5f misses exact %.5f", est.P, est.SE, p)
	}
	if est.SE <= 0 || est.SE > 0.01 {
		t.Fatalf("unreasonable RQMC standard error %.5g", est.SE)
	}
	if est.CoV() <= 0 {
		t.Fatalf("broken CoV %v", est.CoV())
	}
	if _, err := EstimateReplicates(counters[:1]); err == nil {
		t.Fatal("accepted single counter")
	}
	if _, err := EstimateReplicates(make([]stats.ExceedCounter, 3)); err == nil {
		t.Fatal("accepted empty replicates")
	}
}

// TestMaxOutputFactory: the campaign-seam adapter maps the germ through
// the distribution quantiles and takes the output maximum.
func TestMaxOutputFactory(t *testing.T) {
	lsf := MaxOutputFactory(uq.SingleFactory(finUQModel{}), []uq.Dist{uq.Normal{Mu: 0, Sigma: 1}})
	ls, err := lsf()
	if err != nil {
		t.Fatal(err)
	}
	for _, z := range []float64{-2, 0, 1.5} {
		got, err := ls([]float64{z})
		if err != nil {
			t.Fatal(err)
		}
		want := finTemp(clampDelta(lawMu + lawSigma*roundTrip(z)))
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("z=%g: g=%.6f, want %.6f", z, got, want)
		}
	}
}

// roundTrip mirrors the z→Φ(z)→quantile mapping of the adapter.
func roundTrip(z float64) float64 {
	std := uq.Normal{Mu: 0, Sigma: 1}
	return std.Quantile(clamp01(std.CDF(z)))
}

func clampDelta(d float64) float64 {
	if d < 0 {
		return 0
	}
	if d > 0.9 {
		return 0.9
	}
	return d
}

// finUQModel exposes the analytic fin through the uq.Model interface.
type finUQModel struct{}

func (finUQModel) Dim() int        { return 1 }
func (finUQModel) NumOutputs() int { return 1 }
func (finUQModel) Eval(p, out []float64) error {
	out[0] = finTemp(clampDelta(lawMu + lawSigma*p[0]))
	return nil
}

// TestWorkerErrorDoesNotDeadlock pins the fix for a feeder deadlock: a
// worker that hits an eval or factory error used to exit without draining
// the unbuffered work channel, hanging RunSubset/RunImportance forever
// with Workers=1 (or whenever all workers errored). Each case must return
// the error promptly instead of wedging the calling goroutine.
func TestWorkerErrorDoesNotDeadlock(t *testing.T) {
	erroringEval := func() (LimitState, error) {
		return func(z []float64) (float64, error) {
			return 0, errors.New("boom")
		}, nil
	}
	erroringFactory := func() (LimitState, error) {
		return nil, errors.New("factory boom")
	}
	// Errors only once chains start (level ≥ 1), exercising runChains. The
	// counter is shared across factory instances so level 0's 2000 iid
	// evaluations pass and a later chain evaluation trips the error.
	var lateCount atomic.Int64
	lateEval := func() (LimitState, error) {
		return func(z []float64) (float64, error) {
			if lateCount.Add(1) > 2100 {
				return 0, errors.New("late boom")
			}
			s := 0.0
			for _, v := range z {
				s += v
			}
			return s, nil
		}, nil
	}
	cases := []struct {
		name string
		run  func() error
	}{
		{"subset eval error", func() error {
			_, err := RunSubset(context.Background(), erroringEval, SubsetConfig{Threshold: 10, Dim: 2, N: 2000, Seed: 1, Workers: 1})
			return err
		}},
		{"subset factory error", func() error {
			_, err := RunSubset(context.Background(), erroringFactory, SubsetConfig{Threshold: 10, Dim: 2, N: 2000, Seed: 1, Workers: 2})
			return err
		}},
		{"subset chain-level error", func() error {
			_, err := RunSubset(context.Background(), lateEval, SubsetConfig{Threshold: 100, Dim: 2, N: 2000, Seed: 1, Workers: 1})
			return err
		}},
		{"importance eval error", func() error {
			_, err := RunImportance(context.Background(), erroringEval, ISConfig{Threshold: 3, Shift: []float64{1, 1}, N: 1000, Seed: 1, Workers: 1})
			return err
		}},
		{"importance factory error", func() error {
			_, err := RunImportance(context.Background(), erroringFactory, ISConfig{Threshold: 3, Shift: []float64{1, 1}, N: 1000, Seed: 1, Workers: 2})
			return err
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			done := make(chan error, 1)
			go func() { done <- tc.run() }()
			select {
			case err := <-done:
				if err == nil {
					t.Fatal("expected an error, got nil")
				}
			case <-time.After(30 * time.Second):
				t.Fatal("run deadlocked on worker error")
			}
		})
	}
}
