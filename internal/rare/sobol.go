// Package rare estimates small failure probabilities — P(T_max ≥ T_crit)
// down to 1e-8 — orders of magnitude cheaper than plain Monte Carlo. It
// follows the companion paper "Determination of Bond Wire Failure
// Probabilities in Microelectronic Packages" (arXiv:1609.06187): bond-wire
// failure probabilities of industrial interest sit at 1e-6..1e-8, where
// direct MC needs ~1e8 FEM solves per answered probability.
//
// The package has two layers. Samplers (this file and rqmc.go) are
// drop-in uq.Sampler implementations — Owen-scrambled Sobol' and a
// randomized-QMC wrapper — so the existing streaming, checkpoint/resume
// and fleet-sharding machinery carries over unchanged through the
// sampler-fingerprint seam. Estimators (subset.go, importance.go) change
// the sampling *distribution* instead: subset simulation walks a chain of
// conditional levels toward the failure domain, importance sampling
// shifts the germ mean toward it. Both emit stats.ExceedCounter-backed
// estimates with CoV diagnostics.
package rare

import (
	"fmt"

	"etherm/internal/uq"
)

// mix64 is the splitmix64 finalizer — a cheap, high-quality 64-bit mixer
// used to derive all scramble and chain keys. Deterministic by
// construction: every random-looking decision in this package is a pure
// function of (seed, structural index).
func mix64(z uint64) uint64 {
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

// ScrambledSobol is a Sobol' sequence with Owen-style nested uniform
// scrambling (hash-based, after Burley): output bit k of each coordinate
// is flipped by a one-bit hash of the *unscrambled* more-significant bit
// prefix, keyed per (seed, dimension). This preserves the (t,m,s)-net
// structure — and hence the QMC convergence rate — while making every
// point uniformly distributed, which a plain digital shift does not.
//
// A zero seed disables scrambling (plain Sobol', bit-identical to
// uq.Sobol). Index 0 maps to sequence element 1, matching uq.Sobol, so
// the degenerate all-zero point is skipped.
type ScrambledSobol struct {
	d    int
	seed uint64
	v    [][]uint64 // direction integers per dimension, uq.SobolBits entries
	keys []uint64   // per-dimension scramble keys
}

// NewScrambledSobol returns a d-dimensional Owen-scrambled Sobol' sampler.
func NewScrambledSobol(d int, seed uint64) (*ScrambledSobol, error) {
	if d < 1 || d > uq.MaxSobolDim() {
		return nil, fmt.Errorf("rare: scrambled Sobol' supports 1..%d dimensions, got %d", uq.MaxSobolDim(), d)
	}
	s := &ScrambledSobol{d: d, seed: seed, v: make([][]uint64, d), keys: make([]uint64, d)}
	for j := 0; j < d; j++ {
		dir, err := uq.SobolDirections(j)
		if err != nil {
			return nil, err
		}
		s.v[j] = dir
		// Key each dimension independently so scrambles are uncorrelated
		// across coordinates; the constant decorrelates dim from seed.
		s.keys[j] = mix64(seed ^ mix64(uint64(j)+0x9e3779b97f4a7c15))
	}
	return s, nil
}

// Dim implements uq.Sampler.
func (s *ScrambledSobol) Dim() int { return s.d }

// Name implements uq.Sampler.
func (s *ScrambledSobol) Name() string { return "sobol-owen" }

// Seed returns the scramble seed (0 = unscrambled).
func (s *ScrambledSobol) Seed() uint64 { return s.seed }

// owenScramble applies hash-based nested uniform scrambling to one
// fixed-point coordinate x (uq.SobolBits bits, MSB = first radix-2
// digit). Bit k's flip depends only on the unscrambled prefix of bits
// more significant than k, so points sharing an elementary interval stay
// together — the defining property of Owen scrambling.
func owenScramble(x, key uint64) uint64 {
	var flips uint64
	for k := 0; k < uq.SobolBits; k++ {
		shift := uint(uq.SobolBits - k)
		var prefix uint64
		if k > 0 {
			prefix = x >> shift // the k more-significant unscrambled bits
		}
		bit := mix64(key^mix64(prefix+uint64(k)*0xd1342543de82ef95)) & 1
		flips |= bit << (shift - 1)
	}
	return x ^ flips
}

// Sample implements uq.Sampler via the Gray-code XOR construction followed
// by per-dimension Owen scrambling. Pure in i: identical for any
// evaluation order, worker count or shard split.
func (s *ScrambledSobol) Sample(i int, dst []float64) {
	idx := uint64(i + 1)
	gray := idx ^ (idx >> 1)
	const scale = 1.0 / (1 << uq.SobolBits)
	for j := 0; j < s.d; j++ {
		var x uint64
		g := gray
		for k := 0; g != 0 && k < uq.SobolBits; k++ {
			if g&1 == 1 {
				x ^= s.v[j][k]
			}
			g >>= 1
		}
		if s.seed != 0 {
			x = owenScramble(x, s.keys[j])
		}
		dst[j] = float64(x) * scale
	}
}
