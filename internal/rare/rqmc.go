package rare

import (
	"fmt"
	"math"

	"etherm/internal/stats"
)

// RQMC interleaves R independently Owen-scrambled Sobol' sequences
// round-robin: global index i maps to point i/R of replicate i%R. Each
// replicate is an unbiased QMC estimator, so the spread across replicate
// means gives a CLT-valid standard error — the error bar plain QMC cannot
// provide. The round-robin order keeps every stream prefix
// replicate-balanced (any first N global samples contain ⌈N/R⌉ or ⌊N/R⌋
// points of each replicate), so streaming stops, checkpoints and
// block-aligned fleet shards all remain statistically sound.
type RQMC struct {
	d    int
	seed uint64
	reps []*ScrambledSobol
}

// DefaultReplicates is the replicate count serving layers use when the
// caller does not pick one: enough for a stable CLT error bar without
// diluting each replicate's QMC accuracy.
const DefaultReplicates = 8

// NewRQMC returns a d-dimensional randomized-QMC sampler with r
// independently scrambled replicates. Replicate seeds derive from (seed,
// replicate) so the whole family is reproducible from one integer.
func NewRQMC(d, r int, seed uint64) (*RQMC, error) {
	if r < 2 {
		return nil, fmt.Errorf("rare: RQMC needs at least 2 replicates for an error bar, got %d", r)
	}
	q := &RQMC{d: d, seed: seed, reps: make([]*ScrambledSobol, r)}
	for rep := range q.reps {
		s, err := NewScrambledSobol(d, mix64(seed^mix64(uint64(rep)+0xa0761d6478bd642f)))
		if err != nil {
			return nil, err
		}
		q.reps[rep] = s
	}
	return q, nil
}

// Dim implements uq.Sampler.
func (q *RQMC) Dim() int { return q.d }

// Name implements uq.Sampler.
func (q *RQMC) Name() string { return "rqmc-sobol" }

// Replicates returns R.
func (q *RQMC) Replicates() int { return len(q.reps) }

// Replicate returns which scramble replicate global index i belongs to.
func (q *RQMC) Replicate(i int) int { return i % len(q.reps) }

// Sample implements uq.Sampler.
func (q *RQMC) Sample(i int, dst []float64) {
	r := len(q.reps)
	q.reps[i%r].Sample(i/r, dst)
}

// ReplicateEstimate aggregates per-replicate exceedance counters into a
// probability estimate with a CLT standard error over replicate means.
// counters[r] must hold the samples of replicate r only (use Replicate to
// route observations); the counters stay ExceedCounter-compatible with the
// rest of the stats pipeline, including exact integer shard merges.
type ReplicateEstimate struct {
	P        float64 // pooled probability estimate
	SE       float64 // standard error of the mean over replicate estimates
	N        int     // total samples across replicates
	Counters []stats.ExceedCounter
}

// EstimateReplicates computes the RQMC estimate from per-replicate
// counters. It needs ≥ 2 non-empty replicates for a finite SE.
func EstimateReplicates(counters []stats.ExceedCounter) (*ReplicateEstimate, error) {
	if len(counters) < 2 {
		return nil, fmt.Errorf("rare: RQMC estimate needs ≥ 2 replicate counters, got %d", len(counters))
	}
	var total stats.ExceedCounter
	mean, m2 := 0.0, 0.0
	n := 0
	for _, c := range counters {
		if c.N == 0 {
			return nil, fmt.Errorf("rare: empty RQMC replicate (unbalanced stream)")
		}
		total.Merge(c)
		n++
		p := c.Prob()
		d := p - mean
		mean += d / float64(n)
		m2 += d * (p - mean)
	}
	r := float64(len(counters))
	return &ReplicateEstimate{
		P:        total.Prob(),
		SE:       math.Sqrt(m2 / (r - 1) / r),
		N:        total.N,
		Counters: counters,
	}, nil
}

// CoV returns the coefficient of variation SE/P (infinite when no
// exceedance was seen).
func (e *ReplicateEstimate) CoV() float64 {
	if e.P == 0 {
		return math.Inf(1)
	}
	return e.SE / e.P
}
