package rare

import (
	"context"
	"math"
	"testing"

	"etherm/internal/stats"
	"etherm/internal/uq"
)

// BenchmarkRareSolves measures the real currency of rare-event estimation:
// model solves needed to answer P(T_max ≥ T_crit) ≈ 1e-4 at CoV ≤ 0.3 on
// the analytic fallback fin model under the paper's elongation law. The
// per-variant "solves" metric is deterministic (fixed seeds) and wired
// into the bench-regression gate; ns/op tracks the wall cost of the same
// work. Subset simulation's advantage grows with 1/P — at 1e-6 the MC
// column would not fit in a benchmark at all.
func BenchmarkRareSolves(b *testing.B) {
	const (
		pTarget   = 1e-4
		targetCoV = 0.3
	)
	deltaStar := lawMu + lawSigma*uq.Normal{Mu: 0, Sigma: 1}.Quantile(1-pTarget)
	tcrit := finTemp(deltaStar)

	b.Run("monte-carlo", func(b *testing.B) {
		var solves int
		for i := 0; i < b.N; i++ {
			var c stats.ExceedCounter
			s := uq.PseudoRandom{D: 1, Seed: 4242}
			u := make([]float64, 1)
			for n := 0; ; n++ {
				s.Sample(n, u)
				c.Observe(finTempU(u[0]) >= tcrit)
				if c.Count >= 3 && n%1024 == 0 {
					p := c.Prob()
					if math.Sqrt((1-p)/(p*float64(c.N))) <= targetCoV {
						break
					}
				}
				if n >= 1<<21 {
					b.Fatal("monte carlo did not reach the target CoV in 2M solves")
				}
			}
			solves = c.N
		}
		b.ReportMetric(float64(solves), "solves")
	})

	b.Run("rqmc-sobol", func(b *testing.B) {
		const reps = 8
		var solves int
		for i := 0; i < b.N; i++ {
			q, err := NewRQMC(1, reps, 4242)
			if err != nil {
				b.Fatal(err)
			}
			counters := make([]stats.ExceedCounter, reps)
			u := make([]float64, 1)
			n := 0
			for chunk := 0; ; chunk++ {
				for k := 0; k < reps*1024; k++ {
					q.Sample(n, u)
					counters[q.Replicate(n)].Observe(finTempU(u[0]) >= tcrit)
					n++
				}
				est, err := EstimateReplicates(counters)
				if err != nil {
					b.Fatal(err)
				}
				if est.P > 0 && est.CoV() <= targetCoV {
					break
				}
				if n >= 1<<21 {
					b.Fatal("RQMC did not reach the target CoV in 2M solves")
				}
			}
			solves = n
		}
		b.ReportMetric(float64(solves), "solves")
	})

	b.Run("subset", func(b *testing.B) {
		var solves int
		var cov float64
		lsf := MaxOutputFactory(uq.SingleFactory(finUQModel{}), []uq.Dist{uq.Normal{Mu: 0, Sigma: 1}})
		for i := 0; i < b.N; i++ {
			res, err := RunSubset(context.Background(), lsf, SubsetConfig{
				Threshold: tcrit,
				Dim:       1,
				N:         2000,
				Seed:      4242,
			})
			if err != nil {
				b.Fatal(err)
			}
			if !res.Converged || res.CoV > targetCoV {
				b.Fatalf("subset run missed the target: converged=%v CoV=%.2f", res.Converged, res.CoV)
			}
			solves, cov = res.Evals, res.CoV
		}
		b.ReportMetric(float64(solves), "solves")
		b.ReportMetric(cov, "cov")
	})
}
