package rare

import (
	"context"
	"fmt"
	"math"
	"math/rand/v2"
	"sync"
)

// ISConfig parameterizes mean-shift importance sampling: draws come from
// N(Shift, I) instead of N(0, I), and each sample is reweighted by the
// density ratio φ(z)/φ_shift(z) = exp(−z·s + |s|²/2). A shift toward the
// failure domain turns a 1e-6 event into an O(1) one at the cost of
// weight variance — effective when the designer knows the failure
// direction (for bond wires: long, thin, hot).
type ISConfig struct {
	// Threshold is the failure level: PF = P(g ≥ Threshold).
	Threshold float64
	// Shift is the germ-space mean shift (length = dimension).
	Shift []float64
	// N is the sample count.
	N int
	// Seed keys the per-index sample streams.
	Seed uint64
	// Workers caps concurrent limit-state evaluations (default 1).
	Workers int
}

// ISResult is the outcome of an importance-sampling run.
type ISResult struct {
	// PF estimates P(g ≥ Threshold) as the weighted failure fraction.
	PF float64 `json:"p_fail"`
	// SE is the standard error of the weighted mean.
	SE float64 `json:"se"`
	// N is the number of evaluations.
	N int `json:"n"`
	// ESS is Kish's effective sample size Σw² heuristic — a small value
	// relative to N flags a poorly chosen shift.
	ESS float64 `json:"ess"`
}

// CoV returns SE/PF (infinite when no weighted failure was seen).
func (r *ISResult) CoV() float64 {
	if r.PF == 0 {
		return math.Inf(1)
	}
	return r.SE / r.PF
}

// RunImportance estimates PF by mean-shift importance sampling. Sample i
// is a pure function of (Seed, i), and the weighted fold runs in index
// order — bit-identical for any Workers value.
func RunImportance(ctx context.Context, lsf LimitStateFactory, cfg ISConfig) (*ISResult, error) {
	dim := len(cfg.Shift)
	if dim < 1 {
		return nil, fmt.Errorf("rare: importance sampling needs a shift vector")
	}
	if cfg.N < 2 {
		return nil, fmt.Errorf("rare: importance sampling needs N ≥ 2, got %d", cfg.N)
	}
	if cfg.Workers < 1 {
		cfg.Workers = 1
	}
	shift2 := 0.0
	for _, s := range cfg.Shift {
		shift2 += s * s
	}

	// Weighted indicator per sample, folded in index order afterwards.
	vals := make([]float64, cfg.N)
	idxCh := make(chan int)
	abort := newWorkerAbort()
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ls, err := lsf()
			if err != nil {
				abort.fail(err)
				return
			}
			z := make([]float64, dim)
			for i := range idxCh {
				rng := rand.New(rand.NewPCG(cfg.Seed, chainKey(cfg.Seed, -1, i)))
				dot := 0.0
				for j := range z {
					z[j] = cfg.Shift[j] + norm01(rng)
					dot += z[j] * cfg.Shift[j]
				}
				g, err := ls(z)
				if err != nil {
					abort.fail(fmt.Errorf("rare: limit state at sample %d: %w", i, err))
					return
				}
				if g >= cfg.Threshold {
					vals[i] = math.Exp(-dot + shift2/2)
				}
			}
		}()
	}
feed:
	for i := 0; i < cfg.N; i++ {
		select {
		case idxCh <- i:
		case <-abort.ch:
			break feed
		case <-ctx.Done():
			break feed
		}
	}
	close(idxCh)
	wg.Wait()
	if abort.err != nil {
		return nil, abort.err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	mean, m2, sumW, sumW2 := 0.0, 0.0, 0.0, 0.0
	for i, v := range vals {
		d := v - mean
		mean += d / float64(i+1)
		m2 += d * (v - mean)
		sumW += v
		sumW2 += v * v
	}
	n := float64(cfg.N)
	res := &ISResult{PF: mean, SE: math.Sqrt(m2 / (n - 1) / n), N: cfg.N}
	if sumW2 > 0 {
		res.ESS = sumW * sumW / sumW2
	}
	return res, nil
}
