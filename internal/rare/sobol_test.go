package rare

import (
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"testing"

	"etherm/internal/analytic"
	"etherm/internal/material"
	"etherm/internal/uq"
)

// The paper's elongation law (Table 2): δ ~ N(0.17, 0.048²).
const (
	lawMu    = 0.17
	lawSigma = 0.048
)

func finWire(delta float64) analytic.FinWire {
	return analytic.FinWire{
		Length:   1e-3 * (1 + delta),
		Diameter: 25e-6,
		Mat:      material.Copper(),
		Current:  0.5,
		TEndA:    300, TEndB: 300,
		TInf: 300,
	}
}

func finTemp(delta float64) float64 {
	tmax, _ := finWire(delta).MaxTemperature(300)
	return tmax
}

// finTempU is the Fig. 7 quantity as a function of a unit-cube germ: the
// end-time peak temperature of a wire whose elongation follows the law.
func finTempU(u float64) float64 {
	delta := lawMu + lawSigma*uq.Normal{Mu: 0, Sigma: 1}.Quantile(clamp01(u))
	if delta < 0 {
		delta = 0
	} else if delta > 0.9 {
		delta = 0.9
	}
	return finTemp(delta)
}

func clamp01(u float64) float64 {
	if u < 1e-15 {
		return 1e-15
	}
	if u > 1-1e-15 {
		return 1 - 1e-15
	}
	return u
}

// TestPlainMatchesUQSobol: seed 0 disables the scramble, and the sampler
// must then be bit-identical to the uq.Sobol baseline — the contract that
// lets campaign fingerprints distinguish the two by stream, not by name.
func TestPlainMatchesUQSobol(t *testing.T) {
	for _, d := range []int{1, 2, 5, 8, uq.MaxSobolDim()} {
		plain, err := uq.NewSobol(d)
		if err != nil {
			t.Fatal(err)
		}
		scr, err := NewScrambledSobol(d, 0)
		if err != nil {
			t.Fatal(err)
		}
		a, b := make([]float64, d), make([]float64, d)
		for i := 0; i < 200; i++ {
			plain.Sample(i, a)
			scr.Sample(i, b)
			for j := range a {
				if a[j] != b[j] {
					t.Fatalf("dim %d index %d coord %d: plain %v scrambled(seed=0) %v", d, i, j, a[j], b[j])
				}
			}
		}
	}
}

type goldenFile struct {
	Dim    int         `json:"dim"`
	Seed   uint64      `json:"seed"`
	Points [][]float64 `json:"points"`
}

// TestGoldenVectors pins the scrambled stream bit-for-bit against committed
// vectors: any change to the direction integers, the scramble hash or the
// bit order silently invalidates every checkpoint and golden estimate in
// the field, so it must fail loudly here instead.
func TestGoldenVectors(t *testing.T) {
	path := filepath.Join("testdata", "sobol_owen_golden.json")
	if os.Getenv("RARE_UPDATE_GOLDEN") == "1" {
		writeGolden(t, path)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var files []goldenFile
	if err := json.Unmarshal(data, &files); err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("empty golden file")
	}
	for _, g := range files {
		s, err := NewScrambledSobol(g.Dim, g.Seed)
		if err != nil {
			t.Fatal(err)
		}
		dst := make([]float64, g.Dim)
		for i, want := range g.Points {
			s.Sample(i, dst)
			for j := range dst {
				if math.Float64bits(dst[j]) != math.Float64bits(want[j]) {
					t.Fatalf("dim %d seed %d index %d coord %d: got %.17g want %.17g", g.Dim, g.Seed, i, j, dst[j], want[j])
				}
			}
		}
	}
}

// writeGolden regenerates the committed vectors (RARE_UPDATE_GOLDEN=1).
// Only do this deliberately: new vectors invalidate old checkpoints.
func writeGolden(t *testing.T, path string) {
	t.Helper()
	var files []goldenFile
	for _, cfg := range []struct {
		dim  int
		seed uint64
	}{{1, 0}, {4, 12345}, {8, 42}, {24, 0xfeedface}} {
		s, err := NewScrambledSobol(cfg.dim, cfg.seed)
		if err != nil {
			t.Fatal(err)
		}
		g := goldenFile{Dim: cfg.dim, Seed: cfg.seed}
		for i := 0; i < 16; i++ {
			p := make([]float64, cfg.dim)
			s.Sample(i, p)
			g.Points = append(g.Points, p)
		}
		files = append(files, g)
	}
	data, err := json.MarshalIndent(files, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestScrambleProperties: points stay in [0,1), sampling is pure in the
// index, distinct seeds give distinct streams, and the empirical mean of a
// scrambled stream is unbiased for 1/2 per coordinate.
func TestScrambleProperties(t *testing.T) {
	const d, n = 6, 4096
	s, err := NewScrambledSobol(d, 42)
	if err != nil {
		t.Fatal(err)
	}
	s2, _ := NewScrambledSobol(d, 43)
	u, v := make([]float64, d), make([]float64, d)
	mean := make([]float64, d)
	differs := false
	for i := 0; i < n; i++ {
		s.Sample(i, u)
		for j, x := range u {
			if x < 0 || x >= 1 || math.IsNaN(x) {
				t.Fatalf("index %d coord %d outside [0,1): %v", i, j, x)
			}
			mean[j] += x
		}
		s.Sample(i, v)
		for j := range u {
			if u[j] != v[j] {
				t.Fatalf("impure sample at index %d", i)
			}
		}
		s2.Sample(i, v)
		for j := range u {
			if u[j] != v[j] {
				differs = true
			}
		}
	}
	if !differs {
		t.Fatal("seeds 42 and 43 produced identical streams")
	}
	for j, m := range mean {
		if got := m / n; math.Abs(got-0.5) > 0.01 {
			t.Errorf("coord %d mean %.4f, want ~0.5", j, got)
		}
	}
}

// TestOwenPreservesNet: nested uniform scrambling must keep the (t,m,s)-net
// structure — over an aligned dyadic block of 2^m sequence elements, every
// one-dimensional dyadic interval of size 2^-k contains exactly 2^(m-k)
// points. This is the property that preserves the QMC convergence rate; a
// digital-shift bug or a prefix-hash bug breaks it immediately. The block
// starts at sequence element 2^m (index 2^m−1) because element 0 — part of
// the first block — is skipped by construction.
func TestOwenPreservesNet(t *testing.T) {
	const m = 9 // 512 points
	for _, d := range []int{1, 2, 3, 6} {
		s, err := NewScrambledSobol(d, 7)
		if err != nil {
			t.Fatal(err)
		}
		u := make([]float64, d)
		for k := 1; k <= m; k++ {
			bins := 1 << k
			want := (1 << m) / bins
			counts := make([]int, bins*d)
			for i := (1 << m) - 1; i <= (2<<m)-2; i++ {
				s.Sample(i, u)
				for j := range u {
					counts[j*bins+int(u[j]*float64(bins))]++
				}
			}
			for idx, c := range counts {
				if c != want {
					t.Fatalf("dim %d: level %d bin %d holds %d points, want %d", d, k, idx, c, want)
				}
			}
		}
	}
}

// TestSobolBeatsMCOnFig7Quantity compares estimator variance on the paper's
// Fig. 7 quantity (expected peak wire temperature under the elongation law)
// at equal sample count: across K independent replications, the scrambled
// Sobol' estimator must have materially lower variance than Monte Carlo.
func TestSobolBeatsMCOnFig7Quantity(t *testing.T) {
	const (
		k = 24  // replications per method
		n = 256 // samples per estimate
	)
	varOf := func(estimates []float64) float64 {
		mean := 0.0
		for _, e := range estimates {
			mean += e
		}
		mean /= float64(len(estimates))
		v := 0.0
		for _, e := range estimates {
			v += (e - mean) * (e - mean)
		}
		return v / float64(len(estimates)-1)
	}
	estimate := func(s uq.Sampler) float64 {
		u := make([]float64, 1)
		sum := 0.0
		for i := 0; i < n; i++ {
			s.Sample(i, u)
			sum += finTempU(u[0])
		}
		return sum / n
	}
	mc := make([]float64, k)
	qmc := make([]float64, k)
	for r := 0; r < k; r++ {
		mc[r] = estimate(uq.PseudoRandom{D: 1, Seed: uint64(1000 + r)})
		s, err := NewScrambledSobol(1, uint64(2000+r))
		if err != nil {
			t.Fatal(err)
		}
		qmc[r] = estimate(s)
	}
	vMC, vQMC := varOf(mc), varOf(qmc)
	if vQMC*10 > vMC {
		t.Fatalf("scrambled Sobol' variance %.3g not ≥10x below MC variance %.3g at n=%d", vQMC, vMC, n)
	}
	t.Logf("variance at n=%d: MC %.3g, scrambled Sobol' %.3g (×%.0f reduction)", n, vMC, vQMC, vMC/vQMC)
}

// FuzzScrambledSobol hammers the sampler with arbitrary dimension, index
// and seed inputs: construction must either fail cleanly or produce pure,
// in-range points.
func FuzzScrambledSobol(f *testing.F) {
	f.Add(1, 0, uint64(0))
	f.Add(6, 1023, uint64(42))
	f.Add(24, 1<<20, uint64(0xdeadbeef))
	f.Add(25, 5, uint64(7))
	f.Add(-3, -9, uint64(1))
	f.Fuzz(func(t *testing.T, d, i int, seed uint64) {
		s, err := NewScrambledSobol(d, seed)
		if err != nil {
			if d >= 1 && d <= uq.MaxSobolDim() {
				t.Fatalf("valid dimension %d rejected: %v", d, err)
			}
			return
		}
		if i < 0 {
			i = -(i + 1)
		}
		i %= 1 << 30
		u, v := make([]float64, d), make([]float64, d)
		s.Sample(i, u)
		s.Sample(i, v)
		for j := range u {
			if u[j] < 0 || u[j] >= 1 || math.IsNaN(u[j]) {
				t.Fatalf("dim %d seed %d index %d coord %d outside [0,1): %v", d, seed, i, j, u[j])
			}
			if u[j] != v[j] {
				t.Fatalf("impure sample: dim %d seed %d index %d", d, seed, i)
			}
		}
	})
}
