package rare

import (
	"context"
	"fmt"
	"math"
	"math/rand/v2"
	"sort"
	"sync"

	"etherm/internal/stats"
	"etherm/internal/uq"
)

// LimitState evaluates the scalar limit-state function g(z) on the
// standard-normal germ space; failure is the event g(z) ≥ threshold. One
// LimitState instance is used by one goroutine at a time.
type LimitState func(z []float64) (float64, error)

// LimitStateFactory builds independent LimitState instances for parallel
// workers, mirroring uq.ModelFactory.
type LimitStateFactory func() (LimitState, error)

// MaxOutputFactory adapts the campaign seam — a uq.ModelFactory plus the
// germ distributions — into a limit state: the germ z maps through each
// distribution's quantile at Φ(z) to physical parameters, and g is the
// maximum over the model outputs (for the paper's studies, the end-time
// peak wire temperature in kelvin).
func MaxOutputFactory(factory uq.ModelFactory, dists []uq.Dist) LimitStateFactory {
	return func() (LimitState, error) {
		m, err := factory()
		if err != nil {
			return nil, err
		}
		if m.Dim() != len(dists) {
			return nil, fmt.Errorf("rare: model dimension %d does not match %d distributions", m.Dim(), len(dists))
		}
		std := uq.Normal{Mu: 0, Sigma: 1}
		u := make([]float64, len(dists))
		p := make([]float64, len(dists))
		out := make([]float64, m.NumOutputs())
		return func(z []float64) (float64, error) {
			for j := range z {
				u[j] = std.CDF(z[j])
			}
			uq.TransformPoint(dists, u, p)
			if err := m.Eval(p, out); err != nil {
				return 0, err
			}
			g := math.Inf(-1)
			for _, v := range out {
				if v > g {
					g = v
				}
			}
			return g, nil
		}, nil
	}
}

// Defaults applied by SubsetConfig normalization, exported so serving
// layers can report effective values without re-deriving them.
const (
	// DefaultLevelSamples is the per-level sample count N.
	DefaultLevelSamples = 2000
	// DefaultP0 is the conditional probability per level.
	DefaultP0 = 0.1
	// DefaultMaxLevels bounds the level count — enough for
	// PF = P0^12 = 1e-12 before the final conditional factor.
	DefaultMaxLevels = 12
)

// SubsetConfig parameterizes a subset-simulation run (Au & Beck 2001,
// modified Metropolis variant).
type SubsetConfig struct {
	// Threshold is the failure level: PF = P(g ≥ Threshold).
	Threshold float64
	// Dim is the germ dimensionality.
	Dim int
	// N is the number of samples per level. It must be divisible by the
	// seed count round(P0·N) so chains have equal integer length.
	N int
	// P0 is the conditional probability per level (default 0.1).
	P0 float64
	// MaxLevels bounds the level count (default 12 — enough for
	// PF = P0^12 = 1e-12 before the final conditional factor).
	MaxLevels int
	// Seed keys every random decision. Two runs with equal config are
	// bit-identical, for any Workers or Shards value.
	Seed uint64
	// Step is the component proposal standard deviation (default 1).
	Step float64
	// Workers caps concurrent limit-state evaluations (default 1).
	Workers int
	// Shards logically partitions each level's chains into contiguous
	// groups evaluated as independent units, proving the fleet-split
	// invariance: results are bit-identical for any Shards ≥ 1 because
	// every chain's randomness is keyed by (Seed, level, chain), not by
	// execution order. Default 1.
	Shards int
	// OnLevel, when set, receives each completed level's statistics —
	// the telemetry hook behind SSE per-level progress.
	OnLevel func(SubsetLevel)
}

func (c *SubsetConfig) normalize() error {
	if c.Dim < 1 {
		return fmt.Errorf("rare: subset simulation needs a positive dimension, got %d", c.Dim)
	}
	if c.P0 == 0 {
		c.P0 = DefaultP0
	}
	if c.P0 <= 0 || c.P0 >= 0.5 {
		return fmt.Errorf("rare: conditional probability p0 = %g outside (0, 0.5)", c.P0)
	}
	if c.N == 0 {
		c.N = DefaultLevelSamples
	}
	seeds := int(math.Round(c.P0 * float64(c.N)))
	if seeds < 2 {
		return fmt.Errorf("rare: level size %d gives %d seed chains; need ≥ 2 (raise N or p0)", c.N, seeds)
	}
	if c.N%seeds != 0 {
		return fmt.Errorf("rare: level size %d not divisible by %d seed chains (pick N a multiple of 1/p0)", c.N, seeds)
	}
	if c.MaxLevels == 0 {
		c.MaxLevels = DefaultMaxLevels
	}
	if c.MaxLevels < 1 {
		return fmt.Errorf("rare: max levels %d < 1", c.MaxLevels)
	}
	if c.Step == 0 {
		c.Step = 1
	}
	if c.Step < 0 {
		return fmt.Errorf("rare: negative MCMC step %g", c.Step)
	}
	if c.Workers < 1 {
		c.Workers = 1
	}
	if c.Shards < 1 {
		c.Shards = 1
	}
	return nil
}

// SubsetLevel is the per-level telemetry of a subset-simulation run.
type SubsetLevel struct {
	// Level is 0 for the unconditional Monte Carlo stage.
	Level int `json:"level"`
	// Threshold is the intermediate failure level t_ℓ this stage reached:
	// the conditional (1−p0)-quantile of g, capped at the target.
	Threshold float64 `json:"threshold"`
	// Accept is the chain move acceptance rate (1 for the iid level 0).
	Accept float64 `json:"accept"`
	// CondProb is P(g ≥ Threshold | previous level) estimated here.
	CondProb float64 `json:"cond_prob"`
	// Exceed counts threshold exceedances among the level's N samples —
	// ExceedCounter-compatible with the stats pipeline.
	Exceed stats.ExceedCounter `json:"exceed"`
	// Gamma is the chain-correlation variance inflation factor γ_ℓ
	// (0 for the iid level).
	Gamma float64 `json:"gamma"`
	// Evals is the number of fresh limit-state evaluations this level.
	Evals int `json:"evals"`
}

// SubsetResult is the outcome of a subset-simulation run.
type SubsetResult struct {
	// PF estimates P(g ≥ Threshold) as Π_ℓ CondProb_ℓ.
	PF float64 `json:"p_fail"`
	// CoV is the estimator coefficient of variation δ, from the Au–Beck
	// per-level δ_ℓ² = (1−p_ℓ)/(p_ℓ N)·(1+γ_ℓ) summed over levels.
	CoV float64 `json:"cov"`
	// Levels holds per-level telemetry in order.
	Levels []SubsetLevel `json:"levels"`
	// Evals is the total number of limit-state evaluations.
	Evals int `json:"evals"`
	// Converged reports whether the target threshold was reached within
	// MaxLevels (when false, PF is an upper-bound estimate).
	Converged bool `json:"converged"`
}

// chainKey derives the deterministic RNG key of chain c at level ℓ. All
// chain randomness flows from it, so the estimate does not depend on how
// chains are scheduled across goroutines or shards.
func chainKey(seed uint64, level, chain int) uint64 {
	return mix64(seed ^ mix64(uint64(level)*0x2545f4914f6cdd1d+uint64(chain)+0x9e3779b97f4a7c15))
}

// norm01 draws a standard normal via the inverse CDF of a uniform —
// slower than a ziggurat but a pure function of the PCG stream, which the
// bit-identity guarantees rest on.
func norm01(rng *rand.Rand) float64 {
	u := rng.Float64()
	if u < 1e-15 {
		u = 1e-15
	} else if u > 1-1e-15 {
		u = 1 - 1e-15
	}
	return uq.Normal{Mu: 0, Sigma: 1}.Quantile(u)
}

// subsetState is one germ point with its limit-state value.
type subsetState struct {
	z []float64
	g float64
}

// RunSubset estimates PF = P(g ≥ cfg.Threshold) by subset simulation:
// an iid Monte Carlo level followed by conditional levels whose samples
// come from modified-Metropolis chains started at the previous level's
// top-p0 seeds. Intermediate thresholds adapt to the conditional
// (1−p0)-quantile, so each level captures a factor of p0 and PF down to
// 1e-8 costs ~MaxLevels·N evaluations instead of 1/PF.
//
// Determinism: every sample is a pure function of (Seed, level, chain,
// step), levels fold chains in chain order, and seeds are selected by a
// total order (g descending, index ascending) — reruns and any
// Workers/Shards setting are bit-identical.
func RunSubset(ctx context.Context, lsf LimitStateFactory, cfg SubsetConfig) (*SubsetResult, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	res := &SubsetResult{}
	nSeeds := int(math.Round(cfg.P0 * float64(cfg.N)))
	chainLen := cfg.N / nSeeds

	// Level 0: N iid standard-normal points, one per-index PCG stream.
	cur := make([]subsetState, cfg.N)
	for i := range cur {
		rng := rand.New(rand.NewPCG(cfg.Seed, chainKey(cfg.Seed, 0, i)))
		z := make([]float64, cfg.Dim)
		for j := range z {
			z[j] = norm01(rng)
		}
		cur[i] = subsetState{z: z}
	}
	if err := evalStates(ctx, lsf, cfg, cur); err != nil {
		return nil, err
	}
	res.Evals += cfg.N

	pf := 1.0
	var cov2 float64
	// Telemetry of the stage that *produced* the current samples: level 0
	// is iid (acceptance 1), conditional levels inherit their generating
	// chains' acceptance and evaluation count.
	genAccept, genEvals := 1.0, cfg.N
	for level := 0; ; level++ {
		// Order by g descending (index ascending on ties) to find the
		// conditional quantile and the next level's seeds.
		order := make([]int, len(cur))
		for i := range order {
			order[i] = i
		}
		sort.SliceStable(order, func(a, b int) bool { return cur[order[a]].g > cur[order[b]].g })
		t := cur[order[nSeeds-1]].g // conditional (1−p0)-quantile
		reached := t >= cfg.Threshold
		final := reached || level == cfg.MaxLevels-1
		if final {
			t = cfg.Threshold // count against the real target
		}

		lv := SubsetLevel{Level: level, Threshold: t, Accept: genAccept, Evals: genEvals}
		for i := range cur {
			lv.Exceed.Observe(cur[i].g >= t)
		}
		lv.CondProb = lv.Exceed.Prob()
		lv.Gamma = chainGamma(cur, t, level, chainLen)
		pf *= lv.CondProb
		cov2 += levelCoV2(lv, cfg.N)
		res.Levels = append(res.Levels, lv)
		if cfg.OnLevel != nil {
			cfg.OnLevel(lv)
		}
		if final {
			res.Converged = reached
			break
		}

		// Conditional level: one modified-Metropolis chain per seed,
		// chains distributed over Shards contiguous groups and folded in
		// chain order.
		seeds := make([]subsetState, nSeeds)
		for k := 0; k < nSeeds; k++ {
			seeds[k] = cur[order[k]]
		}
		next, accepted, proposed, evals, err := runChains(ctx, lsf, cfg, seeds, level+1, chainLen, t)
		if err != nil {
			return nil, err
		}
		res.Evals += evals
		cur = next
		genAccept, genEvals = 1, evals
		if proposed > 0 {
			genAccept = float64(accepted) / float64(proposed)
		}
	}

	res.PF = pf
	res.CoV = math.Sqrt(cov2)
	return res, nil
}

func boolTo(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// levelCoV2 is the Au–Beck per-level squared CoV contribution
// δ_ℓ² = (1−p)/(p·N)·(1+γ).
func levelCoV2(lv SubsetLevel, n int) float64 {
	p := lv.CondProb
	if p <= 0 {
		return math.Inf(1)
	}
	return (1 - p) / (p * float64(n)) * (1 + lv.Gamma)
}

// chainGamma estimates the variance inflation γ_ℓ from the lag
// autocovariance of the exceedance indicator along each chain (Au & Beck
// 2001, eq. 25–29). Level 0 is iid, so γ = 0 there.
func chainGamma(cur []subsetState, t float64, level, chainLen int) float64 {
	if level == 0 || chainLen < 2 {
		return 0
	}
	n := len(cur)
	nc := n / chainLen
	var p float64
	for i := range cur {
		p += boolTo(cur[i].g >= t)
	}
	p /= float64(n)
	r0 := p * (1 - p)
	if r0 <= 0 {
		return 0
	}
	gamma := 0.0
	for lag := 1; lag < chainLen; lag++ {
		var sum float64
		cnt := 0
		for c := 0; c < nc; c++ {
			base := c * chainLen
			for k := 0; k+lag < chainLen; k++ {
				sum += boolTo(cur[base+k].g >= t) * boolTo(cur[base+k+lag].g >= t)
				cnt++
			}
		}
		ri := sum/float64(cnt) - p*p
		gamma += 2 * (1 - float64(lag)/float64(chainLen)) * (ri / r0)
	}
	if gamma < 0 {
		gamma = 0
	}
	return gamma
}

// runChains advances one modified-Metropolis chain per seed at the given
// level, each chainLen samples long (the seed is sample 0). Chains are
// split into cfg.Shards contiguous groups; inside each group, cfg.Workers
// goroutines pick up whole chains. Results land in a slice indexed by
// (chain, step), so scheduling cannot affect the estimate.
func runChains(ctx context.Context, lsf LimitStateFactory, cfg SubsetConfig, seeds []subsetState, level, chainLen int, t float64) (out []subsetState, accepted, proposed, evals int, err error) {
	nc := len(seeds)
	out = make([]subsetState, nc*chainLen)
	type chainStats struct{ accepted, proposed, evals int }
	perChain := make([]chainStats, nc)

	// Contiguous shard ranges over chains.
	for shard := 0; shard < cfg.Shards; shard++ {
		lo := shard * nc / cfg.Shards
		hi := (shard + 1) * nc / cfg.Shards
		if lo == hi {
			continue
		}
		var wg sync.WaitGroup
		chainCh := make(chan int)
		abort := newWorkerAbort()
		workers := cfg.Workers
		if workers > hi-lo {
			workers = hi - lo
		}
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				ls, lerr := lsf()
				if lerr != nil {
					abort.fail(lerr)
					return
				}
				for c := range chainCh {
					st, cerr := runOneChain(ctx, ls, cfg, seeds[c], level, c, chainLen, t, out[c*chainLen:(c+1)*chainLen])
					if cerr != nil {
						abort.fail(cerr)
						return
					}
					perChain[c] = chainStats{st.accepted, st.proposed, st.evals}
				}
			}()
		}
	feed:
		for c := lo; c < hi; c++ {
			select {
			case chainCh <- c:
			case <-abort.ch:
				break feed
			case <-ctx.Done():
				break feed
			}
		}
		close(chainCh)
		wg.Wait()
		if abort.err != nil {
			return nil, 0, 0, 0, abort.err
		}
		if cerr := ctx.Err(); cerr != nil {
			return nil, 0, 0, 0, cerr
		}
	}
	for _, st := range perChain {
		accepted += st.accepted
		proposed += st.proposed
		evals += st.evals
	}
	return out, accepted, proposed, evals, nil
}

type oneChainStats struct{ accepted, proposed, evals int }

// runOneChain runs the modified Metropolis walk of one chain: per
// component, propose z'_j = z_j + Step·ξ and pre-accept with probability
// min(1, φ(z'_j)/φ(z_j)); when any component moved, evaluate g and accept
// the move iff g ≥ t (otherwise the chain repeats its current state).
// Proposals with no moved component reuse the cached g — no evaluation.
func runOneChain(ctx context.Context, ls LimitState, cfg SubsetConfig, seed subsetState, level, chain, chainLen int, t float64, dst []subsetState) (oneChainStats, error) {
	var st oneChainStats
	rng := rand.New(rand.NewPCG(cfg.Seed, chainKey(cfg.Seed, level, chain)))
	cur := subsetState{z: append([]float64(nil), seed.z...), g: seed.g}
	dst[0] = subsetState{z: append([]float64(nil), cur.z...), g: cur.g}
	cand := make([]float64, len(cur.z))
	for k := 1; k < chainLen; k++ {
		if err := ctx.Err(); err != nil {
			return st, err
		}
		moved := false
		for j := range cur.z {
			xi := cur.z[j] + cfg.Step*norm01(rng)
			// Component acceptance ratio for a standard-normal target:
			// φ(ξ)/φ(z) = exp((z² − ξ²)/2).
			if rng.Float64() < math.Exp((cur.z[j]*cur.z[j]-xi*xi)/2) {
				cand[j] = xi
				moved = true
			} else {
				cand[j] = cur.z[j]
			}
		}
		st.proposed++
		if moved {
			g, err := ls(cand)
			if err != nil {
				return st, fmt.Errorf("rare: limit state at level %d chain %d: %w", level, chain, err)
			}
			st.evals++
			if g >= t {
				copy(cur.z, cand)
				cur.g = g
				st.accepted++
			}
		}
		dst[k] = subsetState{z: append([]float64(nil), cur.z...), g: cur.g}
	}
	return st, nil
}

// workerAbort lets the first erroring worker of a pool unblock the feeder:
// the worker records its error and closes the abort channel before exiting,
// so the feeder's select never blocks forever on the unbuffered work channel.
type workerAbort struct {
	ch   chan struct{}
	once sync.Once
	err  error
}

func newWorkerAbort() *workerAbort {
	return &workerAbort{ch: make(chan struct{})}
}

// fail records the first error and signals the feeder. Safe to call from
// any number of workers; only the first error is kept.
func (a *workerAbort) fail(err error) {
	a.once.Do(func() {
		a.err = err
		close(a.ch)
	})
}

// evalStates evaluates g for every state in parallel, writing results by
// index.
func evalStates(ctx context.Context, lsf LimitStateFactory, cfg SubsetConfig, states []subsetState) error {
	idxCh := make(chan int)
	abort := newWorkerAbort()
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ls, err := lsf()
			if err != nil {
				abort.fail(err)
				return
			}
			for i := range idxCh {
				g, err := ls(states[i].z)
				if err != nil {
					abort.fail(fmt.Errorf("rare: limit state at sample %d: %w", i, err))
					return
				}
				states[i].g = g
			}
		}()
	}
feed:
	for i := range states {
		select {
		case idxCh <- i:
		case <-abort.ch:
			break feed
		case <-ctx.Done():
			break feed
		}
	}
	close(idxCh)
	wg.Wait()
	if abort.err != nil {
		return abort.err
	}
	return ctx.Err()
}
